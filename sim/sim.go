// Package sim is the public measurement harness of the spinal-code
// library: workload-scale drivers over the link session (multi-flow
// mixes, named time-varying channel scenarios) and the registry of the
// paper's reproduction experiments.
//
// Unlike spinal, spinal/channel and spinal/link, this package is an
// experiment surface, not a stability contract: configurations and
// result fields may grow between versions as new scenarios are added
// (see docs/API.md). Every run is deterministic given its seed.
package sim

import (
	"spinal/internal/experiments"
	isim "spinal/internal/sim"
	"spinal/link"
)

// ScenarioConfig drives MeasureScenario: a named channel workload
// ("burst", "walk", "trace:<file>", "churn", "feedback-delay",
// "feedback-loss", "chaos", "chaos-feedback", "mice-elephants",
// "fetch-cubic"), a rate-policy spec ("fixed[:n]", "capacity[:db]",
// "tracking[:db]"), an optional admission scheduler ("rr", "dwfq"), and
// the population/budget knobs.
type ScenarioConfig = isim.ScenarioConfig

// ScenarioResult aggregates a scenario run: delivery, goodput, outage,
// reverse-channel and half-duplex accounting.
type ScenarioResult = isim.ScenarioResult

// MultiFlowConfig drives MeasureMultiFlow: many datagrams of mixed sizes
// over channels of mixed SNRs, multiplexed with bounded concurrency.
type MultiFlowConfig = isim.MultiFlowConfig

// MultiFlowResult aggregates an engine workload.
type MultiFlowResult = isim.MultiFlowResult

// MeasureScenario runs the named time-varying channel workload through a
// link session and aggregates goodput and outage statistics.
func MeasureScenario(cfg ScenarioConfig) (ScenarioResult, error) {
	return isim.MeasureScenario(cfg)
}

// MeasureMultiFlow runs the configured workload through a link session
// and aggregates delivery statistics.
func MeasureMultiFlow(cfg MultiFlowConfig) MultiFlowResult {
	return isim.MeasureMultiFlow(cfg)
}

// Scenarios lists the named scenarios MeasureScenario accepts.
func Scenarios() []string { return isim.Scenarios() }

// DaemonLoadConfig drives MeasureDaemonLoad: one spinald-style daemon,
// a sweep of concurrent flow counts through it over a single client
// socket.
type DaemonLoadConfig = isim.DaemonLoadConfig

// DaemonLoadPoint is one sweep point's aggregate outcome.
type DaemonLoadPoint = isim.DaemonLoadPoint

// MeasureDaemonLoad boots one daemon and measures aggregate goodput —
// delivered payload bits per symbol of parallel (busiest-shard) airtime
// — at each configured concurrent-flow count.
func MeasureDaemonLoad(cfg DaemonLoadConfig) ([]DaemonLoadPoint, error) {
	return isim.MeasureDaemonLoad(cfg)
}

// ChaosFaults is the adversarial fault mix the chaos scenarios run
// under; ackFaults adds the reverse-path (ack) fault kinds. Scale it
// (link.FaultConfig.Scale) for intensity sweeps.
func ChaosFaults(ackFaults bool) link.FaultConfig { return isim.ChaosFaults(ackFaults) }

// Experiment is one reproduction experiment: an ID, a title, and a Run
// function regenerating its tables.
type Experiment = experiments.Experiment

// ExperimentConfig selects quick or full (paper-sized) scale and the
// base seed.
type ExperimentConfig = experiments.Config

// Table is one experiment's formatted result table.
type Table = experiments.Table

// Experiments returns the registry of reproduction experiments, in
// presentation order.
func Experiments() []Experiment { return experiments.All }

// ExperimentByID finds an experiment by its ID, or nil.
func ExperimentByID(id string) *Experiment { return experiments.ByID(id) }
