package sim_test

import (
	"fmt"

	"spinal"
	"spinal/sim"
)

// quickParams keeps the examples fast; they demonstrate the harness, not
// the code's peak rate.
func quickParams() spinal.Params {
	p := spinal.DefaultParams()
	p.B = 8
	return p
}

// ExampleMeasureMultiFlow runs a small mixed workload — several datagram
// sizes over several SNRs, multiplexed through one link engine — and
// checks every flow delivered.
func ExampleMeasureMultiFlow() {
	res := sim.MeasureMultiFlow(sim.MultiFlowConfig{
		Params:   quickParams(),
		Flows:    6,
		MinBytes: 64,
		MaxBytes: 256,
		SNRsDB:   []float64{10, 15},
		Seed:     1,
	})
	fmt.Println("flows:", res.Flows)
	fmt.Println("failures:", res.Failures)
	fmt.Println("delivered something:", res.Bytes > 0 && res.Rate > 0)
	// Output:
	// flows: 6
	// failures: 0
	// delivered something: true
}

// ExampleMeasureDaemonLoad sweeps concurrent flows through one
// spinald-style daemon and reports the multiplexing gain: with one flow
// per shard, aggregate goodput grows with the flow count.
func ExampleMeasureDaemonLoad() {
	points, err := sim.MeasureDaemonLoad(sim.DaemonLoadConfig{
		Shards:     2,
		Params:     quickParams(),
		SNRdB:      10,
		Size:       64,
		FlowCounts: []int{1, 2},
		Seed:       1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, pt := range points {
		fmt.Printf("flows=%d delivered=%d outaged=%d\n", pt.Flows, pt.Delivered, pt.Outaged)
	}
	fmt.Println("goodput doubled:", points[1].Goodput > 1.9*points[0].Goodput)
	// Output:
	// flows=1 delivered=1 outaged=0
	// flows=2 delivered=2 outaged=0
	// goodput doubled: true
}
