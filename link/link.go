// Package link is the public link-layer API of the spinal-code library:
// the §6 rateless protocol (CRC-protected code blocks, rateless symbol
// frames, one-bit-per-block acks) grown into a multi-flow engine with
// rate adaptation, realistic ARQ feedback, and half-duplex pacing — all
// behind a small composable façade.
//
// # Session
//
// Session is the front door: a multi-flow link over a shared medium,
// configured with functional options and driven with context-aware
// Step/Drain:
//
//	s, err := link.NewSession(spinal.DefaultParams(),
//		link.WithChannel(channel.NewAWGN(10, 1)),
//		link.WithRatePolicyFunc(func() link.RatePolicy { return link.NewTrackingRate(10) }),
//	)
//	id, _ := s.Send(datagram)
//	results, err := s.Drain(ctx)
//
// # Conn
//
// Conn wraps a Session pair into an io.Reader/io.Writer: every Write
// crosses the configured channel.Model as one rateless datagram and the
// delivered bytes become readable, so a spinal link drops into any
// byte-stream plumbing.
//
// # Extension interfaces
//
// Three small interfaces are the stable plug-in points — implement them
// in your own package and pass them through options, no internal imports
// needed:
//
//   - RatePolicy (optionally RateObserver) paces how fast a flow walks
//     its symbol schedule each round;
//   - PausePolicy paces half-duplex feedback turnarounds;
//   - FeedbackObserver taps reverse-channel telemetry.
//
// The concrete types here are aliases of the engine-internal
// implementations, so the public surface and the engine cannot drift
// apart; see docs/API.md for the stability guarantees.
package link

import (
	"spinal"
	"spinal/internal/framing"
	ilink "spinal/internal/link"
)

// FlowID identifies one datagram in flight through a Session.
type FlowID = ilink.FlowID

// Result reports a resolved flow: its reassembled datagram on success,
// or a typed error (ErrFlowBudget) on give-up, plus transfer statistics.
type Result = ilink.FlowResult

// Stats summarizes a flow's transfer: frames, symbols, blocks, ARQ and
// half-duplex accounting, and the achieved rate in bits per symbol.
type Stats = ilink.Stats

// RatePolicy paces one flow: how many fresh puncturing subpasses (§5)
// each outstanding code block transmits in the coming round. Implement
// it to plug your own rate adaptation into a Session.
type RatePolicy = ilink.RatePolicy

// RateObserver is the optional feedback half of a RatePolicy: policies
// that implement it are told every decoded block's bit count and total
// symbol spend, and can track a time-varying channel.
type RateObserver = ilink.RateObserver

// PausePolicy decides how many frames a half-duplex sender transmits
// before pausing for receiver feedback.
type PausePolicy = ilink.PausePolicy

// FeedbackObserver receives reverse-channel telemetry (FeedbackEvent)
// from a Session configured with WithFeedbackObserver.
type FeedbackObserver = ilink.FeedbackObserver

// FeedbackEvent is one observation of a flow's reverse (ACK) path.
type FeedbackEvent = ilink.FeedbackEvent

// FeedbackEventKind distinguishes the observable moments of an ack's
// life: AckSent and AckDelivered.
type FeedbackEventKind = ilink.FeedbackEventKind

// Feedback event kinds.
const (
	AckSent      = ilink.AckSent
	AckDelivered = ilink.AckDelivered
)

// FixedRate transmits a constant number of subpasses per block per round.
type FixedRate = ilink.FixedRate

// CapacityRate opens each block with a burst sized from a (possibly
// stale) SNR estimate, then trickles geometric increments.
type CapacityRate = ilink.CapacityRate

// TrackingRate is a closed-loop RatePolicy for time-varying channels: it
// paces like CapacityRate but moves its SNR estimate with every decoded
// block. Stateful — give each flow its own (see WithRatePolicyFunc).
type TrackingRate = ilink.TrackingRate

// NewTrackingRate creates a tracking policy starting from initialSNRdB.
func NewTrackingRate(initialSNRdB float64) *TrackingRate { return ilink.NewTrackingRate(initialSNRdB) }

// CapacityPolicy is the capacity-estimate PausePolicy: a first burst to
// the estimated decoding point, then geometrically growing polls.
type CapacityPolicy = ilink.CapacityPolicy

// EveryFrame is the conservative PausePolicy that pauses after every
// frame.
type EveryFrame = ilink.EveryFrame

// SchedulerConfig selects deficit-weighted fair queuing for the
// session's admission phase (see WithScheduler): Quantum is the symbol
// credit one unit of flow weight earns per round, Burst caps how many
// rounds of credit an idle flow can bank.
type SchedulerConfig = ilink.SchedulerConfig

// SchedulerStats is the DWFQ scheduler's accounting (see
// Session.SchedulerStats).
type SchedulerStats = ilink.SchedulerStats

// FeedbackConfig describes the reverse (ACK) path and the sender's ARQ
// reaction to it: delivery delay/jitter/loss, retransmission timeouts,
// the in-flight window, and chase-combining vs discard-and-retry.
type FeedbackConfig = ilink.FeedbackConfig

// HalfDuplexConfig prices reverse-channel (ack) airtime on a shared
// half-duplex medium (see WithHalfDuplex).
type HalfDuplexConfig = ilink.HalfDuplexConfig

// FaultConfig parameterizes deterministic adversarial-link fault
// injection — reorder, duplication, truncation, bit-flip corruption and
// bursty blackout on the forward path, plus reverse-path counterparts
// for acks (see WithFaults). The zero value injects nothing; Scale
// derives intensity sweeps.
type FaultConfig = ilink.FaultConfig

// FaultStats counts the faults injected into one flow, by direction and
// kind (Stats.Faults).
type FaultStats = ilink.FaultStats

// Channel perturbs a flow's share of a frame in place; a nil return
// means the share was erased. It is the raw medium interface beneath
// channel.Model — implement Model instead unless you need erasures or
// exotic media.
type Channel = ilink.Channel

// Sender is the transport-agnostic §6 sending state machine: it segments
// a datagram into CRC-protected code blocks and streams rateless frames.
// Session drives Senders internally; use one directly (with Receiver and
// the wire codec) to put a spinal link on your own transport.
type Sender = ilink.Sender

// Receiver is the §6 receiving state machine: it accumulates symbols per
// block, decodes as they suffice, and answers every frame with an Ack.
type Receiver = ilink.Receiver

// NewSender segments the datagram into code blocks of at most
// maxBlockBits (0 ⇒ the §6 default of 1024) and prepares the schedules.
func NewSender(datagram []byte, p spinal.Params, maxBlockBits int) *Sender {
	return ilink.NewSender(datagram, p, maxBlockBits)
}

// NewReceiver creates a receiver with the same code parameters as the
// sender.
func NewReceiver(p spinal.Params) *Receiver { return ilink.NewReceiver(p) }

// Frame is one link-layer transmission: a sequence number plus one batch
// per not-yet-acknowledged code block.
type Frame = ilink.Frame

// Batch carries one code block's symbols within a frame.
type Batch = ilink.Batch

// Ack is the receiver's reply: one bit per code block, behind the
// sequence number it acknowledges.
type Ack = framing.Ack

// EncodeFrame serializes a frame to its compact binary wire form.
func EncodeFrame(f *Frame) []byte { return ilink.EncodeFrame(f) }

// DecodeFrame parses a wire-format frame; structurally hostile bytes
// yield ErrBadWire, never a panic or unbounded allocation.
func DecodeFrame(data []byte) (*Frame, error) { return ilink.DecodeFrame(data) }

// EncodeAck serializes an ack, choosing the smaller of the bitmap and
// per-block selective wire variants.
func EncodeAck(a Ack) []byte { return ilink.EncodeAck(a) }

// DecodeAck parses a wire-format ack; the parser is strict, so
// EncodeAck∘DecodeAck is the identity on every accepted input.
func DecodeAck(data []byte) (Ack, error) { return ilink.DecodeAck(data) }

// Transfer drives a complete single-datagram sender→receiver exchange
// through ch, returning the received datagram and statistics. maxFrames
// bounds the exchange (0 means 10000).
func Transfer(datagram []byte, p spinal.Params, maxBlockBits int, ch Channel, maxFrames int) ([]byte, Stats, error) {
	return ilink.Transfer(datagram, p, maxBlockBits, ch, maxFrames)
}

// TransferWithPolicy is Transfer with an explicit half-duplex pause
// policy; it additionally returns the number of feedback turnarounds.
func TransferWithPolicy(datagram []byte, p spinal.Params, maxBlockBits int, ch Channel, policy PausePolicy, maxFrames int) ([]byte, Stats, int, error) {
	return ilink.TransferWithPolicy(datagram, p, maxBlockBits, ch, policy, maxFrames)
}

// Typed errors, re-exported so callers can errors.Is against the public
// package alone.
var (
	// ErrFlowBudget reports a flow that exhausted its round budget before
	// every code block decoded.
	ErrFlowBudget = ilink.ErrFlowBudget
	// ErrDeadline reports a flow that missed its WithDeadline round
	// deadline before every code block decoded.
	ErrDeadline = ilink.ErrDeadline
	// ErrNilFrame reports a nil frame handed to a receiver.
	ErrNilFrame = ilink.ErrNilFrame
	// ErrBadLayout reports a frame with an invalid code-block layout.
	ErrBadLayout = ilink.ErrBadLayout
	// ErrMalformedBatch reports a batch whose symbol and ID counts
	// disagree.
	ErrMalformedBatch = ilink.ErrMalformedBatch
	// ErrBadSymbolID reports a batch carrying a symbol ID outside its
	// block's spine.
	ErrBadSymbolID = ilink.ErrBadSymbolID
	// ErrBadSymbol reports a non-finite or absurdly large symbol value.
	ErrBadSymbol = ilink.ErrBadSymbol
	// ErrStaleFrame reports a frame carrying no batch for an outstanding
	// block; the ACK returned with it is still valid.
	ErrStaleFrame = ilink.ErrStaleFrame
	// ErrBlockFull reports symbols dropped at a block's accumulator
	// bound — replayed or hostile traffic cannot grow receiver memory
	// without limit.
	ErrBlockFull = ilink.ErrBlockFull
	// ErrIncomplete reports a datagram read before every block decoded.
	ErrIncomplete = ilink.ErrIncomplete
	// ErrBadWire reports bytes that do not parse as a frame.
	ErrBadWire = ilink.ErrBadWire
	// ErrBadAckWire reports bytes that do not parse as an ack.
	ErrBadAckWire = ilink.ErrBadAckWire
)
