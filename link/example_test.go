package link_test

import (
	"bytes"
	"context"
	"fmt"
	"io"

	"spinal"
	"spinal/channel"
	"spinal/link"
)

// quickParams keeps the examples fast: a narrow beam decodes small
// payloads instantly and deterministically.
func quickParams() spinal.Params {
	p := spinal.DefaultParams()
	p.B = 16
	return p
}

// ExampleSession transmits one datagram over an AWGN channel and drains
// the session to completion.
func ExampleSession() {
	s, err := link.NewSession(quickParams(),
		link.WithChannel(channel.NewAWGN(12, 1)),
	)
	if err != nil {
		panic(err)
	}
	defer s.Close()

	msg := []byte("rateless all the way down")
	id, _ := s.Send(msg)
	results, err := s.Drain(context.Background())
	if err != nil {
		panic(err)
	}
	r := results[0]
	fmt.Println("flow:", r.ID == id)
	fmt.Println("delivered:", bytes.Equal(r.Datagram, msg))
	fmt.Println("blocks:", r.Stats.Blocks)
	// Output:
	// flow: true
	// delivered: true
	// blocks: 1
}

// ExampleConn streams bytes through the io.Reader/io.Writer façade: what
// goes in one end comes out the other, having crossed the channel as
// rateless spinal datagrams.
func ExampleConn() {
	c, err := link.Dial(quickParams(), channel.NewAWGN(12, 2))
	if err != nil {
		panic(err)
	}
	defer c.Close()

	if _, err := c.Write([]byte("hello, ")); err != nil {
		panic(err)
	}
	if _, err := c.Write([]byte("spinal codes")); err != nil {
		panic(err)
	}
	got, _ := io.ReadAll(c)
	fmt.Printf("%s\n", got)
	fmt.Println("rate > 0:", c.Stats().Rate > 0)
	// Output:
	// hello, spinal codes
	// rate > 0: true
}

// ExampleWithChannel gives a flow a time-varying medium: any
// channel.Model drops in.
func ExampleWithChannel() {
	s, err := link.NewSession(quickParams(),
		link.WithChannel(channel.NewGilbertElliott(18, 2, 0.001, 0.004, 3)),
	)
	if err != nil {
		panic(err)
	}
	defer s.Close()
	msg := []byte("through the bursts")
	s.Send(msg)
	results, _ := s.Drain(context.Background())
	fmt.Println("delivered:", bytes.Equal(results[0].Datagram, msg))
	// Output:
	// delivered: true
}

// ExampleWithRatePolicy paces a flow with a capacity-estimate burst
// policy instead of the default one-subpass trickle.
func ExampleWithRatePolicy() {
	s, err := link.NewSession(quickParams(),
		link.WithChannel(channel.NewAWGN(15, 4)),
		link.WithRatePolicy(link.CapacityRate{SNREstimateDB: 15}),
	)
	if err != nil {
		panic(err)
	}
	defer s.Close()
	msg := []byte("burst to the decoding point")
	s.Send(msg)
	results, _ := s.Drain(context.Background())
	r := results[0]
	fmt.Println("delivered:", bytes.Equal(r.Datagram, msg))
	fmt.Println("few frames:", r.Stats.Frames <= 3)
	// Output:
	// delivered: true
	// few frames: true
}

// ExampleWithRatePolicyFunc installs a factory so every flow gets its
// own stateful closed-loop policy.
func ExampleWithRatePolicyFunc() {
	s, err := link.NewSession(quickParams(),
		link.WithChannel(channel.NewAWGN(10, 5)),
		link.WithRatePolicyFunc(func() link.RatePolicy {
			return link.NewTrackingRate(10)
		}),
	)
	if err != nil {
		panic(err)
	}
	defer s.Close()
	a, b := []byte("first flow"), []byte("second flow")
	s.Send(a)
	s.Send(b)
	results, _ := s.Drain(context.Background())
	ok := 0
	for _, r := range results {
		if r.Err == nil {
			ok++
		}
	}
	fmt.Println("delivered:", ok)
	// Output:
	// delivered: 2
}

// ExampleWithFeedback replaces §6's instant perfect acks with a delayed
// lossy reverse channel; the sender's ARQ timers carry the transfer.
func ExampleWithFeedback() {
	s, err := link.NewSession(quickParams(),
		link.WithChannel(channel.NewAWGN(12, 6)),
		link.WithFeedback(link.FeedbackConfig{DelayRounds: 3, Loss: 0.2}),
		link.WithSeed(42),
	)
	if err != nil {
		panic(err)
	}
	defer s.Close()
	msg := []byte("acks take the scenic route")
	s.Send(msg)
	results, _ := s.Drain(context.Background())
	r := results[0]
	fmt.Println("delivered:", bytes.Equal(r.Datagram, msg))
	fmt.Println("acks sent > 0:", r.Stats.AcksSent > 0)
	// Output:
	// delivered: true
	// acks sent > 0: true
}

// ExampleWithPausePolicy paces a half-duplex sender: bursts of frames,
// feedback only at the turnarounds.
func ExampleWithPausePolicy() {
	s, err := link.NewSession(quickParams(),
		link.WithChannel(channel.NewAWGN(10, 7)),
		link.WithPausePolicy(link.CapacityPolicy{SNREstimateDB: 10}),
	)
	if err != nil {
		panic(err)
	}
	defer s.Close()
	msg := []byte("long bursts, few turnarounds, that is the half-duplex deal")
	s.Send(msg)
	results, _ := s.Drain(context.Background())
	r := results[0]
	fmt.Println("delivered:", bytes.Equal(r.Datagram, msg))
	fmt.Println("paused less than framed:", r.Stats.Pauses < r.Stats.Frames)
	// Output:
	// delivered: true
	// paused less than framed: true
}

// ExampleWithHalfDuplex charges ack airtime against the flow: the
// reported rate divides by forward plus reverse symbols.
func ExampleWithHalfDuplex() {
	s, err := link.NewSession(quickParams(),
		link.WithChannel(channel.NewAWGN(12, 8)),
		link.WithHalfDuplex(2), // QPSK-like reverse link
	)
	if err != nil {
		panic(err)
	}
	defer s.Close()
	msg := []byte("acks are not free on a shared medium")
	s.Send(msg)
	results, _ := s.Drain(context.Background())
	r := results[0]
	fmt.Println("ack symbols charged:", r.Stats.AckSymbols > 0)
	honest := float64(len(msg)*8) / float64(r.Stats.SymbolsSent+r.Stats.AckSymbols)
	fmt.Println("rate is airtime-honest:", r.Stats.Rate == honest)
	// Output:
	// ack symbols charged: true
	// rate is airtime-honest: true
}

// ExampleWithCodecPool sizes the sharded codec-worker pool the session
// runs its encode and decode jobs on.
func ExampleWithCodecPool() {
	s, err := link.NewSession(quickParams(),
		link.WithChannel(channel.NewAWGN(15, 9)),
		link.WithCodecPool(2),
	)
	if err != nil {
		panic(err)
	}
	defer s.Close()
	for i := 0; i < 4; i++ {
		s.Send([]byte("one of several concurrent flows"))
	}
	results, _ := s.Drain(context.Background())
	fmt.Println("flows resolved:", len(results))
	// Output:
	// flows resolved: 4
}

// ExampleWithFeedbackObserver taps reverse-channel telemetry through the
// FeedbackObserver extension interface.
func ExampleWithFeedbackObserver() {
	var events int
	s, err := link.NewSession(quickParams(),
		link.WithChannel(channel.NewAWGN(12, 10)),
		link.WithFeedback(link.FeedbackConfig{DelayRounds: 1}),
		link.WithFeedbackObserver(observerFunc(func(ev link.FeedbackEvent) {
			events++
		})),
	)
	if err != nil {
		panic(err)
	}
	defer s.Close()
	s.Send([]byte("watched all the way"))
	results, _ := s.Drain(context.Background())
	fmt.Println("delivered:", results[0].Err == nil)
	fmt.Println("events observed:", events > 0)
	// Output:
	// delivered: true
	// events observed: true
}

// observerFunc adapts a function to the FeedbackObserver interface.
type observerFunc func(link.FeedbackEvent)

func (f observerFunc) ObserveFeedback(ev link.FeedbackEvent) { f(ev) }
