package link_test

import (
	"bytes"
	"errors"
	"io"
	"os"
	"testing"
	"time"

	"spinal/channel"
	"spinal/link"
)

func dialDeadlineConn(t *testing.T) *link.Conn {
	t.Helper()
	c, err := link.Dial(testParams(), channel.NewAWGN(12, 10))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestConnReadDeadlineExpiresMidRead(t *testing.T) {
	c := dialDeadlineConn(t)
	start := time.Now()
	if err := c.SetReadDeadline(start.Add(80 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	// Nothing buffered: Read must block on the deadline, not return EOF.
	n, err := c.Read(make([]byte, 16))
	if n != 0 || !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("Read = %d, %v; want 0, os.ErrDeadlineExceeded", n, err)
	}
	if waited := time.Since(start); waited < 40*time.Millisecond {
		t.Fatalf("Read returned after %v, before the deadline could expire", waited)
	}
}

func TestConnReadDeadlineUnblocksOnWrite(t *testing.T) {
	c := dialDeadlineConn(t)
	if err := c.SetReadDeadline(time.Now().Add(30 * time.Second)); err != nil {
		t.Fatal(err)
	}
	msg := []byte("delivered while a reader waits")
	errc := make(chan error, 1)
	go func() {
		time.Sleep(20 * time.Millisecond)
		_, err := c.Write(msg)
		errc <- err
	}()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("blocked Read: %v", err)
	}
	if !bytes.Equal(buf, msg) {
		t.Fatal("read bytes corrupted")
	}
	if err := <-errc; err != nil {
		t.Fatalf("Write: %v", err)
	}
}

func TestConnReadDeadlineInPastFailsImmediately(t *testing.T) {
	c := dialDeadlineConn(t)
	if err := c.SetReadDeadline(time.Now().Add(-time.Second)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("Read = %v, want os.ErrDeadlineExceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("past deadline should fail without blocking")
	}
	// Buffered bytes stay readable even past the deadline's failure path
	// once the deadline is cleared.
	if err := c.SetReadDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("cleared deadline: Read = %v, want io.EOF", err)
	}
}

func TestConnCloseUnblocksRead(t *testing.T) {
	c := dialDeadlineConn(t)
	if err := c.SetReadDeadline(time.Now().Add(30 * time.Second)); err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 1))
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if !errors.Is(err, link.ErrClosed) {
			t.Fatalf("blocked Read after Close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock the pending Read")
	}
	if err := c.SetReadDeadline(time.Time{}); !errors.Is(err, link.ErrClosed) {
		t.Fatalf("SetReadDeadline after Close = %v, want ErrClosed", err)
	}
}

func TestConnWriteDeadlineExpired(t *testing.T) {
	c := dialDeadlineConn(t)
	if err := c.SetDeadline(time.Now().Add(-time.Second)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("never makes it")); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("Write = %v, want os.ErrDeadlineExceeded", err)
	}
	// Clearing the deadlines restores the synchronous Write path (the
	// stranded flow's airtime is drained and accounted alongside it).
	if err := c.SetDeadline(time.Time{}); err != nil {
		t.Fatal(err)
	}
	msg := []byte("second try delivers")
	if n, err := c.Write(msg); err != nil || n != len(msg) {
		t.Fatalf("Write after clearing deadline = %d, %v", n, err)
	}
}
