package link_test

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"testing"

	"spinal/channel"
	"spinal/link"
)

func TestConnRoundTrip(t *testing.T) {
	c, err := link.Dial(testParams(), channel.NewAWGN(12, 10))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rng := rand.New(rand.NewSource(7))
	msgs := [][]byte{make([]byte, 100), make([]byte, 300), []byte("short")}
	rng.Read(msgs[0])
	rng.Read(msgs[1])
	var want bytes.Buffer
	for _, m := range msgs {
		n, err := c.Write(m)
		if err != nil {
			t.Fatal(err)
		}
		if n != len(m) {
			t.Fatalf("short write %d/%d", n, len(m))
		}
		want.Write(m)
	}

	var got bytes.Buffer
	if _, err := io.Copy(&got, c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("conn stream corrupted")
	}
	st := c.Stats()
	if st.SymbolsSent <= 0 || st.Rate <= 0 {
		t.Fatalf("implausible conn stats %+v", st)
	}
}

func TestConnWriteLeavesCallerBuffer(t *testing.T) {
	c, err := link.Dial(testParams(), channel.NewAWGN(15, 11))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	buf := []byte("reused immediately after Write")
	if _, err := c.Write(buf); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 0 // io.Writer allows the caller to reuse p right away
	}
	got, err := io.ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "reused immediately after Write" {
		t.Fatalf("delivered bytes alias the caller's buffer: %q", got)
	}
}

func TestConnBudgetExhaustion(t *testing.T) {
	// 2 rounds at 0 dB cannot carry 2 KiB; the Write must fail with the
	// flow's error and deliver nothing.
	c, err := link.Dial(testParams(), channel.NewAWGN(0, 12), link.WithMaxRounds(2))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	data := make([]byte, 2048)
	n, err := c.Write(data)
	if n != 0 || !errors.Is(err, link.ErrFlowBudget) {
		t.Fatalf("Write = %d, %v; want 0, ErrFlowBudget", n, err)
	}
	if b, _ := io.ReadAll(c); len(b) != 0 {
		t.Fatalf("failed write delivered %d bytes", len(b))
	}
}

func TestConnReadSemantics(t *testing.T) {
	c, err := link.Dial(testParams(), channel.NewAWGN(15, 13))
	if err != nil {
		t.Fatal(err)
	}
	// Empty conn: EOF, like an empty bytes.Buffer.
	if n, err := c.Read(make([]byte, 8)); n != 0 || err != io.EOF {
		t.Fatalf("empty Read = %d, %v", n, err)
	}
	if _, err := c.Write([]byte("abcdef")); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 4)
	if n, _ := c.Read(p); n != 4 || string(p[:4]) != "abcd" {
		t.Fatalf("partial read %q", p[:n])
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	// Buffered bytes stay readable after Close; writes do not.
	if n, _ := c.Read(p); n != 2 || string(p[:2]) != "ef" {
		t.Fatalf("post-close read lost data")
	}
	if _, err := c.Write([]byte("x")); !errors.Is(err, link.ErrClosed) {
		t.Fatalf("Write on closed conn: %v", err)
	}
}
