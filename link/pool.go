package link

import (
	"spinal"
	"spinal/internal/core"
)

// PoolStats counts codec constructions since a pool started — the
// observable that proves workers reuse warmed codecs instead of
// rebuilding them per job (spinald exports it on its telemetry
// endpoint).
type PoolStats = core.CodecPoolStats

// CodecPool is a sharded pool of persistent codec workers that several
// Sessions can share — the daemon pattern: N per-core sessions, one
// warmed pool, so handing a flow from one session to another never cools
// the codecs. Create it once, pass it to each session with
// WithSharedPool, and Close it after every sharing session has closed.
type CodecPool struct {
	p *core.CodecPool
}

// NewCodecPool starts a pool of shards persistent codec workers for the
// given code parameters (shards ≤ 0 means GOMAXPROCS). Sessions sharing
// the pool must use the same parameters.
func NewCodecPool(p spinal.Params, shards int) *CodecPool {
	return &CodecPool{p: core.NewCodecPool(p, shards)}
}

// Shards reports the number of worker shards.
func (cp *CodecPool) Shards() int { return cp.p.Shards() }

// Stats reports construction counters; safe to call concurrently with
// running sessions.
func (cp *CodecPool) Stats() PoolStats { return cp.p.Stats() }

// Close stops the workers after draining queued jobs. Idempotent; every
// session sharing the pool must be closed (or idle forever) first.
func (cp *CodecPool) Close() { cp.p.Close() }
