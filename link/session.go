package link

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"spinal"
	"spinal/channel"
	"spinal/code"
	ilink "spinal/internal/link"
)

// ErrClosed reports an operation on a closed Session or Conn (including
// a second Close — daemons that tear a connection down from two paths
// learn which one was late instead of racing).
var ErrClosed = errors.New("link: session closed")

// ErrDraining reports an operation that arrived while another goroutine
// holds the session in Drain: admitting or stepping mid-drain has no
// coherent semantics, so the session rejects it with a typed error
// instead of interleaving rounds.
var ErrDraining = errors.New("link: session draining")

// config accumulates the effect of Options. One struct serves both
// scopes: NewSession reads the engine fields and keeps the flow fields
// as per-Send defaults; Send applies flow-scoped options on top of those
// defaults and rejects session-scoped ones.
type config struct {
	engine ilink.EngineConfig
	flow   flowConfig
	// sessionOnly names the session-scoped options applied, so Send can
	// reject them with a useful message.
	sessionOnly []string
}

// flowConfig is the flow-scoped option state.
type flowConfig struct {
	channel   Channel
	rate      RatePolicy
	rateFn    func() RatePolicy
	pause     PausePolicy
	maxRounds int
	weight    int
	priority  int
	deadline  int
}

// Option configures a Session (at NewSession) or one flow (at Send).
// Each option documents its scope; Send returns an error when handed a
// session-scoped option.
type Option func(*config)

// WithChannel routes flows through model, adapted to the link's Channel
// interface at the boundary. Flow- or session-scoped (a session-scoped
// model is shared by every flow that does not override it — fine for
// stateless media, but per-flow models see an interleaved symbol stream;
// pass per-flow channels at Send when that matters).
func WithChannel(model channel.Model) Option {
	return func(c *config) { c.flow.channel = NewModelChannel(model, 0, 0) }
}

// WithRawChannel routes flows through a raw Channel implementation —
// a ModelChannel with erasures, or any custom medium. Flow- or
// session-scoped.
func WithRawChannel(ch Channel) Option {
	return func(c *config) { c.flow.channel = ch }
}

// WithRatePolicy paces flows with p. Flow- or session-scoped; a
// session-scoped policy is shared by every flow, which is only correct
// for stateless policies (FixedRate, CapacityRate) — for stateful ones
// like TrackingRate use WithRatePolicyFunc, or pass a fresh policy to
// each Send.
func WithRatePolicy(p RatePolicy) Option {
	return func(c *config) { c.flow.rate, c.flow.rateFn = p, nil }
}

// WithRatePolicyFunc installs a session-wide rate-policy factory: every
// flow admitted without its own WithRatePolicy gets f()'s fresh policy,
// making stateful policies safe as a session default.
func WithRatePolicyFunc(f func() RatePolicy) Option {
	return func(c *config) { c.flow.rateFn, c.flow.rate = f, nil }
}

// WithPausePolicy paces a flow's half-duplex feedback turnarounds: the
// sender transmits policy-sized bursts and hears the receiver's per-block
// state only at each burst's end. Flow- or session-scoped. Incompatible
// with WithFeedback (which models a full-duplex delayed reverse channel);
// NewSession and Send report the conflict.
func WithPausePolicy(p PausePolicy) Option {
	return func(c *config) { c.flow.pause = p }
}

// WithMaxRounds bounds a flow's lifetime in scheduling rounds before it
// resolves with ErrFlowBudget (0 keeps the engine default of 512). Flow-
// or session-scoped.
func WithMaxRounds(n int) Option {
	return func(c *config) {
		c.engine.MaxRounds = n
		c.flow.maxRounds = n
	}
}

// WithWeight sets a flow's share of the link under WithScheduler: a
// weight-2 flow earns twice the per-round symbol credit of a weight-1
// flow (0 ⇒ 1). Ignored under the default round-robin admission. Flow-
// or session-scoped.
func WithWeight(w int) Option {
	return func(c *config) { c.flow.weight = w }
}

// WithPriority puts a flow in a strict scheduling class under
// WithScheduler: each round serves higher classes before lower ones
// (and can starve them — use WithWeight within a class for proportional
// sharing). Ignored under round-robin. Flow- or session-scoped.
func WithPriority(p int) Option {
	return func(c *config) { c.flow.priority = p }
}

// WithDeadline resolves a flow with ErrDeadline once it has aged n
// rounds without completing; under WithScheduler, deadline flows are
// additionally served earliest-deadline-first within their priority
// class. 0 means no deadline. Flow- or session-scoped.
func WithDeadline(n int) Option {
	return func(c *config) { c.flow.deadline = n }
}

// WithScheduler replaces the engine's round-robin admission with
// deficit-weighted fair queuing: per-flow weights (WithWeight), strict
// priority classes (WithPriority), optional deadlines (WithDeadline),
// and quantum-based credit accounting over symbol spend — so elephants
// cannot starve mice, and under WithHalfDuplex each ack's reverse
// airtime is debited from the flow that caused it. Session-scoped.
func WithScheduler(sc SchedulerConfig) Option {
	return func(c *config) {
		c.engine.Scheduler = &sc
		c.sessionOnly = append(c.sessionOnly, "WithScheduler")
	}
}

// WithFeedback replaces §6's instant perfect per-block acks with an
// explicit reverse channel: acks cross a queue with the configured
// delay/jitter/loss and the sender paces blocks with retransmission
// timers, backoff and a bounded in-flight window. Session-scoped.
func WithFeedback(fc FeedbackConfig) Option {
	return func(c *config) {
		c.engine.Feedback = &fc
		c.sessionOnly = append(c.sessionOnly, "WithFeedback")
	}
}

// WithFeedbackObserver taps the session's reverse-channel telemetry:
// o sees every ack a receiver emits and every ack a sender applies.
// Session-scoped.
func WithFeedbackObserver(o FeedbackObserver) Option {
	return func(c *config) {
		c.engine.Observer = o
		c.sessionOnly = append(c.sessionOnly, "WithFeedbackObserver")
	}
}

// WithHalfDuplex charges reverse-channel airtime against the flows that
// cause it, as on a real shared half-duplex medium: each ack's wire
// bytes are converted to symbols at bitsPerAckSymbol (0 ⇒ 2, QPSK-like),
// reported in Stats.AckSymbols, and included in Stats.Rate's denominator.
// Session-scoped.
func WithHalfDuplex(bitsPerAckSymbol int) Option {
	return func(c *config) {
		c.engine.HalfDuplex = &ilink.HalfDuplexConfig{AckBitsPerSymbol: bitsPerAckSymbol}
		c.sessionOnly = append(c.sessionOnly, "WithHalfDuplex")
	}
}

// WithCode runs every flow of the session over cd — any spinal/code
// implementation: code.Spinal (the default behaviour, recognized and run
// on the native pooled fast path), or a §8 baseline from spinal/baseline
// (Raptor, Strider, turbo, the rate-switching LDPC shim). The whole
// scenario surface — channels, rate and pause policies, delayed/lossy
// feedback, half-duplex accounting, fault injection — works unchanged
// over any code. Session-scoped.
func WithCode(cd code.Code) Option {
	return func(c *config) {
		c.engine.Code = cd
		c.sessionOnly = append(c.sessionOnly, "WithCode")
	}
}

// WithCodecPool sizes the session's sharded pool of persistent codec
// workers (0 ⇒ GOMAXPROCS). Session-scoped.
func WithCodecPool(shards int) Option {
	return func(c *config) {
		c.engine.Shards = shards
		c.sessionOnly = append(c.sessionOnly, "WithCodecPool")
	}
}

// WithSharedPool runs the session's codec work on an externally owned
// CodecPool shared with other sessions — the daemon pattern: N per-core
// sessions, one warmed pool. The pool's code parameters must match the
// session's; the session's Close leaves the pool running for its owner
// to close. Session-scoped.
func WithSharedPool(p *CodecPool) Option {
	return func(c *config) {
		c.engine.Pool = p.p
		c.sessionOnly = append(c.sessionOnly, "WithSharedPool")
	}
}

// WithMaxBlockBits bounds the code blocks datagrams are segmented into
// (0 ⇒ the §6 default of 1024). Session-scoped.
func WithMaxBlockBits(n int) Option {
	return func(c *config) {
		c.engine.MaxBlockBits = n
		c.sessionOnly = append(c.sessionOnly, "WithMaxBlockBits")
	}
}

// WithFrameSymbols sets the shared-frame symbol budget — the
// backpressure point at which remaining flows wait for the next round
// (0 ⇒ 4096). Session-scoped.
func WithFrameSymbols(n int) Option {
	return func(c *config) {
		c.engine.FrameSymbols = n
		c.sessionOnly = append(c.sessionOnly, "WithFrameSymbols")
	}
}

// WithFrameLoss erases entire shared frames with probability p.
// Session-scoped.
func WithFrameLoss(p float64) Option {
	return func(c *config) {
		c.engine.FrameLoss = p
		c.sessionOnly = append(c.sessionOnly, "WithFrameLoss")
	}
}

// WithSeed seeds the session's randomness (frame loss, feedback jitter).
// Session-scoped.
func WithSeed(seed int64) Option {
	return func(c *config) {
		c.engine.Seed = seed
		c.sessionOnly = append(c.sessionOnly, "WithSeed")
	}
}

// WithFaults runs every flow's traffic through a deterministic
// adversarial fault injector: each round's forward frame share may be
// reordered, duplicated, truncated, bit-flipped or swallowed by a
// blackout burst, and — under WithFeedback — each ack suffers the
// configured reverse-path counterparts. Faults are seeded (from fc.Seed,
// WithSeed and the flow ID), counted in Stats.Faults, and applied to
// wire bytes, so the strict parsers and typed-error paths are exercised
// on the live path. Session-scoped.
func WithFaults(fc FaultConfig) Option {
	return func(c *config) {
		c.engine.Faults = &fc
		c.sessionOnly = append(c.sessionOnly, "WithFaults")
	}
}

// WithInvariantChecks asserts the engine's conservation laws (flow
// conservation, ack monotonicity, window and memory bounds, symbol
// accounting) after every Step, panicking with a diagnostic on the first
// violation. Intended for tests and chaos soaks. Session-scoped.
func WithInvariantChecks() Option {
	return func(c *config) {
		c.engine.CheckInvariants = true
		c.sessionOnly = append(c.sessionOnly, "WithInvariantChecks")
	}
}

// Session is the public façade over the multi-flow link engine: datagrams
// enter as flows via Send, rounds run via Step or Drain (both honoring
// context cancellation), and each flow leaves exactly once as a Result.
//
// A Session serializes its API with an internal mutex, so concurrent
// misuse resolves into typed errors instead of data races: Send or Step
// during another goroutine's Drain returns ErrDraining, any call after
// Close (including a second Close) returns ErrClosed, and a Close that
// lands mid-Drain stops the drain at the next round boundary (the drain
// returns the results resolved so far together with ErrClosed). The
// engine itself still runs one round at a time; parallelism lives inside
// each round's codec work, on the session's sharded worker pool.
type Session struct {
	eng      *ilink.Engine
	def      flowConfig
	feedback bool // the session runs an explicit reverse channel

	mu       sync.Mutex // serializes engine access and state transitions
	closed   bool
	draining bool
}

// NewSession starts a link session for the given code parameters.
// Options set the engine-wide configuration and the per-flow defaults
// that Send inherits.
func NewSession(p spinal.Params, opts ...Option) (*Session, error) {
	var c config
	c.engine.Params = p
	for _, o := range opts {
		o(&c)
	}
	if c.flow.pause != nil && c.engine.Feedback != nil {
		return nil, errors.New("link: WithPausePolicy and WithFeedback are mutually exclusive")
	}
	return &Session{
		eng:      ilink.NewEngine(c.engine),
		def:      c.flow,
		feedback: c.engine.Feedback != nil,
	}, nil
}

// Send admits a datagram as a new flow (transmitting from the next Step)
// and returns its ID. Only flow-scoped options are legal here; they
// override the session defaults for this flow. The datagram is not
// copied — the caller must not mutate it until the flow resolves.
func (s *Session) Send(datagram []byte, opts ...Option) (FlowID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrClosed
	}
	if s.draining {
		return 0, ErrDraining
	}
	c := config{flow: s.def}
	for _, o := range opts {
		o(&c)
	}
	if len(c.sessionOnly) > 0 {
		return 0, fmt.Errorf("link: option %s is session-scoped; pass it to NewSession", c.sessionOnly[0])
	}
	rate := c.flow.rate
	if rate == nil && c.flow.rateFn != nil {
		rate = c.flow.rateFn()
	}
	if c.flow.pause != nil && s.feedback {
		return 0, errors.New("link: WithPausePolicy conflicts with the session's WithFeedback")
	}
	return s.eng.AddFlow(datagram, ilink.FlowConfig{
		Channel:   c.flow.channel,
		Rate:      rate,
		Pause:     c.flow.pause,
		MaxRounds: c.flow.maxRounds,
		Weight:    c.flow.weight,
		Priority:  c.flow.priority,
		Deadline:  c.flow.deadline,
	}), nil
}

// Step runs one engine round — schedule, encode, air, decode, ack — and
// returns the flows it resolved (nil most rounds). A canceled context
// returns before the round runs.
func (s *Session) Step(ctx context.Context) ([]Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.draining {
		return nil, ErrDraining
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	return s.eng.Step(), nil
}

// Drain steps until every flow resolves, returning all results. On
// cancellation it returns the results resolved so far together with the
// context's error; the session stays usable. The session's mutex is
// released between rounds, so a concurrent Close interrupts the drain at
// the next round boundary (the drain reports ErrClosed with whatever it
// resolved) and a concurrent Send or Drain gets ErrDraining back instead
// of interleaving.
func (s *Session) Drain(ctx context.Context) ([]Result, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	s.draining = true
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.draining = false
		s.mu.Unlock()
	}()
	var out []Result
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return out, ErrClosed
		}
		if s.eng.Active() == 0 {
			s.mu.Unlock()
			return out, nil
		}
		if err := ctxErr(ctx); err != nil {
			s.mu.Unlock()
			return out, err
		}
		res := s.eng.Step()
		s.mu.Unlock()
		out = append(out, res...)
	}
}

// Active reports the number of unresolved flows.
func (s *Session) Active() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.Active()
}

// PoolStats reports the session's codec-pool construction counters —
// under WithSharedPool, the shared pool's, aggregated across every
// session using it.
func (s *Session) PoolStats() PoolStats { return s.eng.PoolStats() }

// SchedulerStats snapshots the DWFQ scheduler's accounting — credit
// granted and spent, ack airtime charged, deadline misses, outstanding
// credit. Zero-valued unless the session was built WithScheduler.
func (s *Session) SchedulerStats() SchedulerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.SchedStats()
}

// SetChannel replaces an active flow's medium mid-flight (nil means
// noiseless) and reports whether the flow was still active.
func (s *Session) SetChannel(id FlowID, model channel.Model) bool {
	var ch Channel
	if model != nil {
		ch = NewModelChannel(model, 0, 0)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.eng.SetFlowChannel(id, ch)
}

// Close releases the session's codec workers (a WithSharedPool pool is
// left running for its owner). A second Close — or any later call —
// returns ErrClosed; a Close during another goroutine's Drain takes
// effect at the next round boundary.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.closed = true
	s.eng.Close()
	return nil
}

// ctxErr reports a context's error, treating nil as background.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// ModelChannel adapts a stateful channel.Model — plus optional
// whole-share erasure — to the link's Channel interface. It is the one
// adapter between the channel tier and the link engine.
type ModelChannel struct {
	model   channel.Model
	erasure float64
	rng     *rand.Rand
}

// NewModelChannel wraps model; erasure is the probability a flow's whole
// share of a frame is lost, drawn from seed.
func NewModelChannel(model channel.Model, erasure float64, seed int64) *ModelChannel {
	return &ModelChannel{
		model:   model,
		erasure: erasure,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Apply implements Channel.
func (c *ModelChannel) Apply(sym []complex128) []complex128 {
	if c.erasure > 0 && c.rng.Float64() < c.erasure {
		return nil
	}
	return c.model.Transmit(sym)
}

// StateDB reports the wrapped model's instantaneous SNR.
func (c *ModelChannel) StateDB() float64 { return c.model.StateDB() }
