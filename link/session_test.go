package link_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"spinal"
	"spinal/channel"
	"spinal/link"
)

func testParams() spinal.Params {
	p := spinal.DefaultParams()
	p.B = 32
	return p
}

func TestSessionRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 400)
	rng.Read(data)

	s, err := link.NewSession(testParams(),
		link.WithChannel(channel.NewAWGN(12, 2)),
		link.WithRatePolicy(link.CapacityRate{SNREstimateDB: 12}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	id, err := s.Send(data)
	if err != nil {
		t.Fatal(err)
	}
	results, err := s.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].ID != id {
		t.Fatalf("unexpected results %+v", results)
	}
	r := results[0]
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if !bytes.Equal(r.Datagram, data) {
		t.Fatal("datagram corrupted")
	}
	if r.Stats.Rate <= 0 || r.Stats.SymbolsSent <= 0 {
		t.Fatalf("implausible stats %+v", r.Stats)
	}
}

func TestSessionPerFlowOverrides(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s, err := link.NewSession(testParams(),
		link.WithChannel(channel.NewAWGN(8, 3)), // session default: mediocre channel
	)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	a := make([]byte, 120)
	b := make([]byte, 120)
	rng.Read(a)
	rng.Read(b)
	idA, err := s.Send(a)
	if err != nil {
		t.Fatal(err)
	}
	idB, err := s.Send(b,
		link.WithChannel(channel.NewAWGN(25, 4)), // override: excellent channel
		link.WithRatePolicy(link.CapacityRate{SNREstimateDB: 25}))
	if err != nil {
		t.Fatal(err)
	}
	results, err := s.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var symA, symB int
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		switch r.ID {
		case idA:
			symA = r.Stats.SymbolsSent
		case idB:
			symB = r.Stats.SymbolsSent
		}
	}
	if symB >= symA {
		t.Fatalf("25 dB flow spent %d symbols, 8 dB flow %d — override had no effect", symB, symA)
	}
}

func TestSessionRejectsSessionScopedOptionsAtSend(t *testing.T) {
	s, err := link.NewSession(testParams())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, opt := range []link.Option{
		link.WithFeedback(link.FeedbackConfig{}),
		link.WithHalfDuplex(0),
		link.WithCodecPool(2),
		link.WithMaxBlockBits(256),
		link.WithFrameSymbols(1024),
		link.WithFrameLoss(0.1),
		link.WithSeed(7),
		link.WithFeedbackObserver(nil),
	} {
		if _, err := s.Send([]byte("x"), opt); err == nil {
			t.Fatal("Send accepted a session-scoped option")
		} else if !strings.Contains(err.Error(), "session-scoped") {
			t.Fatalf("unhelpful error %q", err)
		}
	}
	if s.Active() != 0 {
		t.Fatal("rejected sends leaked flows")
	}
}

func TestSessionPauseFeedbackConflict(t *testing.T) {
	if _, err := link.NewSession(testParams(),
		link.WithFeedback(link.FeedbackConfig{DelayRounds: 2}),
		link.WithPausePolicy(link.EveryFrame{}),
	); err == nil {
		t.Fatal("NewSession accepted WithPausePolicy + WithFeedback")
	}
	s, err := link.NewSession(testParams(), link.WithFeedback(link.FeedbackConfig{DelayRounds: 2}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Send([]byte("x"), link.WithPausePolicy(link.EveryFrame{})); err == nil {
		t.Fatal("Send accepted a pause policy on a feedback session")
	}
}

func TestSessionContextCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 5000)
	rng.Read(data)
	s, err := link.NewSession(testParams(), link.WithChannel(channel.NewAWGN(6, 5)))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Send(data); err != nil {
		t.Fatal(err)
	}

	// A canceled context stops Step before the round runs...
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Step(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Step under canceled context: %v", err)
	}
	// ...and Drain returns the cancellation with the flow still active.
	if _, err := s.Drain(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Drain under canceled context: %v", err)
	}
	if s.Active() != 1 {
		t.Fatalf("cancellation resolved flows: %d active", s.Active())
	}
	// The session stays usable: a fresh context finishes the transfer.
	results, err := s.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Err != nil || !bytes.Equal(results[0].Datagram, data) {
		t.Fatalf("post-cancel drain failed: %+v", results)
	}
}

func TestSessionSetChannel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := make([]byte, 600)
	rng.Read(data)
	s, err := link.NewSession(testParams(), link.WithChannel(channel.NewAWGN(3, 6)))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	id, err := s.Send(data, link.WithMaxRounds(200))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := s.Step(ctx); err != nil {
			t.Fatal(err)
		}
	}
	// Mid-flight handoff to a far better medium.
	if !s.SetChannel(id, channel.NewAWGN(25, 7)) {
		t.Fatal("SetChannel lost the active flow")
	}
	results, err := s.Drain(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || !bytes.Equal(results[0].Datagram, data) {
		t.Fatalf("handoff transfer failed: %v", results[0].Err)
	}
	if s.SetChannel(id, nil) {
		t.Fatal("SetChannel found a resolved flow")
	}
}

func TestSessionClosed(t *testing.T) {
	s, err := link.NewSession(testParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); !errors.Is(err, link.ErrClosed) {
		t.Fatalf("second Close = %v, want ErrClosed", err)
	}
	if _, err := s.Send([]byte("x")); !errors.Is(err, link.ErrClosed) {
		t.Fatalf("Send on closed session: %v", err)
	}
	if _, err := s.Step(context.Background()); !errors.Is(err, link.ErrClosed) {
		t.Fatalf("Step on closed session: %v", err)
	}
	if _, err := s.Drain(context.Background()); !errors.Is(err, link.ErrClosed) {
		t.Fatalf("Drain on closed session: %v", err)
	}
}

// customRate is a user-provided RatePolicy implemented outside the
// module's internals — the extension-interface contract in action.
type customRate struct{ calls int }

func (c *customRate) SubpassBudget(blockBits, subpassSymbols, symbolsSent int) int {
	c.calls++
	if symbolsSent == 0 {
		return 4 // opening burst
	}
	return 1
}

func TestSessionCustomRatePolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := make([]byte, 200)
	rng.Read(data)
	cr := &customRate{}
	s, err := link.NewSession(testParams(), link.WithChannel(channel.NewAWGN(12, 8)))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Send(data, link.WithRatePolicy(cr)); err != nil {
		t.Fatal(err)
	}
	results, err := s.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Err != nil || !bytes.Equal(results[0].Datagram, data) {
		t.Fatal("custom-policy transfer failed")
	}
	if cr.calls == 0 {
		t.Fatal("custom policy never consulted")
	}
}

func TestSessionRatePolicyFactory(t *testing.T) {
	made := 0
	s, err := link.NewSession(testParams(),
		link.WithChannel(channel.NewAWGN(15, 9)),
		link.WithRatePolicyFunc(func() link.RatePolicy {
			made++
			return link.NewTrackingRate(15)
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 3; i++ {
		data := make([]byte, 80)
		rng.Read(data)
		if _, err := s.Send(data); err != nil {
			t.Fatal(err)
		}
	}
	if made != 3 {
		t.Fatalf("factory built %d policies for 3 flows", made)
	}
	results, err := s.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
}
