package link

import (
	"context"
	"errors"
	"io"
	"os"
	"sync"
	"time"

	"spinal"
	"spinal/channel"
)

// Conn is a streaming endpoint pair over a simulated medium: an
// io.Reader/io.Writer whose writes cross the configured channel.Model as
// rateless spinal datagrams and whose delivered bytes become readable.
// It is message-oriented underneath — each Write is one datagram, and
// bytes become readable in write order once their datagram's every code
// block has verified — but the Read side presents a plain byte stream,
// so a Conn drops into io.Copy and friends.
//
// Write is synchronous: it drives the link until the datagram delivers
// or its round budget (WithMaxRounds) is exhausted, in which case it
// returns the flow's error and nothing becomes readable. Without a read
// deadline, Read never blocks; like bytes.Buffer it returns io.EOF when
// nothing is buffered. With one (SetReadDeadline), Read blocks until
// bytes arrive from a concurrent Write, the Conn closes, or the deadline
// expires with os.ErrDeadlineExceeded — the net.Conn idiom, so transport
// retry loops need no hand-rolled timeout goroutines.
// A Conn serializes its methods with an internal mutex, so concurrent
// misuse resolves into typed errors — a second Close returns ErrClosed,
// a Write racing another Write waits its turn — rather than data races;
// it is still one logical stream, not a concurrency primitive.
type Conn struct {
	s   *Session
	ctx context.Context

	mu        sync.Mutex
	cond      *sync.Cond // signals readers: bytes buffered, deadline moved, or closed
	buf       []byte
	off       int
	stats     Stats
	delivered int // payload bytes delivered across the Conn's lifetime
	closed    bool

	readDeadline  time.Time
	writeDeadline time.Time
	rdTimer       *time.Timer // wakes blocked readers at the read deadline
}

// Dial opens a Conn over model with the given code parameters. Options
// configure the underlying Session (rate policies, feedback, half-duplex
// accounting, ...); model takes precedence over any WithChannel or
// WithRawChannel among them.
func Dial(p spinal.Params, model channel.Model, opts ...Option) (*Conn, error) {
	return DialContext(context.Background(), p, model, opts...)
}

// DialContext is Dial with a context that bounds every transfer made
// through the Conn: once ctx is done, in-progress and future Writes fail.
func DialContext(ctx context.Context, p spinal.Params, model channel.Model, opts ...Option) (*Conn, error) {
	opts = append(opts, WithChannel(model))
	s, err := NewSession(p, opts...)
	if err != nil {
		return nil, err
	}
	c := &Conn{s: s, ctx: ctx}
	c.cond = sync.NewCond(&c.mu)
	return c, nil
}

// Write transmits p as one rateless datagram across the Conn's channel
// and buffers the delivered bytes for Read. It reports len(p) on
// delivery; on budget exhaustion or cancellation it reports 0 with the
// flow's (or context's) error, and the link stays usable.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, ErrClosed
	}
	// The engine retains the datagram while the flow is live; copy so the
	// caller may reuse p immediately, as io.Writer allows.
	id, err := c.s.Send(append([]byte(nil), p...))
	if err != nil {
		return 0, err
	}
	ctx := c.ctx
	if wd := c.writeDeadline; !wd.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, wd)
		defer cancel()
	}
	results, err := c.s.Drain(ctx)
	if errors.Is(err, context.DeadlineExceeded) && !c.writeDeadline.IsZero() {
		err = os.ErrDeadlineExceeded
	}
	var mine *Result
	for i := range results {
		r := &results[i]
		// Every resolved flow's airtime counts toward Stats — including a
		// prior canceled Write's flow resolving now — so Rate never
		// overstates what the link spent.
		c.stats.Frames += r.Stats.Frames
		c.stats.SymbolsSent += r.Stats.SymbolsSent
		c.stats.Blocks += r.Stats.Blocks
		c.stats.Retransmissions += r.Stats.Retransmissions
		c.stats.AcksSent += r.Stats.AcksSent
		c.stats.AcksLost += r.Stats.AcksLost
		c.stats.AckSymbols += r.Stats.AckSymbols
		c.stats.Pauses += r.Stats.Pauses
		if r.ID == id {
			mine = r
		}
	}
	if mine == nil {
		if err == nil {
			err = ErrIncomplete
		}
		return 0, err
	}
	if mine.Err != nil {
		return 0, mine.Err
	}
	c.delivered += len(mine.Datagram)
	c.buf = append(c.buf, mine.Datagram...)
	c.cond.Broadcast() // wake readers blocked on a read deadline
	return len(p), nil
}

// Read drains delivered bytes in write order. Without a read deadline it
// returns io.EOF when nothing is buffered (bytes.Buffer semantics —
// Write first, then Read). With one it blocks until bytes arrive, the
// Conn closes (ErrClosed), or the deadline passes
// (os.ErrDeadlineExceeded); a deadline already in the past fails
// immediately, the net.Conn way to cancel pending reads.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.off < len(c.buf) {
			n := copy(p, c.buf[c.off:])
			c.off += n
			return n, nil
		}
		rd := c.readDeadline
		if rd.IsZero() {
			c.buf, c.off = c.buf[:0], 0
			return 0, io.EOF
		}
		if !time.Now().Before(rd) {
			return 0, os.ErrDeadlineExceeded
		}
		if c.closed {
			return 0, ErrClosed
		}
		c.cond.Wait()
	}
}

// SetDeadline sets both the read and write deadlines (net.Conn
// semantics; the zero time clears them).
func (c *Conn) SetDeadline(t time.Time) error {
	if err := c.SetReadDeadline(t); err != nil {
		return err
	}
	return c.SetWriteDeadline(t)
}

// SetReadDeadline bounds future (and currently blocked) Reads: while a
// deadline is set Read blocks for bytes and fails with
// os.ErrDeadlineExceeded once t passes; the zero time restores the
// non-blocking io.EOF behaviour. It may be called concurrently with a
// blocked Read — the reader re-evaluates against the new deadline.
func (c *Conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.readDeadline = t
	if c.rdTimer != nil {
		c.rdTimer.Stop()
		c.rdTimer = nil
	}
	if !t.IsZero() {
		d := time.Until(t)
		if d < 0 {
			d = 0
		}
		c.rdTimer = time.AfterFunc(d, func() {
			c.mu.Lock()
			c.cond.Broadcast()
			c.mu.Unlock()
		})
	}
	c.cond.Broadcast()
	return nil
}

// SetWriteDeadline bounds future Writes: a Write still draining the link
// when t passes fails with os.ErrDeadlineExceeded (its flow keeps
// transmitting and is accounted by a later Write's drain, exactly like a
// context cancellation). Write holds the Conn's mutex, so the new
// deadline applies from the next Write. The zero time clears it.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.writeDeadline = t
	return nil
}

// Stats reports the Conn's cumulative transfer statistics; Rate is
// aggregate payload bits per channel symbol (ack symbols included under
// half-duplex accounting).
func (c *Conn) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	if air := st.SymbolsSent + st.AckSymbols; air > 0 {
		st.Rate = float64(8*c.delivered) / float64(air)
	}
	return st
}

// Close releases the Conn's session. Buffered delivered bytes remain
// readable (Read does not take the closed path). A second Close returns
// ErrClosed, mirroring Session.Close.
func (c *Conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	c.closed = true
	if c.rdTimer != nil {
		c.rdTimer.Stop()
		c.rdTimer = nil
	}
	c.cond.Broadcast() // readers blocked on a deadline see ErrClosed
	return c.s.Close()
}
