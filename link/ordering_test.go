package link_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"spinal"
	"spinal/channel"
	"spinal/link"
)

// orderingParams keeps the ordering tests' decode work trivial; they
// exercise locking, not the code.
func orderingParams() spinal.Params {
	p := spinal.DefaultParams()
	p.B = 8
	return p
}

// TestSessionDrainCloseOrdering pins the Close/Drain contract the
// daemon's shards rely on: Drain after Close, Send/Step/Drain during
// Drain, and double Close all resolve into typed errors (ErrClosed,
// ErrDraining) instead of racing. Run under -race, the concurrent halves
// double as a data-race probe on the session's serialization.
func TestSessionDrainCloseOrdering(t *testing.T) {
	s, err := link.NewSession(orderingParams(),
		link.WithChannel(channel.NewAWGN(12, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Send([]byte("payload")); err != nil {
		t.Fatal(err)
	}

	// While one goroutine drains, Send, Step and a second Drain must get
	// ErrDraining (or observe the drain already finished — scheduling may
	// resolve the single flow before a contender arrives; anything except
	// an interleaved round or a race is correct).
	drained := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		close(started)
		_, err := s.Drain(context.Background())
		drained <- err
	}()
	<-started
	var wg sync.WaitGroup
	for range 4 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := s.Send([]byte("late")); err != nil &&
				!errors.Is(err, link.ErrDraining) {
				t.Errorf("Send during Drain = %v, want nil or ErrDraining", err)
			}
			if _, err := s.Step(context.Background()); err != nil &&
				!errors.Is(err, link.ErrDraining) {
				t.Errorf("Step during Drain = %v, want nil or ErrDraining", err)
			}
		}()
	}
	wg.Wait()
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}

	// Late flows admitted by racing Sends above may still be pending;
	// clear them so Close finds an idle session.
	if _, err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); !errors.Is(err, link.ErrClosed) {
		t.Fatalf("double Close = %v, want ErrClosed", err)
	}
	if _, err := s.Drain(context.Background()); !errors.Is(err, link.ErrClosed) {
		t.Fatalf("Drain after Close = %v, want ErrClosed", err)
	}
}

// TestSessionCloseInterruptsDrain pins the shutdown path: a Close landing
// while another goroutine drains takes effect at the next round boundary,
// and the drain reports ErrClosed with the results it had resolved.
func TestSessionCloseInterruptsDrain(t *testing.T) {
	s, err := link.NewSession(orderingParams(),
		// A hopeless channel plus a huge round budget keeps the drain
		// spinning until Close interrupts it.
		link.WithChannel(channel.NewAWGN(-20, 1)),
		link.WithMaxRounds(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Send(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	type drainOut struct {
		res []link.Result
		err error
	}
	done := make(chan drainOut, 1)
	go func() {
		res, err := s.Drain(context.Background())
		done <- drainOut{res, err}
	}()
	// Close blocks until the in-flight round finishes, then wins the
	// mutex; the drain must notice and stop.
	if err := s.Close(); err != nil {
		t.Fatalf("Close during Drain: %v", err)
	}
	out := <-done
	if !errors.Is(out.err, link.ErrClosed) {
		t.Fatalf("interrupted Drain err = %v, want ErrClosed", out.err)
	}
	if len(out.res) != 0 {
		t.Fatalf("hopeless flow resolved %d results before Close", len(out.res))
	}
}

// TestConnCloseTyped pins Conn's half of the contract.
func TestConnCloseTyped(t *testing.T) {
	c, err := link.Dial(orderingParams(), channel.NewAWGN(12, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); !errors.Is(err, link.ErrClosed) {
		t.Fatalf("double Conn.Close = %v, want ErrClosed", err)
	}
	if _, err := c.Write([]byte("x")); !errors.Is(err, link.ErrClosed) {
		t.Fatalf("Write after Close = %v, want ErrClosed", err)
	}
}

// TestSharedPoolSessions pins WithSharedPool: several sessions run their
// codec work on one externally owned pool, the pool survives each
// session's Close, and the construction counters aggregate across them.
func TestSharedPoolSessions(t *testing.T) {
	p := orderingParams()
	pool := link.NewCodecPool(p, 2)
	defer pool.Close()
	for i := range 3 {
		s, err := link.NewSession(p,
			link.WithSharedPool(pool),
			link.WithChannel(channel.NewAWGN(12, int64(i))))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Send([]byte("shared pool payload")); err != nil {
			t.Fatal(err)
		}
		res, err := s.Drain(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			if r.Err != nil {
				t.Fatalf("session %d flow failed: %v", i, r.Err)
			}
		}
		if got := s.PoolStats(); got != pool.Stats() {
			t.Fatalf("session PoolStats %+v != pool Stats %+v", got, pool.Stats())
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Three sequential single-flow sessions on a warmed shared pool must
	// not have built three codecs per shard: the whole point is reuse
	// across sessions. Each shard builds at most one encoder and one
	// decoder per distinct block size.
	st := pool.Stats()
	if st.EncodersBuilt > int64(pool.Shards()) {
		t.Fatalf("shared pool rebuilt encoders per session: %+v", st)
	}
}
