#!/bin/sh
# Regenerate the time-varying-scenario artifacts:
#   1. the scenario-goodput table (paste into EXPERIMENTS.md when it
#      changes materially), and
#   2. the golden scenario outcomes pinned by internal/sim's regression
#      test (only when a change to channels/link/sim is *supposed* to
#      move them — the test exists to catch the opposite).
#
# Usage: scripts/scenarios.sh [-update]
set -eu
cd "$(dirname "$0")/.."

go run ./cmd/spinalsim -exp scenario-goodput
go run ./cmd/spinalsim -exp feedback-goodput
go run ./cmd/spinalsim -exp chaos-degradation
go run ./cmd/spinalsim -exp baseline-goodput

if [ "${1:-}" = "-update" ]; then
    go test ./internal/sim -run TestScenarioGolden -update -v | grep -v '^=== \|^--- '
    echo "golden scenario outcomes rewritten: internal/sim/testdata/scenarios.golden.json"
fi
