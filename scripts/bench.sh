#!/usr/bin/env sh
# Runs the core microbenchmarks and writes a machine-readable snapshot
# (BENCH_<date>.json) so successive changes can be compared against a
# recorded baseline. Usage: scripts/bench.sh [benchtime]
set -eu

cd "$(dirname "$0")/.."
benchtime="${1:-2s}"
out="BENCH_$(date +%Y%m%d).json"
tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

go test -run '^$' \
    -bench 'BenchmarkDecode$|BenchmarkEncoder$|BenchmarkDecodeQuantized$|BenchmarkDecodeQuantized256$|BenchmarkDecodeFloat256$' \
    -benchtime "$benchtime" -benchmem . >"$tmp"
go test -run '^$' -bench 'BenchmarkDecodeSerial$|BenchmarkDecodeParallel4$' \
    -benchtime "$benchtime" -benchmem ./internal/core/ >>"$tmp"
go test -run '^$' -bench 'BenchmarkLinkEngine$' \
    -benchtime "$benchtime" -benchmem ./internal/link/ >>"$tmp"
go test -run '^$' -bench 'BenchmarkFetchPipeline$' \
    -benchtime "$benchtime" -benchmem ./internal/transport/ >>"$tmp"

awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN { n = 0 }
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns[n] = $3; bytes[n] = ""; allocs[n] = ""
    for (i = 4; i <= NF; i++) {
        if ($(i+1) == "B/op") bytes[n] = $i
        if ($(i+1) == "allocs/op") allocs[n] = $i
    }
    names[n] = name; iters[n] = $2; n++
}
/^(goos|goarch|cpu):/ { meta[$1] = substr($0, index($0, " ") + 1) }
END {
    printf "{\n  \"date\": \"%s\",\n", date
    printf "  \"goos\": \"%s\",\n  \"goarch\": \"%s\",\n  \"cpu\": \"%s\",\n", \
        meta["goos:"], meta["goarch:"], meta["cpu:"]
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) {
        printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n", \
            names[i], iters[i], ns[i], \
            (bytes[i] == "" ? "null" : bytes[i]), \
            (allocs[i] == "" ? "null" : allocs[i]), \
            (i < n-1 ? "," : "")
    }
    printf "  ]\n}\n"
}' "$tmp" >"$out"

echo "wrote $out"
cat "$out"
