#!/usr/bin/env bash
# Daemon soak for CI: builds spinald with the race detector, starts it on
# a local port, drives a short spinalcat -loadgen soak against it, sends
# SIGTERM, and asserts a clean drain. Exercises the real binaries over a
# real UDP socket — the shipped system, not just its packages.
#
# Usage: scripts/daemon_soak.sh [flows] [size]   (defaults 256, 64)
set -euo pipefail
cd "$(dirname "$0")/.."

flows="${1:-256}"
size="${2:-64}"
addr="127.0.0.1:47447"
telemetry="127.0.0.1:47448"

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

echo "daemon_soak: building spinald and spinalcat (-race)"
go build -race -o "$workdir/spinald" ./cmd/spinald
go build -race -o "$workdir/spinalcat" ./cmd/spinalcat

# B=64 keeps the race-instrumented decode fast while still exercising the
# real pooled codec path.
"$workdir/spinald" -listen "$addr" -telemetry "$telemetry" -b 64 \
    2>"$workdir/spinald.log" &
daemon_pid=$!
cleanup_daemon() { kill "$daemon_pid" 2>/dev/null || true; }
trap 'cleanup_daemon; rm -rf "$workdir"' EXIT

# Wait for the socket to come up.
for _ in $(seq 1 50); do
    if grep -q "serving on" "$workdir/spinald.log" 2>/dev/null; then break; fi
    sleep 0.1
done
grep "serving on" "$workdir/spinald.log" || {
    echo "daemon_soak: spinald never came up" >&2
    cat "$workdir/spinald.log" >&2
    exit 1
}

echo "daemon_soak: loadgen $flows flows x $size B"
"$workdir/spinalcat" -loadgen "$addr" -flows "$flows" -size "$size" -seed 7 \
    | tee "$workdir/loadgen.out"

# The loadgen exits nonzero on failed/corrupted/zero-delivered flows
# (set -e would have stopped us); double-check delivery is nonzero from
# the telemetry endpoint while the daemon still runs.
delivered="$(curl -sf "http://$telemetry/metrics" \
    | sed -n 's/.*"delivered": \([0-9]*\).*/\1/p' | head -1)"
if [ -z "$delivered" ] || [ "$delivered" -eq 0 ]; then
    echo "daemon_soak: telemetry reports no delivered flows" >&2
    exit 1
fi
echo "daemon_soak: telemetry confirms $delivered delivered flows"

echo "daemon_soak: SIGTERM"
kill -TERM "$daemon_pid"
wait "$daemon_pid" || {
    echo "daemon_soak: spinald exited nonzero" >&2
    cat "$workdir/spinald.log" >&2
    exit 1
}
grep -q "drained cleanly" "$workdir/spinald.log" || {
    echo "daemon_soak: drain report missing 'drained cleanly'" >&2
    cat "$workdir/spinald.log" >&2
    exit 1
}
echo "daemon_soak: drained cleanly"
