#!/usr/bin/env sh
# Bench-regression gate for CI: re-runs the guarded benchmarks
# (BenchmarkDecode, BenchmarkLinkEngine) and compares them against the
# newest checked-in BENCH_*.json snapshot (scripts/bench.sh writes it).
#
# Thresholds and their rationale:
#   - A benchmark fails when it exceeds its baseline by more than 20%.
#     That is deliberately loose: shared runners routinely jitter ±10%
#     run to run, and taking the best of three runs absorbs most of the
#     rest. Real regressions in these hot paths — an allocation sneaking
#     into the decode loop, a codec pool silently rebuilt per call —
#     show up as 2x, not 1.2x. Tighten only with a dedicated runner.
#   - ns/op is only compared when the current CPU matches the CPU
#     recorded in the snapshot; across different hardware a wall-time
#     ratio measures the machines, not the code. On foreign hardware the
#     gate falls back to allocs/op, which is deterministic per code
#     version, and reports ns/op informationally.
#
# Usage: scripts/bench_check.sh [benchtime]   (default 1s)
set -eu
cd "$(dirname "$0")/.."
benchtime="${1:-1s}"

baseline="$(ls BENCH_*.json 2>/dev/null | sort | tail -1)"
if [ -z "$baseline" ]; then
    echo "bench_check: no BENCH_*.json baseline; run scripts/bench.sh first" >&2
    exit 1
fi
echo "bench_check: comparing against $baseline"

tmp="$(mktemp)"
best="$(mktemp)"
trap 'rm -f "$tmp" "$best"' EXIT

go test -run '^$' -bench 'BenchmarkDecode$|BenchmarkDecodeQuantized$' \
    -benchtime "$benchtime" -benchmem -count 3 . >"$tmp"
go test -run '^$' -bench 'BenchmarkLinkEngine$' -benchtime "$benchtime" -benchmem -count 3 ./internal/link/ >>"$tmp"

base_cpu="$(sed -n 's/.*"cpu": "\([^"]*\)".*/\1/p' "$baseline" | head -1)"
now_cpu="$(awk '/^cpu:/ { print substr($0, 6); exit }' "$tmp" | sed 's/^ *//')"
gate=ns
if [ "$base_cpu" != "$now_cpu" ]; then
    gate=allocs
    echo "bench_check: baseline CPU ($base_cpu) != this machine ($now_cpu);" \
         "gating allocs/op only, ns/op is informational" >&2
fi

# Best (minimum) ns/op and allocs/op per benchmark across the runs.
awk '/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = $3 + 0
    allocs = ""
    for (i = 4; i <= NF; i++) if ($(i+1) == "allocs/op") allocs = $i + 0
    if (!(name in minNs) || ns < minNs[name]) minNs[name] = ns
    if (allocs != "" && (!(name in minAl) || allocs < minAl[name])) minAl[name] = allocs
}
END { for (n in minNs) printf "%s %s %s\n", n, minNs[n], (n in minAl ? minAl[n] : -1) }' "$tmp" >"$best"

status=0
while read -r name ns allocs; do
    base_ns="$(sed -n 's/.*"name": "'"$name"'".*"ns_per_op": \([0-9.eE+]*\).*/\1/p' "$baseline" | head -1)"
    base_allocs="$(sed -n 's/.*"name": "'"$name"'".*"allocs_per_op": \([0-9]*\).*/\1/p' "$baseline" | head -1)"
    if [ -z "$base_ns" ]; then
        echo "bench_check: $name missing from $baseline — run scripts/bench.sh to refresh the baseline" >&2
        status=1
        continue
    fi
    if ! awk -v n="$name" -v now_ns="$ns" -v base_ns="$base_ns" \
             -v now_al="$allocs" -v base_al="${base_allocs:--1}" -v gate="$gate" 'BEGIN {
        ns_ratio = now_ns / base_ns
        printf "bench_check: %-22s ns/op %.0f -> %.0f (%.2fx)", n, base_ns, now_ns, ns_ratio
        if (base_al >= 0 && now_al >= 0)
            printf "  allocs/op %d -> %d", base_al, now_al
        printf "  [gate: %s]\n", gate
        if (gate == "ns") exit !(ns_ratio <= 1.20)
        if (base_al > 0 && now_al >= 0) exit !(now_al / base_al <= 1.20)
        if (base_al == 0 && now_al > 0) exit 1
        exit 0
    }'; then
        echo "bench_check: $name regressed beyond the 20% gate" >&2
        status=1
    fi
done <"$best"

# Line-rate gate for the quantized kernel's operating point (256-bit
# message, one puncturing pass, B=32). Only the allocation half is
# absolute: zero steady-state allocs/op is deterministic on every
# machine. Latency is gated relatively — best-of-3 ns/op against the
# newest BENCH_*.json through the same 20% threshold as the loop above,
# CPU-matched runs only. (This replaces the old absolute "<1 ms" line,
# which measured the CI runner rather than the code and flaked on slow
# shared machines; on foreign CPUs the ratio below is informational.)
if ! awk -v gate="$gate" '$1 == "BenchmarkDecodeQuantized" {
    found = 1
    printf "bench_check: %-22s ns/op %.0f  allocs/op %d  [gate: 0 allocs absolute; ns relative (%s)]\n", $1, $2, $3, gate
    if ($3 + 0 != 0) exit 1
}
END { if (!found) exit 1 }' "$best"; then
    echo "bench_check: BenchmarkDecodeQuantized missing or allocating on the hot path" >&2
    status=1
fi
exit $status
