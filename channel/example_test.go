package channel_test

import (
	"fmt"

	"spinal/channel"
)

// ExampleModel shows the two halves of the Model interface: Transmit
// perturbs symbols and advances the channel's state, StateDB observes
// the SNR trajectory without side effects.
func ExampleModel() {
	var m channel.Model = channel.NewWalk(15, 3, 25, 1, 4, 1)
	x := make([]complex128, 16)
	before := m.StateDB()
	y := m.Transmit(x)
	fmt.Println("symbols out:", len(y))
	fmt.Println("started at 15 dB:", before == 15)
	fmt.Println("stayed in bounds:", m.StateDB() >= 3 && m.StateDB() <= 25)
	// Output:
	// symbols out: 16
	// started at 15 dB: true
	// stayed in bounds: true
}

// ExampleNewTrace replays a recorded SNR-vs-time series; the trajectory
// is a pure function of symbol position, identical across noise seeds.
func ExampleNewTrace() {
	segs := []channel.TraceSegment{
		{Symbols: 8, SNRdB: 20},
		{Symbols: 8, SNRdB: 5},
	}
	tr := channel.NewTrace(segs, 7)
	fmt.Println("state:", tr.StateDB())
	tr.Transmit(make([]complex128, 9)) // cross into the second segment
	fmt.Println("state:", tr.StateDB())
	fmt.Println("capacity at 20 dB ~6.66:", fmt.Sprintf("%.2f", channel.CapacityAWGNdB(20)))
	// Output:
	// state: 20
	// state: 5
	// capacity at 20 dB ~6.66: 6.66
}
