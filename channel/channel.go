// Package channel is the public channel-model tier of the spinal-code
// library: the media a rateless link crosses, from fixed-SNR AWGN to
// bursty Markov interference, SNR random walks, and replayed
// SNR-vs-time traces.
//
// The central abstraction is Model — a stateful per-symbol Transmit plus
// an observable StateDB — which every constructor here returns a concrete
// implementation of, and which the link tier (package spinal/link)
// accepts anywhere a medium is needed:
//
//	m := channel.NewGilbertElliott(18, 2, 0.001, 0.004, seed)
//	s, _ := link.NewSession(spinal.DefaultParams(), link.WithChannel(m))
//
// All channels are deterministic given their seed, so every experiment
// built on them is reproducible. Signal power is normalized to 1 per
// complex symbol throughout the module, so for AWGN the total complex
// noise variance is 1/SNR.
//
// The types are aliases of the engine-internal implementations: the
// public surface and the code under it cannot drift apart, and a Model
// built here is consumed by internal layers without adaptation.
package channel

import (
	"spinal/internal/capacity"
	ichannel "spinal/internal/channel"
)

// Model is the unified channel interface: a per-symbol Transmit that
// advances the channel's internal state, plus an observable StateDB
// reporting the instantaneous effective SNR in dB. StateDB is free of
// side effects and reports the state of the most recently transmitted
// symbol.
type Model = ichannel.Model

// AWGN is a complex additive white Gaussian noise channel at a fixed SNR.
type AWGN = ichannel.AWGN

// GilbertElliott is a two-state Markov AWGN channel: a Good state with
// high SNR and a Bad state with low SNR (bursty interference).
type GilbertElliott = ichannel.GilbertElliott

// Walk is a bounded Markov SNR random walk over AWGN, modeling slow
// mobility at time scales a single rateless message can straddle.
type Walk = ichannel.Walk

// Trace replays a recorded SNR-vs-time series over AWGN; the trajectory
// is a pure function of symbol position, so it is identical across seeds.
type Trace = ichannel.Trace

// TraceSegment is one piece of an SNR trace: SNRdB held for Symbols
// channel symbols.
type TraceSegment = ichannel.TraceSegment

// Rayleigh is the §8.3 Rayleigh block-fading channel.
type Rayleigh = ichannel.Rayleigh

// Multipath is a static frequency-selective channel (unit-energy tap
// convolution plus AWGN).
type Multipath = ichannel.Multipath

// BSC is a binary symmetric channel with a fixed crossover probability.
type BSC = ichannel.BSC

// Erasure drops symbols independently with a fixed probability.
type Erasure = ichannel.Erasure

// NewAWGN creates an AWGN channel with the given SNR in dB and seed.
func NewAWGN(snrDB float64, seed int64) *AWGN { return ichannel.NewAWGN(snrDB, seed) }

// NewGilbertElliott creates a two-state Markov channel with the two
// states' SNRs and per-symbol transition probabilities pGB and pBG.
func NewGilbertElliott(goodSNRdB, badSNRdB, pGB, pBG float64, seed int64) *GilbertElliott {
	return ichannel.NewGilbertElliott(goodSNRdB, badSNRdB, pGB, pBG, seed)
}

// NewWalk creates a random-walk channel starting at startDB, stepping by
// ±stepDB every interval symbols, bounded to [minDB, maxDB].
func NewWalk(startDB, minDB, maxDB, stepDB float64, interval int, seed int64) *Walk {
	return ichannel.NewWalk(startDB, minDB, maxDB, stepDB, interval, seed)
}

// NewTrace creates a trace-driven channel from segments (copied) and a
// noise seed.
func NewTrace(segs []TraceSegment, seed int64) *Trace { return ichannel.NewTrace(segs, seed) }

// NewTraceFromFile loads an SNR trace file (see ParseTrace for the
// format) and builds a trace-driven channel.
func NewTraceFromFile(path string, seed int64) (*Trace, error) {
	return ichannel.NewTraceFromFile(path, seed)
}

// LoadTrace reads an SNR trace file: one "<symbols> <snr_dB>" pair per
// line, blank lines and #-comments ignored.
func LoadTrace(path string) ([]TraceSegment, error) { return ichannel.LoadTrace(path) }

// NewRayleigh creates a Rayleigh fading channel with average SNR snrDB
// and coherence time tau in symbols.
func NewRayleigh(snrDB float64, tau int, seed int64) *Rayleigh {
	return ichannel.NewRayleigh(snrDB, tau, seed)
}

// NewMultipath creates a multipath channel from taps (copied, normalized
// to unit energy) at snrDB.
func NewMultipath(taps []complex128, snrDB float64, seed int64) *Multipath {
	return ichannel.NewMultipath(taps, snrDB, seed)
}

// NewBSC creates a binary symmetric channel with crossover probability p.
func NewBSC(p float64, seed int64) *BSC { return ichannel.NewBSC(p, seed) }

// NewErasure creates an erasure channel with loss probability p.
func NewErasure(p float64, seed int64) *Erasure { return ichannel.NewErasure(p, seed) }

// CapacityAWGNdB returns the Shannon capacity of the complex AWGN
// channel, in bits per symbol, at the given SNR in dB — the yardstick
// every rate in this module is measured against.
func CapacityAWGNdB(snrDB float64) float64 { return capacity.AWGNdB(snrDB) }

// FractionOfCapacity reports rate (bits/symbol) as a fraction of the
// AWGN capacity at snrDB.
func FractionOfCapacity(rate, snrDB float64) float64 {
	return capacity.FractionOfCapacity(rate, snrDB)
}
