// Command spinalcat pipes stdin through a spinal code: it segments the
// input into §6 code blocks, transmits each rateless over a simulated
// AWGN channel until its CRC verifies, and writes the decoded bytes to
// stdout. Statistics go to stderr.
//
//	echo "hello" | spinalcat -snr 8
//	spinalcat -snr 5 -b 16 < somefile > copy && cmp somefile copy
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"spinal"
	"spinal/internal/channel"
	"spinal/internal/framing"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spinalcat: ")
	var (
		snrDB = flag.Float64("snr", 10, "simulated AWGN SNR in dB")
		beam  = flag.Int("b", 256, "decoder beam width B")
		seed  = flag.Int64("seed", 1, "channel noise seed")
	)
	flag.Parse()

	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}

	p := spinal.DefaultParams()
	p.B = *beam
	ch := channel.NewAWGN(*snrDB, *seed)

	blocks := framing.Segment(data, 0)
	totalSymbols := 0
	out := os.Stdout
	for bi, blk := range blocks {
		bits := blk.Bits()
		nBits := blk.NumBits()
		enc := spinal.NewEncoder(bits, nBits, p)
		dec := spinal.NewDecoder(nBits, p)
		sched := enc.NewSchedule()
		decoded := false
		for sub := 0; sub < 128*sched.Subpasses() && !decoded; sub++ {
			ids := sched.NextSubpass()
			dec.Add(ids, ch.Transmit(enc.Symbols(ids)))
			totalSymbols += len(ids)
			got, _ := dec.Decode()
			if payload, ok := framing.Verify(got); ok {
				if _, err := out.Write(payload); err != nil {
					log.Fatal(err)
				}
				decoded = true
			}
		}
		if !decoded {
			log.Fatalf("block %d failed to decode within 128 passes at %.1f dB", bi, *snrDB)
		}
	}
	fmt.Fprintf(os.Stderr, "spinalcat: %d bytes, %d blocks, %d symbols (%.2f bits/symbol) at %.1f dB\n",
		len(data), len(blocks), totalSymbols,
		float64(len(data)*8)/float64(totalSymbols), *snrDB)
}
