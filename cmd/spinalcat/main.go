// Command spinalcat pipes stdin through a spinal code: it segments the
// input into §6 code blocks, transmits each rateless over a simulated
// AWGN channel until its CRC verifies, and writes the decoded bytes to
// stdout. Statistics go to stderr. It is built entirely on the public
// spinal, spinal/channel, spinal/link and spinal/sim packages.
//
// With -flows N > 1 the input is split into N datagrams carried as
// concurrent flows through one link.Session — shared frames, sharded
// codec workers — and reassembled in order on stdout.
//
// With -scenario NAME no stdin is read: the session runs the named
// workload — a time-varying channel (burst, walk, trace:<file>, churn)
// or an impaired ARQ feedback path (feedback-delay, feedback-loss) —
// under the -policy rate policy and prints goodput/outage/retransmission
// statistics: the spinal code exercised against the changing channels,
// and the imperfect reverse channels, it was built for.
//
//	echo "hello" | spinalcat -snr 8
//	spinalcat -snr 5 -b 16 < somefile > copy && cmp somefile copy
//	spinalcat -snr 10 -flows 8 < somefile > copy && cmp somefile copy
//	spinalcat -scenario burst -policy tracking
//	spinalcat -scenario trace:internal/channel/testdata/fade.trace -flows 24
//	spinalcat -scenario feedback-loss -policy tracking
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"spinal"
	"spinal/channel"
	"spinal/link"
	"spinal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spinalcat: ")
	var (
		snrDB    = flag.Float64("snr", 10, "simulated AWGN SNR in dB")
		beam     = flag.Int("b", 256, "decoder beam width B")
		seed     = flag.Int64("seed", 1, "channel noise seed")
		flows    = flag.Int("flows", 1, "split the input across N concurrent link-session flows")
		scenario = flag.String("scenario", "", "run a named scenario instead of piping stdin: burst, walk, trace:<file>, churn, feedback-delay, feedback-loss")
		policy   = flag.String("policy", "tracking", "scenario rate policy: fixed[:n], capacity[:db], tracking[:db]")
	)
	flag.Parse()

	if *scenario != "" {
		nFlows := 0 // 0 ⇒ MeasureScenario's default population
		if flagSet("flows") {
			nFlows = *flows
		}
		runScenario(*scenario, *policy, nFlows, *beam, *seed, flagSet("b"))
		return
	}

	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}

	p := spinal.DefaultParams()
	p.B = *beam
	if *flows < 1 {
		*flows = 1
	}
	runFlows(data, p, *snrDB, *seed, *flows)
}

// flagSet reports whether the named flag appeared on the command line,
// so scenario mode can tell an explicit -flows 1 or -b from the pipe
// mode's defaults.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// runScenario drives sim.MeasureScenario and prints its statistics.
func runScenario(scenario, policy string, flows, beam int, seed int64, beamExplicit bool) {
	p := spinal.DefaultParams()
	if beamExplicit {
		p.B = beam
	} else {
		p.B = 16 // quick-scale beam: scenario statistics, not peak rate
	}
	cfg := sim.ScenarioConfig{
		Params:   p,
		Scenario: scenario,
		Policy:   policy,
		Flows:    flows,
		Seed:     seed,
	}
	res, err := sim.MeasureScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	fmt.Printf("  delivered %d bytes over %d flows in %d engine rounds (B=%d, seed %d)\n",
		res.Bytes, res.Flows, res.Rounds, p.B, seed)
}

// runFlows splits data into n contiguous datagrams and drives them as
// concurrent flows through one link.Session.
func runFlows(data []byte, p spinal.Params, snrDB float64, seed int64, n int) {
	s, err := link.NewSession(p)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	chunk := (len(data) + n - 1) / n
	if chunk == 0 {
		chunk = 1
	}
	order := make(map[link.FlowID]int, n)
	parts := make([][]byte, n)
	for off, i := 0, 0; i < n; i++ {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		id, err := s.Send(data[off:end],
			link.WithChannel(channel.NewAWGN(snrDB, seed+int64(i))),
			link.WithRatePolicy(link.CapacityRate{SNREstimateDB: snrDB}))
		if err != nil {
			log.Fatal(err)
		}
		order[id] = i
		off = end
	}

	results, err := s.Drain(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	totalSymbols := 0
	blocks := 0
	rounds := 0
	for _, r := range results {
		if r.Err != nil {
			log.Fatalf("flow %d failed: %v", r.ID, r.Err)
		}
		parts[order[r.ID]] = r.Datagram
		totalSymbols += r.Stats.SymbolsSent
		blocks += r.Stats.Blocks
		if r.Stats.Frames > rounds {
			rounds = r.Stats.Frames
		}
	}
	for _, part := range parts {
		if _, err := os.Stdout.Write(part); err != nil {
			log.Fatal(err)
		}
	}
	if n == 1 {
		fmt.Fprintf(os.Stderr, "spinalcat: %d bytes, %d blocks, %d symbols (%.2f bits/symbol) at %.1f dB\n",
			len(data), blocks, totalSymbols,
			float64(len(data)*8)/float64(totalSymbols), snrDB)
		return
	}
	fmt.Fprintf(os.Stderr, "spinalcat: %d bytes over %d flows in %d shared frames, %d symbols (%.2f bits/symbol aggregate) at %.1f dB\n",
		len(data), n, rounds, totalSymbols,
		float64(len(data)*8)/float64(totalSymbols), snrDB)
}
