// Command spinalcat pipes stdin through a spinal code: it segments the
// input into §6 code blocks, transmits each rateless over a simulated
// AWGN channel until its CRC verifies, and writes the decoded bytes to
// stdout. Statistics go to stderr. It is built entirely on the public
// spinal, spinal/channel, spinal/link, spinal/transport and spinal/sim
// packages.
//
// With -flows N > 1 the input is split into N datagrams carried as
// concurrent flows through one link.Session — shared frames, sharded
// codec workers — and reassembled in order on stdout.
//
// With -scenario NAME no stdin is read: the session runs the named
// workload — a time-varying channel (burst, walk, trace:<file>, churn)
// or an impaired ARQ feedback path (feedback-delay, feedback-loss) —
// under the -policy rate policy and prints goodput/outage/retransmission
// statistics: the spinal code exercised against the changing channels,
// and the imperfect reverse channels, it was built for.
//
// With -faults SPEC a deterministic fault injector attacks the wire in
// either mode: frames and acks are reordered, duplicated, truncated,
// bit-flipped and blacked out per the spec, and the stderr statistics
// report what was injected. The link degrades; it does not fail.
//
// With -loadgen ADDR no stdin is read either: spinalcat becomes a load
// generator against a running spinald, driving -flows concurrent flows
// of -size random bytes over one UDP socket with bounded per-flow
// retries, verifying every delivered checksum, and printing the
// aggregate goodput. It exits nonzero if any flow fails, corrupts, or
// nothing is delivered. -weight stamps each submission's scheduling
// weight on the wire (honored by a spinald running -sched dwfq).
//
// With -fetch the stdin pipe runs through spinal/transport instead of a
// static flow split: the input streams as a pipeline of 1 KiB link
// segments under a CUBIC congestion window, with RTT estimated from ack
// telemetry and RTO-bounded retries. The stderr statistics add the
// transport's view — SRTT, peak window, loss events.
//
// With -code SPEC the session runs a different channel code behind the
// same link machinery (spinal/code, link.WithCode): spinal (default),
// raptor, strider, turbo, ldpc or ldpc:RATE with RATE one of 1/2, 2/3,
// 3/4, 5/6 — the paper's §8 bake-off from the command line, in either
// pipe or scenario mode.
//
//	echo "hello" | spinalcat -snr 8
//	spinalcat -snr 5 -b 16 < somefile > copy && cmp somefile copy
//	spinalcat -snr 10 -flows 8 < somefile > copy && cmp somefile copy
//	spinalcat -scenario burst -policy tracking
//	spinalcat -scenario trace:internal/channel/testdata/fade.trace -flows 24
//	spinalcat -scenario feedback-loss -policy tracking
//	spinalcat -snr 8 -flows 4 -faults reorder=4,dup=0.05,corrupt=0.01 < somefile > copy
//	spinalcat -scenario churn -faults chaos=2
//	spinalcat -snr 12 -code raptor < somefile > copy && cmp somefile copy
//	spinalcat -scenario burst -code ldpc:3/4
//	spinalcat -loadgen 127.0.0.1:7447 -flows 256 -size 64
//	spinalcat -loadgen 127.0.0.1:7447 -flows 32 -weight 4
//	spinalcat -fetch -snr 10 < somefile > copy && cmp somefile copy
//	spinalcat -scenario mice-elephants -sched dwfq
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"spinal"
	"spinal/channel"
	"spinal/code"
	"spinal/daemon"
	"spinal/link"
	"spinal/sim"
	"spinal/transport"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spinalcat: ")
	var (
		snrDB    = flag.Float64("snr", 10, "simulated AWGN SNR in dB")
		beam     = flag.Int("b", 256, "decoder beam width B")
		seed     = flag.Int64("seed", 1, "channel noise seed")
		flows    = flag.Int("flows", 1, "split the input across N concurrent link-session flows")
		scenario = flag.String("scenario", "", "run a named scenario instead of piping stdin: burst, walk, trace:<file>, churn, feedback-delay, feedback-loss, chaos, chaos-feedback, mice-elephants, fetch-cubic")
		policy   = flag.String("policy", "tracking", "scenario rate policy: fixed[:n], capacity[:db], tracking[:db]")
		faults   = flag.String("faults", "", "adversarial-link fault spec, e.g. reorder=4,dup=0.05,corrupt=0.01 or chaos=2 (see README)")
		codeSpec = flag.String("code", "spinal", "channel code: spinal, raptor, strider, turbo, ldpc or ldpc:RATE")
		loadgen  = flag.String("loadgen", "", "drive a running spinald at this UDP address with -flows concurrent flows of -size bytes")
		size     = flag.Int("size", 64, "loadgen payload bytes per flow")
		weight   = flag.Int("weight", 0, "loadgen submission scheduling weight (0/1 = default share; needs a dwfq spinald)")
		fetch    = flag.Bool("fetch", false, "pipe stdin through the congestion-aware transport fetcher instead of a static flow split")
		sched    = flag.String("sched", "", "scenario admission scheduler: rr (default) or dwfq")
	)
	flag.Parse()

	if *loadgen != "" {
		if *weight < 0 || *weight > 255 {
			log.Fatalf("-weight %d out of range (wire carries 0..255)", *weight)
		}
		runLoadgen(*loadgen, *flows, *size, *seed, uint8(*weight))
		return
	}

	fc, err := parseFaults(*faults)
	if err != nil {
		log.Fatal(err)
	}

	if *scenario != "" {
		nFlows := 0 // 0 ⇒ MeasureScenario's default population
		if flagSet("flows") {
			nFlows = *flows
		}
		runScenario(*scenario, *policy, *codeSpec, *sched, nFlows, *beam, *seed, flagSet("b"), fc)
		return
	}

	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}

	p := spinal.DefaultParams()
	p.B = *beam
	if *fetch {
		runFetch(data, p, *codeSpec, *snrDB, *seed, fc)
		return
	}
	if *flows < 1 {
		*flows = 1
	}
	runFlows(data, p, *codeSpec, *snrDB, *seed, *flows, fc)
}

// parseFaults parses the -faults grammar: comma-separated key=value
// pairs mapping onto link.FaultConfig. Probabilities are per share /
// per ack in [0,1]. Keys: reorder (a value ≥ 1 is a depth and implies
// probability 0.15; < 1 is the probability), depth, dup, trunc,
// corrupt, bits, blackout, blackoutlen, ackreorder, ackdup, acktrunc,
// ackcorrupt, seed — and chaos[=scale], the golden chaos-feedback mix
// scaled by the given factor, which later keys may then override.
func parseFaults(spec string) (*link.FaultConfig, error) {
	if spec == "" {
		return nil, nil
	}
	var fc link.FaultConfig
	for _, field := range strings.Split(spec, ",") {
		key, val, hasVal := strings.Cut(strings.TrimSpace(field), "=")
		num := 0.0
		if hasVal {
			var err error
			num, err = strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("-faults %s: %v", field, err)
			}
		}
		switch key {
		case "chaos":
			scale := 1.0
			if hasVal {
				scale = num
			}
			fc = sim.ChaosFaults(true).Scale(scale)
		case "reorder":
			if num >= 1 {
				fc.ReorderDepth = int(num)
				if fc.FrameReorder == 0 {
					fc.FrameReorder = 0.15
				}
			} else {
				fc.FrameReorder = num
			}
		case "depth":
			fc.ReorderDepth = int(num)
		case "dup":
			fc.FrameDup = num
		case "trunc":
			fc.FrameTruncate = num
		case "corrupt":
			fc.FrameCorrupt = num
		case "bits":
			fc.CorruptBits = int(num)
		case "blackout":
			fc.Blackout = num
		case "blackoutlen":
			fc.BlackoutRounds = int(num)
		case "ackreorder":
			fc.AckReorder = num
		case "ackdup":
			fc.AckDup = num
		case "acktrunc":
			fc.AckTruncate = num
		case "ackcorrupt":
			fc.AckCorrupt = num
		case "seed":
			fc.Seed = int64(num)
		default:
			return nil, fmt.Errorf("-faults: unknown key %q (want chaos, reorder, depth, dup, trunc, corrupt, bits, blackout, blackoutlen, ackreorder, ackdup, acktrunc, ackcorrupt, seed)", key)
		}
	}
	return &fc, nil
}

// runLoadgen drives a running spinald through the public daemon package
// and exits nonzero unless every flow resolved and verified. The
// submission tag is derived from -seed, so repeated runs against one
// daemon measure fresh flows instead of replaying its idempotence cache.
func runLoadgen(addr string, flows, size int, seed int64, weight uint8) {
	if flows < 1 {
		flows = 1
	}
	res, err := daemon.RunLoad(daemon.LoadConfig{
		Addr:   addr,
		Flows:  flows,
		Size:   size,
		Seq:    uint32(seed),
		Seed:   seed,
		Weight: weight,
		// A race-instrumented daemon on a loaded CI runner can take
		// seconds to serve a big burst; give each flow a minute of
		// bounded patience rather than the default 5 s.
		Timeout: time.Second,
		Retries: 60,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	if res.Failed > 0 || res.Corrupted > 0 || res.Delivered == 0 {
		log.Fatalf("loadgen failed: %d/%d delivered, %d failed, %d corrupted",
			res.Delivered, res.Flows, res.Failed, res.Corrupted)
	}
}

// flagSet reports whether the named flag appeared on the command line,
// so scenario mode can tell an explicit -flows 1 or -b from the pipe
// mode's defaults.
func flagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// runScenario drives sim.MeasureScenario and prints its statistics.
func runScenario(scenario, policy, codeSpec, sched string, flows, beam int, seed int64, beamExplicit bool, fc *link.FaultConfig) {
	p := spinal.DefaultParams()
	if beamExplicit {
		p.B = beam
	} else {
		p.B = 16 // quick-scale beam: scenario statistics, not peak rate
	}
	cfg := sim.ScenarioConfig{
		Params:    p,
		Scenario:  scenario,
		Policy:    policy,
		Flows:     flows,
		Seed:      seed,
		Faults:    fc,
		Scheduler: sched,
	}
	if flagSet("code") {
		cfg.Code = codeSpec
	}
	res, err := sim.MeasureScenario(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res)
	codeName := cfg.Code
	if codeName == "" {
		codeName = "spinal"
	}
	fmt.Printf("  delivered %d bytes over %d flows in %d engine rounds (%s, B=%d, seed %d)\n",
		res.Bytes, res.Flows, res.Rounds, codeName, p.B, seed)
}

// runFetch streams data through the congestion-aware transport fetcher:
// 1 KiB segments pipelined under a CUBIC window over the simulated AWGN
// medium, RTT estimated from the link's ack telemetry.
func runFetch(data []byte, p spinal.Params, codeSpec string, snrDB float64, seed int64, fc *link.FaultConfig) {
	opts := []link.Option{
		link.WithChannel(channel.NewAWGN(snrDB, seed)),
		link.WithRatePolicy(link.CapacityRate{SNREstimateDB: snrDB}),
		link.WithSeed(seed),
	}
	if fc != nil {
		opts = append(opts, link.WithFaults(*fc))
	}
	if flagSet("code") {
		c, err := code.Parse(codeSpec, p)
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, link.WithCode(c))
	}
	res, err := transport.Fetch(context.Background(), data, transport.Config{
		Params:  p,
		Options: opts,
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := os.Stdout.Write(res.Payload); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"spinalcat: fetched %d bytes as %d segments in %d rounds (%.2f bits/symbol) at %.1f dB\n",
		len(res.Payload), res.Segments, res.Steps, res.Goodput, snrDB)
	fmt.Fprintf(os.Stderr,
		"spinalcat: transport: srtt %.1f rounds, rto %d, peak window %.1f, %d retries, %d loss events\n",
		res.SRTT, res.RTO, res.CwndMax, res.Retries, res.Losses)
}

// runFlows splits data into n contiguous datagrams and drives them as
// concurrent flows through one link.Session.
func runFlows(data []byte, p spinal.Params, codeSpec string, snrDB float64, seed int64, n int, fc *link.FaultConfig) {
	var sessOpts []link.Option
	if fc != nil {
		sessOpts = append(sessOpts, link.WithFaults(*fc))
	}
	if flagSet("code") {
		c, err := code.Parse(codeSpec, p)
		if err != nil {
			log.Fatal(err)
		}
		sessOpts = append(sessOpts, link.WithCode(c))
	}
	s, err := link.NewSession(p, sessOpts...)
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	chunk := (len(data) + n - 1) / n
	if chunk == 0 {
		chunk = 1
	}
	order := make(map[link.FlowID]int, n)
	parts := make([][]byte, n)
	for off, i := 0, 0; i < n; i++ {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		id, err := s.Send(data[off:end],
			link.WithChannel(channel.NewAWGN(snrDB, seed+int64(i))),
			link.WithRatePolicy(link.CapacityRate{SNREstimateDB: snrDB}))
		if err != nil {
			log.Fatal(err)
		}
		order[id] = i
		off = end
	}

	results, err := s.Drain(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	totalSymbols := 0
	blocks := 0
	rounds := 0
	frameFaults, ackFaults, rejected := 0, 0, 0
	for _, r := range results {
		if r.Err != nil {
			log.Fatalf("flow %d failed: %v", r.ID, r.Err)
		}
		parts[order[r.ID]] = r.Datagram
		totalSymbols += r.Stats.SymbolsSent
		blocks += r.Stats.Blocks
		if r.Stats.Frames > rounds {
			rounds = r.Stats.Frames
		}
		fs := r.Stats.Faults
		frameFaults += fs.FramesReordered + fs.FramesDuplicated + fs.FramesTruncated + fs.FramesCorrupted + fs.FramesBlackedOut
		ackFaults += fs.AcksReordered + fs.AcksDuplicated + fs.AcksTruncated + fs.AcksCorrupted
		rejected += r.Stats.BatchesRejected
	}
	for _, part := range parts {
		if _, err := os.Stdout.Write(part); err != nil {
			log.Fatal(err)
		}
	}
	if n == 1 {
		fmt.Fprintf(os.Stderr, "spinalcat: %d bytes, %d blocks, %d symbols (%.2f bits/symbol) at %.1f dB\n",
			len(data), blocks, totalSymbols,
			float64(len(data)*8)/float64(totalSymbols), snrDB)
	} else {
		fmt.Fprintf(os.Stderr, "spinalcat: %d bytes over %d flows in %d shared frames, %d symbols (%.2f bits/symbol aggregate) at %.1f dB\n",
			len(data), n, rounds, totalSymbols,
			float64(len(data)*8)/float64(totalSymbols), snrDB)
	}
	if fc != nil {
		fmt.Fprintf(os.Stderr, "spinalcat: faults injected: %d frame, %d ack; %d corrupt batches rejected\n",
			frameFaults, ackFaults, rejected)
	}
}
