// Command spinald serves spinal-coded link transfers over one UDP
// socket: clients submit datagrams (spinalcat -loadgen speaks the
// protocol), each is carried across a simulated AWGN channel by one of
// N per-core link engines sharing a warmed codec pool, and the outcome
// — delivery status, byte count, CRC-32, forward and ack airtime —
// returns in batched result datagrams. An optional HTTP endpoint
// exports engine, pool and socket counters as JSON at /metrics.
//
// SIGTERM or SIGINT drains gracefully: new submissions are rejected
// with a typed status, in-flight flows flush to completion (bounded by
// -drain-timeout), and a final report goes to stderr ending in
// "drained cleanly".
//
//	spinald -listen 127.0.0.1:7447 -telemetry 127.0.0.1:7448 -snr 10
//	spinalcat -loadgen 127.0.0.1:7447 -flows 256 -size 64
//	curl -s http://127.0.0.1:7448/metrics | jq .flows
package main

import (
	"context"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spinal"
	"spinal/daemon"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("spinald: ")
	var (
		listen       = flag.String("listen", "127.0.0.1:7447", "UDP address to serve")
		telemetry    = flag.String("telemetry", "", "HTTP address for /metrics and /healthz (empty = off)")
		shards       = flag.Int("shards", 0, "per-core link engines (0 = GOMAXPROCS)")
		snrDB        = flag.Float64("snr", 10, "simulated AWGN SNR each served flow crosses, in dB")
		beam         = flag.Int("b", 256, "decoder beam width B")
		seed         = flag.Int64("seed", 1, "channel noise seed")
		sched        = flag.String("sched", "", "flow admission scheduler: rr (default) or dwfq, honoring each submission's wire weight")
		queueDepth   = flag.Int("queue-depth", 0, "per-shard ingress queue capacity (0 = 1024)")
		doneCache    = flag.Int("done-cache", 0, "per-shard resolved-flow replay cache, the idempotence window (0 = 8192)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "bound on the graceful drain after SIGTERM")
	)
	flag.Parse()

	p := spinal.DefaultParams()
	p.B = *beam
	d, err := daemon.New(daemon.Config{
		Listen:     *listen,
		Telemetry:  *telemetry,
		Shards:     *shards,
		Params:     p,
		SNRdB:      *snrDB,
		Seed:       *seed,
		Scheduler:  *sched,
		QueueDepth: *queueDepth,
		DoneCache:  *doneCache,
		Report:     os.Stderr,
	})
	if err != nil {
		log.Fatal(err)
	}
	d.Start()
	log.Printf("serving on %s (B=%d, %.1f dB)", d.Addr(), p.B, *snrDB)
	if addr := d.TelemetryAddr(); addr != "" {
		log.Printf("telemetry on http://%s/metrics", addr)
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	sig := <-sigCh
	log.Printf("%s: draining (up to %v)", sig, *drainTimeout)
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
}
