// Command spinalsim regenerates the paper's tables and figures through
// the public spinal/sim experiment registry.
//
// Usage:
//
//	spinalsim -list
//	spinalsim -exp fig8-1 [-full] [-seed 7]
//	spinalsim -all
//
// Quick scale (default) uses reduced trial counts chosen so every
// qualitative result is stable; -full approaches the paper's parameters
// at much longer runtime. See EXPERIMENTS.md for paper-vs-measured
// numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"spinal/sim"
)

func main() {
	var (
		list = flag.Bool("list", false, "list available experiments")
		exp  = flag.String("exp", "", "experiment id to run (see -list)")
		all  = flag.Bool("all", false, "run every experiment")
		full = flag.Bool("full", false, "full scale (paper-sized parameters; slow)")
		seed = flag.Int64("seed", 1, "base RNG seed")
	)
	flag.Parse()

	cfg := sim.ExperimentConfig{Quick: !*full, Seed: *seed}

	switch {
	case *list:
		for _, e := range sim.Experiments() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
	case *all:
		for _, e := range sim.Experiments() {
			run(e, cfg)
		}
	case *exp != "":
		e := sim.ExperimentByID(*exp)
		if e == nil {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", *exp)
			os.Exit(2)
		}
		run(*e, cfg)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func run(e sim.Experiment, cfg sim.ExperimentConfig) {
	start := time.Now()
	tables := e.Run(cfg)
	for _, t := range tables {
		fmt.Println(t)
	}
	fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
}
