package transport_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"spinal"
	"spinal/channel"
	"spinal/link"
	"spinal/transport"
)

func exampleParams() spinal.Params {
	return spinal.Params{K: 4, B: 16, D: 1, C: 6, Tail: 2, Ways: 8}
}

// TestPublicFetch pins the public surface: a fetch through the alias
// package behaves exactly like the internal one.
func TestPublicFetch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	payload := make([]byte, 4<<10)
	rng.Read(payload)
	res, err := transport.Fetch(context.Background(), payload, transport.Config{
		Params: exampleParams(),
		Options: []link.Option{
			link.WithChannel(channel.NewAWGN(12, 7)),
			link.WithRatePolicy(link.CapacityRate{SNREstimateDB: 12}),
		},
		SegmentBytes: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Fatal("payload corrupted")
	}
	if res.Segments != 8 || res.Goodput <= 0 {
		t.Fatalf("unexpected result: %d segments, goodput %.3f", res.Segments, res.Goodput)
	}
}

func ExampleFetch() {
	payload := bytes.Repeat([]byte("spinal"), 512) // 3 KiB
	res, err := transport.Fetch(context.Background(), payload, transport.Config{
		Params: exampleParams(),
		Options: []link.Option{
			link.WithChannel(channel.NewAWGN(12, 1)),
			link.WithRatePolicy(link.CapacityRate{SNREstimateDB: 12}),
		},
		SegmentBytes: 1024,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res.Payload), res.Segments, bytes.Equal(res.Payload, payload))
	// Output: 3072 3 true
}
