// Package transport is the public congestion-aware fetch API over the
// spinal link — the experiment tier above spinal/link, the way
// spinal/sim sits above the codec.
//
// A Fetcher streams a large payload as a pipeline of link-layer
// segments: round-trip time is estimated RFC 6298-style from the
// session's ack telemetry (or from segment completions when none is
// configured), the number of segments in flight follows a CUBIC (or
// AIMD) congestion window with slow start, and each segment attempt is
// bounded by the current RTO with exponential backoff — a lost attempt
// shrinks the window and is retried. Time is engine rounds, the link
// simulation's only clock.
//
//	res, err := transport.Fetch(ctx, payload, transport.Config{
//		Options: []link.Option{
//			link.WithChannel(channel.NewAWGN(12, 1)),
//			link.WithRatePolicy(link.CapacityRate{SNREstimateDB: 12}),
//			link.WithFeedback(link.FeedbackConfig{DelayRounds: 4}),
//		},
//	})
//
// Pair it with link.WithScheduler to fetch fairly alongside competing
// flows: the fetch's segments are ordinary flows, so per-flow weights,
// priorities and deadlines apply to them like any other traffic.
//
// The concrete types are aliases of the engine-internal implementations,
// so the public surface and the transport cannot drift apart; see
// docs/API.md for the stability guarantees.
package transport

import (
	"context"

	itransport "spinal/internal/transport"
)

// Config parameterizes a fetch: the session it runs over (own or
// shared), segment size, window bounds and control law, RTO bounds, and
// the retry budget.
type Config = itransport.Config

// Result reports one completed fetch: the reassembled payload, segment
// and retry counts, loss events, the final SRTT/RTO estimates, window
// extremes, airtime totals and goodput.
type Result = itransport.Result

// Fetcher streams payloads over a link session as congestion-controlled
// segment pipelines; reuse one to keep RTT state across fetches.
type Fetcher = itransport.Fetcher

// ErrSegmentRetries reports a segment that exhausted its retry budget.
var ErrSegmentRetries = itransport.ErrSegmentRetries

// NewFetcher builds a fetcher and, unless cfg.Session is set, its own
// link session from cfg.Params and cfg.Options.
func NewFetcher(cfg Config) (*Fetcher, error) { return itransport.NewFetcher(cfg) }

// Fetch is the one-shot convenience: build a fetcher, stream payload,
// close.
func Fetch(ctx context.Context, payload []byte, cfg Config) (*Result, error) {
	return itransport.Fetch(ctx, payload, cfg)
}
