package spinal

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestPublicAPIRoundTrip exercises the facade exactly as the package doc
// comment advertises.
func TestPublicAPIRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	msg := make([]byte, 16)
	rng.Read(msg)
	p := DefaultParams()
	p.B = 32

	enc := NewEncoder(msg, len(msg)*8, p)
	dec := NewDecoder(len(msg)*8, p)
	sched := enc.NewSchedule()
	for sub := 0; sub < 8; sub++ {
		ids := sched.NextSubpass()
		dec.Add(ids, enc.Symbols(ids))
	}
	got, cost := dec.Decode()
	if !bytes.Equal(got, msg) {
		t.Fatal("round trip failed")
	}
	if cost != 0 {
		t.Fatalf("noiseless cost %g", cost)
	}
}

func TestPublicBSCRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	msg := make([]byte, 8)
	rng.Read(msg)
	p := DefaultParams()
	p.C = 1
	p.B = 32

	enc := NewEncoder(msg, len(msg)*8, p)
	dec := NewBSCDecoder(len(msg)*8, p)
	sched := enc.NewSchedule()
	// A noiseless BSC still needs more coded bits than message bits; six
	// passes supply 6·17 = 102 bits for the 64-bit message.
	for sub := 0; sub < 48; sub++ {
		ids := sched.NextSubpass()
		dec.Add(ids, enc.Bits(ids))
	}
	got, _ := dec.Decode()
	if !bytes.Equal(got, msg) {
		t.Fatal("BSC round trip failed")
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.K != 4 || p.B != 256 || p.D != 1 || p.C != 6 || p.Tail != 2 || p.Ways != 8 {
		t.Fatalf("unexpected defaults: %+v", p)
	}
}

func TestNewScheduleExported(t *testing.T) {
	s := NewSchedule(64, 8, 2)
	if s.SymbolsPerPass() != 65 {
		t.Fatalf("SymbolsPerPass = %d", s.SymbolsPerPass())
	}
}
