package spinal_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its artifact at quick scale and
// logs the resulting table, so `go test -bench=. -benchmem` doubles as a
// full reproduction run. See EXPERIMENTS.md for paper-vs-measured values
// and cmd/spinalsim for the standalone runner (including -full scale).

import (
	"testing"

	"spinal"
	"spinal/internal/experiments"
)

func runExperiment(b *testing.B, id string) {
	e := experiments.ByID(id)
	if e == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	cfg := experiments.DefaultConfig()
	for i := 0; i < b.N; i++ {
		tables := e.Run(cfg)
		if i == 0 {
			for _, t := range tables {
				b.Log("\n" + t.String())
			}
		}
	}
}

// BenchmarkFig8_1 regenerates Figure 8-1 (rate and gap vs SNR for spinal,
// Raptor, Strider, Strider+ and the LDPC envelope) — the flagship result.
func BenchmarkFig8_1(b *testing.B) { runExperiment(b, "fig8-1") }

// BenchmarkIntroTable regenerates the Chapter 1 gains table (reuses the
// Fig 8-1 sweep when cached).
func BenchmarkIntroTable(b *testing.B) { runExperiment(b, "intro-table") }

// BenchmarkFig8_2 regenerates Figure 8-2 (rateless vs fixed-rate spinal).
func BenchmarkFig8_2(b *testing.B) { runExperiment(b, "fig8-2") }

// BenchmarkFig8_3 regenerates Figure 8-3 (small-packet performance).
func BenchmarkFig8_3(b *testing.B) { runExperiment(b, "fig8-3") }

// BenchmarkFig8_4 regenerates Figure 8-4 (fading, known h).
func BenchmarkFig8_4(b *testing.B) { runExperiment(b, "fig8-4") }

// BenchmarkFig8_5 regenerates Figure 8-5 (fading, AWGN decoders).
func BenchmarkFig8_5(b *testing.B) { runExperiment(b, "fig8-5") }

// BenchmarkFig8_6 regenerates Figure 8-6 (compute budget vs performance).
func BenchmarkFig8_6(b *testing.B) { runExperiment(b, "fig8-6") }

// BenchmarkFig8_7 regenerates Figure 8-7 (bubble depth tradeoff).
func BenchmarkFig8_7(b *testing.B) { runExperiment(b, "fig8-7") }

// BenchmarkFig8_8 regenerates Figure 8-8 (output density c).
func BenchmarkFig8_8(b *testing.B) { runExperiment(b, "fig8-8") }

// BenchmarkFig8_9 regenerates Figure 8-9 (tail symbols).
func BenchmarkFig8_9(b *testing.B) { runExperiment(b, "fig8-9") }

// BenchmarkFig8_10 regenerates Figure 8-10 (puncturing schedules).
func BenchmarkFig8_10(b *testing.B) { runExperiment(b, "fig8-10") }

// BenchmarkFig8_11 regenerates Figure 8-11 (symbols-to-decode CDF).
func BenchmarkFig8_11(b *testing.B) { runExperiment(b, "fig8-11") }

// BenchmarkFig8_12 regenerates Figure 8-12 (code block length).
func BenchmarkFig8_12(b *testing.B) { runExperiment(b, "fig8-12") }

// BenchmarkTable8_1 regenerates Table 8.1 (OFDM PAPR by constellation).
func BenchmarkTable8_1(b *testing.B) { runExperiment(b, "table8-1") }

// BenchmarkFigB_2 regenerates Figure B-2 (hardware parameter set in
// simulation).
func BenchmarkFigB_2(b *testing.B) { runExperiment(b, "figB-2") }

// BenchmarkBSC exercises the §4.6 BSC capacity claim.
func BenchmarkBSC(b *testing.B) { runExperiment(b, "bsc") }

// BenchmarkHashAblation exercises the §7.1 hash-choice ablation.
func BenchmarkHashAblation(b *testing.B) { runExperiment(b, "hash-ablation") }

// --- Micro-benchmarks of the core code paths ---

// BenchmarkEncoder measures raw symbol generation throughput. It reuses
// one output buffer via AppendSymbols so the timing reflects encoding,
// not allocator noise.
func BenchmarkEncoder(b *testing.B) {
	p := spinal.DefaultParams()
	msg := make([]byte, 32)
	for i := range msg {
		msg[i] = byte(i * 37)
	}
	enc := spinal.NewEncoder(msg, 256, p)
	sched := enc.NewSchedule()
	ids := sched.NextSubpass()
	buf := make([]complex128, 0, len(ids))
	b.ReportAllocs()
	b.ResetTimer()
	var sink complex128
	for i := 0; i < b.N; i++ {
		buf = enc.AppendSymbols(buf[:0], ids)
		for _, s := range buf {
			sink += s
		}
	}
	_ = sink
}

// BenchmarkDecode measures one full bubble decode of a 256-bit message
// with two passes of symbols at the default parameters. Steady-state
// decodes reuse the decoder's scratch and perform no allocations.
func BenchmarkDecode(b *testing.B) {
	p := spinal.DefaultParams()
	msg := make([]byte, 32)
	for i := range msg {
		msg[i] = byte(i*73 + 11)
	}
	enc := spinal.NewEncoder(msg, 256, p)
	dec := spinal.NewDecoder(256, p)
	sched := enc.NewSchedule()
	for sub := 0; sub < 16; sub++ {
		ids := sched.NextSubpass()
		dec.Add(ids, enc.Symbols(ids))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Decode()
	}
}

// BenchmarkHWModel regenerates the Appendix B throughput/area model.
func BenchmarkHWModel(b *testing.B) { runExperiment(b, "hw-model") }

// BenchmarkAttemptAblation regenerates the decode-attempt granularity
// ablation.
func BenchmarkAttemptAblation(b *testing.B) { runExperiment(b, "ablation-attempts") }

// BenchmarkGEChannel regenerates the bursty-channel extension experiment.
func BenchmarkGEChannel(b *testing.B) { runExperiment(b, "ge-channel") }

// BenchmarkScenarioGoodput regenerates the time-varying-scenario goodput
// comparison (FixedRate vs CapacityRate vs TrackingRate).
func BenchmarkScenarioGoodput(b *testing.B) { runExperiment(b, "scenario-goodput") }
