package spinal_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation. Each benchmark regenerates its artifact at quick scale and
// logs the resulting table, so `go test -bench=. -benchmem` doubles as a
// full reproduction run. See EXPERIMENTS.md for paper-vs-measured values
// and cmd/spinalsim for the standalone runner (including -full scale).

import (
	"testing"

	"spinal"
	"spinal/internal/experiments"
)

func runExperiment(b *testing.B, id string) {
	e := experiments.ByID(id)
	if e == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	cfg := experiments.DefaultConfig()
	for i := 0; i < b.N; i++ {
		tables := e.Run(cfg)
		if i == 0 {
			for _, t := range tables {
				b.Log("\n" + t.String())
			}
		}
	}
}

// BenchmarkFig8_1 regenerates Figure 8-1 (rate and gap vs SNR for spinal,
// Raptor, Strider, Strider+ and the LDPC envelope) — the flagship result.
func BenchmarkFig8_1(b *testing.B) { runExperiment(b, "fig8-1") }

// BenchmarkIntroTable regenerates the Chapter 1 gains table (reuses the
// Fig 8-1 sweep when cached).
func BenchmarkIntroTable(b *testing.B) { runExperiment(b, "intro-table") }

// BenchmarkFig8_2 regenerates Figure 8-2 (rateless vs fixed-rate spinal).
func BenchmarkFig8_2(b *testing.B) { runExperiment(b, "fig8-2") }

// BenchmarkFig8_3 regenerates Figure 8-3 (small-packet performance).
func BenchmarkFig8_3(b *testing.B) { runExperiment(b, "fig8-3") }

// BenchmarkFig8_4 regenerates Figure 8-4 (fading, known h).
func BenchmarkFig8_4(b *testing.B) { runExperiment(b, "fig8-4") }

// BenchmarkFig8_5 regenerates Figure 8-5 (fading, AWGN decoders).
func BenchmarkFig8_5(b *testing.B) { runExperiment(b, "fig8-5") }

// BenchmarkFig8_6 regenerates Figure 8-6 (compute budget vs performance).
func BenchmarkFig8_6(b *testing.B) { runExperiment(b, "fig8-6") }

// BenchmarkFig8_7 regenerates Figure 8-7 (bubble depth tradeoff).
func BenchmarkFig8_7(b *testing.B) { runExperiment(b, "fig8-7") }

// BenchmarkFig8_8 regenerates Figure 8-8 (output density c).
func BenchmarkFig8_8(b *testing.B) { runExperiment(b, "fig8-8") }

// BenchmarkFig8_9 regenerates Figure 8-9 (tail symbols).
func BenchmarkFig8_9(b *testing.B) { runExperiment(b, "fig8-9") }

// BenchmarkFig8_10 regenerates Figure 8-10 (puncturing schedules).
func BenchmarkFig8_10(b *testing.B) { runExperiment(b, "fig8-10") }

// BenchmarkFig8_11 regenerates Figure 8-11 (symbols-to-decode CDF).
func BenchmarkFig8_11(b *testing.B) { runExperiment(b, "fig8-11") }

// BenchmarkFig8_12 regenerates Figure 8-12 (code block length).
func BenchmarkFig8_12(b *testing.B) { runExperiment(b, "fig8-12") }

// BenchmarkTable8_1 regenerates Table 8.1 (OFDM PAPR by constellation).
func BenchmarkTable8_1(b *testing.B) { runExperiment(b, "table8-1") }

// BenchmarkFigB_2 regenerates Figure B-2 (hardware parameter set in
// simulation).
func BenchmarkFigB_2(b *testing.B) { runExperiment(b, "figB-2") }

// BenchmarkBSC exercises the §4.6 BSC capacity claim.
func BenchmarkBSC(b *testing.B) { runExperiment(b, "bsc") }

// BenchmarkHashAblation exercises the §7.1 hash-choice ablation.
func BenchmarkHashAblation(b *testing.B) { runExperiment(b, "hash-ablation") }

// --- Micro-benchmarks of the core code paths ---

// BenchmarkEncoder measures raw symbol generation throughput. It reuses
// one output buffer via AppendSymbols so the timing reflects encoding,
// not allocator noise.
func BenchmarkEncoder(b *testing.B) {
	p := spinal.DefaultParams()
	msg := make([]byte, 32)
	for i := range msg {
		msg[i] = byte(i * 37)
	}
	enc := spinal.NewEncoder(msg, 256, p)
	sched := enc.NewSchedule()
	ids := sched.NextSubpass()
	buf := make([]complex128, 0, len(ids))
	b.ReportAllocs()
	b.ResetTimer()
	var sink complex128
	for i := 0; i < b.N; i++ {
		buf = enc.AppendSymbols(buf[:0], ids)
		for _, s := range buf {
			sink += s
		}
	}
	_ = sink
}

// BenchmarkDecode measures one full bubble decode of a 256-bit message
// with two passes of symbols at the default parameters. Steady-state
// decodes reuse the decoder's scratch and perform no allocations.
func BenchmarkDecode(b *testing.B) {
	p := spinal.DefaultParams()
	msg := make([]byte, 32)
	for i := range msg {
		msg[i] = byte(i*73 + 11)
	}
	enc := spinal.NewEncoder(msg, 256, p)
	dec := spinal.NewDecoder(256, p)
	sched := enc.NewSchedule()
	for sub := 0; sub < 16; sub++ {
		ids := sched.NextSubpass()
		dec.Add(ids, enc.Symbols(ids))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Decode()
	}
}

// benchKernelDecode measures one full decode of a 256-bit message of
// noiseless symbols at the given beam width, kernel mode and number of
// stored subpasses (8 subpasses = one full pass of the §5 puncturing
// schedule).
func benchKernelDecode(b *testing.B, beam, subpasses int, kernel spinal.Kernel) {
	p := spinal.DefaultParams()
	p.B = beam
	p.Kernel = kernel
	msg := make([]byte, 32)
	for i := range msg {
		msg[i] = byte(i*73 + 11)
	}
	enc := spinal.NewEncoder(msg, 256, p)
	dec := spinal.NewDecoder(256, p)
	sched := enc.NewSchedule()
	for sub := 0; sub < subpasses; sub++ {
		ids := sched.NextSubpass()
		dec.Add(ids, enc.Symbols(ids))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Decode()
	}
	b.StopTimer()
	if dec.KernelUsed() != kernel && kernel != spinal.KernelAuto {
		b.Fatalf("decode ran on kernel %v, want %v", dec.KernelUsed(), kernel)
	}
}

// BenchmarkDecodeQuantized is a line-rate operating point: a streaming
// receiver attempts a decode after every full pass of the puncturing
// schedule (8 subpasses here), with the fixed-point kernel at beam
// width 32 — between the Appendix B hardware's B=4 and the software
// evaluation's B=256, and per the Figure 8-6 compute-budget curve
// (fig8-6: k=4, budget 128) still at ~90% of the wide-beam fraction of
// capacity. The bench_check.sh gate holds this under 1 ms per 256-bit
// decode at zero steady-state allocations.
func BenchmarkDecodeQuantized(b *testing.B) {
	benchKernelDecode(b, 32, 8, spinal.KernelQuantized)
}

// BenchmarkDecodeQuantized256 runs the fixed-point kernel on the
// BenchmarkDecode workload (B=256, two passes) — the direct comparison
// row for BenchmarkDecodeFloat256.
func BenchmarkDecodeQuantized256(b *testing.B) {
	benchKernelDecode(b, 256, 16, spinal.KernelQuantized)
}

// BenchmarkDecodeFloat256 pins the float64 reference path on the same
// workload — the arithmetic BenchmarkDecode measured before the
// quantized kernel became the default.
func BenchmarkDecodeFloat256(b *testing.B) {
	benchKernelDecode(b, 256, 16, spinal.KernelFloat)
}

// BenchmarkHWModel regenerates the Appendix B throughput/area model.
func BenchmarkHWModel(b *testing.B) { runExperiment(b, "hw-model") }

// BenchmarkAttemptAblation regenerates the decode-attempt granularity
// ablation.
func BenchmarkAttemptAblation(b *testing.B) { runExperiment(b, "ablation-attempts") }

// BenchmarkGEChannel regenerates the bursty-channel extension experiment.
func BenchmarkGEChannel(b *testing.B) { runExperiment(b, "ge-channel") }

// BenchmarkScenarioGoodput regenerates the time-varying-scenario goodput
// comparison (FixedRate vs CapacityRate vs TrackingRate).
func BenchmarkScenarioGoodput(b *testing.B) { runExperiment(b, "scenario-goodput") }
