// Package phy is the public OFDM physical layer of the spinal-code
// library: the Appendix B 802.11a/g-like stack that carries spinal
// symbols on cyclic-prefixed OFDM frames over frequency-selective
// channels, handing the decoder raw subcarrier observations with their
// fading coefficients.
//
// Like spinal/sim, this package is an experiment surface with weaker
// stability guarantees than spinal, spinal/channel and spinal/link (see
// docs/API.md).
package phy

import iphy "spinal/internal/phy"

// Modulate builds one OFDM frame (preamble plus cyclic-prefixed data
// symbols) carrying the given data-subcarrier values.
func Modulate(data []complex128) []complex128 { return iphy.Modulate(data) }

// Demodulate recovers nData data-subcarrier observations y and their
// estimated per-subcarrier channel coefficients h from received samples.
func Demodulate(rx []complex128, nData int) (y, h []complex128) {
	return iphy.Demodulate(rx, nData)
}

// FrameSamples reports the sample count of a frame carrying nData
// data-subcarrier values.
func FrameSamples(nData int) int { return iphy.FrameSamples(nData) }

// SubcarrierSNRSpread reports the dB spread of per-subcarrier channel
// gains — the frequency selectivity the fading-aware decoder absorbs.
func SubcarrierSNRSpread(h []complex128) float64 { return iphy.SubcarrierSNRSpread(h) }
