package phy_test

import (
	"fmt"

	"spinal/phy"
)

// Example carries a block of data-subcarrier values across one OFDM
// frame on a clean channel: modulate, demodulate, and recover the same
// observations with flat (unit) channel estimates.
func Example() {
	data := make([]complex128, 96)
	for i := range data {
		if i%2 == 0 {
			data[i] = complex(1, 0)
		} else {
			data[i] = complex(-1, 0)
		}
	}
	frame := phy.Modulate(data)
	fmt.Println("frame samples:", len(frame) == phy.FrameSamples(len(data)))

	y, h := phy.Demodulate(frame, len(data))
	maxErr := 0.0
	for i := range data {
		// Equalize with the estimated coefficient, as a decoder would.
		got := y[i] / h[i]
		if d := real(got - data[i]); d > maxErr {
			maxErr = d
		} else if -d > maxErr {
			maxErr = -d
		}
	}
	fmt.Println("recovered within 1e-6:", maxErr < 1e-6)
	// A noiseless channel is flat: no spread across subcarriers.
	fmt.Println("flat channel:", phy.SubcarrierSNRSpread(h) < 1e-6)
	// Output:
	// frame samples: true
	// recovered within 1e-6: true
	// flat channel: true
}
