// Package daemon is the public face of spinald: a UDP datagram server
// that carries client payloads across per-core sharded spinal link
// engines sharing one warmed codec pool, with batched egress writes, a
// JSON telemetry endpoint and graceful drain. cmd/spinald is a thin
// flag wrapper around this package; spinalcat's -loadgen mode drives a
// running daemon through RunLoad.
//
// Like spinal/sim, this package is an experiment surface, not a
// stability contract: configuration and metrics fields may grow between
// versions (see docs/API.md).
package daemon

import (
	idaemon "spinal/internal/daemon"
)

// Result statuses carried in loadgen records and telemetry.
const (
	StatusDelivered = idaemon.StatusDelivered
	StatusOutage    = idaemon.StatusOutage
	StatusRejected  = idaemon.StatusRejected
	StatusError     = idaemon.StatusError
)

// Config configures a daemon: socket and telemetry addresses, shard
// count, code parameters, the simulated channel every served flow
// crosses, and queue/batch sizing.
type Config = idaemon.Config

// Daemon is a running spinald instance.
type Daemon = idaemon.Daemon

// Metrics is the /metrics telemetry snapshot.
type Metrics = idaemon.Metrics

// FlowMetrics aggregates flow accounting across shards.
type FlowMetrics = idaemon.FlowMetrics

// ShardMetrics is one shard's engine accounting.
type ShardMetrics = idaemon.ShardMetrics

// PoolMetrics is the shared codec pool's reuse telemetry.
type PoolMetrics = idaemon.PoolMetrics

// SocketMetrics counts the socket loop and the batching egress.
type SocketMetrics = idaemon.SocketMetrics

// LoadConfig drives RunLoad's concurrent flows against a daemon.
type LoadConfig = idaemon.LoadConfig

// LoadResult summarizes one loadgen run.
type LoadResult = idaemon.LoadResult

// New binds a daemon's sockets and builds its shards; call Start on the
// result to begin serving and Shutdown to drain.
func New(cfg Config) (*Daemon, error) { return idaemon.New(cfg) }

// RunLoad submits cfg.Flows concurrent flows against a running daemon
// from one client socket, with bounded per-flow retries, and collects
// every result.
func RunLoad(cfg LoadConfig) (LoadResult, error) { return idaemon.RunLoad(cfg) }
