// Package baseline exposes the library's §8 baseline codes for
// comparison experiments, each adapted behind the spinal/code interface
// so a link session runs it unchanged (link.WithCode): the Raptor
// rateless baseline over dense QAM, the Strider+ layered-superposition
// code, the plain turbo ARQ baseline, and the rate-switching LDPC shim
// that emulates ratelessness over the fixed-rate 802.11n-style family —
// the paper's oracle envelope made honest.
//
// Like spinal/sim, this package is an experiment surface with weaker
// stability guarantees than spinal, spinal/channel, spinal/link and
// spinal/code (see docs/API.md).
package baseline

import (
	"spinal"
	"spinal/code"
	icode "spinal/internal/code"
)

// NewCode builds a baseline (or spinal itself) from its spec string:
// "spinal" (the code of p), "raptor", "strider", "turbo", "ldpc"
// (adaptive rate/modulation ladder) or "ldpc:RATE" with RATE one of
// 1/2, 2/3, 3/4, 5/6. Equivalent to code.Parse.
func NewCode(spec string, p spinal.Params) (code.Code, error) {
	return icode.Parse(spec, p)
}

// Raptor builds the §8 Raptor baseline — LT output symbols over an LDPC
// precode with joint soft BP decoding, riding QAM-256 — behind the
// spinal/code interface.
func Raptor() code.Code { return icode.Raptor() }

// Strider builds the §8 Strider+ baseline — layered superposition over a
// rate-1/5 turbo base with SIC decoding and eight-subpass puncturing —
// behind the spinal/code interface.
func Strider() code.Code { return icode.Strider() }

// Turbo builds the plain turbo ARQ baseline — a fixed rate-1/5 turbo
// code over QPSK whose stream cycles the codeword for chase combining —
// behind the spinal/code interface.
func Turbo() code.Code { return icode.Turbo() }

// LDPC builds the rate-switching LDPC shim behind the spinal/code
// interface: rate "" walks the full §8 rate × modulation ladder
// (emulated ratelessness, with feedback-driven rung selection); a
// specific rate ("1/2", "2/3", "3/4", "5/6") pins the code rate and
// walks only its modulation ladder.
func LDPC(rate string) (code.Code, error) {
	if rate == "" {
		return icode.LDPC(""), nil
	}
	return icode.LDPCPinned(rate)
}
