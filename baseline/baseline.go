// Package baseline exposes the library's baseline codes and modems for
// comparison experiments: the Raptor (LT + LDPC precode) rateless
// baseline of §8 and the dense-QAM modulation it rides on.
//
// Like spinal/sim, this package is an experiment surface with weaker
// stability guarantees than spinal, spinal/channel and spinal/link (see
// docs/API.md).
package baseline

import (
	"spinal/internal/modem"
	"spinal/internal/raptor"
)

// RaptorCode is a Raptor code over k message bits.
type RaptorCode = raptor.Code

// RaptorDecoder is the belief-propagation peeling decoder for a
// RaptorCode.
type RaptorDecoder = raptor.Decoder

// NewRaptor creates a Raptor code for k message bits with the given
// construction seed.
func NewRaptor(k int, seed int64) *RaptorCode { return raptor.New(k, seed) }

// NewRaptorDecoder creates a decoder for c.
func NewRaptorDecoder(c *RaptorCode) *RaptorDecoder { return raptor.NewDecoder(c) }

// QAM is a square Gray-mapped QAM constellation.
type QAM = modem.QAM

// NewQAM creates a QAM constellation with the given number of points
// (a power of 4).
func NewQAM(points int) *QAM { return modem.NewQAM(points) }
