package framing

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCRC16KnownVector(t *testing.T) {
	// CCITT-FALSE of "123456789" is 0x29B1.
	if got := CRC16([]byte("123456789")); got != 0x29B1 {
		t.Fatalf("CRC16 = %#04x, want 0x29B1", got)
	}
	if got := CRC16(nil); got != 0xFFFF {
		t.Fatalf("CRC16(nil) = %#04x, want 0xFFFF", got)
	}
}

func TestCRCDetectsSingleBitErrors(t *testing.T) {
	err := quick.Check(func(data []byte, pos uint16) bool {
		if len(data) == 0 {
			data = []byte{0}
		}
		bit := int(pos) % (len(data) * 8)
		orig := CRC16(data)
		data[bit/8] ^= 1 << uint(bit%8)
		flipped := CRC16(data)
		data[bit/8] ^= 1 << uint(bit%8)
		return orig != flipped
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCRCDetectsBurstErrors(t *testing.T) {
	// Any burst of ≤16 bits must be detected by a 16-bit CRC.
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 64)
	rng.Read(data)
	orig := CRC16(data)
	for trial := 0; trial < 200; trial++ {
		start := rng.Intn(len(data)*8 - 16)
		length := 1 + rng.Intn(16)
		mut := append([]byte(nil), data...)
		changed := false
		for b := start; b < start+length; b++ {
			if rng.Intn(2) == 1 {
				mut[b/8] ^= 1 << uint(b%8)
				changed = true
			}
		}
		if changed && CRC16(mut) == orig {
			t.Fatalf("burst error undetected (start=%d len=%d)", start, length)
		}
	}
}

func TestBlockRoundTrip(t *testing.T) {
	payload := []byte("hello, spinal link layer")
	b := Block{Payload: payload, CRC: CRC16(payload)}
	got, ok := Verify(b.Bits())
	if !ok {
		t.Fatal("verification failed on intact block")
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mangled")
	}
}

func TestVerifyRejectsCorruption(t *testing.T) {
	payload := []byte("data data data")
	bits := Block{Payload: payload, CRC: CRC16(payload)}.Bits()
	bits[3] ^= 0x40
	if _, ok := Verify(bits); ok {
		t.Fatal("verification accepted corrupted block")
	}
	if _, ok := Verify([]byte{0x12}); ok {
		t.Fatal("verification accepted truncated block")
	}
}

func TestSegmentReassemble(t *testing.T) {
	err := quick.Check(func(datagram []byte) bool {
		blocks := Segment(datagram, 0)
		for _, b := range blocks {
			if b.NumBits() > MaxBlockBits {
				return false
			}
			if CRC16(b.Payload) != b.CRC {
				return false
			}
		}
		var payloads [][]byte
		for _, b := range blocks {
			p, ok := Verify(b.Bits())
			if !ok {
				return false
			}
			payloads = append(payloads, p)
		}
		out := Reassemble(payloads)
		if len(datagram) == 0 {
			return len(out) == 0
		}
		return bytes.Equal(out, datagram)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSegmentBlockCount(t *testing.T) {
	// 1024-bit blocks carry 126 payload bytes; a 1500-byte datagram needs
	// ⌈1500/126⌉ = 12 blocks.
	blocks := Segment(make([]byte, 1500), 0)
	if len(blocks) != 12 {
		t.Fatalf("got %d blocks, want 12", len(blocks))
	}
	// A small datagram fits in a single small block.
	blocks = Segment([]byte("x"), 0)
	if len(blocks) != 1 {
		t.Fatalf("got %d blocks, want 1", len(blocks))
	}
}

func TestSegmentCustomSize(t *testing.T) {
	blocks := Segment(make([]byte, 100), 256)
	for _, b := range blocks {
		if b.NumBits() > 256 {
			t.Fatalf("block has %d bits, max 256", b.NumBits())
		}
	}
	if len(blocks) != 4 { // 30 payload bytes per block
		t.Fatalf("got %d blocks, want 4", len(blocks))
	}
}

func TestSegmentEmptyDatagram(t *testing.T) {
	blocks := Segment(nil, 0)
	if len(blocks) != 1 {
		t.Fatal("empty datagram should yield one empty block")
	}
	p, ok := Verify(blocks[0].Bits())
	if !ok || len(p) != 0 {
		t.Fatal("empty block round trip failed")
	}
}

func TestAck(t *testing.T) {
	a := Ack{Seq: 3, Decoded: []bool{true, true, false}}
	if a.AllDecoded() {
		t.Fatal("AllDecoded true with pending block")
	}
	a.Decoded[2] = true
	if !a.AllDecoded() {
		t.Fatal("AllDecoded false with all blocks done")
	}
	empty := Ack{}
	if empty.AllDecoded() {
		t.Fatal("empty ACK should not report all decoded")
	}
}
