// Package framing implements the §6 link layer for spinal codes: datagrams
// are divided into code blocks of at most 1024 bits, each protected by a
// 16-bit CRC; frames carry a short sequence number so an erased frame
// cannot desynchronize the receiver; and ACKs carry one bit per code
// block.
package framing

// CRC16 computes the CCITT-FALSE CRC-16 (polynomial 0x1021, initial value
// 0xFFFF) over data, the checksum the §6 link layer appends to every code
// block.
func CRC16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// MaxBlockBits is the maximum code block size including the CRC (§6 uses
// 1024-bit code blocks).
const MaxBlockBits = 1024

// CRCBits is the per-block CRC overhead.
const CRCBits = 16

// Block is one code block: payload bytes plus its CRC, ready for the
// encoder.
type Block struct {
	// Payload is the datagram fragment carried by this block.
	Payload []byte
	// CRC protects Payload.
	CRC uint16
}

// Bits returns the block serialized for encoding: payload bytes followed
// by the big-endian CRC.
func (b Block) Bits() []byte {
	out := make([]byte, len(b.Payload)+2)
	copy(out, b.Payload)
	out[len(b.Payload)] = byte(b.CRC >> 8)
	out[len(b.Payload)+1] = byte(b.CRC)
	return out
}

// NumBits reports the encoded size of the block in bits.
func (b Block) NumBits() int { return (len(b.Payload) + 2) * 8 }

// Verify recomputes the CRC of a decoded block serialization and reports
// whether it matches; on success it returns the payload.
func Verify(decoded []byte) ([]byte, bool) {
	if len(decoded) < 2 {
		return nil, false
	}
	payload := decoded[:len(decoded)-2]
	want := uint16(decoded[len(decoded)-2])<<8 | uint16(decoded[len(decoded)-1])
	return payload, CRC16(payload) == want
}

// Segment divides a datagram into code blocks no larger than maxBlockBits
// (CRC included). maxBlockBits of 0 means MaxBlockBits.
func Segment(datagram []byte, maxBlockBits int) []Block {
	if maxBlockBits == 0 {
		maxBlockBits = MaxBlockBits
	}
	if maxBlockBits < CRCBits+8 {
		panic("framing: block size cannot fit CRC plus any payload")
	}
	payloadBytes := (maxBlockBits - CRCBits) / 8
	var blocks []Block
	for off := 0; off < len(datagram); off += payloadBytes {
		end := off + payloadBytes
		if end > len(datagram) {
			end = len(datagram)
		}
		p := datagram[off:end]
		blocks = append(blocks, Block{Payload: p, CRC: CRC16(p)})
	}
	if len(blocks) == 0 {
		blocks = append(blocks, Block{Payload: nil, CRC: CRC16(nil)})
	}
	return blocks
}

// Reassemble concatenates verified block payloads back into the datagram.
func Reassemble(payloads [][]byte) []byte {
	var out []byte
	for _, p := range payloads {
		out = append(out, p...)
	}
	return out
}

// Frame is one link-layer transmission unit: a highly redundant sequence
// number (conceptually PLCP-like; here an integer the simulation protects
// perfectly, as §6 assumes) plus, per code block, the indices of the
// symbols being sent in this frame.
type Frame struct {
	// Seq is the frame sequence number; the receiver uses it to infer
	// which spine values/passes each symbol position carries even when
	// earlier frames were erased.
	Seq uint32
	// BlockSubpasses records, for each code block, how many subpasses of
	// that block's symbol schedule have been transmitted up to and
	// including this frame. An erased frame leaves a gap the receiver can
	// reconstruct from the next frame's values.
	BlockSubpasses []int
}

// Ack is the receiver's reply: one bit per code block of the current
// datagram (§6), plus the sequence number it acknowledges.
type Ack struct {
	Seq     uint32
	Decoded []bool
}

// AllDecoded reports whether every block has been acknowledged.
func (a Ack) AllDecoded() bool {
	for _, d := range a.Decoded {
		if !d {
			return false
		}
	}
	return len(a.Decoded) > 0
}
