package experiments

import (
	"strings"
	"testing"
)

// TestBaselineGoodputOrdering asserts the §8 comparative claim on the
// bake-off table: spinal's engine goodput beats every baseline code
// under every condition, and on the moderate-SNR condition it sits
// within the LDPC oracle envelope (the genie pays no engine, feedback
// or rate-exploration cost, so "within" means a healthy fraction — the
// measured value is ≈80%). The LDPC shim, being an honest emulation of
// the family the envelope maximises over, must not beat its own oracle.
//
// The paper additionally orders Strider ≥ Raptor at moderate SNR; this
// repository's Strider underperforms the paper's (see BaselineGoodput's
// doc comment and EXPERIMENTS.md), so that leg is deliberately not
// asserted here — fig8-1 documents the same deviation standalone.
func TestBaselineGoodputOrdering(t *testing.T) {
	tables := BaselineGoodput(DefaultConfig())
	tb := tables[0]

	goodput := map[string]float64{} // "condition|code" → b/sym
	for _, r := range tb.Rows {
		gp, ok := parse(t, r[4])
		if !ok {
			t.Fatalf("missing goodput in row %v", r)
		}
		goodput[r[0]+"|"+r[1]] = gp
		// Every code must actually carry the workload: no outages under
		// any condition at the quick-scale seed.
		if r[3] != "0%" {
			t.Errorf("%s over %s suffered outages (%s):\n%s", r[1], r[0], r[3], tb)
		}
	}

	var conds []string
	seen := map[string]bool{}
	for _, r := range tb.Rows {
		if !seen[r[0]] {
			seen[r[0]] = true
			conds = append(conds, r[0])
		}
	}
	if len(conds) != 3 || len(tb.Rows) != 3*len(bakeoffCodes) {
		t.Fatalf("bake-off shape changed: %d conditions, %d rows", len(conds), len(tb.Rows))
	}

	for _, cond := range conds {
		sp := goodput[cond+"|spinal"]
		if sp <= 0 {
			t.Fatalf("no spinal goodput for condition %q", cond)
		}
		for _, code := range bakeoffCodes[1:] {
			if base := goodput[cond+"|"+code]; base >= sp {
				t.Errorf("%s (%.3f b/sym) not below spinal (%.3f) over %s:\n%s",
					code, base, sp, cond, tb)
			}
		}
	}

	// The oracle comparison lives on the moderate-SNR condition (first
	// in the table). Spinal must reach at least 60% of the genie
	// envelope despite paying for scheduling, delayed acks and pacing;
	// the LDPC shim must not exceed the envelope it emulates.
	moderate := conds[0]
	var envMean float64
	for _, r := range tb.Rows {
		if r[0] != moderate || r[5] == "-" {
			continue
		}
		pct, _ := parse(t, r[5])
		if pct > 0 {
			envMean = goodput[moderate+"|"+r[1]] * 100 / pct
			break
		}
	}
	if envMean <= 0 {
		t.Fatalf("could not recover the oracle envelope from the table:\n%s", tb)
	}
	if sp := goodput[moderate+"|spinal"]; sp < 0.6*envMean {
		t.Errorf("spinal goodput %.3f below 60%% of the LDPC oracle envelope %.3f:\n%s",
			sp, envMean, tb)
	}
	if shim := goodput[moderate+"|ldpc"]; shim > envMean*1.05 {
		t.Errorf("LDPC shim goodput %.3f beats its own oracle envelope %.3f:\n%s",
			shim, envMean, tb)
	}
	if !strings.Contains(tb.Title, "oracle envelope") {
		t.Errorf("table title lost the envelope reference: %q", tb.Title)
	}
}
