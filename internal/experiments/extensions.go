package experiments

import (
	"bytes"
	"fmt"
	"math/rand"

	"spinal/internal/channel"
	"spinal/internal/core"
	"spinal/internal/hw"
	"spinal/internal/sim"
)

// HWModel reproduces the Appendix B hardware story quantitatively: the
// published FPGA (≈10 Mbit/s) and 65 nm (≈50 Mbit/s) operating points,
// plus worker/selection scaling showing where pruning becomes the
// bottleneck (the motivation for depth-d decoding, Fig 8-7).
func HWModel(Config) []*Table {
	t := &Table{
		Name:   "hw-model",
		Title:  "Appendix B hardware decoder model (paper: 10 Mb/s FPGA, 50 Mb/s 65nm, 0.60 mm²)",
		Header: []string{"design point", "clock(MHz)", "workers", "Mb/s", "area(mm²)"},
	}
	add := func(name string, c hw.Config) {
		t.AddRow(name, f2(c.ClockMHz), fmt.Sprint(c.Workers),
			f2(c.ThroughputMbps()), f2(c.Area()))
	}
	add("FPGA prototype", hw.FPGA())
	add("TSMC 65nm", hw.ASIC())

	scale := &Table{
		Name:   "hw-model-scaling",
		Title:  "throughput vs worker count (selection unit saturates)",
		Header: []string{"workers", "expansion cyc/step", "selection cyc/step", "Mb/s"},
	}
	for _, w := range []int{2, 8, 32, 128, 512} {
		c := hw.FPGA()
		c.Workers = w
		scale.AddRow(fmt.Sprint(w), f2(c.ExpansionCycles()), f2(c.SelectionCycles()),
			f2(c.ThroughputMbps()))
	}
	return []*Table{t, scale}
}

// AttemptAblation quantifies the decode-attempt granularity choice the
// engine makes (DESIGN.md §5): per-symbol attempts recover the rate that
// subpass-granularity attempts forfeit at high SNR, and buy little at
// low SNR.
func AttemptAblation(cfg Config) []*Table {
	p := spinalParams(cfg)
	trials := 6
	if cfg.Quick {
		trials = 4
	}
	modes := []struct {
		name string
		ae   int
	}{
		{"per symbol", -1},
		{"per subpass", 1},
		{"per pass", 8},
	}
	t := &Table{
		Name:   "ablation-attempts",
		Title:  "rate (bits/symbol) vs decode-attempt granularity, n=256",
		Header: []string{"SNR(dB)"},
	}
	for _, m := range modes {
		t.Header = append(t.Header, m.name)
	}
	for _, snr := range []float64{5, 15, 25} {
		row := []string{f2(snr)}
		for _, m := range modes {
			r := sim.MeasureSpinal(sim.SpinalConfig{
				Params: p, NBits: 256, SNRdB: snr, Trials: trials,
				Seed: cfg.Seed*1_000_003 + 83, AttemptEvery: m.ae,
			})
			row = append(row, f2(r.Rate))
		}
		t.AddRow(row...)
	}
	return []*Table{t}
}

// GEChannel runs the rateless spinal code over a bursty Gilbert–Elliott
// channel — the time-varying conditions of Chapter 1 — against the best
// oracle-chosen fixed rate. The rateless code rides out bad bursts by
// simply taking longer on affected messages.
func GEChannel(cfg Config) []*Table {
	p := spinalParams(cfg)
	nBits := 256
	messages := 24
	if cfg.Quick {
		messages = 12
	}
	t := &Table{
		Name:   "ge-channel",
		Title:  "bursty Gilbert-Elliott channel (good 20 dB / bad 0 dB): rateless vs best fixed rate",
		Header: []string{"P(bad)", "rateless b/sym", "best fixed b/sym", "rateless failures"},
	}
	for _, pBad := range []float64{0.1, 0.3, 0.5} {
		// Per-symbol transition probabilities for the target stationary
		// bad fraction with ≈200-symbol average bursts.
		pBG := 1.0 / 200
		pGB := pBG * pBad / (1 - pBad)

		// Rateless.
		var bits, syms, fails int
		for m := 0; m < messages; m++ {
			rng := rand.New(rand.NewSource(cfg.Seed*31 + int64(m)))
			msg := make([]byte, nBits/8)
			rng.Read(msg)
			enc := core.NewEncoder(msg, nBits, p)
			dec := core.NewDecoder(nBits, p)
			sched := enc.NewSchedule()
			ch := channel.NewGilbertElliott(20, 0, pGB, pBG, cfg.Seed*37+int64(m))
			decoded := false
			for sub := 0; sub < 24*sched.Subpasses() && !decoded; sub++ {
				ids := sched.NextSubpass()
				dec.Add(ids, ch.Transmit(enc.Symbols(ids)))
				syms += len(ids)
				if got, _ := dec.Decode(); bytes.Equal(got, msg) {
					bits += nBits
					decoded = true
				}
			}
			if !decoded {
				fails++
			}
		}
		rateless := float64(bits) / float64(syms)

		// Fixed-rate oracle: sweep symbol budgets, keep the best
		// throughput over the same channel statistics.
		bestFixed := 0.0
		for _, budgetSub := range []int{8, 12, 16, 24, 32, 48} {
			var fBits, fSyms int
			for m := 0; m < messages; m++ {
				rng := rand.New(rand.NewSource(cfg.Seed*41 + int64(m)))
				msg := make([]byte, nBits/8)
				rng.Read(msg)
				enc := core.NewEncoder(msg, nBits, p)
				dec := core.NewDecoder(nBits, p)
				sched := enc.NewSchedule()
				ch := channel.NewGilbertElliott(20, 0, pGB, pBG, cfg.Seed*43+int64(m))
				for sub := 0; sub < budgetSub; sub++ {
					ids := sched.NextSubpass()
					dec.Add(ids, ch.Transmit(enc.Symbols(ids)))
					fSyms += len(ids)
				}
				if got, _ := dec.Decode(); bytes.Equal(got, msg) {
					fBits += nBits
				}
			}
			if r := float64(fBits) / float64(fSyms); r > bestFixed {
				bestFixed = r
			}
		}
		t.AddRow(f2(pBad), f3(rateless), f3(bestFixed), fmt.Sprint(fails))
	}
	return []*Table{t}
}
