package experiments

import (
	"fmt"

	"spinal/internal/ofdm"
)

// Table8_1 reproduces Table 8.1: empirical PAPR of 802.11a/g OFDM with
// constellations of very different densities. The paper's point — OFDM
// obscures all but negligible differences, so dense spinal constellations
// are free — shows as near-identical rows.
func Table8_1(cfg Config) []*Table {
	trials := 200000
	if cfg.Quick {
		trials = 30000
	}
	rows := []struct {
		name string
		src  ofdm.ConstellationSource
	}{
		{"QAM-4", ofdm.QAMSource(4)},
		{"QAM-64", ofdm.QAMSource(64)},
		{"QAM-2^20", ofdm.QAMSource(1 << 20)},
		{"Trunc. Gaussian β=2", ofdm.TruncGaussianSource(2)},
	}
	t := &Table{
		Name:   "table8-1",
		Title:  fmt.Sprintf("802.11a/g OFDM PAPR (%d symbols per row; paper: 5M)", trials),
		Header: []string{"constellation", "mean PAPR (dB)", "99.99% below (dB)"},
	}
	results := make([]ofdm.PAPRStats, len(rows))
	done := make(chan int, len(rows))
	for i := range rows {
		go func(i int) {
			results[i] = ofdm.MeasurePAPR(rows[i].src, trials, 4, cfg.Seed+int64(i))
			done <- i
		}(i)
	}
	for range rows {
		<-done
	}
	for i, r := range rows {
		t.AddRow(r.name, f2(results[i].MeanDB), f2(results[i].P9999DB))
	}
	return []*Table{t}
}
