package experiments

import (
	"testing"

	"spinal/internal/core"
)

// TestChaosDegradationSmooth asserts the shape of the adversarial-link
// degradation sweep (the chaos-degradation experiment, quick scale): as
// fault intensity rises from 0x through 4x the pinned chaos mix, goodput
// falls monotonically-smoothly — each step may not rise more than noise
// and may not fall off a cliff — and delivery never collapses to a 100%
// outage. A hardened rateless link loses throughput to faults; it does
// not lose the link.
func TestChaosDegradationSmooth(t *testing.T) {
	p := core.Params{K: 4, B: 16, D: 1, C: 6, Tail: 2, Ways: 8}
	rows := chaosSweep(p, 8, 1)
	if len(rows) < 3 {
		t.Fatalf("sweep too short: %d points", len(rows))
	}
	for i, r := range rows {
		if r.Goodput <= 0 {
			t.Fatalf("scale %s: goodput %.3f, want positive at every intensity", r.label, r.Goodput)
		}
		if r.Delivered == 0 || r.OutageRate >= 1 {
			t.Fatalf("scale %s: delivered %d/%d (outage %.0f%%) — the cliff the rateless design must not have",
				r.label, r.Delivered, r.Flows, 100*r.OutageRate)
		}
		if i == 0 {
			if r.FramesFaulted != 0 || r.AcksFaulted != 0 {
				t.Fatalf("scale 0 injected faults: %d frame, %d ack", r.FramesFaulted, r.AcksFaulted)
			}
			continue
		}
		prev := rows[i-1]
		// Monotone within noise: a higher intensity may not *gain* more
		// than 5% goodput over the previous point...
		if r.Goodput > prev.Goodput*1.05 {
			t.Fatalf("goodput rose with fault intensity: %.3f at %s vs %.3f at %s",
				r.Goodput, r.label, prev.Goodput, prev.label)
		}
		// ...and smooth: one step of the sweep may not destroy more than
		// 75% of the remaining goodput (the observed worst step loses
		// ~50%; a cliff would lose essentially all of it).
		if r.Goodput < prev.Goodput*0.25 {
			t.Fatalf("goodput fell off a cliff: %.3f at %s vs %.3f at %s",
				r.Goodput, r.label, prev.Goodput, prev.label)
		}
	}
	last := rows[len(rows)-1]
	if last.FramesFaulted == 0 || last.AcksFaulted == 0 {
		t.Fatalf("max intensity injected no faults: %d frame, %d ack — the sweep is not sweeping",
			last.FramesFaulted, last.AcksFaulted)
	}
	if last.Goodput >= rows[0].Goodput {
		t.Fatalf("max intensity did not cost goodput: %.3f at %s vs %.3f fault-free",
			last.Goodput, last.label, rows[0].Goodput)
	}
}
