package experiments

import (
	"fmt"

	"spinal/internal/core"
	"spinal/internal/link"
	"spinal/internal/sim"
)

// ScenarioGoodput compares the link engine's rate policies on the bursty
// Gilbert–Elliott scenario (sim.MeasureScenario "burst"): multi-block
// datagrams under a 16-round delivery deadline over a channel that
// alternates 18 dB good periods with ≈250-symbol 2 dB bursts. FixedRate
// trickles one subpass per block per round and times out inside bad
// bursts; CapacityRate bursts from a stale good-state estimate;
// TrackingRate closes the loop on decode feedback. Goodput is delivered
// payload bits per channel symbol spent, outage symbols included.
func ScenarioGoodput(cfg Config) []*Table {
	flows := 48
	// The comparison is between pacing policies on one code, so a narrow
	// beam suffices (absolute rate is the business of fig8-1); it keeps
	// the quick-scale suite fast.
	p := core.Params{K: 4, B: 16, D: 1, C: 6, Tail: 2, Ways: 8}
	if cfg.Quick {
		flows = 16
	} else {
		p.B = 64
	}
	t := &Table{
		Name:   "scenario-goodput",
		Title:  "bursty-channel goodput by rate policy (Gilbert-Elliott 18/2 dB, 16-round deadline)",
		Header: []string{"policy", "delivered", "outage", "goodput(b/sym)", "symbols", "rounds"},
	}
	for _, pol := range []string{"fixed", "fixed:8", "capacity", "tracking"} {
		res, err := sim.MeasureScenario(sim.ScenarioConfig{
			Params:       p,
			Scenario:     "burst",
			Policy:       pol,
			Flows:        flows,
			Concurrency:  6,
			MinBytes:     96,
			MaxBytes:     192,
			MaxRounds:    16,
			MaxBlockBits: 192,
			Shards:       2,
			Seed:         cfg.Seed*1_000_003 + 42,
		})
		if err != nil {
			panic(err) // static scenario names; cannot fail
		}
		t.AddRow(pol, fmt.Sprintf("%d/%d", res.Delivered, res.Flows),
			fmt.Sprintf("%.0f%%", 100*res.OutageRate), f3(res.Goodput),
			fmt.Sprint(res.Symbols), fmt.Sprint(res.Rounds))
	}
	return []*Table{t}
}

// FeedbackGoodput compares rate policies under realistic ARQ feedback
// (sim.MeasureScenario "feedback-delay"/"feedback-loss"): mixed-SNR AWGN
// flows where only the reverse path varies. The sweep crosses tracking
// and fixed pacing with 0-, 2- and 8-round ack delays, then adds the
// named lossy-ack scenario and the discard-and-retry (type-I ARQ)
// receiver at the 8-round point — the chase-combining default must beat
// it, which TestFeedbackChaseBeatsDiscard asserts at engine level.
func FeedbackGoodput(cfg Config) []*Table {
	flows := 24
	p := core.Params{K: 4, B: 16, D: 1, C: 6, Tail: 2, Ways: 8}
	if cfg.Quick {
		flows = 8
	} else {
		p.B = 64
	}
	base := func(scenario, policy string) sim.ScenarioConfig {
		return sim.ScenarioConfig{
			Params:       p,
			Scenario:     scenario,
			Policy:       policy,
			Flows:        flows,
			Concurrency:  4,
			MinBytes:     40,
			MaxBytes:     90,
			MaxRounds:    96,
			MaxBlockBits: 192,
			Shards:       2,
			Seed:         cfg.Seed*1_000_003 + 20260730,
		}
	}
	t := &Table{
		Name:   "feedback-goodput",
		Title:  "ARQ feedback: goodput by rate policy and ack impairment (mixed 7/10/14 dB AWGN)",
		Header: []string{"feedback", "policy", "delivered", "outage", "goodput(b/sym)", "rounds", "retx", "acks lost", "ack sym"},
	}
	type row struct {
		label string
		cfg   sim.ScenarioConfig
	}
	var rows []row
	for _, delay := range []int{0, 2, 8} {
		for _, pol := range []string{"fixed", "tracking"} {
			c := base("feedback-delay", pol)
			c.Feedback = &link.FeedbackConfig{DelayRounds: delay}
			rows = append(rows, row{fmt.Sprintf("delay %d", delay), c})
		}
	}
	rows = append(rows, row{"loss 30% (delay 2)", base("feedback-loss", "tracking")})
	discard := base("feedback-delay", "tracking")
	discard.Feedback = &link.FeedbackConfig{DelayRounds: 8, Discard: true}
	rows = append(rows, row{"delay 8, discard", discard})
	// Half-duplex accounting: the same delay-2 exchange, but ack airtime
	// is charged against goodput (link.WithHalfDuplex) — the ROADMAP's
	// shared-medium follow-on, and the knob the IBFD WLAN literature says
	// a link API must surface rather than bury.
	halfDuplex := base("feedback-delay", "tracking")
	halfDuplex.Feedback = &link.FeedbackConfig{DelayRounds: 2}
	halfDuplex.HalfDuplex = true
	rows = append(rows, row{"delay 2, half-duplex", halfDuplex})
	for _, r := range rows {
		res, err := sim.MeasureScenario(r.cfg)
		if err != nil {
			panic(err) // static scenario names; cannot fail
		}
		t.AddRow(r.label, res.Policy, fmt.Sprintf("%d/%d", res.Delivered, res.Flows),
			fmt.Sprintf("%.0f%%", 100*res.OutageRate), f3(res.Goodput),
			fmt.Sprint(res.Rounds), fmt.Sprint(res.Retransmissions), fmt.Sprint(res.AcksLost),
			fmt.Sprint(res.AckSymbols))
	}
	return []*Table{t}
}
