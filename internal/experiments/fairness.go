package experiments

import (
	"fmt"

	"spinal/internal/core"
	"spinal/internal/link"
	"spinal/internal/sim"
)

// fairnessParams is the narrow-beam code the scheduling experiments run:
// the comparison is between admission schedulers on one code, so decode
// rate is held constant and cheap.
func fairnessParams(cfg Config) core.Params {
	p := core.Params{K: 4, B: 16, D: 1, C: 6, Tail: 2, Ways: 8}
	if !cfg.Quick {
		p.B = 64
	}
	return p
}

// fairnessPoint runs one mice-elephants measurement — flows concurrent
// bimodal flows over a steady 12 dB medium under the named scheduler,
// DWFQ paced at the processor-sharing quantum FrameSymbols/flows. The
// experiment table and TestFairnessOrdering share this exact config.
func fairnessPoint(cfg Config, flows int, sched string) sim.ScenarioResult {
	const frameSymbols = 2048
	res, err := sim.MeasureScenario(sim.ScenarioConfig{
		Params:           fairnessParams(cfg),
		Scenario:         "mice-elephants",
		Policy:           "capacity:12",
		Flows:            flows,
		Concurrency:      flows,
		MaxRounds:        1 << 12,
		MaxBlockBits:     192,
		FrameSymbols:     frameSymbols,
		Shards:           2,
		Seed:             cfg.Seed*1_000_003 + 20260807,
		Scheduler:        sched,
		SchedulerQuantum: frameSymbols / flows,
	})
	if err != nil {
		panic(err) // static scenario name; cannot fail
	}
	return res
}

// FlowFairness compares round-robin admission with deficit-weighted fair
// queuing on the mice-elephants mix: a few 1 KiB elephants sharing the
// frame with dozens of sub-128 B mice, all concurrent. Under RR every
// flow is offered symbols each visit regardless of size, so elephants
// monopolize early rounds and mice queue behind them; DWFQ's per-round
// credit equalizes symbol spend, which shows up as Jain's index over
// per-flow throughput near 1 and a shorter mice completion tail. The
// ordering (DWFQ Jain ≥ 0.95 and ahead of RR, mice p99 no worse) is
// asserted by TestFairnessOrdering.
func FlowFairness(cfg Config) []*Table {
	flowCounts := []int{16, 32}
	if !cfg.Quick {
		flowCounts = []int{16, 32, 64}
	}
	t := &Table{
		Name:   "flow-fairness",
		Title:  "mice-elephants fairness: RR vs DWFQ (12 dB AWGN, bimodal sizes, all flows concurrent)",
		Header: []string{"flows", "scheduler", "delivered", "goodput(b/sym)", "jain", "mice p50", "p95", "p99(rounds)"},
	}
	for _, flows := range flowCounts {
		for _, sched := range []string{"rr", "dwfq"} {
			res := fairnessPoint(cfg, flows, sched)
			t.AddRow(fmt.Sprint(flows), sched,
				fmt.Sprintf("%d/%d", res.Delivered, res.Flows),
				f3(res.Goodput), f3(res.JainIndex),
				fmt.Sprint(res.MiceP50Rounds), fmt.Sprint(res.MiceP95Rounds),
				fmt.Sprint(res.MiceP99Rounds))
		}
	}
	return []*Table{t}
}

// TransportFetch measures the congestion-aware fetch (spinal/transport)
// through the fetch-cubic scenario: a payload pipelined as 1 KiB
// segments under a CUBIC window at 10 dB, with the reverse channel swept
// from instant acks to the scenario's 4-round-delayed 20%-lossy default.
// Impairing only the feedback path costs goodput through RTO-expired
// retries and window reductions — the transport's loss events and SRTT
// estimate quantify what the reverse channel did to the pipeline.
func TransportFetch(cfg Config) []*Table {
	size := 16 << 10
	if !cfg.Quick {
		size = 64 << 10
	}
	t := &Table{
		Name:   "transport-fetch",
		Title:  "congestion-aware fetch: CUBIC pipeline vs reverse-channel impairment (10 dB AWGN, 1 KiB segments)",
		Header: []string{"feedback", "segments", "retries", "losses", "srtt(rounds)", "peak cwnd", "rounds", "goodput(b/sym)"},
	}
	type row struct {
		label    string
		feedback *link.FeedbackConfig
	}
	for _, r := range []row{
		{"instant", &link.FeedbackConfig{}},
		{"delay 4", &link.FeedbackConfig{DelayRounds: 4}},
		{"delay 4, loss 20%", nil}, // the scenario default
	} {
		res, err := sim.MeasureScenario(sim.ScenarioConfig{
			Params:   fairnessParams(cfg),
			Scenario: "fetch-cubic",
			MaxBytes: size,
			Shards:   2,
			Seed:     cfg.Seed*1_000_003 + 20260807,
			Feedback: r.feedback,
		})
		if err != nil {
			panic(err) // static scenario name; cannot fail
		}
		t.AddRow(r.label, fmt.Sprint(res.Flows), fmt.Sprint(res.SegmentRetries),
			fmt.Sprint(res.LossEvents), f2(res.SRTTRounds), f2(res.CwndMax),
			fmt.Sprint(res.Rounds), f3(res.Goodput))
	}
	return []*Table{t}
}
