package experiments

import (
	"fmt"

	"spinal"
	"spinal/internal/sim"
)

// DaemonGoodput measures spinald's scaling law: aggregate goodput
// (delivered payload bits per symbol of busiest-shard airtime) as
// concurrent flows grow from 1 to 1024 over one UDP socket. This is a
// systems experiment, not a paper figure: it validates that the per-core
// sharded daemon actually converts added flows into parallel airtime —
// goodput grows with the flow count up to the shard count (one flow per
// engine), then saturates as shards begin multiplexing.
//
// The sweep runs under common random numbers (every flow sees the same
// channel realization), so the curve isolates the multiplexing gain and
// the growth up to the shard count is exact, not statistical.
func DaemonGoodput(cfg Config) []*Table {
	p := spinal.DefaultParams()
	flows := []int{1, 4, 16, 64, 256, 1024}
	shards := 4
	if cfg.Quick {
		p.B = 8
		flows = []int{1, 2, 4, 8, 32, 128}
	} else {
		p.B = 16
	}
	points, err := sim.MeasureDaemonLoad(sim.DaemonLoadConfig{
		Shards:     shards,
		Params:     p,
		SNRdB:      10,
		Size:       64,
		FlowCounts: flows,
		Seed:       cfg.Seed,
	})
	t := &Table{
		Name:  "daemon-goodput",
		Title: fmt.Sprintf("spinald aggregate goodput vs concurrent flows (%d shards, 10 dB, 64 B)", shards),
		Header: []string{"flows", "delivered", "outaged", "failed",
			"busiest shard sym", "total sym", "goodput b/sym"},
	}
	if err != nil {
		t.AddRow("error", err.Error())
		return []*Table{t}
	}
	for _, pt := range points {
		t.AddRow(
			fmt.Sprintf("%d", pt.Flows),
			fmt.Sprintf("%d", pt.Delivered),
			fmt.Sprintf("%d", pt.Outaged),
			fmt.Sprintf("%d", pt.Failed),
			fmt.Sprintf("%d", pt.MaxShardSymbols),
			fmt.Sprintf("%d", pt.TotalSymbols),
			f3(pt.Goodput),
		)
	}
	return []*Table{t}
}
