package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tb := &Table{
		Name:   "t",
		Title:  "demo",
		Header: []string{"a", "longer"},
	}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	s := tb.String()
	if !strings.Contains(s, "# t: demo") {
		t.Fatal("missing title line")
	}
	// Title + header + separator + two data rows.
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5", len(lines))
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Fatal("missing separator")
	}
}

func TestByID(t *testing.T) {
	if ByID("fig8-1") == nil || ByID("table8-1") == nil {
		t.Fatal("known experiments not found")
	}
	if ByID("nope") != nil {
		t.Fatal("unknown id resolved")
	}
	seen := map[string]bool{}
	for _, e := range All {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	if f2(1.234) != "1.23" || f3(1.2345) != "1.234" {
		t.Fatal("fixed-point formatting wrong")
	}
	nan := 0.0
	nan /= nan
	if f2(nan) != "-" || f3(nan) != "-" {
		t.Fatal("NaN should render as -")
	}
}

// parse reads a numeric cell, tolerating the "-" placeholder.
func parse(t *testing.T, cell string) (float64, bool) {
	t.Helper()
	if cell == "-" {
		return 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(cell, "+"), "%"), 64)
	if err != nil {
		t.Fatalf("unparseable cell %q", cell)
	}
	return v, true
}

func TestFigB2Semantics(t *testing.T) {
	tables := FigB_2(DefaultConfig())
	if len(tables) != 1 {
		t.Fatal("want one table")
	}
	rows := tables[0].Rows
	if len(rows) != 8 {
		t.Fatalf("want 8 SNR rows, got %d", len(rows))
	}
	prev := -1.0
	for _, r := range rows {
		rate, ok := parse(t, r[1])
		if !ok || rate <= 0 {
			t.Fatalf("missing rate in row %v", r)
		}
		if rate < prev*0.7 {
			t.Fatalf("rate collapsed between rows: %v", rows)
		}
		prev = rate
	}
	// Endpoint check against the paper's Fig B-2 shape: ≈0.5-1 b/s at
	// 0 dB rising to ≈3 b/s at 14 dB.
	first, _ := parse(t, rows[0][1])
	last, _ := parse(t, rows[len(rows)-1][1])
	if first > 1.5 || last < 2 {
		t.Fatalf("FigB-2 endpoints off: %.2f at 0 dB, %.2f at 14 dB", first, last)
	}
}

func TestHashAblationEqualPerformance(t *testing.T) {
	tables := HashAblation(DefaultConfig())
	rows := tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("want 3 hash rows")
	}
	lo, hi := 1e9, 0.0
	for _, r := range rows {
		rate, _ := parse(t, r[1])
		if rate < lo {
			lo = rate
		}
		if rate > hi {
			hi = rate
		}
	}
	if hi > lo*1.5 {
		t.Fatalf("hash choice changed rate by more than 50%%: %.3f vs %.3f", lo, hi)
	}
}

func TestBSCSemantics(t *testing.T) {
	tables := BSCExtra(DefaultConfig())
	for _, r := range tables[0].Rows {
		frac, ok := parse(t, r[3])
		if !ok {
			t.Fatalf("missing fraction in %v", r)
		}
		if frac <= 0.3 || frac > 1.02 {
			t.Fatalf("BSC fraction of capacity %v implausible", r)
		}
	}
}

func TestTable81DensityIndependence(t *testing.T) {
	tables := Table8_1(DefaultConfig())
	rows := tables[0].Rows
	if len(rows) != 4 {
		t.Fatal("want 4 constellations")
	}
	lo, hi := 1e9, 0.0
	for _, r := range rows {
		mean, _ := parse(t, r[1])
		tail, _ := parse(t, r[2])
		if tail <= mean {
			t.Fatalf("99.99%% %.2f not above mean %.2f", tail, mean)
		}
		if mean < lo {
			lo = mean
		}
		if mean > hi {
			hi = mean
		}
	}
	if hi-lo > 0.5 {
		t.Fatalf("PAPR means spread %.2f dB across constellations; paper reports ≈0.05", hi-lo)
	}
}

func TestFig87DepthOrdering(t *testing.T) {
	tables := Fig8_7(DefaultConfig())
	rows := tables[0].Rows
	var sumD1, sumD4 float64
	for _, r := range rows {
		d1, ok1 := parse(t, r[1])
		d4, ok4 := parse(t, r[4])
		if !ok1 || !ok4 {
			t.Fatalf("missing gaps in %v", r)
		}
		sumD1 += d1
		sumD4 += d4
	}
	// Gap is negative; d=1 should be closer to zero on average (Fig 8-7).
	if sumD1 <= sumD4 {
		t.Fatalf("depth ordering inverted: d=1 total gap %.2f vs d=4 %.2f", sumD1, sumD4)
	}
}

func TestFig89TailSweep(t *testing.T) {
	tables := Fig8_9(DefaultConfig())
	for _, r := range tables[0].Rows {
		for i := 1; i < len(r); i++ {
			if _, ok := parse(t, r[i]); !ok {
				t.Fatalf("missing gap at %v", r)
			}
		}
	}
}

func TestFig82RatelessCompetitive(t *testing.T) {
	tables := Fig8_2(DefaultConfig())
	for _, r := range tables[0].Rows {
		rateless, _ := parse(t, r[2])
		fixed, _ := parse(t, r[3])
		if fixed > rateless*1.2 {
			t.Fatalf("fixed rate %.2f far above rateless %.2f at SNR %s", fixed, rateless, r[0])
		}
	}
}

func TestFig86BudgetHelps(t *testing.T) {
	tables := Fig8_6(DefaultConfig())
	rows := tables[0].Rows
	// For k=4 (column 4), the largest budget should beat the smallest.
	small, _ := parse(t, rows[0][4])
	large, _ := parse(t, rows[len(rows)-1][4])
	if large <= small {
		t.Fatalf("k=4 fraction did not improve with budget: %.3f → %.3f", small, large)
	}
}

// Heavy experiments run only outside -short; they are exercised in full
// by the bench harness anyway.

func TestFig81Flagship(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy; run without -short")
	}
	tables := Fig8_1(DefaultConfig())
	rate := tables[0]
	for _, r := range rate.Rows {
		shannon, _ := parse(t, r[1])
		sp, ok := parse(t, r[2])
		if !ok {
			t.Fatalf("missing spinal rate at %v", r)
		}
		if sp > shannon*1.05 {
			t.Fatalf("spinal rate %.2f above Shannon %.2f", sp, shannon)
		}
		// The flagship ordering: spinal ≥ every baseline at every SNR
		// (columns: raptor, strider, strider+, LDPC envelope).
		for _, col := range []int{4, 5, 6, 7} {
			base, ok := parse(t, r[col])
			if ok && base > sp*1.05 {
				t.Errorf("baseline col %d (%.2f) beats spinal (%.2f) at SNR %s", col, base, sp, r[0])
			}
		}
	}
}

func TestFig84FadingOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy; run without -short")
	}
	tables := Fig8_4(DefaultConfig())
	for _, r := range tables[0].Rows {
		cray, _ := parse(t, r[1])
		for _, col := range []int{2, 4, 6} { // spinal columns
			sp, ok := parse(t, r[col])
			if ok && sp > cray*1.1 {
				t.Fatalf("spinal fading rate %.2f above fading capacity %.2f", sp, cray)
			}
			st, okS := parse(t, r[col+1]) // paired strider+ column
			if ok && okS && st > sp*1.1 {
				t.Errorf("strider+ (%.2f) beats spinal (%.2f) on fading at SNR %s", st, sp, r[0])
			}
		}
	}
}

func TestFig812LongerBlocksWiderGap(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy; run without -short")
	}
	tables := Fig8_12(DefaultConfig())
	rows := tables[0].Rows
	first, _ := parse(t, rows[0][4])          // avg gap at n=64
	last, _ := parse(t, rows[len(rows)-1][4]) // avg gap at largest n
	if last > first+0.5 {                     // gaps are negative
		t.Fatalf("longer blocks should not shrink the gap: n=64 avg %.2f vs largest %.2f", first, last)
	}
}

func TestFig811SymbolsDropWithSNR(t *testing.T) {
	tables := Fig8_11(DefaultConfig())
	rows := tables[0].Rows
	firstP50, _ := parse(t, rows[0][3])
	lastP50, _ := parse(t, rows[len(rows)-1][3])
	if lastP50 >= firstP50 {
		t.Fatalf("median symbols should fall with SNR: %.0f → %.0f", firstP50, lastP50)
	}
}

func TestHWModelCalibration(t *testing.T) {
	tables := HWModel(DefaultConfig())
	if len(tables) != 2 {
		t.Fatal("want two tables")
	}
	fpga, _ := parse(t, tables[0].Rows[0][3])
	asic, _ := parse(t, tables[0].Rows[1][3])
	if fpga < 8 || fpga > 13 {
		t.Fatalf("FPGA %.1f Mb/s, want ≈10", fpga)
	}
	if asic < 40 || asic > 65 {
		t.Fatalf("ASIC %.1f Mb/s, want ≈50", asic)
	}
	// Scaling table saturates: last two rows equal throughput.
	rows := tables[1].Rows
	a, _ := parse(t, rows[len(rows)-2][3])
	b, _ := parse(t, rows[len(rows)-1][3])
	if a != b {
		t.Fatalf("worker scaling did not saturate: %.2f vs %.2f", a, b)
	}
}

func TestAttemptAblationOrdering(t *testing.T) {
	tables := AttemptAblation(DefaultConfig())
	for _, r := range tables[0].Rows {
		perSym, _ := parse(t, r[1])
		perPass, _ := parse(t, r[3])
		if perPass > perSym*1.05 {
			t.Fatalf("per-pass attempts (%.2f) beat per-symbol (%.2f) at SNR %s",
				perPass, perSym, r[0])
		}
	}
	// At 25 dB the per-symbol gain must be material (>20%).
	last := tables[0].Rows[len(tables[0].Rows)-1]
	perSym, _ := parse(t, last[1])
	perPass, _ := parse(t, last[3])
	if perSym < perPass*1.2 {
		t.Fatalf("per-symbol attempts gain too small at high SNR: %.2f vs %.2f", perSym, perPass)
	}
}

func TestScenarioGoodputOrdering(t *testing.T) {
	tables := ScenarioGoodput(DefaultConfig())
	rows := tables[0].Rows
	byPolicy := map[string][]string{}
	for _, r := range rows {
		byPolicy[r[0]] = r
	}
	fixed, _ := parse(t, byPolicy["fixed"][3])
	tracking, _ := parse(t, byPolicy["tracking"][3])
	if tracking <= fixed {
		t.Fatalf("tracking goodput %.3f not strictly above fixed %.3f:\n%s",
			tracking, fixed, tables[0])
	}
	if byPolicy["fixed"][2] == "0%" {
		t.Fatalf("fixed pacing had no outages — deadline lost its teeth:\n%s", tables[0])
	}
	if byPolicy["tracking"][2] != "0%" {
		t.Fatalf("tracking pacing suffered outages:\n%s", tables[0])
	}
}

func TestFeedbackGoodputOrdering(t *testing.T) {
	tables := FeedbackGoodput(DefaultConfig())
	byRow := map[string][]string{}
	for _, r := range tables[0].Rows {
		byRow[r[0]+"/"+r[1]] = r
	}
	fixed8, _ := parse(t, byRow["delay 8/fixed"][4])
	tracking8, _ := parse(t, byRow["delay 8/tracking"][4])
	if tracking8 <= fixed8 {
		t.Fatalf("at 8-round ack delay, tracking goodput %.3f not strictly above fixed %.3f:\n%s",
			tracking8, fixed8, tables[0])
	}
	discard8, _ := parse(t, byRow["delay 8, discard/tracking"][4])
	if tracking8 <= discard8 {
		t.Fatalf("chase combining goodput %.3f not strictly above discard-and-retry %.3f:\n%s",
			tracking8, discard8, tables[0])
	}
	if lossy := byRow["loss 30% (delay 2)/tracking"]; lossy[6] == "0" || lossy[7] == "0" {
		t.Fatalf("lossy-ack row shows no ARQ activity (retx=%s, acks lost=%s):\n%s",
			lossy[6], lossy[7], tables[0])
	}
	// Half-duplex accounting charges reverse airtime: the row must show
	// ack symbols and a goodput strictly below its free-ack twin at the
	// same 2-round delay.
	hd := byRow["delay 2, half-duplex/tracking"]
	if hd[8] == "0" {
		t.Fatalf("half-duplex row charged no ack symbols:\n%s", tables[0])
	}
	hdGoodput, _ := parse(t, hd[4])
	free2, _ := parse(t, byRow["delay 2/tracking"][4])
	if hdGoodput >= free2 {
		t.Fatalf("half-duplex goodput %.3f not below free-ack %.3f at delay 2:\n%s",
			hdGoodput, free2, tables[0])
	}
}

func TestGEChannelReliability(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy; run without -short")
	}
	tables := GEChannel(DefaultConfig())
	for _, r := range tables[0].Rows {
		rateless, _ := parse(t, r[1])
		if rateless <= 0 {
			t.Fatalf("no rateless throughput at P(bad)=%s", r[0])
		}
		if r[3] != "0" {
			t.Errorf("rateless failures at P(bad)=%s: %s", r[0], r[3])
		}
	}
}
