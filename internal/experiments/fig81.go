package experiments

import (
	"fmt"

	"spinal/internal/capacity"
	"spinal/internal/strider"
)

// fig81Series holds the raw rate-vs-SNR data shared by Fig8_1 and
// IntroTable.
type fig81Series struct {
	snrs     []float64
	spinal   []float64 // n=256 (quick) / plus n=1024 column in the table
	spinal1k []float64
	raptor   []float64
	strider  []float64
	striderP []float64
	ldpcEnv  []float64
}

// runFig81 measures all codes across the SNR sweep. This is the
// repository's flagship experiment.
func runFig81(cfg Config) *fig81Series {
	s := &fig81Series{snrs: snrSweep(cfg, -5, 35)}

	spinalTrials := 6
	raptorK := 2048
	raptorTrials := 3
	striderCfg := strider.Config{Layers: 33, LayerBits: 1514, MaxPasses: 27, TurboIters: 8}
	striderTrials := 2
	ldpcBlocks := 10
	n1k := 1024
	n1kTrials := 3
	if cfg.Quick {
		spinalTrials = 3
		raptorK = 512
		striderCfg.LayerBits = 80
		striderCfg.TurboIters = 6
		ldpcBlocks = 5
		n1k = 0 // skip the n=1024 curve at quick scale
	}
	p := spinalParams(cfg)

	for _, snr := range s.snrs {
		s.spinal = append(s.spinal, spinalRate(cfg, p, 256, snr, spinalTrials, 11).Rate)
		if n1k > 0 {
			s.spinal1k = append(s.spinal1k, spinalRate(cfg, p, n1k, snr, n1kTrials, 13).Rate)
		} else {
			s.spinal1k = append(s.spinal1k, -1)
		}
		s.raptor = append(s.raptor, raptorRate(raptorK, 256, snr, raptorTrials, cfg.Seed*7+17))
		s.strider = append(s.strider, striderRate(striderOpts{cfg: striderCfg}, snr, striderTrials, cfg.Seed*7+23))
		s.striderP = append(s.striderP, striderRate(striderOpts{cfg: striderCfg, plus: true}, snr, striderTrials, cfg.Seed*7+29))
		s.ldpcEnv = append(s.ldpcEnv, ldpcEnvelope(snr, ldpcBlocks, cfg.Seed*7+31))
	}
	return s
}

var fig81Cache = map[Config]*fig81Series{}

func fig81Data(cfg Config) *fig81Series {
	if s, ok := fig81Cache[cfg]; ok {
		return s
	}
	s := runFig81(cfg)
	fig81Cache[cfg] = s
	return s
}

// Fig8_1 reproduces Figure 8-1: rate vs SNR and gap to capacity for
// spinal codes and all baselines.
func Fig8_1(cfg Config) []*Table {
	s := fig81Data(cfg)

	rate := &Table{
		Name:   "fig8-1",
		Title:  "rate (bits/symbol) vs SNR",
		Header: []string{"SNR(dB)", "Shannon", "spinal n=256", "spinal n=1024", "raptor", "strider", "strider+", "LDPC env"},
	}
	gap := &Table{
		Name:   "fig8-1-gap",
		Title:  "gap to capacity (dB) vs SNR",
		Header: []string{"SNR(dB)", "spinal n=256", "raptor", "strider+", "LDPC env"},
	}
	for i, snr := range s.snrs {
		n1k := "-"
		if s.spinal1k[i] >= 0 {
			n1k = f2(s.spinal1k[i])
		}
		rate.AddRow(f2(snr), f2(capAt(snr)), f2(s.spinal[i]), n1k,
			f2(s.raptor[i]), f2(s.strider[i]), f2(s.striderP[i]), f2(s.ldpcEnv[i]))
		gap.AddRow(f2(snr),
			f2(capacity.GapDB(s.spinal[i], snr)),
			f2(capacity.GapDB(s.raptor[i], snr)),
			f2(capacity.GapDB(s.striderP[i], snr)),
			f2(capacity.GapDB(s.ldpcEnv[i], snr)))
	}
	return []*Table{rate, gap}
}

// IntroTable reproduces the Chapter 1 summary: spinal's aggregate rate
// advantage over Raptor and Strider per SNR band, computed from the
// Fig 8-1 sweep.
func IntroTable(cfg Config) []*Table {
	s := fig81Data(cfg)
	bands := []struct {
		name   string
		lo, hi float64
	}{
		{"low (<10 dB)", -5, 10},
		{"medium (10-20 dB)", 10, 20},
		{"high (>20 dB)", 20, 36},
	}
	t := &Table{
		Name:   "intro-table",
		Title:  "spinal rate gain over baselines by SNR band (paper: raptor 12-21%, strider 25-40%)",
		Header: []string{"band", "vs raptor", "vs strider", "vs strider+", "vs LDPC env"},
	}
	for _, b := range bands {
		var sp, ra, st, stp, ld float64
		for i, snr := range s.snrs {
			if snr < b.lo || snr >= b.hi {
				continue
			}
			sp += s.spinal[i]
			ra += s.raptor[i]
			st += s.strider[i]
			stp += s.striderP[i]
			ld += s.ldpcEnv[i]
		}
		pct := func(base float64) string {
			if base <= 0 {
				return "-"
			}
			return fmt.Sprintf("%+.0f%%", 100*(sp/base-1))
		}
		t.AddRow(b.name, pct(ra), pct(st), pct(stp), pct(ld))
	}
	return []*Table{t}
}
