package experiments

import "testing"

// TestFairnessOrdering asserts the flow-fairness experiment's headline
// claims on the exact configuration the table reports (32 concurrent
// flows, quick scale): DWFQ reaches near-perfect fairness (Jain ≥ 0.95),
// strictly beats round-robin's index, and does not worsen the mice
// completion tail.
func TestFairnessOrdering(t *testing.T) {
	cfg := DefaultConfig()
	rr := fairnessPoint(cfg, 32, "rr")
	dwfq := fairnessPoint(cfg, 32, "dwfq")
	if rr.Delivered != rr.Flows || dwfq.Delivered != dwfq.Flows {
		t.Fatalf("fairness mix not fully delivered: rr %d/%d, dwfq %d/%d",
			rr.Delivered, rr.Flows, dwfq.Delivered, dwfq.Flows)
	}
	if dwfq.JainIndex < 0.95 {
		t.Fatalf("DWFQ Jain index %.4f below the 0.95 bar", dwfq.JainIndex)
	}
	if dwfq.JainIndex <= rr.JainIndex {
		t.Fatalf("DWFQ Jain %.4f does not beat RR's %.4f", dwfq.JainIndex, rr.JainIndex)
	}
	if dwfq.MiceP99Rounds > rr.MiceP99Rounds {
		t.Fatalf("DWFQ mice p99 %d rounds worse than RR's %d",
			dwfq.MiceP99Rounds, rr.MiceP99Rounds)
	}
	t.Logf("jain rr=%.4f dwfq=%.4f, mice p99 rr=%d dwfq=%d",
		rr.JainIndex, dwfq.JainIndex, rr.MiceP99Rounds, dwfq.MiceP99Rounds)
}

// TestTransportFetchTable smoke-runs the transport-fetch experiment: all
// three reverse-channel rows complete, and the impaired row records the
// loss events the CUBIC sawtooth is made of.
func TestTransportFetchTable(t *testing.T) {
	tables := TransportFetch(DefaultConfig())
	if len(tables) != 1 || len(tables[0].Rows) != 3 {
		t.Fatalf("unexpected table shape: %+v", tables)
	}
	lossy := tables[0].Rows[2]
	if lossy[3] == "0" {
		t.Fatalf("lossy-feedback fetch recorded no loss events: %v", lossy)
	}
}
