package experiments

import (
	"bytes"
	"math/cmplx"
	"math/rand"
	"sync"

	"spinal/internal/channel"
	"spinal/internal/ldpc"
	"spinal/internal/modem"
	"spinal/internal/raptor"
	"spinal/internal/sim"
	"spinal/internal/strider"
)

// ldpcCodes caches constructed codes (construction is deterministic).
var (
	ldpcOnce  sync.Once
	ldpcCache map[string]*ldpc.Code
)

func ldpcFor(rate string) *ldpc.Code {
	ldpcOnce.Do(func() {
		ldpcCache = make(map[string]*ldpc.Code)
		for i, r := range ldpc.Rates {
			ldpcCache[r] = ldpc.NewQC(r, 27, int64(1000+i))
		}
	})
	return ldpcCache[rate]
}

// ldpcEnvelope measures the best-envelope throughput of the LDPC family
// (every rate × modulation pair, §8's SoftRate-like genie selection) at
// one SNR: max over pairs of rate·bitsPerSymbol·P(block success).
func ldpcEnvelope(snrDB float64, blocksPerPoint int, seed int64) float64 {
	mods := []int{4, 16, 64, 256}
	type job struct {
		rate string
		pts  int
	}
	var jobs []job
	for _, r := range ldpc.Rates {
		for _, m := range mods {
			jobs = append(jobs, job{r, m})
		}
	}
	rates := sim.Parallel(len(jobs), func(j int) float64 {
		code := ldpcFor(jobs[j].rate)
		qam := modem.NewQAM(jobs[j].pts)
		rng := rand.New(rand.NewSource(seed + int64(j)*977))
		okCount := 0
		for b := 0; b < blocksPerPoint; b++ {
			info := make([]byte, code.K())
			for i := range info {
				info[i] = byte(rng.Intn(2))
			}
			cw := code.Encode(info)
			// Pad codeword bits to a whole number of symbols.
			bps := qam.BitsPerSymbol()
			padded := cw
			if len(cw)%bps != 0 {
				padded = append(append([]byte(nil), cw...), make([]byte, bps-len(cw)%bps)...)
			}
			ch := channel.NewAWGN(snrDB, seed+int64(j)*1009+int64(b))
			llr := qam.DemapSoft(ch.Transmit(qam.Modulate(padded)), ch.NoiseVar(), nil)
			got, conv := code.Decode(llr[:code.N()], 40)
			if !conv {
				continue
			}
			match := true
			for i := 0; i < code.K(); i++ {
				if got[i] != info[i] {
					match = false
					break
				}
			}
			if match {
				okCount++
			}
		}
		eff := code.RateValue() * float64(qam.BitsPerSymbol())
		return eff * float64(okCount) / float64(blocksPerPoint)
	})
	best := 0.0
	for _, r := range rates {
		if r > best {
			best = r
		}
	}
	return best
}

// raptorRate measures the Raptor/QAM rate at one SNR: symbols accumulate
// in batches with a decode attempt per batch until success or the symbol
// budget runs out. Returns Σbits/Σsymbols over trials.
func raptorRate(k int, qamPoints int, snrDB float64, trials int, seed int64) float64 {
	outs := sim.Parallel(trials, func(trial int) sim.Outcome {
		s := seed + int64(trial)*31
		rng := rand.New(rand.NewSource(s))
		code := raptor.New(k, s^0xabc)
		msg := make([]byte, k)
		for i := range msg {
			msg[i] = byte(rng.Intn(2))
		}
		qam := modem.NewQAM(qamPoints)
		ch := channel.NewAWGN(snrDB, s^0xdef)
		dec := raptor.NewDecoder(code)

		// Budget: generous multiple of the information-theoretic minimum;
		// decode attempts land roughly every 4% of the expected total so
		// attempt cost stays bounded at low SNR.
		bps := qam.BitsPerSymbol()
		minSyms := float64(k) / max2(0.05, 0.8*capAt(snrDB))
		batchSyms := int(minSyms / 25)
		if batchSyms < 4 {
			batchSyms = 4
		}
		maxSyms := int(4*minSyms) + 8*batchSyms
		symbols := 0
		t0 := 0
		for symbols < maxSyms {
			bits := code.OutputBits(msg, t0, batchSyms*bps)
			y := ch.Transmit(qam.Modulate(bits))
			dec.Add(t0, qam.DemapSoft(y, ch.NoiseVar(), nil))
			t0 += batchSyms * bps
			symbols += batchSyms
			if got, ok := dec.Decode(40); ok && bytes.Equal(got, msg) {
				return sim.Outcome{Symbols: symbols, Bits: k, OK: true}
			}
		}
		return sim.Outcome{Symbols: symbols}
	})
	return sim.Aggregate(snrDB, outs).Rate
}

// striderOpts configures a Strider measurement.
type striderOpts struct {
	cfg    strider.Config
	plus   bool // Strider+ (8-way puncturing)
	fading *sim.Fading
}

// striderRate measures Strider's rate at one SNR.
func striderRate(o striderOpts, snrDB float64, trials int, seed int64) float64 {
	if o.plus {
		o.cfg.Subpasses = 8
	} else {
		o.cfg.Subpasses = 1
	}
	outs := sim.Parallel(trials, func(trial int) sim.Outcome {
		s := seed + int64(trial)*67
		cfg := o.cfg
		cfg.Seed = s ^ 0x57e1de5
		code := strider.New(cfg)
		rng := rand.New(rand.NewSource(s))
		msg := make([]byte, code.MessageBits())
		for i := range msg {
			msg[i] = byte(rng.Intn(2))
		}
		tx := code.Encode(msg)
		dec := strider.NewDecoder(code)

		var awgn *channel.AWGN
		var ray *channel.Rayleigh
		if o.fading != nil {
			ray = channel.NewRayleigh(snrDB, o.fading.Tau, s^0xfade)
		} else {
			awgn = channel.NewAWGN(snrDB, s^0xfade)
		}
		noiseVar := 0.0
		if ray != nil {
			noiseVar = ray.NoiseVar()
		} else {
			noiseVar = awgn.NoiseVar()
		}

		symbols := 0
		for p := 0; p < code.MaxPasses(); p++ {
			for sp := 0; sp < code.Subpasses(); sp++ {
				var x []complex128
				var pos []int
				if code.Subpasses() == 1 {
					x = tx.Pass(p)
					pos = nil
				} else {
					x, pos = tx.Subpass(p, sp)
				}
				var y, h []complex128
				if ray != nil {
					y, h = ray.Transmit(x)
					switch {
					case o.fading.ProvideH:
					case o.fading.PhaseOnly:
						for i, hv := range h {
							m := cmplx.Abs(hv)
							if m < 1e-12 {
								h[i] = 1
							} else {
								h[i] = hv / complex(m, 0)
							}
						}
					default:
						h = nil
					}
				} else {
					y = awgn.Transmit(x)
				}
				if pos == nil {
					dec.AddPass(p, y, h)
				} else {
					dec.AddSubpass(p, pos, y, h)
				}
				symbols += len(x)
				if got, ok := dec.TryDecode(noiseVar); ok && bytes.Equal(got, msg) {
					return sim.Outcome{Symbols: symbols, Bits: code.MessageBits(), OK: true}
				}
			}
		}
		return sim.Outcome{Symbols: symbols}
	})
	return sim.Aggregate(snrDB, outs).Rate
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
