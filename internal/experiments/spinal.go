package experiments

import (
	"spinal/internal/capacity"
	"spinal/internal/core"
	"spinal/internal/sim"
)

// capAt is shorthand for complex AWGN capacity at an SNR in dB.
func capAt(snrDB float64) float64 { return capacity.AWGNdB(snrDB) }

// spinalParams returns the paper's recommended operating point (k=4,
// B=256, d=1, c=6). The beam width is kept at the paper's 256 even at
// quick scale: it is what the flagship comparisons assume, and its cost
// concentrates at low SNR where the quick grids are coarse.
func spinalParams(Config) core.Params {
	return core.DefaultParams()
}

// spinalRate measures the rateless spinal rate at one operating point,
// with auto decode-attempt granularity (per-symbol at high SNR).
func spinalRate(cfg Config, p core.Params, nBits int, snrDB float64, trials int, seedOff int64) sim.Result {
	return sim.MeasureSpinal(sim.SpinalConfig{
		Params: p,
		NBits:  nBits,
		SNRdB:  snrDB,
		Trials: trials,
		Seed:   cfg.Seed*1_000_003 + seedOff,
	})
}

// snrSweep returns the experiment's SNR grid.
func snrSweep(cfg Config, lo, hi float64) []float64 {
	step := 1.0
	if cfg.Quick {
		step = 5.0
	}
	var out []float64
	for s := lo; s <= hi+1e-9; s += step {
		out = append(out, s)
	}
	return out
}
