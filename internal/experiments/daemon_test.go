package experiments

import (
	"strconv"
	"testing"
)

// TestDaemonGoodputMonotone asserts the acceptance property of the
// spinald scaling experiment: with common random numbers and one flow
// per shard, aggregate goodput is monotone nondecreasing in the flow
// count up to the shard count — each added flow lands on an idle shard
// and spends exactly the same airtime, so the busiest-shard denominator
// is flat while the delivered-bits numerator grows.
func TestDaemonGoodputMonotone(t *testing.T) {
	tables := DaemonGoodput(DefaultConfig())
	if len(tables) != 1 {
		t.Fatalf("got %d tables", len(tables))
	}
	tbl := tables[0]
	if len(tbl.Rows) == 0 || tbl.Rows[0][0] == "error" {
		t.Fatalf("experiment failed: %+v", tbl.Rows)
	}
	const shards = 4
	var prev float64
	for _, row := range tbl.Rows {
		flows, err := strconv.Atoi(row[0])
		if err != nil {
			t.Fatal(err)
		}
		delivered, _ := strconv.Atoi(row[1])
		if delivered != flows {
			t.Fatalf("%d flows, %d delivered: %v", flows, delivered, row)
		}
		if flows > shards {
			break
		}
		g, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if g < prev {
			t.Fatalf("goodput fell from %.4f to %.4f at %d flows", prev, g, flows)
		}
		prev = g
	}
}
