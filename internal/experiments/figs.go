package experiments

import (
	"fmt"

	"spinal/internal/capacity"
	"spinal/internal/core"
	"spinal/internal/hashfn"
	"spinal/internal/sim"
	"spinal/internal/stats"
	"spinal/internal/strider"
)

// Fig8_2 reproduces Figure 8-2: the rateless spinal code against every
// rated version of itself. The hedging effect predicts the rateless curve
// envelopes all fixed-rate curves.
func Fig8_2(cfg Config) []*Table {
	p := spinalParams(cfg)
	nBits := 256
	trials := 8
	if cfg.Quick {
		trials = 4
	}
	// Fixed-rate grid in subpasses (8 subpasses = 1 pass).
	subGrid := []int{4, 6, 8, 12, 16, 24, 32, 48, 64}
	t := &Table{
		Name:   "fig8-2",
		Title:  "rateless vs best fixed-rate spinal (bits/symbol)",
		Header: []string{"SNR(dB)", "Shannon", "rateless", "best fixed", "fixed rate used"},
	}
	snrs := []float64{6, 8, 10, 12, 14}
	if cfg.Quick {
		snrs = []float64{6, 10, 14}
	}
	for _, snr := range snrs {
		rateless := spinalRate(cfg, p, nBits, snr, trials, 41).Rate
		bestRate, bestLabel := 0.0, "-"
		for _, sub := range subGrid {
			r := sim.MeasureSpinalFixedRate(sim.SpinalConfig{
				Params: p, NBits: nBits, SNRdB: snr, Trials: trials,
				Seed: cfg.Seed*1_000_003 + 43,
			}, sub)
			if r.Rate > bestRate {
				bestRate = r.Rate
				bestLabel = fmt.Sprintf("%d subpasses", sub)
			}
		}
		t.AddRow(f2(snr), f2(capAt(snr)), f2(rateless), f2(bestRate), bestLabel)
	}
	return []*Table{t}
}

// Fig8_3 reproduces Figure 8-3: average fraction of capacity for small
// packets (1024, 2048, 3072 bits) for spinal, Raptor and Strider(+).
func Fig8_3(cfg Config) []*Table {
	p := spinalParams(cfg)
	sizes := []int{1024, 2048, 3072}
	snrs := []float64{5, 10, 15, 20, 25}
	spinalTrials, raptorTrials, striderTrials := 4, 3, 2
	if cfg.Quick {
		snrs = []float64{5, 15, 25}
		spinalTrials, raptorTrials, striderTrials = 2, 2, 1
	}
	t := &Table{
		Name:   "fig8-3",
		Title:  "small packets: average fraction of capacity over 5-25 dB",
		Header: []string{"size(bits)", "spinal", "raptor", "strider", "strider+"},
	}
	// Spinal splits >1024-bit messages into 1024-bit code blocks (§6), so
	// its per-size performance equals the n=1024 block performance;
	// measure once.
	var spFrac float64
	for _, snr := range snrs {
		r := spinalRate(cfg, p, 1024, snr, spinalTrials, 47)
		spFrac += capacity.FractionOfCapacity(r.Rate, snr)
	}
	spFrac /= float64(len(snrs))

	for _, size := range sizes {
		var raFrac, stFrac, stpFrac float64
		layerBits := (size + 32) / 33 // round up so 33 layers carry ≥ size
		if layerBits < 8 {
			layerBits = 8
		}
		scfg := strider.Config{Layers: 33, LayerBits: layerBits, MaxPasses: 27, TurboIters: 6}
		for _, snr := range snrs {
			ra := raptorRate(size, 256, snr, raptorTrials, cfg.Seed*9+53)
			st := striderRate(striderOpts{cfg: scfg}, snr, striderTrials, cfg.Seed*9+59)
			stp := striderRate(striderOpts{cfg: scfg, plus: true}, snr, striderTrials, cfg.Seed*9+61)
			raFrac += capacity.FractionOfCapacity(ra, snr)
			stFrac += capacity.FractionOfCapacity(st, snr)
			stpFrac += capacity.FractionOfCapacity(stp, snr)
		}
		n := float64(len(snrs))
		t.AddRow(fmt.Sprint(size), f3(spFrac), f3(raFrac/n), f3(stFrac/n), f3(stpFrac/n))
	}
	return []*Table{t}
}

// fadingExperiment shares the machinery of Figures 8-4 and 8-5.
func fadingExperiment(cfg Config, name, title string, provideH bool) []*Table {
	p := spinalParams(cfg)
	taus := []int{1, 10, 100}
	snrs := snrSweep(cfg, 0, 30)
	if cfg.Quick {
		snrs = []float64{0, 10, 20, 30}
	}
	spinalTrials, striderTrials := 4, 2
	if cfg.Quick {
		spinalTrials = 2
	}
	scfg := strider.Config{Layers: 33, LayerBits: 80, MaxPasses: 27, TurboIters: 6}
	if !cfg.Quick {
		scfg.LayerBits = 1514
		scfg.TurboIters = 8
	}
	t := &Table{
		Name:   name,
		Title:  title,
		Header: []string{"SNR(dB)", "C_rayleigh"},
	}
	for _, tau := range taus {
		t.Header = append(t.Header,
			fmt.Sprintf("spinal τ=%d", tau), fmt.Sprintf("strider+ τ=%d", tau))
	}
	for _, snr := range snrs {
		row := []string{f2(snr), f2(capacity.RayleighdB(snr))}
		for _, tau := range taus {
			// Fig 8-5's "AWGN decoder": phase-tracked but amplitude-blind
			// (see sim.Fading.PhaseOnly).
			fad := &sim.Fading{Tau: tau, ProvideH: provideH, PhaseOnly: !provideH}
			maxPasses := 0
			if !provideH {
				// Blind decoding fails often; a tighter give-up budget
				// bounds the cost of hopeless messages without changing
				// the successful ones.
				c := capacity.RayleighdB(snr)
				if c < 0.1 {
					c = 0.1
				}
				maxPasses = int(2*float64(p.K)/c) + 3
			}
			sp := sim.MeasureSpinal(sim.SpinalConfig{
				Params: p, NBits: 256, SNRdB: snr, Trials: spinalTrials,
				Seed: cfg.Seed*1_000_003 + 71, Fading: fad, MaxPasses: maxPasses,
			})
			st := striderRate(striderOpts{cfg: scfg, plus: true, fading: fad}, snr, striderTrials, cfg.Seed*11+73)
			row = append(row, f2(sp.Rate), f2(st))
		}
		t.AddRow(row...)
	}
	return []*Table{t}
}

// Fig8_4 reproduces Figure 8-4: Rayleigh fading with exact fading
// information at the decoders.
func Fig8_4(cfg Config) []*Table {
	return fadingExperiment(cfg, "fig8-4",
		"Rayleigh fading, decoders given exact h (rate, bits/symbol)", true)
}

// Fig8_5 reproduces Figure 8-5: the same channels decoded without fading
// information (AWGN decoders).
func Fig8_5(cfg Config) []*Table {
	return fadingExperiment(cfg, "fig8-5",
		"Rayleigh fading, AWGN decoders (no fading info)", false)
}

// Fig8_6 reproduces Figure 8-6: average fraction of capacity versus
// compute budget B·2^k/k for k = 1..6.
func Fig8_6(cfg Config) []*Table {
	budgets := []int{16, 32, 64, 128, 256, 512, 1024}
	snrs := []float64{2, 8, 14, 20, 24}
	nBits := 256
	trials := 4
	if cfg.Quick {
		budgets = []int{32, 128, 512}
		snrs = []float64{2, 8, 14, 20, 24}
		nBits = 96
		trials = 5
	}
	t := &Table{
		Name:   "fig8-6",
		Title:  "fraction of capacity (avg over 2-24 dB) vs compute budget B·2^k/k",
		Header: []string{"budget"},
	}
	for k := 1; k <= 6; k++ {
		t.Header = append(t.Header, fmt.Sprintf("k=%d", k))
	}
	for _, budget := range budgets {
		row := []string{fmt.Sprint(budget)}
		for k := 1; k <= 6; k++ {
			b := budget * k >> uint(k)
			if b < 1 {
				b = 1
			}
			p := core.Params{K: k, B: b, D: 1, C: 6, Tail: 2, Ways: 8}
			var frac float64
			for _, snr := range snrs {
				r := spinalRate(cfg, p, nBits, snr, trials, int64(100*k+budget))
				frac += capacity.FractionOfCapacity(r.Rate, snr)
			}
			row = append(row, f3(frac/float64(len(snrs))))
		}
		t.AddRow(row...)
	}
	return []*Table{t}
}

// Fig8_7 reproduces Figure 8-7: bubble depth d against beam width B at a
// constant node budget B·2^kd (k=3, n=256).
func Fig8_7(cfg Config) []*Table {
	nBits := 256
	trials := 4
	if cfg.Quick {
		nBits = 96
		trials = 2
	}
	configs := []struct{ b, d int }{{512, 1}, {64, 2}, {8, 3}, {1, 4}}
	snrs := snrSweep(cfg, 0, 25)
	if cfg.Quick {
		snrs = []float64{0, 10, 20}
		trials = 6
	}
	t := &Table{
		Name:   "fig8-7",
		Title:  "gap to capacity (dB) for constant node budget B·2^kd, k=3",
		Header: []string{"SNR(dB)"},
	}
	for _, c := range configs {
		t.Header = append(t.Header, fmt.Sprintf("B=%d,d=%d", c.b, c.d))
	}
	for _, snr := range snrs {
		row := []string{f2(snr)}
		for _, c := range configs {
			p := core.Params{K: 3, B: c.b, D: c.d, C: 6, Tail: 2, Ways: 8}
			r := spinalRate(cfg, p, nBits, snr, trials, int64(200+c.b))
			row = append(row, f2(capacity.GapDB(r.Rate, snr)))
		}
		t.AddRow(row...)
	}
	return []*Table{t}
}

// Fig8_8 reproduces Figure 8-8: rate vs SNR for output densities c=1..6.
func Fig8_8(cfg Config) []*Table {
	p := spinalParams(cfg)
	nBits := 256
	trials := 4
	if cfg.Quick {
		nBits = 96
		trials = 4
	}
	snrs := snrSweep(cfg, -5, 35)
	t := &Table{
		Name:   "fig8-8",
		Title:  "rate (bits/symbol) vs SNR for c=1..6",
		Header: []string{"SNR(dB)", "Shannon"},
	}
	for c := 1; c <= 6; c++ {
		t.Header = append(t.Header, fmt.Sprintf("c=%d", c))
	}
	for _, snr := range snrs {
		row := []string{f2(snr), f2(capAt(snr))}
		for c := 1; c <= 6; c++ {
			pc := p
			pc.C = c
			pc.Mapper = nil
			r := spinalRate(cfg, pc, nBits, snr, trials, int64(300+c))
			row = append(row, f2(r.Rate))
		}
		t.AddRow(row...)
	}
	return []*Table{t}
}

// Fig8_9 reproduces Figure 8-9: gap to capacity versus the number of tail
// symbols per pass. Two is the paper's sweet spot.
func Fig8_9(cfg Config) []*Table {
	p := spinalParams(cfg)
	nBits := 256
	trials := 10
	snrs := []float64{5, 15, 25}
	if cfg.Quick {
		nBits = 96
		trials = 8
	}
	t := &Table{
		Name:   "fig8-9",
		Title:  "gap to capacity (dB) vs tail symbols per pass",
		Header: []string{"SNR(dB)", "1 tail", "2 tails", "3 tails", "4 tails", "5 tails"},
	}
	for _, snr := range snrs {
		row := []string{f2(snr)}
		for tail := 1; tail <= 5; tail++ {
			pt := p
			pt.Tail = tail
			r := spinalRate(cfg, pt, nBits, snr, trials, int64(400+tail))
			row = append(row, f2(capacity.GapDB(r.Rate, snr)))
		}
		t.AddRow(row...)
	}
	return []*Table{t}
}

// Fig8_10 reproduces Figure 8-10: gap to capacity under different
// puncturing schedules. Finer puncturing allows more frequent decode
// attempts and hence higher rates, especially at high SNR.
func Fig8_10(cfg Config) []*Table {
	p := spinalParams(cfg)
	nBits := 256
	trials := 8
	if cfg.Quick {
		trials = 6
	}
	snrs := []float64{5, 15, 25, 35}
	t := &Table{
		Name:   "fig8-10",
		Title:  "gap to capacity (dB) vs puncturing schedule (n=256)",
		Header: []string{"SNR(dB)", "8-way", "4-way", "2-way", "none"},
	}
	for _, snr := range snrs {
		row := []string{f2(snr)}
		for _, ways := range []int{8, 4, 2, 1} {
			pw := p
			pw.Ways = ways
			r := spinalRate(cfg, pw, nBits, snr, trials, int64(500+ways))
			row = append(row, f2(capacity.GapDB(r.Rate, snr)))
		}
		t.AddRow(row...)
	}
	return []*Table{t}
}

// Fig8_11 reproduces Figure 8-11: the distribution of symbols needed to
// decode an n=256 message at various SNRs, reported as percentiles of the
// empirical CDF.
func Fig8_11(cfg Config) []*Table {
	p := spinalParams(cfg)
	trials := 50
	snrs := []float64{6, 10, 14, 18, 22, 26}
	if cfg.Quick {
		trials = 15
		snrs = []float64{6, 14, 22}
	}
	t := &Table{
		Name:   "fig8-11",
		Title:  "symbols needed to decode n=256 (percentiles of CDF)",
		Header: []string{"SNR(dB)", "trials", "P10", "P50", "P90", "failures"},
	}
	for _, snr := range snrs {
		r := spinalRate(cfg, p, 256, snr, trials, 601)
		var c stats.CDF
		for _, s := range r.SymbolCounts {
			c.Add(float64(s))
		}
		t.AddRow(f2(snr), fmt.Sprint(r.Messages),
			f2(c.Percentile(10)), f2(c.Percentile(50)), f2(c.Percentile(90)),
			fmt.Sprint(r.Failures))
	}
	return []*Table{t}
}

// Fig8_12 reproduces Figure 8-12: longer code blocks decode further from
// capacity at fixed k and B.
func Fig8_12(cfg Config) []*Table {
	p := spinalParams(cfg)
	sizes := []int{64, 128, 256, 512, 1024, 2048}
	trials := 6
	snrs := []float64{5, 15, 25}
	if cfg.Quick {
		sizes = []int{64, 128, 256, 512}
		trials = 4
	}
	t := &Table{
		Name:   "fig8-12",
		Title:  "gap to capacity (dB) vs code block length n",
		Header: []string{"n(bits)", "gap@5dB", "gap@15dB", "gap@25dB", "avg"},
	}
	for _, n := range sizes {
		row := []string{fmt.Sprint(n)}
		var avg float64
		for _, snr := range snrs {
			r := spinalRate(cfg, p, n, snr, trials, int64(700+n))
			g := capacity.GapDB(r.Rate, snr)
			avg += g
			row = append(row, f2(g))
		}
		row = append(row, f2(avg/float64(len(snrs))))
		t.AddRow(row...)
	}
	return []*Table{t}
}

// FigB_2 runs the hardware prototype's parameter set (n=192, k=4, c=7,
// d=1, B=4) in simulation, the comparator the paper validated over the
// air. Mbps assumes a 20 MHz 802.11a/g OFDM channel (48 data subcarriers
// per 4 µs symbol = 12 Msym/s).
func FigB_2(cfg Config) []*Table {
	p := core.Params{K: 4, B: 4, D: 1, C: 7, Tail: 2, Ways: 8}
	trials := 10
	if cfg.Quick {
		trials = 5
	}
	t := &Table{
		Name:   "figB-2",
		Title:  "hardware parameters in simulation (n=192, k=4, c=7, d=1, B=4)",
		Header: []string{"SNR(dB)", "rate(b/sym)", "Mbps@20MHz", "failures"},
	}
	for snr := 0.0; snr <= 14; snr += 2 {
		r := spinalRate(cfg, p, 192, snr, trials, 801)
		t.AddRow(f2(snr), f2(r.Rate), f2(r.Rate*12), fmt.Sprint(r.Failures))
	}
	return []*Table{t}
}

// BSCExtra exercises the §4.6 claim that spinal codes approach BSC
// capacity; the paper proves it but shows no figure.
func BSCExtra(cfg Config) []*Table {
	p := core.Params{K: 4, B: 64, D: 1, C: 1, Tail: 2, Ways: 8}
	trials := 8
	nBits := 256
	if cfg.Quick {
		trials = 3
		nBits = 128
	}
	t := &Table{
		Name:   "bsc",
		Title:  "spinal codes on BSC(p): rate vs capacity 1-H(p)",
		Header: []string{"p", "capacity", "rate", "fraction"},
	}
	for _, prob := range []float64{0.02, 0.05, 0.1, 0.2} {
		rate, _ := sim.MeasureSpinalBSC(p, nBits, prob, trials, cfg.Seed*13+7)
		c := capacity.BSC(prob)
		t.AddRow(f3(prob), f3(c), f3(rate), f3(rate/c))
	}
	return []*Table{t}
}

// HashAblation verifies §7.1: one-at-a-time, lookup3 and Salsa20 give
// indistinguishable code performance.
func HashAblation(cfg Config) []*Table {
	p := spinalParams(cfg)
	nBits := 192
	trials := 6
	if cfg.Quick {
		nBits = 96
		trials = 4
	}
	hashes := []hashfn.Hash{hashfn.OneAtATime{}, hashfn.Lookup3{}, hashfn.Salsa20{}}
	t := &Table{
		Name:   "hash-ablation",
		Title:  "rate at 10 dB by hash function (should be ≈ equal)",
		Header: []string{"hash", "rate(b/sym)", "fraction of capacity"},
	}
	for _, h := range hashes {
		ph := p
		ph.Hash = h
		r := spinalRate(cfg, ph, nBits, 10, trials, 901)
		t.AddRow(h.Name(), f3(r.Rate), f3(capacity.FractionOfCapacity(r.Rate, 10)))
	}
	return []*Table{t}
}
