package experiments

import (
	"fmt"

	"spinal/internal/core"
	"spinal/internal/sim"
)

// bakeoffCodes lists the contenders in the paper's §8 order: spinal,
// then the rateless baselines it beats, then the fixed-rate families it
// must track.
var bakeoffCodes = []string{"spinal", "strider", "raptor", "turbo", "ldpc"}

// bakeoffSNRs are the mixed moderate SNRs of the feedback scenarios
// (scenarioChannels assigns them round-robin across flows), and the
// grid the LDPC oracle envelope is averaged over.
var bakeoffSNRs = []float64{7, 10, 14}

// BaselineGoodput is the codes bake-off: every §8 code runs behind the
// spinal/code interface through the full link engine — multi-flow
// scheduling, rate adaptation, delayed/lossy acks, retransmission
// timers, chase combining, half-duplex airtime accounting — over three
// conditions far richer than the paper's static AWGN sweep:
//
//   - moderate-SNR AWGN (mixed 7/10/14 dB flows) with acks delayed 8
//     engine rounds,
//   - the bursty Gilbert–Elliott 18/2 dB channel, and
//   - the moderate-SNR mix with 30% ack loss under half-duplex
//     accounting (reverse airtime charged against goodput).
//
// The "oracle" column compares each code's goodput on the moderate-SNR
// condition against the LDPC genie envelope (ldpcEnvelope: best
// rate × modulation pair per SNR, known noise, no engine, no feedback
// cost, averaged over the SNR mix) — the §8 upper-bound reference.
//
// The paper's §8 ordering is spinal ≥ Strider ≥ Raptor at moderate SNR
// with spinal tracking the LDPC envelope. This repository reproduces
// spinal ≥ every baseline and the envelope claim
// (TestBaselineGoodputOrdering asserts both); its quick-scale Strider,
// however, underperforms the paper's — short per-layer turbo blocks
// cost several dB — so Raptor sits above Strider here, as it already
// does in the standalone fig8-1 sweep. EXPERIMENTS.md records the
// deviation.
func BaselineGoodput(cfg Config) []*Table {
	flows := 18
	blockBits := 768
	envBlocks := 10
	p := core.Params{K: 4, B: 16, D: 1, C: 6, Tail: 2, Ways: 8}
	if cfg.Quick {
		flows = 6
		blockBits = 192
		envBlocks = 5
	}
	base := func(scenario, codeSpec string) sim.ScenarioConfig {
		return sim.ScenarioConfig{
			Params:       p,
			Code:         codeSpec,
			Scenario:     scenario,
			Policy:       "tracking",
			Flows:        flows,
			Concurrency:  3,
			MinBytes:     40,
			MaxBytes:     90,
			MaxRounds:    192,
			MaxBlockBits: blockBits,
			Shards:       2,
			Seed:         cfg.Seed*1_000_003 + 88,
		}
	}

	// The genie reference: best fixed LDPC rate × modulation per SNR,
	// averaged over the flow mix of the moderate-SNR condition.
	var envMean float64
	for i, snr := range bakeoffSNRs {
		envMean += ldpcEnvelope(snr, envBlocks, cfg.Seed*7+int64(100+i))
	}
	envMean /= float64(len(bakeoffSNRs))

	t := &Table{
		Name:  "baseline-goodput",
		Title: fmt.Sprintf("codes bake-off through the link engine (LDPC oracle envelope %.2f b/sym at mixed 7/10/14 dB)", envMean),
		Header: []string{"condition", "code", "delivered", "outage",
			"goodput(b/sym)", "vs oracle", "rounds", "symbols", "retx", "ack sym"},
	}
	conds := []struct {
		label    string
		scenario string
		oracle   bool
		mutate   func(*sim.ScenarioConfig)
	}{
		{"awgn 7/10/14 dB, acks delayed 8", "feedback-delay", true, nil},
		{"burst 18/2 dB", "burst", false, nil},
		{"awgn 7/10/14 dB, 30% ack loss, half-duplex", "feedback-loss", false,
			func(c *sim.ScenarioConfig) { c.HalfDuplex = true }},
	}
	for _, cond := range conds {
		for _, codeSpec := range bakeoffCodes {
			c := base(cond.scenario, codeSpec)
			if cond.mutate != nil {
				cond.mutate(&c)
			}
			res, err := sim.MeasureScenario(c)
			if err != nil {
				panic(err) // static scenario and code specs; cannot fail
			}
			oracle := "-"
			if cond.oracle && envMean > 0 {
				oracle = fmt.Sprintf("%.0f%%", 100*res.Goodput/envMean)
			}
			t.AddRow(cond.label, codeSpec,
				fmt.Sprintf("%d/%d", res.Delivered, res.Flows),
				fmt.Sprintf("%.0f%%", 100*res.OutageRate),
				f3(res.Goodput), oracle,
				fmt.Sprint(res.Rounds), fmt.Sprint(res.Symbols),
				fmt.Sprint(res.Retransmissions), fmt.Sprint(res.AckSymbols))
		}
	}
	return []*Table{t}
}
