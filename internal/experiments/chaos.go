package experiments

import (
	"fmt"

	"spinal/internal/core"
	"spinal/internal/sim"
)

// chaosScales is the fault-intensity sweep of the degradation
// experiment: multiples of the chaos scenarios' pinned fault mix, from
// fault-free through four times the golden intensity. Shared with
// TestChaosDegradationSmooth, which asserts the sweep's shape.
var chaosScales = []float64{0, 0.5, 1, 2, 4}

// ChaosDegradation measures the rateless link under rising adversarial
// fault intensity (sim.MeasureScenario "chaos-feedback" with the mix
// scaled): frames reordered, duplicated, truncated, bit-flipped and
// blacked out while acks suffer the same on a delayed lossy reverse
// channel. The paper's rateless claim predicts graceful degradation —
// goodput falls as faults rise, but there is no cliff where delivery
// collapses: every surviving pass still contributes symbols, and the
// hardened receiver drops what the injector mangles instead of decoding
// garbage. TestChaosDegradationSmooth asserts exactly that shape.
func ChaosDegradation(cfg Config) []*Table {
	flows := 24
	p := core.Params{K: 4, B: 16, D: 1, C: 6, Tail: 2, Ways: 8}
	if cfg.Quick {
		flows = 8
	} else {
		p.B = 64
	}
	t := &Table{
		Name:   "chaos-degradation",
		Title:  "adversarial-link degradation: goodput vs fault intensity (chaos-feedback mix, scaled)",
		Header: []string{"scale", "delivered", "outage", "goodput(b/sym)", "frame faults", "ack faults", "rejected", "deduped"},
	}
	for _, res := range chaosSweep(p, flows, cfg.Seed) {
		t.AddRow(res.label, fmt.Sprintf("%d/%d", res.Delivered, res.Flows),
			fmt.Sprintf("%.0f%%", 100*res.OutageRate), f3(res.Goodput),
			fmt.Sprint(res.FramesFaulted), fmt.Sprint(res.AcksFaulted),
			fmt.Sprint(res.BatchesRejected), fmt.Sprint(res.SymbolsDeduped))
	}
	return []*Table{t}
}

// chaosRow is one intensity point of the degradation sweep.
type chaosRow struct {
	label string
	scale float64
	sim.ScenarioResult
}

// chaosSweep runs the chaos-feedback scenario at each intensity in
// chaosScales, overriding the scenario's default mix with its scaled
// copy. Deterministic given seed.
func chaosSweep(p core.Params, flows int, seed int64) []chaosRow {
	var rows []chaosRow
	for _, scale := range chaosScales {
		faults := sim.ChaosFaults(true).Scale(scale)
		res, err := sim.MeasureScenario(sim.ScenarioConfig{
			Params:       p,
			Scenario:     "chaos-feedback",
			Policy:       "tracking",
			Flows:        flows,
			Concurrency:  4,
			MinBytes:     40,
			MaxBytes:     90,
			MaxRounds:    96,
			MaxBlockBits: 192,
			Shards:       2,
			Seed:         seed*1_000_003 + 20260807,
			Faults:       &faults,
		})
		if err != nil {
			panic(err) // static scenario name; cannot fail
		}
		rows = append(rows, chaosRow{fmt.Sprintf("%.1fx", scale), scale, res})
	}
	return rows
}
