// Package experiments regenerates every table and figure of the paper's
// evaluation (§8 and Appendix B). Each experiment is a deterministic,
// seeded function that returns one or more text tables with the same rows
// or series the paper reports.
//
// Two scales are supported. Quick scale (the default for benchmarks and
// CI) uses reduced trial counts, coarser SNR grids and smaller block
// sizes chosen so every qualitative claim — who wins, by roughly what
// factor, where crossovers fall — is stable run to run. Full scale
// approaches the paper's parameters at substantial runtime.
// EXPERIMENTS.md records paper-reported versus measured values.
package experiments

import (
	"fmt"
	"strings"
)

// Config selects the scale and base seed of an experiment run.
type Config struct {
	// Quick selects the reduced-scale parameters.
	Quick bool
	// Seed is the base RNG seed; all trials derive from it.
	Seed int64
}

// DefaultConfig is the quick, reproducible configuration.
func DefaultConfig() Config { return Config{Quick: true, Seed: 1} }

// Table is a rendered experiment result.
type Table struct {
	Name   string // experiment id, e.g. "fig8-1"
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// String renders the table as aligned text.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s: %s\n", t.Name, t.Title)
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Experiment couples an id with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) []*Table
}

// All lists every reproducible experiment in paper order.
var All = []Experiment{
	{"fig8-1", "Rate and gap to capacity vs SNR: spinal, Raptor, Strider(+), LDPC envelope", Fig8_1},
	{"intro-table", "Aggregate spinal gains by SNR band (Chapter 1 table)", IntroTable},
	{"fig8-2", "Rateless spinal vs every fixed-rate spinal (hedging effect)", Fig8_2},
	{"fig8-3", "Small-packet fraction of capacity: spinal, Raptor, Strider(+)", Fig8_3},
	{"fig8-4", "Rayleigh fading with known h: spinal vs Strider+", Fig8_4},
	{"fig8-5", "Rayleigh fading with AWGN decoders (no fading info)", Fig8_5},
	{"fig8-6", "Fraction of capacity vs compute budget B·2^k/k for k=1..6", Fig8_6},
	{"fig8-7", "Bubble depth d vs beam width B at constant node budget", Fig8_7},
	{"fig8-8", "Rate vs SNR for output density c=1..6", Fig8_8},
	{"fig8-9", "Gap to capacity vs number of tail symbols", Fig8_9},
	{"fig8-10", "Gap to capacity vs puncturing schedule", Fig8_10},
	{"fig8-11", "CDF of symbols needed to decode at various SNRs", Fig8_11},
	{"fig8-12", "Effect of code block length n on gap to capacity", Fig8_12},
	{"table8-1", "OFDM PAPR for QAM-4/64/2^20 and truncated Gaussian", Table8_1},
	{"figB-2", "Hardware-prototype parameters in simulation (n=192, B=4, c=7)", FigB_2},
	{"bsc", "Spinal codes on the BSC vs 1-H(p) capacity (§4.6 claim; no paper figure)", BSCExtra},
	{"hash-ablation", "Hash function choice does not affect performance (§7.1)", HashAblation},
	{"hw-model", "Appendix B hardware decoder throughput/area model", HWModel},
	{"ablation-attempts", "Decode-attempt granularity ablation (engine design choice)", AttemptAblation},
	{"ge-channel", "Bursty Gilbert-Elliott channel: rateless vs best fixed rate", GEChannel},
	{"scenario-goodput", "Time-varying channel scenario: link goodput by rate policy", ScenarioGoodput},
	{"feedback-goodput", "Realistic ARQ feedback: goodput under ack delay/loss, chase vs discard", FeedbackGoodput},
	{"chaos-degradation", "Adversarial links: goodput degradation vs fault intensity (no cliff)", ChaosDegradation},
	{"baseline-goodput", "Codes bake-off: every §8 code through the link engine vs the LDPC oracle envelope", BaselineGoodput},
	{"daemon-goodput", "spinald scaling: aggregate goodput vs concurrent flows over one UDP socket", DaemonGoodput},
	{"flow-fairness", "Flow scheduling: mice-elephants fairness and tail latency, RR vs DWFQ", FlowFairness},
	{"transport-fetch", "Congestion-aware fetch: CUBIC pipeline vs reverse-channel impairment", TransportFetch},
}

// ByID finds an experiment by id, or nil.
func ByID(id string) *Experiment {
	for i := range All {
		if All[i].ID == id {
			return &All[i]
		}
	}
	return nil
}

// f formats a float at fixed precision, rendering NaN/Inf as "-".
func f2(v float64) string {
	if v != v || v > 1e17 || v < -1e17 {
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}

func f3(v float64) string {
	if v != v || v > 1e17 || v < -1e17 {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}
