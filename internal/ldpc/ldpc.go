// Package ldpc implements the fixed-rate LDPC baseline of §8: quasi-cyclic
// codes with the 802.11n block length (648 bits) and rate set {1/2, 2/3,
// 3/4, 5/6}, a linear-time encoder exploiting the dual-diagonal parity
// structure, and a floating-point sum-product belief-propagation decoder
// run for forty full iterations, exactly as the paper's baseline.
//
// Substitution note (see DESIGN.md): the published 802.11n circulant shift
// tables are replaced by a girth-conditioned pseudo-random QC construction
// with the same block structure. The decoder, rates, block length and
// modulations are as in the paper.
package ldpc

import (
	"fmt"
	"math"
	"math/rand"
)

// Code is a quasi-cyclic LDPC code: an mb×nb array of Z×Z circulant
// blocks. shifts[i][j] is the circulant shift of block (i,j), or -1 for a
// zero block. The last mb block-columns form the dual-diagonal parity
// part enabling linear-time encoding.
type Code struct {
	Z      int
	nb, mb int
	shifts [][]int

	// Flattened Tanner graph for decoding.
	checkVars [][]int32 // per check row: variable indices
}

// Rate identifiers matching the 802.11n family.
const (
	Rate12 = "1/2"
	Rate23 = "2/3"
	Rate34 = "3/4"
	Rate56 = "5/6"
)

// Rates lists the supported code rates in increasing order.
var Rates = []string{Rate12, Rate23, Rate34, Rate56}

// NewQC constructs a quasi-cyclic code with nb=24 block columns and
// expansion factor Z (802.11n uses Z=27 for n=648). The construction is
// deterministic in seed; shifts in the information part are chosen to
// avoid length-4 cycles where possible.
func NewQC(rate string, Z int, seed int64) *Code {
	var mb int
	switch rate {
	case Rate12:
		mb = 12
	case Rate23:
		mb = 8
	case Rate34:
		mb = 6
	case Rate56:
		mb = 4
	default:
		panic(fmt.Sprintf("ldpc: unknown rate %q", rate))
	}
	const nb = 24
	c := &Code{Z: Z, nb: nb, mb: mb}
	rng := rand.New(rand.NewSource(seed))
	kb := nb - mb

	c.shifts = make([][]int, mb)
	for i := range c.shifts {
		c.shifts[i] = make([]int, nb)
		for j := range c.shifts[i] {
			c.shifts[i][j] = -1
		}
	}

	// Information part: each block column gets weight 3 (one column gets
	// weight 4 to break regularity slightly), rows chosen to balance row
	// weights, shifts chosen to avoid 4-cycles among placed blocks.
	rowWeight := make([]int, mb)
	for j := 0; j < kb; j++ {
		w := 3
		if j == 0 {
			w = 4
		}
		if w > mb {
			w = mb
		}
		rows := pickRows(rng, rowWeight, mb, w)
		for _, i := range rows {
			c.shifts[i][j] = c.pickShift(rng, i, j)
			rowWeight[i]++
		}
	}

	// Parity part, 802.11n-style: block column kb has weight 3 with
	// shifts {x, 0, x} at rows {0, mb/2, mb-1}; remaining columns form the
	// dual diagonal.
	const x = 1
	c.shifts[0][kb] = x
	c.shifts[mb/2][kb] = 0
	c.shifts[mb-1][kb] = x
	for j := 1; j < mb; j++ {
		c.shifts[j-1][kb+j] = 0
		c.shifts[j][kb+j] = 0
	}

	c.buildGraph()
	return c
}

// pickRows selects w distinct rows, preferring lightly loaded ones.
func pickRows(rng *rand.Rand, rowWeight []int, mb, w int) []int {
	perm := rng.Perm(mb)
	// Sort the permutation segment by current weight (stable enough via
	// simple selection given tiny mb).
	for i := 0; i < len(perm); i++ {
		for j := i + 1; j < len(perm); j++ {
			if rowWeight[perm[j]] < rowWeight[perm[i]] {
				perm[i], perm[j] = perm[j], perm[i]
			}
		}
	}
	return perm[:w]
}

// pickShift chooses a circulant shift for block (i, j) that avoids
// creating a 4-cycle with already placed blocks, if it can find one in a
// bounded number of tries. A 4-cycle among blocks (i,j),(i,j2),(i2,j),
// (i2,j2) exists iff s(i,j)−s(i,j2)+s(i2,j2)−s(i2,j) ≡ 0 (mod Z).
func (c *Code) pickShift(rng *rand.Rand, i, j int) int {
	for try := 0; try < 64; try++ {
		s := rng.Intn(c.Z)
		if !c.makes4Cycle(i, j, s) {
			return s
		}
	}
	return rng.Intn(c.Z)
}

func (c *Code) makes4Cycle(i, j, s int) bool {
	for j2 := 0; j2 < c.nb; j2++ {
		if j2 == j || c.shifts[i][j2] < 0 {
			continue
		}
		for i2 := 0; i2 < c.mb; i2++ {
			if i2 == i || c.shifts[i2][j] < 0 || c.shifts[i2][j2] < 0 {
				continue
			}
			d := s - c.shifts[i][j2] + c.shifts[i2][j2] - c.shifts[i2][j]
			if ((d%c.Z)+c.Z)%c.Z == 0 {
				return true
			}
		}
	}
	return false
}

func (c *Code) buildGraph() {
	c.checkVars = make([][]int32, c.mb*c.Z)
	for bi := 0; bi < c.mb; bi++ {
		for bj := 0; bj < c.nb; bj++ {
			s := c.shifts[bi][bj]
			if s < 0 {
				continue
			}
			for r := 0; r < c.Z; r++ {
				check := bi*c.Z + r
				v := bj*c.Z + (r+s)%c.Z
				c.checkVars[check] = append(c.checkVars[check], int32(v))
			}
		}
	}
}

// N reports the code length in bits.
func (c *Code) N() int { return c.nb * c.Z }

// K reports the number of information bits.
func (c *Code) K() int { return (c.nb - c.mb) * c.Z }

// RateValue reports K/N.
func (c *Code) RateValue() float64 { return float64(c.K()) / float64(c.N()) }

// Encode computes the codeword (information bits followed by parity bits)
// for K information bits, one bit per byte. It uses the dual-diagonal
// back-substitution: p0 is the sum of all partial syndromes, then each
// parity block follows from the previous row.
func (c *Code) Encode(info []byte) []byte {
	if len(info) != c.K() {
		panic("ldpc: wrong info length")
	}
	Z, mb, kb := c.Z, c.mb, c.nb-c.mb
	cw := make([]byte, c.N())
	copy(cw, info)

	// Partial syndromes λ_i = Σ_j σ^{s(i,j)} m_j over the information part.
	lambda := make([][]byte, mb)
	for i := range lambda {
		lambda[i] = make([]byte, Z)
		for j := 0; j < kb; j++ {
			s := c.shifts[i][j]
			if s < 0 {
				continue
			}
			for r := 0; r < Z; r++ {
				lambda[i][r] ^= info[j*Z+(r+s)%Z]
			}
		}
	}

	p := make([][]byte, mb)
	// p0 = Σ λ_i: the weight-3 column contributes σ^x+σ^0+σ^x = σ^0 and
	// every dual-diagonal column cancels.
	p[0] = make([]byte, Z)
	for i := 0; i < mb; i++ {
		for r := 0; r < Z; r++ {
			p[0][r] ^= lambda[i][r]
		}
	}
	const x = 1
	sigmaXP0 := make([]byte, Z)
	for r := 0; r < Z; r++ {
		sigmaXP0[r] = p[0][(r+x)%Z]
	}
	// Row 0: λ_0 + σ^x p0 + p1 = 0.
	p[1] = make([]byte, Z)
	for r := 0; r < Z; r++ {
		p[1][r] = lambda[0][r] ^ sigmaXP0[r]
	}
	// Rows 1..mb-2: λ_i + p_i + p_{i+1} (+ p0 at the middle row) = 0.
	for i := 1; i < mb-1; i++ {
		p[i+1] = make([]byte, Z)
		for r := 0; r < Z; r++ {
			b := lambda[i][r] ^ p[i][r]
			if i == mb/2 {
				b ^= p[0][r]
			}
			p[i+1][r] = b
		}
	}
	for i := 0; i < mb; i++ {
		copy(cw[(kb+i)*Z:], p[i])
	}
	return cw
}

// SyndromeOK reports whether bits is a valid codeword (all parity checks
// satisfied).
func (c *Code) SyndromeOK(bits []byte) bool {
	for _, vars := range c.checkVars {
		var s byte
		for _, v := range vars {
			s ^= bits[v] & 1
		}
		if s != 0 {
			return false
		}
	}
	return true
}

// Decode runs floating-point sum-product belief propagation for up to
// iters iterations over channel LLRs (positive means bit 0 likelier). It
// returns the hard-decision codeword and whether all checks are satisfied.
func (c *Code) Decode(llr []float64, iters int) ([]byte, bool) {
	if len(llr) != c.N() {
		panic("ldpc: wrong LLR length")
	}
	// Edge arrays: per check, per incident variable, the v→c and c→v
	// messages.
	nChecks := len(c.checkVars)
	v2c := make([][]float64, nChecks)
	c2v := make([][]float64, nChecks)
	for ci, vars := range c.checkVars {
		v2c[ci] = make([]float64, len(vars))
		c2v[ci] = make([]float64, len(vars))
		for ei, v := range vars {
			v2c[ci][ei] = llr[v]
		}
	}
	posterior := make([]float64, c.N())
	hard := make([]byte, c.N())

	for iter := 0; iter < iters; iter++ {
		// Check update: tanh rule with exclusion.
		for ci, vars := range c.checkVars {
			// Product of tanh(m/2); handle zeros by counting.
			prod := 1.0
			zeros := 0
			zeroIdx := -1
			for ei := range vars {
				t := math.Tanh(v2c[ci][ei] / 2)
				if t == 0 {
					zeros++
					zeroIdx = ei
					continue
				}
				prod *= t
			}
			for ei := range vars {
				var ex float64
				switch {
				case zeros == 0:
					ex = prod / math.Tanh(v2c[ci][ei]/2)
				case zeros == 1 && ei == zeroIdx:
					ex = prod
				default:
					ex = 0
				}
				if ex > 0.999999999999 {
					ex = 0.999999999999
				} else if ex < -0.999999999999 {
					ex = -0.999999999999
				}
				c2v[ci][ei] = 2 * math.Atanh(ex)
			}
		}
		// Variable update: posteriors then extrinsic v→c.
		for v := range posterior {
			posterior[v] = llr[v]
		}
		for ci, vars := range c.checkVars {
			for ei, v := range vars {
				posterior[v] += c2v[ci][ei]
			}
		}
		for ci, vars := range c.checkVars {
			for ei, v := range vars {
				v2c[ci][ei] = posterior[v] - c2v[ci][ei]
			}
		}
		for v := range hard {
			if posterior[v] < 0 {
				hard[v] = 1
			} else {
				hard[v] = 0
			}
		}
		if c.SyndromeOK(hard) {
			return hard, true
		}
	}
	return hard, c.SyndromeOK(hard)
}
