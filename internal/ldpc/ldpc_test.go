package ldpc

import (
	"math"
	"math/rand"
	"testing"

	"spinal/internal/channel"
	"spinal/internal/modem"
)

func TestDimensions(t *testing.T) {
	cases := []struct {
		rate string
		k    int
	}{
		{Rate12, 324}, {Rate23, 432}, {Rate34, 486}, {Rate56, 540},
	}
	for _, c := range cases {
		code := NewQC(c.rate, 27, 1)
		if code.N() != 648 {
			t.Errorf("rate %s: N = %d, want 648", c.rate, code.N())
		}
		if code.K() != c.k {
			t.Errorf("rate %s: K = %d, want %d", c.rate, code.K(), c.k)
		}
	}
}

func TestEncodeValidCodeword(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, rate := range Rates {
		code := NewQC(rate, 27, 3)
		for trial := 0; trial < 20; trial++ {
			info := make([]byte, code.K())
			for i := range info {
				info[i] = byte(rng.Intn(2))
			}
			cw := code.Encode(info)
			if !code.SyndromeOK(cw) {
				t.Fatalf("rate %s trial %d: encoder output fails parity", rate, trial)
			}
			for i := range info {
				if cw[i] != info[i] {
					t.Fatalf("rate %s: encoder not systematic", rate)
				}
			}
		}
	}
}

func TestLinearity(t *testing.T) {
	// Codewords of m1, m2 and m1⊕m2 must satisfy cw1⊕cw2 = cw(m1⊕m2).
	code := NewQC(Rate12, 27, 5)
	rng := rand.New(rand.NewSource(4))
	m1 := make([]byte, code.K())
	m2 := make([]byte, code.K())
	m3 := make([]byte, code.K())
	for i := range m1 {
		m1[i] = byte(rng.Intn(2))
		m2[i] = byte(rng.Intn(2))
		m3[i] = m1[i] ^ m2[i]
	}
	cw1, cw2, cw3 := code.Encode(m1), code.Encode(m2), code.Encode(m3)
	for i := range cw1 {
		if cw1[i]^cw2[i] != cw3[i] {
			t.Fatalf("linearity fails at bit %d", i)
		}
	}
}

func TestZeroMessageZeroCodeword(t *testing.T) {
	code := NewQC(Rate34, 27, 6)
	cw := code.Encode(make([]byte, code.K()))
	for i, b := range cw {
		if b != 0 {
			t.Fatalf("zero message produced nonzero bit %d", i)
		}
	}
}

func TestDecodeNoiseless(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, rate := range Rates {
		code := NewQC(rate, 27, 8)
		info := make([]byte, code.K())
		for i := range info {
			info[i] = byte(rng.Intn(2))
		}
		cw := code.Encode(info)
		llr := make([]float64, code.N())
		for i, b := range cw {
			if b == 0 {
				llr[i] = 20
			} else {
				llr[i] = -20
			}
		}
		got, ok := code.Decode(llr, 40)
		if !ok {
			t.Fatalf("rate %s: noiseless decode did not converge", rate)
		}
		for i := range cw {
			if got[i] != cw[i] {
				t.Fatalf("rate %s: noiseless decode wrong at bit %d", rate, i)
			}
		}
	}
}

// bpsk transmits a codeword over AWGN with BPSK (one bit per real
// dimension, i.e. 2 bits per complex symbol) and returns bit LLRs.
func bpskLLRs(cw []byte, snrDB float64, seed int64) []float64 {
	ch := channel.NewAWGN(snrDB, seed)
	syms := make([]complex128, (len(cw)+1)/2)
	const a = 0.7071067811865476
	for i := range syms {
		re, im := a, a
		if cw[2*i] == 1 {
			re = -a
		}
		if 2*i+1 < len(cw) && cw[2*i+1] == 1 {
			im = -a
		}
		syms[i] = complex(re, im)
	}
	y := ch.Transmit(syms)
	sigma2 := ch.NoiseVar() / 2
	llr := make([]float64, len(cw))
	for i := range cw {
		var v float64
		if i%2 == 0 {
			v = real(y[i/2])
		} else {
			v = imag(y[i/2])
		}
		llr[i] = 2 * a * v / sigma2
	}
	return llr
}

func TestDecodeCorrectsNoise(t *testing.T) {
	// Rate-1/2 BPSK at 4 dB (Eb/N0 ≈ 7 dB effective) should decode nearly
	// always; at -4 dB it should nearly always fail.
	code := NewQC(Rate12, 27, 9)
	rng := rand.New(rand.NewSource(10))
	run := func(snrDB float64) int {
		ok := 0
		for trial := 0; trial < 10; trial++ {
			info := make([]byte, code.K())
			for i := range info {
				info[i] = byte(rng.Intn(2))
			}
			cw := code.Encode(info)
			llr := bpskLLRs(cw, snrDB, int64(trial)+100)
			got, conv := code.Decode(llr, 40)
			if !conv {
				continue
			}
			match := true
			for i := 0; i < code.K(); i++ {
				if got[i] != cw[i] {
					match = false
					break
				}
			}
			if match {
				ok++
			}
		}
		return ok
	}
	if ok := run(4); ok < 9 {
		t.Errorf("rate 1/2 BPSK at 4 dB: only %d/10 decoded", ok)
	}
	if ok := run(-4); ok > 2 {
		t.Errorf("rate 1/2 BPSK at -4 dB: %d/10 decoded (too good to be true)", ok)
	}
}

func TestDecodeWithQAMDemap(t *testing.T) {
	// End-to-end: rate-2/3 over QAM-16 through the soft demapper at 14 dB.
	code := NewQC(Rate23, 27, 11)
	qam := modem.NewQAM(16)
	rng := rand.New(rand.NewSource(12))
	ok := 0
	for trial := 0; trial < 5; trial++ {
		info := make([]byte, code.K())
		for i := range info {
			info[i] = byte(rng.Intn(2))
		}
		cw := code.Encode(info)
		syms := qam.Modulate(cw)
		ch := channel.NewAWGN(14, int64(trial)+200)
		llr := qam.DemapSoft(ch.Transmit(syms), ch.NoiseVar(), nil)
		got, conv := code.Decode(llr, 40)
		if !conv {
			continue
		}
		match := true
		for i := 0; i < code.K(); i++ {
			if got[i] != cw[i] {
				match = false
			}
		}
		if match {
			ok++
		}
	}
	if ok < 4 {
		t.Fatalf("QAM-16 rate-2/3 at 14 dB: only %d/5 decoded", ok)
	}
}

func TestGraphDegrees(t *testing.T) {
	code := NewQC(Rate12, 27, 13)
	// Every check must have degree ≥ 2 for BP to be meaningful.
	for ci, vars := range code.checkVars {
		if len(vars) < 2 {
			t.Fatalf("check %d has degree %d", ci, len(vars))
		}
	}
	// Variable degrees: information bits ≥ 3 by construction.
	varDeg := make([]int, code.N())
	for _, vars := range code.checkVars {
		for _, v := range vars {
			varDeg[v]++
		}
	}
	for v := 0; v < code.K(); v++ {
		if varDeg[v] < 3 {
			t.Fatalf("info variable %d has degree %d", v, varDeg[v])
		}
	}
}

func TestDeterministicConstruction(t *testing.T) {
	a := NewQC(Rate12, 27, 42)
	b := NewQC(Rate12, 27, 42)
	for i := range a.shifts {
		for j := range a.shifts[i] {
			if a.shifts[i][j] != b.shifts[i][j] {
				t.Fatal("same seed gave different codes")
			}
		}
	}
}

func TestDecodeSoftInputMatters(t *testing.T) {
	// Erasing half the LLRs (setting them to 0) must still decode at high
	// SNR for rate 1/2 — the decoder genuinely uses soft information.
	code := NewQC(Rate12, 27, 14)
	rng := rand.New(rand.NewSource(15))
	info := make([]byte, code.K())
	for i := range info {
		info[i] = byte(rng.Intn(2))
	}
	cw := code.Encode(info)
	llr := make([]float64, code.N())
	for i, b := range cw {
		v := 8.0
		if b == 1 {
			v = -8
		}
		if rng.Float64() < 0.25 {
			v = 0 // erased
		}
		llr[i] = v
	}
	got, ok := code.Decode(llr, 40)
	if !ok {
		t.Fatal("decode with erasures did not converge")
	}
	for i := range cw {
		if got[i] != cw[i] {
			t.Fatalf("erasure decode wrong at %d", i)
		}
	}
	_ = math.Pi
}

func BenchmarkBPDecode(b *testing.B) {
	code := NewQC(Rate12, 27, 9)
	rng := rand.New(rand.NewSource(50))
	info := make([]byte, code.K())
	for i := range info {
		info[i] = byte(rng.Intn(2))
	}
	cw := code.Encode(info)
	llr := bpskLLRs(cw, 4, 51)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		code.Decode(llr, 40)
	}
}

func BenchmarkEncode(b *testing.B) {
	code := NewQC(Rate12, 27, 9)
	info := make([]byte, code.K())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		code.Encode(info)
	}
}
