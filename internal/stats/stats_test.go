package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRunningMoments(t *testing.T) {
	var r Running
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		r.Add(x)
	}
	if r.N() != len(xs) {
		t.Fatalf("N = %d, want %d", r.N(), len(xs))
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Errorf("mean = %g, want 5", r.Mean())
	}
	// Unbiased variance of this classic dataset is 32/7.
	if math.Abs(r.Var()-32.0/7.0) > 1e-12 {
		t.Errorf("var = %g, want %g", r.Var(), 32.0/7.0)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("min/max = %g/%g, want 2/9", r.Min(), r.Max())
	}
}

func TestRunningMatchesDirect(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		var r Running
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
			r.Add(xs[i])
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		mean := sum / float64(n)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		v := ss / float64(n-1)
		return math.Abs(r.Mean()-mean) < 1e-9 && math.Abs(r.Var()-v) < 1e-6
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if r.Mean() != 0 || r.Var() != 0 || r.N() != 0 {
		t.Fatal("zero value not usable")
	}
	if !math.IsInf(r.CI95(), 1) {
		t.Fatal("CI95 of empty should be +Inf")
	}
}

func TestCDF(t *testing.T) {
	var c CDF
	for i := 1; i <= 100; i++ {
		c.Add(float64(i))
	}
	if got := c.At(50); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("At(50) = %g, want 0.5", got)
	}
	if got := c.At(0); got != 0 {
		t.Errorf("At(0) = %g, want 0", got)
	}
	if got := c.At(100); got != 1 {
		t.Errorf("At(100) = %g, want 1", got)
	}
	if got := c.Percentile(50); got != 50 {
		t.Errorf("P50 = %g, want 50", got)
	}
	if got := c.Percentile(100); got != 100 {
		t.Errorf("P100 = %g, want 100", got)
	}
	if got := c.Percentile(0); got != 1 {
		t.Errorf("P0 = %g, want 1", got)
	}
}

func TestCDFMonotone(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var c CDF
		for i := 0; i < 200; i++ {
			c.Add(rng.NormFloat64())
		}
		prev := -1.0
		for x := -3.0; x <= 3.0; x += 0.1 {
			f := c.At(x)
			if f < prev || f < 0 || f > 1 {
				return false
			}
			prev = f
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCDFPoints(t *testing.T) {
	var c CDF
	for i := 0; i < 1000; i++ {
		c.Add(float64(i))
	}
	pts := c.Points(11)
	if len(pts) != 11 {
		t.Fatalf("got %d points, want 11", len(pts))
	}
	if pts[0][0] != 0 || pts[len(pts)-1][0] != 999 {
		t.Errorf("endpoints wrong: %v %v", pts[0], pts[len(pts)-1])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][1] < pts[i-1][1] {
			t.Fatal("points not monotone")
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for i := 0; i < 10; i++ {
		h.Add(float64(i) + 0.5)
	}
	h.Add(-1)
	h.Add(11)
	for i, c := range h.Counts {
		if c != 1 {
			t.Errorf("bin %d = %d, want 1", i, c)
		}
	}
	if h.Total() != 12 {
		t.Errorf("total = %d, want 12", h.Total())
	}
	if h.String() == "" {
		t.Error("empty String()")
	}
}

func TestHistogramEdges(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(0)        // lowest bin
	h.Add(0.999999) // highest bin
	h.Add(1)        // over
	if h.Counts[0] != 1 || h.Counts[3] != 1 {
		t.Fatalf("edge binning wrong: %v", h.Counts)
	}
	if h.Total() != 3 {
		t.Fatalf("total = %d", h.Total())
	}
}
