// Package stats provides the small statistical toolkit used by the
// experiment harness: running means, empirical CDFs, percentiles and
// histograms for the figures in §8 of the paper.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Running accumulates a stream of float64 observations and reports moments
// without storing the samples (Welford's algorithm).
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates an observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N reports the number of observations.
func (r *Running) N() int { return r.n }

// Mean reports the sample mean (0 with no observations).
func (r *Running) Mean() float64 { return r.mean }

// Var reports the unbiased sample variance.
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// Stddev reports the sample standard deviation.
func (r *Running) Stddev() float64 { return math.Sqrt(r.Var()) }

// Min reports the smallest observation.
func (r *Running) Min() float64 { return r.min }

// Max reports the largest observation.
func (r *Running) Max() float64 { return r.max }

// CI95 reports the half-width of a normal-approximation 95% confidence
// interval on the mean.
func (r *Running) CI95() float64 {
	if r.n < 2 {
		return math.Inf(1)
	}
	return 1.96 * r.Stddev() / math.Sqrt(float64(r.n))
}

// CDF is an empirical cumulative distribution function over collected
// samples (used for Figure 8-11).
type CDF struct {
	samples []float64
	sorted  bool
}

// Add appends a sample.
func (c *CDF) Add(x float64) {
	c.samples = append(c.samples, x)
	c.sorted = false
}

// N reports the number of samples.
func (c *CDF) N() int { return len(c.samples) }

func (c *CDF) sort() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// At evaluates the empirical CDF at x: the fraction of samples ≤ x.
func (c *CDF) At(x float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.sort()
	i := sort.SearchFloat64s(c.samples, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.samples))
}

// Percentile returns the p-th percentile (p in [0,100]) by nearest-rank.
func (c *CDF) Percentile(p float64) float64 {
	if len(c.samples) == 0 {
		return math.NaN()
	}
	c.sort()
	if p <= 0 {
		return c.samples[0]
	}
	if p >= 100 {
		return c.samples[len(c.samples)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(c.samples))))
	if rank < 1 {
		rank = 1
	}
	return c.samples[rank-1]
}

// Points returns up to n evenly spaced (x, F(x)) pairs for plotting.
func (c *CDF) Points(n int) [][2]float64 {
	if len(c.samples) == 0 || n <= 0 {
		return nil
	}
	c.sort()
	if n > len(c.samples) {
		n = len(c.samples)
	}
	pts := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		idx := i * (len(c.samples) - 1) / max(n-1, 1)
		x := c.samples[idx]
		pts = append(pts, [2]float64{x, float64(idx+1) / float64(len(c.samples))})
	}
	return pts
}

// Histogram counts samples into uniform-width bins over [lo, hi).
type Histogram struct {
	Lo, Hi float64
	Counts []int
	under  int
	over   int
}

// NewHistogram creates a histogram with the given bin count over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// Add counts one sample.
func (h *Histogram) Add(x float64) {
	if x < h.Lo {
		h.under++
		return
	}
	if x >= h.Hi {
		h.over++
		return
	}
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i == len(h.Counts) { // guard against FP edge
		i--
	}
	h.Counts[i]++
}

// Total reports the number of samples added, including out-of-range ones.
func (h *Histogram) Total() int {
	t := h.under + h.over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// String renders a compact textual summary.
func (h *Histogram) String() string {
	return fmt.Sprintf("hist[%g,%g) bins=%d n=%d under=%d over=%d",
		h.Lo, h.Hi, len(h.Counts), h.Total(), h.under, h.over)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
