package channel

import (
	"bufio"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"
)

// Model is the unified interface of the time-varying channel tier: a
// per-symbol Transmit that advances the channel's internal state, plus an
// observable StateDB reporting the instantaneous effective SNR in dB.
// Fixed channels (AWGN) implement it trivially; the Gilbert–Elliott,
// random-walk and trace-driven channels expose the SNR trajectory a
// rateless link actually experiences, so scenario drivers can log the
// conditions each flow saw and rate policies can be judged against them.
//
// StateDB reports the channel's current state — the SNR in effect for the
// most recently transmitted symbol (channels that advance state lazily
// may move on to a new state only when the next symbol is transmitted).
// Calling it is free of side effects.
type Model interface {
	Transmit(x []complex128) []complex128
	StateDB() float64
}

// Static channels satisfy Model too.
var (
	_ Model = (*AWGN)(nil)
	_ Model = (*GilbertElliott)(nil)
	_ Model = (*Walk)(nil)
	_ Model = (*Trace)(nil)
)

// StateDB reports the AWGN channel's fixed SNR in dB.
func (c *AWGN) StateDB() float64 { return -10 * math.Log10(c.noiseVar) }

// StateDB reports the SNR of the Gilbert–Elliott channel's current Markov
// state.
func (c *GilbertElliott) StateDB() float64 {
	if c.bad {
		return -10 * math.Log10(c.badVar)
	}
	return -10 * math.Log10(c.goodVar)
}

// Walk is a bounded Markov SNR random walk over AWGN: every Interval
// symbols the SNR takes a ±StepDB step, reflected into [MinDB, MaxDB].
// It models slow mobility — a station drifting through coverage — at time
// scales a single rateless message can straddle.
type Walk struct {
	rng      *rand.Rand
	snrDB    float64
	minDB    float64
	maxDB    float64
	stepDB   float64
	interval int
	left     int // symbols until the next step
}

// NewWalk creates a random-walk channel starting at startDB, stepping by
// ±stepDB every interval symbols, bounded to [minDB, maxDB].
func NewWalk(startDB, minDB, maxDB, stepDB float64, interval int, seed int64) *Walk {
	if minDB > maxDB {
		panic("channel: walk bounds inverted")
	}
	if stepDB < 0 {
		panic("channel: negative walk step")
	}
	if interval < 1 {
		panic("channel: walk interval must be ≥ 1 symbol")
	}
	return &Walk{
		rng:      rand.New(rand.NewSource(seed)),
		snrDB:    clampDB(startDB, minDB, maxDB),
		minDB:    minDB,
		maxDB:    maxDB,
		stepDB:   stepDB,
		interval: interval,
		left:     interval,
	}
}

// StateDB reports the walk's current SNR in dB.
func (c *Walk) StateDB() float64 { return c.snrDB }

// Transmit adds Gaussian noise at the walk's current SNR, advancing the
// walk per symbol. State persists across calls.
func (c *Walk) Transmit(x []complex128) []complex128 {
	y := make([]complex128, len(x))
	sd := math.Sqrt(math.Pow(10, -c.snrDB/10) / 2)
	for i, s := range x {
		if c.left == 0 {
			step := c.stepDB
			if c.rng.Float64() < 0.5 {
				step = -step
			}
			c.snrDB = clampDB(c.snrDB+step, c.minDB, c.maxDB)
			c.left = c.interval
			sd = math.Sqrt(math.Pow(10, -c.snrDB/10) / 2)
		}
		c.left--
		y[i] = s + complex(c.rng.NormFloat64()*sd, c.rng.NormFloat64()*sd)
	}
	return y
}

func clampDB(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// TraceSegment is one piece of an SNR-vs-time series: the channel holds
// SNRdB for Symbols channel symbols.
type TraceSegment struct {
	Symbols int
	SNRdB   float64
}

// Trace replays a recorded SNR-vs-time series over AWGN. The SNR
// trajectory is a pure function of symbol position — the seed drives only
// the noise realization, so the state sequence is identical across seeds
// and every replay is reproducible. The trace wraps around when exhausted.
type Trace struct {
	rng  *rand.Rand
	segs []TraceSegment
	seg  int
	left int // symbols left in the current segment
}

// NewTrace creates a trace-driven channel from segments (copied) and a
// noise seed.
func NewTrace(segs []TraceSegment, seed int64) *Trace {
	if len(segs) == 0 {
		panic("channel: empty SNR trace")
	}
	cp := make([]TraceSegment, len(segs))
	copy(cp, segs)
	for _, s := range cp {
		if s.Symbols < 1 {
			panic("channel: trace segment must span ≥ 1 symbol")
		}
	}
	return &Trace{
		rng:  rand.New(rand.NewSource(seed)),
		segs: cp,
		left: cp[0].Symbols,
	}
}

// StateDB reports the SNR of the trace's current position.
func (c *Trace) StateDB() float64 { return c.segs[c.seg].SNRdB }

// MeanDB reports the symbol-weighted mean SNR of one full trace period —
// the long-run estimate a sender with only historical knowledge would use.
func (c *Trace) MeanDB() float64 {
	var sum float64
	var n int
	for _, s := range c.segs {
		sum += s.SNRdB * float64(s.Symbols)
		n += s.Symbols
	}
	return sum / float64(n)
}

// Transmit adds Gaussian noise at the trace's current SNR, advancing the
// replay position per symbol (wrapping at the end). State persists across
// calls.
func (c *Trace) Transmit(x []complex128) []complex128 {
	y := make([]complex128, len(x))
	sd := math.Sqrt(math.Pow(10, -c.segs[c.seg].SNRdB/10) / 2)
	for i, s := range x {
		if c.left == 0 {
			c.seg = (c.seg + 1) % len(c.segs)
			c.left = c.segs[c.seg].Symbols
			sd = math.Sqrt(math.Pow(10, -c.segs[c.seg].SNRdB/10) / 2)
		}
		c.left--
		y[i] = s + complex(c.rng.NormFloat64()*sd, c.rng.NormFloat64()*sd)
	}
	return y
}

// ParseTrace parses an SNR trace: one "<symbols> <snr_dB>" pair per line,
// with blank lines and #-comments ignored.
func ParseTrace(r *bufio.Scanner) ([]TraceSegment, error) {
	var segs []TraceSegment
	line := 0
	for r.Scan() {
		line++
		text := strings.TrimSpace(r.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, fmt.Errorf("channel: trace line %d: want \"<symbols> <snr_dB>\", got %q", line, text)
		}
		n, err := strconv.Atoi(fields[0])
		if err != nil || n < 1 {
			return nil, fmt.Errorf("channel: trace line %d: bad symbol count %q", line, fields[0])
		}
		snr, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("channel: trace line %d: bad SNR %q", line, fields[1])
		}
		segs = append(segs, TraceSegment{Symbols: n, SNRdB: snr})
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("channel: trace holds no segments")
	}
	return segs, nil
}

// LoadTrace reads an SNR trace file (see ParseTrace for the format).
func LoadTrace(path string) ([]TraceSegment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseTrace(bufio.NewScanner(f))
}

// NewTraceFromFile loads path and builds a trace-driven channel.
func NewTraceFromFile(path string, seed int64) (*Trace, error) {
	segs, err := LoadTrace(path)
	if err != nil {
		return nil, err
	}
	return NewTrace(segs, seed), nil
}
