package channel

import (
	"math"
	"testing"
)

func TestAWGNNoisePower(t *testing.T) {
	for _, snrDB := range []float64{0, 10, 20} {
		c := NewAWGN(snrDB, 42)
		n := 200000
		x := make([]complex128, n)
		y := c.Transmit(x)
		var p float64
		for _, s := range y {
			p += real(s)*real(s) + imag(s)*imag(s)
		}
		p /= float64(n)
		want := math.Pow(10, -snrDB/10)
		if math.Abs(p-want)/want > 0.03 {
			t.Errorf("snr=%g dB: measured noise power %g, want %g", snrDB, p, want)
		}
	}
}

func TestAWGNZeroMean(t *testing.T) {
	c := NewAWGN(0, 1)
	x := make([]complex128, 100000)
	y := c.Transmit(x)
	var re, im float64
	for _, s := range y {
		re += real(s)
		im += imag(s)
	}
	re /= float64(len(y))
	im /= float64(len(y))
	if math.Abs(re) > 0.02 || math.Abs(im) > 0.02 {
		t.Errorf("noise mean (%g, %g) not ≈ 0", re, im)
	}
}

func TestAWGNPreservesSignal(t *testing.T) {
	c := NewAWGN(60, 3) // essentially noiseless
	x := []complex128{1 + 2i, -3 + 0.5i}
	y := c.Transmit(x)
	for i := range x {
		if d := y[i] - x[i]; math.Hypot(real(d), imag(d)) > 0.01 {
			t.Errorf("symbol %d moved too much at 60 dB", i)
		}
	}
}

func TestAWGNDeterministic(t *testing.T) {
	x := []complex128{1, 1i, -1, -1i}
	a := NewAWGN(5, 99).Transmit(x)
	b := NewAWGN(5, 99).Transmit(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different noise")
		}
	}
	c := NewAWGN(5, 100).Transmit(x)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical noise")
	}
}

func TestBSCFlipRate(t *testing.T) {
	for _, p := range []float64{0, 0.05, 0.3} {
		c := NewBSC(p, 7)
		n := 100000
		bits := make([]byte, n)
		out := c.Transmit(bits)
		flips := 0
		for _, b := range out {
			if b == 1 {
				flips++
			}
		}
		got := float64(flips) / float64(n)
		if math.Abs(got-p) > 0.01 {
			t.Errorf("p=%g: flip rate %g", p, got)
		}
	}
}

func TestBSCPreservesValues(t *testing.T) {
	c := NewBSC(0.5, 11)
	out := c.Transmit([]byte{0, 1, 0, 1, 1})
	for _, b := range out {
		if b != 0 && b != 1 {
			t.Fatal("BSC output not binary")
		}
	}
}

func TestRayleighCoherence(t *testing.T) {
	c := NewRayleigh(20, 10, 5)
	x := make([]complex128, 100)
	_, h := c.Transmit(x)
	for i := 0; i < 100; i += 10 {
		for j := 1; j < 10; j++ {
			if h[i+j] != h[i] {
				t.Fatalf("h changed within coherence block at %d", i+j)
			}
		}
	}
	changes := 0
	for i := 10; i < 100; i += 10 {
		if h[i] != h[i-10] {
			changes++
		}
	}
	if changes < 8 {
		t.Fatalf("h barely changes across blocks: %d/9", changes)
	}
}

func TestRayleighUnitAveragePower(t *testing.T) {
	c := NewRayleigh(100, 1, 13) // noiseless; h changes every symbol
	x := make([]complex128, 200000)
	for i := range x {
		x[i] = 1
	}
	y, h := c.Transmit(x)
	var hp float64
	for i := range y {
		hp += real(h[i])*real(h[i]) + imag(h[i])*imag(h[i])
	}
	hp /= float64(len(h))
	if math.Abs(hp-1) > 0.02 {
		t.Errorf("E|h|² = %g, want 1", hp)
	}
}

func TestRayleighStateSpansCalls(t *testing.T) {
	// Coherence blocks must continue across Transmit calls.
	c := NewRayleigh(20, 8, 21)
	_, h1 := c.Transmit(make([]complex128, 4))
	_, h2 := c.Transmit(make([]complex128, 4))
	if h1[3] != h2[0] {
		t.Fatal("fading block did not persist across Transmit calls")
	}
}

func TestErasure(t *testing.T) {
	c := NewErasure(0.3, 17)
	n := 50000
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(float64(i), 0)
	}
	kept, idx := c.Transmit(x)
	if len(kept) != len(idx) {
		t.Fatal("kept/idx length mismatch")
	}
	got := 1 - float64(len(kept))/float64(n)
	if math.Abs(got-0.3) > 0.02 {
		t.Errorf("erasure rate %g, want 0.3", got)
	}
	for j, i := range idx {
		if kept[j] != x[i] {
			t.Fatal("erasure channel corrupted a delivered symbol")
		}
		if j > 0 && idx[j] <= idx[j-1] {
			t.Fatal("indices not strictly increasing")
		}
	}
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("BSC(-0.1)", func() { NewBSC(-0.1, 0) })
	mustPanic("BSC(1.5)", func() { NewBSC(1.5, 0) })
	mustPanic("Rayleigh tau=0", func() { NewRayleigh(10, 0, 0) })
	mustPanic("Erasure(2)", func() { NewErasure(2, 0) })
}

func TestMultipathUnitEnergy(t *testing.T) {
	c := NewMultipath([]complex128{3, 4i}, 100, 1) // will be normalized
	taps := c.Taps()
	var e float64
	for _, tap := range taps {
		e += real(tap)*real(tap) + imag(tap)*imag(tap)
	}
	if math.Abs(e-1) > 1e-12 {
		t.Fatalf("tap energy %g, want 1", e)
	}
}

func TestMultipathSingleTapIsAWGN(t *testing.T) {
	c := NewMultipath([]complex128{1}, 60, 2)
	x := []complex128{1 + 1i, -2, 3i}
	y := c.Transmit(x)
	for i := range x {
		if d := y[i] - x[i]; math.Hypot(real(d), imag(d)) > 0.01 {
			t.Fatal("single-tap channel should be near-identity at 60 dB")
		}
	}
}

func TestMultipathConvolution(t *testing.T) {
	c := NewMultipath([]complex128{1, 1}, 100, 3) // taps become (1,1)/√2
	x := []complex128{1, 0, 0, 1}
	y := c.Transmit(x)
	s := complex(1/math.Sqrt2, 0)
	want := []complex128{s, s, 0, s}
	for i := range want {
		if d := y[i] - want[i]; math.Hypot(real(d), imag(d)) > 0.01 {
			t.Fatalf("convolution wrong at %d: %v want %v", i, y[i], want[i])
		}
	}
}

func TestMultipathPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewMultipath(nil, 10, 0) },
		func() { NewMultipath([]complex128{0, 0}, 10, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic for bad multipath taps")
				}
			}()
			f()
		}()
	}
}

func TestGilbertElliottStateMix(t *testing.T) {
	// With pGB = pBG = 0.01 the stationary distribution is 50/50.
	c := NewGilbertElliott(25, 0, 0.01, 0.01, 4)
	c.Transmit(make([]complex128, 200000))
	if f := c.BadFraction(); math.Abs(f-0.5) > 0.05 {
		t.Fatalf("bad fraction %g, want ≈0.5", f)
	}
}

func TestGilbertElliottBursty(t *testing.T) {
	// Low transition probabilities must produce long runs: count state
	// flips via noise power proxy over a long block.
	c := NewGilbertElliott(40, -10, 0.002, 0.002, 5)
	y := c.Transmit(make([]complex128, 50000))
	flips := 0
	prevBad := false
	for i, v := range y {
		bad := real(v)*real(v)+imag(v)*imag(v) > 0.5 // crude state guess
		if i > 0 && bad != prevBad {
			flips++
		}
		prevBad = bad
	}
	// With p=0.002 expect ≈200 true flips; the noisy proxy inflates the
	// count, but iid states would give ≈25000.
	if flips > 10000 {
		t.Fatalf("channel not bursty: %d flips", flips)
	}
}

func TestGilbertElliottPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for bad probabilities")
		}
	}()
	NewGilbertElliott(10, 0, -0.1, 0.5, 0)
}
