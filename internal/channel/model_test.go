package channel

import (
	"bufio"
	"math"
	"strings"
	"testing"
)

// sampleStates transmits n symbols one at a time and records StateDB
// before each, yielding the per-symbol SNR trajectory.
func sampleStates(m Model, n int) []float64 {
	out := make([]float64, n)
	x := make([]complex128, 1)
	for i := range out {
		m.Transmit(x)
		out[i] = m.StateDB()
	}
	return out
}

func TestAWGNStateDB(t *testing.T) {
	for _, snr := range []float64{-3, 0, 7.5, 25} {
		if got := NewAWGN(snr, 1).StateDB(); math.Abs(got-snr) > 1e-9 {
			t.Errorf("AWGN(%g).StateDB() = %g", snr, got)
		}
	}
}

func TestGilbertElliottStateDBTracksState(t *testing.T) {
	c := NewGilbertElliott(20, 0, 0.05, 0.05, 9)
	states := sampleStates(c, 20000)
	var good, bad, other int
	for _, s := range states {
		switch {
		case math.Abs(s-20) < 1e-9:
			good++
		case math.Abs(s) < 1e-9:
			bad++
		default:
			other++
		}
	}
	if other > 0 {
		t.Fatalf("%d samples outside the two states", other)
	}
	if good == 0 || bad == 0 {
		t.Fatalf("states never alternated: good=%d bad=%d", good, bad)
	}
}

// TestGilbertElliottStationaryFraction is the Markov property check: over
// a long run the fraction of symbols in the Bad state must match the
// stationary distribution pGB/(pGB+pBG) of the two-state chain, for a
// table of parameter draws.
func TestGilbertElliottStationaryFraction(t *testing.T) {
	cases := []struct{ pGB, pBG float64 }{
		{0.01, 0.01},
		{0.02, 0.08},
		{0.004, 0.016},
		{0.05, 0.01},
		{0.001, 0.009},
	}
	for i, c := range cases {
		ch := NewGilbertElliott(20, 0, c.pGB, c.pBG, int64(100+i))
		ch.Transmit(make([]complex128, 400000))
		want := c.pGB / (c.pGB + c.pBG)
		if got := ch.BadFraction(); math.Abs(got-want) > 0.05 {
			t.Errorf("pGB=%g pBG=%g: bad fraction %.3f, want %.3f ± 0.05",
				c.pGB, c.pBG, got, want)
		}
	}
}

func TestWalkStaysBounded(t *testing.T) {
	c := NewWalk(10, 3, 25, 2, 5, 77)
	for _, s := range sampleStates(c, 20000) {
		if s < 3-1e-9 || s > 25+1e-9 {
			t.Fatalf("walk escaped bounds: %g", s)
		}
	}
}

func TestWalkMoves(t *testing.T) {
	c := NewWalk(10, 0, 30, 1, 4, 3)
	states := sampleStates(c, 5000)
	seen := map[float64]bool{}
	for _, s := range states {
		seen[s] = true
	}
	if len(seen) < 5 {
		t.Fatalf("walk visited only %d SNR levels in 5000 symbols", len(seen))
	}
	// Steps land only every interval symbols.
	changes := 0
	for i := 1; i < len(states); i++ {
		if states[i] != states[i-1] {
			changes++
		}
	}
	if changes > len(states)/4 {
		t.Fatalf("walk changed state %d times in %d symbols at interval 4", changes, len(states))
	}
}

func TestWalkDeterministic(t *testing.T) {
	a := sampleStates(NewWalk(12, 0, 24, 1, 3, 5), 1000)
	b := sampleStates(NewWalk(12, 0, 24, 1, 3, 5), 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different walks")
		}
	}
}

func TestWalkClampsStart(t *testing.T) {
	if got := NewWalk(99, 0, 20, 1, 1, 0).StateDB(); got != 20 {
		t.Fatalf("start not clamped: %g", got)
	}
}

// TestTraceStateIndependentOfSeed is the determinism property: the SNR
// trajectory of a trace replay is a pure function of symbol position —
// different seeds change the noise, never the state sequence.
func TestTraceStateIndependentOfSeed(t *testing.T) {
	segs := []TraceSegment{{5, 20}, {3, 6}, {7, 14}}
	a := sampleStates(NewTrace(segs, 1), 40)
	b := sampleStates(NewTrace(segs, 999), 40)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed changed trace state at symbol %d: %g vs %g", i, a[i], b[i])
		}
	}
	// And the trajectory follows the segments, wrapping at the end.
	want := []float64{20, 20, 20, 20, 20, 6, 6, 6, 14, 14, 14, 14, 14, 14, 14}
	for i := 0; i < 30; i++ {
		if a[i] != want[i%15] {
			t.Fatalf("symbol %d saw %g dB, want %g", i, a[i], want[i%15])
		}
	}
}

func TestTraceNoisePowerFollowsState(t *testing.T) {
	segs := []TraceSegment{{50000, 20}, {50000, 0}}
	c := NewTrace(segs, 11)
	y := c.Transmit(make([]complex128, 100000))
	var pHigh, pLow float64
	for i, s := range y {
		p := real(s)*real(s) + imag(s)*imag(s)
		if i < 50000 {
			pHigh += p
		} else {
			pLow += p
		}
	}
	pHigh /= 50000
	pLow /= 50000
	if math.Abs(pHigh-0.01) > 0.002 {
		t.Errorf("20 dB segment noise power %g, want 0.01", pHigh)
	}
	if math.Abs(pLow-1) > 0.05 {
		t.Errorf("0 dB segment noise power %g, want 1", pLow)
	}
}

func TestParseTrace(t *testing.T) {
	in := "# comment\n\n600 20\n  200 -3.5 \n"
	segs, err := ParseTrace(bufio.NewScanner(strings.NewReader(in)))
	if err != nil {
		t.Fatal(err)
	}
	want := []TraceSegment{{600, 20}, {200, -3.5}}
	if len(segs) != len(want) {
		t.Fatalf("parsed %d segments, want %d", len(segs), len(want))
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("segment %d = %+v, want %+v", i, segs[i], want[i])
		}
	}
}

func TestParseTraceErrors(t *testing.T) {
	for _, in := range []string{
		"",                  // no segments
		"# only comments\n", // no segments
		"600\n",             // missing SNR
		"x 20\n",            // bad count
		"0 20\n",            // non-positive count
		"10 zz\n",           // bad SNR
		"1 2 3\n",           // too many fields
	} {
		if _, err := ParseTrace(bufio.NewScanner(strings.NewReader(in))); err == nil {
			t.Errorf("ParseTrace(%q) succeeded, want error", in)
		}
	}
}

func TestLoadTraceTestdata(t *testing.T) {
	for _, name := range []string{"testdata/stepdown.trace", "testdata/fade.trace"} {
		segs, err := LoadTrace(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(segs) < 3 {
			t.Fatalf("%s: only %d segments", name, len(segs))
		}
	}
	if _, err := LoadTrace("testdata/does-not-exist.trace"); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestTracePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty trace":  func() { NewTrace(nil, 0) },
		"zero segment": func() { NewTrace([]TraceSegment{{0, 10}}, 0) },
		"walk bounds":  func() { NewWalk(10, 20, 0, 1, 1, 0) },
		"walk step":    func() { NewWalk(10, 0, 20, -1, 1, 0) },
		"walk tick":    func() { NewWalk(10, 0, 20, 1, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
