// Package channel implements the channel models of §8: complex AWGN,
// binary symmetric (BSC), Rayleigh block fading (§8.3) and a symbol
// erasure channel used by the framing tests.
//
// All channels are deterministic given their seed, so every experiment in
// the repository is reproducible. Signal power is normalized to 1 per
// complex symbol everywhere (see package modem), so for AWGN the total
// complex noise variance is 1/SNR.
package channel

import (
	"math"
	"math/rand"
)

// AWGN is a complex additive white Gaussian noise channel at a fixed SNR.
type AWGN struct {
	rng      *rand.Rand
	noiseVar float64 // total complex noise variance (both dimensions)
}

// NewAWGN creates an AWGN channel with the given SNR in dB and seed.
func NewAWGN(snrDB float64, seed int64) *AWGN {
	snr := math.Pow(10, snrDB/10)
	return &AWGN{rng: rand.New(rand.NewSource(seed)), noiseVar: 1 / snr}
}

// NoiseVar reports the total complex noise variance σ² (the per-dimension
// variance is σ²/2).
func (c *AWGN) NoiseVar() float64 { return c.noiseVar }

// Transmit adds independent Gaussian noise to each symbol, returning a new
// slice.
func (c *AWGN) Transmit(x []complex128) []complex128 {
	y := make([]complex128, len(x))
	sd := math.Sqrt(c.noiseVar / 2)
	for i, s := range x {
		y[i] = s + complex(c.rng.NormFloat64()*sd, c.rng.NormFloat64()*sd)
	}
	return y
}

// BSC is a binary symmetric channel with crossover probability P.
type BSC struct {
	rng *rand.Rand
	p   float64
}

// NewBSC creates a BSC with crossover probability p and seed.
func NewBSC(p float64, seed int64) *BSC {
	if p < 0 || p > 1 {
		panic("channel: BSC crossover probability out of range")
	}
	return &BSC{rng: rand.New(rand.NewSource(seed)), p: p}
}

// P reports the crossover probability.
func (c *BSC) P() float64 { return c.p }

// Transmit flips each bit independently with probability P.
func (c *BSC) Transmit(bits []byte) []byte {
	out := make([]byte, len(bits))
	for i, b := range bits {
		if c.rng.Float64() < c.p {
			out[i] = b ^ 1
		} else {
			out[i] = b & 1
		}
	}
	return out
}

// Rayleigh is the §8.3 Rayleigh block-fading channel: y = h·x + n, where
// n is complex Gaussian noise of power σ² and h is redrawn every Tau
// symbols with uniform phase and Rayleigh magnitude (E|h|² = 1).
type Rayleigh struct {
	rng      *rand.Rand
	noiseVar float64
	tau      int
	h        complex128
	left     int // symbols until next h redraw
}

// NewRayleigh creates a Rayleigh fading channel with average SNR snrDB,
// coherence time tau (in symbols) and seed.
func NewRayleigh(snrDB float64, tau int, seed int64) *Rayleigh {
	if tau < 1 {
		panic("channel: coherence time must be ≥ 1 symbol")
	}
	snr := math.Pow(10, snrDB/10)
	return &Rayleigh{
		rng:      rand.New(rand.NewSource(seed)),
		noiseVar: 1 / snr,
		tau:      tau,
	}
}

// NoiseVar reports the total complex noise variance.
func (c *Rayleigh) NoiseVar() float64 { return c.noiseVar }

// Transmit applies block fading and noise. It returns the received symbols
// and the per-symbol fading coefficients actually used, which the caller
// may give to a decoder (Fig 8-4) or withhold (Fig 8-5).
func (c *Rayleigh) Transmit(x []complex128) (y, h []complex128) {
	y = make([]complex128, len(x))
	h = make([]complex128, len(x))
	sd := math.Sqrt(c.noiseVar / 2)
	for i, s := range x {
		if c.left == 0 {
			// Complex Gaussian with unit total variance has Rayleigh
			// magnitude and uniform phase.
			c.h = complex(c.rng.NormFloat64()/math.Sqrt2, c.rng.NormFloat64()/math.Sqrt2)
			c.left = c.tau
		}
		c.left--
		h[i] = c.h
		y[i] = c.h*s + complex(c.rng.NormFloat64()*sd, c.rng.NormFloat64()*sd)
	}
	return y, h
}

// Multipath is a static frequency-selective channel: the transmitted
// sample stream is convolved with a fixed tap vector (normalized to unit
// energy) and AWGN is added. It models the indoor environments of the
// Appendix B over-the-air experiments; the OFDM PHY (internal/phy) turns
// it into flat per-subcarrier fading.
type Multipath struct {
	taps []complex128
	awgn *AWGN
}

// NewMultipath creates a multipath channel with the given taps (delay
// spread = len(taps)-1 samples) at snrDB. Taps are copied and normalized
// to unit total energy so receive SNR matches snrDB.
func NewMultipath(taps []complex128, snrDB float64, seed int64) *Multipath {
	if len(taps) == 0 {
		panic("channel: multipath needs at least one tap")
	}
	var e float64
	for _, t := range taps {
		e += real(t)*real(t) + imag(t)*imag(t)
	}
	if e == 0 {
		panic("channel: all-zero multipath taps")
	}
	norm := complex(1/math.Sqrt(e), 0)
	cp := make([]complex128, len(taps))
	for i, t := range taps {
		cp[i] = t * norm
	}
	return &Multipath{taps: cp, awgn: NewAWGN(snrDB, seed)}
}

// Taps returns a copy of the normalized tap vector.
func (c *Multipath) Taps() []complex128 {
	return append([]complex128(nil), c.taps...)
}

// NoiseVar reports the total complex noise variance.
func (c *Multipath) NoiseVar() float64 { return c.awgn.NoiseVar() }

// Transmit convolves the sample stream with the channel taps and adds
// noise. The output has the same length as the input (trailing channel
// memory is truncated; OFDM cyclic prefixes absorb the leading edge).
func (c *Multipath) Transmit(x []complex128) []complex128 {
	y := make([]complex128, len(x))
	for i := range x {
		var acc complex128
		for j, t := range c.taps {
			if i-j < 0 {
				break
			}
			acc += t * x[i-j]
		}
		y[i] = acc
	}
	return c.awgn.Transmit(y)
}

// GilbertElliott is a two-state Markov AWGN channel: a Good state with
// high SNR and a Bad state with low SNR (bursty interference), switching
// with the given per-symbol transition probabilities. It models the
// time-varying conditions of the paper's introduction at time scales a
// single message can straddle.
type GilbertElliott struct {
	rng          *rand.Rand
	goodVar      float64
	badVar       float64
	pGoodToBad   float64
	pBadToGood   float64
	bad          bool
	symbolsInBad int
	symbolsTotal int
}

// NewGilbertElliott creates the channel. goodSNRdB/badSNRdB are the two
// states' SNRs; pGB and pBG the per-symbol transition probabilities.
func NewGilbertElliott(goodSNRdB, badSNRdB, pGB, pBG float64, seed int64) *GilbertElliott {
	if pGB < 0 || pGB > 1 || pBG < 0 || pBG > 1 {
		panic("channel: transition probabilities out of range")
	}
	return &GilbertElliott{
		rng:        rand.New(rand.NewSource(seed)),
		goodVar:    math.Pow(10, -goodSNRdB/10),
		badVar:     math.Pow(10, -badSNRdB/10),
		pGoodToBad: pGB,
		pBadToGood: pBG,
	}
}

// Transmit adds state-dependent Gaussian noise, advancing the Markov
// state per symbol. State persists across calls.
func (c *GilbertElliott) Transmit(x []complex128) []complex128 {
	y := make([]complex128, len(x))
	for i, s := range x {
		if c.bad {
			if c.rng.Float64() < c.pBadToGood {
				c.bad = false
			}
		} else {
			if c.rng.Float64() < c.pGoodToBad {
				c.bad = true
			}
		}
		v := c.goodVar
		if c.bad {
			v = c.badVar
			c.symbolsInBad++
		}
		c.symbolsTotal++
		sd := math.Sqrt(v / 2)
		y[i] = s + complex(c.rng.NormFloat64()*sd, c.rng.NormFloat64()*sd)
	}
	return y
}

// BadFraction reports the fraction of transmitted symbols sent in the Bad
// state so far.
func (c *GilbertElliott) BadFraction() float64 {
	if c.symbolsTotal == 0 {
		return 0
	}
	return float64(c.symbolsInBad) / float64(c.symbolsTotal)
}

// Erasure drops symbols independently with probability P, modeling lost
// frames at the link layer. Transmit returns the surviving symbols and
// their original indices.
type Erasure struct {
	rng *rand.Rand
	p   float64
}

// NewErasure creates an erasure channel with loss probability p.
func NewErasure(p float64, seed int64) *Erasure {
	if p < 0 || p > 1 {
		panic("channel: erasure probability out of range")
	}
	return &Erasure{rng: rand.New(rand.NewSource(seed)), p: p}
}

// Transmit returns the delivered symbols along with their indices in x.
func (c *Erasure) Transmit(x []complex128) (kept []complex128, idx []int) {
	for i, s := range x {
		if c.rng.Float64() >= c.p {
			kept = append(kept, s)
			idx = append(idx, i)
		}
	}
	return kept, idx
}
