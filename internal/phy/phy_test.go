package phy

import (
	"bytes"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"spinal/internal/channel"
	"spinal/internal/core"
)

func randSyms(rng *rand.Rand, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.NormFloat64(), rng.NormFloat64()) * complex(math.Sqrt(0.5), 0)
	}
	return out
}

func TestModulateLength(t *testing.T) {
	for _, n := range []int{1, 48, 49, 96, 100} {
		td := Modulate(make([]complex128, n))
		if len(td) != FrameSamples(n) {
			t.Fatalf("n=%d: frame %d samples, want %d", n, len(td), FrameSamples(n))
		}
	}
}

func TestPerfectChannelRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := randSyms(rng, 100)
	td := Modulate(data)
	y, h := Demodulate(td, len(data))
	for i := range data {
		if cmplx.Abs(h[i]-1) > 1e-9 {
			t.Fatalf("flat channel estimate wrong at %d: %v", i, h[i])
		}
		if cmplx.Abs(y[i]-data[i]) > 1e-9 {
			t.Fatalf("symbol %d mangled: %v vs %v", i, y[i], data[i])
		}
	}
}

func TestMultipathEqualization(t *testing.T) {
	// Over a 3-tap channel with no noise, equalized symbols y/ĥ must
	// match the transmitted data (the CP absorbs ISI; per-subcarrier
	// fading is flat).
	rng := rand.New(rand.NewSource(2))
	data := randSyms(rng, 96)
	td := Modulate(data)
	ch := channel.NewMultipath([]complex128{1, 0.4i, -0.2}, 80, 3) // ≈noiseless
	y, h := Demodulate(ch.Transmit(td), len(data))
	for i := range data {
		eq := y[i] / h[i]
		if cmplx.Abs(eq-data[i]) > 0.05 {
			t.Fatalf("symbol %d not equalized: %v vs %v", i, eq, data[i])
		}
	}
	if SubcarrierSNRSpread(h) < 1 {
		t.Fatal("3-tap channel should be frequency selective")
	}
}

func TestChannelEstimateAccuracy(t *testing.T) {
	// The LS estimate from the preamble should match the true channel
	// frequency response within noise.
	taps := []complex128{0.9, 0.3 - 0.2i, 0.1i}
	ch := channel.NewMultipath(taps, 30, 5)
	data := randSyms(rand.New(rand.NewSource(4)), 48)
	y, h := Demodulate(ch.Transmit(Modulate(data)), len(data))
	_ = y
	// True response at subcarrier k: H(k) = Σ taps[j]·e^{-j2πkj/64} with
	// normalized taps.
	norm := ch.Taps()
	for i, k := range dataIdxForTest() {
		var truth complex128
		for j, tap := range norm {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(N)
			truth += tap * cmplx.Exp(complex(0, ang))
		}
		if cmplx.Abs(h[i]-truth) > 0.15 {
			t.Fatalf("subcarrier %d: ĥ=%v truth=%v", k, h[i], truth)
		}
	}
}

// dataIdxForTest exposes the first OFDM symbol's data subcarrier indices.
func dataIdxForTest() []int {
	idx, _ := usedSubcarriers()
	return idx
}

func TestSpinalOverMultipathOFDM(t *testing.T) {
	// End-to-end Appendix B stack: spinal symbols → OFDM → multipath →
	// OFDM receiver → fading-aware spinal decoder.
	rng := rand.New(rand.NewSource(6))
	p := core.Params{K: 4, B: 64, D: 1, C: 6, Tail: 2, Ways: 8}
	nBits := 192 // the hardware prototype's block size
	msg := make([]byte, nBits/8)
	rng.Read(msg)
	enc := core.NewEncoder(msg, nBits, p)
	dec := core.NewDecoder(nBits, p)
	sched := enc.NewSchedule()
	ch := channel.NewMultipath([]complex128{1, 0.5, 0.25i, -0.1}, 18, 7)

	decoded := false
	for pass := 0; pass < 20 && !decoded; pass++ {
		// One full pass per PHY frame.
		var ids []core.SymbolID
		for sub := 0; sub < sched.Subpasses(); sub++ {
			ids = append(ids, sched.NextSubpass()...)
		}
		x := enc.Symbols(ids)
		rx := ch.Transmit(Modulate(x))
		y, h := Demodulate(rx, len(x))
		dec.AddFaded(ids, y, h)
		if got, _ := dec.Decode(); bytes.Equal(got, msg) {
			decoded = true
		}
	}
	if !decoded {
		t.Fatal("spinal-over-OFDM did not decode over multipath at 18 dB")
	}
}

func TestDemodulatePanicsOnShortFrame(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for short frame")
		}
	}()
	Demodulate(make([]complex128, 10), 48)
}

func TestSNRSpreadFlat(t *testing.T) {
	h := []complex128{1, 1, 1}
	if s := SubcarrierSNRSpread(h); math.Abs(s) > 1e-9 {
		t.Fatalf("flat spread = %g, want 0", s)
	}
}
