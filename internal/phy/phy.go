// Package phy is the 802.11a/g-like OFDM physical layer of the Appendix B
// prototype: spinal constellation symbols ride on 48 data subcarriers per
// OFDM symbol, with BPSK pilots, a 16-sample cyclic prefix, and a known
// two-symbol preamble from which the receiver least-squares-estimates the
// per-subcarrier channel. Over a frequency-selective (multipath) channel
// the estimate hands the spinal decoder exactly the per-symbol fading
// coefficients its §8.3 metric wants.
//
// Frame timing is assumed perfect (the paper's USRP experiments handle
// synchronization in the Airblue stack; it is orthogonal to coding).
package phy

import (
	"math"

	"spinal/internal/ofdm"
)

const (
	// N is the FFT size (64 subcarriers).
	N = ofdm.NumSubcarriers
	// CP is the cyclic prefix length in samples.
	CP = 16
	// DataPerSymbol is the number of data subcarriers per OFDM symbol.
	DataPerSymbol = ofdm.DataSubcarriers
	// preambleSymbols is the number of known training OFDM symbols.
	preambleSymbols = 2
)

// usedSubcarriers lists the logical indices −26..−1, 1..26 in data-fill
// order, distinguishing pilots.
func usedSubcarriers() (data []int, pilots []int) {
	for k := -26; k <= 26; k++ {
		if k == 0 {
			continue
		}
		switch k {
		case -21, -7, 7, 21:
			pilots = append(pilots, k)
		default:
			data = append(data, k)
		}
	}
	return data, pilots
}

// bin maps a logical subcarrier index to an FFT bin.
func bin(k int) int {
	if k < 0 {
		return k + N
	}
	return k
}

// ampScale normalizes time-domain frames to unit average sample power:
// 52 unit-power subcarriers through a 1/N-scaled IFFT give per-sample
// power 52/N², so samples are scaled by N/√52 on transmit and divided
// back on receive. This keeps channel SNR semantics identical to the
// single-carrier paths elsewhere in the repository.
var ampScale = complex(float64(N)/math.Sqrt(52), 0)

// trainingValue is the known preamble value on subcarrier k: BPSK from
// the 802.11 scrambler sequence, giving a flat-magnitude training symbol.
func trainingValue(k int) complex128 {
	// Deterministic ±1 pattern from the scrambler, identical at TX and RX.
	s := ofdm.NewScrambler(0x5D)
	v := complex(1, 0)
	for i := -26; i <= k; i++ {
		if s.NextBit() == 1 {
			v = complex(1, 0)
		} else {
			v = complex(-1, 0)
		}
	}
	return v
}

// Modulate builds the time-domain frame for a batch of data symbols:
// preamble (2 training symbols) followed by ⌈len/48⌉ OFDM data symbols,
// each with cyclic prefix. Unused data slots in the final symbol are
// zero.
func Modulate(data []complex128) []complex128 {
	dataIdx, pilotIdx := usedSubcarriers()
	nSyms := (len(data) + DataPerSymbol - 1) / DataPerSymbol
	out := make([]complex128, 0, (preambleSymbols+nSyms)*(N+CP))

	emit := func(freq []complex128) {
		td := append([]complex128(nil), freq...)
		ofdm.IFFT(td)
		for i := range td {
			td[i] *= ampScale
		}
		// Cyclic prefix: last CP samples first.
		out = append(out, td[N-CP:]...)
		out = append(out, td...)
	}

	// Preamble.
	train := make([]complex128, N)
	for _, k := range append(append([]int(nil), dataIdx...), pilotIdx...) {
		train[bin(k)] = trainingValue(k)
	}
	for s := 0; s < preambleSymbols; s++ {
		emit(train)
	}

	// Data symbols.
	for s := 0; s < nSyms; s++ {
		freq := make([]complex128, N)
		for i, k := range dataIdx {
			di := s*DataPerSymbol + i
			if di < len(data) {
				freq[bin(k)] = data[di]
			}
		}
		for _, k := range pilotIdx {
			freq[bin(k)] = complex(1, 0)
		}
		emit(freq)
	}
	return out
}

// FrameSamples reports the time-domain frame length for nData data
// symbols.
func FrameSamples(nData int) int {
	nSyms := (nData + DataPerSymbol - 1) / DataPerSymbol
	return (preambleSymbols + nSyms) * (N + CP)
}

// Demodulate recovers the data-subcarrier observations from a received
// frame. It estimates the channel from the preamble (least squares,
// averaged over the two training symbols) and returns, for each of the
// nData transmitted data symbols, the raw subcarrier observation y and
// the channel estimate ĥ that produced it — ready for the spinal
// decoder's AddFaded.
func Demodulate(rx []complex128, nData int) (y, h []complex128) {
	dataIdx, _ := usedSubcarriers()
	nSyms := (nData + DataPerSymbol - 1) / DataPerSymbol
	if len(rx) < FrameSamples(nData) {
		panic("phy: received frame too short")
	}

	fft := func(sym int) []complex128 {
		start := sym*(N+CP) + CP
		freq := append([]complex128(nil), rx[start:start+N]...)
		ofdm.FFT(freq)
		// FFT∘IFFT is the identity here (IFFT carries the 1/N); undo only
		// the transmit power scaling.
		for i := range freq {
			freq[i] /= ampScale
		}
		return freq
	}

	// Channel estimate per used subcarrier from the training symbols.
	est := make(map[int]complex128)
	t0 := fft(0)
	t1 := fft(1)
	for k := -26; k <= 26; k++ {
		if k == 0 {
			continue
		}
		tv := trainingValue(k)
		est[k] = (t0[bin(k)] + t1[bin(k)]) / (2 * tv)
	}

	y = make([]complex128, nData)
	h = make([]complex128, nData)
	for s := 0; s < nSyms; s++ {
		freq := fft(preambleSymbols + s)
		for i, k := range dataIdx {
			di := s*DataPerSymbol + i
			if di >= nData {
				break
			}
			y[di] = freq[bin(k)]
			h[di] = est[k]
		}
	}
	return y, h
}

// SubcarrierSNRSpread reports the ratio (in dB) between the strongest and
// weakest estimated subcarrier gains of a demodulated frame — a quick
// frequency-selectivity diagnostic used by tests and examples.
func SubcarrierSNRSpread(h []complex128) float64 {
	lo, hi := math.Inf(1), 0.0
	for _, v := range h {
		g := real(v)*real(v) + imag(v)*imag(v)
		if g < lo {
			lo = g
		}
		if g > hi {
			hi = g
		}
	}
	if lo <= 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(hi/lo)
}
