// Package strider implements the Strider baseline of §8: the layered
// rateless code of Erez, Trott and Wornell as engineered by Gudipati and
// Katti, built on a rate-1/5 turbo base code with QPSK layers, decoded by
// successive interference cancellation (SIC), plus the paper's "Strider+"
// puncturing enhancement that transmits passes in eight subpasses for a
// finer-grained rate set.
//
// Layer powers follow the self-similar geometric allocation of the
// layered approach: with design SINR δ, layer l (decoded l-th) has power
// q_l ∝ δ(1+δ)^{L-1-l}, so after enough passes every layer sees at least
// the base code's design SINR once stronger layers are cancelled. Each
// pass transmits the same layer symbols with fresh pseudo-random phases;
// the receiver maximal-ratio combines passes, so the per-layer SINR grows
// linearly with the pass count — the rateless mechanism. Achieved rates
// therefore track (2/5)·L/ℓ bits/symbol after ℓ passes, the expression in
// §8.2.
//
// Each layer carries a 16-bit CRC so the decoder knows when SIC may
// proceed, mirroring Strider's per-block CRCs.
package strider

import (
	"math"
	"math/cmplx"
	"math/rand"

	"spinal/internal/framing"
	"spinal/internal/modem"
	"spinal/internal/turbo"
)

// Config parameterizes a Strider code.
type Config struct {
	// Layers is the number of data blocks (the paper recommends 33).
	Layers int
	// LayerBits is the number of message bits per layer (CRC excluded).
	LayerBits int
	// MaxPasses bounds transmission (the paper uses up to 27).
	MaxPasses int
	// TurboIters is the number of turbo decoding iterations (default 8).
	TurboIters int
	// Subpasses per pass: 1 is plain Strider; 8 is Strider+ (§8's
	// puncturing enhancement).
	Subpasses int
	// DesignSINR is δ, the per-layer linear SINR the first pass's power
	// allocation targets (default 0.45: below the rate-1/5 turbo's
	// ≈0.6 threshold so one pass never suffices, while two passes exceed
	// it — matching the paper's observation that Strider needs ≥2 passes
	// everywhere in the tested range).
	DesignSINR float64
	// Seed drives the phase schedule and interleavers.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Layers == 0 {
		c.Layers = 33
	}
	if c.MaxPasses == 0 {
		c.MaxPasses = 27
	}
	if c.TurboIters == 0 {
		c.TurboIters = 8
	}
	if c.Subpasses == 0 {
		c.Subpasses = 1
	}
	if c.DesignSINR == 0 {
		c.DesignSINR = 0.45
	}
	if c.LayerBits < 8 {
		panic("strider: LayerBits must be ≥ 8")
	}
	if (c.LayerBits+framing.CRCBits)%2 != 0 {
		// QPSK consumes bit pairs; round up so coded blocks fill whole
		// symbols.
		c.LayerBits++
	}
	if c.Subpasses != 1 && c.Subpasses != 8 {
		panic("strider: Subpasses must be 1 or 8")
	}
	return c
}

// Code is a configured Strider code shared by transmitter and receiver.
//
// The coefficient matrix R realizes the layered approach's incremental
// allocation: pass p applies a geometric power profile with parameter
// δ_p = δ·2/(p+2), so early passes are steep (a high-SNR receiver
// SIC-decodes after two of them, pinning the maximum rate at 0.4·L/2
// bits/symbol as in §8.2) and later passes flatten toward uniform,
// feeding the weak layers that a low-SNR receiver needs. The receiver
// combines passes with SINR-matched weights, so flat late passes never
// drown the information carried by steep early ones.
type Code struct {
	cfg Config
	tc  *turbo.Code
	// q[p][l] is layer l's power share in pass p (Σ_l q[p][l] = 1).
	q     [][]float64
	ns    int            // symbols per layer per pass
	phase [][]complex128 // [pass][layer] unit phasor
}

// New builds a Strider code.
func New(cfg Config) *Code {
	cfg = cfg.withDefaults()
	blockBits := cfg.LayerBits + framing.CRCBits
	tc := turbo.NewCode(blockBits, true, cfg.Seed^0x7eed)
	if tc.CodedBits()%2 != 0 {
		panic("strider: coded bits must be even for QPSK")
	}
	c := &Code{
		cfg: cfg,
		tc:  tc,
		ns:  tc.CodedBits() / 2,
	}

	// Per-pass geometric power allocations with flattening parameter
	// δ_p = δ·2/(p+2): q_l ∝ δ_p(1+δ_p)^{L-1-l}, normalized per pass.
	L := cfg.Layers
	c.q = make([][]float64, cfg.MaxPasses)
	for p := 0; p < cfg.MaxPasses; p++ {
		dp := cfg.DesignSINR * 2 / float64(p+2)
		row := make([]float64, L)
		var sum float64
		for l := 0; l < L; l++ {
			row[l] = dp * math.Pow(1+dp, float64(L-1-l))
			sum += row[l]
		}
		for l := 0; l < L; l++ {
			row[l] /= sum
		}
		c.q[p] = row
	}

	// Pseudo-random per-pass per-layer phases (the R matrix).
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x9e3779b9))
	c.phase = make([][]complex128, cfg.MaxPasses)
	for p := range c.phase {
		c.phase[p] = make([]complex128, L)
		for l := range c.phase[p] {
			c.phase[p][l] = cmplx.Exp(complex(0, 2*math.Pi*rng.Float64()))
		}
	}
	return c
}

// MessageBits reports the message size in bits (one bit per byte in the
// Encode input).
func (c *Code) MessageBits() int { return c.cfg.Layers * c.cfg.LayerBits }

// SymbolsPerPass reports the number of channel symbols in one full pass.
func (c *Code) SymbolsPerPass() int { return c.ns }

// MaxPasses reports the configured pass budget.
func (c *Code) MaxPasses() int { return c.cfg.MaxPasses }

// Subpasses reports the puncturing fan-out.
func (c *Code) Subpasses() int { return c.cfg.Subpasses }

// coeff returns the complex coefficient of layer l in pass p.
func (c *Code) coeff(p, l int) complex128 {
	return c.phase[p][l] * complex(math.Sqrt(c.q[p][l]), 0)
}

// packBits packs a bit-per-byte slice into bytes (LSB-first) for CRC
// computation.
func packBits(bits []byte) []byte {
	out := make([]byte, (len(bits)+7)/8)
	for i, b := range bits {
		if b&1 == 1 {
			out[i/8] |= 1 << (uint(i) % 8)
		}
	}
	return out
}

// layerBlock appends the CRC to a layer's message bits, producing the
// turbo input block.
func (c *Code) layerBlock(msgBits []byte) []byte {
	crc := framing.CRC16(packBits(msgBits))
	block := make([]byte, 0, len(msgBits)+16)
	block = append(block, msgBits...)
	for i := 0; i < 16; i++ {
		block = append(block, byte(crc>>(15-uint(i)))&1)
	}
	return block
}

// Tx is an encoded message ready for rateless transmission.
type Tx struct {
	code *Code
	x    [][]complex128 // per-layer QPSK symbols
}

// Encode prepares a message for transmission. msg holds MessageBits()
// bits, one per byte.
func (c *Code) Encode(msg []byte) *Tx {
	if len(msg) != c.MessageBits() {
		panic("strider: wrong message length")
	}
	t := &Tx{code: c, x: make([][]complex128, c.cfg.Layers)}
	for l := 0; l < c.cfg.Layers; l++ {
		block := c.layerBlock(msg[l*c.cfg.LayerBits : (l+1)*c.cfg.LayerBits])
		coded := c.tc.Encode(block)
		t.x[l] = modem.QPSK{}.Modulate(coded)
	}
	return t
}

// Pass produces the full superposed symbol vector for pass p.
func (t *Tx) Pass(p int) []complex128 {
	out := make([]complex128, t.code.ns)
	for l := range t.x {
		co := t.code.coeff(p, l)
		for i, s := range t.x[l] {
			out[i] += co * s
		}
	}
	return out
}

// Subpass produces the symbols of subpass s (0-based) of pass p under
// Strider+ puncturing, together with their symbol positions. Subpass s
// carries the positions congruent to subpassResidue(s) mod Subpasses.
func (t *Tx) Subpass(p, s int) (syms []complex128, positions []int) {
	full := t.Pass(p)
	res := subpassResidue(s, t.code.cfg.Subpasses)
	for i := res; i < len(full); i += t.code.cfg.Subpasses {
		syms = append(syms, full[i])
		positions = append(positions, i)
	}
	return syms, positions
}

// subpassResidue spreads subpasses evenly (bit-reversed order).
func subpassResidue(s, ways int) int {
	order := map[int][]int{1: {0}, 8: {7, 3, 5, 1, 6, 2, 4, 0}}[ways]
	return order[s%ways]
}
