package strider

import (
	"spinal/internal/framing"
	"spinal/internal/modem"
)

// Decoder performs successive interference cancellation over the received
// passes. Layers are decoded strongest-first; a layer whose CRC passes is
// re-encoded, cached and subtracted from subsequent attempts. The decoder
// needs the channel noise variance (Strider assumes SNR knowledge; spinal
// codes do not — a §8.3 point in spinal's favour).
type Decoder struct {
	code *Code

	// Received observations, per pass. For partially received passes,
	// have[p][i] reports whether position i arrived. Observations are
	// stored equalized (z·conj(h)/|h|²) with weight[p][i] = |h|² for
	// noise scaling; weight 1 means no fading.
	obs    [][]complex128
	have   [][]bool
	weight [][]float64

	decoded []bool
	info    [][]byte       // per decoded layer: message bits
	rex     [][]complex128 // per decoded layer: re-encoded QPSK symbols

	symbolsReceived int
}

// NewDecoder creates a decoder for one message of the given code.
func NewDecoder(c *Code) *Decoder {
	return &Decoder{
		code:    c,
		decoded: make([]bool, c.cfg.Layers),
		info:    make([][]byte, c.cfg.Layers),
		rex:     make([][]complex128, c.cfg.Layers),
	}
}

// SymbolsReceived reports how many channel symbols have been stored.
func (d *Decoder) SymbolsReceived() int { return d.symbolsReceived }

func (d *Decoder) ensurePass(p int) {
	for len(d.obs) <= p {
		d.obs = append(d.obs, make([]complex128, d.code.ns))
		d.have = append(d.have, make([]bool, d.code.ns))
		d.weight = append(d.weight, make([]float64, d.code.ns))
	}
}

// AddPass stores a fully received pass. h may be nil (no fading) or hold
// per-symbol fading coefficients known to the receiver.
func (d *Decoder) AddPass(p int, y []complex128, h []complex128) {
	d.ensurePass(p)
	for i, v := range y {
		d.store(p, i, v, h, i)
	}
}

// AddSubpass stores a partial pass: symbols at the given positions.
func (d *Decoder) AddSubpass(p int, positions []int, y []complex128, h []complex128) {
	d.ensurePass(p)
	for j, i := range positions {
		d.store(p, i, y[j], h, j)
	}
}

func (d *Decoder) store(p, i int, v complex128, h []complex128, hIdx int) {
	w := 1.0
	if h != nil {
		hv := h[hIdx]
		habs2 := real(hv)*real(hv) + imag(hv)*imag(hv)
		if habs2 < 1e-12 {
			// Deep fade: record as missing.
			return
		}
		v *= complex(real(hv)/habs2, -imag(hv)/habs2)
		w = habs2
	}
	if !d.have[p][i] {
		d.symbolsReceived++
	}
	d.obs[p][i] = v
	d.have[p][i] = true
	d.weight[p][i] = w
}

// TryDecode attempts SIC with everything received so far. Undecoded
// layers are attempted in descending order of accumulated received
// energy (with the rotated profile this is the layer currently easiest
// to separate); each CRC-verified layer is subtracted before the next.
// It returns the full message (one bit per byte) and true once every
// layer's CRC passes. noiseVar is the channel's total complex noise
// variance.
func (d *Decoder) TryDecode(noiseVar float64) ([]byte, bool) {
	c := d.code
	for {
		// Rank undecoded layers by accumulated energy.
		best, bestE := -1, -1.0
		for l := 0; l < c.cfg.Layers; l++ {
			if d.decoded[l] {
				continue
			}
			e := d.energy(l)
			if e > bestE {
				best, bestE = l, e
			}
		}
		if best == -1 {
			break // all decoded
		}
		if !d.decodeLayer(best, noiseVar) {
			return nil, false
		}
	}
	msg := make([]byte, c.MessageBits())
	for l := 0; l < c.cfg.Layers; l++ {
		copy(msg[l*c.cfg.LayerBits:], d.info[l])
	}
	return msg, true
}

// passSINR returns layer l's single-pass SINR in pass p, treating
// undecoded layers as noise: q_pl / (Σ_{l' undec ≠ l} q_pl' + σ²).
func (d *Decoder) passSINR(p, l int, noiseVar float64) float64 {
	c := d.code
	var intf float64
	for l2 := 0; l2 < c.cfg.Layers; l2++ {
		if l2 == l || d.decoded[l2] {
			continue
		}
		intf += c.q[p][l2]
	}
	return c.q[p][l] / (intf + noiseVar)
}

// energy estimates layer l's combined post-SIC SINR across stored passes
// (per-pass SINRs add under matched combining), weighting partial passes
// by received fraction. TryDecode uses it to pick the SIC order.
func (d *Decoder) energy(l int) float64 {
	c := d.code
	var e float64
	for p := range d.obs {
		n := 0
		for i := 0; i < c.ns; i++ {
			if d.have[p][i] {
				n++
			}
		}
		if n == 0 {
			continue
		}
		e += d.passSINR(p, l, 1e-3) * float64(n) / float64(c.ns)
	}
	return e
}

// covClass caches combining statistics for one coverage mask (set of
// passes received at a symbol position).
type covClass struct {
	gain float64 // Σ_{p∈mask} w_p·q_pl, the signal coefficient
	intf float64 // Σ_{l'≠l undec} |Σ_{p∈mask} w_p·conj(c_pl)·c_pl'|²
	wsqn float64 // Σ_{p∈mask} w_p²·q_pl·σ² (noise power before fading adj.)
}

// decodeLayer combines the observations for layer l with SINR-matched
// per-pass weights (an MMSE-style combiner: pass p is weighted by
// 1/(interference_p + σ²), so steep early passes dominate when they
// should), subtracts already-decoded layers, turbo-decodes and checks the
// CRC. On success the layer is cached for cancellation.
//
// Interference is computed exactly per coverage class: an undecoded layer
// l' sends identical symbols in every pass, so its post-combining
// contribution is |Σ_p w_p·conj(c_pl)·c_pl'|², which the decoder can
// evaluate because it knows R.
func (d *Decoder) decodeLayer(l int, noiseVar float64) bool {
	c := d.code
	passes := len(d.obs)
	if passes > 63 {
		passes = 63
	}

	// Per-pass combining weights.
	w := make([]float64, passes)
	for p := 0; p < passes; p++ {
		var intf float64
		for l2 := 0; l2 < c.cfg.Layers; l2++ {
			if l2 == l || d.decoded[l2] {
				continue
			}
			intf += c.q[p][l2]
		}
		w[p] = 1 / (intf + noiseVar)
	}

	classes := map[uint64]*covClass{}
	classFor := func(mask uint64) *covClass {
		if cl, ok := classes[mask]; ok {
			return cl
		}
		cl := &covClass{}
		for p := 0; p < passes; p++ {
			if mask&(1<<uint(p)) == 0 {
				continue
			}
			cl.gain += w[p] * c.q[p][l]
			cl.wsqn += w[p] * w[p] * c.q[p][l] * noiseVar
		}
		for l2 := 0; l2 < c.cfg.Layers; l2++ {
			if l2 == l || d.decoded[l2] {
				continue
			}
			var s complex128
			for p := 0; p < passes; p++ {
				if mask&(1<<uint(p)) == 0 {
					continue
				}
				s += complex(w[p], 0) * complexConj(c.coeff(p, l)) * c.coeff(p, l2)
			}
			cl.intf += real(s)*real(s) + imag(s)*imag(s)
		}
		classes[mask] = cl
		return cl
	}

	llr := make([]float64, 2*c.ns)
	anyObs := false
	for i := 0; i < c.ns; i++ {
		var num complex128
		var fadeExtra float64
		var mask uint64
		for p := 0; p < passes; p++ {
			if !d.have[p][i] {
				continue
			}
			mask |= 1 << uint(p)
			co := c.coeff(p, l)
			z := d.obs[p][i]
			for l2 := 0; l2 < c.cfg.Layers; l2++ {
				if d.decoded[l2] {
					z -= c.coeff(p, l2) * d.rex[l2][i]
				}
			}
			num += complex(w[p], 0) * complexConj(co) * z
			// Equalized observations scale noise by 1/|h|²; account for
			// the difference from the nominal σ² used in w.
			if d.weight[p][i] != 1 {
				q := c.q[p][l]
				fadeExtra += w[p] * w[p] * q * noiseVar * (1/d.weight[p][i] - 1)
			}
		}
		if mask == 0 {
			continue // position never received: zero LLRs
		}
		cl := classFor(mask)
		if cl.gain <= 0 {
			continue
		}
		anyObs = true
		est := num / complex(cl.gain, 0)
		varEff := (cl.intf + cl.wsqn + fadeExtra) / (cl.gain * cl.gain)
		if varEff < 1e-12 {
			varEff = 1e-12
		}
		const a = 0.7071067811865476
		scale := 2 * a / (varEff / 2)
		llr[2*i] = scale * real(est)
		llr[2*i+1] = scale * imag(est)
	}
	if !anyObs {
		return false
	}

	block := c.tc.Decode(llr, c.cfg.TurboIters)
	msgBits := block[:c.cfg.LayerBits]
	var crc uint16
	for i := 0; i < 16; i++ {
		crc = crc<<1 | uint16(block[c.cfg.LayerBits+i]&1)
	}
	if framing.CRC16(packBits(msgBits)) != crc {
		return false
	}
	d.decoded[l] = true
	d.info[l] = msgBits
	d.rex[l] = modem.QPSK{}.Modulate(c.tc.Encode(block))
	return true
}

func complexConj(z complex128) complex128 { return complex(real(z), -imag(z)) }
