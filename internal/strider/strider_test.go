package strider

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"spinal/internal/channel"
)

func smallConfig() Config {
	// A scaled-down Strider for tests: 6 layers, 64-bit layers.
	return Config{Layers: 6, LayerBits: 64, MaxPasses: 16, TurboIters: 6, Seed: 1}
}

func randMsg(rng *rand.Rand, n int) []byte {
	m := make([]byte, n)
	for i := range m {
		m[i] = byte(rng.Intn(2))
	}
	return m
}

func TestPowerAllocation(t *testing.T) {
	c := New(smallConfig())
	for p := 0; p < c.cfg.MaxPasses; p++ {
		var sum float64
		for l, q := range c.q[p] {
			sum += q
			if l > 0 && c.q[p][l] >= c.q[p][l-1] {
				t.Fatalf("pass %d: layer powers not strictly decreasing", p)
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("pass %d: total power %g, want 1", p, sum)
		}
	}
	// Self-similarity of the first pass: q_l / Σ_{l'>l} q_l' ≥ δ_0 for
	// every layer above the last (zero-noise SINR at the design point).
	d0 := c.cfg.DesignSINR
	for l := 0; l < c.cfg.Layers-1; l++ {
		var tail float64
		for l2 := l + 1; l2 < c.cfg.Layers; l2++ {
			tail += c.q[0][l2]
		}
		if sinr := c.q[0][l] / tail; sinr < d0*0.999 {
			t.Fatalf("layer %d: zero-noise SINR %.3f below design %.3f", l, sinr, d0)
		}
	}
	// Later passes flatten: the strongest share decreases with p.
	for p := 1; p < c.cfg.MaxPasses; p++ {
		if c.q[p][0] >= c.q[p-1][0] {
			t.Fatalf("pass %d: profile did not flatten (q0 %.4f ≥ %.4f)", p, c.q[p][0], c.q[p-1][0])
		}
	}
}

func TestPassPower(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := New(smallConfig())
	tx := c.Encode(randMsg(rng, c.MessageBits()))
	var p float64
	n := 0
	for pass := 0; pass < 4; pass++ {
		for _, s := range tx.Pass(pass) {
			p += real(s)*real(s) + imag(s)*imag(s)
			n++
		}
	}
	p /= float64(n)
	if math.Abs(p-1) > 0.1 {
		t.Fatalf("average transmit power %.3f, want ≈1", p)
	}
}

func TestSubpassCoversPass(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := smallConfig()
	cfg.Subpasses = 8
	c := New(cfg)
	tx := c.Encode(randMsg(rng, c.MessageBits()))
	full := tx.Pass(0)
	seen := make([]bool, len(full))
	for s := 0; s < 8; s++ {
		syms, pos := tx.Subpass(0, s)
		for j, i := range pos {
			if seen[i] {
				t.Fatalf("position %d transmitted twice", i)
			}
			seen[i] = true
			if syms[j] != full[i] {
				t.Fatalf("subpass symbol differs from pass symbol at %d", i)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("position %d never transmitted", i)
		}
	}
}

func TestDecodeHighSNRTwoPasses(t *testing.T) {
	// At 25 dB, two passes should decode the whole message (one pass must
	// not, by the δ=0.4 design).
	rng := rand.New(rand.NewSource(4))
	c := New(smallConfig())
	msg := randMsg(rng, c.MessageBits())
	tx := c.Encode(msg)
	ch := channel.NewAWGN(25, 7)
	dec := NewDecoder(c)

	dec.AddPass(0, ch.Transmit(tx.Pass(0)), nil)
	if _, ok := dec.TryDecode(ch.NoiseVar()); ok {
		t.Log("decoded after one pass (acceptable but unexpected at δ=0.4)")
	}
	dec.AddPass(1, ch.Transmit(tx.Pass(1)), nil)
	got, ok := dec.TryDecode(ch.NoiseVar())
	if !ok {
		t.Fatal("failed to decode after two passes at 25 dB")
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("decoded message wrong")
	}
}

func TestDecodeNeedsMorePassesAtLowSNR(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := New(smallConfig())
	msg := randMsg(rng, c.MessageBits())
	tx := c.Encode(msg)
	ch := channel.NewAWGN(5, 9)
	dec := NewDecoder(c)
	decodedAt := -1
	for p := 0; p < c.MaxPasses(); p++ {
		dec.AddPass(p, ch.Transmit(tx.Pass(p)), nil)
		if got, ok := dec.TryDecode(ch.NoiseVar()); ok {
			if !bytes.Equal(got, msg) {
				t.Fatal("decoded wrong message")
			}
			decodedAt = p + 1
			break
		}
	}
	if decodedAt < 0 {
		t.Fatal("never decoded at 5 dB")
	}
	// Rate sanity: 6 layers at 0.4 b/s each over decodedAt passes must
	// not exceed the 5 dB Shannon capacity of ≈2.06 b/s.
	if rate := 0.4 * 6 / float64(decodedAt); rate > 2.06 {
		t.Fatalf("decoded after %d passes at 5 dB (rate %.2f above capacity)", decodedAt, rate)
	}
}

func TestStriderPlusPartialPassDecodes(t *testing.T) {
	// With puncturing, decoding can succeed part-way through a pass,
	// giving rates between the 13.2/ℓ quantization points.
	rng := rand.New(rand.NewSource(6))
	cfg := smallConfig()
	cfg.Subpasses = 8
	c := New(cfg)
	msg := randMsg(rng, c.MessageBits())
	tx := c.Encode(msg)
	ch := channel.NewAWGN(16, 11)
	dec := NewDecoder(c)

	dec.AddPass(0, ch.Transmit(tx.Pass(0)), nil)
	decoded := false
	var subUsed int
	for s := 0; s < 8 && !decoded; s++ {
		syms, pos := tx.Subpass(1, s)
		dec.AddSubpass(1, pos, ch.Transmit(syms), nil)
		subUsed = s + 1
		if got, ok := dec.TryDecode(ch.NoiseVar()); ok {
			if !bytes.Equal(got, msg) {
				t.Fatal("decoded wrong message")
			}
			decoded = true
		}
	}
	if !decoded {
		t.Fatal("did not decode within pass 2")
	}
	if subUsed == 8 {
		t.Log("needed the full second pass; puncturing gain not visible at this seed")
	}
}

func TestFadingAwareDecoding(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := New(smallConfig())
	msg := randMsg(rng, c.MessageBits())
	tx := c.Encode(msg)
	ch := channel.NewRayleigh(25, 10, 13)
	dec := NewDecoder(c)
	decoded := false
	for p := 0; p < c.MaxPasses() && !decoded; p++ {
		y, h := ch.Transmit(tx.Pass(p))
		dec.AddPass(p, y, h)
		if got, ok := dec.TryDecode(ch.NoiseVar()); ok {
			if !bytes.Equal(got, msg) {
				t.Fatal("decoded wrong message")
			}
			decoded = true
		}
	}
	if !decoded {
		t.Fatal("never decoded on fading channel with known h")
	}
}

func TestCRCBlocksFalseDecodes(t *testing.T) {
	// At very low SNR with one pass, TryDecode must not return success.
	rng := rand.New(rand.NewSource(8))
	c := New(smallConfig())
	msg := randMsg(rng, c.MessageBits())
	tx := c.Encode(msg)
	ch := channel.NewAWGN(-10, 17)
	dec := NewDecoder(c)
	dec.AddPass(0, ch.Transmit(tx.Pass(0)), nil)
	if _, ok := dec.TryDecode(ch.NoiseVar()); ok {
		t.Fatal("claimed decode success at -10 dB after one pass")
	}
}

func TestLayerCacheAcrossAttempts(t *testing.T) {
	// Decoded layers persist across TryDecode calls (the SIC cache).
	rng := rand.New(rand.NewSource(9))
	c := New(smallConfig())
	msg := randMsg(rng, c.MessageBits())
	tx := c.Encode(msg)
	ch := channel.NewAWGN(12, 19)
	dec := NewDecoder(c)
	for p := 0; p < 4; p++ {
		dec.AddPass(p, ch.Transmit(tx.Pass(p)), nil)
		dec.TryDecode(ch.NoiseVar())
	}
	n := 0
	for _, ok := range dec.decoded {
		if ok {
			n++
		}
	}
	if n == 0 {
		t.Fatal("no layers cached after four passes at 12 dB")
	}
}

func TestMessageBitsAccounting(t *testing.T) {
	c := New(smallConfig())
	if c.MessageBits() != 6*64 {
		t.Fatalf("MessageBits = %d", c.MessageBits())
	}
	// Symbols per pass: 5·(64+16)/2 per layer... all layers superposed
	// share positions, so it equals the per-layer coded length / 2.
	if c.SymbolsPerPass() != 5*(64+16)/2 {
		t.Fatalf("SymbolsPerPass = %d", c.SymbolsPerPass())
	}
}
