// Package transport is the congestion-aware multi-block fetch tier over
// the spinal link: it streams a large payload as a pipeline of link-layer
// segments, estimating round-trip time from ack telemetry and pacing the
// number of segments in flight with a CUBIC (or AIMD) congestion window,
// slow start, and RTO-bounded per-segment budgets with exponential
// backoff. Time is measured in engine rounds — the link simulation's only
// clock — so every constant that RFC-land states in seconds appears here
// in rounds.
package transport

// rttEstimator is the RFC 6298 smoothed RTT filter in round units:
// srtt ← (1−α)·srtt + α·sample, rttvar ← (1−β)·rttvar + β·|srtt−sample|,
// rto = srtt + 4·rttvar, clamped to [minRTO, maxRTO].
type rttEstimator struct {
	srtt   float64
	rttvar float64
	rto    int
	minRTO int
	maxRTO int
}

func newRTTEstimator(initialRTO, minRTO, maxRTO int) *rttEstimator {
	return &rttEstimator{rto: initialRTO, minRTO: minRTO, maxRTO: maxRTO}
}

// observe folds one RTT sample (in rounds) into the filter.
func (e *rttEstimator) observe(sample int) {
	s := float64(sample)
	if s < 1 {
		s = 1
	}
	if e.srtt == 0 {
		// First sample: RFC 6298 §2.2.
		e.srtt = s
		e.rttvar = s / 2
	} else {
		d := e.srtt - s
		if d < 0 {
			d = -d
		}
		e.rttvar = 0.75*e.rttvar + 0.25*d
		e.srtt = 0.875*e.srtt + 0.125*s
	}
	rto := int(e.srtt + 4*e.rttvar + 0.5)
	e.rto = e.clamp(rto)
}

// backoff returns the RTO for the given retry attempt: the base RTO
// doubled per try (RFC 6298 §5.5), clamped to the ceiling.
func (e *rttEstimator) backoff(tries int) int {
	rto := e.rto
	for i := 0; i < tries && rto < e.maxRTO; i++ {
		rto *= 2
	}
	return e.clamp(rto)
}

func (e *rttEstimator) clamp(rto int) int {
	if rto < e.minRTO {
		return e.minRTO
	}
	if rto > e.maxRTO {
		return e.maxRTO
	}
	return rto
}
