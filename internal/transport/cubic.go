package transport

import "math"

// controller is a congestion window over in-flight segments. onAck is
// called once per delivered segment, onLoss once per deduplicated loss
// event; both receive the fetcher's step clock (engine rounds) and the
// current smoothed RTT so window growth can be paced in RTT units.
type controller interface {
	onAck(step int, srtt float64)
	onLoss(step int)
	window() float64
}

// CUBIC constants from RFC 8312: β is the multiplicative decrease
// factor, C scales the cubic growth polynomial.
const (
	cubicBeta = 0.7
	cubicC    = 0.4
)

// cubic is the RFC 8312 window: slow start to ssthresh, then
// W(t) = C·(t−K)³ + Wmax with t in RTTs since the last loss epoch —
// concave recovery toward the previous loss point Wmax, plateau, then
// convex probing past it. Fast convergence lowers Wmax an extra notch
// when losses arrive while the window is still shrinking, ceding
// bandwidth to new flows faster.
type cubic struct {
	cwnd       float64
	ssthresh   float64
	maxWindow  float64
	wMax       float64
	k          float64
	epochStart int // step of the current growth epoch; -1 = none yet
}

func newCubic(initWindow, maxWindow int) *cubic {
	return &cubic{
		cwnd:       float64(initWindow),
		ssthresh:   float64(maxWindow), // slow start until the first loss
		maxWindow:  float64(maxWindow),
		epochStart: -1,
	}
}

func (c *cubic) window() float64 { return c.cwnd }

func (c *cubic) onAck(step int, srtt float64) {
	if c.cwnd < c.ssthresh {
		c.cwnd++ // slow start: one window per delivered segment
	} else {
		if c.epochStart < 0 {
			// First congestion-avoidance ack of an epoch anchors the curve.
			c.epochStart = step
			if c.wMax < c.cwnd {
				c.wMax = c.cwnd
			}
			c.k = math.Cbrt(c.wMax * (1 - cubicBeta) / cubicC)
		}
		if srtt < 1 {
			srtt = 1
		}
		t := float64(step-c.epochStart) / srtt
		target := cubicC*math.Pow(t-c.k, 3) + c.wMax
		if target > c.cwnd {
			c.cwnd += (target - c.cwnd) / c.cwnd
		} else {
			// At or past the plateau with no loss: probe minimally (the TCP
			// friendliness term is moot here — there is no competing AIMD
			// flow inside one fetcher).
			c.cwnd += 0.01 / c.cwnd
		}
	}
	if c.cwnd > c.maxWindow {
		c.cwnd = c.maxWindow
	}
}

func (c *cubic) onLoss(step int) {
	if c.cwnd < c.wMax {
		// Fast convergence: the flow was still below the old maximum when
		// it lost again, so remember an even lower ceiling.
		c.wMax = c.cwnd * (2 - cubicBeta) / 2
	} else {
		c.wMax = c.cwnd
	}
	c.cwnd *= cubicBeta
	if c.cwnd < 1 {
		c.cwnd = 1
	}
	c.ssthresh = math.Max(c.cwnd, 2)
	c.k = math.Cbrt(c.wMax * (1 - cubicBeta) / cubicC)
	c.epochStart = step
}

// aimd is the classic TCP-Reno-shaped alternative: slow start, then +1
// window per window of delivered segments, halving on loss.
type aimd struct {
	cwnd      float64
	ssthresh  float64
	maxWindow float64
}

func newAIMD(initWindow, maxWindow int) *aimd {
	return &aimd{
		cwnd:      float64(initWindow),
		ssthresh:  float64(maxWindow),
		maxWindow: float64(maxWindow),
	}
}

func (a *aimd) window() float64 { return a.cwnd }

func (a *aimd) onAck(int, float64) {
	if a.cwnd < a.ssthresh {
		a.cwnd++
	} else {
		a.cwnd += 1 / a.cwnd
	}
	if a.cwnd > a.maxWindow {
		a.cwnd = a.maxWindow
	}
}

func (a *aimd) onLoss(int) {
	a.cwnd /= 2
	if a.cwnd < 1 {
		a.cwnd = 1
	}
	a.ssthresh = math.Max(a.cwnd, 2)
}
