package transport

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"spinal"
	"spinal/channel"
	"spinal/link"
)

func fetchParams() spinal.Params {
	return spinal.Params{K: 4, B: 16, D: 1, C: 6, Tail: 2, Ways: 8}
}

func TestRTTEstimator(t *testing.T) {
	e := newRTTEstimator(48, 16, 512)
	if e.rto != 48 {
		t.Fatalf("initial rto = %d, want 48", e.rto)
	}
	e.observe(20)
	if e.srtt != 20 || e.rttvar != 10 {
		t.Fatalf("first sample: srtt=%v rttvar=%v, want 20/10", e.srtt, e.rttvar)
	}
	if e.rto != 60 { // 20 + 4·10
		t.Fatalf("rto after first sample = %d, want 60", e.rto)
	}
	for i := 0; i < 100; i++ {
		e.observe(20)
	}
	// Constant samples: variance decays, RTO converges down to the floor
	// region srtt + 4·rttvar → 20, clamped at minRTO 16... so ≥ minRTO.
	if e.srtt < 19.5 || e.srtt > 20.5 {
		t.Fatalf("srtt did not converge: %v", e.srtt)
	}
	if e.rto < 16 || e.rto > 24 {
		t.Fatalf("rto did not converge: %d", e.rto)
	}
	// Backoff doubles per try and clamps at maxRTO.
	base := e.rto
	if got := e.backoff(1); got != min(2*base, 512) {
		t.Fatalf("backoff(1) = %d, want %d", got, 2*base)
	}
	if got := e.backoff(20); got != 512 {
		t.Fatalf("backoff(20) = %d, want maxRTO 512", got)
	}
	e2 := newRTTEstimator(48, 16, 512)
	e2.observe(1000)
	if e2.rto != 512 {
		t.Fatalf("rto not clamped: %d", e2.rto)
	}
}

func TestCubicWindowShape(t *testing.T) {
	c := newCubic(2, 64)
	// Slow start: each ack adds one segment until ssthresh (= max).
	c.onAck(1, 10)
	c.onAck(2, 10)
	if c.cwnd != 4 {
		t.Fatalf("slow start cwnd = %v, want 4", c.cwnd)
	}
	c.onLoss(10)
	afterLoss := c.cwnd
	if math.Abs(afterLoss-4*cubicBeta) > 1e-9 {
		t.Fatalf("loss cwnd = %v, want %v", afterLoss, 4*cubicBeta)
	}
	if c.wMax != 4 {
		t.Fatalf("wMax = %v, want 4", c.wMax)
	}
	// Congestion avoidance grows back toward (and past) wMax.
	for step := 11; step < 400; step++ {
		c.onAck(step, 10)
	}
	if c.cwnd <= afterLoss {
		t.Fatalf("cubic did not grow after loss: %v", c.cwnd)
	}
	if c.cwnd > 64 {
		t.Fatalf("cwnd exceeded max: %v", c.cwnd)
	}
	// Fast convergence: losing below the previous wMax lowers it further.
	w := c.cwnd
	c.onLoss(400)
	c.onLoss(401)
	if c.wMax >= w {
		t.Fatalf("fast convergence did not lower wMax: %v vs cwnd %v", c.wMax, w)
	}
	if c.cwnd < 1 {
		t.Fatalf("cwnd fell below 1: %v", c.cwnd)
	}
}

func TestFetchPipelineDelivers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	payload := make([]byte, 8<<10)
	rng.Read(payload)
	res, err := Fetch(context.Background(), payload, Config{
		Params: fetchParams(),
		Options: []link.Option{
			link.WithChannel(channel.NewAWGN(12, 21)),
			link.WithRatePolicy(link.CapacityRate{SNREstimateDB: 12}),
		},
		SegmentBytes: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Fatal("payload corrupted")
	}
	if res.Segments != 16 {
		t.Fatalf("segments = %d, want 16", res.Segments)
	}
	if res.SRTT <= 0 || res.RTO <= 0 {
		t.Fatalf("no RTT estimate: srtt=%v rto=%d", res.SRTT, res.RTO)
	}
	if res.CwndMax <= 2 {
		t.Fatalf("window never opened: max=%v", res.CwndMax)
	}
	if res.Goodput <= 0 {
		t.Fatal("no goodput recorded")
	}
	t.Logf("steps=%d srtt=%.1f rto=%d cwndMax=%.1f goodput=%.3f",
		res.Steps, res.SRTT, res.RTO, res.CwndMax, res.Goodput)
}

// TestFetchCubicConvergence drives the fetch through the 4-round-delayed
// lossy feedback channel: acks arrive late and 30% vanish, so segment
// attempts overrun their RTO budgets, the CUBIC window suffers loss
// events and recovers. The window trace must show the sawtooth — growth
// above the initial window, at least one multiplicative decrease, and
// renewed growth after the last decrease — and the payload must still
// arrive intact.
func TestFetchCubicConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	payload := make([]byte, 24<<10)
	rng.Read(payload)
	type point struct {
		step int
		w    float64
	}
	var trace []point
	res, err := Fetch(context.Background(), payload, Config{
		Params: fetchParams(),
		Options: []link.Option{
			link.WithChannel(channel.NewAWGN(10, 31)),
			link.WithRatePolicy(link.CapacityRate{SNREstimateDB: 10}),
			link.WithFeedback(link.FeedbackConfig{DelayRounds: 4, Loss: 0.3}),
			link.WithSeed(31),
		},
		SegmentBytes: 512,
		InitRTO:      24,
		MinRTO:       8,
		MaxRTO:       96,
		MaxRetries:   32,
		WindowTrace:  func(step int, w float64) { trace = append(trace, point{step, w}) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Fatal("payload corrupted")
	}
	if res.Losses < 1 {
		t.Fatalf("no loss events through the lossy feedback channel (retries=%d)", res.Retries)
	}
	var grewPastInit, decreased, regrew bool
	lastDecrease := -1
	for i := 1; i < len(trace); i++ {
		if trace[i].w > 2 {
			grewPastInit = true
		}
		if trace[i].w < trace[i-1].w {
			decreased = true
			lastDecrease = i
		}
	}
	for i := lastDecrease + 1; i > 0 && i < len(trace); i++ {
		if trace[i].w > trace[lastDecrease].w {
			regrew = true
			break
		}
	}
	if !grewPastInit || !decreased || !regrew {
		t.Fatalf("window sawtooth missing: grew=%v decreased=%v regrew=%v (losses=%d)",
			grewPastInit, decreased, regrew, res.Losses)
	}
	t.Logf("steps=%d losses=%d retries=%d srtt=%.1f cwndMax=%.1f",
		res.Steps, res.Losses, res.Retries, res.SRTT, res.CwndMax)
}

func TestFetchAIMD(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	payload := make([]byte, 4<<10)
	rng.Read(payload)
	res, err := Fetch(context.Background(), payload, Config{
		Params: fetchParams(),
		Options: []link.Option{
			link.WithChannel(channel.NewAWGN(12, 41)),
			link.WithRatePolicy(link.CapacityRate{SNREstimateDB: 12}),
		},
		SegmentBytes: 512,
		Control:      "aimd",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Fatal("payload corrupted")
	}
	if _, err := NewFetcher(Config{Control: "vegas"}); err == nil {
		t.Fatal("unknown control accepted")
	}
}

// TestFetchSharedSession runs a fetch over a caller-owned session that
// also carries an unrelated flow: the foreign flow's result surfaces in
// Result.Foreign, and the session stays open after the fetcher closes.
func TestFetchSharedSession(t *testing.T) {
	s, err := link.NewSession(fetchParams(),
		link.WithChannel(channel.NewAWGN(12, 51)),
		link.WithRatePolicy(link.CapacityRate{SNREstimateDB: 12}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	foreign := []byte("a bystander datagram sharing the link")
	fid, err := s.Send(append([]byte(nil), foreign...))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	payload := make([]byte, 2<<10)
	rng.Read(payload)
	f, err := NewFetcher(Config{Session: s, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Fetch(context.Background(), payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Payload, payload) {
		t.Fatal("payload corrupted")
	}
	found := false
	for _, r := range res.Foreign {
		if r.ID == fid {
			found = true
			if r.Err != nil || !bytes.Equal(r.Datagram, foreign) {
				t.Fatalf("foreign flow mangled: %+v", r)
			}
		}
	}
	if !found {
		t.Fatal("foreign flow's result not surfaced")
	}
	// The session survived the fetcher: it still accepts traffic.
	if _, err := s.Send([]byte("still open")); err != nil {
		t.Fatalf("session closed by fetcher: %v", err)
	}
	if _, err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestFetchCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Fetch(ctx, make([]byte, 4<<10), Config{
		Params: fetchParams(),
		Options: []link.Option{
			link.WithChannel(channel.NewAWGN(12, 61)),
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestFetchRetriesExhausted(t *testing.T) {
	_, err := Fetch(context.Background(), make([]byte, 1024), Config{
		Params: fetchParams(),
		Options: []link.Option{
			link.WithChannel(channel.NewAWGN(-15, 71)), // hopeless medium
		},
		SegmentBytes: 512,
		InitRTO:      8,
		MinRTO:       4,
		MaxRTO:       16,
		MaxRetries:   2,
	})
	if !errors.Is(err, ErrSegmentRetries) {
		t.Fatalf("err = %v, want ErrSegmentRetries", err)
	}
}

func TestFetchEmptyPayload(t *testing.T) {
	res, err := Fetch(context.Background(), nil, Config{
		Params: fetchParams(),
		Options: []link.Option{
			link.WithChannel(channel.NewAWGN(12, 81)),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Payload) != 0 || res.Segments != 1 {
		t.Fatalf("empty fetch: %d bytes, %d segments", len(res.Payload), res.Segments)
	}
}

// BenchmarkFetchPipeline is the transport tier's headline benchmark: a
// 16 KiB payload pipelined over a 12 dB AWGN link with instant acks.
func BenchmarkFetchPipeline(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	payload := make([]byte, 16<<10)
	rng.Read(payload)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Fetch(context.Background(), payload, Config{
			Params: fetchParams(),
			Options: []link.Option{
				link.WithChannel(channel.NewAWGN(12, int64(i))),
				link.WithRatePolicy(link.CapacityRate{SNREstimateDB: 12}),
			},
			SegmentBytes: 1024,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Payload) != len(payload) {
			b.Fatal("short fetch")
		}
	}
}
