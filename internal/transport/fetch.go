package transport

import (
	"context"
	"errors"
	"fmt"

	"spinal"
	"spinal/link"
)

// ErrSegmentRetries reports a segment that exhausted its retry budget:
// every attempt ran out its RTO-sized round budget without delivering.
var ErrSegmentRetries = errors.New("transport: segment exceeded its retry budget")

// Config parameterizes a Fetcher.
type Config struct {
	// Params is the spinal code the fetch runs over (used when the
	// fetcher builds its own session; zero value ⇒ spinal.DefaultParams).
	Params spinal.Params
	// Options configure the fetcher-owned session: channel, rate policy,
	// feedback, half-duplex accounting, scheduler, ... The fetcher
	// registers itself as the session's FeedbackObserver for RTT
	// telemetry, overriding any WithFeedbackObserver among these.
	Options []link.Option
	// Session, when non-nil, is an existing session the fetch runs over
	// instead; the fetcher steps it, foreign flows resolving alongside
	// are returned in Result.Foreign, and Close leaves it open. RTT is
	// then estimated from segment completions only (the session's
	// observer slot belongs to its owner).
	Session *link.Session

	// SegmentBytes is the payload bytes per pipelined segment (one link
	// flow each; 0 ⇒ 1024).
	SegmentBytes int
	// InitWindow and MaxWindow bound the congestion window in segments
	// (0 ⇒ 2 and 64).
	InitWindow int
	MaxWindow  int
	// Control selects the window algorithm: "cubic" (default) or "aimd".
	Control string
	// InitRTO, MinRTO and MaxRTO bound the per-segment round budget in
	// engine rounds (0 ⇒ 48, 16, 512). A segment whose attempt exceeds
	// the current RTO (doubled per retry) resolves as lost and is
	// retried with the window reduced.
	InitRTO int
	MinRTO  int
	MaxRTO  int
	// MaxRetries bounds attempts per segment before the fetch fails with
	// ErrSegmentRetries (0 ⇒ 8).
	MaxRetries int
	// WindowTrace, when non-nil, receives (step, cwnd) after every engine
	// round — the convergence tests' window oscilloscope.
	WindowTrace func(step int, cwnd float64)
}

func (c Config) segmentBytes() int {
	if c.SegmentBytes <= 0 {
		return 1024
	}
	return c.SegmentBytes
}

func (c Config) initWindow() int {
	if c.InitWindow <= 0 {
		return 2
	}
	return c.InitWindow
}

func (c Config) maxWindow() int {
	if c.MaxWindow <= 0 {
		return 64
	}
	return c.MaxWindow
}

func (c Config) initRTO() int {
	if c.InitRTO <= 0 {
		return 48
	}
	return c.InitRTO
}

func (c Config) minRTO() int {
	if c.MinRTO <= 0 {
		return 16
	}
	return c.MinRTO
}

func (c Config) maxRTO() int {
	if c.MaxRTO <= 0 {
		return 512
	}
	return c.MaxRTO
}

func (c Config) maxRetries() int {
	if c.MaxRetries <= 0 {
		return 8
	}
	return c.MaxRetries
}

// Result reports one completed fetch.
type Result struct {
	// Payload is the reassembled datagram, byte-identical to what was
	// fetched.
	Payload []byte
	// Segments is the number of pipelined segments; Retries counts
	// segment attempts beyond the first; Losses counts deduplicated
	// congestion (loss) events that reduced the window.
	Segments int
	Retries  int
	Losses   int
	// Steps is the number of engine rounds the fetch drove.
	Steps int
	// SRTT and RTO are the final smoothed RTT estimate and retransmission
	// timeout, in rounds.
	SRTT float64
	RTO  int
	// CwndMax and CwndFinal are the peak and final congestion windows, in
	// segments.
	CwndMax   float64
	CwndFinal float64
	// SymbolsSent and AckSymbols aggregate the segments' airtime;
	// Goodput is payload bits per channel symbol over both.
	SymbolsSent int
	AckSymbols  int
	Goodput     float64
	// Foreign holds flows that resolved during the fetch but belong to
	// the surrounding session (Config.Session), not this fetch.
	Foreign []link.Result
}

// segment is one pipelined unit of the payload in flight.
type segment struct {
	index  int
	data   []byte
	tries  int
	txStep int  // step clock value when the current attempt was admitted
	sample bool // an ack-telemetry RTT sample was taken for this attempt
}

// Fetcher streams payloads over a link session as congestion-controlled
// segment pipelines. It is single-threaded: one Fetch at a time, and the
// fetcher must not be shared across goroutines.
type Fetcher struct {
	cfg   Config
	sess  *link.Session
	owned bool
	rtt   *rttEstimator

	// step is the fetcher's round clock, advanced once per engine round
	// it drives; both RTT sample endpoints use it.
	step     int
	inflight map[link.FlowID]*segment
}

// NewFetcher builds a fetcher and, unless cfg.Session is set, its own
// link session from cfg.Params and cfg.Options.
func NewFetcher(cfg Config) (*Fetcher, error) {
	f := &Fetcher{
		cfg:      cfg,
		rtt:      newRTTEstimator(cfg.initRTO(), cfg.minRTO(), cfg.maxRTO()),
		inflight: make(map[link.FlowID]*segment),
	}
	switch cfg.Control {
	case "", "cubic", "aimd":
	default:
		return nil, fmt.Errorf("transport: unknown congestion control %q", cfg.Control)
	}
	if cfg.Session != nil {
		f.sess = cfg.Session
		return f, nil
	}
	p := cfg.Params
	if p == (spinal.Params{}) {
		p = spinal.DefaultParams()
	}
	opts := append(append([]link.Option(nil), cfg.Options...),
		link.WithFeedbackObserver(f))
	s, err := link.NewSession(p, opts...)
	if err != nil {
		return nil, err
	}
	f.sess, f.owned = s, true
	return f, nil
}

// Close releases the fetcher's own session; a caller-provided
// Config.Session is left open for its owner.
func (f *Fetcher) Close() error {
	if !f.owned {
		return nil
	}
	return f.sess.Close()
}

// ObserveFeedback implements link.FeedbackObserver: the first delivered
// ack of each in-flight segment's attempt is an RTT sample — the
// earliest telemetry the reverse channel offers, rounds before the
// segment completes. Called synchronously from inside the session's
// Step, on the fetching goroutine.
func (f *Fetcher) ObserveFeedback(ev link.FeedbackEvent) {
	if ev.Kind != link.AckDelivered {
		return
	}
	seg, ok := f.inflight[ev.Flow]
	if !ok || seg.sample {
		return
	}
	seg.sample = true
	f.rtt.observe(f.step + 1 - seg.txStep) // the current round is completing
}

// Fetch streams payload through the session as a pipeline of segments
// and returns the reassembled bytes with transfer statistics. On context
// cancellation or a segment exhausting its retries it returns the error;
// segments still in flight keep transmitting on the session and are
// drained (and accounted) by the session's next user.
func (f *Fetcher) Fetch(ctx context.Context, payload []byte) (*Result, error) {
	segBytes := f.cfg.segmentBytes()
	n := (len(payload) + segBytes - 1) / segBytes
	if n == 0 {
		n = 1 // an empty payload is one empty segment, not zero work
	}
	queue := make([]*segment, n)
	for i := range queue {
		lo := i * segBytes
		hi := lo + segBytes
		if lo > len(payload) {
			lo = len(payload)
		}
		if hi > len(payload) {
			hi = len(payload)
		}
		queue[i] = &segment{index: i, data: payload[lo:hi]}
	}

	var ctl controller
	if f.cfg.Control == "aimd" {
		ctl = newAIMD(f.cfg.initWindow(), f.cfg.maxWindow())
	} else {
		ctl = newCubic(f.cfg.initWindow(), f.cfg.maxWindow())
	}

	res := &Result{Segments: n, CwndMax: ctl.window()}
	parts := make([][]byte, n)
	delivered := 0
	// Deduplicate loss events: only a segment launched after the last
	// window reduction may reduce it again (RFC 6298 / Karn's-algorithm
	// spirit — one congestion event per window generation).
	lastLoss := -1

	for delivered < n {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for len(queue) > 0 && len(f.inflight) < int(ctl.window()) {
			seg := queue[0]
			queue = queue[1:]
			budget := f.rtt.backoff(seg.tries)
			id, err := f.sess.Send(seg.data, link.WithMaxRounds(budget))
			if err != nil {
				return nil, err
			}
			seg.txStep = f.step
			seg.sample = false
			f.inflight[id] = seg
		}
		results, err := f.sess.Step(ctx)
		if err != nil {
			return nil, err
		}
		f.step++
		res.Steps++
		for i := range results {
			r := results[i]
			seg, mine := f.inflight[r.ID]
			if !mine {
				res.Foreign = append(res.Foreign, r)
				continue
			}
			delete(f.inflight, r.ID)
			res.SymbolsSent += r.Stats.SymbolsSent
			res.AckSymbols += r.Stats.AckSymbols
			if r.Err == nil {
				if !seg.sample {
					// No ack telemetry (no WithFeedback, or a shared
					// session): the completion itself is the RTT sample.
					f.rtt.observe(f.step - seg.txStep)
				}
				parts[seg.index] = r.Datagram
				delivered++
				ctl.onAck(f.step, f.rtt.srtt)
				continue
			}
			// Any resolution error — budget exhaustion (the designed RTO
			// path), a deadline, an outage — is a loss signal.
			seg.tries++
			res.Retries++
			if seg.tries > f.cfg.maxRetries() {
				return nil, fmt.Errorf("%w: segment %d after %d attempts (last: %v)",
					ErrSegmentRetries, seg.index, seg.tries, r.Err)
			}
			if seg.txStep > lastLoss {
				ctl.onLoss(f.step)
				lastLoss = f.step
				res.Losses++
			}
			queue = append([]*segment{seg}, queue...) // retry first: in-order bias
		}
		if w := ctl.window(); w > res.CwndMax {
			res.CwndMax = w
		}
		if f.cfg.WindowTrace != nil {
			f.cfg.WindowTrace(f.step, ctl.window())
		}
	}

	for _, p := range parts {
		res.Payload = append(res.Payload, p...)
	}
	res.SRTT = f.rtt.srtt
	res.RTO = f.rtt.rto
	res.CwndFinal = ctl.window()
	if air := res.SymbolsSent + res.AckSymbols; air > 0 {
		res.Goodput = float64(8*len(res.Payload)) / float64(air)
	}
	return res, nil
}

// Fetch is the one-shot convenience: build a fetcher, stream payload,
// close. See Fetcher for the reusable form.
func Fetch(ctx context.Context, payload []byte, cfg Config) (*Result, error) {
	f, err := NewFetcher(cfg)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return f.Fetch(ctx, payload)
}
