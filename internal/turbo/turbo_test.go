package turbo

import (
	"math/rand"
	"testing"

	"spinal/internal/channel"
)

func randBits(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(rng.Intn(2))
	}
	return b
}

func TestTrellisTables(t *testing.T) {
	// Every state must have two distinct successors, and the trellis must
	// be a permutation per input (each state has exactly two predecessors
	// in total).
	pred := make(map[uint8]int)
	for s := 0; s < states; s++ {
		if nextState[s][0] == nextState[s][1] {
			t.Fatalf("state %d: inputs lead to same successor", s)
		}
		pred[nextState[s][0]]++
		pred[nextState[s][1]]++
	}
	for s := 0; s < states; s++ {
		if pred[uint8(s)] != 2 {
			t.Fatalf("state %d has %d predecessors, want 2", s, pred[uint8(s)])
		}
	}
}

func TestRSCRecursive(t *testing.T) {
	// An RSC's response to a single 1 must be infinite (recursive): the
	// parity stream after the impulse should not become all-zero.
	bits := make([]byte, 64)
	bits[0] = 1
	p1, _ := rscEncode(bits)
	nz := 0
	for _, b := range p1[1:] {
		if b == 1 {
			nz++
		}
	}
	if nz < 10 {
		t.Fatalf("impulse response dies out: %d ones", nz)
	}
}

func TestInterleaverRoundTrip(t *testing.T) {
	il := NewInterleaver(100, 3)
	in := make([]float64, 100)
	for i := range in {
		in[i] = float64(i)
	}
	mid := make([]float64, 100)
	out := make([]float64, 100)
	permuteF64(mid, in, il.perm)
	permuteF64(out, mid, il.inv)
	for i := range in {
		if out[i] != in[i] {
			t.Fatal("interleaver inverse broken")
		}
	}
	// Must actually permute.
	same := 0
	for i := range in {
		if mid[i] == in[i] {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("interleaver nearly identity: %d fixed points", same)
	}
}

func TestCodedBits(t *testing.T) {
	if NewCode(100, true, 1).CodedBits() != 500 {
		t.Fatal("rate 1/5 coded bits wrong")
	}
	if NewCode(100, false, 1).CodedBits() != 300 {
		t.Fatal("rate 1/3 coded bits wrong")
	}
}

func TestEncodeSystematic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := NewCode(64, true, 9)
	info := randBits(rng, 64)
	coded := c.Encode(info)
	for i := 0; i < 64; i++ {
		if coded[i*5] != info[i] {
			t.Fatalf("systematic bit %d not present in stream", i)
		}
	}
}

func TestDecodeNoiseless(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, rate15 := range []bool{true, false} {
		c := NewCode(128, rate15, 11)
		info := randBits(rng, 128)
		coded := c.Encode(info)
		llr := make([]float64, len(coded))
		for i, b := range coded {
			if b == 0 {
				llr[i] = 10
			} else {
				llr[i] = -10
			}
		}
		got := c.Decode(llr, 4)
		for i := range info {
			if got[i] != info[i] {
				t.Fatalf("rate15=%v: noiseless decode wrong at bit %d", rate15, i)
			}
		}
	}
}

// bpskTurboTrial encodes, transmits over AWGN with BPSK and decodes;
// reports whether the block was recovered.
func bpskTurboTrial(c *Code, snrDB float64, seed int64, iters int) bool {
	rng := rand.New(rand.NewSource(seed))
	info := randBits(rng, c.N())
	coded := c.Encode(info)
	ch := channel.NewAWGN(snrDB, seed+1000)
	const a = 0.7071067811865476
	syms := make([]complex128, (len(coded)+1)/2)
	for i := range syms {
		re, im := a, a
		if coded[2*i] == 1 {
			re = -a
		}
		if 2*i+1 < len(coded) && coded[2*i+1] == 1 {
			im = -a
		}
		syms[i] = complex(re, im)
	}
	y := ch.Transmit(syms)
	sigma2 := ch.NoiseVar() / 2
	llr := make([]float64, len(coded))
	for i := range coded {
		var v float64
		if i%2 == 0 {
			v = real(y[i/2])
		} else {
			v = imag(y[i/2])
		}
		llr[i] = 2 * a * v / sigma2
	}
	got := c.Decode(llr, iters)
	for i := range info {
		if got[i] != info[i] {
			return false
		}
	}
	return true
}

func TestDecodeNearCapacity(t *testing.T) {
	// Rate 1/5 with QPSK carries 0.4 bits/symbol; Shannon needs −5.0 dB.
	// A decent turbo code should decode reliably at −3 dB and fail at
	// −8 dB.
	c := NewCode(512, true, 21)
	okHigh, okLow := 0, 0
	for trial := int64(0); trial < 6; trial++ {
		if bpskTurboTrial(c, -3, trial, 8) {
			okHigh++
		}
		if bpskTurboTrial(c, -8, 100+trial, 8) {
			okLow++
		}
	}
	if okHigh < 5 {
		t.Errorf("rate-1/5 turbo at −3 dB: only %d/6 decoded", okHigh)
	}
	if okLow > 1 {
		t.Errorf("rate-1/5 turbo at −8 dB: %d/6 decoded (below Shannon limit!)", okLow)
	}
}

func TestIterationsHelp(t *testing.T) {
	// At a marginal SNR, 8 iterations should succeed at least as often as
	// 1 iteration.
	c := NewCode(256, true, 31)
	one, eight := 0, 0
	for trial := int64(0); trial < 8; trial++ {
		if bpskTurboTrial(c, -4.0, 200+trial, 1) {
			one++
		}
		if bpskTurboTrial(c, -4.0, 200+trial, 8) {
			eight++
		}
	}
	if eight < one {
		t.Fatalf("more iterations hurt: 1 iter %d/8, 8 iters %d/8", one, eight)
	}
}

func TestRate13Decodes(t *testing.T) {
	c := NewCode(256, false, 41)
	ok := 0
	for trial := int64(0); trial < 5; trial++ {
		// Rate 1/3 QPSK = 2/3 bits/symbol, Shannon ≈ −2.3 dB; run at 1 dB.
		if bpskTurboTrial(c, 1, 300+trial, 8) {
			ok++
		}
	}
	if ok < 4 {
		t.Fatalf("rate-1/3 turbo at 1 dB: only %d/5 decoded", ok)
	}
}

func BenchmarkTurboDecode(b *testing.B) {
	c := NewCode(512, true, 21)
	rng := rand.New(rand.NewSource(60))
	info := randBits(rng, 512)
	coded := c.Encode(info)
	llr := make([]float64, len(coded))
	for i, bit := range coded {
		if bit == 0 {
			llr[i] = 2
		} else {
			llr[i] = -2
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Decode(llr, 8)
	}
}
