// Package turbo implements the rate-1/5 parallel-concatenated
// convolutional (turbo) code that Strider uses as its base code (§8), with
// a log-MAP BCJR decoder for the constituent recursive systematic
// convolutional (RSC) codes and iterative extrinsic exchange.
//
// The RSC constituents have memory 3 with feedback polynomial 13 (octal)
// and output polynomials 15 and 17 (octal), the 3GPP-style choice. The
// rate-1/5 code transmits the systematic stream plus two parity streams
// from each constituent; rate 1/3 transmits one parity stream from each.
// Trellises start in state 0 and are left unterminated (a documented
// simplification; end effects are negligible at the block sizes used).
package turbo

import (
	"math"
	"math/rand"
)

const (
	memory = 3
	states = 1 << memory

	// Polynomial masks, bit 0 = current feedback input a_k, bit i =
	// register a_{k-i}. 13 octal = 1+D+D³, 15 octal = 1+D²+D³,
	// 17 octal = 1+D+D²+D³.
	polyFB   = 0b1011
	polyOut1 = 0b1101
	polyOut2 = 0b1111
)

// trellis transition tables, indexed [state][input].
var (
	nextState [states][2]uint8
	outP1     [states][2]uint8
	outP2     [states][2]uint8
)

func init() {
	for s := 0; s < states; s++ {
		for u := 0; u < 2; u++ {
			fb := uint8(u) ^ parity8(uint8(s)&uint8(polyFB>>1))
			nextState[s][u] = (uint8(s)<<1 | fb) & (states - 1)
			outP1[s][u] = (uint8(polyOut1) & 1 * fb) ^ parity8(uint8(s)&uint8(polyOut1>>1))
			outP2[s][u] = (uint8(polyOut2) & 1 * fb) ^ parity8(uint8(s)&uint8(polyOut2>>1))
		}
	}
}

func parity8(b uint8) uint8 {
	b ^= b >> 4
	b ^= b >> 2
	b ^= b >> 1
	return b & 1
}

// rscEncode runs one RSC constituent over bits, returning the two parity
// streams.
func rscEncode(bits []byte) (p1, p2 []byte) {
	p1 = make([]byte, len(bits))
	p2 = make([]byte, len(bits))
	var s uint8
	for i, u := range bits {
		u &= 1
		p1[i] = outP1[s][u]
		p2[i] = outP2[s][u]
		s = nextState[s][u]
	}
	return p1, p2
}

// Interleaver is a pseudo-random permutation shared by encoder and
// decoder.
type Interleaver struct {
	perm []int32
	inv  []int32
}

// NewInterleaver builds a deterministic length-n interleaver from seed.
func NewInterleaver(n int, seed int64) *Interleaver {
	rng := rand.New(rand.NewSource(seed))
	p := rng.Perm(n)
	il := &Interleaver{perm: make([]int32, n), inv: make([]int32, n)}
	for i, v := range p {
		il.perm[i] = int32(v)
		il.inv[v] = int32(i)
	}
	return il
}

// Len reports the interleaver length.
func (il *Interleaver) Len() int { return len(il.perm) }

func permuteBytes(out, in []byte, idx []int32) {
	for i, v := range idx {
		out[i] = in[v]
	}
}

func permuteF64(out, in []float64, idx []int32) {
	for i, v := range idx {
		out[i] = in[v]
	}
}

// Code is a turbo code over n-bit blocks.
type Code struct {
	n      int
	il     *Interleaver
	rate15 bool
}

// NewCode creates a turbo code for n-bit information blocks. rate15
// selects rate 1/5 (Strider's base); false gives rate 1/3.
func NewCode(n int, rate15 bool, seed int64) *Code {
	if n < 8 {
		panic("turbo: block too short")
	}
	return &Code{n: n, il: NewInterleaver(n, seed), rate15: rate15}
}

// N reports the information block length in bits.
func (c *Code) N() int { return c.n }

// CodedBits reports the number of coded bits per block.
func (c *Code) CodedBits() int {
	if c.rate15 {
		return 5 * c.n
	}
	return 3 * c.n
}

// Encode produces the coded bit stream: systematic, then parity streams
// interleaved per-bit as [sys, p1a, (p1b,) p2a, (p2b)] groups so the
// stream degrades gracefully under truncation.
func (c *Code) Encode(info []byte) []byte {
	if len(info) != c.n {
		panic("turbo: wrong info length")
	}
	p1a, p1b := rscEncode(info)
	inter := make([]byte, c.n)
	permuteBytes(inter, info, c.il.perm)
	p2a, p2b := rscEncode(inter)

	out := make([]byte, 0, c.CodedBits())
	for i := 0; i < c.n; i++ {
		if c.rate15 {
			out = append(out, info[i]&1, p1a[i], p1b[i], p2a[i], p2b[i])
		} else {
			out = append(out, info[i]&1, p1a[i], p2a[i])
		}
	}
	return out
}

// Decode runs iterative log-MAP decoding over per-coded-bit LLRs
// (positive ⇒ bit 0), laid out as Encode produced them. It returns the
// hard-decision information bits.
func (c *Code) Decode(llr []float64, iterations int) []byte {
	if len(llr) != c.CodedBits() {
		panic("turbo: wrong LLR length")
	}
	n := c.n
	lsys := make([]float64, n)
	l1a := make([]float64, n)
	l1b := make([]float64, n)
	l2a := make([]float64, n)
	l2b := make([]float64, n)
	group := 3
	if c.rate15 {
		group = 5
	}
	for i := 0; i < n; i++ {
		lsys[i] = llr[i*group]
		l1a[i] = llr[i*group+1]
		if c.rate15 {
			l1b[i] = llr[i*group+2]
			l2a[i] = llr[i*group+3]
			l2b[i] = llr[i*group+4]
		} else {
			l2a[i] = llr[i*group+2]
		}
	}

	lsysI := make([]float64, n) // systematic LLRs in interleaved order
	permuteF64(lsysI, lsys, c.il.perm)

	ext1 := make([]float64, n) // extrinsic from decoder 1 (natural order)
	ext2 := make([]float64, n) // extrinsic from decoder 2 (natural order)
	apri := make([]float64, n)

	var bcjr bcjrState
	bcjr.init(n)

	for iter := 0; iter < iterations; iter++ {
		// Decoder 1: a priori = deinterleaved extrinsic of decoder 2.
		bcjr.run(lsys, l1a, l1b, ext2, ext1)
		// Decoder 2: a priori = interleaved extrinsic of decoder 1.
		permuteF64(apri, ext1, c.il.perm)
		bcjr.run(lsysI, l2a, l2b, apri, apri)
		permuteF64(ext2, apri, c.il.inv)
	}

	info := make([]byte, n)
	for i := 0; i < n; i++ {
		post := lsys[i] + ext1[i] + ext2[i]
		if post < 0 {
			info[i] = 1
		}
	}
	return info
}

// bcjrState holds reusable buffers for the log-MAP forward-backward pass.
type bcjrState struct {
	alpha [][states]float64
	beta  [][states]float64
}

func (b *bcjrState) init(n int) {
	b.alpha = make([][states]float64, n+1)
	b.beta = make([][states]float64, n+1)
}

// run executes log-MAP BCJR for one constituent. lp2 may be all zeros
// (rate 1/3). apri is the a priori LLR per info bit; ext receives the
// extrinsic output (may alias apri).
func (b *bcjrState) run(lsys, lp1, lp2, apri, ext []float64) {
	n := len(lsys)
	negInf := math.Inf(-1)

	// gamma for (state, u): branch metric. Using the convention
	// L > 0 ⇒ bit 0, the metric contribution of bit value v under LLR L
	// is -v·L (up to a constant common to both hypotheses).
	gamma := func(i, s, u int) float64 {
		g := 0.0
		if u == 1 {
			g -= lsys[i] + apri[i]
		}
		if outP1[s][u] == 1 {
			g -= lp1[i]
		}
		if outP2[s][u] == 1 {
			g -= lp2[i]
		}
		return g
	}

	// Forward.
	for s := 0; s < states; s++ {
		b.alpha[0][s] = negInf
	}
	b.alpha[0][0] = 0
	for i := 0; i < n; i++ {
		for s := 0; s < states; s++ {
			b.alpha[i+1][s] = negInf
		}
		for s := 0; s < states; s++ {
			a := b.alpha[i][s]
			if math.IsInf(a, -1) {
				continue
			}
			for u := 0; u < 2; u++ {
				ns := nextState[s][u]
				m := a + gamma(i, s, u)
				b.alpha[i+1][ns] = logMax(b.alpha[i+1][ns], m)
			}
		}
	}

	// Backward; unterminated trellis ⇒ uniform beta at the end.
	for s := 0; s < states; s++ {
		b.beta[n][s] = 0
	}
	for i := n - 1; i >= 0; i-- {
		for s := 0; s < states; s++ {
			m0 := b.beta[i+1][nextState[s][0]] + gamma(i, s, 0)
			m1 := b.beta[i+1][nextState[s][1]] + gamma(i, s, 1)
			b.beta[i][s] = logMax(m0, m1)
		}
	}

	// Extrinsic LLR per bit.
	for i := 0; i < n; i++ {
		l0, l1 := negInf, negInf
		for s := 0; s < states; s++ {
			a := b.alpha[i][s]
			if math.IsInf(a, -1) {
				continue
			}
			l0 = logMax(l0, a+gamma(i, s, 0)+b.beta[i+1][nextState[s][0]])
			l1 = logMax(l1, a+gamma(i, s, 1)+b.beta[i+1][nextState[s][1]])
		}
		full := l0 - l1
		ext[i] = full - lsys[i] - apri[i]
	}
}

// logMax is the max* operator: log(e^a + e^b).
func logMax(a, c float64) float64 {
	if math.IsInf(a, -1) {
		return c
	}
	if math.IsInf(c, -1) {
		return a
	}
	if a < c {
		a, c = c, a
	}
	return a + math.Log1p(math.Exp(c-a))
}
