package core

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzQuantizedDecode drives the fixed-point kernel with adversarial
// received planes — NaN, ±Inf, huge magnitudes, denormals, anything a
// corrupted radio front end could hand the decoder — and holds it to the
// saturation contract: never panic, never overflow (the reported cost is
// finite and non-negative no matter the input), and on inputs inside
// the quantizer's representable range stay within quantization
// tolerance of the float64 reference path.
// raw is consumed 8 bytes at a time as IEEE-754 bit patterns
// overriding the clean channel outputs, so the interesting encodings
// (0x7ff0... = +Inf, 0x7ff8... = NaN) are reachable by bit flips.
func FuzzQuantizedDecode(f *testing.F) {
	// Clean transmission, no overrides.
	f.Add(uint32(1), byte(3), byte(2), byte(48), []byte{})
	// A NaN and a +Inf plane value on an otherwise clean transmission.
	f.Add(uint32(2), byte(0), byte(1), byte(16),
		[]byte{0, 0, 0, 0, 0, 0, 0xf8, 0x7f, 0, 0, 0, 0, 0, 0, 0xf0, 0x7f})
	// Huge finite magnitudes (~1e308) that overflow squared distances.
	f.Add(uint32(3), byte(2), byte(0), byte(32),
		[]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xef, 0x7f, 1, 0, 0, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, pseed uint32, kb, bb, nb byte, raw []byte) {
		k := 1 + int(kb%4)
		B := 4 << (bb % 4)
		nBits := 16 + int(nb)%112
		pQ := Params{K: k, B: B, D: 1, C: 6, Tail: 2, Ways: 8, Seed: pseed, Kernel: KernelQuantized}
		pF := pQ
		pF.Kernel = KernelFloat

		msg := make([]byte, (nBits+7)/8)
		for i := range msg {
			msg[i] = byte(pseed>>uint(8*(i%4))) ^ byte(i*29)
		}
		if nBits%8 != 0 {
			msg[len(msg)-1] &= (1 << uint(nBits%8)) - 1
		}

		enc := NewEncoder(msg, nBits, pQ)
		decQ := NewDecoder(nBits, pQ)
		decF := NewDecoder(nBits, pF)
		sched := enc.NewSchedule()

		// inContract tracks whether every overridden plane value stays
		// within the quantizer's representable range: non-finite values
		// and magnitudes beyond quantAbsYLimit saturate by design (they
		// get no say in the quantization scale), so the tolerance
		// contract — and the kernel comparison below — only applies when
		// none were injected.
		inContract := true
		cursor := 0
		next := func(clean float64) float64 {
			if cursor+8 > len(raw) {
				return clean
			}
			v := math.Float64frombits(binary.LittleEndian.Uint64(raw[cursor:]))
			cursor += 8
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > quantAbsYLimit {
				inContract = false
			}
			return v
		}
		for sub := 0; sub < pQ.Ways; sub++ {
			ids := sched.NextSubpass()
			x := enc.Symbols(ids)
			y := make([]complex128, len(x))
			for i := range x {
				y[i] = complex(next(real(x[i])), next(imag(x[i])))
			}
			decQ.Add(ids, y)
			decF.Add(ids, y)
		}

		msgQ, costQ := decQ.Decode() // must not panic on any input
		if len(msgQ) != len(msg) {
			t.Fatalf("quantized decode returned %d bytes for a %d-bit message", len(msgQ), nBits)
		}
		if math.IsNaN(costQ) || math.IsInf(costQ, 0) || costQ < 0 {
			t.Fatalf("quantized cost %g is not a finite non-negative value — saturation failed", costQ)
		}
		if decQ.KernelUsed() != KernelQuantized {
			t.Fatalf("fuzz input unexpectedly fell back to kernel %d", decQ.KernelUsed())
		}

		if !inContract {
			return
		}
		// In-range inputs: the kernels must agree up to quantization
		// error, measured in the float reference metric (see
		// quant_equivalence_test.go for the contract).
		msgF, costF := decF.Decode()
		if math.IsNaN(costF) || math.IsInf(costF, 0) {
			return
		}
		ref := newRefDecoder(nBits, pF)
		s2 := enc.NewSchedule()
		cursor = 0
		for sub := 0; sub < pF.Ways; sub++ {
			ids := s2.NextSubpass()
			x := enc.Symbols(ids)
			y := make([]complex128, len(x))
			for i := range x {
				y[i] = complex(next(real(x[i])), next(imag(x[i])))
			}
			ref.addFaded(ids, y, nil)
		}
		tol := decQ.QuantTolerance()
		if diff := math.Abs(costQ - ref.pathCost(msgQ)); diff > tol {
			t.Fatalf("quantized cost off by %g from its message's float path cost (tol %g)", diff, tol)
		}
		if !bytes.Equal(msgQ, msgF) {
			if d := ref.pathCost(msgQ) - costF; d > 2*tol {
				t.Fatalf("kernels disagree beyond tolerance on finite input: +%g (2·tol=%g)", d, 2*tol)
			}
		}
	})
}
