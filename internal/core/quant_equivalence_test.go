package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"spinal/internal/channel"
	"spinal/internal/hashfn"
)

// This file pins the fixed-point kernel (quant.go + internal/hw) against
// the float64 reference path at the accuracy the quantizer contract
// promises: the dequantized path cost of the returned message is within
// Decoder.QuantTolerance() of its float path cost, and whenever the two
// kernels disagree on the message the quantized pick is a near-tie —
// within twice the tolerance of the float winner, the §4.3 latitude plus
// quantization error. equivalence_test.go pins the float path itself at
// 1e-9 against a seed-style reference.

// quantGridCell decodes one encoded transmission with both kernels fed
// byte-identical symbols and cross-checks them via the float reference
// metric.
func quantGridCell(t *testing.T, rng *rand.Rand, nBits, beam int, snr float64, seed int64) (agree, quantCorrect, floatCorrect bool) {
	t.Helper()
	pF := Params{K: 4, B: beam, D: 1, C: 6, Tail: 2, Ways: 8, Kernel: KernelFloat}
	pQ := pF
	pQ.Kernel = KernelQuantized

	msg := randomMessage(rng, nBits)
	enc := NewEncoder(msg, nBits, pF)
	decF := NewDecoder(nBits, pF)
	decQ := NewDecoder(nBits, pQ)
	ref := newRefDecoder(nBits, pF)
	sched := enc.NewSchedule()
	ch := channel.NewAWGN(snr, seed)
	for sub := 0; sub < 2*pF.Ways; sub++ {
		ids := sched.NextSubpass()
		y := ch.Transmit(enc.Symbols(ids))
		decF.Add(ids, y)
		decQ.Add(ids, y)
		ref.addFaded(ids, y, nil)
	}

	msgF, costF := decF.Decode()
	msgQ, costQ := decQ.Decode()
	if decF.KernelUsed() != KernelFloat {
		t.Fatalf("float decoder ran on kernel %d", decF.KernelUsed())
	}
	if decQ.KernelUsed() != KernelQuantized {
		t.Fatalf("quantized decoder fell back to kernel %d (nBits=%d B=%d snr=%g)",
			decQ.KernelUsed(), nBits, beam, snr)
	}
	tol := decQ.QuantTolerance()
	if tol <= 0 {
		t.Fatal("QuantTolerance must be positive after a quantized decode")
	}

	// The float path must be self-consistent (re-checked cheaply here so
	// grid failures are attributable), and the quantized cost must match
	// the float-arithmetic cost of the message it actually returned to
	// within the documented tolerance.
	if !relClose(costF, ref.pathCost(msgF)) {
		t.Fatalf("float decoder inconsistent with itself: %g vs %g", costF, ref.pathCost(msgF))
	}
	if diff := math.Abs(costQ - ref.pathCost(msgQ)); diff > tol {
		t.Fatalf("quantized cost %g is %g from the float path cost of its message; tolerance %g (nBits=%d B=%d snr=%g)",
			costQ, diff, tol, nBits, beam, snr)
	}

	// Kernel agreement: identical bits, or a near-tie. A float winner
	// beaten by more than quantization error can never lose the quantized
	// selection, so pathCost(msgQ) must be within 2·tol of costF — §4.3
	// tie-breaking widened by the arithmetic contract.
	if !bytes.Equal(msgF, msgQ) {
		if d := ref.pathCost(msgQ) - costF; d > 2*tol {
			t.Fatalf("kernels disagree beyond tolerance: quantized message costs %g more than the float winner (2·tol=%g, nBits=%d B=%d snr=%g)",
				d, 2*tol, nBits, beam, snr)
		}
	}
	return bytes.Equal(msgF, msgQ), bytes.Equal(msgQ, msg), bytes.Equal(msgF, msg)
}

// TestQuantFloatEquivalenceGrid sweeps SNR × block size × beam width.
// Beyond the per-cell contracts, the grid as a whole must show the two
// kernels overwhelmingly agreeing bit for bit, and the quantized kernel
// losing no decoding power: wherever float recovers the true message,
// quantized does too except for (rare, tolerated) near-ties.
func TestQuantFloatEquivalenceGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(501))
	cells, agreeN := 0, 0
	floatWins, quantWins := 0, 0
	seed := int64(9000)
	for _, snr := range []float64{6, 12, 20} {
		for _, nBits := range []int{32, 96, 256} {
			for _, beam := range []int{8, 64, 256} {
				seed++
				agree, qc, fc := quantGridCell(t, rng, nBits, beam, snr, seed)
				cells++
				if agree {
					agreeN++
				}
				if fc && !qc {
					floatWins++
				}
				if qc && !fc {
					quantWins++
				}
			}
		}
	}
	if agreeN < cells*3/4 {
		t.Fatalf("kernels agree on only %d/%d grid cells — tie-breaking noise should be rare", agreeN, cells)
	}
	if floatWins > cells/10 {
		t.Fatalf("quantized kernel lost the true message on %d/%d cells where float found it", floatWins, cells)
	}
	t.Logf("grid: %d cells, %d bit-identical, float-only correct %d, quant-only correct %d",
		cells, agreeN, floatWins, quantWins)
}

// TestQuantDecodeDeterministic: the quantized decode is a pure function
// of the stored symbols — repeated decodes of one decoder and decodes of
// an identically-fed fresh decoder return byte-identical messages and
// bit-identical costs (selection over unique packed keys leaves no room
// for block-boundary or encounter-order effects).
func TestQuantDecodeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(502))
	p := Params{K: 4, B: 64, D: 1, C: 6, Tail: 2, Ways: 8, Kernel: KernelQuantized}
	nBits := 192
	msg := randomMessage(rng, nBits)
	enc := NewEncoder(msg, nBits, p)
	dec1 := NewDecoder(nBits, p)
	dec2 := NewDecoder(nBits, p)
	sched := enc.NewSchedule()
	ch := channel.NewAWGN(10, 777)
	for sub := 0; sub < 2*p.Ways; sub++ {
		ids := sched.NextSubpass()
		y := ch.Transmit(enc.Symbols(ids))
		dec1.Add(ids, y)
		dec2.Add(ids, y)
	}
	m1, c1 := dec1.Decode()
	first := append([]byte(nil), m1...)
	for i := 0; i < 5; i++ {
		m, c := dec1.Decode()
		if !bytes.Equal(m, first) || c != c1 {
			t.Fatalf("decode %d of the same decoder drifted: cost %g vs %g", i, c, c1)
		}
	}
	m2, c2 := dec2.Decode()
	if !bytes.Equal(m2, first) || c2 != c1 {
		t.Fatalf("identically-fed decoder drifted: cost %g vs %g", c2, c1)
	}
	if dec1.KernelUsed() != KernelQuantized || dec2.KernelUsed() != KernelQuantized {
		t.Fatal("determinism test did not exercise the quantized kernel")
	}
}

// TestQuantDecodeSteadyStateAllocs: the quantized path owns all its
// scratch; after warmup a decode performs zero allocations (the float
// analogue is TestDecodeSteadyStateAllocs).
func TestQuantDecodeSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(503))
	p := Params{K: 4, B: 64, D: 1, C: 6, Tail: 2, Ways: 8, Kernel: KernelQuantized}
	nBits := 256
	msg := randomMessage(rng, nBits)
	enc := NewEncoder(msg, nBits, p)
	dec := NewDecoder(nBits, p)
	ch := channel.NewAWGN(15, 44)
	sched := enc.NewSchedule()
	for sub := 0; sub < 2*p.Ways; sub++ {
		ids := sched.NextSubpass()
		dec.Add(ids, ch.Transmit(enc.Symbols(ids)))
	}
	for i := 0; i < 3; i++ {
		dec.Decode()
	}
	if dec.KernelUsed() != KernelQuantized {
		t.Fatalf("allocs test did not exercise the quantized kernel (got %d)", dec.KernelUsed())
	}
	if avg := testing.AllocsPerRun(20, func() { dec.Decode() }); avg != 0 {
		t.Fatalf("steady-state quantized Decode allocates: %g allocs/op", avg)
	}
}

// TestQuantKernelFallbacks: every condition the quantized kernel cannot
// serve routes the decode to the float path — visibly, via KernelUsed —
// rather than silently degrading: per-symbol fading, lookahead D>1, a
// non-one-at-a-time hash, a state stash beyond the quantMaxStates bound,
// and an explicit KernelFloat request. QuantTolerance is zero whenever
// the float path answered.
func TestQuantKernelFallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(504))
	run := func(name string, p Params, faded bool) {
		t.Helper()
		nBits := 64
		msg := randomMessage(rng, nBits)
		enc := NewEncoder(msg, nBits, p)
		dec := NewDecoder(nBits, p)
		s := enc.NewSchedule()
		ch := channel.NewAWGN(14, 99)
		for sub := 0; sub < 2*p.Ways; sub++ {
			ids := s.NextSubpass()
			x := enc.Symbols(ids)
			if faded {
				y := ch.Transmit(x)
				h := make([]complex128, len(y))
				for i := range h {
					h[i] = 1
				}
				dec.AddFaded(ids, y, h)
			} else {
				dec.Add(ids, ch.Transmit(x))
			}
		}
		got, _ := dec.Decode()
		if dec.KernelUsed() != KernelFloat {
			t.Fatalf("%s: expected float fallback, ran kernel %d", name, dec.KernelUsed())
		}
		if dec.QuantTolerance() != 0 {
			t.Fatalf("%s: QuantTolerance %g after a float decode", name, dec.QuantTolerance())
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("%s: fallback decode failed outright", name)
		}
	}

	base := Params{K: 4, B: 16, D: 1, C: 6, Tail: 2, Ways: 8, Kernel: KernelQuantized}

	run("faded symbols", base, true)

	d2 := base
	d2.D = 2
	run("lookahead d=2", d2, false)

	l3 := base
	l3.Hash = hashfn.Lookup3{}
	run("non-OAAT hash", l3, false)

	wide := base
	wide.K = 8
	wide.B = 1 << 15 // B·2^K = 2^23 > quantMaxStates
	run("state stash bound", wide, false)

	forced := base
	forced.Kernel = KernelFloat
	run("explicit KernelFloat", forced, false)
}
