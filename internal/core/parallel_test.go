package core

import (
	"bytes"
	"math/rand"
	"runtime"
	"testing"

	"spinal/internal/channel"
)

func TestDecodeParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	p := testParams()
	p.B = 64
	// Serial-vs-parallel sharding is a float-path property; the parallel
	// decoder has no quantized mode, so exact cost comparison needs the
	// serial side on the same arithmetic.
	p.Kernel = KernelFloat
	nBits := 192
	for trial := 0; trial < 4; trial++ {
		msg := randomMessage(rng, nBits)
		enc := NewEncoder(msg, nBits, p)
		dec := NewDecoder(nBits, p)
		ch := channel.NewAWGN(12, int64(600+trial))
		sched := enc.NewSchedule()
		for sub := 0; sub < 3*p.Ways; sub++ {
			ids := sched.NextSubpass()
			dec.Add(ids, ch.Transmit(enc.Symbols(ids)))
		}
		serial, costS := dec.Decode()
		par, costP := dec.DecodeParallel(4)
		// Tie-breaking may differ, but both must produce the same message
		// whenever either is correct, and costs must agree when messages
		// agree.
		if bytes.Equal(serial, msg) != bytes.Equal(par, msg) {
			t.Fatalf("trial %d: serial correct=%v parallel correct=%v",
				trial, bytes.Equal(serial, msg), bytes.Equal(par, msg))
		}
		if bytes.Equal(serial, par) && costS != costP {
			t.Fatalf("trial %d: same message, different costs %g vs %g", trial, costS, costP)
		}
	}
}

func TestDecodeParallelNoiseless(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, workers := range []int{0, 1, 2, 8, 33} {
		p := testParams()
		nBits := 96
		msg := randomMessage(rng, nBits)
		enc := NewEncoder(msg, nBits, p)
		dec := NewDecoder(nBits, p)
		sched := enc.NewSchedule()
		for sub := 0; sub < p.Ways; sub++ {
			ids := sched.NextSubpass()
			dec.Add(ids, enc.Symbols(ids))
		}
		got, cost := dec.DecodeParallel(workers)
		if !bytes.Equal(got, msg) || cost != 0 {
			t.Fatalf("workers=%d: noiseless parallel decode failed", workers)
		}
	}
}

func TestDecodeParallelDeeperLookahead(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	p := testParams()
	p.D = 2
	p.B = 4
	nBits := 64
	msg := randomMessage(rng, nBits)
	enc := NewEncoder(msg, nBits, p)
	dec := NewDecoder(nBits, p)
	sched := enc.NewSchedule()
	for sub := 0; sub < p.Ways; sub++ {
		ids := sched.NextSubpass()
		dec.Add(ids, enc.Symbols(ids))
	}
	if got, _ := dec.DecodeParallel(3); !bytes.Equal(got, msg) {
		t.Fatal("parallel d=2 decode failed")
	}
}

func BenchmarkDecodeSerial(b *testing.B) {
	benchDecode(b, 1)
}

func BenchmarkDecodeParallel4(b *testing.B) {
	benchDecode(b, 4)
}

func benchDecode(b *testing.B, workers int) {
	if workers > 1 && runtime.GOMAXPROCS(0) < 2 {
		// On one scheduling core DecodeParallel can only measure goroutine
		// hand-off overhead (≈1.6x slower than serial here); skip rather
		// than publish a "parallel regression" that is really a machine
		// property.
		b.Skipf("parallel decode needs GOMAXPROCS >= 2, have %d", runtime.GOMAXPROCS(0))
	}
	rng := rand.New(rand.NewSource(33))
	// The parallel decoder has no quantized mode; pin the serial row to
	// the same float arithmetic so the pair compares sharding, not
	// kernels.
	p := Params{K: 4, B: 256, D: 1, C: 6, Tail: 2, Ways: 8, Kernel: KernelFloat}
	nBits := 256
	msg := randomMessage(rng, nBits)
	enc := NewEncoder(msg, nBits, p)
	dec := NewDecoder(nBits, p)
	sched := enc.NewSchedule()
	for sub := 0; sub < 2*p.Ways; sub++ {
		ids := sched.NextSubpass()
		dec.Add(ids, enc.Symbols(ids))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if workers == 1 {
			dec.Decode()
		} else {
			dec.DecodeParallel(workers)
		}
	}
}
