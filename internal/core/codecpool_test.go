package core

import (
	"bytes"
	"sync"
	"testing"
)

// TestCodecPoolRoundTrip runs many encode→decode jobs across shards and
// message lengths; every job must round-trip its message through the
// worker's pooled codecs.
func TestCodecPoolRoundTrip(t *testing.T) {
	p := Params{K: 4, B: 16, D: 1, C: 6, Tail: 2, Ways: 8}
	cp := NewCodecPool(p, 4)
	defer cp.Close()

	const jobs = 64
	sizes := []int{24, 48, 96}
	var wg sync.WaitGroup
	errs := make([]string, jobs)
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		cp.Submit(j, func(c *Codec) {
			defer wg.Done()
			nBits := sizes[j%len(sizes)]
			msg := make([]byte, (nBits+7)/8)
			for i := range msg {
				msg[i] = byte(j*31 + i*7)
			}
			enc := c.Encoder(msg, nBits)
			dec := c.Decoder(nBits)
			sched := enc.NewSchedule()
			for sub := 0; sub < 2*sched.Subpasses(); sub++ {
				ids := sched.NextSubpass()
				c.X = enc.AppendSymbols(c.X[:0], ids)
				dec.Add(ids, c.X) // noiseless
			}
			got, _ := dec.Decode()
			if !bytes.Equal(got, msg) {
				errs[j] = "round trip failed"
			}
		})
	}
	wg.Wait()
	for j, e := range errs {
		if e != "" {
			t.Fatalf("job %d: %s", j, e)
		}
	}

	st := cp.Stats()
	maxDec := int64(cp.Shards() * len(sizes))
	if st.EncodersBuilt > int64(cp.Shards()) {
		t.Errorf("built %d encoders for %d shards — not reused", st.EncodersBuilt, cp.Shards())
	}
	if st.DecodersBuilt > maxDec {
		t.Errorf("built %d decoders, want ≤ %d (shards × message lengths)", st.DecodersBuilt, maxDec)
	}
}

// TestCodecPoolShardOrdering: jobs submitted to one shard run in order on
// one goroutine, so unsynchronized per-shard state is safe.
func TestCodecPoolShardOrdering(t *testing.T) {
	cp := NewCodecPool(Params{K: 4, B: 4, D: 1, C: 6}, 2)
	defer cp.Close()
	const n = 100
	seq := make([]int, 0, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		cp.Submit(0, func(*Codec) {
			seq = append(seq, i)
			wg.Done()
		})
	}
	wg.Wait()
	for i, v := range seq {
		if v != i {
			t.Fatalf("shard ran job %d at position %d", v, i)
		}
	}
}

// TestCodecPoolClose: Close drains queued jobs and is idempotent.
func TestCodecPoolClose(t *testing.T) {
	cp := NewCodecPool(Params{K: 4, B: 4, D: 1, C: 6}, 3)
	var ran sync.WaitGroup
	ran.Add(10)
	for i := 0; i < 10; i++ {
		cp.Submit(i, func(*Codec) { ran.Done() })
	}
	cp.Close()
	cp.Close()
	ran.Wait()
}
