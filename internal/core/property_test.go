package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropertyNoiselessDecodeAnySize: for arbitrary message sizes
// (including sizes not divisible by k or 8) and arbitrary k, a noiseless
// two-pass transmission decodes exactly.
func TestPropertyNoiselessDecodeAnySize(t *testing.T) {
	err := quick.Check(func(seed int64, nRaw uint16, kRaw, waysRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		nBits := 9 + int(nRaw)%120
		k := 1 + int(kRaw)%6
		ways := []int{1, 2, 4, 8}[waysRaw%4]
		p := Params{K: k, B: 16, D: 1, C: 6, Tail: 2, Ways: ways}
		msg := randomMessage(rng, nBits)
		enc := NewEncoder(msg, nBits, p)
		dec := NewDecoder(nBits, p)
		sched := enc.NewSchedule()
		for sub := 0; sub < 2*ways; sub++ {
			ids := sched.NextSubpass()
			dec.Add(ids, enc.Symbols(ids))
		}
		got, cost := dec.Decode()
		return bytes.Equal(got, msg) && cost == 0
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPropertySchedulePartition: over any number of subpasses, every
// SymbolID is unique and per-chunk RNG indices are gap-free.
func TestPropertySchedulePartition(t *testing.T) {
	err := quick.Check(func(nsRaw uint8, waysRaw, tailRaw uint8, subs uint8) bool {
		ns := 1 + int(nsRaw)%100
		ways := []int{1, 2, 4, 8}[waysRaw%4]
		tail := 1 + int(tailRaw)%4
		s := NewSchedule(ns, ways, tail)
		seen := map[SymbolID]bool{}
		maxIdx := make([]int64, ns)
		for i := range maxIdx {
			maxIdx[i] = -1
		}
		count := 0
		for sub := 0; sub < 1+int(subs)%40; sub++ {
			for _, id := range s.NextSubpass() {
				if seen[id] {
					return false
				}
				seen[id] = true
				if int64(id.RNGIndex) != maxIdx[id.Chunk]+1 {
					return false
				}
				maxIdx[id.Chunk]++
				count++
			}
		}
		return count == len(seen)
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPropertyEncoderPure: Symbol is a pure function — repeated and
// out-of-order queries agree.
func TestPropertyEncoderPure(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	msg := randomMessage(rng, 64)
	enc := NewEncoder(msg, 64, testParams())
	err := quick.Check(func(chunkRaw, idxRaw uint8) bool {
		id := SymbolID{Chunk: int(chunkRaw) % enc.NumSpine(), RNGIndex: uint32(idxRaw)}
		return enc.Symbol(id) == enc.Symbol(id)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRaggedMessageSizes pins down the chunking edge cases directly.
func TestRaggedMessageSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, tc := range []struct{ nBits, k int }{
		{13, 3}, {13, 4}, {1, 1}, {7, 8}, {9, 8}, {17, 5},
	} {
		p := testParams()
		p.K = tc.k
		msg := randomMessage(rng, tc.nBits)
		enc := NewEncoder(msg, tc.nBits, p)
		dec := NewDecoder(tc.nBits, p)
		sched := enc.NewSchedule()
		for sub := 0; sub < 3*p.Ways; sub++ {
			ids := sched.NextSubpass()
			dec.Add(ids, enc.Symbols(ids))
		}
		got, _ := dec.Decode()
		if !bytes.Equal(got, msg) {
			t.Errorf("nBits=%d k=%d: ragged decode failed", tc.nBits, tc.k)
		}
	}
}

// TestFadingBackfill covers the decoder path where fading info starts
// arriving only after some symbols were stored without it.
func TestFadingBackfill(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := testParams()
	nBits := 64
	msg := randomMessage(rng, nBits)
	enc := NewEncoder(msg, nBits, p)
	dec := NewDecoder(nBits, p)
	sched := enc.NewSchedule()

	// First subpass without fading info, rest with h=1 explicitly; the
	// channel is noiseless so both conventions agree and decode must
	// succeed.
	ids := sched.NextSubpass()
	dec.Add(ids, enc.Symbols(ids))
	for sub := 1; sub < 2*p.Ways; sub++ {
		ids := sched.NextSubpass()
		y := enc.Symbols(ids)
		h := make([]complex128, len(y))
		for i := range h {
			h[i] = 1
		}
		dec.AddFaded(ids, y, h)
	}
	if got, _ := dec.Decode(); !bytes.Equal(got, msg) {
		t.Fatal("decode failed after fading backfill")
	}
}

// TestParamsValidation exercises every Params.check failure branch.
func TestParamsValidation(t *testing.T) {
	base := testParams()
	cases := []func(*Params){
		func(p *Params) { p.K = 0 },
		func(p *Params) { p.K = 9 },
		func(p *Params) { p.B = 0 },
		func(p *Params) { p.D = 0 },
		func(p *Params) { p.C = 0 },
		func(p *Params) { p.C = 17 },
		func(p *Params) { p.Tail = -1 },
		func(p *Params) { p.Ways = 3 },
	}
	for i, mutate := range cases {
		p := base
		mutate(&p)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic for invalid params", i)
				}
			}()
			NewEncoder([]byte{1, 2, 3, 4}, 32, p)
		}()
	}
	// Invalid message sizes.
	for _, f := range []func(){
		func() { NewEncoder([]byte{1}, 0, base) },
		func() { NewEncoder([]byte{1}, 9, base) },
		func() { NewDecoder(0, base) },
		func() { NewBSCDecoder(0, base) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("no panic for invalid message size")
				}
			}()
			f()
		}()
	}
}

// TestMismatchedBatchPanics verifies Add validates its inputs.
func TestMismatchedBatchPanics(t *testing.T) {
	dec := NewDecoder(32, testParams())
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for mismatched batch")
		}
	}()
	dec.Add([]SymbolID{{Chunk: 0, RNGIndex: 0}}, []complex128{1, 2})
}

// TestBSCDecoderMismatchPanics does the same for the BSC decoder.
func TestBSCDecoderMismatchPanics(t *testing.T) {
	dec := NewBSCDecoder(32, Params{K: 4, B: 4, D: 1, C: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for mismatched batch")
		}
	}()
	dec.Add([]SymbolID{{Chunk: 0}}, []byte{0, 1})
}

// TestBSCReset mirrors the AWGN reset test for the BSC decoder.
func TestBSCReset(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := Params{K: 4, B: 32, D: 1, C: 1, Tail: 2, Ways: 8}
	nBits := 64
	dec := NewBSCDecoder(nBits, p)
	for round := 0; round < 2; round++ {
		msg := randomMessage(rng, nBits)
		enc := NewEncoder(msg, nBits, p)
		sched := enc.NewSchedule()
		for sub := 0; sub < 6*p.Ways; sub++ {
			ids := sched.NextSubpass()
			dec.Add(ids, enc.Bits(ids))
		}
		if got, _ := dec.Decode(); !bytes.Equal(got, msg) {
			t.Fatalf("round %d: BSC decode failed", round)
		}
		dec.Reset()
		if dec.SymbolCount() != 0 {
			t.Fatal("Reset did not clear")
		}
	}
}

// TestCollisionRarity is the §8.4 spine-collision analysis, scaled down:
// across many random message pairs sharing no prefix relationship, final
// spine values collide at ≈ 2^-32 per pair — i.e. never in this sample.
func TestCollisionRarity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := testParams().withDefaults()
	nBits := 64
	seen := make(map[uint32]int)
	const trials = 20000
	collisions := 0
	for i := 0; i < trials; i++ {
		msg := randomMessage(rng, nBits)
		sp := spine(msg, nBits, p)
		final := sp[len(sp)-1]
		if _, ok := seen[final]; ok {
			collisions++
		}
		seen[final] = i
	}
	// Birthday bound: 20000²/2^33 ≈ 0.047 expected collisions; allow a
	// couple before declaring the hash broken.
	if collisions > 2 {
		t.Fatalf("%d final-spine collisions in %d messages", collisions, trials)
	}
}
