// Package core implements spinal codes: the sequential-hash encoder of §3,
// the rateless symbol generator with tail symbols (§4.4) and puncturing
// (§5), and the bubble decoder of §4 for both AWGN (ℓ2 metric, optionally
// fading-aware) and BSC (Hamming metric) channels.
//
// The encoder hashes k-bit message chunks into a chain of 32-bit spine
// values s_i = h(s_{i-1}, m̄_i), seeds an RNG from each spine value, and
// maps c-bit RNG outputs through a constellation mapping function to I/Q
// symbols. The decoder searches the tree of message prefixes breadth
// first, keeping the B best subtrees of depth d at every step.
package core

import (
	"fmt"

	"spinal/internal/hashfn"
	"spinal/internal/modem"
)

// Params configures a spinal code. Encoder and decoder must use identical
// Params (they are the code).
type Params struct {
	// K is the number of message bits hashed per spine value (§3.1). The
	// decoding cost is exponential in K; the paper recommends 4.
	K int
	// B is the bubble decoder's beam width (§4.3).
	B int
	// D is the bubble decoder's subtree depth (§4.3). D=1 is the classical
	// M-algorithm and the configuration of most experiments.
	D int
	// C is the number of bits per constellation dimension (§3.3). The
	// paper recommends 6 for SNR up to 35 dB. For BSC use 1.
	C int
	// Tail is the total number of symbols generated from the final spine
	// value per pass (§4.4). 1 means no extra tail symbols; the paper
	// finds 2 most effective.
	Tail int
	// Ways is the puncturing fan-out (§5): 1 (none), 2, 4 or 8 subpasses
	// per pass.
	Ways int
	// Hash is the spine hash function; nil means Jenkins one-at-a-time.
	Hash hashfn.Hash
	// Seed is the initial spine value s0, shared by encoder and decoder.
	// The paper treats it as a scrambler; any value works.
	Seed uint32
	// Mapper is the constellation mapping function; nil means the uniform
	// mapper at C bits (§3.3).
	Mapper modem.Mapper
	// Kernel selects the decoder's branch-cost arithmetic; see the Kernel
	// constants. Encoder and BSC decoder ignore it, and it does not change
	// the code itself — only how the AWGN decoder evaluates path metrics.
	Kernel Kernel
}

// Kernel selects the arithmetic of the AWGN bubble decoder's hot path.
//
// The quantized kernel is the Appendix B fixed-point datapath realized in
// software (internal/hw): saturating int32 branch metrics over per-step
// distance tables, batched across all candidates of a spine step, with an
// in-place partial select keeping the beam. It requires the
// one-at-a-time hash, D = 1, no fading-aware symbols and a feasible
// quantization range (internal/hw.NewQuantizer); whenever any of those
// fail, a decode transparently uses the float path. Decoded bits match
// the float path wherever the float decode succeeds with margin; path
// costs agree within Decoder.QuantTolerance (see docs/API.md for the
// accuracy contract).
type Kernel int

const (
	// KernelAuto — the zero value and the default — uses the quantized
	// fixed-point kernel whenever the decode is eligible and the float
	// reference path otherwise.
	KernelAuto Kernel = iota
	// KernelFloat forces the float64 reference implementation.
	KernelFloat
	// KernelQuantized asks for the fixed-point kernel explicitly. The
	// policy is currently identical to KernelAuto (quantized when
	// eligible, float fallback otherwise — fallback keeps mid-stream
	// fading or adversarial symbol planes decodable); the distinct value
	// lets configs state intent and leaves room for Auto to grow
	// heuristics. Decoder.KernelUsed reports what actually ran.
	KernelQuantized
)

// DefaultParams returns the paper's recommended operating point:
// k=4, B=256, d=1, c=6, two tail symbols, 8-way puncturing (§7.1, §8.4).
func DefaultParams() Params {
	return Params{K: 4, B: 256, D: 1, C: 6, Tail: 2, Ways: 8}
}

// withDefaults fills optional fields and validates.
func (p Params) withDefaults() Params {
	if p.Hash == nil {
		p.Hash = hashfn.OneAtATime{}
	}
	if p.Mapper == nil {
		p.Mapper = modem.NewUniform(p.C)
	}
	if p.Tail == 0 {
		p.Tail = 1
	}
	if p.Ways == 0 {
		p.Ways = 1
	}
	p.check()
	return p
}

func (p Params) check() {
	if p.K < 1 || p.K > 8 {
		panic(fmt.Sprintf("core: K = %d out of range [1,8]", p.K))
	}
	if p.B < 1 {
		panic("core: beam width B must be ≥ 1")
	}
	if p.D < 1 {
		panic("core: depth D must be ≥ 1")
	}
	if p.C < 1 || p.C > 16 {
		panic(fmt.Sprintf("core: C = %d out of range [1,16]", p.C))
	}
	if p.Mapper.Bits() != p.C {
		panic("core: mapper bit width disagrees with C")
	}
	if p.Tail < 1 {
		panic("core: Tail must be ≥ 1")
	}
	switch p.Ways {
	case 1, 2, 4, 8:
	default:
		panic(fmt.Sprintf("core: Ways = %d not in {1,2,4,8}", p.Ways))
	}
	switch p.Kernel {
	case KernelAuto, KernelFloat, KernelQuantized:
	default:
		panic(fmt.Sprintf("core: unknown Kernel %d", p.Kernel))
	}
}

// numSpine returns the number of spine values for an n-bit message:
// ⌈n/k⌉. The final chunk may carry fewer than k bits.
func numSpine(nBits, k int) int {
	return (nBits + k - 1) / k
}

// NumSpine reports the number of spine values an nBits-bit message has
// under these parameters — the valid SymbolID.Chunk range is
// [0, NumSpine). Receivers use it to reject symbols a corrupt frame
// attributes to nonexistent chunks.
func (p Params) NumSpine(nBits int) int {
	k := p.K
	if k < 1 {
		k = 1
	}
	return numSpine(nBits, k)
}

// chunkBits returns the number of message bits consumed by chunk j.
func chunkBits(nBits, k, j int) int {
	if (j+1)*k <= nBits {
		return k
	}
	return nBits - j*k
}

// chunkAt extracts chunk j (k bits, LSB-first within the message bit
// stream) from a packed message. Bit i of the message is
// msg[i/8]>>(i%8)&1.
func chunkAt(msg []byte, nBits, k, j int) uint32 {
	var v uint32
	kb := chunkBits(nBits, k, j)
	for b := 0; b < kb; b++ {
		i := j*k + b
		v |= uint32(msg[i/8]>>(uint(i)%8)&1) << uint(b)
	}
	return v
}

// setChunk writes chunk j into a packed message buffer.
func setChunk(msg []byte, nBits, k, j int, v uint32) {
	kb := chunkBits(nBits, k, j)
	for b := 0; b < kb; b++ {
		i := j*k + b
		if v>>uint(b)&1 == 1 {
			msg[i/8] |= 1 << (uint(i) % 8)
		} else {
			msg[i/8] &^= 1 << (uint(i) % 8)
		}
	}
}

// spine computes the full spine s_1..s_{numSpine} for a message. The
// returned slice is 0-indexed: spine[j] is the state after consuming
// chunk j.
func spine(msg []byte, nBits int, p Params) []uint32 {
	ns := numSpine(nBits, p.K)
	out := make([]uint32, ns)
	s := p.Seed
	for j := 0; j < ns; j++ {
		s = p.Hash.Sum(s, chunkAt(msg, nBits, p.K, j), chunkBits(nBits, p.K, j))
		out[j] = s
	}
	return out
}
