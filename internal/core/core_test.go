package core

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"spinal/internal/channel"
	"spinal/internal/hashfn"
	"spinal/internal/modem"
)

func randomMessage(rng *rand.Rand, nBits int) []byte {
	msg := make([]byte, (nBits+7)/8)
	rng.Read(msg)
	// Clear bits beyond nBits so equality comparisons are meaningful.
	if nBits%8 != 0 {
		msg[len(msg)-1] &= (1 << uint(nBits%8)) - 1
	}
	return msg
}

func testParams() Params {
	return Params{K: 4, B: 16, D: 1, C: 6, Tail: 2, Ways: 8}
}

func TestChunkRoundTrip(t *testing.T) {
	err := quick.Check(func(seed int64, k8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(k8%8) + 1
		nBits := 8 + rng.Intn(120)
		msg := randomMessage(rng, nBits)
		out := make([]byte, len(msg))
		ns := numSpine(nBits, k)
		for j := 0; j < ns; j++ {
			setChunk(out, nBits, k, j, chunkAt(msg, nBits, k, j))
		}
		return bytes.Equal(msg, out)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestChunkBits(t *testing.T) {
	// 10 bits at k=4: chunks of 4, 4, 2.
	if numSpine(10, 4) != 3 {
		t.Fatal("numSpine(10,4) != 3")
	}
	if chunkBits(10, 4, 0) != 4 || chunkBits(10, 4, 1) != 4 || chunkBits(10, 4, 2) != 2 {
		t.Fatal("chunkBits wrong for ragged tail")
	}
	if numSpine(256, 4) != 64 {
		t.Fatal("numSpine(256,4) != 64")
	}
}

func TestSpineDiffersAfterFlippedBit(t *testing.T) {
	// The defining property (§3.1): messages sharing a prefix share the
	// spine prefix; after the first differing chunk the spines diverge.
	rng := rand.New(rand.NewSource(5))
	p := testParams().withDefaults()
	nBits := 128
	msg := randomMessage(rng, nBits)
	s1 := spine(msg, nBits, p)
	flipBit := 64 // chunk 16
	msg2 := append([]byte(nil), msg...)
	msg2[flipBit/8] ^= 1 << uint(flipBit%8)
	s2 := spine(msg2, nBits, p)
	for j := 0; j < 16; j++ {
		if s1[j] != s2[j] {
			t.Fatalf("spine prefix differs at chunk %d before the flipped bit", j)
		}
	}
	diverged := 0
	for j := 16; j < len(s1); j++ {
		if s1[j] != s2[j] {
			diverged++
		}
	}
	if diverged < len(s1)-16 {
		t.Fatalf("spines re-converged: only %d of %d post-flip chunks differ", diverged, len(s1)-16)
	}
}

func TestEncoderPrefixProperty(t *testing.T) {
	// Rateless prefix property (§1, §3): the symbol stream at a higher
	// rate is a prefix of the stream at a lower rate. Equivalently, the
	// schedule+encoder produce identical symbols regardless of how many
	// subpasses are eventually generated.
	rng := rand.New(rand.NewSource(6))
	nBits := 96
	msg := randomMessage(rng, nBits)
	p := testParams()
	enc := NewEncoder(msg, nBits, p)

	collect := func(subpasses int) []complex128 {
		sched := enc.NewSchedule()
		var out []complex128
		for i := 0; i < subpasses; i++ {
			out = append(out, enc.Symbols(sched.NextSubpass())...)
		}
		return out
	}
	short := collect(5)
	long := collect(20)
	if len(long) <= len(short) {
		t.Fatal("longer schedule yielded fewer symbols")
	}
	for i := range short {
		if short[i] != long[i] {
			t.Fatalf("prefix property violated at symbol %d", i)
		}
	}
}

func TestScheduleCoversEverySpineOncePerPass(t *testing.T) {
	for _, ways := range []int{1, 2, 4, 8} {
		for _, tail := range []int{1, 2, 3} {
			ns := 40
			s := NewSchedule(ns, ways, tail)
			counts := make(map[int]int)
			rngSeen := make(map[SymbolID]bool)
			for sub := 0; sub < ways; sub++ { // one full pass
				for _, id := range s.NextSubpass() {
					counts[id.Chunk]++
					if rngSeen[id] {
						t.Fatalf("ways=%d tail=%d: duplicate SymbolID %v", ways, tail, id)
					}
					rngSeen[id] = true
				}
			}
			for c := 0; c < ns-1; c++ {
				if counts[c] != 1 {
					t.Fatalf("ways=%d: chunk %d transmitted %d times in one pass", ways, c, counts[c])
				}
			}
			if counts[ns-1] != tail {
				t.Fatalf("ways=%d tail=%d: last chunk transmitted %d times", ways, tail, counts[ns-1])
			}
			if got, want := len(rngSeen), s.SymbolsPerPass(); got != want {
				t.Fatalf("pass emitted %d symbols, want %d", got, want)
			}
		}
	}
}

func TestScheduleRNGIndicesSequential(t *testing.T) {
	// Each chunk's RNG indices must be 0,1,2,... in emission order, so the
	// decoder can reconstruct them from the shared schedule alone.
	s := NewSchedule(16, 8, 2)
	next := make([]uint32, 16)
	for i := 0; i < 40; i++ {
		for _, id := range s.NextSubpass() {
			if id.RNGIndex != next[id.Chunk] {
				t.Fatalf("chunk %d: RNG index %d, want %d", id.Chunk, id.RNGIndex, next[id.Chunk])
			}
			next[id.Chunk]++
		}
	}
}

func TestSchedulePrefixSpreads(t *testing.T) {
	// After the first subpass of an 8-way schedule, transmitted chunks
	// should be spaced 8 apart — the property that makes early decode
	// attempts useful.
	s := NewSchedule(64, 8, 1)
	ids := s.NextSubpass()
	if len(ids) != 8 {
		t.Fatalf("first subpass has %d symbols, want 8", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i].Chunk-ids[i-1].Chunk != 8 {
			t.Fatal("first subpass chunks not evenly spaced")
		}
	}
}

func TestDecodeNoiseless(t *testing.T) {
	// With no noise and one full pass, the decoder must recover the
	// message exactly for a variety of message sizes and k.
	rng := rand.New(rand.NewSource(7))
	for _, nBits := range []int{8, 32, 96, 256} {
		for _, k := range []int{1, 3, 4} {
			p := testParams()
			p.K = k
			msg := randomMessage(rng, nBits)
			enc := NewEncoder(msg, nBits, p)
			dec := NewDecoder(nBits, p)
			sched := enc.NewSchedule()
			for sub := 0; sub < p.Ways*2; sub++ { // two passes
				ids := sched.NextSubpass()
				dec.Add(ids, enc.Symbols(ids))
			}
			got, cost := dec.Decode()
			if !bytes.Equal(got, msg) {
				t.Fatalf("nBits=%d k=%d: noiseless decode failed", nBits, k)
			}
			if cost != 0 {
				t.Fatalf("nBits=%d k=%d: noiseless cost = %g, want 0", nBits, k, cost)
			}
		}
	}
}

func TestDecodeAWGNModerateSNR(t *testing.T) {
	// At 15 dB with a few passes, a B=64 decoder should recover 256-bit
	// messages reliably.
	rng := rand.New(rand.NewSource(8))
	p := testParams()
	p.B = 64
	nBits := 256
	ok := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		msg := randomMessage(rng, nBits)
		enc := NewEncoder(msg, nBits, p)
		dec := NewDecoder(nBits, p)
		ch := channel.NewAWGN(15, int64(trial))
		sched := enc.NewSchedule()
		for sub := 0; sub < 4*p.Ways; sub++ { // four passes ⇒ rate 1 bit/symbol
			ids := sched.NextSubpass()
			dec.Add(ids, ch.Transmit(enc.Symbols(ids)))
		}
		if got, _ := dec.Decode(); bytes.Equal(got, msg) {
			ok++
		}
	}
	if ok < trials-1 {
		t.Fatalf("only %d/%d messages decoded at 15 dB, rate 1", ok, trials)
	}
}

func TestDecodeImprovesWithMoreSymbols(t *testing.T) {
	// Rateless behaviour: a message that fails with few symbols succeeds
	// once enough symbols arrive.
	rng := rand.New(rand.NewSource(9))
	p := testParams()
	p.B = 32
	nBits := 128
	msg := randomMessage(rng, nBits)
	enc := NewEncoder(msg, nBits, p)
	dec := NewDecoder(nBits, p)
	ch := channel.NewAWGN(5, 42)
	sched := enc.NewSchedule()
	decodedAt := -1
	for sub := 1; sub <= 12*p.Ways; sub++ {
		ids := sched.NextSubpass()
		dec.Add(ids, ch.Transmit(enc.Symbols(ids)))
		if got, _ := dec.Decode(); bytes.Equal(got, msg) {
			decodedAt = sub
			break
		}
	}
	if decodedAt < 0 {
		t.Fatal("message never decoded at 5 dB within 12 passes")
	}
	// At 5 dB capacity ≈ 2.06 b/s, so k=4 needs ≳2 passes; decoding after
	// a single subpass would mean the test is vacuous.
	if decodedAt <= 1 {
		t.Fatalf("decoded suspiciously early (subpass %d)", decodedAt)
	}
	_ = rng
}

func TestDecoderD2MatchesD1Noiseless(t *testing.T) {
	// Depth-2 bubble decoding must also recover noiseless messages.
	rng := rand.New(rand.NewSource(10))
	for _, d := range []int{2, 3} {
		p := testParams()
		p.D = d
		p.B = 4
		nBits := 64
		msg := randomMessage(rng, nBits)
		enc := NewEncoder(msg, nBits, p)
		dec := NewDecoder(nBits, p)
		sched := enc.NewSchedule()
		for sub := 0; sub < p.Ways; sub++ {
			ids := sched.NextSubpass()
			dec.Add(ids, enc.Symbols(ids))
		}
		if got, _ := dec.Decode(); !bytes.Equal(got, msg) {
			t.Fatalf("d=%d: noiseless decode failed", d)
		}
	}
}

func TestDeeperLookaheadBeatsSmallBeamAtSameBudget(t *testing.T) {
	// Fig 8-7's setup: with the node budget B·2^kd held constant, compare
	// (B=16,d=1) against (B=2,d=2) at k=3. We only assert both decode
	// noiselessly and that the d=2 configuration works at all; the
	// throughput ordering is exercised in the experiments package.
	rng := rand.New(rand.NewSource(11))
	for _, cfg := range []struct{ b, d int }{{16, 1}, {2, 2}} {
		p := testParams()
		p.K = 3
		p.B = cfg.b
		p.D = cfg.d
		nBits := 72
		msg := randomMessage(rng, nBits)
		enc := NewEncoder(msg, nBits, p)
		dec := NewDecoder(nBits, p)
		sched := enc.NewSchedule()
		for sub := 0; sub < p.Ways; sub++ {
			ids := sched.NextSubpass()
			dec.Add(ids, enc.Symbols(ids))
		}
		if got, _ := dec.Decode(); !bytes.Equal(got, msg) {
			t.Fatalf("B=%d d=%d: noiseless decode failed", cfg.b, cfg.d)
		}
	}
}

func TestBSCRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	p := Params{K: 4, B: 64, D: 1, C: 1, Tail: 2, Ways: 8}
	nBits := 128
	for _, flip := range []float64{0, 0.05} {
		msg := randomMessage(rng, nBits)
		enc := NewEncoder(msg, nBits, p)
		dec := NewBSCDecoder(nBits, p)
		ch := channel.NewBSC(flip, 77)
		sched := enc.NewSchedule()
		// BSC capacity at p=0.05 is ≈0.71 bits/use; k=4 needs ≳6 passes.
		for sub := 0; sub < 10*p.Ways; sub++ {
			ids := sched.NextSubpass()
			dec.Add(ids, ch.Transmit(enc.Bits(ids)))
		}
		got, _ := dec.Decode()
		if !bytes.Equal(got, msg) {
			t.Fatalf("BSC flip=%g: decode failed", flip)
		}
	}
}

func TestFadingAwareDecoding(t *testing.T) {
	// On a Rayleigh channel with known h, the fading-aware decoder must
	// recover messages; the same symbol budget without fading info should
	// fail more often (§8.3).
	rng := rand.New(rand.NewSource(13))
	p := testParams()
	p.B = 64
	nBits := 128
	okAware, okBlind := 0, 0
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		msg := randomMessage(rng, nBits)
		enc := NewEncoder(msg, nBits, p)
		aware := NewDecoder(nBits, p)
		blind := NewDecoder(nBits, p)
		ch := channel.NewRayleigh(20, 10, int64(100+trial))
		sched := enc.NewSchedule()
		for sub := 0; sub < 6*p.Ways; sub++ {
			ids := sched.NextSubpass()
			y, h := ch.Transmit(enc.Symbols(ids))
			aware.AddFaded(ids, y, h)
			blind.Add(ids, y)
		}
		if got, _ := aware.Decode(); bytes.Equal(got, msg) {
			okAware++
		}
		if got, _ := blind.Decode(); bytes.Equal(got, msg) {
			okBlind++
		}
	}
	if okAware < trials-1 {
		t.Fatalf("fading-aware decoder succeeded only %d/%d", okAware, trials)
	}
	if okBlind > okAware {
		t.Fatalf("blind decoder (%d) outperformed fading-aware (%d)", okBlind, okAware)
	}
}

func TestDecoderReset(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	p := testParams()
	nBits := 64
	dec := NewDecoder(nBits, p)
	for round := 0; round < 2; round++ {
		msg := randomMessage(rng, nBits)
		enc := NewEncoder(msg, nBits, p)
		sched := enc.NewSchedule()
		for sub := 0; sub < p.Ways; sub++ {
			ids := sched.NextSubpass()
			dec.Add(ids, enc.Symbols(ids))
		}
		if got, _ := dec.Decode(); !bytes.Equal(got, msg) {
			t.Fatalf("round %d: decode failed", round)
		}
		dec.Reset()
		if dec.SymbolCount() != 0 {
			t.Fatal("Reset did not clear symbol count")
		}
	}
}

func TestGaussianMapperDecodes(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	p := testParams()
	p.Mapper = modem.NewTruncGaussian(p.C, 2)
	nBits := 96
	msg := randomMessage(rng, nBits)
	enc := NewEncoder(msg, nBits, p)
	dec := NewDecoder(nBits, p)
	ch := channel.NewAWGN(20, 5)
	sched := enc.NewSchedule()
	for sub := 0; sub < 3*p.Ways; sub++ {
		ids := sched.NextSubpass()
		dec.Add(ids, ch.Transmit(enc.Symbols(ids)))
	}
	if got, _ := dec.Decode(); !bytes.Equal(got, msg) {
		t.Fatal("truncated-Gaussian constellation decode failed")
	}
}

func TestHashAgnostic(t *testing.T) {
	// §7.1: the code works identically well with any of the three hashes.
	rng := rand.New(rand.NewSource(16))
	for _, h := range []string{"oaat", "lookup3", "salsa20"} {
		p := testParams()
		switch h {
		case "lookup3":
			p.Hash = hashfn.Lookup3{}
		case "salsa20":
			p.Hash = hashfn.Salsa20{}
		}
		nBits := 64
		msg := randomMessage(rng, nBits)
		enc := NewEncoder(msg, nBits, p)
		dec := NewDecoder(nBits, p)
		sched := enc.NewSchedule()
		for sub := 0; sub < p.Ways; sub++ {
			ids := sched.NextSubpass()
			dec.Add(ids, enc.Symbols(ids))
		}
		if got, _ := dec.Decode(); !bytes.Equal(got, msg) {
			t.Fatalf("hash %s: decode failed", h)
		}
	}
}

func TestSeedMismatchFailsToDecode(t *testing.T) {
	// Different s0 at encoder and decoder must not decode — the seed is
	// part of the code.
	rng := rand.New(rand.NewSource(17))
	p := testParams()
	nBits := 64
	msg := randomMessage(rng, nBits)
	enc := NewEncoder(msg, nBits, p)
	p2 := p
	p2.Seed = 12345
	dec := NewDecoder(nBits, p2)
	sched := enc.NewSchedule()
	for sub := 0; sub < 2*p.Ways; sub++ {
		ids := sched.NextSubpass()
		dec.Add(ids, enc.Symbols(ids))
	}
	if got, _ := dec.Decode(); bytes.Equal(got, msg) {
		t.Fatal("decoded despite mismatched seeds")
	}
}

func TestSelectBest(t *testing.T) {
	err := quick.Check(func(seed int64, k8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		k := 1 + int(k8)%n
		cands := make([]candidate, n)
		for i := range cands {
			cands[i].score = float64(rng.Intn(50))
		}
		sorted := make([]float64, n)
		for i := range cands {
			sorted[i] = cands[i].score
		}
		// Selection correctness: max of kept ≤ min of dropped.
		var bs beamSearch
		bs.selectBest(cands, k)
		maxKept := cands[0].score
		for _, c := range cands[:k] {
			if c.score > maxKept {
				maxKept = c.score
			}
		}
		for _, c := range cands[k:] {
			if c.score < maxKept {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
