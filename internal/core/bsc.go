package core

import "spinal/internal/hashfn"

// BSCDecoder is the bubble decoder for the binary symmetric channel. The
// only change from the AWGN decoder is the branch metric: Hamming distance
// between received bits and the bits the candidate spine state would have
// produced (§4.1). Use C=1 in Params for BSC operation.
type BSCDecoder struct {
	p     Params
	nBits int
	ns    int
	rng   hashfn.RNG

	ts   [][]uint32
	bits [][]byte

	nsyms int
}

// NewBSCDecoder creates a BSC decoder for nBits-bit messages.
func NewBSCDecoder(nBits int, p Params) *BSCDecoder {
	p = p.withDefaults()
	if nBits < 1 {
		panic("core: message must have at least one bit")
	}
	ns := numSpine(nBits, p.K)
	return &BSCDecoder{
		p:     p,
		nBits: nBits,
		ns:    ns,
		rng:   hashfn.RNG{H: p.Hash},
		ts:    make([][]uint32, ns),
		bits:  make([][]byte, ns),
	}
}

// NewSchedule returns a fresh transmission schedule matching this decoder.
func (d *BSCDecoder) NewSchedule() *Schedule {
	return NewSchedule(d.ns, d.p.Ways, d.p.Tail)
}

// Add stores received bits for the given SymbolIDs.
func (d *BSCDecoder) Add(ids []SymbolID, bits []byte) {
	if len(ids) != len(bits) {
		panic("core: mismatched bit batch lengths")
	}
	for i, id := range ids {
		c := id.Chunk
		d.ts[c] = append(d.ts[c], id.RNGIndex)
		d.bits[c] = append(d.bits[c], bits[i]&1)
		d.nsyms++
	}
}

// SymbolCount reports the number of bits stored so far.
func (d *BSCDecoder) SymbolCount() int { return d.nsyms }

// Reset discards stored bits for reuse on a new message.
func (d *BSCDecoder) Reset() {
	for i := range d.ts {
		d.ts[i] = d.ts[i][:0]
		d.bits[i] = d.bits[i][:0]
	}
	d.nsyms = 0
}

// Decode runs the bubble decoder and returns the most likely message and
// its Hamming path cost.
func (d *BSCDecoder) Decode() ([]byte, float64) {
	bs := beamSearch{nBits: d.nBits, p: d.p, cost: d.branchCost}
	return bs.run()
}

func (d *BSCDecoder) branchCost(chunk int, state uint32) float64 {
	ts := d.ts[chunk]
	bits := d.bits[chunk]
	var dist int
	for i, t := range ts {
		if byte(d.rng.Word(state, t)&1) != bits[i] {
			dist++
		}
	}
	return float64(dist)
}
