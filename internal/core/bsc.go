package core

import (
	"math"
	"runtime"

	"spinal/internal/hashfn"
)

// BSCDecoder is the bubble decoder for the binary symmetric channel. The
// only change from the AWGN decoder is the branch metric: Hamming distance
// between received bits and the bits the candidate spine state would have
// produced (§4.1). Use C=1 in Params for BSC operation.
//
// Like Decoder, it owns all search scratch (steady-state decodes allocate
// nothing) and binds the hash functions at construction.
type BSCDecoder struct {
	p     Params
	nBits int
	ns    int
	words hashfn.WordsFunc

	ts   [][]uint32
	bits [][]byte

	nsyms int

	bs     beamSearch
	eval   *evaluator
	msgBuf []byte
	parMsg []byte
	par    parPool
}

// NewBSCDecoder creates a BSC decoder for nBits-bit messages.
func NewBSCDecoder(nBits int, p Params) *BSCDecoder {
	p = p.withDefaults()
	if nBits < 1 {
		panic("core: message must have at least one bit")
	}
	ns := numSpine(nBits, p.K)
	d := &BSCDecoder{
		p:     p,
		nBits: nBits,
		ns:    ns,
		words: hashfn.CompileWords(p.Hash),
		ts:    make([][]uint32, ns),
		bits:  make([][]byte, ns),
		bs:    newBeamSearch(nBits, p),
	}
	d.eval = d.newEvaluator()
	return d
}

func (d *BSCDecoder) newEvaluator() *evaluator {
	e := &evaluator{
		children: d.bs.children,
		nBits:    d.nBits,
		k:        d.p.K,
		ns:       d.ns,
	}
	if d.p.D > 1 {
		e.memo = make(map[uint64]float64)
	}
	var (
		ts   []uint32
		bits []byte
	)
	e.bind = func(chunk int) {
		if e.boundChunk == chunk {
			return
		}
		e.boundChunk = chunk
		ts = d.ts[chunk]
		bits = d.bits[chunk]
	}
	words := d.words
	var wbuf []uint32
	e.cost = func(state uint32) float64 {
		n := len(ts)
		if n == 0 {
			return 0
		}
		if cap(wbuf) < n {
			wbuf = make([]uint32, n)
		}
		w := wbuf[:n]
		words(state, ts, w)
		var dist int
		for i, wv := range w {
			dist += int((byte(wv) ^ bits[i]) & 1)
		}
		return float64(dist)
	}
	oaat, isOAAT := hashfn.AsOneAtATime(d.p.Hash)
	if !isOAAT {
		e.expand = func(parent uint32, kb int, _ float64, childs []uint32, costs []float64) {
			e.children(parent, kb, childs)
			for j, s := range childs {
				costs[j] = e.cost(s)
			}
		}
		return e
	}
	var pre, wrow []uint32
	e.expand = func(parent uint32, kb int, budget float64, childs []uint32, costs []float64) {
		nc := len(childs)
		if cap(pre) < nc {
			pre = make([]uint32, nc)
			wrow = make([]uint32, nc)
		}
		if len(ts) == 0 {
			e.children(parent, kb, childs)
			for j := range costs {
				costs[j] = 0
			}
			return
		}
		pr, wr := pre[:nc], wrow[:nc]
		oaat.ChildrenPrefixes(parent, kb, childs, pr)
		for j := range costs {
			costs[j] = 0
		}
		for i, t := range ts {
			hashfn.FinishWords(pr, t, wr)
			b := bits[i]
			mn := math.Inf(1)
			for j, w := range wr {
				c := costs[j] + float64((byte(w)^b)&1)
				costs[j] = c
				if c < mn {
					mn = c
				}
			}
			if mn >= budget {
				return
			}
		}
	}
	return e
}

// NewSchedule returns a fresh transmission schedule matching this decoder.
func (d *BSCDecoder) NewSchedule() *Schedule {
	return NewSchedule(d.ns, d.p.Ways, d.p.Tail)
}

// Add stores received bits for the given SymbolIDs.
func (d *BSCDecoder) Add(ids []SymbolID, bits []byte) {
	if len(ids) != len(bits) {
		panic("core: mismatched bit batch lengths")
	}
	for i, id := range ids {
		c := id.Chunk
		d.ts[c] = append(d.ts[c], id.RNGIndex)
		d.bits[c] = append(d.bits[c], bits[i]&1)
		d.nsyms++
	}
}

// SymbolCount reports the number of bits stored so far.
func (d *BSCDecoder) SymbolCount() int { return d.nsyms }

// Reset discards stored bits for reuse on a new message, keeping all
// storage and search scratch capacity.
func (d *BSCDecoder) Reset() {
	for i := range d.ts {
		d.ts[i] = d.ts[i][:0]
		d.bits[i] = d.bits[i][:0]
	}
	d.nsyms = 0
}

// Close releases the persistent worker pool, if any (see Decoder.Close).
func (d *BSCDecoder) Close() { d.par.close() }

// Decode runs the bubble decoder and returns the most likely message and
// its Hamming path cost. The returned slice is owned by the decoder and
// overwritten by the next Decode call; copy it if it must be retained.
func (d *BSCDecoder) Decode() ([]byte, float64) {
	msg, cost := d.bs.run(d.eval, d.msgBuf)
	d.msgBuf = msg
	return msg, cost
}

// DecodeParallel is Decode with candidate expansion sharded across a
// persistent worker pool (workers ≤ 0 means GOMAXPROCS); results match
// Decode up to cost ties.
func (d *BSCDecoder) DecodeParallel(workers int) ([]byte, float64) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return d.Decode()
	}
	if d.par.ensure(workers, d.newEvaluator) {
		runtime.AddCleanup(d, func(p *workerPool) { p.stop() }, d.par.pool)
	}
	msg, cost := d.bs.runParallel(d.par.pool, d.par.evals, d.parMsg)
	d.parMsg = msg
	return msg, cost
}
