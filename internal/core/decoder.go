package core

import (
	"math"

	"spinal/internal/hashfn"
)

// Decoder is the bubble decoder for the AWGN channel (§4), optionally
// fading-aware (§8.3). It stores every received symbol and rebuilds the
// decoding tree on each Decode call; §7.1 found that caching explored
// nodes between attempts does not help, because new symbols change pruning
// decisions.
type Decoder struct {
	p     Params
	nBits int
	ns    int
	rng   hashfn.RNG
	cmask uint32
	table []float64 // constellation lookup, indexed by c-bit value

	// Received data per chunk, parallel slices.
	ts [][]uint32     // RNG indices
	ys [][]complex128 // received symbols
	hs [][]complex128 // fading coefficients; nil slice ⇒ h=1 for the chunk

	nsyms int
}

// NewDecoder creates a decoder for nBits-bit messages with the given code
// parameters.
func NewDecoder(nBits int, p Params) *Decoder {
	p = p.withDefaults()
	if nBits < 1 {
		panic("core: message must have at least one bit")
	}
	ns := numSpine(nBits, p.K)
	table := make([]float64, 1<<uint(p.C))
	for b := range table {
		table[b] = p.Mapper.Map(uint32(b))
	}
	return &Decoder{
		p:     p,
		nBits: nBits,
		ns:    ns,
		rng:   hashfn.RNG{H: p.Hash},
		cmask: (1 << uint(p.C)) - 1,
		table: table,
		ts:    make([][]uint32, ns),
		ys:    make([][]complex128, ns),
		hs:    make([][]complex128, ns),
	}
}

// NewSchedule returns a fresh transmission schedule matching this decoder.
func (d *Decoder) NewSchedule() *Schedule {
	return NewSchedule(d.ns, d.p.Ways, d.p.Tail)
}

// Add stores received symbols (AWGN: fading coefficient 1).
func (d *Decoder) Add(ids []SymbolID, y []complex128) {
	d.AddFaded(ids, y, nil)
}

// AddFaded stores received symbols along with their known fading
// coefficients (Fig 8-4). h may be nil, in which case the decoder treats
// the channel as unfaded — Fig 8-5's "AWGN decoder on a fading channel".
func (d *Decoder) AddFaded(ids []SymbolID, y []complex128, h []complex128) {
	if len(ids) != len(y) || (h != nil && len(h) != len(y)) {
		panic("core: mismatched symbol batch lengths")
	}
	for i, id := range ids {
		c := id.Chunk
		d.ts[c] = append(d.ts[c], id.RNGIndex)
		d.ys[c] = append(d.ys[c], y[i])
		if h != nil {
			if d.hs[c] == nil && len(d.ts[c]) > 1 {
				// Earlier symbols for this chunk arrived without fading
				// info; backfill with h=1.
				d.hs[c] = make([]complex128, len(d.ts[c])-1)
				for j := range d.hs[c] {
					d.hs[c][j] = 1
				}
			}
			d.hs[c] = append(d.hs[c], h[i])
		} else if d.hs[c] != nil {
			d.hs[c] = append(d.hs[c], 1)
		}
		d.nsyms++
	}
}

// SymbolCount reports the number of symbols stored so far.
func (d *Decoder) SymbolCount() int { return d.nsyms }

// Reset discards stored symbols so the decoder can be reused for a new
// message with the same parameters.
func (d *Decoder) Reset() {
	for i := range d.ts {
		d.ts[i] = d.ts[i][:0]
		d.ys[i] = d.ys[i][:0]
		d.hs[i] = nil
	}
	d.nsyms = 0
}

// Decode runs the bubble decoder over all stored symbols and returns the
// most likely message and its path cost. The caller checks correctness
// (via CRC at the link layer, §6, or direct comparison in simulations) and
// requests more symbols if the result is wrong.
func (d *Decoder) Decode() ([]byte, float64) {
	bs := beamSearch{nBits: d.nBits, p: d.p, cost: d.branchCost}
	return bs.run()
}

// branchCost is the ℓ2 distance between the stored symbols of a chunk and
// the symbols the candidate spine state would have produced (equation
// 4.2). Chunks with no symbols yet (punctured) cost 0, so all children of
// a parent score equally, exactly as §5 prescribes.
func (d *Decoder) branchCost(chunk int, state uint32) float64 {
	ts := d.ts[chunk]
	ys := d.ys[chunk]
	hs := d.hs[chunk]
	c := uint(d.p.C)
	var sum float64
	for i, t := range ts {
		w := d.rng.Word(state, t)
		x := complex(d.table[w&d.cmask], d.table[w>>c&d.cmask])
		if hs != nil {
			x *= hs[i]
		}
		dr := real(ys[i]) - real(x)
		di := imag(ys[i]) - imag(x)
		sum += dr*dr + di*di
	}
	return sum
}

// beamSearch is the bubble decoder's search core, shared by the AWGN and
// BSC decoders. cost(chunk, state) is the branch cost of the edge whose
// child spine value is state at the given chunk index.
type beamSearch struct {
	nBits int
	p     Params
	cost  func(chunk int, state uint32) float64
}

type beamNode struct {
	state uint32
	back  int32
	cost  float64
}

type candidate struct {
	state  uint32
	parent int32 // index into current beam
	bits   uint16
	cost   float64 // accumulated true path cost
	score  float64 // cost + best lookahead cost to depth d
}

type backRec struct {
	parent int32
	bits   uint16
}

// run executes the search and returns the best message with its path
// cost.
func (bs *beamSearch) run() ([]byte, float64) {
	k := bs.p.K
	ns := numSpine(bs.nBits, k)
	beam := []beamNode{{state: bs.p.Seed, back: -1, cost: 0}}
	arena := make([]backRec, 0, ns*bs.p.B)
	var cands []candidate

	for p := 0; p < ns; p++ {
		// Lookahead depth: explore subtrees to depth dd below the children
		// being scored. At the tail of the message the lookahead shrinks.
		dd := bs.p.D
		if p+dd > ns {
			dd = ns - p
		}
		kb := chunkBits(bs.nBits, k, p)
		cands = cands[:0]
		for bi := range beam {
			node := &beam[bi]
			for m := uint32(0); m < 1<<uint(kb); m++ {
				cs := bs.p.Hash.Sum(node.state, m, kb)
				base := node.cost + bs.cost(p, cs)
				score := base
				if dd > 1 {
					score += bs.explore(cs, p+1, dd-1)
				}
				cands = append(cands, candidate{
					state: cs, parent: int32(bi), bits: uint16(m),
					cost: base, score: score,
				})
			}
		}
		keep := bs.p.B
		if keep > len(cands) {
			keep = len(cands)
		}
		selectBest(cands, keep)
		newBeam := make([]beamNode, keep)
		for i := 0; i < keep; i++ {
			arena = append(arena, backRec{
				parent: beam[cands[i].parent].back, bits: cands[i].bits,
			})
			newBeam[i] = beamNode{
				state: cands[i].state,
				back:  int32(len(arena) - 1),
				cost:  cands[i].cost,
			}
		}
		beam = newBeam
	}

	// The final beam holds complete messages; return the lowest-cost one
	// (§4.4: with tail symbols the correct candidate has the lowest cost).
	best := 0
	for i := 1; i < len(beam); i++ {
		if beam[i].cost < beam[best].cost {
			best = i
		}
	}
	msg := make([]byte, (bs.nBits+7)/8)
	idx := beam[best].back
	for j := ns - 1; j >= 0; j-- {
		setChunk(msg, bs.nBits, k, j, uint32(arena[idx].bits))
		idx = arena[idx].parent
	}
	return msg, beam[best].cost
}

// explore returns the minimum additional path cost over all descendants
// depth levels below (state, chunk); this is the subtree score used to
// rank candidates when D > 1 (Fig 4-1 steps b–c).
func (bs *beamSearch) explore(state uint32, chunk, depth int) float64 {
	kb := chunkBits(bs.nBits, bs.p.K, chunk)
	best := math.Inf(1)
	for m := uint32(0); m < 1<<uint(kb); m++ {
		cs := bs.p.Hash.Sum(state, m, kb)
		c := bs.cost(chunk, cs)
		if depth > 1 && chunk+1 < numSpine(bs.nBits, bs.p.K) {
			c += bs.explore(cs, chunk+1, depth-1)
		}
		if c < best {
			best = c
		}
	}
	return best
}

// selectBest partially sorts cands so the k lowest-score candidates occupy
// cands[:k] (quickselect; ties broken arbitrarily, as §4.3 permits).
func selectBest(cands []candidate, k int) {
	if k >= len(cands) {
		return
	}
	lo, hi := 0, len(cands)-1
	for lo < hi {
		p := hoarePartition(cands, lo, hi)
		if k-1 <= p {
			hi = p
		} else {
			lo = p + 1
		}
	}
}

// hoarePartition rearranges cands[lo..hi] and returns j such that every
// element of cands[lo..j] has score ≤ every element of cands[j+1..hi],
// with lo ≤ j < hi.
func hoarePartition(cands []candidate, lo, hi int) int {
	// Median-of-three pivot to avoid quadratic behaviour on sorted input.
	mid := lo + (hi-lo)/2
	if cands[mid].score < cands[lo].score {
		cands[mid], cands[lo] = cands[lo], cands[mid]
	}
	if cands[hi].score < cands[lo].score {
		cands[hi], cands[lo] = cands[lo], cands[hi]
	}
	if cands[hi].score < cands[mid].score {
		cands[hi], cands[mid] = cands[mid], cands[hi]
	}
	pivot := cands[mid].score
	i, j := lo-1, hi+1
	for {
		for {
			i++
			if cands[i].score >= pivot {
				break
			}
		}
		for {
			j--
			if cands[j].score <= pivot {
				break
			}
		}
		if i >= j {
			return j
		}
		cands[i], cands[j] = cands[j], cands[i]
	}
}
