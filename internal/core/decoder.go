package core

import (
	"math"

	"spinal/internal/hashfn"
)

// Decoder is the bubble decoder for the AWGN channel (§4), optionally
// fading-aware (§8.3). It stores every received symbol and rebuilds the
// decoding tree on each Decode call; §7.1 found that caching explored
// nodes between attempts does not help, because new symbols change pruning
// decisions.
//
// The decoder owns all search scratch: after the first few Decode calls
// warm the buffers up, decoding allocates nothing. Received symbols are
// stored as separate I/Q planes (structure of arrays) so the ℓ2 metric's
// inner loop walks dense float64 slices, and the spine hash and symbol
// RNG are bound to concrete batched functions at construction instead of
// being dispatched through the hashfn.Hash interface per symbol.
type Decoder struct {
	p     Params
	nBits int
	ns    int
	words hashfn.WordsFunc
	cmask uint32
	table []float64 // constellation lookup, indexed by c-bit value

	// Received data per chunk, parallel planes.
	ts  [][]uint32  // RNG indices
	ysI [][]float64 // received symbol I plane
	ysQ [][]float64 // received symbol Q plane
	hsI [][]float64 // fading coefficient I plane (valid when faded[c])
	hsQ [][]float64 // fading coefficient Q plane
	// faded marks chunks whose hs planes are active; an unmarked chunk is
	// treated as h=1 throughout (plain AWGN).
	faded []bool

	// anyFaded is true once any chunk carries fading coefficients; the
	// quantized kernel's tables assume h = 1, so fading routes decodes to
	// the float path.
	anyFaded bool

	nsyms int

	// Quantized-kernel state: oaat is the devirtualized hash (valid when
	// quantStatic), maxAbsX the constellation's largest magnitude (for
	// the quantization range), q the fixed-point search scratch, and
	// lastKernel the arithmetic the most recent Decode ran on.
	oaat        hashfn.OneAtATime
	quantStatic bool
	maxAbsX     float64
	q           quantSearch
	lastKernel  Kernel

	bs     beamSearch
	eval   *evaluator // serial-path evaluator
	msgBuf []byte     // Decode result buffer
	parMsg []byte     // DecodeParallel result buffer (kept separate so a
	// serial result survives a subsequent parallel decode)
	par parPool
}

// NewDecoder creates a decoder for nBits-bit messages with the given code
// parameters.
func NewDecoder(nBits int, p Params) *Decoder {
	p = p.withDefaults()
	if nBits < 1 {
		panic("core: message must have at least one bit")
	}
	ns := numSpine(nBits, p.K)
	table := make([]float64, 1<<uint(p.C))
	for b := range table {
		table[b] = p.Mapper.Map(uint32(b))
	}
	d := &Decoder{
		p:     p,
		nBits: nBits,
		ns:    ns,
		words: hashfn.CompileWords(p.Hash),
		cmask: (1 << uint(p.C)) - 1,
		table: table,
		ts:    make([][]uint32, ns),
		ysI:   make([][]float64, ns),
		ysQ:   make([][]float64, ns),
		hsI:   make([][]float64, ns),
		hsQ:   make([][]float64, ns),
		faded: make([]bool, ns),
		bs:    newBeamSearch(nBits, p),
	}
	for _, x := range table {
		if a := math.Abs(x); a > d.maxAbsX {
			d.maxAbsX = a
		}
	}
	var isOAAT bool
	d.oaat, isOAAT = hashfn.AsOneAtATime(p.Hash)
	d.quantStatic = isOAAT && p.D == 1 && p.B<<uint(p.K) <= quantMaxStates &&
		p.Kernel != KernelFloat && !math.IsInf(d.maxAbsX, 0) && !math.IsNaN(d.maxAbsX)
	d.eval = d.newEvaluator()
	return d
}

// newEvaluator builds a branch-cost evaluator with its own scratch (and
// lookahead memo when D > 1). The serial decode path keeps one;
// DecodeParallel keeps one per pool worker.
//
// bind loads one chunk's stored planes into closure variables once per
// spine step; cost then scores a candidate state with no per-candidate
// slice chasing: one batched, devirtualized WordsFunc call fills a
// cache-resident word buffer (for OneAtATime the per-state prefix is
// mixed once and each index costs four mixed bytes plus the avalanche),
// and the ℓ2 loop runs over dense I/Q planes.
func (d *Decoder) newEvaluator() *evaluator {
	e := &evaluator{
		children: d.bs.children,
		nBits:    d.nBits,
		k:        d.p.K,
		ns:       d.ns,
	}
	if d.p.D > 1 {
		e.memo = make(map[uint64]float64)
	}
	var (
		ts     []uint32
		yI, yQ []float64
		hI, hQ []float64
		faded  bool
	)
	e.bind = func(chunk int) {
		if e.boundChunk == chunk {
			return
		}
		e.boundChunk = chunk
		ts = d.ts[chunk]
		yI, yQ = d.ysI[chunk], d.ysQ[chunk]
		faded = d.faded[chunk]
		if faded {
			hI, hQ = d.hsI[chunk], d.hsQ[chunk]
		}
	}
	table := d.table
	cmask := d.cmask
	cshift := uint(d.p.C)
	words := d.words
	var wbuf []uint32
	e.cost = func(state uint32) float64 {
		n := len(ts)
		if n == 0 {
			// Punctured chunk: cost 0, so all children of a parent score
			// equally, exactly as §5 prescribes.
			return 0
		}
		if cap(wbuf) < n {
			wbuf = make([]uint32, n)
		}
		w := wbuf[:n]
		words(state, ts, w)
		var sum float64
		if !faded {
			for i, wv := range w {
				dr := yI[i] - table[wv&cmask]
				di := yQ[i] - table[wv>>cshift&cmask]
				sum += dr*dr + di*di
			}
		} else {
			for i, wv := range w {
				xI := table[wv&cmask]
				xQ := table[wv>>cshift&cmask]
				dr := yI[i] - (xI*hI[i] - xQ*hQ[i])
				di := yQ[i] - (xI*hQ[i] + xQ*hI[i])
				sum += dr*dr + di*di
			}
		}
		return sum
	}
	oaat, isOAAT := hashfn.AsOneAtATime(d.p.Hash)
	if !isOAAT {
		e.expand = func(parent uint32, kb int, _ float64, childs []uint32, costs []float64) {
			e.children(parent, kb, childs)
			for j, s := range childs {
				costs[j] = e.cost(s)
			}
		}
		return e
	}
	// OneAtATime (the paper's production hash): score the whole batch in
	// transposed order. ChildrenPrefixes hoists the per-state half of
	// each RNG word while deriving the children; every stored symbol then
	// costs four mixed bytes plus the avalanche per candidate, in loops
	// whose iterations are independent.
	//
	// For unfaded chunks the squared distances themselves are
	// precomputed: per (symbol, constellation value) they do not depend
	// on the candidate at all, so a 2·2^C-entry table per stored symbol
	// (built once per spine step, L1-resident) turns the inner loop into
	// two loads and an add.
	L := 1 << uint(d.p.C)
	var pre, wrow []uint32
	var dtab []float64
	dtabFor := -1
	bindInner := e.bind
	e.bind = func(chunk int) {
		if e.boundChunk == chunk {
			return
		}
		bindInner(chunk)
		dtabFor = -1
	}
	e.expand = func(parent uint32, kb int, budget float64, childs []uint32, costs []float64) {
		nc := len(childs)
		n := len(ts)
		if cap(pre) < nc {
			pre = make([]uint32, nc)
			wrow = make([]uint32, 2*nc)
		}
		if n == 0 {
			e.children(parent, kb, childs)
			for j := range costs {
				costs[j] = 0
			}
			return
		}
		if !faded && dtabFor != e.boundChunk {
			dtabFor = e.boundChunk
			if cap(dtab) < n*2*L {
				dtab = make([]float64, n*2*L)
			}
			dtab = dtab[:n*2*L]
			for i := 0; i < n; i++ {
				o := i * 2 * L
				yi, yq := yI[i], yQ[i]
				for v, x := range table {
					dv := yi - x
					dq := yq - x
					dtab[o+v] = dv * dv
					dtab[o+L+v] = dq * dq
				}
			}
		}
		pr, wr, wr2 := pre[:nc], wrow[:nc], wrow[nc:2*nc]
		oaat.ChildrenPrefixes(parent, kb, childs, pr)
		i := 0
		// Symbols go two at a time where possible: one pass over the
		// candidates covers both words, halving the cost-array traffic.
		// The accumulation order matches the one-symbol-at-a-time loop
		// exactly, so costs are bit-identical either way.
		for ; !faded && i+1 < n; i += 2 {
			hashfn.FinishWords(pr, ts[i], wr)
			hashfn.FinishWords(pr, ts[i+1], wr2)
			o0, o1 := i*2*L, (i+1)*2*L
			dI0 := dtab[o0 : o0+L][: cmask+1 : cmask+1]
			dQ0 := dtab[o0+L : o0+2*L][: cmask+1 : cmask+1]
			dI1 := dtab[o1 : o1+L][: cmask+1 : cmask+1]
			dQ1 := dtab[o1+L : o1+2*L][: cmask+1 : cmask+1]
			mn := math.Inf(1)
			if i == 0 {
				for j, w := range wr {
					w1 := wr2[j]
					c := dI0[w&cmask] + dQ0[w>>cshift&cmask] + dI1[w1&cmask] + dQ1[w1>>cshift&cmask]
					costs[j] = c
					if c < mn {
						mn = c
					}
				}
			} else {
				for j, w := range wr {
					w1 := wr2[j]
					c := costs[j] + dI0[w&cmask] + dQ0[w>>cshift&cmask] + dI1[w1&cmask] + dQ1[w1>>cshift&cmask]
					costs[j] = c
					if c < mn {
						mn = c
					}
				}
			}
			if mn >= budget {
				// Every candidate in the batch already meets the
				// rejection bound; the caller discards them all, so the
				// remaining symbols need not be hashed.
				return
			}
		}
		for ; i < n; i++ {
			t := ts[i]
			hashfn.FinishWords(pr, t, wr)
			mn := math.Inf(1)
			if !faded {
				dI := dtab[i*2*L : i*2*L+L][: cmask+1 : cmask+1]
				dQ := dtab[i*2*L+L : (i+1)*2*L][: cmask+1 : cmask+1]
				if i == 0 {
					for j, w := range wr {
						c := dI[w&cmask] + dQ[w>>cshift&cmask]
						costs[j] = c
						if c < mn {
							mn = c
						}
					}
				} else {
					for j, w := range wr {
						c := costs[j] + dI[w&cmask] + dQ[w>>cshift&cmask]
						costs[j] = c
						if c < mn {
							mn = c
						}
					}
				}
			} else {
				yi, yq := yI[i], yQ[i]
				hi, hq := hI[i], hQ[i]
				for j, w := range wr {
					xI := table[w&cmask]
					xQ := table[w>>cshift&cmask]
					dr := yi - (xI*hi - xQ*hq)
					di := yq - (xI*hq + xQ*hi)
					var c float64
					if i == 0 {
						c = dr*dr + di*di
					} else {
						c = costs[j] + dr*dr + di*di
					}
					costs[j] = c
					if c < mn {
						mn = c
					}
				}
			}
			if mn >= budget {
				// Every candidate in the batch already meets the
				// rejection bound; the caller discards them all, so the
				// remaining symbols need not be hashed.
				return
			}
		}
	}
	return e
}

// NewSchedule returns a fresh transmission schedule matching this decoder.
func (d *Decoder) NewSchedule() *Schedule {
	return NewSchedule(d.ns, d.p.Ways, d.p.Tail)
}

// Add stores received symbols (AWGN: fading coefficient 1).
func (d *Decoder) Add(ids []SymbolID, y []complex128) {
	d.AddFaded(ids, y, nil)
}

// AddFaded stores received symbols along with their known fading
// coefficients (Fig 8-4). h may be nil, in which case the decoder treats
// the channel as unfaded — Fig 8-5's "AWGN decoder on a fading channel".
func (d *Decoder) AddFaded(ids []SymbolID, y []complex128, h []complex128) {
	if len(ids) != len(y) || (h != nil && len(h) != len(y)) {
		panic("core: mismatched symbol batch lengths")
	}
	for i, id := range ids {
		c := id.Chunk
		d.ts[c] = append(d.ts[c], id.RNGIndex)
		d.ysI[c] = append(d.ysI[c], real(y[i]))
		d.ysQ[c] = append(d.ysQ[c], imag(y[i]))
		if h != nil {
			d.anyFaded = true
			if !d.faded[c] {
				// Earlier symbols for this chunk arrived without fading
				// info; backfill with h=1.
				d.faded[c] = true
				d.hsI[c] = d.hsI[c][:0]
				d.hsQ[c] = d.hsQ[c][:0]
				for j := 0; j < len(d.ts[c])-1; j++ {
					d.hsI[c] = append(d.hsI[c], 1)
					d.hsQ[c] = append(d.hsQ[c], 0)
				}
			}
			d.hsI[c] = append(d.hsI[c], real(h[i]))
			d.hsQ[c] = append(d.hsQ[c], imag(h[i]))
		} else if d.faded[c] {
			d.hsI[c] = append(d.hsI[c], 1)
			d.hsQ[c] = append(d.hsQ[c], 0)
		}
		d.nsyms++
	}
}

// SymbolCount reports the number of symbols stored so far.
func (d *Decoder) SymbolCount() int { return d.nsyms }

// Reset discards stored symbols so the decoder can be reused for a new
// message with the same parameters. All storage and search scratch keeps
// its capacity, so a reset decoder decodes without re-warming.
func (d *Decoder) Reset() {
	for i := range d.ts {
		d.ts[i] = d.ts[i][:0]
		d.ysI[i] = d.ysI[i][:0]
		d.ysQ[i] = d.ysQ[i][:0]
		d.hsI[i] = d.hsI[i][:0]
		d.hsQ[i] = d.hsQ[i][:0]
		d.faded[i] = false
	}
	d.anyFaded = false
	d.nsyms = 0
}

// Close releases the persistent worker pool, if any. The decoder remains
// usable afterwards; a later DecodeParallel call recreates the pool.
// Close is optional — an unreachable decoder's pool is reclaimed by a
// runtime cleanup — but deterministic release is friendlier to tests and
// long-running servers.
func (d *Decoder) Close() { d.par.close() }

// Decode runs the bubble decoder over all stored symbols and returns the
// most likely message and its path cost. The caller checks correctness
// (via CRC at the link layer, §6, or direct comparison in simulations) and
// requests more symbols if the result is wrong.
//
// The returned slice is owned by the decoder and overwritten by the next
// Decode call (and by Reset); copy it if it must be retained.
//
// Arithmetic is selected by Params.Kernel: with KernelAuto or
// KernelQuantized an eligible decode runs on the fixed-point kernel
// (internal/hw) and falls back to the float64 reference path otherwise;
// KernelFloat always uses the reference path. KernelUsed reports the
// choice, QuantTolerance the cost accuracy.
func (d *Decoder) Decode() ([]byte, float64) {
	if d.quantEligible() {
		if msg, cost, ok := d.decodeQuantized(d.msgBuf); ok {
			d.msgBuf = msg
			d.lastKernel = KernelQuantized
			return msg, cost
		}
	}
	d.lastKernel = KernelFloat
	msg, cost := d.bs.run(d.eval, d.msgBuf)
	d.msgBuf = msg
	return msg, cost
}

// KernelUsed reports the arithmetic the most recent Decode ran on:
// KernelQuantized or KernelFloat (KernelAuto before the first decode).
// DecodeParallel always uses the float path and does not update it.
func (d *Decoder) KernelUsed() Kernel { return d.lastKernel }

// QuantTolerance bounds the absolute cost error of the most recent
// quantized Decode: the true (float) cost of any returned path differs
// from the reported cost by at most this much, provided no stored
// symbol's distances saturated the fixed-point range (only adversarial
// magnitudes beyond every finite symbol's reach do). Zero when the last
// decode used the float path.
func (d *Decoder) QuantTolerance() float64 {
	if d.lastKernel != KernelQuantized {
		return 0
	}
	return d.q.tol
}
