package core

import (
	"math"
	"slices"

	"spinal/internal/hashfn"
	"spinal/internal/hw"
)

// The quantized decode path: the bubble decoder of §4 run on the
// Appendix B fixed-point datapath (internal/hw) instead of float64
// branch metrics. Per spine step it quantizes the per-symbol squared
// distances into saturating int32 tables, expands the beam in blocks of
// contiguous candidates (one ChildrenPrefixes call per parent, one
// hashfn.FinishWords + hw.AccumulateCompact pass per stored symbol —
// scoring and the drop of dominated candidates fused into a single
// sweep), and keeps the best B via in-place hw.SelectKeys over packed
// cost<<32|origin keys. Selection runs whenever the survivor pool
// doubles past 2B and once at the end of the step; each select trims
// back to B and re-tightens the pruning bound to the exact running
// B-th-best (the select pivot), replacing the float path's
// histogram-estimated threshold. The float path in search.go is
// retained, bit-for-bit untouched, as the reference implementation.
//
// Beam order is an invariant: each step emits its survivors sorted by
// packed key (cost, then origin), so the next step expands parents in
// ascending cost order and stops at the first parent the running
// threshold dominates. Selection over unique packed keys makes the
// survivor set — and therefore the decode — fully deterministic,
// independent of block boundaries.

// quantMaxStates bounds B·2^K on the quantized path: child states are
// stashed densely by origin (parentRank<<kb | branchBits), so the stash
// has B·2^K entries. 2^22 (16 MiB of states) is far beyond the paper's
// operating range while keeping a pathological Params from allocating
// gigabytes.
const quantMaxStates = 1 << 22

// quantAbsYLimit is the largest |y| a stored symbol may contribute to
// the quantization range. Larger (or non-finite) values get no say in
// the scale — their distance-table entries saturate at the cap instead —
// so one adversarial sample cannot crush the resolution available to
// every sane symbol, and the range arithmetic itself cannot overflow.
const quantAbsYLimit = 1e75

// quantSearch owns the quantized path's scratch; all slices keep their
// capacity across decodes, so a warmed-up decoder runs at zero
// allocations, mirroring beamSearch.
type quantSearch struct {
	qz  hw.Quantizer
	tol float64 // qz.Tolerance(nsyms) of the most recent run

	// Beam SoA planes (parallel by index, ascending cost) and the
	// double-buffered next step.
	bState, b2State []uint32
	bCost, b2Cost   []int32
	bBack, b2Back   []int32

	// keys holds the step's surviving candidates as cost<<32 | origin.
	keys []uint64
	// sByOrg stashes child spine states densely by origin, so selection
	// only ever moves the 8-byte keys.
	sByOrg []uint32
	// Block scoring planes, parallel by index within the current block.
	pre  []uint32
	org  []uint32
	cost []int32
	wbuf []uint32 // per-symbol RNG words for the block being scored
	tabs []int32  // one step's distance tables: n symbols × 2 dims × 2^C
}

func ensureU32(s []uint32, n int) []uint32 {
	if cap(s) < n {
		return make([]uint32, n)
	}
	return s[:n]
}

func ensureI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// quantEligible reports whether the next Decode may use the fixed-point
// kernel: the static half (hash, depth, state-stash bound, kernel mode)
// is decided at construction; fading-aware symbols opt out per decode
// because the quantized tables assume h = 1.
func (d *Decoder) quantEligible() bool {
	return d.quantStatic && !d.anyFaded
}

// quantRange scans the stored planes for the largest finite
// per-dimension squared distance any candidate can see:
// (|y| + max|x|)², with |y| capped at quantAbsYLimit. The floor of
// (2·max|x|)² keeps the scale meaningful when no stored symbol
// qualifies.
func (d *Decoder) quantRange() float64 {
	maxA := 2 * d.maxAbsX
	for c := range d.ts {
		for _, plane := range [2][]float64{d.ysI[c], d.ysQ[c]} {
			for _, y := range plane {
				a := math.Abs(y)
				if a <= quantAbsYLimit && a+d.maxAbsX > maxA {
					maxA = a + d.maxAbsX
				}
			}
		}
	}
	return maxA * maxA
}

// decodeQuantized runs the fixed-point beam search over all stored
// symbols. ok is false when no feasible quantization exists (the caller
// then uses the float path); otherwise the message is written into dst
// (grown if needed) and returned with its dequantized path cost.
func (d *Decoder) decodeQuantized(dst []byte) ([]byte, float64, bool) {
	qz, ok := hw.NewQuantizer(d.quantRange(), d.nsyms)
	if !ok {
		return nil, 0, false
	}
	q := &d.q
	q.qz = qz
	q.tol = qz.Tolerance(d.nsyms)

	k := d.p.K
	B := d.p.B
	ns := d.ns
	L := len(d.table)
	cshift := uint(d.p.C)
	maxFan := 1 << uint(k)
	// Blocks hold up to max(256, fan) candidates: enough parents to
	// amortize the batched loops, few enough that the pruning threshold
	// tightens several times per step.
	blockCand := 256
	if maxFan > blockCand {
		blockCand = maxFan
	}
	q.bState = ensureU32(q.bState, B)
	q.bCost = ensureI32(q.bCost, B)
	q.bBack = ensureI32(q.bBack, B)
	q.b2State = ensureU32(q.b2State, B)
	q.b2Cost = ensureI32(q.b2Cost, B)
	q.b2Back = ensureI32(q.b2Back, B)
	q.sByOrg = ensureU32(q.sByOrg, B<<uint(k))
	q.pre = ensureU32(q.pre, blockCand)
	q.org = ensureU32(q.org, blockCand)
	q.cost = ensureI32(q.cost, blockCand)
	q.wbuf = ensureU32(q.wbuf, blockCand)
	if cap(q.keys) < 2*B+blockCand {
		q.keys = make([]uint64, 0, 2*B+blockCand)
	}

	bState, bCost, bBack := q.bState, q.bCost, q.bBack
	b2State, b2Cost, b2Back := q.b2State, q.b2Cost, q.b2Back
	bState[0], bCost[0], bBack[0] = d.p.Seed, 0, -1
	nbeam := 1
	arena := d.bs.arena[:0] // shared with the float path; runs never overlap

	for p := 0; p < ns; p++ {
		kb := chunkBits(d.nBits, k, p)
		fan := 1 << uint(kb)
		ts := d.ts[p]
		n := len(ts)

		// Per-step distance tables: L1-resident, one row pair per stored
		// symbol. Non-finite received values saturate here (hw.Quantize),
		// never in the accumulation loop.
		tabs := ensureI32(q.tabs, n*2*L)
		q.tabs = tabs
		yI, yQ := d.ysI[p], d.ysQ[p]
		for i := 0; i < n; i++ {
			o := i * 2 * L
			qz.BuildDistTables(yI[i], yQ[i], d.table, tabs[o:o+L], tabs[o+L:o+2*L])
		}

		blockP := blockCand >> uint(kb)
		if blockP == 0 {
			blockP = 1
		}
		tau := int32(math.MaxInt32)
		keys := q.keys[:0]
		for bi := 0; bi < nbeam; {
			// Parents arrive in ascending cost order; the first one the
			// threshold dominates ends the step (children only add cost).
			if bCost[bi] >= tau {
				break
			}
			bend := bi + blockP
			if bend > nbeam {
				bend = nbeam
			}
			w := 0
			for pi := bi; pi < bend; pi++ {
				pc := bCost[pi]
				if pc >= tau {
					break
				}
				og := uint32(pi) << uint(kb)
				d.oaat.ChildrenPrefixes(bState[pi], kb, q.sByOrg[og:og+uint32(fan)], q.pre[w:w+fan])
				for m := 0; m < fan; m++ {
					q.cost[w+m] = pc
					q.org[w+m] = og | uint32(m)
				}
				w += fan
			}
			bn := w
			if bn == 0 {
				break
			}
			if n > 0 {
				// Batched, not fused: FinishWords runs the independent hash
				// chains of a whole block back to back, which the CPU
				// overlaps across iterations — a per-candidate
				// hash-then-score loop measures ~30% slower on the same
				// workload despite touching fewer arrays.
				for i, t := range ts {
					hashfn.FinishWords(q.pre[:bn], t, q.wbuf[:bn])
					o := i * 2 * L
					bn = hw.AccumulateCompact(tau, q.cost, q.pre, q.org, q.wbuf[:bn],
						tabs[o:o+L], tabs[o+L:o+2*L], d.cmask, cshift)
					if bn == 0 {
						break
					}
				}
			} else if tau != math.MaxInt32 {
				// Punctured chunk (§5): children inherit the parent cost
				// unchanged; only the threshold filters.
				bn = hw.CompactBelow(tau, q.cost[:bn], q.pre, q.org)
			}
			for j := 0; j < bn; j++ {
				keys = append(keys, uint64(uint32(q.cost[j]))<<32|uint64(q.org[j]))
			}
			bi = bend
			// Re-select once the survivor pool doubles: trimming back to B
			// re-tightens tau to the exact running B-th best (the select's
			// pivot cost). Selecting at 2B rather than every block halves
			// the number of partitions while each still costs O(2B) — tau
			// is at most one pool-doubling stale, which only admits extra
			// candidates, never loses one.
			if len(keys) >= 2*B {
				pivot := hw.SelectKeys(keys, B)
				keys = keys[:B]
				tau = int32(pivot >> 32)
			}
		}
		if len(keys) > B {
			hw.SelectKeys(keys, B)
			keys = keys[:B]
		}
		q.keys = keys
		if len(keys) == 0 {
			// Unreachable (the first block always survives an infinite
			// threshold), but a silent fallback beats a corrupt beam.
			return nil, 0, false
		}

		// Sorting the packed keys both fixes the survivor order
		// deterministically and establishes the next step's
		// ascending-cost parent invariant.
		slices.Sort(keys)
		for j, key := range keys {
			og := uint32(key)
			arena = append(arena, backRec{
				parent: bBack[og>>uint(kb)],
				bits:   uint16(og & uint32(fan-1)),
			})
			b2State[j] = q.sByOrg[og]
			b2Cost[j] = int32(key >> 32)
			b2Back[j] = int32(len(arena) - 1)
		}
		nbeam = len(keys)
		bState, b2State = b2State, bState
		bCost, b2Cost = b2Cost, bCost
		bBack, b2Back = b2Back, bBack
	}

	q.bState, q.bCost, q.bBack = bState, bCost, bBack
	q.b2State, q.b2Cost, q.b2Back = b2State, b2Cost, b2Back
	d.bs.arena = arena

	// beam[0] is the cheapest final candidate (ascending order invariant).
	nb := (d.nBits + 7) / 8
	if cap(dst) < nb {
		dst = make([]byte, nb)
	}
	msg := dst[:nb]
	idx := bBack[0]
	for j := ns - 1; j >= 0; j-- {
		setChunk(msg, d.nBits, k, j, uint32(arena[idx].bits))
		idx = arena[idx].parent
	}
	return msg, qz.Dequantize(bCost[0]), true
}
