package core

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"

	"spinal/internal/channel"
	"spinal/internal/hashfn"
)

// refDecoder is a self-contained reimplementation of the seed repo's
// bubble decoder: array-of-structs symbol storage, interface-dispatched
// hashing, full candidate materialization and sort-based selection. The
// optimized Decoder must return messages with the same path cost (§4.3
// permits arbitrary tie-breaking, so the messages themselves may differ
// on exact cost ties).
type refDecoder struct {
	p     Params
	nBits int
	rng   hashfn.RNG
	cmask uint32
	table []float64

	ts [][]uint32
	ys [][]complex128
	hs [][]complex128
}

func newRefDecoder(nBits int, p Params) *refDecoder {
	p = p.withDefaults()
	ns := numSpine(nBits, p.K)
	table := make([]float64, 1<<uint(p.C))
	for b := range table {
		table[b] = p.Mapper.Map(uint32(b))
	}
	return &refDecoder{
		p:     p,
		nBits: nBits,
		rng:   hashfn.RNG{H: p.Hash},
		cmask: (1 << uint(p.C)) - 1,
		table: table,
		ts:    make([][]uint32, ns),
		ys:    make([][]complex128, ns),
		hs:    make([][]complex128, ns),
	}
}

func (d *refDecoder) addFaded(ids []SymbolID, y, h []complex128) {
	for i, id := range ids {
		c := id.Chunk
		d.ts[c] = append(d.ts[c], id.RNGIndex)
		d.ys[c] = append(d.ys[c], y[i])
		if h != nil {
			if d.hs[c] == nil && len(d.ts[c]) > 1 {
				d.hs[c] = make([]complex128, len(d.ts[c])-1)
				for j := range d.hs[c] {
					d.hs[c][j] = 1
				}
			}
			d.hs[c] = append(d.hs[c], h[i])
		} else if d.hs[c] != nil {
			d.hs[c] = append(d.hs[c], 1)
		}
	}
}

func (d *refDecoder) branchCost(chunk int, state uint32) float64 {
	ts := d.ts[chunk]
	ys := d.ys[chunk]
	hs := d.hs[chunk]
	c := uint(d.p.C)
	var sum float64
	for i, t := range ts {
		w := d.rng.Word(state, t)
		x := complex(d.table[w&d.cmask], d.table[w>>c&d.cmask])
		if hs != nil {
			x *= hs[i]
		}
		dr := real(ys[i]) - real(x)
		di := imag(ys[i]) - imag(x)
		sum += dr*dr + di*di
	}
	return sum
}

func (d *refDecoder) explore(state uint32, chunk, depth int) float64 {
	kb := chunkBits(d.nBits, d.p.K, chunk)
	best := math.Inf(1)
	for m := uint32(0); m < 1<<uint(kb); m++ {
		cs := d.p.Hash.Sum(state, m, kb)
		c := d.branchCost(chunk, cs)
		if depth > 1 && chunk+1 < numSpine(d.nBits, d.p.K) {
			c += d.explore(cs, chunk+1, depth-1)
		}
		if c < best {
			best = c
		}
	}
	return best
}

func (d *refDecoder) decode() ([]byte, float64) {
	k := d.p.K
	ns := numSpine(d.nBits, k)
	type refNode struct {
		state uint32
		back  int
		cost  float64
	}
	type refCand struct {
		state  uint32
		parent int
		bits   uint32
		cost   float64
		score  float64
	}
	beam := []refNode{{state: d.p.Seed, back: -1}}
	var arena []backRec
	for p := 0; p < ns; p++ {
		dd := d.p.D
		if p+dd > ns {
			dd = ns - p
		}
		kb := chunkBits(d.nBits, k, p)
		var cands []refCand
		for bi, node := range beam {
			for m := uint32(0); m < 1<<uint(kb); m++ {
				cs := d.p.Hash.Sum(node.state, m, kb)
				base := node.cost + d.branchCost(p, cs)
				score := base
				if dd > 1 {
					score += d.explore(cs, p+1, dd-1)
				}
				cands = append(cands, refCand{state: cs, parent: bi, bits: m, cost: base, score: score})
			}
		}
		sort.SliceStable(cands, func(i, j int) bool { return cands[i].score < cands[j].score })
		keep := d.p.B
		if keep > len(cands) {
			keep = len(cands)
		}
		newBeam := make([]refNode, keep)
		for i := 0; i < keep; i++ {
			arena = append(arena, backRec{parent: int32(beam[cands[i].parent].back), bits: uint16(cands[i].bits)})
			newBeam[i] = refNode{state: cands[i].state, back: len(arena) - 1, cost: cands[i].cost}
		}
		beam = newBeam
	}
	best := 0
	for i := 1; i < len(beam); i++ {
		if beam[i].cost < beam[best].cost {
			best = i
		}
	}
	msg := make([]byte, (d.nBits+7)/8)
	idx := int32(beam[best].back)
	for j := ns - 1; j >= 0; j-- {
		setChunk(msg, d.nBits, k, j, uint32(arena[idx].bits))
		idx = arena[idx].parent
	}
	return msg, beam[best].cost
}

// pathCost recomputes the total branch cost of a complete message — an
// independent check that a decoder's reported cost is consistent with
// the message it returned.
func (d *refDecoder) pathCost(msg []byte) float64 {
	p := d.p
	ns := numSpine(d.nBits, p.K)
	s := p.Seed
	var sum float64
	for j := 0; j < ns; j++ {
		s = p.Hash.Sum(s, chunkAt(msg, d.nBits, p.K, j), chunkBits(d.nBits, p.K, j))
		sum += d.branchCost(j, s)
	}
	return sum
}

func relClose(a, b float64) bool {
	diff := math.Abs(a - b)
	if diff == 0 {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale+1e-12
}

// TestDecodeEquivalence: across random parameter draws (k, B, D, ways,
// fading on/off, noise level), the optimized serial decoder, the
// parallel decoder and the seed-style reference decoder must all return
// messages of identical cost (up to ties), and each reported cost must
// equal the recomputed path cost of the returned message.
func TestDecodeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		p := Params{
			K:    1 + rng.Intn(4),
			B:    4 << rng.Intn(4),
			D:    1 + rng.Intn(3),
			C:    6,
			Tail: 1 + rng.Intn(3),
			Ways: []int{1, 2, 4, 8}[rng.Intn(4)],
			Seed: rng.Uint32(),
			// This suite pins the float64 reference arithmetic at 1e-9;
			// quant_equivalence_test.go pins the quantized kernel against
			// it at the quantization tolerance.
			Kernel: KernelFloat,
		}
		nBits := 16 + rng.Intn(80)
		msg := randomMessage(rng, nBits)
		enc := NewEncoder(msg, nBits, p)
		dec := NewDecoder(nBits, p)
		ref := newRefDecoder(nBits, p)
		sched := enc.NewSchedule()

		snr := 8 + rng.Float64()*12
		ch := channel.NewAWGN(snr, int64(1000+trial))
		var ray *channel.Rayleigh
		if trial%3 == 0 {
			ray = channel.NewRayleigh(snr, 1+rng.Intn(20), int64(2000+trial))
		}
		for sub := 0; sub < 2*p.Ways; sub++ {
			ids := sched.NextSubpass()
			x := enc.Symbols(ids)
			if ray != nil {
				y, h := ray.Transmit(x)
				dec.AddFaded(ids, y, h)
				ref.addFaded(ids, y, h)
			} else {
				y := ch.Transmit(x)
				dec.Add(ids, y)
				ref.addFaded(ids, y, nil)
			}
		}

		wantMsg, wantCost := ref.decode()
		gotMsg, gotCost := dec.Decode()
		if !relClose(wantCost, gotCost) {
			t.Fatalf("trial %d (%+v): ref cost %g, Decode cost %g", trial, p, wantCost, gotCost)
		}
		if !relClose(gotCost, ref.pathCost(gotMsg)) {
			t.Fatalf("trial %d: Decode cost %g inconsistent with its message (path cost %g)",
				trial, gotCost, ref.pathCost(gotMsg))
		}
		if !relClose(wantCost, ref.pathCost(wantMsg)) {
			t.Fatalf("trial %d: reference decoder inconsistent with itself", trial)
		}

		workers := 2 + rng.Intn(4)
		parMsg, parCost := dec.DecodeParallel(workers)
		if !relClose(wantCost, parCost) {
			t.Fatalf("trial %d (%+v): ref cost %g, DecodeParallel(%d) cost %g",
				trial, p, wantCost, workers, parCost)
		}
		if !relClose(parCost, ref.pathCost(parMsg)) {
			t.Fatalf("trial %d: DecodeParallel cost inconsistent with its message", trial)
		}
		// The serial result must have survived the parallel decode: the
		// two paths use separate result buffers.
		if !relClose(gotCost, ref.pathCost(gotMsg)) {
			t.Fatalf("trial %d: serial result clobbered by parallel decode", trial)
		}
		dec.Close()

		// On equal costs with no ties the messages agree outright; when
		// they differ, both must still be exact-cost ties.
		if !bytes.Equal(wantMsg, gotMsg) && !relClose(ref.pathCost(wantMsg), ref.pathCost(gotMsg)) {
			t.Fatalf("trial %d: different messages with different costs", trial)
		}
	}
}

// TestBSCDecodeEquivalence mirrors the equivalence check for the Hamming
// metric decoder, including its parallel path.
func TestBSCDecodeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 10; trial++ {
		p := Params{
			K:    1 + rng.Intn(4),
			B:    4 << rng.Intn(4),
			D:    1 + rng.Intn(2),
			C:    1,
			Tail: 2,
			Ways: []int{1, 2, 4, 8}[rng.Intn(4)],
		}
		nBits := 16 + rng.Intn(48)
		msg := randomMessage(rng, nBits)
		enc := NewEncoder(msg, nBits, p)
		dec := NewBSCDecoder(nBits, p)
		sched := enc.NewSchedule()
		ch := channel.NewBSC(0.03, int64(3000+trial))
		for sub := 0; sub < 6*p.Ways; sub++ {
			ids := sched.NextSubpass()
			dec.Add(ids, ch.Transmit(enc.Bits(ids)))
		}
		gotMsg, gotCost := dec.Decode()
		parMsg, parCost := dec.DecodeParallel(3)
		if gotCost != parCost {
			t.Fatalf("trial %d: BSC serial cost %g != parallel cost %g", trial, gotCost, parCost)
		}
		if !bytes.Equal(gotMsg, parMsg) && gotCost != parCost {
			t.Fatalf("trial %d: BSC messages differ with different costs", trial)
		}
		dec.Close()
	}
}
