package core

import "spinal/internal/hashfn"

// Encoder produces the rateless symbol stream for one message (§3). It is
// a pure function of (message, Params): any SymbolID may be generated at
// any time and in any order, so lost or punctured symbols are never
// computed (§7.1).
//
// The spine hash is bound to a concrete function at construction and the
// constellation mapping is precomputed into a lookup table, so symbol
// generation makes no interface calls. Reset re-targets an encoder at a
// new message without reallocating.
type Encoder struct {
	p     Params
	nBits int
	sp    []uint32
	sum   hashfn.SumFunc
	cmask uint32
	table []float64 // constellation lookup, indexed by c-bit value
}

// NewEncoder builds an encoder for the first nBits bits of msg. nBits must
// be positive and msg must hold at least ⌈nBits/8⌉ bytes.
func NewEncoder(msg []byte, nBits int, p Params) *Encoder {
	p = p.withDefaults()
	if nBits < 1 {
		panic("core: message must have at least one bit")
	}
	if len(msg)*8 < nBits {
		panic("core: message shorter than nBits")
	}
	table := make([]float64, 1<<uint(p.C))
	for b := range table {
		table[b] = p.Mapper.Map(uint32(b))
	}
	e := &Encoder{
		p:     p,
		nBits: nBits,
		sum:   hashfn.Compile(p.Hash),
		cmask: (1 << uint(p.C)) - 1,
		table: table,
	}
	e.sp = e.appendSpine(e.sp[:0], msg, nBits)
	return e
}

// Reset re-targets the encoder at a new message, recomputing the spine in
// place with no allocation (unless nBits grows). Parameters are unchanged;
// nBits and msg follow the NewEncoder rules.
func (e *Encoder) Reset(msg []byte, nBits int) {
	if nBits < 1 {
		panic("core: message must have at least one bit")
	}
	if len(msg)*8 < nBits {
		panic("core: message shorter than nBits")
	}
	e.nBits = nBits
	e.sp = e.appendSpine(e.sp[:0], msg, nBits)
}

// appendSpine computes the spine s_1..s_{numSpine} for msg into dst.
func (e *Encoder) appendSpine(dst []uint32, msg []byte, nBits int) []uint32 {
	ns := numSpine(nBits, e.p.K)
	s := e.p.Seed
	for j := 0; j < ns; j++ {
		s = e.sum(s, chunkAt(msg, nBits, e.p.K, j), chunkBits(nBits, e.p.K, j))
		dst = append(dst, s)
	}
	return dst
}

// NumSpine reports the number of spine values (message chunks).
func (e *Encoder) NumSpine() int { return len(e.sp) }

// Params returns the encoder's (defaulted) parameters.
func (e *Encoder) Params() Params { return e.p }

// NewSchedule returns a fresh transmission schedule matching this encoder.
func (e *Encoder) NewSchedule() *Schedule {
	return NewSchedule(len(e.sp), e.p.Ways, e.p.Tail)
}

// Symbol generates the I/Q symbol for one SymbolID. One RNG word supplies
// both c-bit constellation inputs (I from the low bits, Q from the next c
// bits).
func (e *Encoder) Symbol(id SymbolID) complex128 {
	w := e.sum(e.sp[id.Chunk], id.RNGIndex, 32)
	return complex(e.table[w&e.cmask], e.table[w>>uint(e.p.C)&e.cmask])
}

// AppendSymbols appends the symbols for a batch of SymbolIDs to dst and
// returns the extended slice. Callers that reuse dst across batches (the
// simulation engine's transmit loop, benchmarks) generate symbols without
// allocating.
func (e *Encoder) AppendSymbols(dst []complex128, ids []SymbolID) []complex128 {
	c := uint(e.p.C)
	for _, id := range ids {
		w := e.sum(e.sp[id.Chunk], id.RNGIndex, 32)
		dst = append(dst, complex(e.table[w&e.cmask], e.table[w>>c&e.cmask]))
	}
	return dst
}

// Symbols generates the symbols for a batch of SymbolIDs (one subpass,
// typically) into a fresh slice.
func (e *Encoder) Symbols(ids []SymbolID) []complex128 {
	return e.AppendSymbols(make([]complex128, 0, len(ids)), ids)
}

// Bit generates the coded bit for one SymbolID in BSC mode (§3.3: c = 1
// and the sender transmits the bit directly).
func (e *Encoder) Bit(id SymbolID) byte {
	return byte(e.sum(e.sp[id.Chunk], id.RNGIndex, 32) & 1)
}

// AppendBits appends coded bits for a batch of SymbolIDs to dst and
// returns the extended slice.
func (e *Encoder) AppendBits(dst []byte, ids []SymbolID) []byte {
	for _, id := range ids {
		dst = append(dst, byte(e.sum(e.sp[id.Chunk], id.RNGIndex, 32)&1))
	}
	return dst
}

// Bits generates coded bits for a batch of SymbolIDs into a fresh slice.
func (e *Encoder) Bits(ids []SymbolID) []byte {
	return e.AppendBits(make([]byte, 0, len(ids)), ids)
}
