package core

import "spinal/internal/hashfn"

// Encoder produces the rateless symbol stream for one message (§3). It is
// a pure function of (message, Params): any SymbolID may be generated at
// any time and in any order, so lost or punctured symbols are never
// computed (§7.1).
type Encoder struct {
	p     Params
	nBits int
	sp    []uint32
	rng   hashfn.RNG
	cmask uint32
}

// NewEncoder builds an encoder for the first nBits bits of msg. nBits must
// be positive and msg must hold at least ⌈nBits/8⌉ bytes.
func NewEncoder(msg []byte, nBits int, p Params) *Encoder {
	p = p.withDefaults()
	if nBits < 1 {
		panic("core: message must have at least one bit")
	}
	if len(msg)*8 < nBits {
		panic("core: message shorter than nBits")
	}
	return &Encoder{
		p:     p,
		nBits: nBits,
		sp:    spine(msg, nBits, p),
		rng:   hashfn.RNG{H: p.Hash},
		cmask: (1 << uint(p.C)) - 1,
	}
}

// NumSpine reports the number of spine values (message chunks).
func (e *Encoder) NumSpine() int { return len(e.sp) }

// Params returns the encoder's (defaulted) parameters.
func (e *Encoder) Params() Params { return e.p }

// NewSchedule returns a fresh transmission schedule matching this encoder.
func (e *Encoder) NewSchedule() *Schedule {
	return NewSchedule(len(e.sp), e.p.Ways, e.p.Tail)
}

// Symbol generates the I/Q symbol for one SymbolID. One RNG word supplies
// both c-bit constellation inputs (I from the low bits, Q from the next c
// bits).
func (e *Encoder) Symbol(id SymbolID) complex128 {
	w := e.rng.Word(e.sp[id.Chunk], id.RNGIndex)
	return complex(e.p.Mapper.Map(w&e.cmask), e.p.Mapper.Map(w>>uint(e.p.C)&e.cmask))
}

// Symbols generates the symbols for a batch of SymbolIDs (one subpass,
// typically).
func (e *Encoder) Symbols(ids []SymbolID) []complex128 {
	out := make([]complex128, len(ids))
	for i, id := range ids {
		out[i] = e.Symbol(id)
	}
	return out
}

// Bit generates the coded bit for one SymbolID in BSC mode (§3.3: c = 1
// and the sender transmits the bit directly).
func (e *Encoder) Bit(id SymbolID) byte {
	return byte(e.rng.Word(e.sp[id.Chunk], id.RNGIndex) & 1)
}

// Bits generates coded bits for a batch of SymbolIDs.
func (e *Encoder) Bits(ids []SymbolID) []byte {
	out := make([]byte, len(ids))
	for i, id := range ids {
		out[i] = e.Bit(id)
	}
	return out
}
