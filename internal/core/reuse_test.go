package core

import (
	"bytes"
	"math/rand"
	"testing"

	"spinal/internal/channel"
)

// TestDecoderResetReuse: one decoder serves many messages via Reset, and
// behaves identically to a fresh decoder for each.
func TestDecoderResetReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	p := testParams()
	nBits := 96
	reused := NewDecoder(nBits, p)
	for round := 0; round < 5; round++ {
		msg := randomMessage(rng, nBits)
		enc := NewEncoder(msg, nBits, p)
		fresh := NewDecoder(nBits, p)
		ch := channel.NewAWGN(15, int64(500+round))
		sched := enc.NewSchedule()
		reused.Reset()
		for sub := 0; sub < 2*p.Ways; sub++ {
			ids := sched.NextSubpass()
			y := ch.Transmit(enc.Symbols(ids))
			reused.Add(ids, y)
			fresh.Add(ids, y)
		}
		gotR, costR := reused.Decode()
		gotF, costF := fresh.Decode()
		if !bytes.Equal(gotR, gotF) || costR != costF {
			t.Fatalf("round %d: reused decoder (%x, %g) != fresh decoder (%x, %g)",
				round, gotR, costR, gotF, costF)
		}
		if !bytes.Equal(gotR, msg) {
			t.Fatalf("round %d: decode failed at SNR 15", round)
		}
		if reused.SymbolCount() != fresh.SymbolCount() {
			t.Fatalf("round %d: symbol counts differ after reset", round)
		}
	}
}

// TestDecoderResetClearsFading: a reset decoder must not leak per-chunk
// fading state into the next message.
func TestDecoderResetClearsFading(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	p := testParams()
	nBits := 64
	dec := NewDecoder(nBits, p)

	// Round 1: faded symbols.
	msg := randomMessage(rng, nBits)
	enc := NewEncoder(msg, nBits, p)
	ray := channel.NewRayleigh(20, 4, 99)
	sched := enc.NewSchedule()
	for sub := 0; sub < 2*p.Ways; sub++ {
		ids := sched.NextSubpass()
		y, h := ray.Transmit(enc.Symbols(ids))
		dec.AddFaded(ids, y, h)
	}
	if got, _ := dec.Decode(); !bytes.Equal(got, msg) {
		t.Fatal("faded decode failed at SNR 20")
	}

	// Round 2: clean AWGN after Reset must decode as if fresh.
	dec.Reset()
	msg2 := randomMessage(rng, nBits)
	enc2 := NewEncoder(msg2, nBits, p)
	sched2 := enc2.NewSchedule()
	for sub := 0; sub < 2*p.Ways; sub++ {
		ids := sched2.NextSubpass()
		dec.Add(ids, enc2.Symbols(ids))
	}
	if got, cost := dec.Decode(); !bytes.Equal(got, msg2) || cost != 0 {
		t.Fatal("noiseless decode after faded reset failed")
	}
}

// TestEncoderResetMatchesFresh: Reset re-targets an encoder exactly as
// constructing a new one would.
func TestEncoderResetMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	p := testParams()
	nBits := 80
	enc := NewEncoder(randomMessage(rng, nBits), nBits, p)
	for round := 0; round < 3; round++ {
		msg := randomMessage(rng, nBits)
		enc.Reset(msg, nBits)
		want := NewEncoder(msg, nBits, p)
		sched := enc.NewSchedule()
		for sub := 0; sub < p.Ways; sub++ {
			ids := sched.NextSubpass()
			for _, id := range ids {
				if enc.Symbol(id) != want.Symbol(id) {
					t.Fatalf("round %d: symbol %v differs after Reset", round, id)
				}
			}
		}
	}
	// Reset may also change the message length.
	short := randomMessage(rng, 24)
	enc.Reset(short, 24)
	if enc.NumSpine() != numSpine(24, p.K) {
		t.Fatal("Reset did not adjust spine length")
	}
	want := NewEncoder(short, 24, p)
	if enc.Symbol(SymbolID{Chunk: 1, RNGIndex: 3}) != want.Symbol(SymbolID{Chunk: 1, RNGIndex: 3}) {
		t.Fatal("short-message symbols differ after Reset")
	}
}

// TestDecodeSteadyStateAllocs: after warmup, Decode must not allocate at
// all — the scratch beam, candidate, filter and result buffers are all
// owned by the decoder.
func TestDecodeSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	p := Params{K: 4, B: 256, D: 1, C: 6, Tail: 2, Ways: 8}
	nBits := 256
	msg := randomMessage(rng, nBits)
	enc := NewEncoder(msg, nBits, p)
	dec := NewDecoder(nBits, p)
	ch := channel.NewAWGN(15, 42)
	sched := enc.NewSchedule()
	for sub := 0; sub < 2*p.Ways; sub++ {
		ids := sched.NextSubpass()
		dec.Add(ids, ch.Transmit(enc.Symbols(ids)))
	}
	for i := 0; i < 3; i++ {
		dec.Decode() // warm the scratch buffers up
	}
	if avg := testing.AllocsPerRun(20, func() { dec.Decode() }); avg != 0 {
		t.Fatalf("steady-state Decode allocates: %g allocs/op", avg)
	}
}

// TestBSCDecodeSteadyStateAllocs is the BSC analogue.
func TestBSCDecodeSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	p := Params{K: 4, B: 64, D: 1, C: 1, Tail: 2, Ways: 8}
	nBits := 128
	msg := randomMessage(rng, nBits)
	enc := NewEncoder(msg, nBits, p)
	dec := NewBSCDecoder(nBits, p)
	ch := channel.NewBSC(0.05, 43)
	sched := enc.NewSchedule()
	for sub := 0; sub < 4*p.Ways; sub++ {
		ids := sched.NextSubpass()
		dec.Add(ids, ch.Transmit(enc.Bits(ids)))
	}
	for i := 0; i < 3; i++ {
		dec.Decode()
	}
	if avg := testing.AllocsPerRun(20, func() { dec.Decode() }); avg != 0 {
		t.Fatalf("steady-state BSC Decode allocates: %g allocs/op", avg)
	}
}

// TestAppendSymbolsMatchesSymbols pins the append API to the allocating
// one, including the dst-reuse contract.
func TestAppendSymbolsMatchesSymbols(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	p := testParams()
	msg := randomMessage(rng, 64)
	enc := NewEncoder(msg, 64, p)
	sched := enc.NewSchedule()
	var buf []complex128
	var bits []byte
	for sub := 0; sub < 3*p.Ways; sub++ {
		ids := sched.NextSubpass()
		buf = enc.AppendSymbols(buf[:0], ids)
		want := enc.Symbols(ids)
		if len(buf) != len(want) {
			t.Fatal("AppendSymbols length mismatch")
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("subpass %d: AppendSymbols[%d] = %v, Symbols = %v", sub, i, buf[i], want[i])
			}
		}
		bits = enc.AppendBits(bits[:0], ids)
		wantBits := enc.Bits(ids)
		if !bytes.Equal(bits, wantBits) {
			t.Fatal("AppendBits mismatch")
		}
	}
}

// TestDecoderCloseAndReuse: Close releases the worker pool; the decoder
// keeps working and can rebuild it.
func TestDecoderCloseAndReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	p := testParams()
	nBits := 64
	msg := randomMessage(rng, nBits)
	enc := NewEncoder(msg, nBits, p)
	dec := NewDecoder(nBits, p)
	sched := enc.NewSchedule()
	for sub := 0; sub < 2*p.Ways; sub++ {
		ids := sched.NextSubpass()
		dec.Add(ids, enc.Symbols(ids))
	}
	if got, _ := dec.DecodeParallel(4); !bytes.Equal(got, msg) {
		t.Fatal("parallel decode failed")
	}
	dec.Close()
	if got, _ := dec.Decode(); !bytes.Equal(got, msg) {
		t.Fatal("serial decode failed after Close")
	}
	if got, _ := dec.DecodeParallel(2); !bytes.Equal(got, msg) {
		t.Fatal("parallel decode failed after Close")
	}
	dec.Close()
	dec.Close() // double Close is fine
}
