package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Codec is one CodecPool worker's private, reusable transmit/receive
// state: an encoder re-targeted with Encoder.Reset and a small cache of
// decoders keyed by message length (a Decoder's search scratch is sized
// for one nBits). A worker serves many messages, so steady-state encode
// and decode jobs build nothing — they reuse the warmed-up codecs.
//
// A Codec is confined to its worker goroutine; jobs must not retain it,
// nor retain slices returned by its codecs, past the job's return.
type Codec struct {
	p        Params
	enc      *Encoder
	decs     map[int]*Decoder
	encBuilt *atomic.Int64
	decBuilt *atomic.Int64
	// X is symbol scratch a job may use freely (e.g. as an AppendSymbols
	// destination); it persists across the worker's jobs.
	X []complex128
}

// Encoder returns the worker's encoder re-targeted at msg, creating it on
// first use. msg and nBits follow the NewEncoder rules.
func (c *Codec) Encoder(msg []byte, nBits int) *Encoder {
	if c.enc == nil {
		c.enc = NewEncoder(msg, nBits, c.p)
		c.encBuilt.Add(1)
		return c.enc
	}
	c.enc.Reset(msg, nBits)
	return c.enc
}

// Decoder returns the worker's decoder for nBits-bit messages, reset to
// an empty symbol store. Each distinct nBits gets one cached decoder per
// worker; repeated calls reuse it.
func (c *Codec) Decoder(nBits int) *Decoder {
	d, ok := c.decs[nBits]
	if !ok {
		d = NewDecoder(nBits, c.p)
		c.decs[nBits] = d
		c.decBuilt.Add(1)
		return d
	}
	d.Reset()
	return d
}

// CodecPool is a sharded pool of persistent codec workers: Submit hands a
// job to one shard's goroutine, which runs it with the shard's private
// Codec. Callers that route related work (all attempts for one code
// block, say) to a stable shard get the same warmed codecs every time,
// while independent shards run concurrently — the multi-flow link engine
// pattern, generalizing the per-worker codec reuse of sim.ParallelWith
// and the persistent expansion pool of parallel.go.
type CodecPool struct {
	w        *codecWorkers
	encBuilt *atomic.Int64
	decBuilt *atomic.Int64
}

// codecWorkers is the shutdown-owning half of a pool. It is referenced by
// neither the worker goroutines (each holds only its own job channel) nor
// the runtime cleanup's target, so an abandoned CodecPool handle becomes
// unreachable, its cleanup fires, and the workers exit.
type codecWorkers struct {
	jobs     []chan func(*Codec)
	wg       sync.WaitGroup
	stopOnce sync.Once
}

func (w *codecWorkers) stop() {
	w.stopOnce.Do(func() {
		for _, c := range w.jobs {
			close(c)
		}
		w.wg.Wait()
	})
}

// NewCodecPool starts a pool of shards persistent workers sharing the
// given code parameters (shards ≤ 0 means GOMAXPROCS). Call Close when
// done; an unreachable pool's workers are reclaimed automatically.
func NewCodecPool(p Params, shards int) *CodecPool {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	p = p.withDefaults()
	cp := &CodecPool{
		w:        &codecWorkers{jobs: make([]chan func(*Codec), shards)},
		encBuilt: new(atomic.Int64),
		decBuilt: new(atomic.Int64),
	}
	// The goroutines capture only w and the counters — not cp — so an
	// abandoned handle is collectable and its cleanup stops the workers.
	w, encBuilt, decBuilt := cp.w, cp.encBuilt, cp.decBuilt
	w.wg.Add(shards)
	for s := range w.jobs {
		// Buffered so a round of submissions rarely blocks the producer;
		// correctness does not depend on the capacity.
		jobs := make(chan func(*Codec), 32)
		w.jobs[s] = jobs
		go func() {
			defer w.wg.Done()
			c := &Codec{
				p:        p,
				decs:     make(map[int]*Decoder),
				encBuilt: encBuilt,
				decBuilt: decBuilt,
			}
			for job := range jobs {
				job(c)
			}
			for _, d := range c.decs {
				d.Close()
			}
		}()
	}
	runtime.AddCleanup(cp, func(w *codecWorkers) { w.stop() }, cp.w)
	return cp
}

// Shards reports the number of worker shards.
func (cp *CodecPool) Shards() int { return len(cp.w.jobs) }

// Submit enqueues fn on shard (taken modulo the shard count, so any
// non-negative routing key works). It blocks only when the shard's queue
// is full. Jobs on one shard run in submission order; completion is the
// caller's to track (wrap fn with a WaitGroup).
func (cp *CodecPool) Submit(shard int, fn func(*Codec)) {
	cp.w.jobs[shard%len(cp.w.jobs)] <- fn
}

// Close stops the workers after draining queued jobs and releases their
// decoders' search pools. Idempotent; Submit after Close panics.
func (cp *CodecPool) Close() { cp.w.stop() }

// CodecPoolStats counts codec constructions since the pool started —
// the observable that proves workers reuse codecs instead of rebuilding
// them per job (each shard builds at most one encoder plus one decoder
// per distinct message length, no matter how many jobs it runs).
type CodecPoolStats struct {
	EncodersBuilt int64
	DecodersBuilt int64
}

// Stats reports construction counters; safe to call concurrently with
// running jobs.
func (cp *CodecPool) Stats() CodecPoolStats {
	return CodecPoolStats{
		EncodersBuilt: cp.encBuilt.Load(),
		DecodersBuilt: cp.decBuilt.Load(),
	}
}
