package core
