package core

// SymbolID identifies one transmitted symbol: which spine value generated
// it and which RNG output index produced its bits. The encoder and decoder
// derive identical SymbolID streams from the shared Schedule, which is how
// they stay synchronized without metadata on the air (§6 assumes the
// receiver knows which spine values are in each frame).
type SymbolID struct {
	// Chunk is the 0-based spine index (message chunk) of the symbol.
	Chunk int
	// RNGIndex is the index handed to the RNG for this symbol.
	RNGIndex uint32
}

// Schedule enumerates the transmission order of symbols: passes divided
// into subpasses per the §5 puncturing schedule, with §4.4 tail symbols
// for the final spine value emitted once per pass.
//
// With Ways = w, each pass has w subpasses; subpass r of a pass transmits
// the spine values whose index is congruent to order[r] (mod w). The
// residue order interleaves classes so that after any prefix of subpasses
// the transmitted spine values are close to evenly spaced, which is what
// makes aggressive early decode attempts worthwhile (Fig 8-10).
type Schedule struct {
	nspine int
	ways   int
	tail   int
	order  []int
	sub    int      // next subpass number within the pass
	next   []uint32 // per-chunk RNG index counters
}

// residueOrder lists the §5-style subpass residue sequence for each
// supported fan-out. The sequences are bit-reversed counting, so each
// prefix of subpasses spreads transmitted spine values evenly.
var residueOrder = map[int][]int{
	1: {0},
	2: {1, 0},
	4: {3, 1, 2, 0},
	8: {7, 3, 5, 1, 6, 2, 4, 0},
}

// NewScheduleFor creates the transmission schedule for an nBits-bit
// message under p, applying the same parameter defaulting as the codecs.
// It matches Encoder.NewSchedule and Decoder.NewSchedule without needing
// either in hand — the link layer's senders schedule blocks whose
// encoders live on a codec pool.
func NewScheduleFor(nBits int, p Params) *Schedule {
	p = p.withDefaults()
	return NewSchedule(numSpine(nBits, p.K), p.Ways, p.Tail)
}

// NewSchedule creates the symbol schedule for a code with nspine spine
// values, the given puncturing fan-out (1, 2, 4 or 8) and tail symbol
// count (≥1, total symbols from the last spine value per pass).
func NewSchedule(nspine, ways, tail int) *Schedule {
	ord, ok := residueOrder[ways]
	if !ok {
		panic("core: puncturing ways must be 1, 2, 4 or 8")
	}
	if nspine < 1 {
		panic("core: schedule needs at least one spine value")
	}
	if tail < 1 {
		panic("core: tail must be ≥ 1")
	}
	return &Schedule{
		nspine: nspine,
		ways:   ways,
		tail:   tail,
		order:  ord,
		next:   make([]uint32, nspine),
	}
}

// SymbolsPerPass reports the number of symbols a full pass transmits:
// one per spine value plus the extra tail symbols.
func (s *Schedule) SymbolsPerPass() int { return s.nspine + s.tail - 1 }

// Subpasses reports the number of subpasses per pass.
func (s *Schedule) Subpasses() int { return s.ways }

// NextSubpass returns the SymbolIDs of the next subpass in transmission
// order, advancing the schedule. Successive calls cycle through subpasses
// and then begin the next pass; the stream is infinite (rateless).
func (s *Schedule) NextSubpass() []SymbolID {
	residue := s.order[s.sub]
	last := s.nspine - 1
	var ids []SymbolID
	for c := residue; c < s.nspine; c += s.ways {
		ids = append(ids, s.take(c))
		if c == last {
			for extra := 1; extra < s.tail; extra++ {
				ids = append(ids, s.take(last))
			}
		}
	}
	s.sub++
	if s.sub == s.ways {
		s.sub = 0
	}
	return ids
}

func (s *Schedule) take(chunk int) SymbolID {
	id := SymbolID{Chunk: chunk, RNGIndex: s.next[chunk]}
	s.next[chunk]++
	return id
}
