package core

import (
	"math"

	"spinal/internal/hashfn"
)

// evaluator computes branch costs and lookahead scores with private
// scratch. One evaluator serves the serial search; the parallel search
// owns one per worker so branch evaluation never shares mutable state.
//
// Branch evaluation is split into bind(chunk), which loads a chunk's
// stored-symbol slices into the closure, and cost(state), which scores
// one candidate spine state against the bound chunk. The split lets the
// expansion loop bind once per spine step and then evaluate B·2^k
// candidates with no per-candidate slice chasing. bind is idempotent
// (it tracks boundChunk), so lookahead recursion can rebind freely.
type evaluator struct {
	bind func(chunk int)
	cost func(state uint32) float64
	// expand derives parent's 2^kb child states into childs and scores
	// them against the bound chunk into costs, in transposed order — all
	// children against one stored symbol, then the next — so the
	// independent hash chains overlap in the pipeline instead of running
	// back to back. budget is an exact rejection bound: once every
	// partial cost in the batch reaches it, the remaining symbols may be
	// skipped (costs stay ≥ budget, which is all the caller's threshold
	// test needs).
	expand   func(parent uint32, kb int, budget float64, childs []uint32, costs []float64)
	children hashfn.ChildrenFunc
	nBits    int
	k        int
	ns       int

	// costs holds one parent's child branch costs during expansion.
	costs []float64

	// boundChunk is the chunk bind last loaded; -1 after begin, since a
	// chunk's backing slices move as Add appends to them.
	boundChunk int

	// childBuf holds expanded child states (a stack of windows during
	// explore recursion).
	childBuf []uint32
	// filter tracks the running selection threshold for the current
	// spine step.
	filter scoreFilter
	// out collects this evaluator's surviving candidates for one spine
	// step of a parallel decode.
	out []candidate
	// memo caches per-(chunk, state) branch costs within one decode
	// attempt (non-nil only when D > 1): sibling candidates at step p
	// explore subtrees whose nodes the beam re-expands at step p+1, so
	// without the cache every D-deep subtree is hashed D times.
	memo map[uint64]float64
}

// begin prepares the evaluator for a fresh decode attempt.
func (e *evaluator) begin() {
	e.boundChunk = -1
	if e.memo != nil {
		clear(e.memo)
	}
}

// branch returns the branch cost of (chunk, state), consulting the memo
// when lookahead is enabled.
func (e *evaluator) branch(chunk int, state uint32) float64 {
	if e.memo == nil {
		e.bind(chunk)
		return e.cost(state)
	}
	key := uint64(chunk)<<32 | uint64(state)
	if c, ok := e.memo[key]; ok {
		return c
	}
	e.bind(chunk)
	c := e.cost(state)
	e.memo[key] = c
	return c
}

// explore returns the minimum additional path cost over all descendants
// depth levels below (state, chunk); this is the subtree score used to
// rank candidates when D > 1 (Fig 4-1 steps b–c).
func (e *evaluator) explore(state uint32, chunk, depth int) float64 {
	kb := chunkBits(e.nBits, e.k, chunk)
	fan := 1 << uint(kb)
	// explore recurses at most D-1 deep; keep a fresh window per level so
	// the recursion does not clobber the caller's child states.
	if len(e.childBuf)+fan > cap(e.childBuf) {
		grown := make([]uint32, len(e.childBuf), 2*(len(e.childBuf)+fan))
		copy(grown, e.childBuf)
		e.childBuf = grown
	}
	lo := len(e.childBuf)
	e.childBuf = e.childBuf[:lo+fan]
	window := e.childBuf[lo : lo+fan]
	e.children(state, kb, window)

	best := math.Inf(1)
	for _, cs := range window {
		c := e.branch(chunk, cs)
		if depth > 1 && chunk+1 < e.ns {
			c += e.explore(cs, chunk+1, depth-1)
		}
		if c < best {
			best = c
		}
	}
	e.childBuf = e.childBuf[:lo]
	return best
}

// expandChildren fills the evaluator's scratch window with the fan child
// states of state and returns it. explore windows stack above it.
func (e *evaluator) expandChildren(state uint32, kb, fan int) []uint32 {
	if cap(e.childBuf) < fan {
		e.childBuf = make([]uint32, fan)
	}
	e.childBuf = e.childBuf[:fan]
	e.children(state, kb, e.childBuf)
	return e.childBuf
}

type beamNode struct {
	state uint32
	back  int32
	cost  float64
}

type candidate struct {
	state  uint32
	parent int32 // index into current beam
	bits   uint16
	cost   float64 // accumulated true path cost
	score  float64 // cost + best lookahead cost to depth d
}

type backRec struct {
	parent int32
	bits   uint16
}

// scoreFilter tracks a running upper bound on the B-th lowest candidate
// score of one spine step, the threshold (tau) expansion prunes against.
// Once B scores arrive, it spreads a 256-bucket histogram over the
// observed range; every further accept is one bucket increment, and tau
// is refreshed every few accepts by walking the cumulative counts to the
// bucket whose upper edge covers B scores. That edge is always at or
// above the true B-th smallest, so rejection stays exact, while the
// refresh makes tau chase the true threshold closely — which matters
// because score distributions here are bottom-heavy: a loose threshold
// admits thousands of candidates that a near-final one rejects.
type scoreFilter struct {
	s     []float64 // every accepted score, for the exact final pivot
	tmp   []float64 // threshold drill-down scratch
	b     int
	tau   float64
	lo    float64 // bucket range start: a lower bound on all scores
	scale float64 // buckets per score unit
	since int     // accepts since the last tau refresh
	ready bool    // histogram initialized (B scores seen)
	hist  [256]int32
}

// reset prepares the filter for one spine step. lo must lower-bound
// every score the step can produce (the minimum parent cost serves: all
// branch costs are non-negative).
func (f *scoreFilter) reset(b int, lo float64) {
	f.s = f.s[:0]
	f.b = b
	f.tau = math.Inf(1)
	f.lo = lo
	f.ready = false
}

// accept records a score the caller has already checked against tau.
func (f *scoreFilter) accept(v float64) {
	f.s = append(f.s, v)
	if !f.ready {
		if len(f.s) == f.b {
			f.init()
		}
		return
	}
	idx := int((v - f.lo) * f.scale)
	if idx > 255 {
		idx = 255
	} else if idx < 0 {
		idx = 0
	}
	f.hist[idx]++
	f.since++
	if f.since >= 8 {
		f.refresh()
	}
}

// init seeds tau and the histogram from the first B scores.
func (f *scoreFilter) init() {
	mx := f.s[0]
	for _, x := range f.s[1:] {
		if x > mx {
			mx = x
		}
	}
	f.tau = mx
	span := mx - f.lo
	if span <= 0 {
		// Degenerate step (every score equals the bound): tau = mx
		// already rejects everything else; leave the histogram unused.
		f.scale = 0
	} else {
		f.scale = 255 / span
	}
	clear(f.hist[:])
	for _, x := range f.s {
		idx := int((x - f.lo) * f.scale)
		if idx > 255 {
			idx = 255
		} else if idx < 0 {
			idx = 0
		}
		f.hist[idx]++
	}
	f.ready = true
	f.since = 0
}

// refresh walks the histogram to the bucket whose upper edge covers the
// B lowest scores and tightens tau to that edge.
func (f *scoreFilter) refresh() {
	f.since = 0
	if f.scale == 0 {
		return
	}
	cum := int32(0)
	for i := range f.hist {
		cum += f.hist[i]
		if cum >= int32(f.b) {
			edge := f.lo + float64(i+1)/f.scale
			if edge < f.tau {
				f.tau = edge
			}
			return
		}
	}
}

// threshold returns the exact B-th smallest score accepted this step.
// Callers must only invoke it when the filter is full. When the
// histogram is live it narrows the search to the single bucket the B-th
// rank falls in — one pass over the accepted scores plus a quickselect
// over that bucket's few members.
func (f *scoreFilter) threshold() float64 {
	if !f.ready || f.scale == 0 {
		return quickselectFloat(f.s, f.b)
	}
	cum := int32(0)
	u := 255
	for i := range f.hist {
		cum += f.hist[i]
		if cum >= int32(f.b) {
			u = i
			break
		}
	}
	below := 0
	bucket := f.tmp[:0]
	for _, x := range f.s {
		idx := int((x - f.lo) * f.scale)
		if idx > 255 {
			idx = 255
		} else if idx < 0 {
			idx = 0
		}
		if idx < u {
			below++
		} else if idx == u {
			bucket = append(bucket, x)
		}
	}
	f.tmp = bucket
	return quickselectFloat(bucket, f.b-below)
}

// quickselectFloat partially sorts s and returns its k-th smallest value
// (k ≥ 1), leaving k elements that include every value strictly below it
// in s[:k]. The three-way (fat-pivot) partition matters here: branch
// metrics over small discrete constellations produce heavily duplicated
// scores, which collapse an equal-to-pivot run in one pass where a
// two-way partition would keep shuffling it.
func quickselectFloat(s []float64, k int) float64 {
	lo, hi := 0, len(s)-1
	for lo < hi {
		// Median-of-three pivot to avoid quadratic behaviour on sorted
		// input.
		mid := lo + (hi-lo)/2
		if s[mid] < s[lo] {
			s[mid], s[lo] = s[lo], s[mid]
		}
		if s[hi] < s[lo] {
			s[hi], s[lo] = s[lo], s[hi]
		}
		if s[hi] < s[mid] {
			s[hi], s[mid] = s[mid], s[hi]
		}
		pivot := s[mid]
		// Dutch-flag partition: s[lo..lt) < pivot, s[lt..i) == pivot,
		// s(gt..hi] > pivot.
		lt, i, gt := lo, lo, hi
		for i <= gt {
			v := s[i]
			switch {
			case v < pivot:
				s[lt], s[i] = s[i], s[lt]
				lt++
				i++
			case v > pivot:
				s[i], s[gt] = s[gt], s[i]
				gt--
			default:
				i++
			}
		}
		switch {
		case k-1 < lt:
			hi = lt - 1
		case k-1 <= gt:
			return pivot
		default:
			lo = gt + 1
		}
	}
	return s[k-1]
}

// beamSearch is the bubble decoder's search core, shared by the AWGN and
// BSC decoders. All working storage lives on the struct and is reused
// across runs, so a warmed-up decoder searches without allocating.
type beamSearch struct {
	nBits    int
	p        Params
	children hashfn.ChildrenFunc

	beam     []beamNode
	nextBeam []beamNode
	cands    []candidate
	scores   []float64
	arena    []backRec
	job      stepJob
}

func newBeamSearch(nBits int, p Params) beamSearch {
	return beamSearch{nBits: nBits, p: p, children: hashfn.CompileChildren(p.Hash)}
}

// minBeamCost returns the lowest path cost in the beam — a lower bound
// on every next-step score, used to anchor the score filter's histogram.
func minBeamCost(beam []beamNode) float64 {
	mn := beam[0].cost
	for _, n := range beam[1:] {
		if n.cost < mn {
			mn = n.cost
		}
	}
	return mn
}

// frontLoadBeam moves the q lowest-cost parents to beam[:q] (order among
// them arbitrary). Expanding the strongest parents first lets the score
// filter find a near-final threshold within the first few parents, so
// the rest of the step mostly rejects — and parents the threshold
// dominates outright are skipped without hashing.
func (bs *beamSearch) frontLoadBeam(beam []beamNode, q int) {
	if q >= len(beam) {
		return
	}
	if cap(bs.scores) < len(beam) {
		bs.scores = make([]float64, len(beam))
	}
	s := bs.scores[:len(beam)]
	for i := range beam {
		s[i] = beam[i].cost
	}
	pivot := quickselectFloat(s, q)
	lt := 0
	for i := range beam {
		if beam[i].cost < pivot {
			beam[lt], beam[i] = beam[i], beam[lt]
			lt++
		}
	}
	for i := lt; i < len(beam) && lt < q; i++ {
		if beam[i].cost == pivot {
			beam[lt], beam[i] = beam[i], beam[lt]
			lt++
		}
	}
}

// lookahead returns the effective subtree depth at step p: the configured
// D, shrunk at the tail of the message.
func (bs *beamSearch) lookahead(p, ns int) int {
	dd := bs.p.D
	if p+dd > ns {
		dd = ns - p
	}
	return dd
}

// expandPruned expands parents lo, lo+stride, lo+2·stride, … of beam at
// spine step p into dst and returns it. The evaluator's score heap —
// reset by the caller once per step — prunes as it goes: a candidate
// whose score cannot make the B best seen so far is dropped before it is
// materialized, and when D > 1 a candidate whose base cost already
// exceeds the threshold skips subtree exploration entirely (lookahead
// only adds cost).
//
// A parent whose own path cost already reaches the threshold is skipped
// outright — branch costs are non-negative, so none of its children can
// score strictly below a threshold the parent itself meets. Skipped
// parents cost no hashing at all.
func (bs *beamSearch) expandPruned(e *evaluator, beam []beamNode, lo, stride, p, kb, fan, dd int, dst []candidate) []candidate {
	f := &e.filter
	fast := e.memo == nil // D == 1: no lookahead, no memo indirection
	e.bind(p)
	if cap(e.costs) < fan {
		e.costs = make([]float64, fan)
	}
	costs := e.costs[:fan]
	if cap(e.childBuf) < fan {
		e.childBuf = make([]uint32, fan)
	}
	if fast {
		childs := e.childBuf[:fan]
		for bi := lo; bi < len(beam); bi += stride {
			node := &beam[bi]
			if node.cost >= f.tau {
				continue
			}
			e.expand(node.state, kb, f.tau-node.cost, childs, costs)
			for m, bc := range costs {
				score := node.cost + bc
				if score >= f.tau {
					continue
				}
				f.accept(score)
				dst = append(dst, candidate{
					state: childs[m], parent: int32(bi), bits: uint16(m),
					cost: score, score: score,
				})
			}
		}
		return dst
	}
	for bi := lo; bi < len(beam); bi += stride {
		node := &beam[bi]
		if node.cost >= f.tau {
			continue
		}
		childs := e.expandChildren(node.state, kb, fan)
		for m, cs := range childs {
			base := node.cost + e.branch(p, cs)
			score := base
			if score >= f.tau {
				continue
			}
			if dd > 1 {
				score += e.explore(cs, p+1, dd-1)
				if score >= f.tau {
					continue
				}
			}
			f.accept(score)
			dst = append(dst, candidate{
				state: cs, parent: int32(bi), bits: uint16(m),
				cost: base, score: score,
			})
		}
	}
	return dst
}

// expandFallback materializes the fan children of the beam's cheapest
// parent with no pruning, truncated to keep. A spine step can come back
// empty only when branch costs go non-finite — corrupt stored samples
// overflow squared distances, +Inf scores meet even the infinite initial
// threshold, and NaN scores can poison the trim pivot so the trim keeps
// nothing. The decode must still consume the chunk, so the search
// advances the strongest parent's subtree and reports its honestly
// non-finite cost instead of dropping to an empty beam. Any keep-subset
// is a valid selection here: no candidate scores below another, the
// latitude §4.3 already grants.
func (bs *beamSearch) expandFallback(e *evaluator, beam []beamNode, p, kb, fan, keep int, dst []candidate) []candidate {
	bi := 0
	for i := 1; i < len(beam); i++ {
		if beam[i].cost < beam[bi].cost {
			bi = i
		}
	}
	node := beam[bi]
	childs := e.expandChildren(node.state, kb, fan)
	for m, cs := range childs {
		base := node.cost + e.branch(p, cs)
		dst = append(dst, candidate{
			state: cs, parent: int32(bi), bits: uint16(m),
			cost: base, score: base,
		})
	}
	if len(dst) > keep {
		dst = dst[:keep]
	}
	return dst
}

// trimToBeam moves the keep candidates with the lowest scores to
// cands[:keep] and returns that prefix. pivot must be the exact keep-th
// smallest score (the final heap threshold); ties at the pivot are kept
// in encounter order, dropping the excess (§4.3 permits any
// tie-breaking).
func trimToBeam(cands []candidate, keep int, pivot float64) []candidate {
	if keep >= len(cands) {
		return cands
	}
	lt := 0
	for i := range cands {
		if cands[i].score < pivot {
			cands[lt], cands[i] = cands[i], cands[lt]
			lt++
		}
	}
	for i := lt; i < len(cands) && lt < keep; i++ {
		if cands[i].score == pivot {
			cands[lt], cands[i] = cands[i], cands[lt]
			lt++
		}
	}
	return cands[:lt]
}

// selectBest rearranges cands so the k lowest-score candidates occupy
// cands[:k] (ties broken arbitrarily, as §4.3 permits). Used to merge
// the per-worker survivor lists of a parallel step; the serial path
// prunes during expansion instead.
func (bs *beamSearch) selectBest(cands []candidate, k int) []candidate {
	if k >= len(cands) {
		return cands
	}
	if cap(bs.scores) < len(cands) {
		bs.scores = make([]float64, len(cands))
	}
	s := bs.scores[:len(cands)]
	for i := range cands {
		s[i] = cands[i].score
	}
	return trimToBeam(cands, k, quickselectFloat(s, k))
}

// run executes the search and returns the best message with its path
// cost. The message is written into dst (grown if needed) and returned;
// the evaluator supplies branch costs.
func (bs *beamSearch) run(e *evaluator, dst []byte) ([]byte, float64) {
	k := bs.p.K
	ns := numSpine(bs.nBits, k)
	e.begin()

	beam := append(bs.beam[:0], beamNode{state: bs.p.Seed, back: -1, cost: 0})
	next := bs.nextBeam[:0]
	arena := bs.arena[:0]

	for p := 0; p < ns; p++ {
		dd := bs.lookahead(p, ns)
		kb := chunkBits(bs.nBits, k, p)
		fan := 1 << uint(kb)
		bs.frontLoadBeam(beam, (bs.p.B+fan-1)/fan)
		e.filter.reset(bs.p.B, minBeamCost(beam))
		cands := bs.expandPruned(e, beam, 0, 1, p, kb, fan, dd, bs.cands[:0])
		keep := bs.p.B
		if len(cands) > keep {
			cands = trimToBeam(cands, keep, e.filter.threshold())
		}
		if len(cands) == 0 {
			cands = bs.expandFallback(e, beam, p, kb, fan, keep, cands[:0])
		}
		if keep > len(cands) {
			keep = len(cands)
		}
		next = next[:0]
		for i := 0; i < keep; i++ {
			arena = append(arena, backRec{
				parent: beam[cands[i].parent].back, bits: cands[i].bits,
			})
			next = append(next, beamNode{
				state: cands[i].state,
				back:  int32(len(arena) - 1),
				cost:  cands[i].cost,
			})
		}
		bs.cands = cands
		beam, next = next, beam
	}

	// Store the (possibly grown) buffers back for reuse.
	bs.beam, bs.nextBeam, bs.arena = beam, next, arena
	msg, cost := bs.backtrack(beam, arena, dst)
	return msg, cost
}

// backtrack walks the arena from the cheapest final beam entry and
// reconstructs the message into dst (§4.4: with tail symbols the correct
// candidate has the lowest cost).
func (bs *beamSearch) backtrack(beam []beamNode, arena []backRec, dst []byte) ([]byte, float64) {
	best := 0
	for i := 1; i < len(beam); i++ {
		if beam[i].cost < beam[best].cost {
			best = i
		}
	}
	n := (bs.nBits + 7) / 8
	if cap(dst) < n {
		dst = make([]byte, n)
	}
	msg := dst[:n]
	k := bs.p.K
	ns := numSpine(bs.nBits, k)
	idx := beam[best].back
	for j := ns - 1; j >= 0; j-- {
		setChunk(msg, bs.nBits, k, j, uint32(arena[idx].bits))
		idx = arena[idx].parent
	}
	return msg, beam[best].cost
}
