package core

import (
	"runtime"
	"sync"
)

// DecodeParallel runs the bubble decoder with the candidate-expansion
// stage fanned out across workers goroutines (workers ≤ 0 means
// GOMAXPROCS). This mirrors the §7.2/Appendix B observation that the
// expensive likelihood computations parallelize freely while pruning is
// a (cheap) serial stage: each step's B·2^k branch evaluations are
// sharded over workers, then a single quickselect keeps the best B.
//
// The result is bit-identical to Decode up to cost ties (§4.3 allows
// arbitrary tie-breaking, and tie order can differ between serial and
// sharded expansion).
//
// Parallelism pays off when branch costs are heavy — many stored passes
// (low SNR) or large B·2^k; at light symbol loads the per-step goroutine
// fan-out costs more than it saves (see BenchmarkDecodeSerial vs
// BenchmarkDecodeParallel4), which is why the simulation engine uses the
// serial decoder and parallelizes across messages instead.
func (d *Decoder) DecodeParallel(workers int) ([]byte, float64) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	bs := beamSearch{nBits: d.nBits, p: d.p, cost: d.branchCost}
	if workers == 1 {
		return bs.run()
	}
	return bs.runParallel(workers)
}

// runParallel is beamSearch.run with the expansion loop sharded by beam
// index.
func (bs *beamSearch) runParallel(workers int) ([]byte, float64) {
	k := bs.p.K
	ns := numSpine(bs.nBits, k)
	beam := []beamNode{{state: bs.p.Seed, back: -1, cost: 0}}
	arena := make([]backRec, 0, ns*bs.p.B)

	var wg sync.WaitGroup
	for p := 0; p < ns; p++ {
		dd := bs.p.D
		if p+dd > ns {
			dd = ns - p
		}
		kb := chunkBits(bs.nBits, k, p)
		fan := 1 << uint(kb)
		cands := make([]candidate, len(beam)*fan)

		shard := (len(beam) + workers - 1) / workers
		if shard < 1 {
			shard = 1
		}
		for w := 0; w < workers && w*shard < len(beam); w++ {
			lo := w * shard
			hi := lo + shard
			if hi > len(beam) {
				hi = len(beam)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for bi := lo; bi < hi; bi++ {
					node := &beam[bi]
					for m := uint32(0); m < uint32(fan); m++ {
						cs := bs.p.Hash.Sum(node.state, m, kb)
						base := node.cost + bs.cost(p, cs)
						score := base
						if dd > 1 {
							score += bs.explore(cs, p+1, dd-1)
						}
						cands[bi*fan+int(m)] = candidate{
							state: cs, parent: int32(bi), bits: uint16(m),
							cost: base, score: score,
						}
					}
				}
			}(lo, hi)
		}
		wg.Wait()

		keep := bs.p.B
		if keep > len(cands) {
			keep = len(cands)
		}
		selectBest(cands, keep)
		newBeam := make([]beamNode, keep)
		for i := 0; i < keep; i++ {
			arena = append(arena, backRec{
				parent: beam[cands[i].parent].back, bits: cands[i].bits,
			})
			newBeam[i] = beamNode{
				state: cands[i].state,
				back:  int32(len(arena) - 1),
				cost:  cands[i].cost,
			}
		}
		beam = newBeam
	}

	best := 0
	for i := 1; i < len(beam); i++ {
		if beam[i].cost < beam[best].cost {
			best = i
		}
	}
	msg := make([]byte, (bs.nBits+7)/8)
	idx := beam[best].back
	for j := ns - 1; j >= 0; j-- {
		setChunk(msg, bs.nBits, k, j, uint32(arena[idx].bits))
		idx = arena[idx].parent
	}
	return msg, beam[best].cost
}
