package core

import (
	"runtime"
	"sync"
)

// DecodeParallel runs the bubble decoder with the candidate-expansion
// stage fanned out across workers goroutines (workers ≤ 0 means
// GOMAXPROCS). This mirrors the §7.2/Appendix B observation that the
// expensive likelihood computations parallelize freely while pruning is
// a (cheap) serial stage: each step's B·2^k branch evaluations are
// sharded over workers, then a single quickselect keeps the best B.
//
// The workers are persistent: the first call starts a pool that parks
// between spine steps and between Decode calls, each worker holding its
// own branch-cost scratch, so repeated decodes spawn no goroutines and
// make no steady-state allocations. Call Close to release the pool
// early; an unreachable decoder's pool is reclaimed automatically.
//
// The result is bit-identical to Decode up to cost ties (§4.3 allows
// arbitrary tie-breaking, and tie order can differ between serial and
// sharded expansion). Like Decode, the returned slice is owned by the
// decoder and overwritten by the next DecodeParallel call.
func (d *Decoder) DecodeParallel(workers int) ([]byte, float64) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return d.Decode()
	}
	if d.par.ensure(workers, d.newEvaluator) {
		// The pool holds no reference back to the decoder, so this fires
		// once the decoder is unreachable and lets the workers exit.
		runtime.AddCleanup(d, func(p *workerPool) { p.stop() }, d.par.pool)
	}
	msg, cost := d.bs.runParallel(d.par.pool, d.par.evals, d.parMsg)
	d.parMsg = msg
	return msg, cost
}

// parPool is the persistent-pool state a decoder keeps between
// DecodeParallel calls: the worker goroutines plus one evaluator per
// worker. Both decoder types embed one.
type parPool struct {
	pool  *workerPool
	evals []*evaluator
}

// ensure makes the pool match the requested worker count, building or
// rebuilding it (with fresh per-worker evaluators) as needed. It
// reports whether a new pool was created, in which case the caller
// registers the cleanup that ties the pool's lifetime to the decoder's.
func (ps *parPool) ensure(workers int, newEval func() *evaluator) bool {
	if ps.pool != nil && ps.pool.n == workers {
		return false
	}
	ps.close()
	ps.pool = newWorkerPool(workers)
	ps.evals = make([]*evaluator, workers)
	for i := range ps.evals {
		ps.evals[i] = newEval()
	}
	return true
}

// close stops the workers and drops the pool; safe to call repeatedly.
func (ps *parPool) close() {
	if ps.pool != nil {
		ps.pool.stop()
		ps.pool = nil
		ps.evals = nil
	}
}

// stepJob describes one spine step's candidate expansion. The coordinator
// fills it in and hands the same pointer to every worker; worker w derives
// its beam shard from its index.
type stepJob struct {
	bs      *beamSearch
	beam    []beamNode
	evals   []*evaluator
	chunk   int
	kb      int
	fan     int
	dd      int
	keep    int
	workers int
}

// run expands worker w's strided shard of the beam (parents w, w+W,
// w+2W, …) into the worker's own survivor buffer, pruning against the
// worker-local score heap. The global B best are a subset of the union
// of per-worker B bests, so local pruning is safe and the coordinator's
// merge selects exactly. Striding keeps the load balanced: the beam is
// cost-sorted and expansion stops at the first dominated parent, so a
// contiguous split would hand all the live work to the first worker.
func (j *stepJob) run(w int) {
	e := j.evals[w]
	e.out = e.out[:0]
	if w >= len(j.beam) {
		return
	}
	e.filter.reset(j.keep, minBeamCost(j.beam))
	e.out = j.bs.expandPruned(e, j.beam, w, j.workers, j.chunk, j.kb, j.fan, j.dd, e.out)
}

// workerPool is a set of persistent goroutines that expand beam shards.
// It lives across spine steps and across Decode calls, and holds no
// reference to any decoder — all per-step state arrives via the job — so
// an abandoned decoder can be collected and its pool reclaimed.
type workerPool struct {
	n        int
	jobs     []chan *stepJob
	done     chan struct{}
	stopOnce sync.Once
}

func newWorkerPool(n int) *workerPool {
	p := &workerPool{
		n:    n,
		jobs: make([]chan *stepJob, n),
		done: make(chan struct{}, n),
	}
	for w := range p.jobs {
		p.jobs[w] = make(chan *stepJob, 1)
		go func(w int) {
			for job := range p.jobs[w] {
				job.run(w)
				p.done <- struct{}{}
			}
		}(w)
	}
	return p
}

// dispatch hands job to every worker and waits for all of them.
func (p *workerPool) dispatch(job *stepJob) {
	for _, c := range p.jobs {
		c <- job
	}
	for i := 0; i < p.n; i++ {
		<-p.done
	}
}

// stop shuts the workers down. Idempotent, so both Close and the runtime
// cleanup may call it.
func (p *workerPool) stop() {
	p.stopOnce.Do(func() {
		for _, c := range p.jobs {
			close(c)
		}
	})
}

// runParallel is beamSearch.run with the expansion loop sharded by beam
// index across the persistent pool. Each worker owns its evaluator, so no
// branch-cost scratch is shared.
func (bs *beamSearch) runParallel(pool *workerPool, evals []*evaluator, dst []byte) ([]byte, float64) {
	k := bs.p.K
	ns := numSpine(bs.nBits, k)
	for _, e := range evals {
		e.begin()
	}

	beam := append(bs.beam[:0], beamNode{state: bs.p.Seed, back: -1, cost: 0})
	next := bs.nextBeam[:0]
	arena := bs.arena[:0]

	for p := 0; p < ns; p++ {
		dd := bs.lookahead(p, ns)
		kb := chunkBits(bs.nBits, k, p)
		fan := 1 << uint(kb)

		// Striding hands each worker some of the front-loaded strongest
		// parents, so every worker's filter tightens early.
		bs.frontLoadBeam(beam, pool.n*((bs.p.B+fan-1)/fan))
		bs.job = stepJob{
			bs: bs, beam: beam, evals: evals,
			chunk: p, kb: kb, fan: fan, dd: dd,
			keep: bs.p.B, workers: pool.n,
		}
		pool.dispatch(&bs.job)

		cands := bs.cands[:0]
		for _, e := range evals {
			cands = append(cands, e.out...)
		}
		keep := bs.p.B
		if len(cands) > keep {
			cands = bs.selectBest(cands, keep)
		}
		if len(cands) == 0 {
			cands = bs.expandFallback(evals[0], beam, p, kb, fan, keep, cands[:0])
		}
		if keep > len(cands) {
			keep = len(cands)
		}
		next = next[:0]
		for i := 0; i < keep; i++ {
			arena = append(arena, backRec{
				parent: beam[cands[i].parent].back, bits: cands[i].bits,
			})
			next = append(next, beamNode{
				state: cands[i].state,
				back:  int32(len(arena) - 1),
				cost:  cands[i].cost,
			})
		}
		bs.cands = cands
		beam, next = next, beam
	}

	bs.beam, bs.nextBeam, bs.arena = beam, next, arena
	return bs.backtrack(beam, arena, dst)
}
