// Package link implements the §6 rateless link protocol: a sender
// segments a datagram into CRC-protected code blocks, spinal-encodes each
// block independently, and streams frames of symbols; the receiver
// decodes blocks as symbols accumulate, verifies CRCs, and returns ACKs
// with one bit per code block. Sequence numbers let the receiver stay
// synchronized across erased frames.
//
// The Sender and Receiver are transport-agnostic state machines: tests
// drive them in-process through simulated channels, the
// examples/filetransfer program drives them over UDP, and the Engine
// multiplexes many of them over a shared medium with pooled codecs.
package link

import (
	"errors"
	"fmt"
	"math"

	icode "spinal/internal/code"
	"spinal/internal/core"
	"spinal/internal/framing"
)

// Typed errors for degenerate link inputs. Frame-shaped garbage must
// never panic or livelock a state machine; it is reported so transports
// can count or log it, and the returned ACK (when any) stays usable.
var (
	// ErrNilFrame reports a nil frame handed to a receiver.
	ErrNilFrame = errors.New("link: nil frame")
	// ErrBadLayout reports a frame whose code-block layout is empty,
	// non-positive, or absurdly large.
	ErrBadLayout = errors.New("link: invalid code-block layout")
	// ErrMalformedBatch reports a batch whose symbol and ID counts
	// disagree; the batch is skipped.
	ErrMalformedBatch = errors.New("link: batch symbol/ID length mismatch")
	// ErrBadSymbolID reports a batch carrying a symbol ID outside its
	// block's spine — feeding it to a decoder would index out of range, so
	// the batch is skipped. (Found by FuzzHandleFrame.)
	ErrBadSymbolID = errors.New("link: symbol ID outside the block's spine")
	// ErrBadSymbol reports a batch carrying a non-finite or absurdly large
	// symbol value. Signal power is normalized to 1 throughout the
	// repository, so a sample 120 dB above it is frame-shaped garbage, and
	// worse: NaN branch costs poison every comparison in the beam search,
	// and values past ~1e154 overflow the squared-distance metric to +Inf
	// — either way the beam emptied and the decoder crashed (found by
	// FuzzHandleFrame). Such batches are skipped.
	ErrBadSymbol = errors.New("link: non-finite or out-of-range symbol value")
	// ErrStaleFrame reports a frame all of whose batches reference
	// already-decoded (or out-of-range) blocks. The ACK returned with it
	// is valid — resending it is exactly how the sender catches up.
	ErrStaleFrame = errors.New("link: frame carries no batch for an outstanding block")
	// ErrBlockFull reports a batch whose symbols would grow a block's
	// accumulator past its bound. Reordered, duplicated or hostile
	// traffic must not grow receiver memory without limit, so symbols
	// past the cap are dropped and counted; a block this starved resolves
	// through the flow's round budget, not an allocation storm.
	ErrBlockFull = errors.New("link: block symbol accumulator full")
	// ErrIncomplete reports a datagram read before every block decoded.
	ErrIncomplete = errors.New("link: datagram incomplete")
)

// maxLayoutBits caps a single code block's advertised size; a frame
// claiming more is treated as corrupt rather than sizing a decoder.
const maxLayoutBits = 1 << 20

// maxSymbolMagnitude bounds accepted per-dimension sample values: unit
// signal power means anything 120 dB above it is corrupt, and the bound
// keeps squared-distance branch costs finite for any accumulator size.
const maxSymbolMagnitude = 1e6

// maxAccumSymbols bounds one block's symbol accumulator. The deepest
// legitimate accumulation — a maximum-size block trickling subpasses for
// an entire default round budget — stays well under it, while replayed
// and reordered traffic (or a hostile peer streaming symbols forever)
// hits ErrBlockFull instead of growing receiver memory without bound.
const maxAccumSymbols = 1 << 16

// Batch carries one code block's symbols within a frame. The SymbolIDs
// are derivable from the frame sequence number and the shared schedule
// (§6); they are carried explicitly here for simulation clarity.
type Batch struct {
	Block   int
	IDs     []core.SymbolID
	Symbols []complex128
}

// Frame is one link-layer transmission: a sequence number plus one batch
// per not-yet-acknowledged code block.
type Frame struct {
	Seq       uint32
	BlockBits []int // layout of the datagram's code blocks, in bits
	Batches   []Batch
}

// SymbolCount reports the number of channel symbols in the frame.
func (f *Frame) SymbolCount() int {
	n := 0
	for _, b := range f.Batches {
		n += len(b.Symbols)
	}
	return n
}

// Sender streams a datagram as rateless frames. It keeps only the block
// bits and per-block schedules as state; encoders are built lazily for
// the standalone NextFrame path and skipped entirely when an Engine
// generates symbols on its codec pool. The code is any icode.Code — the
// protocol machinery is code-agnostic.
type Sender struct {
	code     icode.Code
	blocks   []framing.Block
	bits     [][]byte // serialized block bits (payload + CRC)
	encs     []icode.Encoder
	scheds   []icode.Schedule
	acked    []bool
	seq      uint32
	symbols  int
	perBlock []int // per-block symbol counts (rate-adaptation input)
}

// NewSender segments the datagram into spinal code blocks of at most
// maxBlockBits (0 ⇒ the §6 default of 1024) and prepares the schedules.
// A zero-length datagram is legal: it becomes a single CRC-only block.
func NewSender(datagram []byte, p core.Params, maxBlockBits int) *Sender {
	return NewCodeSender(icode.Spinal(p), datagram, maxBlockBits)
}

// NewCodeSender is NewSender over an arbitrary channel code.
func NewCodeSender(c icode.Code, datagram []byte, maxBlockBits int) *Sender {
	blocks := framing.Segment(datagram, maxBlockBits)
	s := &Sender{
		code:     c,
		blocks:   blocks,
		bits:     make([][]byte, len(blocks)),
		encs:     make([]icode.Encoder, len(blocks)),
		scheds:   make([]icode.Schedule, len(blocks)),
		acked:    make([]bool, len(blocks)),
		perBlock: make([]int, len(blocks)),
	}
	for i, b := range blocks {
		s.bits[i] = b.Bits()
		s.scheds[i] = c.NewSchedule(b.NumBits())
	}
	return s
}

// Blocks reports the number of code blocks.
func (s *Sender) Blocks() int { return len(s.blocks) }

// Done reports whether every block has been acknowledged.
func (s *Sender) Done() bool {
	for _, a := range s.acked {
		if !a {
			return false
		}
	}
	return true
}

// SymbolsSent reports the cumulative number of symbols transmitted.
func (s *Sender) SymbolsSent() int { return s.symbols }

// blockBits returns block i's serialized bits and bit count, the inputs a
// pooled encoder needs to regenerate its symbols.
func (s *Sender) blockBits(i int) ([]byte, int) {
	return s.bits[i], s.blocks[i].NumBits()
}

// batchIDs advances block i's schedule by subpasses and returns a batch
// of the fresh symbol IDs, with no symbols attached. The caller (the
// Engine) fills the symbols on a codec-pool worker and accounts them via
// countSymbols.
func (s *Sender) batchIDs(i, subpasses int) Batch {
	var ids []core.SymbolID
	for sp := 0; sp < subpasses; sp++ {
		ids = append(ids, s.scheds[i].NextSubpass()...)
	}
	return Batch{Block: i, IDs: ids}
}

// countSymbols records n transmitted symbols.
func (s *Sender) countSymbols(n int) { s.symbols += n }

// countSymbolsFor records n transmitted symbols against block i.
func (s *Sender) countSymbolsFor(i, n int) { s.perBlock[i] += n }

// symbolsFor reports the symbols transmitted so far for block i.
func (s *Sender) symbolsFor(i int) int { return s.perBlock[i] }

// ownEncoder returns the sender's dedicated encoder for block i, built on
// first use (standalone path only).
func (s *Sender) ownEncoder(i int) icode.Encoder {
	if s.encs[i] == nil {
		bits, nb := s.blockBits(i)
		s.encs[i] = s.code.NewEncoder(bits, nb)
	}
	return s.encs[i]
}

// NextFrame emits the next frame: one subpass of fresh symbols for every
// unacknowledged block. It returns nil when all blocks are acknowledged.
func (s *Sender) NextFrame() *Frame {
	if s.Done() {
		return nil
	}
	f := &Frame{Seq: s.seq, BlockBits: make([]int, len(s.blocks))}
	for i, b := range s.blocks {
		f.BlockBits[i] = b.NumBits()
	}
	s.seq++
	for i := range s.blocks {
		if s.acked[i] {
			continue
		}
		b := s.batchIDs(i, 1)
		b.Symbols = s.ownEncoder(i).Symbols(b.IDs)
		f.Batches = append(f.Batches, b)
		s.countSymbols(len(b.IDs))
		s.countSymbolsFor(i, len(b.IDs))
	}
	return f
}

// HandleAck marks acknowledged blocks. Stale ACKs (older seq) are still
// applied: a block once decoded stays decoded.
func (s *Sender) HandleAck(a framing.Ack) {
	for i, ok := range a.Decoded {
		if i < len(s.acked) && ok {
			s.acked[i] = true
		}
	}
}

// rxBlock is a receiver's per-block state: the symbols accumulated so far
// (replayed into a pooled decoder at each attempt) and, once the CRC
// verifies, the decoded payload. seen deduplicates symbol observations
// by ID, so replayed frames (ARQ duplicates, adversarial replay) are
// no-ops; dups and overflow count what dedup and the accumulator bound
// dropped.
type rxBlock struct {
	nBits    int
	ids      []core.SymbolID
	syms     []complex128
	seen     map[core.SymbolID]struct{}
	dirty    bool // new symbols since the last decode attempt
	got      bool
	payload  []byte
	dups     int // duplicate symbol observations dropped
	overflow int // symbols dropped at the accumulator bound
}

// Receiver reassembles a datagram from rateless frames. It owns no
// decoders bound to blocks: accumulated symbols live in per-block state,
// and each decode attempt replays them into a reset decoder — its own
// per-block-size cache standalone, or a codec-pool worker's under the
// Engine. A datagram of a hundred blocks therefore needs a hundred symbol
// accumulators but only one decoder per distinct block size.
type Receiver struct {
	code    icode.Code
	blocks  []rxBlock
	decs    map[int]icode.Decoder // standalone decoders, keyed by nBits
	lastSeq uint32
}

// NewReceiver creates a receiver with the same spinal code parameters as
// the sender.
func NewReceiver(p core.Params) *Receiver {
	return NewCodeReceiver(icode.Spinal(p))
}

// NewCodeReceiver is NewReceiver over an arbitrary channel code; it must
// match the sender's.
func NewCodeReceiver(c icode.Code) *Receiver {
	return &Receiver{code: c}
}

// init adopts the frame-advertised block layout.
func (r *Receiver) init(layout []int) error {
	if len(layout) == 0 {
		return ErrBadLayout
	}
	for _, nb := range layout {
		if nb <= 0 || nb > maxLayoutBits {
			return fmt.Errorf("%w: block of %d bits", ErrBadLayout, nb)
		}
	}
	r.blocks = make([]rxBlock, len(layout))
	for i, nb := range layout {
		r.blocks[i].nBits = nb
	}
	return nil
}

// accumulate stores a batch's symbols into its block accumulator. It
// reports whether the batch addressed an outstanding block (even with
// zero symbols — short blocks under wide puncturing have empty
// subpasses); a length mismatch between IDs and symbols yields
// ErrMalformedBatch.
func (r *Receiver) accumulate(b *Batch) (bool, error) {
	if b.Block < 0 || b.Block >= len(r.blocks) {
		return false, nil
	}
	blk := &r.blocks[b.Block]
	if blk.got {
		return false, nil
	}
	if len(b.IDs) != len(b.Symbols) {
		return true, ErrMalformedBatch
	}
	// Decoder accumulators are indexed by Chunk; an ID a corrupt frame
	// attributes to a nonexistent chunk must be rejected here, not panic
	// in the decoder during replay.
	ns := r.code.Chunks(blk.nBits)
	for _, id := range b.IDs {
		if id.Chunk < 0 || id.Chunk >= ns {
			return true, ErrBadSymbolID
		}
	}
	for _, s := range b.Symbols {
		re, im := real(s), imag(s)
		if math.IsNaN(re) || math.IsNaN(im) ||
			re < -maxSymbolMagnitude || re > maxSymbolMagnitude ||
			im < -maxSymbolMagnitude || im > maxSymbolMagnitude {
			return true, ErrBadSymbol
		}
	}
	if len(b.IDs) == 0 {
		return true, nil
	}
	if blk.seen == nil {
		blk.seen = make(map[core.SymbolID]struct{}, len(b.IDs))
	}
	for j, id := range b.IDs {
		// A symbol ID already observed is a replay (retransmitted passes
		// carry fresh IDs, so legitimate traffic never repeats one):
		// delivering any frame k times must be a no-op beyond the
		// counter.
		if _, dup := blk.seen[id]; dup {
			blk.dups++
			continue
		}
		// len(seen) bounds lifetime distinct observations too: under
		// discard-and-retry the ids slice resets between attempts, but
		// the dedup set must not become the unbounded growth path.
		if len(blk.ids) >= maxAccumSymbols || len(blk.seen) >= maxAccumSymbols {
			blk.overflow += len(b.IDs) - j
			return true, ErrBlockFull
		}
		blk.seen[id] = struct{}{}
		blk.ids = append(blk.ids, id)
		blk.syms = append(blk.syms, b.Symbols[j])
		blk.dirty = true
	}
	return true, nil
}

// attempt replays block i's accumulated symbols into dec (which must be
// freshly reset) and runs one decode, reporting whether the block newly
// verified. On success the accumulators are released.
func (r *Receiver) attempt(i int, dec icode.Decoder) bool {
	blk := &r.blocks[i]
	blk.dirty = false
	dec.Add(blk.ids, blk.syms)
	decoded, _ := dec.Decode()
	payload, ok := framing.Verify(decoded)
	if !ok {
		return false
	}
	blk.got = true
	// payload aliases the decoder's reusable result buffer; copy before
	// retaining it for reassembly.
	blk.payload = append([]byte(nil), payload...)
	blk.ids, blk.syms, blk.seen = nil, nil, nil
	return true
}

// dropStale implements discard-and-retry (type-I ARQ): forget block i's
// accumulated symbols once a decode attempt over them has failed, so the
// next attempt sees only the fresh retry. The chase-combining default
// never calls this — observations accumulate across retransmitted passes.
// Symbols not yet attempted (dirty) are kept: they are part of the
// current retry, not the failed one.
func (r *Receiver) dropStale(i int) {
	blk := &r.blocks[i]
	if blk.got || blk.dirty || len(blk.ids) == 0 {
		return
	}
	blk.ids = blk.ids[:0]
	blk.syms = blk.syms[:0]
}

// ownDecoder returns the receiver's reset decoder for nBits-bit blocks,
// built on first use (standalone path only).
func (r *Receiver) ownDecoder(nBits int) icode.Decoder {
	if r.decs == nil {
		r.decs = make(map[int]icode.Decoder)
	}
	d, ok := r.decs[nBits]
	if !ok {
		d = r.code.NewDecoder(nBits)
		r.decs[nBits] = d
		return d
	}
	d.Reset()
	return d
}

// ack snapshots the per-block decode state.
func (r *Receiver) ack(seq uint32) framing.Ack {
	decoded := make([]bool, len(r.blocks))
	for i := range r.blocks {
		decoded[i] = r.blocks[i].got
	}
	return framing.Ack{Seq: seq, Decoded: decoded}
}

// HandleFrame ingests a (possibly noisy) frame and returns the ACK to
// send back. Frames may arrive with gaps in Seq; the per-batch SymbolIDs
// keep the decoders synchronized, modeling §6's protected sequence
// number.
//
// Degenerate frames return a typed error alongside a best-effort ACK: a
// frame whose batches are all for already-decoded blocks yields
// ErrStaleFrame (the ACK still tells the sender to stop), and malformed
// input yields ErrNilFrame, ErrBadLayout or ErrMalformedBatch. Only the
// nil-frame and bad-layout cases leave the ACK empty.
func (r *Receiver) HandleFrame(f *Frame) (framing.Ack, error) {
	if f == nil {
		return framing.Ack{}, ErrNilFrame
	}
	if r.blocks == nil {
		if err := r.init(f.BlockBits); err != nil {
			return framing.Ack{}, err
		}
	}
	r.lastSeq = f.Seq
	var err error
	progress := false
	for i := range f.Batches {
		ok, aerr := r.accumulate(&f.Batches[i])
		if ok {
			progress = true
		}
		if aerr != nil && err == nil {
			err = aerr
		}
	}
	if !progress && len(f.Batches) > 0 && err == nil {
		err = ErrStaleFrame
	}
	for i := range r.blocks {
		blk := &r.blocks[i]
		if blk.got || !blk.dirty {
			continue
		}
		r.attempt(i, r.ownDecoder(blk.nBits))
	}
	return r.ack(f.Seq), err
}

// Complete reports whether every block has been decoded.
func (r *Receiver) Complete() bool {
	if r.blocks == nil {
		return false
	}
	for i := range r.blocks {
		if !r.blocks[i].got {
			return false
		}
	}
	return true
}

// Datagram reassembles the received payload; it returns ErrIncomplete if
// blocks are missing.
func (r *Receiver) Datagram() ([]byte, error) {
	if !r.Complete() {
		return nil, ErrIncomplete
	}
	payloads := make([][]byte, len(r.blocks))
	for i := range r.blocks {
		payloads[i] = r.blocks[i].payload
	}
	return framing.Reassemble(payloads), nil
}

// Stats summarizes a completed transfer.
type Stats struct {
	Frames      int
	SymbolsSent int
	Blocks      int
	// Retransmissions counts timeout-triggered retransmissions across the
	// flow's blocks — passes sent into feedback silence. Nack
	// continuations are ordinary rateless progress and are not counted.
	// Zero under the instant perfect-feedback default.
	Retransmissions int
	// AcksSent/AcksLost count reverse-channel traffic when the engine
	// runs with a FeedbackConfig (zero otherwise).
	AcksSent, AcksLost int
	// AckSymbols is the reverse-channel airtime charged to the flow, in
	// symbols, under half-duplex accounting
	// (EngineConfig.HalfDuplex; zero otherwise).
	AckSymbols int
	// Pauses counts the feedback turnarounds of a pause-paced flow
	// (FlowConfig.Pause; zero otherwise).
	Pauses int
	// BatchesRejected counts batches the receiver dropped with a typed
	// error (ErrMalformedBatch, ErrBadSymbolID, ErrBadSymbol,
	// ErrBlockFull) — counted-and-dropped input, not silence.
	BatchesRejected int
	// SymbolsDeduped counts replayed symbol observations the receiver's
	// per-ID dedup dropped (duplicate frames are no-ops beyond this
	// counter).
	SymbolsDeduped int
	// SymbolsOverflowed counts symbols dropped at the per-block
	// accumulator bound (ErrBlockFull's victims).
	SymbolsOverflowed int
	// Faults counts the faults injected into the flow's forward and
	// reverse paths when the engine runs with a FaultConfig
	// (EngineConfig.Faults; zero otherwise).
	Faults FaultStats
	// Rate is datagram bits per channel symbol, CRC overhead included in
	// the denominator's favour (it counts only payload bits). Under
	// half-duplex accounting the denominator also includes AckSymbols.
	Rate float64
}

func (s Stats) String() string {
	return fmt.Sprintf("frames=%d symbols=%d blocks=%d rate=%.3f b/sym",
		s.Frames, s.SymbolsSent, s.Blocks, s.Rate)
}

// Channel perturbs a frame's symbols in place; implementations model the
// medium between sender and receiver (noise, erasure of whole frames).
type Channel interface {
	// Apply transforms transmitted symbols into received symbols. A nil
	// return means the whole frame was erased (receiver missed it).
	Apply(sym []complex128) []complex128
}

// Transfer drives a complete sender→receiver exchange through ch,
// returning the received datagram and statistics. maxFrames bounds the
// exchange (0 means 10000).
func Transfer(datagram []byte, p core.Params, maxBlockBits int, ch Channel, maxFrames int) ([]byte, Stats, error) {
	return TransferWithCode(icode.Spinal(p), datagram, maxBlockBits, ch, maxFrames)
}

// TransferWithCode is Transfer over an arbitrary channel code.
func TransferWithCode(c icode.Code, datagram []byte, maxBlockBits int, ch Channel, maxFrames int) ([]byte, Stats, error) {
	if maxFrames == 0 {
		maxFrames = 10000
	}
	snd := NewCodeSender(c, datagram, maxBlockBits)
	rcv := NewCodeReceiver(c)
	var st Stats
	st.Blocks = snd.Blocks()
	for frame := 0; frame < maxFrames; frame++ {
		f := snd.NextFrame()
		if f == nil {
			break
		}
		st.Frames++
		rx := ch.Apply(f.Symbols())
		if rx != nil {
			f2 := *f
			f2.Batches = rebatch(f.Batches, rx)
			ack, herr := rcv.HandleFrame(&f2)
			// Only the nil-frame and bad-layout failures leave the ACK
			// empty; every other typed error (stale, malformed batch, bad
			// symbol, full accumulator) rides alongside a valid ACK that
			// must still be applied — dropping it would silently swallow
			// the receiver's progress report.
			if herr == nil || (!errors.Is(herr, ErrNilFrame) && !errors.Is(herr, ErrBadLayout)) {
				snd.HandleAck(ack)
			}
		}
		if snd.Done() {
			break
		}
	}
	st.SymbolsSent = snd.SymbolsSent()
	got, err := rcv.Datagram()
	if err != nil {
		return nil, st, err
	}
	if st.SymbolsSent > 0 {
		st.Rate = float64(len(datagram)*8) / float64(st.SymbolsSent)
	}
	return got, st, nil
}

// Symbols flattens the frame's symbols in batch order for channel
// application.
func (f *Frame) Symbols() []complex128 {
	out := make([]complex128, 0, f.SymbolCount())
	for _, b := range f.Batches {
		out = append(out, b.Symbols...)
	}
	return out
}

// rebatch redistributes channel-output symbols back into per-block
// batches.
func rebatch(batches []Batch, rx []complex128) []Batch {
	out := make([]Batch, len(batches))
	off := 0
	for i, b := range batches {
		out[i] = Batch{Block: b.Block, IDs: b.IDs, Symbols: rx[off : off+len(b.Symbols)]}
		off += len(b.Symbols)
	}
	return out
}
