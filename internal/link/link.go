// Package link implements the §6 rateless link protocol: a sender
// segments a datagram into CRC-protected code blocks, spinal-encodes each
// block independently, and streams frames of symbols; the receiver
// decodes blocks as symbols accumulate, verifies CRCs, and returns ACKs
// with one bit per code block. Sequence numbers let the receiver stay
// synchronized across erased frames.
//
// The Sender and Receiver are transport-agnostic state machines: tests
// drive them in-process through simulated channels, and the
// examples/filetransfer program drives them over UDP.
package link

import (
	"errors"
	"fmt"

	"spinal/internal/core"
	"spinal/internal/framing"
)

// Batch carries one code block's symbols within a frame. The SymbolIDs
// are derivable from the frame sequence number and the shared schedule
// (§6); they are carried explicitly here for simulation clarity.
type Batch struct {
	Block   int
	IDs     []core.SymbolID
	Symbols []complex128
}

// Frame is one link-layer transmission: a sequence number plus one batch
// per not-yet-acknowledged code block.
type Frame struct {
	Seq       uint32
	BlockBits []int // layout of the datagram's code blocks, in bits
	Batches   []Batch
}

// SymbolCount reports the number of channel symbols in the frame.
func (f *Frame) SymbolCount() int {
	n := 0
	for _, b := range f.Batches {
		n += len(b.Symbols)
	}
	return n
}

// Sender streams a datagram as rateless frames.
type Sender struct {
	params  core.Params
	blocks  []framing.Block
	encs    []*core.Encoder
	scheds  []*core.Schedule
	acked   []bool
	seq     uint32
	symbols int
}

// NewSender segments the datagram into code blocks of at most
// maxBlockBits (0 ⇒ the §6 default of 1024) and prepares the encoders.
func NewSender(datagram []byte, p core.Params, maxBlockBits int) *Sender {
	blocks := framing.Segment(datagram, maxBlockBits)
	s := &Sender{
		params: p,
		blocks: blocks,
		encs:   make([]*core.Encoder, len(blocks)),
		scheds: make([]*core.Schedule, len(blocks)),
		acked:  make([]bool, len(blocks)),
	}
	for i, b := range blocks {
		bits := b.Bits()
		s.encs[i] = core.NewEncoder(bits, b.NumBits(), p)
		s.scheds[i] = s.encs[i].NewSchedule()
	}
	return s
}

// Done reports whether every block has been acknowledged.
func (s *Sender) Done() bool {
	for _, a := range s.acked {
		if !a {
			return false
		}
	}
	return true
}

// SymbolsSent reports the cumulative number of symbols transmitted.
func (s *Sender) SymbolsSent() int { return s.symbols }

// NextFrame emits the next frame: one subpass of fresh symbols for every
// unacknowledged block. It returns nil when all blocks are acknowledged.
func (s *Sender) NextFrame() *Frame {
	if s.Done() {
		return nil
	}
	f := &Frame{Seq: s.seq, BlockBits: make([]int, len(s.blocks))}
	for i, b := range s.blocks {
		f.BlockBits[i] = b.NumBits()
	}
	s.seq++
	for i := range s.blocks {
		if s.acked[i] {
			continue
		}
		ids := s.scheds[i].NextSubpass()
		f.Batches = append(f.Batches, Batch{
			Block:   i,
			IDs:     ids,
			Symbols: s.encs[i].Symbols(ids),
		})
		s.symbols += len(ids)
	}
	return f
}

// HandleAck marks acknowledged blocks. Stale ACKs (older seq) are still
// applied: a block once decoded stays decoded.
func (s *Sender) HandleAck(a framing.Ack) {
	for i, ok := range a.Decoded {
		if i < len(s.acked) && ok {
			s.acked[i] = true
		}
	}
}

// Receiver reassembles a datagram from rateless frames.
type Receiver struct {
	params   core.Params
	decs     []*core.Decoder
	payloads [][]byte
	got      []bool
	lastSeq  uint32
}

// NewReceiver creates a receiver with the same code parameters as the
// sender.
func NewReceiver(p core.Params) *Receiver {
	return &Receiver{params: p}
}

// HandleFrame ingests a (possibly noisy) frame and returns the ACK to
// send back. Frames may arrive with gaps in Seq; the per-batch SymbolIDs
// keep the decoders synchronized, modeling §6's protected sequence
// number.
func (r *Receiver) HandleFrame(f *Frame) framing.Ack {
	if r.decs == nil {
		r.decs = make([]*core.Decoder, len(f.BlockBits))
		r.payloads = make([][]byte, len(f.BlockBits))
		r.got = make([]bool, len(f.BlockBits))
		for i, nb := range f.BlockBits {
			r.decs[i] = core.NewDecoder(nb, r.params)
		}
	}
	r.lastSeq = f.Seq
	for _, b := range f.Batches {
		if b.Block >= len(r.decs) || r.got[b.Block] {
			continue
		}
		dec := r.decs[b.Block]
		dec.Add(b.IDs, b.Symbols)
		decoded, _ := dec.Decode()
		if payload, ok := framing.Verify(decoded); ok {
			r.got[b.Block] = true
			// payload aliases the decoder's reusable result buffer;
			// copy before retaining it for reassembly.
			r.payloads[b.Block] = append([]byte(nil), payload...)
		}
	}
	return framing.Ack{Seq: f.Seq, Decoded: append([]bool(nil), r.got...)}
}

// Complete reports whether every block has been decoded.
func (r *Receiver) Complete() bool {
	if r.got == nil {
		return false
	}
	for _, g := range r.got {
		if !g {
			return false
		}
	}
	return true
}

// Datagram reassembles the received payload; it errors if blocks are
// missing.
func (r *Receiver) Datagram() ([]byte, error) {
	if !r.Complete() {
		return nil, errors.New("link: datagram incomplete")
	}
	return framing.Reassemble(r.payloads), nil
}

// Stats summarizes a completed transfer.
type Stats struct {
	Frames      int
	SymbolsSent int
	Blocks      int
	// Rate is datagram bits per channel symbol, CRC overhead included in
	// the denominator's favour (it counts only payload bits).
	Rate float64
}

func (s Stats) String() string {
	return fmt.Sprintf("frames=%d symbols=%d blocks=%d rate=%.3f b/sym",
		s.Frames, s.SymbolsSent, s.Blocks, s.Rate)
}

// Channel perturbs a frame's symbols in place; implementations model the
// medium between sender and receiver (noise, erasure of whole frames).
type Channel interface {
	// Apply transforms transmitted symbols into received symbols. A nil
	// return means the whole frame was erased (receiver missed it).
	Apply(sym []complex128) []complex128
}

// Transfer drives a complete sender→receiver exchange through ch,
// returning the received datagram and statistics. maxFrames bounds the
// exchange (0 means 10000).
func Transfer(datagram []byte, p core.Params, maxBlockBits int, ch Channel, maxFrames int) ([]byte, Stats, error) {
	if maxFrames == 0 {
		maxFrames = 10000
	}
	snd := NewSender(datagram, p, maxBlockBits)
	rcv := NewReceiver(p)
	var st Stats
	st.Blocks = len(snd.blocks)
	for frame := 0; frame < maxFrames; frame++ {
		f := snd.NextFrame()
		if f == nil {
			break
		}
		st.Frames++
		rx := ch.Apply(f.Symbols())
		if rx != nil {
			f2 := *f
			f2.Batches = rebatch(f.Batches, rx)
			ack := rcv.HandleFrame(&f2)
			snd.HandleAck(ack)
		}
		if snd.Done() {
			break
		}
	}
	st.SymbolsSent = snd.SymbolsSent()
	got, err := rcv.Datagram()
	if err != nil {
		return nil, st, err
	}
	if st.SymbolsSent > 0 {
		st.Rate = float64(len(datagram)*8) / float64(st.SymbolsSent)
	}
	return got, st, nil
}

// Symbols flattens the frame's symbols in batch order for channel
// application.
func (f *Frame) Symbols() []complex128 {
	out := make([]complex128, 0, f.SymbolCount())
	for _, b := range f.Batches {
		out = append(out, b.Symbols...)
	}
	return out
}

// rebatch redistributes channel-output symbols back into per-block
// batches.
func rebatch(batches []Batch, rx []complex128) []Batch {
	out := make([]Batch, len(batches))
	off := 0
	for i, b := range batches {
		out[i] = Batch{Block: b.Block, IDs: b.IDs, Symbols: rx[off : off+len(b.Symbols)]}
		off += len(b.Symbols)
	}
	return out
}
