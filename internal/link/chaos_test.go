package link

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"spinal/internal/framing"
)

// chaosFaultConfig draws one randomized fault schedule. Probabilities
// are kept in ranges where transfers still mostly complete — the soak is
// about surviving composition of faults, not about proving outage under
// a dead link (the degradation experiment covers intensity sweeps).
func chaosFaultConfig(rng *rand.Rand, ackFaults bool) FaultConfig {
	fc := FaultConfig{
		FrameReorder:   rng.Float64() * 0.3,
		FrameDup:       rng.Float64() * 0.2,
		FrameTruncate:  rng.Float64() * 0.1,
		FrameCorrupt:   rng.Float64() * 0.1,
		Blackout:       rng.Float64() * 0.05,
		ReorderDepth:   1 + rng.Intn(6),
		CorruptBits:    1 + rng.Intn(4),
		BlackoutRounds: 1 + rng.Intn(6),
		Seed:           rng.Int63(),
	}
	if ackFaults {
		fc.AckReorder = rng.Float64() * 0.3
		fc.AckDup = rng.Float64() * 0.2
		fc.AckTruncate = rng.Float64() * 0.1
		fc.AckCorrupt = rng.Float64() * 0.1
	}
	return fc
}

// TestChaosSoak drives thousands of frames through randomized fault
// schedules — reorder, duplication, truncation, corruption and blackouts
// composed with noisy channels, share erasure, and (on alternate
// configurations) a delayed lossy reverse channel whose acks suffer the
// same fault kinds — with the invariant checker asserting the engine's
// conservation laws after every Step. The pass criterion is graceful
// degradation: no panic, no deadlock (Drain terminates through the round
// budgets), no invariant violation, and every delivered datagram
// byte-identical to what was sent; outages under heavy faults are legal,
// silent corruption is not.
func TestChaosSoak(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	configs := 10
	if testing.Short() {
		configs = 2
	}
	totalFrames, delivered, outaged := 0, 0, 0
	for c := 0; c < configs; c++ {
		withFeedback := c%2 == 1
		fc := chaosFaultConfig(rng, withFeedback)
		var feedback *FeedbackConfig
		if withFeedback {
			feedback = &FeedbackConfig{
				DelayRounds:  rng.Intn(3),
				JitterRounds: rng.Intn(2),
				Loss:         rng.Float64() * 0.2,
				Discard:      c%4 == 3,
			}
		}
		eng := NewEngine(EngineConfig{
			Params:          linkParams(),
			MaxBlockBits:    192,
			Shards:          2,
			MaxRounds:       120,
			Seed:            int64(c)*1009 + 7,
			Feedback:        feedback,
			Faults:          &fc,
			CheckInvariants: true,
		})
		payload := make(map[FlowID][]byte)
		for i := 0; i < 14; i++ {
			data := make([]byte, 20+rng.Intn(120))
			rng.Read(data)
			id := eng.AddFlow(data, FlowConfig{
				Channel: newAWGNChannel(8+rng.Float64()*12, rng.Float64()*0.1, rng.Int63()),
				Rate:    FixedRate(1 + rng.Intn(2)),
			})
			payload[id] = data
		}
		results := eng.Drain(0)
		eng.Close()
		if len(results) != len(payload) {
			t.Fatalf("config %d: %d flows resolved, want %d", c, len(results), len(payload))
		}
		for _, r := range results {
			totalFrames += r.Stats.Frames
			if r.Err != nil {
				outaged++
				continue
			}
			delivered++
			if !bytes.Equal(r.Datagram, payload[r.ID]) {
				t.Fatalf("config %d flow %d: delivered datagram corrupted", c, r.ID)
			}
		}
	}
	t.Logf("soak: %d frames, %d delivered, %d outaged", totalFrames, delivered, outaged)
	if !testing.Short() {
		if totalFrames < 2000 {
			t.Fatalf("soak undersized: only %d frames crossed the injector", totalFrames)
		}
		if delivered == 0 {
			t.Fatal("soak delivered nothing — fault intensities are past graceful degradation")
		}
	}
}

// TestChaosDeterministic pins the injector's reproducibility: two engines
// with identical configuration and flows resolve with bit-identical
// results — datagrams, stats, and every fault counter.
func TestChaosDeterministic(t *testing.T) {
	run := func() []FlowResult {
		fc := chaosTestFaults()
		eng := NewEngine(EngineConfig{
			Params:          linkParams(),
			MaxBlockBits:    192,
			Shards:          2,
			MaxRounds:       96,
			Seed:            42,
			Feedback:        &FeedbackConfig{DelayRounds: 1, Loss: 0.1},
			Faults:          &fc,
			CheckInvariants: true,
		})
		defer eng.Close()
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 6; i++ {
			data := make([]byte, 40+rng.Intn(60))
			rng.Read(data)
			eng.AddFlow(data, FlowConfig{
				Channel: newAWGNChannel(12, 0.05, int64(i)*17),
				Rate:    FixedRate(1),
			})
		}
		return eng.Drain(0)
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("chaos runs diverged:\n%v\n%v", a, b)
	}
}

// chaosTestFaults is the all-faults-on mix the deterministic chaos tests
// share.
func chaosTestFaults() FaultConfig {
	return FaultConfig{
		FrameReorder: 0.2, FrameDup: 0.15, FrameTruncate: 0.08,
		FrameCorrupt: 0.08, Blackout: 0.03,
		ReorderDepth: 4, BlackoutRounds: 3,
		AckReorder: 0.2, AckDup: 0.15, AckTruncate: 0.08, AckCorrupt: 0.08,
	}
}

// TestDeliveryIdempotent is the replay property: delivering every frame
// k times leaves the receiver in exactly the state of single delivery —
// same acks after each round, same decoded payloads at the end — and
// applying every ack k times leaves the sender in exactly the state of
// single application. Only the dedup counters may differ.
func TestDeliveryIdempotent(t *testing.T) {
	p := linkParams()
	rng := rand.New(rand.NewSource(77))
	data := make([]byte, 300)
	rng.Read(data)
	for _, k := range []int{2, 5} {
		sndOnce := NewSender(data, p, 256)
		sndK := NewSender(data, p, 256)
		rcvOnce := NewReceiver(p)
		rcvK := NewReceiver(p)
		chOnce := newAWGNChannel(12, 0, 9)
		chK := newAWGNChannel(12, 0, 9)
		for i := 0; i < 200 && !sndOnce.Done(); i++ {
			f := sndOnce.NextFrame()
			fk := sndK.NextFrame()
			if f == nil || fk == nil {
				break
			}
			noisy := func(f *Frame, rx []complex128) *Frame {
				f2 := *f
				f2.Batches = rebatch(f.Batches, rx)
				return &f2
			}
			f2 := noisy(f, chOnce.Apply(f.Symbols()))
			fk2 := noisy(fk, chK.Apply(fk.Symbols()))
			ack1, _ := rcvOnce.HandleFrame(f2)
			var ackK framing.Ack
			for j := 0; j < k; j++ {
				ackK, _ = rcvK.HandleFrame(fk2)
			}
			if !reflect.DeepEqual(ack1.Decoded, ackK.Decoded) {
				t.Fatalf("k=%d round %d: replayed receiver diverged: %v vs %v",
					k, i, ack1.Decoded, ackK.Decoded)
			}
			sndOnce.HandleAck(ack1)
			for j := 0; j < k; j++ {
				sndK.HandleAck(ackK)
			}
			if !reflect.DeepEqual(sndOnce.acked, sndK.acked) {
				t.Fatalf("k=%d round %d: replayed acks diverged sender state", k, i)
			}
		}
		gotOnce, errOnce := rcvOnce.Datagram()
		gotK, errK := rcvK.Datagram()
		if errOnce != nil || errK != nil {
			t.Fatalf("k=%d: datagram errors: %v, %v", k, errOnce, errK)
		}
		if !bytes.Equal(gotOnce, gotK) || !bytes.Equal(gotOnce, data) {
			t.Fatalf("k=%d: replayed delivery corrupted the datagram", k)
		}
		// The only state allowed to differ is the dedup tally: (k-1)
		// replays of every accepted symbol.
		for i := range rcvK.blocks {
			if rcvOnce.blocks[i].dups != 0 {
				t.Fatalf("single delivery counted %d dups", rcvOnce.blocks[i].dups)
			}
			if k > 1 && rcvK.blocks[i].dups == 0 {
				t.Fatalf("k=%d: block %d replays were not counted", k, i)
			}
		}
	}
}

// TestFaultScale pins Scale's clamping: probabilities scale linearly,
// clamp to [0, 1], and structural knobs (depths, burst lengths) are
// untouched. Scale(0) must disable every fault.
func TestFaultScale(t *testing.T) {
	base := chaosTestFaults()
	zero := base.Scale(0)
	if zero.FrameReorder != 0 || zero.FrameDup != 0 || zero.FrameTruncate != 0 ||
		zero.FrameCorrupt != 0 || zero.Blackout != 0 ||
		zero.AckReorder != 0 || zero.AckDup != 0 || zero.AckTruncate != 0 || zero.AckCorrupt != 0 {
		t.Fatalf("Scale(0) left faults enabled: %+v", zero)
	}
	if zero.ackFaults() {
		t.Fatal("Scale(0) still reports ack faults")
	}
	big := base.Scale(100)
	if big.FrameReorder != 1 || big.AckCorrupt != 1 {
		t.Fatalf("Scale(100) did not clamp to 1: %+v", big)
	}
	if big.ReorderDepth != base.ReorderDepth || big.BlackoutRounds != base.BlackoutRounds {
		t.Fatal("Scale changed structural knobs")
	}
	half := base.Scale(0.5)
	if half.FrameDup != base.FrameDup*0.5 {
		t.Fatalf("Scale(0.5) FrameDup = %v, want %v", half.FrameDup, base.FrameDup*0.5)
	}
}
