package link

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"spinal/internal/core"
	"spinal/internal/framing"
)

// fuzzParams keeps per-iteration decoder construction cheap.
func fuzzParams() core.Params {
	return core.Params{K: 3, B: 4, D: 1, C: 4, Tail: 1, Ways: 2}
}

// fuzzSeedFrames returns wire encodings of every typed-error shape plus a
// healthy frame, as the fuzz corpus.
func fuzzSeedFrames(tb testing.TB) [][]byte {
	tb.Helper()
	p := fuzzParams()
	snd := NewSender([]byte("fuzz corpus payload"), p, 64)
	healthy := snd.NextFrame()

	stale := *healthy // same layout, same batches: replay = stale after decode
	malformed := *healthy
	malformed.Batches = append([]Batch(nil), healthy.Batches...)
	mb := malformed.Batches[0]
	mb.Symbols = mb.Symbols[:len(mb.Symbols)/2] // ID/symbol count mismatch
	malformed.Batches[0] = mb

	badID := *healthy
	badID.Batches = []Batch{{
		Block:   0,
		IDs:     []core.SymbolID{{Chunk: 1 << 30, RNGIndex: 7}},
		Symbols: []complex128{1},
	}}

	seeds := [][]byte{
		nil,                                      // nil / empty frame bytes
		EncodeFrame(&Frame{}),                    // no layout → ErrBadLayout
		EncodeFrame(&Frame{BlockBits: []int{0}}), // zero-bit block
		EncodeFrame(&Frame{BlockBits: []int{-8}}),      // negative block
		EncodeFrame(&Frame{BlockBits: []int{1 << 30}}), // absurd block
		EncodeFrame(healthy),
		EncodeFrame(&stale),
		EncodeFrame(&malformed),
		EncodeFrame(&badID),
	}
	// Injector-shaped corruption: the same truncation and bit-flip
	// primitives the fault injector applies on the live wire, at a fixed
	// seed so the corpus is stable. These are exactly the byte images a
	// chaos run feeds the parser.
	rng := rand.New(rand.NewSource(0x6661756c74))
	for _, w := range [][]byte{EncodeFrame(healthy), EncodeFrame(&malformed)} {
		for i := 0; i < 3; i++ {
			seeds = append(seeds, truncateWire(rng, w))
			seeds = append(seeds, flipBits(rng, append([]byte(nil), w...), 3))
		}
	}
	return seeds
}

// TestWriteFuzzCorpus regenerates the checked-in injector-produced
// corpus entries under testdata/fuzz (go-fuzz v1 format). Gated behind
// an env var so a normal test run never rewrites testdata:
//
//	SPINAL_WRITE_CORPUS=1 go test ./internal/link -run TestWriteFuzzCorpus
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("SPINAL_WRITE_CORPUS") == "" {
		t.Skip("set SPINAL_WRITE_CORPUS=1 to rewrite testdata/fuzz")
	}
	write := func(target, name string, data []byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(0x636f72707573))
	snd := NewSender([]byte("corpus regeneration payload"), fuzzParams(), 64)
	frameWire := EncodeFrame(snd.NextFrame())
	ackWire := EncodeAck(framing.Ack{Seq: 11, Decoded: []bool{true, true, false, true}})
	for i := 0; i < 4; i++ {
		write("FuzzHandleFrame", fmt.Sprintf("injector_truncated_%d", i), truncateWire(rng, frameWire))
		write("FuzzHandleFrame", fmt.Sprintf("injector_bitflip_%d", i), flipBits(rng, append([]byte(nil), frameWire...), 3))
		write("FuzzFrameDecode", fmt.Sprintf("injector_truncated_%d", i), truncateWire(rng, frameWire))
		write("FuzzFrameDecode", fmt.Sprintf("injector_bitflip_%d", i), flipBits(rng, append([]byte(nil), frameWire...), 3))
		write("FuzzAckDecode", fmt.Sprintf("injector_truncated_%d", i), truncateWire(rng, ackWire))
		write("FuzzAckDecode", fmt.Sprintf("injector_bitflip_%d", i), flipBits(rng, append([]byte(nil), ackWire...), 2))
	}
	// Duplicated input: the same healthy frame twice over is what the
	// receiver sees after injector duplication; FuzzHandleFrame delivers
	// every corpus entry twice, so the healthy wire itself is the seed.
	write("FuzzHandleFrame", "injector_duplicated", frameWire)
	write("FuzzAckDecode", "injector_duplicated", ackWire)
}

// FuzzFrameDecode fuzzes the wire parser: arbitrary bytes must never
// panic, and anything that parses must re-encode to a stable fixed point
// (encode∘decode is the identity on wire bytes that came from a frame).
func FuzzFrameDecode(f *testing.F) {
	for _, seed := range fuzzSeedFrames(f) {
		f.Add(seed)
	}
	f.Add([]byte("\x01\x02\x03garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			return
		}
		out := EncodeFrame(fr)
		fr2, err := DecodeFrame(out)
		if err != nil {
			t.Fatalf("re-decode of encoded frame failed: %v", err)
		}
		// Byte-level comparison sidesteps NaN != NaN in the symbols.
		if !bytes.Equal(out, EncodeFrame(fr2)) {
			t.Fatal("encode/decode is not a fixed point")
		}
	})
}

// FuzzAckDecode fuzzes the ack wire codec and the sender's ack handling:
// arbitrary bytes must never panic; accepted bytes must re-encode to the
// identical wire form (the parser is strict, so encode∘decode is the
// identity); and any decoded ack — malformed-in-spirit, oversized,
// duplicate — must be safe to apply to a live sender twice over, with
// idempotent effect (a block once acknowledged stays acknowledged, §6's
// stale-ACK rule).
func FuzzAckDecode(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(EncodeAck(framing.Ack{}))
	f.Add(EncodeAck(framing.Ack{Seq: 1, Decoded: []bool{true}}))
	f.Add(EncodeAck(framing.Ack{Seq: 7, Decoded: []bool{true, false, true, false, false, true, true, true, false}}))
	f.Add(EncodeAck(framing.Ack{Seq: 1 << 31, Decoded: make([]bool, 64)}))
	sparse := make([]bool, 256)
	sparse[0], sparse[77], sparse[255] = true, true, true
	f.Add(EncodeAck(framing.Ack{Seq: 3, Decoded: sparse})) // selective variant, 3 runs
	nearly := make([]bool, 128)
	for i := range nearly {
		nearly[i] = i != 64
	}
	f.Add(EncodeAck(framing.Ack{Seq: 4, Decoded: nearly}))        // selective variant, 2 runs
	f.Add([]byte{0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0xff, 0x03}) // hostile block count
	f.Add([]byte{1, 2, 3})                                        // truncated header
	// Injector-shaped corruption of a healthy ack wire (the fault
	// injector's own truncate/bit-flip primitives, fixed seed).
	rng := rand.New(rand.NewSource(0x61636b73))
	ackWire := EncodeAck(framing.Ack{Seq: 9, Decoded: []bool{true, false, true, true, false}})
	for i := 0; i < 3; i++ {
		f.Add(truncateWire(rng, ackWire))
		f.Add(flipBits(rng, append([]byte(nil), ackWire...), 2))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeAck(data)
		if err != nil {
			if !errors.Is(err, ErrBadAckWire) {
				t.Fatalf("DecodeAck returned untyped error %v", err)
			}
			return
		}
		out := EncodeAck(a)
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted ack is not a wire fixed point:\n in: %x\nout: %x", data, out)
		}
		// Apply the ack (twice — duplicates arrive in real ARQ) to a
		// sender with fewer blocks than the ack may claim; the extra
		// bits must be ignored, not index out of range.
		snd := NewSender([]byte("ack fuzz target payload"), fuzzParams(), 64)
		snd.HandleAck(a)
		before := append([]bool(nil), snd.acked...)
		snd.HandleAck(a)
		for i := range snd.acked {
			if snd.acked[i] != before[i] {
				t.Fatal("duplicate ack changed sender state")
			}
			if snd.acked[i] && (i >= len(a.Decoded) || !a.Decoded[i]) {
				t.Fatal("sender acknowledged a block the ack never claimed")
			}
		}
	})
}

// FuzzHandleFrame fuzzes the receiver state machine: any frame the wire
// parser accepts must be handled without panicking, on both a fresh
// receiver (layout adoption path) and one already locked to a layout
// (stale/foreign-frame path), returning only the typed errors.
func FuzzHandleFrame(f *testing.F) {
	for _, seed := range fuzzSeedFrames(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			fr = nil // still exercise the nil-frame path below
		}
		p := fuzzParams()
		if fr != nil {
			// Cap decoder work: HandleFrame sizes decoders from the layout,
			// and building million-bit decoders per iteration would starve
			// the fuzzer without testing anything new (absurd layouts are
			// rejected by dedicated seeds and unit tests).
			total := 0
			for _, nb := range fr.BlockBits {
				if nb > 2048 {
					t.Skip("layout beyond fuzz decode budget")
				}
				total += nb
			}
			if total > 8192 {
				t.Skip("layout beyond fuzz decode budget")
			}
		}

		checkErr := func(err error) {
			if err == nil {
				return
			}
			for _, want := range []error{ErrNilFrame, ErrBadLayout, ErrMalformedBatch, ErrStaleFrame, ErrBadSymbolID, ErrBadSymbol, ErrBlockFull} {
				if errors.Is(err, want) {
					return
				}
			}
			t.Fatalf("HandleFrame returned untyped error %v", err)
		}

		fresh := NewReceiver(p)
		_, err = fresh.HandleFrame(fr)
		checkErr(err)

		// Receiver already synchronized to a small layout: the fuzz frame
		// is now a stale / foreign / corrupt continuation. Deliver it
		// twice — duplication is one of the injector's faults — and
		// require the replay to be absorbed without panic or new state.
		locked := NewReceiver(p)
		snd := NewSender([]byte("locked"), p, 0)
		first := snd.NextFrame()
		if _, err := locked.HandleFrame(first); err != nil {
			t.Fatalf("priming frame rejected: %v", err)
		}
		_, err = locked.HandleFrame(fr)
		checkErr(err)
		_, err = locked.HandleFrame(fr) // duplicate delivery
		checkErr(err)
	})
}
