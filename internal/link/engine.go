package link

import (
	"errors"
	"math"
	"math/rand"
	"sync"

	"spinal/internal/capacity"
	icode "spinal/internal/code"
	"spinal/internal/core"
	"spinal/internal/framing"
)

// FlowID identifies one datagram in flight through an Engine.
type FlowID uint64

// ErrFlowBudget reports a flow that exhausted its round budget before
// every code block decoded (channel too poor, or budget too tight).
var ErrFlowBudget = errors.New("link: flow exceeded its round budget before decoding")

// RatePolicy paces one flow: how many fresh puncturing subpasses (§5)
// each outstanding code block transmits in the coming round. It is the
// engine's per-flow rate-adaptation hook — the schedule itself fixes
// which symbols a subpass carries, the policy decides how fast the flow
// walks it.
type RatePolicy interface {
	// SubpassBudget returns the number of subpasses (≥ 0; 0 skips the
	// block this round) for a block of blockBits bits, given the symbols
	// one subpass carries and the symbols already sent for the block.
	SubpassBudget(blockBits, subpassSymbols, symbolsSent int) int
}

// FixedRate transmits a constant number of subpasses per block per round;
// values below 1 mean 1 (the Transfer loop's frame-at-a-time behaviour).
type FixedRate int

// SubpassBudget implements RatePolicy.
func (r FixedRate) SubpassBudget(_, _, _ int) int {
	if r < 1 {
		return 1
	}
	return int(r)
}

// CapacityRate opens each block with a burst sized so the receiver is
// likely just past its decoding point — blockBits/(margin·C(est))
// symbols, the same heuristic as the half-duplex CapacityPolicy — and
// then trickles geometrically growing increments. A stale SNR estimate
// degrades gracefully: too low wastes a little rate, too high adds
// trickle rounds.
type CapacityRate struct {
	// SNREstimateDB is the sender's (possibly stale) channel estimate.
	SNREstimateDB float64
	// Margin derates capacity for the code's gap; 0 means 0.8.
	Margin float64
	// Growth is the post-burst increment as a fraction of the initial
	// estimate; 0 means 0.25.
	Growth float64
}

// SubpassBudget implements RatePolicy.
func (p CapacityRate) SubpassBudget(blockBits, subpassSymbols, symbolsSent int) int {
	margin := p.Margin
	if margin == 0 {
		margin = 0.8
	}
	growth := p.Growth
	if growth == 0 {
		growth = 0.25
	}
	c := capacity.AWGNdB(p.SNREstimateDB) * margin
	if c < 0.05 {
		c = 0.05
	}
	target := float64(blockBits) / c
	var want float64
	if float64(symbolsSent) < target {
		want = target - float64(symbolsSent)
	} else {
		want = target * growth
	}
	n := int(math.Ceil(want / float64(maxInt(subpassSymbols, 1))))
	if n < 1 {
		n = 1
	}
	return n
}

// EngineConfig configures a multi-flow link engine.
type EngineConfig struct {
	// Params is the spinal code shared by every flow (it sizes the
	// pooled codecs).
	Params core.Params
	// Pool, when non-nil, is an externally owned codec pool this engine
	// shares with others — the daemon pattern: one warmed pool serving N
	// per-core engines. Its parameters must match Params (the pool's
	// workers build codecs from the parameters the pool was created
	// with). The engine never closes a shared pool; Shards is ignored.
	Pool *core.CodecPool
	// Code, when non-nil, selects the channel code every flow runs
	// instead of the spinal code of Params. The spinal adapter
	// (code.Spinal) is recognized and unwrapped onto the native pooled
	// fast path, so wrapping costs nothing; any other code runs through
	// the same sharded pool with per-shard decoder caches. Codes that
	// implement code.RateAdapter receive every decoded block's symbol
	// spend, mirroring the rate policies' RateObserver hook.
	Code icode.Code
	// MaxBlockBits bounds code blocks (0 ⇒ the §6 default of 1024).
	MaxBlockBits int
	// Shards is the codec-pool worker count (0 ⇒ GOMAXPROCS).
	Shards int
	// FrameSymbols is the shared-frame symbol budget: the scheduler stops
	// admitting batches once a frame holds this many symbols, and the
	// remaining flows wait for the next round (backpressure). 0 ⇒ 4096.
	FrameSymbols int
	// FrameLoss is the probability an entire shared frame is erased on
	// the air (every flow in it loses that round's symbols).
	FrameLoss float64
	// Seed drives frame-loss randomness.
	Seed int64
	// MaxRounds is the default per-flow give-up budget in scheduling
	// rounds (0 ⇒ 512); FlowConfig can override it per flow.
	MaxRounds int
	// Feedback, when non-nil, replaces §6's instant perfect per-block ACK
	// with an explicit reverse channel: every flow's acks cross a
	// FeedbackChannel with the configured delay/jitter/loss, and the
	// sender paces each block with retransmission timers, exponential
	// backoff and a bounded in-flight window. nil keeps the legacy
	// instant-feedback behaviour bit for bit.
	Feedback *FeedbackConfig
	// HalfDuplex, when non-nil, charges reverse-channel airtime to the
	// flows that cause it: on a shared half-duplex medium the receiver's
	// acks occupy the channel too, so each ack's wire bytes are converted
	// to symbols (at AckBitsPerSymbol) and accumulated in
	// Stats.AckSymbols, and Stats.Rate divides by forward plus ack
	// symbols. nil keeps §6's idealization of free acks. Accounting only:
	// ack airtime never consumes the forward frame's symbol budget.
	HalfDuplex *HalfDuplexConfig
	// Observer, when non-nil, receives feedback-path telemetry: one event
	// when a receiver emits an ack that crosses to its sender (AckSent)
	// and one when the sender applies it (AckDelivered). Purely
	// observational — the engine ignores anything the observer does.
	Observer FeedbackObserver
	// Scheduler, when non-nil, replaces the round-robin admission phase
	// with deficit-weighted fair queuing (see sched.go): per-flow weights
	// and priority classes, optional deadlines, and quantum-based credit
	// accounting over symbol spend, with half-duplex ack airtime debited
	// from the flow that caused it. nil keeps the legacy round-robin
	// admission bit for bit.
	Scheduler *SchedulerConfig
	// Faults, when non-nil, runs every flow's traffic through a seeded
	// deterministic fault injector: each round's share of the frame
	// crosses the wire codec and may be reordered, duplicated, truncated,
	// bit-flipped or blacked out before the receiver sees it, and (with a
	// FeedbackConfig) each ack's wire bytes suffer the reverse-path
	// counterparts inside the FeedbackChannel. nil keeps the fault-free
	// path bit for bit.
	Faults *FaultConfig
	// CheckInvariants asserts the engine's conservation laws after every
	// Step — resolved+active flows match admissions, acked blocks are
	// monotone, ARQ window occupancy within bounds, symbol accounting
	// consistent, receiver memory bounded — panicking with a diagnostic on
	// the first violation. For tests and soaks; off, it costs nothing.
	CheckInvariants bool
}

// HalfDuplexConfig prices reverse-channel (ack) airtime on a shared
// half-duplex medium.
type HalfDuplexConfig struct {
	// AckBitsPerSymbol is the reverse link's modulation density used to
	// convert ack wire bytes into channel symbols (0 ⇒ 2, QPSK-like).
	AckBitsPerSymbol int
}

// airtime converts an ack's wire size into charged channel symbols.
func (h *HalfDuplexConfig) airtime(wireBytes int) int {
	bps := h.AckBitsPerSymbol
	if bps <= 0 {
		bps = 2
	}
	return (8*wireBytes + bps - 1) / bps
}

func (c EngineConfig) frameSymbols() int {
	if c.FrameSymbols <= 0 {
		return 4096
	}
	return c.FrameSymbols
}

func (c EngineConfig) maxRounds() int {
	if c.MaxRounds <= 0 {
		return 512
	}
	return c.MaxRounds
}

// FlowConfig describes one flow entering the engine.
type FlowConfig struct {
	// Channel perturbs the flow's share of each frame (nil ⇒ noiseless).
	// Distinct flows may see distinct media — near and far stations on
	// one access point.
	Channel Channel
	// Rate paces the flow (nil ⇒ FixedRate(1)).
	Rate RatePolicy
	// Pause, when non-nil, paces the flow's feedback turnarounds for a
	// half-duplex medium: the sender transmits policy-sized bursts of
	// rounds and only learns the receiver's per-block state at each
	// burst's end (or immediately once the whole datagram decodes — the
	// receiver can preempt, cf. §6's ACK timing discussion). nil keeps
	// instant per-block acks. Mutually exclusive with
	// EngineConfig.Feedback, which models a full-duplex reverse channel.
	Pause PausePolicy
	// MaxRounds overrides the engine's give-up budget (0 ⇒ inherit).
	MaxRounds int
	// Weight is the flow's share of the link under a DWFQ scheduler
	// (EngineConfig.Scheduler): a weight-2 flow earns twice the per-round
	// symbol credit of a weight-1 flow (0 ⇒ 1). Ignored under the
	// default round-robin admission.
	Weight int
	// Priority is the flow's strict scheduling class under DWFQ: higher
	// classes are served before lower ones each round (and can starve
	// them — use Weight within a class for proportional sharing).
	// Ignored under round-robin.
	Priority int
	// Deadline, when positive, resolves the flow with ErrDeadline once it
	// has aged that many rounds without completing; under DWFQ, deadline
	// flows are additionally served earliest-deadline-first within their
	// priority class. 0 means no deadline.
	Deadline int
}

// FlowResult reports a resolved flow: its reassembled datagram on
// success, or a typed error (ErrFlowBudget) on give-up.
type FlowResult struct {
	ID       FlowID
	Datagram []byte
	Stats    Stats
	Err      error
}

// engineFlow is one flow's state machine: today's Sender/Receiver pair
// plus pacing and accounting. The codec-heavy work (symbol generation,
// decode attempts) runs on the engine's sharded pool, not here.
type engineFlow struct {
	id        FlowID
	snd       *Sender
	rcv       *Receiver
	ch        Channel
	rate      RatePolicy
	rounds    int
	maxRounds int
	frames    int
	bytes     int

	// ARQ state, present only when the engine runs with a FeedbackConfig.
	fb  *FeedbackChannel
	arq []retxTimer
	rx  bool // received something on the air this round (ack due)

	// Fault-injection state, present only under an EngineConfig.Faults:
	// the flow's injector, its block layout (for rebuilding wire frames),
	// and the receiver-side rejection tally.
	inj             *faultInjector
	layout          []int
	batchesRejected int

	// prevAcked snapshots the sender's acked bitmap at the last invariant
	// check (EngineConfig.CheckInvariants), to assert monotonicity.
	prevAcked []bool

	// DWFQ state (EngineConfig.Scheduler): the flow's weight, strict
	// priority class, optional deadline in rounds, and its symbol-credit
	// balance. Unused under the legacy round-robin admission (weight is
	// still defaulted so SchedStats stays meaningful).
	weight   int
	prio     int
	deadline int
	deficit  int64

	// Pause-policy state, present only when FlowConfig.Pause is set: the
	// sender hears acks only at burst boundaries.
	pause      PausePolicy
	burstLeft  int  // rounds left before the next feedback turnaround
	pauses     int  // turnarounds consumed
	tx         bool // transmitted this round (a burst round was consumed)
	ackSymbols int  // half-duplex reverse-channel airtime charged so far
}

// identityChannel is the noiseless default medium.
type identityChannel struct{}

func (identityChannel) Apply(sym []complex128) []complex128 { return sym }

// Engine multiplexes many concurrent datagrams ("flows") over a shared
// rateless link. Each flow is segmented into CRC-protected code blocks;
// every round, a frame scheduler interleaves one batch per outstanding
// block from as many flows as fit a shared frame's symbol budget
// (backpressure defers the rest), the medium perturbs each flow's share,
// and a sharded pool of persistent codec workers regenerates symbols and
// runs decode attempts. Spinal codes make this embarrassingly shardable:
// every code block decodes independently, so the pool stays busy as long
// as any flow has outstanding blocks.
//
// The engine is single-threaded at its API (AddFlow/Step/Drain must not
// be called concurrently); parallelism lives inside Step's codec rounds.
type Engine struct {
	cfg      EngineConfig
	pool     *core.CodecPool
	ownsPool bool // pool created here (Close stops it) vs shared (left running)
	flows    []*engineFlow
	next     FlowID
	rr       int   // round-robin admission cursor (legacy scheduler)
	sched    *dwfq // DWFQ state, nil under round-robin
	seq      uint32
	rng      *rand.Rand

	// gcode is the non-spinal channel code every flow runs, nil on the
	// native spinal path; gcodecs are its per-shard decoder caches (one
	// per pool shard — a shard's jobs run on one goroutine, so each cache
	// is touched serially, exactly like core.Codec's).
	gcode   icode.Code
	gcodecs []*genericCodec

	items  []txItem  // per-round scratch
	groups []rxGroup // per-round scratch (fault path)

	// Flow-conservation counters for the invariant checker: flows
	// admitted, resolved successfully, and resolved with an error.
	added, delivered, outaged int
}

// txItem is one scheduled batch's journey through a round: IDs assigned
// on the engine thread, symbols filled by an encode job, perturbed by the
// flow's channel, then consumed by a decode job.
type txItem struct {
	fl       *engineFlow
	batch    Batch
	lost     bool
	decoded  bool
	rejected bool // receiver dropped the batch with a typed error
}

// rxGroup collects the surviving batches of one (flow, block) pair under
// fault injection. Reorder and duplication can deliver several batches
// for the same block in one round; grouping them into a single decode job
// keeps pool jobs on disjoint receiver state, exactly like the fault-free
// path's unique-per-(flow, block) items.
type rxGroup struct {
	fl       *engineFlow
	block    int
	batches  []Batch
	decoded  bool
	rejected int
}

// genericCodec is one pool shard's decoder cache for a non-spinal code —
// the generic counterpart of core.Codec's per-block-size cache. Encoders
// live on the senders instead (Sender.ownEncoder): a (flow, block) pair
// always lands on the same shard, so its encoder is touched serially too.
type genericCodec struct {
	code icode.Code
	decs map[int]icode.Decoder
}

func (g *genericCodec) decoder(nBits int) icode.Decoder {
	d, ok := g.decs[nBits]
	if !ok {
		d = g.code.NewDecoder(nBits)
		g.decs[nBits] = d
		return d
	}
	d.Reset()
	return d
}

// NewEngine starts an engine and its codec pool. Close releases the pool.
func NewEngine(cfg EngineConfig) *Engine {
	gcode := cfg.Code
	if gcode != nil {
		if p, ok := icode.SpinalParams(gcode); ok {
			// The spinal adapter unwraps onto the native pooled path:
			// bit-identical behaviour and codec reuse, zero interface cost.
			cfg.Params = p
			gcode = nil
		}
	}
	pool, ownsPool := cfg.Pool, false
	if pool == nil {
		pool, ownsPool = core.NewCodecPool(cfg.Params, cfg.Shards), true
	}
	e := &Engine{
		cfg:      cfg,
		pool:     pool,
		ownsPool: ownsPool,
		rng:      rand.New(rand.NewSource(cfg.Seed ^ 0x6c696e6b)),
		gcode:    gcode,
	}
	if cfg.Scheduler != nil {
		e.sched = &dwfq{cfg: *cfg.Scheduler}
	}
	if gcode != nil {
		e.gcodecs = make([]*genericCodec, e.pool.Shards())
		for i := range e.gcodecs {
			e.gcodecs[i] = &genericCodec{code: gcode, decs: make(map[int]icode.Decoder)}
		}
	}
	return e
}

// code reports the channel code flows run under this engine.
func (e *Engine) code() icode.Code {
	if e.gcode != nil {
		return e.gcode
	}
	return icode.Spinal(e.cfg.Params)
}

// AddFlow admits a datagram as a new flow and returns its ID. A nil
// datagram is legal (a single CRC-only block). The flow starts
// transmitting on the next Step.
func (e *Engine) AddFlow(datagram []byte, fc FlowConfig) FlowID {
	if fc.Pause != nil && e.cfg.Feedback != nil {
		// A pause policy models a half-duplex turnaround schedule with
		// instant acks at each pause; a FeedbackConfig models a
		// full-duplex delayed reverse channel. Combining them has no
		// coherent semantics, so fail loudly rather than pick one.
		panic("link: FlowConfig.Pause and EngineConfig.Feedback are mutually exclusive")
	}
	c := e.code()
	fl := &engineFlow{
		id:        e.next,
		snd:       NewCodeSender(c, datagram, e.cfg.MaxBlockBits),
		rcv:       NewCodeReceiver(c),
		ch:        fc.Channel,
		rate:      fc.Rate,
		pause:     fc.Pause,
		maxRounds: fc.MaxRounds,
		weight:    fc.Weight,
		prio:      fc.Priority,
		deadline:  fc.Deadline,
		bytes:     len(datagram),
	}
	if fl.weight <= 0 {
		fl.weight = 1
	}
	if fl.ch == nil {
		fl.ch = identityChannel{}
	}
	if fl.rate == nil {
		fl.rate = FixedRate(1)
	}
	if fl.maxRounds <= 0 {
		fl.maxRounds = e.cfg.maxRounds()
	}
	if fb := e.cfg.Feedback; fb != nil {
		fl.fb = NewFeedbackChannel(*fb, e.cfg.Seed^(int64(fl.id)*0x5851f42d4c957f2d+0x5f))
		fl.arq = make([]retxTimer, fl.snd.Blocks())
		for i := range fl.arq {
			fl.arq[i] = newRetxTimer(fb.rto(), fb.maxRTO())
		}
	}
	if fc := e.cfg.Faults; fc != nil {
		fl.inj = newFaultInjector(*fc,
			e.cfg.Seed^fc.Seed^(int64(fl.id)*0x2545f4914f6cdd1d+0x17))
		if fl.fb != nil {
			fl.fb.setFaults(fl.inj)
		}
	}
	// The engine feeds the receiver batches directly, so adopt the block
	// layout now instead of waiting for a first frame.
	layout := make([]int, fl.snd.Blocks())
	for i := range layout {
		layout[i] = fl.snd.blocks[i].NumBits()
	}
	fl.layout = layout
	if err := fl.rcv.init(layout); err != nil {
		// Segment never produces an invalid layout; fail loudly if it does.
		panic(err)
	}
	e.next++
	e.added++
	e.flows = append(e.flows, fl)
	return fl.id
}

// Active reports the number of unresolved flows.
func (e *Engine) Active() int { return len(e.flows) }

// SetFlowChannel replaces an active flow's medium mid-flight — a station
// handing off to a different link, or a scenario driver switching channel
// regimes — and reports whether the flow was still active. A nil channel
// means noiseless. Symbols already in the receiver's accumulators are
// unaffected; only future rounds cross the new medium.
func (e *Engine) SetFlowChannel(id FlowID, ch Channel) bool {
	for _, fl := range e.flows {
		if fl.id == id {
			if ch == nil {
				ch = identityChannel{}
			}
			fl.ch = ch
			return true
		}
	}
	return false
}

// PoolStats exposes the codec pool's construction counters (reuse
// telemetry for tests and monitoring).
func (e *Engine) PoolStats() core.CodecPoolStats { return e.pool.Stats() }

// Close releases the codec workers (a shared EngineConfig.Pool is left
// running for its owner to close). The engine must be idle.
func (e *Engine) Close() {
	if e.ownsPool {
		e.pool.Close()
	}
}

// workerDecoder returns the decoder a pool worker uses for an attempt:
// the worker's own reusable spinal decoder on the native path, the
// shard's cached generic decoder otherwise. Must be called from the job
// running on that shard.
func (e *Engine) workerDecoder(c *core.Codec, shard, nBits int) icode.Decoder {
	if e.gcode != nil {
		return e.gcodecs[shard%len(e.gcodecs)].decoder(nBits)
	}
	return icode.WrapSpinalDecoder(c.Decoder(nBits))
}

// observeDecode reports one decoded block's size and symbol spend to
// whoever adapts on it: the flow's rate policy (RateObserver) and, on
// the generic path, the code itself (code.RateAdapter — the LDPC shim's
// rung learning). Runs on the engine thread.
func (e *Engine) observeDecode(fl *engineFlow, block int) {
	nb := fl.snd.blocks[block].NumBits()
	spent := fl.snd.symbolsFor(block)
	if ob, ok := fl.rate.(RateObserver); ok {
		ob.ObserveDecode(nb, spent)
	}
	if e.gcode != nil {
		if ra, ok := e.gcode.(icode.RateAdapter); ok {
			ra.ObserveDecode(nb, spent)
		}
	}
}

// shardOf routes a (flow, block) pair to a stable pool shard. Both
// inputs are spread through the high bits before the shift so that the
// blocks of one flow land on different shards (a two-flow transfer of a
// large file must still use the whole pool).
func shardOf(id FlowID, block int) int {
	h := uint64(id)*0x9e3779b97f4a7c15 ^ uint64(block)*0xff51afd7ed558ccd
	return int(h >> 33)
}

// scheduleRR is the legacy admission phase: round-robin from the
// fairness cursor, one batch of fresh symbol IDs per outstanding block,
// until the shared frame's symbol budget is spent. Flows left out
// neither transmit nor age. Under a FeedbackConfig a block additionally
// transmits only when its ARQ timer grants it — first pass (window
// permitting), nack continuation, or timeout retransmission — because
// the sender cannot see decodes, only delayed acks.
func (e *Engine) scheduleRR(round int) {
	budget := e.cfg.frameSymbols()
	symbols := 0
	offered := 0
	n := len(e.flows)
	for k := 0; k < n && symbols < budget; k++ {
		fl := e.flows[(e.rr+k)%n]
		fl.rounds++
		offered++
		inFrame := false
		window, inflight := 0, 0
		if fl.fb != nil {
			window = e.cfg.Feedback.window()
			for b := range fl.snd.blocks {
				if !fl.snd.acked[b] && fl.arq[b].inflight {
					inflight++
				}
			}
		}
		for b := range fl.snd.blocks {
			if fl.snd.acked[b] {
				continue
			}
			arqTimeout := false
			if fl.fb != nil {
				st := &fl.arq[b]
				if !st.inflight && inflight >= window {
					continue // in-flight window full; this block waits
				}
				send, timeout := st.advance()
				if !send {
					continue
				}
				arqTimeout = timeout
			}
			sched := fl.snd.scheds[b]
			sub := maxInt(sched.SymbolsPerPass()/sched.Subpasses(), 1)
			blockBits := fl.snd.blocks[b].NumBits()
			want := fl.rate.SubpassBudget(blockBits, sub, fl.snd.symbolsFor(b))
			if want < 1 {
				continue // policy veto: an ARQ grant stays due, uncommitted
			}
			if fl.fb != nil {
				st := &fl.arq[b]
				if !st.inflight {
					inflight++
				}
				st.commit(round, arqTimeout)
			}
			if !inFrame && fl.pause != nil && fl.burstLeft == 0 {
				// A pause-paced flow opens a new burst the moment it is
				// about to transmit: the policy sizes it from the symbols
				// sent so far, and each burst ends in exactly one feedback
				// turnaround (counted here, applied in the ACK stage).
				fl.burstLeft = maxInt(fl.pause.BurstFrames(
					fl.snd.blocks[0].NumBits(),
					maxInt(perFrameSymbols(fl.snd), 1),
					fl.snd.SymbolsSent()), 1)
				fl.pauses++
			}
			batch := fl.snd.batchIDs(b, want)
			fl.snd.countSymbols(len(batch.IDs))
			fl.snd.countSymbolsFor(b, len(batch.IDs))
			symbols += len(batch.IDs)
			inFrame = true
			e.items = append(e.items, txItem{fl: fl, batch: batch})
			if symbols >= budget {
				break
			}
		}
		if inFrame {
			fl.frames++
			fl.tx = true
		}
	}
	e.rr = (e.rr + offered) % maxInt(len(e.flows), 1)
}

// Step runs one round — schedule, encode, air, decode, ACK — and returns
// the flows resolved by it (nil most rounds). It is cheap to call with no
// active flows.
func (e *Engine) Step() []FlowResult {
	if len(e.flows) == 0 {
		return nil
	}

	// Schedule: admission is round-robin by default (scheduleRR) or
	// deficit-weighted fair queuing when EngineConfig.Scheduler is set
	// (scheduleDWFQ in sched.go). Both fill e.items with one batch of
	// fresh symbol IDs per admitted (flow, block) pair, bounded by the
	// shared frame's symbol budget.
	round := int(e.seq)
	e.items = e.items[:0]
	if e.sched != nil {
		e.scheduleDWFQ(round)
	} else {
		e.scheduleRR(round)
	}
	e.seq++

	// Encode: pooled workers regenerate each batch's symbols. On the
	// native path the worker's reusable spinal encoder does it from the
	// block bits (flows own no encoders); a generic code uses the
	// sender's per-block encoder — safe because a (flow, block) pair is
	// unique within a round and always routes to the same shard.
	var wg sync.WaitGroup
	for k := range e.items {
		it := &e.items[k]
		if len(it.batch.IDs) == 0 {
			continue
		}
		wg.Add(1)
		e.pool.Submit(shardOf(it.fl.id, it.batch.Block), func(c *core.Codec) {
			defer wg.Done()
			if e.gcode != nil {
				it.batch.Symbols = it.fl.snd.ownEncoder(it.batch.Block).Symbols(it.batch.IDs)
				return
			}
			bits, nb := it.fl.snd.blockBits(it.batch.Block)
			it.batch.Symbols = c.Encoder(bits, nb).Symbols(it.batch.IDs)
		})
	}
	wg.Wait()

	// Air: whole-frame loss first, then each flow's channel over its own
	// share. Serial, in schedule order, so stateful channel RNGs stay
	// deterministic.
	frameLost := e.cfg.FrameLoss > 0 && e.rng.Float64() < e.cfg.FrameLoss
	for k := range e.items {
		it := &e.items[k]
		if frameLost || len(it.batch.IDs) == 0 {
			it.lost = true
			continue
		}
		rx := it.fl.ch.Apply(it.batch.Symbols)
		if rx == nil {
			it.lost = true
			continue
		}
		it.batch.Symbols = rx
		if e.cfg.Faults == nil {
			it.fl.rx = true // the receiver saw this round; it owes an ack
		}
	}

	// Decode. Fault-free: one job per surviving batch — items are unique
	// per (flow, block), so jobs touch disjoint receiver state; the
	// decoder itself is the worker's, reset and replayed from the block's
	// accumulated symbols. Under fault injection each flow's surviving
	// share first crosses the wire codec and its injector (which may hold
	// it back, replay it, mangle it, or swallow it in a blackout), and
	// whatever frames emerge are regrouped per (flow, block) so jobs keep
	// the same disjointness.
	if e.cfg.Faults == nil {
		for k := range e.items {
			it := &e.items[k]
			if it.lost {
				continue
			}
			shard := shardOf(it.fl.id, it.batch.Block)
			wg.Add(1)
			e.pool.Submit(shard, func(c *core.Codec) {
				defer wg.Done()
				rcv := it.fl.rcv
				if e.cfg.Feedback != nil && e.cfg.Feedback.Discard && len(it.batch.IDs) > 0 {
					// Type-I ARQ: decode each retry standalone instead of
					// chase-combining with observations that already failed.
					rcv.dropStale(it.batch.Block)
				}
				ok, err := rcv.accumulate(&it.batch)
				if !ok {
					return
				}
				if err != nil {
					it.rejected = true
					return
				}
				blk := &rcv.blocks[it.batch.Block]
				if blk.dirty {
					it.decoded = rcv.attempt(it.batch.Block, e.workerDecoder(c, shard, blk.nBits))
				}
			})
		}
		wg.Wait()
		for k := range e.items {
			if e.items[k].rejected {
				e.items[k].fl.batchesRejected++
			}
		}
	} else {
		e.faultDeliver(round)
		for k := range e.groups {
			g := &e.groups[k]
			shard := shardOf(g.fl.id, g.block)
			wg.Add(1)
			e.pool.Submit(shard, func(c *core.Codec) {
				defer wg.Done()
				rcv := g.fl.rcv
				// A corrupt frame that survived the parser can address a
				// block the receiver does not have; accumulate rejects it,
				// but nothing else in this job may index by it.
				inRange := g.block >= 0 && g.block < len(rcv.blocks)
				for i := range g.batches {
					b := &g.batches[i]
					if inRange && e.cfg.Feedback != nil && e.cfg.Feedback.Discard && len(b.IDs) > 0 {
						rcv.dropStale(g.block)
					}
					ok, err := rcv.accumulate(b)
					if ok && err != nil {
						g.rejected++
					}
				}
				if !inRange {
					return // frame-shaped garbage: nothing to decode
				}
				blk := &rcv.blocks[g.block]
				if !blk.got && blk.dirty {
					g.decoded = rcv.attempt(g.block, e.workerDecoder(c, shard, blk.nBits))
				}
			})
		}
		wg.Wait()
		for k := range e.groups {
			e.groups[k].fl.batchesRejected += e.groups[k].rejected
		}
	}

	// ACK. Without a FeedbackConfig: instantaneous per-block feedback —
	// §6's one-bit-per-block ACK over a perfect reverse channel, applied
	// in its compressed form (the decoded block index is already in
	// hand). With one: each flow that received anything sends its ack
	// bitmap into its feedback queue, every queue advances one round, and
	// only delivered acks touch sender state — so the sender (and any
	// RateObserver) sees delayed, possibly-missing reports. Then resolve
	// finished and exhausted flows.
	if e.cfg.Feedback == nil {
		for k := range e.items {
			it := &e.items[k]
			if it.decoded && it.fl.pause == nil {
				it.fl.snd.acked[it.batch.Block] = true
				// Closed-loop rate policies (and rate-adapting codes) learn
				// from each decoded block's total symbol spend.
				e.observeDecode(it.fl, it.batch.Block)
			}
		}
		for k := range e.groups {
			g := &e.groups[k]
			if g.decoded && g.fl.pause == nil && g.block < len(g.fl.snd.acked) {
				g.fl.snd.acked[g.block] = true
				e.observeDecode(g.fl, g.block)
			}
		}
		for _, fl := range e.flows {
			switch {
			case fl.pause != nil && fl.tx:
				// A burst round was consumed; the sender pauses to listen
				// once the burst is spent — or immediately when the whole
				// datagram has verified (the receiver preempts).
				fl.burstLeft--
				if fl.burstLeft <= 0 || fl.rcv.Complete() {
					e.applyPauseAck(fl, round)
					fl.burstLeft = 0
				}
			case fl.pause == nil && fl.rx && e.cfg.HalfDuplex != nil:
				// §6's instant compressed ack still occupies the shared
				// medium when half-duplex accounting is on.
				e.chargeAck(fl, ackWireLen(fl.rcv.ack(uint32(round))))
			}
			fl.tx, fl.rx = false, false
		}
	} else {
		for _, fl := range e.flows {
			if fl.rx {
				fl.rx = false
				a := fl.rcv.ack(uint32(round))
				if e.cfg.HalfDuplex != nil {
					e.chargeAck(fl, ackWireLen(a))
				}
				e.observe(fl, round, AckSent, a)
				fl.fb.Send(a)
			}
			// Time passes for every flow's reverse channel, including
			// flows backpressured out of this round's frame.
			for _, a := range fl.fb.Advance() {
				e.applyAck(fl, a, round)
			}
		}
	}
	var results []FlowResult
	live := e.flows[:0]
	for _, fl := range e.flows {
		switch {
		case fl.snd.Done():
			r := e.resolve(fl, nil)
			if r.Err == nil {
				e.delivered++
			} else {
				e.outaged++
			}
			results = append(results, r)
		case fl.deadline > 0 && fl.rounds >= fl.deadline:
			results = append(results, e.resolve(fl, ErrDeadline))
			e.outaged++
			if e.sched != nil {
				e.sched.stats.DeadlineMisses++
			}
		case fl.rounds >= fl.maxRounds:
			results = append(results, e.resolve(fl, ErrFlowBudget))
			e.outaged++
		default:
			live = append(live, fl)
		}
	}
	e.flows = live
	if len(e.flows) > 0 {
		e.rr %= len(e.flows)
	} else {
		e.rr = 0
	}
	if e.cfg.CheckInvariants {
		e.checkInvariants(round)
	}
	return results
}

// chargeAck converts one ack's wire bytes into half-duplex reverse
// airtime and charges it to the flow that caused it. Under DWFQ the same
// symbols are additionally debited from the flow's credit balance, so
// reverse airtime competes with the flow's own forward spend instead of
// being free. Callers guard on e.cfg.HalfDuplex != nil.
func (e *Engine) chargeAck(fl *engineFlow, wireBytes int) {
	n := e.cfg.HalfDuplex.airtime(wireBytes)
	fl.ackSymbols += n
	if e.sched != nil {
		fl.deficit -= int64(n)
		e.sched.stats.AckSymbolsCharged += int64(n)
	}
}

// SchedStats snapshots the DWFQ scheduler's accounting. Zero-valued when
// the engine runs the legacy round-robin admission.
func (e *Engine) SchedStats() SchedulerStats {
	if e.sched == nil {
		return SchedulerStats{}
	}
	st := e.sched.stats
	st.Flows = len(e.flows)
	for _, fl := range e.flows {
		st.DeficitOutstanding += fl.deficit
	}
	return st
}

// faultDeliver runs every flow's forward-path fault injector for one
// round: each flow's surviving share of this round's frame is assembled
// into a wire-encodable Frame, handed to its injector (which may mangle
// it, hold it back, replay it, or swallow it in a blackout), and the
// frames actually delivered are flattened into per-(flow, block) decode
// groups. Every active flow's injector ticks every round, so blackouts
// burn down and held-back frames come due even in rounds the flow did
// not transmit.
func (e *Engine) faultDeliver(round int) {
	e.groups = e.groups[:0]
	for _, fl := range e.flows {
		var share *Frame
		for k := range e.items {
			it := &e.items[k]
			if it.fl != fl || it.lost {
				continue
			}
			if share == nil {
				share = &Frame{Seq: uint32(round), BlockBits: fl.layout}
			}
			share.Batches = append(share.Batches, it.batch)
		}
		frames := fl.inj.deliver(share, round)
		if len(frames) > 0 {
			fl.rx = true // the receiver saw something; it owes an ack
		}
		for _, f := range frames {
			for i := range f.Batches {
				b := f.Batches[i]
				g := -1
				for j := range e.groups {
					if e.groups[j].fl == fl && e.groups[j].block == b.Block {
						g = j
						break
					}
				}
				if g < 0 {
					e.groups = append(e.groups, rxGroup{fl: fl, block: b.Block})
					g = len(e.groups) - 1
				}
				e.groups[g].batches = append(e.groups[g].batches, b)
			}
		}
	}
}

// applyAck folds one delivered ack into sender-side flow state: newly
// acknowledged blocks stop transmitting and feed the rate policy's
// observer (with the symbol spend as of now — retransmissions sent while
// the ack was in flight are honestly included); blocks the receiver
// still lacked after seeing their latest pass get a fast nack
// continuation instead of waiting out the retransmission timer.
func (e *Engine) applyAck(fl *engineFlow, a framing.Ack, round int) {
	e.observe(fl, round, AckDelivered, a)
	for i, decoded := range a.Decoded {
		if i >= len(fl.snd.acked) {
			break
		}
		if decoded {
			if !fl.snd.acked[i] {
				fl.snd.acked[i] = true
				e.observeDecode(fl, i)
			}
			continue
		}
		if st := &fl.arq[i]; st.inflight && int(a.Seq) >= st.lastTx {
			st.nack()
		}
	}
}

// applyPauseAck is the feedback turnaround of a pause-paced flow: the
// receiver's per-block state crosses to the sender in one ack (charged as
// reverse airtime under half-duplex accounting), newly acknowledged
// blocks stop transmitting and feed the rate policy's observer.
//
// The turnaround happens even when the burst's forward frames were all
// erased on the air: the sender pauses on its own schedule and the
// receiver answers the silence, so the ack reflects whatever state the
// receiver holds. (The reverse channel itself is modeled as reliable
// here; an unreliable one is FeedbackConfig's job.) This deliberately
// differs from the pre-engine TransferWithPolicy loop, where the ack
// could only piggyback on a burst's last surviving frame.
func (e *Engine) applyPauseAck(fl *engineFlow, round int) {
	a := fl.rcv.ack(uint32(round))
	if e.cfg.HalfDuplex != nil {
		e.chargeAck(fl, ackWireLen(a))
	}
	e.observe(fl, round, AckSent, a)
	e.observe(fl, round, AckDelivered, a)
	for i, decoded := range a.Decoded {
		if decoded && !fl.snd.acked[i] {
			fl.snd.acked[i] = true
			e.observeDecode(fl, i)
		}
	}
}

// observe forwards a feedback-path event to the configured observer.
func (e *Engine) observe(fl *engineFlow, round int, kind FeedbackEventKind, a framing.Ack) {
	if e.cfg.Observer == nil {
		return
	}
	decoded := 0
	for _, d := range a.Decoded {
		if d {
			decoded++
		}
	}
	e.cfg.Observer.ObserveFeedback(FeedbackEvent{
		Flow:    fl.id,
		Round:   round,
		Kind:    kind,
		Blocks:  len(a.Decoded),
		Decoded: decoded,
	})
}

// resolve builds a flow's final result.
func (e *Engine) resolve(fl *engineFlow, ferr error) FlowResult {
	st := Stats{
		Frames:      fl.frames,
		SymbolsSent: fl.snd.SymbolsSent(),
		Blocks:      fl.snd.Blocks(),
		AckSymbols:  fl.ackSymbols,
		Pauses:      fl.pauses,
	}
	if fl.fb != nil {
		for i := range fl.arq {
			st.Retransmissions += fl.arq[i].retx
		}
		st.AcksSent, st.AcksLost, _ = fl.fb.Counters()
	}
	st.BatchesRejected = fl.batchesRejected
	for i := range fl.rcv.blocks {
		st.SymbolsDeduped += fl.rcv.blocks[i].dups
		st.SymbolsOverflowed += fl.rcv.blocks[i].overflow
	}
	if fl.inj != nil {
		st.Faults = fl.inj.stats
	}
	if air := st.SymbolsSent + st.AckSymbols; air > 0 {
		// Under half-duplex accounting AckSymbols is nonzero and the rate
		// is airtime-honest; otherwise this is the plain forward rate.
		st.Rate = float64(fl.bytes*8) / float64(air)
	}
	res := FlowResult{ID: fl.id, Stats: st, Err: ferr}
	if ferr == nil {
		got, err := fl.rcv.Datagram()
		if err != nil {
			res.Err = err
		} else {
			res.Datagram = got
		}
	}
	return res
}

// Drain steps until every flow resolves or maxSteps rounds pass (0 means
// no bound beyond the flows' own budgets), returning all results.
func (e *Engine) Drain(maxSteps int) []FlowResult {
	var out []FlowResult
	for steps := 0; e.Active() > 0; steps++ {
		if maxSteps > 0 && steps >= maxSteps {
			break
		}
		out = append(out, e.Step()...)
	}
	return out
}
