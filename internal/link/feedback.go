// The feedback path: spinal codes are rateless because the sender keeps
// emitting passes until the receiver says stop, so the reverse (ACK)
// channel is part of the code's operating point. This file models it
// honestly instead of assuming §6's perfect instantaneous feedback: acks
// cross a FeedbackChannel with configurable delay, jitter and loss
// (wire-encoded both ways, so the ack codec sits on the live path), and
// the sender reacts through per-block retransmission timers with
// exponential backoff, a bounded in-flight block window, and fast
// continuation when an explicit "still missing" report arrives.
package link

import (
	"math/rand"

	"spinal/internal/framing"
)

// FeedbackConfig describes the reverse (ACK) path and the sender's ARQ
// reaction to it. The zero value with DelayRounds 0 models an ideal but
// still explicit feedback loop: acks cross the queue and arrive the same
// round they were sent.
type FeedbackConfig struct {
	// DelayRounds is the base ack delivery delay in engine rounds.
	DelayRounds int
	// JitterRounds adds a uniform extra delay in [0, JitterRounds].
	JitterRounds int
	// Loss is the probability an individual ack is dropped in transit.
	Loss float64
	// RTO is the initial per-block retransmission timeout in rounds
	// (0 ⇒ DelayRounds + 2, just past the earliest possible ack).
	RTO int
	// MaxRTO bounds the exponential backoff (0 ⇒ 8·RTO). A cap below the
	// effective RTO is meaningless — backoff starts there — and clamps
	// up to it.
	MaxRTO int
	// Window bounds the blocks a flow may have transmitted-but-unacked at
	// once (0 ⇒ 8). Blocks beyond it wait their turn.
	Window int
	// Discard selects type-I ARQ at the receiver: each retry is decoded
	// standalone, accumulated symbols from failed attempts are dropped.
	// The default (false) is chase combining — observations accumulate
	// across retransmitted passes.
	Discard bool
}

func (c FeedbackConfig) rto() int {
	if c.RTO > 0 {
		return c.RTO
	}
	return c.DelayRounds + 2
}

func (c FeedbackConfig) maxRTO() int {
	if c.MaxRTO >= c.rto() {
		return c.MaxRTO
	}
	if c.MaxRTO > 0 {
		return c.rto() // a cap below the base timeout clamps to it
	}
	return 8 * c.rto()
}

func (c FeedbackConfig) window() int {
	if c.Window > 0 {
		return c.Window
	}
	return 8
}

// FeedbackEventKind distinguishes the observable moments of an ack's life.
type FeedbackEventKind int

const (
	// AckSent reports a receiver emitting an ack toward its sender.
	AckSent FeedbackEventKind = iota + 1
	// AckDelivered reports the sender applying a received ack.
	AckDelivered
)

// String names the kind for logs.
func (k FeedbackEventKind) String() string {
	switch k {
	case AckSent:
		return "ack-sent"
	case AckDelivered:
		return "ack-delivered"
	}
	return "unknown"
}

// FeedbackEvent is one observation of a flow's reverse (ACK) path.
// Under a FeedbackConfig, AckSent and AckDelivered for the same ack are
// separated by the channel's delay, and lost acks never deliver; a
// pause-paced flow fires both in the turnaround round. The engine's
// instant per-block default has no explicit acks and emits no events.
type FeedbackEvent struct {
	// Flow is the flow whose ack this is.
	Flow FlowID
	// Round is the engine round of the event.
	Round int
	// Kind is what happened.
	Kind FeedbackEventKind
	// Blocks is the flow's code-block count; Decoded how many of them the
	// ack reports decoded.
	Blocks, Decoded int
}

// FeedbackObserver receives feedback-path telemetry from an Engine
// (EngineConfig.Observer). Implementations must not call back into the
// engine; they are invoked synchronously from its single-threaded Step.
type FeedbackObserver interface {
	ObserveFeedback(FeedbackEvent)
}

// pendingAck is one ack in flight on the reverse channel, in its wire
// encoding (the codec is exercised on the live path, not just in tests).
type pendingAck struct {
	due  int
	wire []byte
}

// FeedbackChannel carries acks from a receiver back to its sender with
// delay, jitter and loss. It is single-threaded, like the engine API that
// drives it: Send enqueues, Advance ticks one round and delivers what is
// due. Acks are wire-encoded on Send and decoded on delivery; an ack that
// fails to decode is counted lost (defense in depth — the queue itself
// never corrupts bytes).
type FeedbackChannel struct {
	cfg   FeedbackConfig
	rng   *rand.Rand
	now   int
	queue []pendingAck
	// inj, when non-nil, applies adversarial reverse-path faults
	// (reorder, duplication, truncation, bit flips) to each ack's wire
	// bytes in Send; mangled acks that no longer parse are counted lost
	// on delivery.
	inj *faultInjector

	sent, lost, delivered int
}

// NewFeedbackChannel creates a feedback channel; seed drives the loss and
// jitter randomness.
func NewFeedbackChannel(cfg FeedbackConfig, seed int64) *FeedbackChannel {
	return &FeedbackChannel{
		cfg: cfg,
		rng: rand.New(rand.NewSource(seed ^ 0x666565646261636b)), // "feedback"
	}
}

// setFaults installs an adversarial-fault injector on the reverse path.
func (f *FeedbackChannel) setFaults(inj *faultInjector) { f.inj = inj }

// Send enqueues an ack for future delivery, or drops it with probability
// Loss. The ack is serialized immediately: what travels is wire bytes —
// which is also where the fault injector, when present, reorders,
// duplicates, truncates and bit-flips them.
func (f *FeedbackChannel) Send(a framing.Ack) {
	f.sent++
	if f.cfg.Loss > 0 && f.rng.Float64() < f.cfg.Loss {
		f.lost++
		return
	}
	delay := f.cfg.DelayRounds
	if f.cfg.JitterRounds > 0 {
		delay += f.rng.Intn(f.cfg.JitterRounds + 1)
	}
	wire := EncodeAck(a)
	if f.inj != nil && f.inj.cfg.ackFaults() {
		mangled, extra, dup, dupDelay := f.inj.mangleAck(wire)
		if dup != nil {
			f.queue = append(f.queue, pendingAck{due: f.now + delay + dupDelay, wire: dup})
		}
		wire, delay = mangled, delay+extra
	}
	f.queue = append(f.queue, pendingAck{due: f.now + delay, wire: wire})
}

// Advance ticks one engine round and returns the acks due for delivery,
// in send order among those due. With DelayRounds 0 an ack sent this
// round is delivered by the same round's Advance.
func (f *FeedbackChannel) Advance() []framing.Ack {
	var out []framing.Ack
	live := f.queue[:0]
	for _, p := range f.queue {
		if p.due > f.now {
			live = append(live, p)
			continue
		}
		a, err := DecodeAck(p.wire)
		if err != nil {
			f.lost++
			continue
		}
		f.delivered++
		out = append(out, a)
	}
	f.queue = live
	f.now++
	return out
}

// Counters reports lifetime telemetry: acks sent into the channel, lost
// in transit, and delivered.
func (f *FeedbackChannel) Counters() (sent, lost, delivered int) {
	return f.sent, f.lost, f.delivered
}

// retxTimer is one code block's ARQ state at the sender: when to
// (re)transmit under silence, with exponential backoff bounded by
// [base, maxRTO], and fast continuation when live feedback reports the
// block still missing (a nack resets the backoff — the reverse channel is
// evidently working, so silence-style caution is wrong).
//
// Advancing and committing are split so the engine can consult the rate
// policy between them: advance() only moves time and reports whether a
// transmission is due; nothing is armed, backed off or counted until
// commit() confirms symbols actually flew. A rate policy that vetoes the
// round (SubpassBudget 0) therefore leaves no phantom ARQ state behind —
// the grant simply stays due.
type retxTimer struct {
	base, rto, maxRTO int
	timer             int
	lastTx            int  // round of the most recent committed transmission
	inflight          bool // transmitted at least once, ack still pending
	nacked            bool // latest feedback saw lastTx and lacked the block
	retx              int  // committed timeout retransmissions
}

func newRetxTimer(base, maxRTO int) retxTimer {
	if base < 1 {
		base = 1
	}
	if maxRTO < base {
		maxRTO = base
	}
	return retxTimer{base: base, rto: base, maxRTO: maxRTO}
}

// advance moves one visited round and reports whether the block may
// transmit now, and whether that grant is a timeout retransmission
// (feedback silence) as opposed to a first pass or a nack continuation.
// It commits nothing: an unconsumed grant stays due next round.
func (t *retxTimer) advance() (send, timeout bool) {
	if !t.inflight {
		return true, false
	}
	if t.timer > 0 {
		t.timer--
	}
	if t.timer > 0 {
		return false, false
	}
	return true, !t.nacked
}

// commit records that an advance() grant was actually transmitted at
// round: the timer re-arms, a timeout doubles the backoff (bounded by
// maxRTO), and a consumed nack resets it to base — live feedback
// requested that pass, so silence-style caution would be wrong.
func (t *retxTimer) commit(round int, timeout bool) {
	t.inflight = true
	if timeout {
		t.retx++
		t.rto *= 2
		if t.rto > t.maxRTO {
			t.rto = t.maxRTO
		}
	} else if t.nacked {
		t.nacked = false
		t.rto = t.base
	}
	t.timer = t.rto
	t.lastTx = round
}

// nack handles feedback that postdates lastTx yet still lacks the block:
// the current pass demonstrably did not suffice, so the next one should
// go out on the next round instead of waiting out the timer. The flag is
// recorded even when the countdown is already about to fire — the grant
// was requested by live feedback, and classifying it as a timeout would
// wrongly double the backoff and count a phantom retransmission.
func (t *retxTimer) nack() {
	if !t.inflight {
		return
	}
	if t.timer > 1 {
		t.timer = 1
	}
	t.nacked = true
}
