package link

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"

	"spinal/internal/framing"
)

// TestAckWireRoundTrip: EncodeAck/DecodeAck are inverses across block
// counts straddling every bitmap-byte boundary.
func TestAckWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// 70000 exceeds the frame codec's per-list cap: ack block counts are
	// bounded separately (ackMaxBlocks), because a giant flow's acks ride
	// the live feedback path and must keep decoding.
	for _, n := range []int{0, 1, 2, 7, 8, 9, 15, 16, 17, 64, 100, 70000} {
		a := framing.Ack{Seq: rng.Uint32()}
		if n > 0 {
			a.Decoded = make([]bool, n)
			for i := range a.Decoded {
				a.Decoded[i] = rng.Intn(2) == 0
			}
		}
		w := EncodeAck(a)
		if got := ackWireLen(a); got != len(w) {
			t.Fatalf("n=%d: ackWireLen %d, encoded %d bytes", n, got, len(w))
		}
		got, err := DecodeAck(w)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got.Seq != a.Seq || len(got.Decoded) != len(a.Decoded) {
			t.Fatalf("n=%d: structure mismatch: %+v vs %+v", n, got, a)
		}
		for i := range a.Decoded {
			if got.Decoded[i] != a.Decoded[i] {
				t.Fatalf("n=%d: bit %d flipped", n, i)
			}
		}
	}
}

// TestAckWireRejectsGarbage: truncations, hostile block counts, nonzero
// padding bits and trailing bytes all yield ErrBadAckWire, never panics
// or big allocations.
func TestAckWireRejectsGarbage(t *testing.T) {
	full := EncodeAck(framing.Ack{Seq: 7, Decoded: []bool{true, false, true, true, false, true, false, false, true}})
	for cut := 0; cut < len(full); cut++ {
		if _, err := DecodeAck(full[:cut]); !errors.Is(err, ErrBadAckWire) {
			t.Fatalf("truncation at %d: err = %v", cut, err)
		}
	}
	if _, err := DecodeAck(append(append([]byte(nil), full...), 0)); !errors.Is(err, ErrBadAckWire) {
		t.Fatalf("trailing byte: err = %v", err)
	}
	// 9 blocks ⇒ 2 bitmap bytes, 7 padding bits in the second; set one.
	bad := append([]byte(nil), full...)
	bad[len(bad)-1] |= 0x80
	if _, err := DecodeAck(bad); !errors.Is(err, ErrBadAckWire) {
		t.Fatalf("nonzero padding accepted: err = %v", err)
	}
	// A count claiming 2^40 blocks in a 6-byte input.
	hostile := []byte{0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0xff, 0x03}
	if _, err := DecodeAck(hostile); !errors.Is(err, ErrBadAckWire) {
		t.Fatalf("hostile count: err = %v", err)
	}
}

// TestFeedbackChannelDelay: an ack sent at round r arrives exactly
// DelayRounds Advances later — not before, not after — and Advance with
// DelayRounds 0 delivers within the same round.
func TestFeedbackChannelDelay(t *testing.T) {
	for _, delay := range []int{0, 1, 3, 8} {
		fb := NewFeedbackChannel(FeedbackConfig{DelayRounds: delay}, 1)
		fb.Send(framing.Ack{Seq: 42, Decoded: []bool{true}})
		for round := 0; round <= delay; round++ {
			got := fb.Advance()
			if round < delay && len(got) != 0 {
				t.Fatalf("delay %d: ack arrived early at round %d", delay, round)
			}
			if round == delay {
				if len(got) != 1 || got[0].Seq != 42 || !got[0].Decoded[0] {
					t.Fatalf("delay %d: got %+v at due round", delay, got)
				}
			}
		}
		if got := fb.Advance(); len(got) != 0 {
			t.Fatalf("delay %d: duplicate delivery %+v", delay, got)
		}
	}
}

// TestFeedbackChannelJitterAndOrder: jittered deliveries land within
// [Delay, Delay+Jitter], and two acks sent the same round with equal
// realized delay arrive in send order.
func TestFeedbackChannelJitterAndOrder(t *testing.T) {
	fb := NewFeedbackChannel(FeedbackConfig{DelayRounds: 2, JitterRounds: 3}, 9)
	const acks = 200
	arrivals := 0
	for i := 0; i < acks; i++ {
		fb.Send(framing.Ack{Seq: uint32(i), Decoded: []bool{false}})
	}
	for round := 0; round <= 5; round++ {
		lastSeq := -1
		for _, a := range fb.Advance() {
			if round < 2 {
				t.Fatalf("ack %d arrived at round %d, below the base delay", a.Seq, round)
			}
			arrivals++
			// All acks were sent before any Advance, so within one round
			// the queue must deliver due entries FIFO: seqs strictly
			// increasing. (Different jitter draws may interleave across
			// rounds; that is legal.)
			if int(a.Seq) <= lastSeq {
				t.Fatalf("round %d delivered ack %d after ack %d — the pop reordered the queue", round, a.Seq, lastSeq)
			}
			lastSeq = int(a.Seq)
		}
	}
	if arrivals != acks {
		t.Fatalf("delivered %d/%d acks inside the jitter window", arrivals, acks)
	}
}

// TestFeedbackChannelLoss: the loss rate is honoured statistically and
// the counters reconcile: sent = lost + delivered + still queued.
func TestFeedbackChannelLoss(t *testing.T) {
	fb := NewFeedbackChannel(FeedbackConfig{DelayRounds: 1, Loss: 0.3}, 5)
	const acks = 20000
	delivered := 0
	for i := 0; i < acks; i++ {
		fb.Send(framing.Ack{Seq: uint32(i), Decoded: []bool{true}})
		delivered += len(fb.Advance())
	}
	delivered += len(fb.Advance())
	sent, lost, del := fb.Counters()
	if sent != acks || del != delivered || lost+del != acks {
		t.Fatalf("counters do not reconcile: sent=%d lost=%d delivered=%d (saw %d)", sent, lost, del, delivered)
	}
	if rate := float64(lost) / acks; rate < 0.27 || rate > 0.33 {
		t.Fatalf("loss rate %.3f, want ≈0.3", rate)
	}
}

// TestFeedbackConfigDefaults pins the derived ARQ parameters: RTO just
// past the earliest possible ack, backoff cap at 8×RTO (never below
// RTO), window of 8.
func TestFeedbackConfigDefaults(t *testing.T) {
	c := FeedbackConfig{DelayRounds: 8}
	if c.rto() != 10 || c.maxRTO() != 80 || c.window() != 8 {
		t.Fatalf("defaults: rto=%d maxRTO=%d window=%d", c.rto(), c.maxRTO(), c.window())
	}
	c = FeedbackConfig{DelayRounds: 4, RTO: 3, MaxRTO: 2, Window: 1}
	if c.rto() != 3 || c.maxRTO() != 3 || c.window() != 1 {
		t.Fatalf("explicit: rto=%d maxRTO=%d window=%d", c.rto(), c.maxRTO(), c.window())
	}
}

// TestEngineFeedbackDelayDelivers: with an 8-round ack delay the engine
// still delivers every flow intact, pays for the delay in rounds (not
// retransmissions — nack continuations are not timeouts), and reports
// reverse-channel traffic in the stats.
func TestEngineFeedbackDelayDelivers(t *testing.T) {
	cfg := engineParams()
	cfg.Feedback = &FeedbackConfig{DelayRounds: 8}
	e := NewEngine(cfg)
	defer e.Close()
	rng := rand.New(rand.NewSource(41))
	want := make(map[FlowID][]byte)
	for i := 0; i < 4; i++ {
		data := flowPayload(rng, 88)
		want[e.AddFlow(data, FlowConfig{Channel: newAWGNChannel(12, 0, int64(100+i))})] = data
	}
	results := e.Drain(0)
	if len(results) != 4 {
		t.Fatalf("resolved %d flows, want 4", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("flow %d: %v", r.ID, r.Err)
		}
		if !bytes.Equal(r.Datagram, want[r.ID]) {
			t.Fatalf("flow %d corrupted", r.ID)
		}
		if r.Stats.AcksSent == 0 {
			t.Fatalf("flow %d reported no reverse-channel traffic: %+v", r.ID, r.Stats)
		}
		if r.Stats.Frames <= r.Stats.Blocks {
			t.Fatalf("flow %d finished in %d rounds — the 8-round ack delay cannot have been paid", r.ID, r.Stats.Frames)
		}
	}
}

// TestEngineFeedbackLossDelivers: with 40% ack loss the retransmission
// timers carry the transfer — flows complete intact and the stats show
// both lost acks and timeout retransmissions.
func TestEngineFeedbackLossDelivers(t *testing.T) {
	cfg := engineParams()
	cfg.Feedback = &FeedbackConfig{DelayRounds: 1, Loss: 0.4}
	cfg.Seed = 6
	e := NewEngine(cfg)
	defer e.Close()
	rng := rand.New(rand.NewSource(43))
	want := make(map[FlowID][]byte)
	for i := 0; i < 6; i++ {
		data := flowPayload(rng, 110)
		want[e.AddFlow(data, FlowConfig{Channel: newAWGNChannel(14, 0, int64(200+i))})] = data
	}
	var acksLost, retx int
	for _, r := range e.Drain(0) {
		if r.Err != nil {
			t.Fatalf("flow %d: %v", r.ID, r.Err)
		}
		if !bytes.Equal(r.Datagram, want[r.ID]) {
			t.Fatalf("flow %d corrupted", r.ID)
		}
		acksLost += r.Stats.AcksLost
		retx += r.Stats.Retransmissions
	}
	if acksLost == 0 {
		t.Fatal("40% ack loss produced no lost acks")
	}
	if retx == 0 {
		t.Fatal("lost acks never fired a retransmission timeout")
	}
}

// TestEngineFeedbackWindow: a one-block in-flight window serializes a
// multi-block flow — it must still complete, and cannot have had more
// than one block racing (every frame carries at most one batch, so
// frames ≥ blocks even at high SNR).
func TestEngineFeedbackWindow(t *testing.T) {
	cfg := engineParams()
	cfg.Feedback = &FeedbackConfig{DelayRounds: 0, Window: 1}
	e := NewEngine(cfg)
	defer e.Close()
	data := flowPayload(rand.New(rand.NewSource(47)), 110) // 5 blocks
	id := e.AddFlow(data, FlowConfig{Channel: newAWGNChannel(20, 0, 9)})
	res := e.Drain(0)
	if len(res) != 1 || res[0].ID != id || res[0].Err != nil {
		t.Fatalf("unexpected results %+v", res)
	}
	if !bytes.Equal(res[0].Datagram, data) {
		t.Fatal("datagram corrupted")
	}
	if res[0].Stats.Frames < res[0].Stats.Blocks {
		t.Fatalf("window 1 flow used %d frames for %d blocks — blocks overlapped",
			res[0].Stats.Frames, res[0].Stats.Blocks)
	}
}

// TestEngineFeedbackTotalAckLoss: a reverse channel that drops every ack
// must end in ErrFlowBudget (the sender can never learn), not a hang —
// and backoff must have kicked in along the way.
func TestEngineFeedbackTotalAckLoss(t *testing.T) {
	cfg := engineParams()
	cfg.Feedback = &FeedbackConfig{DelayRounds: 1, Loss: 1.0}
	e := NewEngine(cfg)
	defer e.Close()
	e.AddFlow(flowPayload(rand.New(rand.NewSource(53)), 40), FlowConfig{
		Channel:   newAWGNChannel(20, 0, 10),
		MaxRounds: 64,
	})
	res := e.Drain(0)
	if len(res) != 1 || !errors.Is(res[0].Err, ErrFlowBudget) {
		t.Fatalf("want ErrFlowBudget, got %+v", res)
	}
	if res[0].Stats.Retransmissions == 0 {
		t.Fatal("total ack loss never fired a retransmission")
	}
}

// TestEngineFeedbackDiscardDelivers: discard-and-retry (type-I ARQ) is a
// legal receiver mode — at high SNR where single passes decode, flows
// still complete intact.
func TestEngineFeedbackDiscardDelivers(t *testing.T) {
	cfg := engineParams()
	cfg.Feedback = &FeedbackConfig{DelayRounds: 2, Discard: true}
	e := NewEngine(cfg)
	defer e.Close()
	data := flowPayload(rand.New(rand.NewSource(59)), 66)
	// Pace with bursts provisioned for 10 dB on a 22 dB channel: each
	// pass overshoots the decoding point, so standalone decoding works.
	e.AddFlow(data, FlowConfig{
		Channel: newAWGNChannel(22, 0, 11),
		Rate:    CapacityRate{SNREstimateDB: 10},
	})
	res := e.Drain(0)
	if len(res) != 1 || res[0].Err != nil {
		t.Fatalf("unexpected results %+v", res)
	}
	if !bytes.Equal(res[0].Datagram, data) {
		t.Fatal("datagram corrupted")
	}
}

// TestAckWireSelectiveVariant: sparse (or nearly complete) acks take the
// run-length selective variant, which beats the bitmap by an order of
// magnitude and still round-trips exactly.
func TestAckWireSelectiveVariant(t *testing.T) {
	dec := make([]bool, 512)
	dec[3], dec[4], dec[200] = true, true, true
	a := framing.Ack{Seq: 9, Decoded: dec}
	w := EncodeAck(a)
	if bitmap := 4 + 2 + (512+7)/8; len(w) >= bitmap {
		t.Fatalf("sparse 512-block ack took %d bytes, bitmap would be %d", len(w), bitmap)
	}
	got, err := DecodeAck(w)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != a.Seq || len(got.Decoded) != len(a.Decoded) {
		t.Fatalf("structure mismatch: %+v", got)
	}
	for i := range dec {
		if got.Decoded[i] != dec[i] {
			t.Fatalf("bit %d flipped", i)
		}
	}
	if !bytes.Equal(EncodeAck(got), w) {
		t.Fatal("selective encode∘decode is not the identity")
	}

	// The inverse-sparse case (all but a few decoded) is two runs.
	for i := range dec {
		dec[i] = true
	}
	dec[100] = false
	if w := EncodeAck(framing.Ack{Decoded: dec}); len(w) > 12 {
		t.Fatalf("nearly-complete 512-block ack took %d bytes", len(w))
	}
}

// TestAckWireSelectiveStrict: the selective parser rejects the encodings
// a strict canonical codec must never accept — the variant the encoder
// would not choose, non-maximal runs, runs past the block count, and
// padded varints inside the payload.
func TestAckWireSelectiveStrict(t *testing.T) {
	le := func(seq uint32) []byte {
		b := make([]byte, 4)
		binary.LittleEndian.PutUint32(b, seq)
		return b
	}
	uv := func(vs ...uint64) []byte {
		var b []byte
		for _, v := range vs {
			b = binary.AppendUvarint(b, v)
		}
		return b
	}
	bigBitmap := append(le(1), uv(512<<1)...)
	bigBitmap = append(bigBitmap, 0x01)
	bigBitmap = append(bigBitmap, make([]byte, 63)...)
	cases := map[string][]byte{
		// 512 blocks as an explicit 64-byte bitmap although the selective
		// form is smaller (one run at block 0): non-canonical variant.
		"non-canonical bitmap": bigBitmap,
		// 512 blocks, runs {0..0} and {1..1}: adjacent runs must merge.
		"non-maximal runs": append(le(1), uv(512<<1|1, 2, 0, 0, 0, 0)...),
		// 512 blocks, one run reaching past the end.
		"run past count": append(le(1), uv(512<<1|1, 1, 500, 60)...),
		// selective variant claiming more blocks than its cap.
		"selective too large": append(le(1), uv((1<<20)<<1|1, 0)...),
		// padded varint inside the payload (run count 0 as 0x80 0x00).
		"padded varint": append(append(le(1), uv(512<<1|1)...), 0x80, 0x00),
	}
	for name, w := range cases {
		if _, err := DecodeAck(w); !errors.Is(err, ErrBadAckWire) {
			t.Errorf("%s: err = %v, want ErrBadAckWire", name, err)
		}
	}
	// Sanity: the canonical selective form of the first case is accepted.
	ok := append(le(1), uv(512<<1|1, 1, 0, 0)...)
	a, err := DecodeAck(ok)
	if err != nil {
		t.Fatalf("canonical selective rejected: %v", err)
	}
	if !a.Decoded[0] || a.Decoded[1] {
		t.Fatal("canonical selective decoded wrong bits")
	}
}
