package link

import (
	"math/rand"
	"testing"
)

// BenchmarkLinkEngine measures aggregate multi-flow goodput: 32 concurrent
// 44-byte flows (two 192-bit code blocks each) at 12 dB with
// capacity-seeded pacing, driven to completion per iteration. The
// benchmark reports delivered goodput in bytes/sec and payload bits per
// channel symbol alongside ns/op; scripts/bench_check.sh gates ns/op
// regressions against the checked-in BENCH_*.json baseline.
func BenchmarkLinkEngine(b *testing.B) {
	const flows = 32
	const size = 44
	cfg := EngineConfig{
		Params:       linkParams(),
		MaxBlockBits: 192,
	}
	rng := rand.New(rand.NewSource(63))
	payloads := make([][]byte, flows)
	for i := range payloads {
		payloads[i] = flowPayload(rng, size)
	}
	e := NewEngine(cfg)
	defer e.Close()

	b.ReportAllocs()
	b.ResetTimer()
	var bytesDelivered, symbols int64
	for i := 0; i < b.N; i++ {
		for f := 0; f < flows; f++ {
			e.AddFlow(payloads[f], FlowConfig{
				Channel: newAWGNChannel(12, 0, int64(i*flows+f)),
				Rate:    CapacityRate{SNREstimateDB: 12},
			})
		}
		for _, r := range e.Drain(0) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			bytesDelivered += int64(len(r.Datagram))
			symbols += int64(r.Stats.SymbolsSent)
		}
	}
	b.ReportMetric(float64(bytesDelivered)/b.Elapsed().Seconds(), "goodput-B/s")
	b.ReportMetric(float64(bytesDelivered*8)/float64(symbols), "bits/sym")
}
