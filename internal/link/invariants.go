// Engine invariants: the conservation laws a correct multi-flow link
// engine obeys every round, no matter what the channel, the feedback
// path or the fault injector throws at it. The checker is wired behind
// EngineConfig.CheckInvariants and runs at the end of every Step on the
// engine thread; a violation panics with a diagnostic rather than
// letting a corrupted round propagate — soaks and chaos tests want the
// first broken law, not a downstream symptom.
package link

import "fmt"

// violate panics with a formatted invariant diagnostic.
func violate(round int, format string, args ...any) {
	panic(fmt.Sprintf("link: invariant violated at round %d: %s",
		round, fmt.Sprintf(format, args...)))
}

// checkInvariants asserts the engine's per-Step conservation laws:
//
//   - flow conservation: delivered + outaged + active == flows admitted;
//   - ack monotonicity: a block once acked at the sender never un-acks;
//   - ack honesty: an acked block's receiver copy has verified — except
//     under reverse-path corruption/truncation faults, which can forge a
//     parseable ack the sender has no way to distrust (the flow then
//     resolves as an honest ErrIncomplete outage);
//   - symbol accounting: per-block symbol counts are non-negative and
//     their sum equals the flow's total — no symbol is charged twice or
//     conjured from nowhere;
//   - ARQ window: transmitted-but-unacked blocks never exceed the
//     configured in-flight window;
//   - bounded receiver memory: no block's accumulator exceeds
//     maxAccumSymbols, and its IDs and symbols stay in lockstep;
//   - round budget: an active flow is always within its budget (at the
//     budget it must have resolved this Step).
func (e *Engine) checkInvariants(round int) {
	if got := e.delivered + e.outaged + len(e.flows); got != e.added {
		violate(round, "flow conservation: delivered(%d)+outaged(%d)+active(%d)=%d, want %d admitted",
			e.delivered, e.outaged, len(e.flows), got, e.added)
	}
	// Mangled-but-parseable acks can claim blocks the receiver never
	// decoded; with those faults off, sender belief must match receiver
	// truth.
	ackForgeable := e.cfg.Faults != nil &&
		(e.cfg.Faults.AckCorrupt > 0 || e.cfg.Faults.AckTruncate > 0)
	for _, fl := range e.flows {
		if fl.prevAcked == nil {
			fl.prevAcked = make([]bool, len(fl.snd.acked))
		}
		for i, acked := range fl.snd.acked {
			if fl.prevAcked[i] && !acked {
				violate(round, "flow %d block %d regressed from acked", fl.id, i)
			}
			if acked && !ackForgeable && !fl.rcv.blocks[i].got {
				violate(round, "flow %d block %d acked but not decoded at the receiver", fl.id, i)
			}
			fl.prevAcked[i] = acked
		}
		sum := 0
		for b, n := range fl.snd.perBlock {
			if n < 0 {
				violate(round, "flow %d block %d has negative symbol count %d", fl.id, b, n)
			}
			sum += n
		}
		if sum != fl.snd.symbols {
			violate(round, "flow %d per-block symbols sum to %d, total says %d",
				fl.id, sum, fl.snd.symbols)
		}
		if fl.fb != nil {
			window := e.cfg.Feedback.window()
			inflight := 0
			for b := range fl.arq {
				if !fl.snd.acked[b] && fl.arq[b].inflight {
					inflight++
				}
			}
			if inflight > window {
				violate(round, "flow %d has %d blocks in flight, window is %d",
					fl.id, inflight, window)
			}
		}
		for i := range fl.rcv.blocks {
			blk := &fl.rcv.blocks[i]
			if len(blk.ids) != len(blk.syms) {
				violate(round, "flow %d block %d accumulator skew: %d ids, %d symbols",
					fl.id, i, len(blk.ids), len(blk.syms))
			}
			if len(blk.ids) > maxAccumSymbols || len(blk.seen) > maxAccumSymbols {
				violate(round, "flow %d block %d accumulator past bound: %d ids, %d seen",
					fl.id, i, len(blk.ids), len(blk.seen))
			}
		}
		if fl.rounds > fl.maxRounds {
			violate(round, "flow %d at round %d of %d is still active",
				fl.id, fl.rounds, fl.maxRounds)
		}
	}
}
