package link

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// engineParams keeps engine tests fast: a narrow beam is plenty at the
// SNRs used here.
func engineParams() EngineConfig {
	return EngineConfig{
		Params:       linkParams(),
		MaxBlockBits: 192, // 22-byte payloads + CRC
		Shards:       4,
	}
}

// flowPayload builds a deterministic datagram of n bytes.
func flowPayload(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}

func TestEngineSingleFlow(t *testing.T) {
	e := NewEngine(engineParams())
	defer e.Close()
	data := []byte("one flow through the multi-flow engine")
	id := e.AddFlow(data, FlowConfig{Channel: newAWGNChannel(15, 0, 1)})
	results := e.Drain(0)
	if len(results) != 1 || results[0].ID != id {
		t.Fatalf("got %d results, want 1 for flow %d", len(results), id)
	}
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	if !bytes.Equal(results[0].Datagram, data) {
		t.Fatal("datagram corrupted")
	}
	if results[0].Stats.Rate <= 0 {
		t.Fatal("no rate recorded")
	}
}

// TestEngineStressManyFlows is the concurrency stress: 36 flows with
// mixed sizes and SNRs over lossy channels (per-flow frame erasure plus
// engine-level whole-frame loss), all in flight at once. Every datagram
// must arrive intact, and the codec pool must serve all of it from a
// bounded set of reused encoders/decoders. Run under -race in CI.
func TestEngineStressManyFlows(t *testing.T) {
	cfg := engineParams()
	cfg.FrameLoss = 0.05
	cfg.Seed = 99
	e := NewEngine(cfg)
	defer e.Close()

	rng := rand.New(rand.NewSource(7))
	const flows = 36
	want := make(map[FlowID][]byte, flows)
	// Sizes are multiples of the 22-byte block payload so every block is
	// 192 bits and the decoder-reuse bound below is exact.
	sizes := []int{22, 44, 88, 176}
	for i := 0; i < flows; i++ {
		data := flowPayload(rng, sizes[i%len(sizes)])
		snr := []float64{8, 12, 18, 25}[i%4]
		id := e.AddFlow(data, FlowConfig{
			Channel: newAWGNChannel(snr, 0.15, int64(1000+i)),
		})
		want[id] = data
	}

	results := e.Drain(0)
	if len(results) != flows {
		t.Fatalf("resolved %d flows, want %d", len(results), flows)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("flow %d: %v", r.ID, r.Err)
		}
		if !bytes.Equal(r.Datagram, want[r.ID]) {
			t.Fatalf("flow %d: datagram corrupted", r.ID)
		}
	}

	// Codec reuse: one block size in play, so the pool needs at most one
	// decoder and one encoder per shard no matter how many flows ran.
	st := e.PoolStats()
	shards := int64(cfg.Shards)
	if st.DecodersBuilt > shards {
		t.Errorf("pool built %d decoders for %d shards — blocks are not sharing them", st.DecodersBuilt, shards)
	}
	if st.EncodersBuilt > shards {
		t.Errorf("pool built %d encoders for %d shards", st.EncodersBuilt, shards)
	}

	// Steady state (the AllocsPerRun analogue for pooled codecs): a second
	// wave of flows must construct nothing new.
	for i := 0; i < 8; i++ {
		e.AddFlow(flowPayload(rng, 44), FlowConfig{Channel: newAWGNChannel(15, 0, int64(2000+i))})
	}
	for _, r := range e.Drain(0) {
		if r.Err != nil {
			t.Fatalf("second wave flow %d: %v", r.ID, r.Err)
		}
	}
	st2 := e.PoolStats()
	if st2 != st {
		t.Errorf("second wave built codecs: %+v -> %+v", st, st2)
	}
}

// TestEngineFlowChurn: flows arrive as others finish; the engine must
// keep multiplexing correctly through membership changes.
func TestEngineFlowChurn(t *testing.T) {
	cfg := engineParams()
	e := NewEngine(cfg)
	defer e.Close()

	rng := rand.New(rand.NewSource(31))
	const total = 24
	const concurrent = 6
	want := make(map[FlowID][]byte, total)
	admitted := 0
	admit := func() {
		data := flowPayload(rng, 20+rng.Intn(80)) // ragged sizes: mixed block lengths
		id := e.AddFlow(data, FlowConfig{
			Channel: newAWGNChannel(10+float64(admitted%3)*5, 0.1, int64(admitted)),
		})
		want[id] = data
		admitted++
	}
	for i := 0; i < concurrent; i++ {
		admit()
	}
	delivered := 0
	for delivered < total {
		for _, r := range e.Step() {
			if r.Err != nil {
				t.Fatalf("flow %d: %v", r.ID, r.Err)
			}
			if !bytes.Equal(r.Datagram, want[r.ID]) {
				t.Fatalf("flow %d: datagram corrupted", r.ID)
			}
			delivered++
			if admitted < total {
				admit()
			}
		}
	}
}

// TestEngineBackpressure: a frame budget far below the per-round demand
// must still complete every flow — excluded flows wait instead of
// starving or spinning.
func TestEngineBackpressure(t *testing.T) {
	cfg := engineParams()
	cfg.FrameSymbols = 64 // a handful of batches per shared frame
	e := NewEngine(cfg)
	defer e.Close()
	rng := rand.New(rand.NewSource(5))
	want := make(map[FlowID][]byte)
	for i := 0; i < 8; i++ {
		data := flowPayload(rng, 66)
		want[e.AddFlow(data, FlowConfig{Channel: newAWGNChannel(15, 0, int64(i))})] = data
	}
	results := e.Drain(0)
	if len(results) != 8 {
		t.Fatalf("resolved %d flows, want 8", len(results))
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("flow %d: %v", r.ID, r.Err)
		}
		if !bytes.Equal(r.Datagram, want[r.ID]) {
			t.Fatalf("flow %d corrupted", r.ID)
		}
	}
}

// TestEngineGiveUp: a hopeless channel exhausts the flow budget with a
// typed error instead of spinning forever.
func TestEngineGiveUp(t *testing.T) {
	cfg := engineParams()
	e := NewEngine(cfg)
	defer e.Close()
	e.AddFlow(flowPayload(rand.New(rand.NewSource(1)), 40), FlowConfig{
		Channel:   newAWGNChannel(-25, 0, 3),
		MaxRounds: 10,
	})
	results := e.Drain(0)
	if len(results) != 1 {
		t.Fatalf("resolved %d flows, want 1", len(results))
	}
	if !errors.Is(results[0].Err, ErrFlowBudget) {
		t.Fatalf("err = %v, want ErrFlowBudget", results[0].Err)
	}
}

// TestEngineZeroLengthFlow: the degenerate nil datagram flows through the
// engine as a single CRC-only block.
func TestEngineZeroLengthFlow(t *testing.T) {
	e := NewEngine(engineParams())
	defer e.Close()
	e.AddFlow(nil, FlowConfig{Channel: newAWGNChannel(15, 0, 8)})
	results := e.Drain(0)
	if len(results) != 1 {
		t.Fatalf("resolved %d flows, want 1", len(results))
	}
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
	if len(results[0].Datagram) != 0 {
		t.Fatalf("zero-length flow decoded to %d bytes", len(results[0].Datagram))
	}
}

// TestEngineCapacityRate: the capacity-seeded rate policy resolves a flow
// in far fewer scheduling rounds than one-subpass-at-a-time pacing, at
// comparable symbol cost — the §5 schedule as a rate-adaptation hook.
func TestEngineCapacityRate(t *testing.T) {
	run := func(rate RatePolicy) Stats {
		e := NewEngine(engineParams())
		defer e.Close()
		data := flowPayload(rand.New(rand.NewSource(17)), 88)
		e.AddFlow(data, FlowConfig{Channel: newAWGNChannel(12, 0, 21), Rate: rate})
		res := e.Drain(0)
		if len(res) != 1 || res[0].Err != nil {
			t.Fatalf("rate %T: %+v", rate, res)
		}
		if !bytes.Equal(res[0].Datagram, data) {
			t.Fatalf("rate %T: corrupted", rate)
		}
		return res[0].Stats
	}
	fixed := run(FixedRate(1))
	burst := run(CapacityRate{SNREstimateDB: 12})
	if burst.Frames >= fixed.Frames {
		t.Errorf("capacity pacing used %d rounds, fixed used %d — burst should need fewer", burst.Frames, fixed.Frames)
	}
	if burst.SymbolsSent > 3*fixed.SymbolsSent {
		t.Errorf("capacity pacing spent %d symbols vs %d fixed — wildly overshooting", burst.SymbolsSent, fixed.SymbolsSent)
	}
}

// TestShardOfSpreadsBlocks guards the routing hash: the blocks of a
// single flow (a large file over few flows) must spread across the pool,
// not pile onto one shard.
func TestShardOfSpreadsBlocks(t *testing.T) {
	const shards = 8
	for flow := FlowID(0); flow < 4; flow++ {
		seen := make(map[int]bool)
		for b := 0; b < 64; b++ {
			seen[shardOf(flow, b)%shards] = true
		}
		if len(seen) < shards-1 {
			t.Fatalf("flow %d: 64 blocks landed on only %d/%d shards", flow, len(seen), shards)
		}
	}
}
