// Deficit-weighted fair queuing for the multi-flow engine. The legacy
// admission order — a plain round-robin cursor over the flows — is fair
// in *visits* but not in *airtime*: a flow whose rate policy opens with a
// capacity-sized burst can fill the shared frame for rounds on end, so a
// handful of elephants starve every mouse behind them. The DWFQ
// scheduler replaces visit-fairness with spend-fairness: each flow earns
// a per-round symbol credit proportional to its weight, admission is
// clamped to the credit a flow has actually accumulated, and — under
// half-duplex accounting — the reverse-channel airtime a flow's acks
// consume is debited from the same account, so the §6 "free ack"
// idealization cannot hide a fairness cost (cf. the in-band full-duplex
// analysis in PAPERS.md, where reverse airtime is the first-order term).
//
// Priority classes are strict: a round serves every outstanding
// higher-class flow before any lower-class one (and can therefore starve
// lower classes — that is what strict priority means; use weights within
// a class for proportional sharing). Within a class, flows carrying a
// deadline are served earliest-deadline-first ahead of the rest, which
// rotate round-robin; credit accounting applies to all of them alike.
//
// The legacy round-robin path is untouched and remains the default: the
// golden scenario matrix pins it byte for byte, and an engine without an
// EngineConfig.Scheduler never executes any code in this file.
package link

import (
	"errors"
	"sort"
)

// ErrDeadline reports a flow that missed its scheduling deadline
// (FlowConfig.Deadline) before every code block decoded.
var ErrDeadline = errors.New("link: flow missed its scheduling deadline")

// SchedulerConfig selects deficit-weighted fair queuing for an engine's
// admission phase (EngineConfig.Scheduler; nil keeps the legacy
// round-robin admission bit for bit).
type SchedulerConfig struct {
	// Quantum is the symbol credit one unit of flow weight earns per
	// round (0 ⇒ 256). A flow of weight w accrues w·Quantum credit each
	// round and may admit batches while its balance covers their symbol
	// cost, so over time every backlogged flow's spend converges to its
	// weight share regardless of how greedy its rate policy bursts.
	Quantum int
	// Burst caps a flow's accumulated credit, in quanta of its own
	// earning rate (0 ⇒ 4): an idle or backpressured flow may bank at
	// most Burst rounds of credit, bounding the burst it can dump into
	// one frame when it wakes.
	Burst int
}

func (c SchedulerConfig) quantum() int {
	if c.Quantum <= 0 {
		return 256
	}
	return c.Quantum
}

func (c SchedulerConfig) burst() int {
	if c.Burst <= 0 {
		return 4
	}
	return c.Burst
}

// SchedulerStats exposes the DWFQ scheduler's accounting — credit
// granted and spent, reverse airtime charged, deadline misses, and the
// credit currently outstanding across active flows. Zero when the
// engine runs the legacy round-robin admission.
type SchedulerStats struct {
	// Flows is the number of active flows under the scheduler.
	Flows int
	// QuantaGranted is the total symbol credit granted across all flows
	// and rounds.
	QuantaGranted int64
	// SymbolsAdmitted is the forward symbols charged against flow
	// credits.
	SymbolsAdmitted int64
	// AckSymbolsCharged is the half-duplex reverse airtime debited from
	// the flows that caused it.
	AckSymbolsCharged int64
	// DeadlineMisses counts flows resolved with ErrDeadline.
	DeadlineMisses int64
	// DeficitOutstanding is the summed credit balance of the active
	// flows at snapshot time (negative balances — flows paying back ack
	// airtime — included).
	DeficitOutstanding int64
}

// dwfq is the engine-side scheduler state: configuration, counters, and
// a reusable visit-order scratch slice.
type dwfq struct {
	cfg   SchedulerConfig
	stats SchedulerStats
	order []*engineFlow
}

// visitOrder ranks the active flows for one round: strict priority
// first, then — within a class — deadline flows earliest-deadline-first
// ahead of the rest, which rotate by round so equal flows take turns at
// the front. The ordering decides who gets first claim on the shared
// frame budget; the deficit accounts decide how much anyone may spend.
func (s *dwfq) visitOrder(flows []*engineFlow, round int) []*engineFlow {
	s.order = append(s.order[:0], flows...)
	sort.SliceStable(s.order, func(i, j int) bool {
		a, b := s.order[i], s.order[j]
		if a.prio != b.prio {
			return a.prio > b.prio
		}
		ad, bd := a.deadline > 0, b.deadline > 0
		if ad != bd {
			return ad // deadline flows lead their class
		}
		if ad && bd {
			ra, rb := a.deadline-a.rounds, b.deadline-b.rounds
			if ra != rb {
				return ra < rb
			}
			return a.id < b.id
		}
		return false // non-deadline peers keep admission order; rotated below
	})
	// Rotate each class's non-deadline run by the round number so the
	// head-of-class position circulates (the deficit accounts do the
	// heavy fairness lifting; rotation just breaks head-of-line ties).
	for lo := 0; lo < len(s.order); {
		hi := lo
		for hi < len(s.order) &&
			s.order[hi].prio == s.order[lo].prio && s.order[hi].deadline == 0 {
			hi++
		}
		if n := hi - lo; n > 1 {
			rotateFlows(s.order[lo:hi], round%n)
			lo = hi
			continue
		}
		if hi == lo {
			lo++
		} else {
			lo = hi
		}
	}
	return s.order
}

// rotateFlows rotates fl left by k (0 ≤ k < len(fl)).
func rotateFlows(fl []*engineFlow, k int) {
	if k == 0 {
		return
	}
	tmp := make([]*engineFlow, k)
	copy(tmp, fl[:k])
	copy(fl, fl[k:])
	copy(fl[len(fl)-k:], tmp)
}

// scheduleDWFQ is the engine's deficit-weighted admission phase: the
// counterpart of Step's round-robin loop when EngineConfig.Scheduler is
// set. Every active flow ages and earns credit every round (so
// deadlines measure wall rounds, not service opportunities); admission
// walks the priority/deadline/rotation order and clamps each flow's
// batches to its credit balance and the remaining frame budget. ARQ
// gating, rate policies and pause pacing behave exactly as under
// round-robin — only the admission order and the per-flow spend cap
// differ.
func (e *Engine) scheduleDWFQ(round int) {
	s := e.sched
	budget := e.cfg.frameSymbols()
	symbols := 0
	quantum := int64(s.cfg.quantum())
	burst := int64(s.cfg.burst())
	for _, fl := range s.visitOrder(e.flows, round) {
		fl.rounds++
		grant := quantum * int64(fl.weight)
		fl.deficit += grant
		s.stats.QuantaGranted += grant
		if cap := burst * grant; fl.deficit > cap {
			fl.deficit = cap
		}
		if symbols >= budget {
			continue // frame full: the flow keeps its credit for next round
		}
		inFrame := false
		window, inflight := 0, 0
		if fl.fb != nil {
			window = e.cfg.Feedback.window()
			for b := range fl.snd.blocks {
				if !fl.snd.acked[b] && fl.arq[b].inflight {
					inflight++
				}
			}
		}
		for b := range fl.snd.blocks {
			if fl.snd.acked[b] {
				continue
			}
			arqTimeout := false
			if fl.fb != nil {
				st := &fl.arq[b]
				if !st.inflight && inflight >= window {
					continue // in-flight window full; this block waits
				}
				send, timeout := st.advance()
				if !send {
					continue
				}
				arqTimeout = timeout
			}
			sched := fl.snd.scheds[b]
			sub := maxInt(sched.SymbolsPerPass()/sched.Subpasses(), 1)
			blockBits := fl.snd.blocks[b].NumBits()
			want := fl.rate.SubpassBudget(blockBits, sub, fl.snd.symbolsFor(b))
			if want < 1 {
				continue // policy veto: an ARQ grant stays due, uncommitted
			}
			// The deficit clamp is where fairness bites: however large a
			// burst the rate policy asks for, the flow transmits only what
			// its credit covers; the rest stays due and is retried as the
			// account refills.
			if maxWant := int(fl.deficit / int64(sub)); want > maxWant {
				want = maxWant
			}
			if want < 1 {
				continue // credit exhausted (or in ack-airtime debt)
			}
			if fl.fb != nil {
				st := &fl.arq[b]
				if !st.inflight {
					inflight++
				}
				st.commit(round, arqTimeout)
			}
			if !inFrame && fl.pause != nil && fl.burstLeft == 0 {
				fl.burstLeft = maxInt(fl.pause.BurstFrames(
					fl.snd.blocks[0].NumBits(),
					maxInt(perFrameSymbols(fl.snd), 1),
					fl.snd.SymbolsSent()), 1)
				fl.pauses++
			}
			batch := fl.snd.batchIDs(b, want)
			fl.snd.countSymbols(len(batch.IDs))
			fl.snd.countSymbolsFor(b, len(batch.IDs))
			fl.deficit -= int64(len(batch.IDs))
			s.stats.SymbolsAdmitted += int64(len(batch.IDs))
			symbols += len(batch.IDs)
			inFrame = true
			e.items = append(e.items, txItem{fl: fl, batch: batch})
			if symbols >= budget {
				break
			}
		}
		if inFrame {
			fl.frames++
			fl.tx = true
		}
	}
}
