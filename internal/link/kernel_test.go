package link

import (
	"bytes"
	"math/rand"
	"testing"

	"spinal/internal/core"
)

// TestEngineKernelEquivalence pins the kernel plumbing at the link
// layer: an engine whose flows decode on the fixed-point kernel must
// produce the same deliveries and the same wire trajectory — rounds,
// symbols, rate — as one pinned to the float64 reference path, frame
// for frame. The engine itself never inspects Params.Kernel; this test
// exists so a regression in that pass-through (or a kernel-dependent
// outcome sneaking into the codec pool) fails here, next to the engine,
// rather than only in the sim golden soak.
func TestEngineKernelEquivalence(t *testing.T) {
	run := func(kernel core.Kernel) []FlowResult {
		cfg := engineParams()
		cfg.Params.Kernel = kernel
		cfg.Seed = 11
		e := NewEngine(cfg)
		defer e.Close()
		rng := rand.New(rand.NewSource(17))
		for i := 0; i < 6; i++ {
			e.AddFlow(flowPayload(rng, 20+rng.Intn(60)), FlowConfig{
				Channel: newAWGNChannel(10+float64(i), 0.05, int64(i+1)),
			})
		}
		return e.Drain(0)
	}

	rf := run(core.KernelFloat)
	rq := run(core.KernelQuantized)
	if len(rf) != len(rq) {
		t.Fatalf("float delivered %d flows, quantized %d", len(rf), len(rq))
	}
	for i := range rf {
		f, q := rf[i], rq[i]
		if f.ID != q.ID || f.Err != nil || q.Err != nil {
			t.Fatalf("flow %d: float err=%v quantized err=%v", f.ID, f.Err, q.Err)
		}
		if !bytes.Equal(f.Datagram, q.Datagram) {
			t.Fatalf("flow %d: datagrams differ across kernels", f.ID)
		}
		if f.Stats != q.Stats {
			t.Fatalf("flow %d: wire trajectory diverged across kernels\nfloat:     %+v\nquantized: %+v",
				f.ID, f.Stats, q.Stats)
		}
	}
}
