package link

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"spinal/internal/channel"
)

// TestTrackingRateBudgetContract is the backpressure property: for any
// block geometry and history, the symbols a TrackingRate requests in one
// round never exceed MaxRoundSymbols, and the request is always ≥ 1
// subpass (starvation-free).
func TestTrackingRateBudgetContract(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 5000; trial++ {
		tr := NewTrackingRate(-15 + rng.Float64()*60)
		tr.MaxRoundSymbols = 1 + rng.Intn(8192)
		// Walk the estimate around with random observations first.
		for i := 0; i < rng.Intn(8); i++ {
			tr.ObserveDecode(1+rng.Intn(2048), 1+rng.Intn(20000))
		}
		blockBits := 1 + rng.Intn(4096)
		sub := 1 + rng.Intn(64)
		sent := rng.Intn(100000)
		n := tr.SubpassBudget(blockBits, sub, sent)
		if n < 1 {
			t.Fatalf("budget %d < 1 (bits=%d sub=%d sent=%d)", n, blockBits, sub, sent)
		}
		if n > 1 && n*sub > tr.MaxRoundSymbols {
			t.Fatalf("budget %d×%d = %d symbols exceeds cap %d",
				n, sub, n*sub, tr.MaxRoundSymbols)
		}
	}
}

// TestTrackingRateAdaptsDown: blocks that drag far past their burst pull
// the SNR estimate down; blocks decoding at the burst probe it up.
func TestTrackingRateAdaptsDown(t *testing.T) {
	tr := NewTrackingRate(20)
	for i := 0; i < 10; i++ {
		tr.ObserveDecode(192, 300) // ≈0.64 b/sym ⇒ channel near 0 dB
	}
	if tr.EstimateDB() > 5 {
		t.Fatalf("estimate stuck at %.1f dB after slow decodes", tr.EstimateDB())
	}

	up := NewTrackingRate(5)
	// Decoding right at the 5 dB burst size repeatedly ⇒ probe upward.
	for i := 0; i < 10; i++ {
		up.ObserveDecode(192, 93) // ≈2.06 b/sym ≈ 0.8·C(5 dB)
	}
	if up.EstimateDB() <= 5 {
		t.Fatalf("estimate did not probe up: %.1f dB", up.EstimateDB())
	}
}

// TestTrackingRateIgnoresDegenerateObservations: zero/negative inputs
// must not move the estimate or divide by zero.
func TestTrackingRateIgnoresDegenerateObservations(t *testing.T) {
	tr := NewTrackingRate(12)
	tr.ObserveDecode(0, 100)
	tr.ObserveDecode(-5, 100)
	tr.ObserveDecode(192, 0)
	tr.ObserveDecode(192, -3)
	if tr.EstimateDB() != 12 {
		t.Fatalf("degenerate observations moved the estimate to %.1f", tr.EstimateDB())
	}
}

// TestRetxTimerBackoffBounds is the ARQ backoff property: under any
// interleaving of round advances, nacks, and rate-policy vetoes
// (granted transmissions the policy declines to fill), the
// retransmission timeout stays within [base, maxRTO], the countdown
// never exceeds the current timeout, retransmissions are counted only
// for committed timeouts, and a vetoed grant stays due — it leaves no
// phantom timer state behind.
func TestRetxTimerBackoffBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 2000; trial++ {
		base := 1 + rng.Intn(10)
		maxRTO := base + rng.Intn(60)
		tm := newRetxTimer(base, maxRTO)
		retxSeen := 0
		vetoed := false
		for step := 0; step < 200; step++ {
			if rng.Intn(4) == 0 {
				tm.nack()
			}
			send, timeout := tm.advance()
			if tm.rto < base || tm.rto > maxRTO {
				t.Fatalf("rto %d outside [%d, %d] at step %d", tm.rto, base, maxRTO, step)
			}
			if tm.timer < 0 || tm.timer > tm.rto {
				t.Fatalf("timer %d outside [0, rto=%d] at step %d", tm.timer, tm.rto, step)
			}
			if timeout && !send {
				t.Fatal("timeout reported without a grant")
			}
			if vetoed && !send {
				t.Fatalf("vetoed grant vanished at step %d", step)
			}
			vetoed = false
			if send {
				if rng.Intn(3) == 0 {
					vetoed = true // policy said SubpassBudget 0: nothing flew
				} else {
					tm.commit(step, timeout)
					if timeout {
						retxSeen++
					}
					if tm.timer != tm.rto {
						t.Fatalf("commit did not re-arm: timer %d, rto %d", tm.timer, tm.rto)
					}
					if tm.lastTx != step {
						t.Fatalf("commit recorded round %d, want %d", tm.lastTx, step)
					}
				}
			}
			if tm.retx != retxSeen {
				t.Fatalf("retx counter %d, observed %d committed timeouts", tm.retx, retxSeen)
			}
		}
	}
}

// TestChaseCombiningNeverWorse is the HARQ property: at an equal symbol
// budget, chase combining (accumulate observations across passes) never
// decreases decode probability versus discard-and-retry (decode each
// retry standalone) — and at an SNR where single passes are marginal,
// it is strictly better. Both receivers see byte-identical noisy passes.
func TestChaseCombiningNeverWorse(t *testing.T) {
	p := linkParams()
	const trials = 40
	const passes = 24
	chaseWins, discardWins := 0, 0
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(900 + trial)))
		data := flowPayload(rng, 12)
		ch := channel.NewAWGN(8, int64(7000+trial)) // marginal: one pass never suffices
		snd := NewSender(data, p, 0)
		chase := NewReceiver(p)
		discard := NewReceiver(p)
		for pass := 0; pass < passes; pass++ {
			f := snd.NextFrame()
			if f == nil {
				break
			}
			rx := ch.Transmit(f.Symbols())
			f.Batches = rebatch(f.Batches, rx)
			if _, err := chase.HandleFrame(f); err != nil && !errors.Is(err, ErrStaleFrame) {
				t.Fatal(err)
			}
			// The discard receiver forgets symbols that already failed an
			// attempt before each new pass, exactly as the engine's
			// Discard mode does.
			for b := range discard.blocks {
				discard.dropStale(b)
			}
			if _, err := discard.HandleFrame(f); err != nil && !errors.Is(err, ErrStaleFrame) {
				t.Fatal(err)
			}
		}
		if chase.Complete() {
			chaseWins++
			got, err := chase.Datagram()
			if err != nil || !bytes.Equal(got, data) {
				t.Fatalf("trial %d: chase delivered corrupt data", trial)
			}
		}
		if discard.Complete() {
			discardWins++
		}
	}
	if chaseWins < discardWins {
		t.Fatalf("chase combining decoded %d/%d, discard-and-retry %d/%d — combining made things worse",
			chaseWins, trials, discardWins, trials)
	}
	if chaseWins == discardWins {
		t.Fatalf("no separation at a marginal SNR (both %d/%d) — the comparison has no teeth", chaseWins, trials)
	}
}

// TestTrackingRateConvergesUnderFeedbackDelay: with a fixed 4-round ack
// delay, every RateObserver report arrives late (and none arrives at
// decode time, the instant-feedback assumption) — yet a TrackingRate
// seeded 15 dB below the true channel must still climb toward it while
// every datagram arrives intact.
func TestTrackingRateConvergesUnderFeedbackDelay(t *testing.T) {
	cfg := engineParams()
	// Window 1 serializes the blocks, so each burst is provisioned from
	// the estimate as updated by the previous block's (delayed) report —
	// the cleanest view of the closed loop running a full RTT behind.
	cfg.Feedback = &FeedbackConfig{DelayRounds: 4, Window: 1}
	cfg.Seed = 71
	e := NewEngine(cfg)
	defer e.Close()
	rng := rand.New(rand.NewSource(73))
	tr := NewTrackingRate(0) // true channel: 15 dB
	// Three consecutive datagrams from one sender station: the policy is
	// per-station state and keeps learning across them.
	for round := 0; round < 3; round++ {
		data := flowPayload(rng, 154) // 7 blocks → 7 delayed observations each
		e.AddFlow(data, FlowConfig{
			Channel: newAWGNChannel(15, 0, int64(300+round)),
			Rate:    tr,
		})
		res := e.Drain(0)
		if len(res) != 1 || res[0].Err != nil {
			t.Fatalf("round %d: %+v", round, res)
		}
		if !bytes.Equal(res[0].Datagram, data) {
			t.Fatalf("round %d: corrupted", round)
		}
	}
	if est := tr.EstimateDB(); est < 8 {
		t.Fatalf("estimate stuck at %.1f dB after 21 delayed observations of a 15 dB channel", est)
	}
}

// modelChannel adapts a channel.Model to link.Channel for engine tests.
type modelChannel struct{ m channel.Model }

func (c modelChannel) Apply(sym []complex128) []complex128 { return c.m.Transmit(sym) }

// TestEngineTrackingRateDelivers: a tracking-paced flow over a bursty
// Gilbert–Elliott channel completes intact, and the engine's decode
// feedback loop (RateObserver plumbing) actually moved the estimate.
func TestEngineTrackingRateDelivers(t *testing.T) {
	e := NewEngine(engineParams())
	defer e.Close()
	data := flowPayload(rand.New(rand.NewSource(23)), 132)
	tr := NewTrackingRate(18)
	id := e.AddFlow(data, FlowConfig{
		Channel: modelChannel{channel.NewGilbertElliott(18, 2, 0.004, 0.016, 77)},
		Rate:    tr,
	})
	res := e.Drain(0)
	if len(res) != 1 || res[0].ID != id {
		t.Fatalf("unexpected results %+v", res)
	}
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	if !bytes.Equal(res[0].Datagram, data) {
		t.Fatal("datagram corrupted")
	}
	if tr.EstimateDB() == 18 {
		t.Fatal("engine never fed decode observations back to the policy")
	}
}

// TestEngineSetFlowChannel: swapping a flow's medium mid-flight (handoff)
// keeps the transfer correct, and the swap reports liveness accurately.
func TestEngineSetFlowChannel(t *testing.T) {
	e := NewEngine(engineParams())
	defer e.Close()
	data := flowPayload(rand.New(rand.NewSource(29)), 88)
	// Start on a hopeless channel, then hand off to a good one.
	id := e.AddFlow(data, FlowConfig{Channel: newAWGNChannel(-20, 0, 31)})
	for i := 0; i < 4; i++ {
		if res := e.Step(); len(res) != 0 {
			t.Fatalf("flow resolved on a -20 dB channel: %+v", res)
		}
	}
	if !e.SetFlowChannel(id, newAWGNChannel(18, 0, 32)) {
		t.Fatal("active flow not found for channel swap")
	}
	res := e.Drain(0)
	if len(res) != 1 || res[0].Err != nil {
		t.Fatalf("post-handoff drain: %+v", res)
	}
	if !bytes.Equal(res[0].Datagram, data) {
		t.Fatal("datagram corrupted across handoff")
	}
	if e.SetFlowChannel(id, nil) {
		t.Fatal("resolved flow reported as active")
	}
}

// TestWireRoundTrip: EncodeFrame/DecodeFrame are inverses on real frames.
func TestWireRoundTrip(t *testing.T) {
	snd := NewSender([]byte("wire round trip with several blocks of data"), linkParams(), 128)
	f := snd.NextFrame()
	got, err := DecodeFrame(EncodeFrame(f))
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != f.Seq || len(got.BlockBits) != len(f.BlockBits) || len(got.Batches) != len(f.Batches) {
		t.Fatalf("structure mismatch: %+v vs %+v", got, f)
	}
	for i := range f.BlockBits {
		if got.BlockBits[i] != f.BlockBits[i] {
			t.Fatal("layout mismatch")
		}
	}
	for i := range f.Batches {
		a, b := f.Batches[i], got.Batches[i]
		if a.Block != b.Block || len(a.IDs) != len(b.IDs) || len(a.Symbols) != len(b.Symbols) {
			t.Fatal("batch structure mismatch")
		}
		for j := range a.IDs {
			if a.IDs[j] != b.IDs[j] {
				t.Fatal("ID mismatch")
			}
		}
		for j := range a.Symbols {
			if a.Symbols[j] != b.Symbols[j] {
				t.Fatal("symbol mismatch")
			}
		}
	}
	if EncodeFrame(nil) != nil {
		t.Fatal("nil frame encoded to bytes")
	}
}

// TestWireRejectsGarbage: truncations and hostile length prefixes are
// errors, never panics or huge allocations.
func TestWireRejectsGarbage(t *testing.T) {
	full := EncodeFrame(NewSender([]byte("truncate me"), linkParams(), 0).NextFrame())
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := DecodeFrame(full[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := DecodeFrame(append(append([]byte(nil), full...), 0xff)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	// A length prefix claiming 2^40 symbols in a 20-byte input.
	hostile := []byte{0, 0, 0, 0, 0x01, 0x02, 0x01, 0x00, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x03}
	if _, err := DecodeFrame(hostile); err == nil {
		t.Fatal("hostile length prefix accepted")
	}
}

// TestHandleFrameBadSymbolID: out-of-spine chunk indices are rejected
// with the typed error instead of panicking the decoder replay.
func TestHandleFrameBadSymbolID(t *testing.T) {
	p := linkParams()
	rcv := NewReceiver(p)
	f := NewSender([]byte("bad ids"), p, 0).NextFrame()
	f.Batches[0].IDs[0].Chunk = 99999
	if _, err := rcv.HandleFrame(f); err == nil {
		t.Fatal("out-of-range chunk accepted")
	}
	f2 := NewSender([]byte("bad ids"), p, 0).NextFrame()
	f2.Batches[0].IDs[0].Chunk = -1
	if _, err := rcv.HandleFrame(f2); err == nil {
		t.Fatal("negative chunk accepted")
	}
}
