package link

import (
	"math"

	"spinal/internal/capacity"
	"spinal/internal/core"
)

// PausePolicy decides how many frames the sender transmits before pausing
// for receiver feedback — the §6 problem of rateless operation over
// half-duplex radios (a receiver cannot ACK while the sender holds the
// medium, so pausing too often wastes turnaround time and pausing too
// rarely wastes symbols past the decodable point).
type PausePolicy interface {
	// BurstFrames returns how many frames to send before the next pause,
	// given the block size in bits, the per-frame symbol count for the
	// block, and how many symbols have been sent so far.
	BurstFrames(blockBits, symbolsPerFrame, symbolsSent int) int
}

// CapacityPolicy sizes the first burst so the receiver is likely to be
// just past its decoding point — blockBits/(margin·C(est)) symbols — and
// then polls with geometrically growing increments. This is the natural
// heuristic the paper's §6 discussion implies (their refined solution is
// follow-on work).
type CapacityPolicy struct {
	// SNREstimateDB is the sender's (possibly stale) channel estimate.
	SNREstimateDB float64
	// Margin derates capacity for the code's gap; 0 means 0.8.
	Margin float64
	// Growth is the post-first-burst increment as a fraction of the
	// initial estimate; 0 means 0.25.
	Growth float64
}

// BurstFrames implements PausePolicy.
func (p CapacityPolicy) BurstFrames(blockBits, symbolsPerFrame, symbolsSent int) int {
	margin := p.Margin
	if margin == 0 {
		margin = 0.8
	}
	growth := p.Growth
	if growth == 0 {
		growth = 0.25
	}
	c := capacity.AWGNdB(p.SNREstimateDB) * margin
	if c < 0.05 {
		c = 0.05
	}
	target := float64(blockBits) / c
	var want float64
	if float64(symbolsSent) < target {
		want = target - float64(symbolsSent)
	} else {
		want = target * growth
	}
	frames := int(math.Ceil(want / float64(symbolsPerFrame)))
	if frames < 1 {
		frames = 1
	}
	return frames
}

// EveryFrame pauses after every frame (the conservative default used by
// Transfer when no policy is given).
type EveryFrame struct{}

// BurstFrames implements PausePolicy.
func (EveryFrame) BurstFrames(int, int, int) int { return 1 }

// TransferWithPolicy is Transfer with an explicit pause policy: the
// sender transmits policy-sized bursts of frames and processes one ACK
// per burst. It returns the received datagram, statistics, and the
// number of pauses (feedback turnarounds) used.
//
// It is a thin veneer over the Engine's pause-paced flow path
// (FlowConfig.Pause) — one flow, an unbounded frame budget, the same
// burst/turnaround semantics the multi-flow scheduler applies — so the
// half-duplex pacing logic exists exactly once.
func TransferWithPolicy(datagram []byte, p core.Params, maxBlockBits int, ch Channel, policy PausePolicy, maxFrames int) ([]byte, Stats, int, error) {
	if maxFrames == 0 {
		maxFrames = 10000
	}
	if policy == nil {
		policy = EveryFrame{}
	}
	e := NewEngine(EngineConfig{
		Params:       p,
		MaxBlockBits: maxBlockBits,
		// A lone flow must never be backpressured out of its own frame.
		FrameSymbols: 1 << 30,
		MaxRounds:    maxFrames,
	})
	defer e.Close()
	e.AddFlow(datagram, FlowConfig{Channel: ch, Pause: policy})
	r := e.Drain(0)[0]
	return r.Datagram, r.Stats, r.Stats.Pauses, r.Err
}

// perFrameSymbols estimates the symbols the next frame will carry (one
// subpass per unacknowledged block).
func perFrameSymbols(s *Sender) int {
	n := 0
	for i := range s.blocks {
		if !s.acked[i] {
			n += s.scheds[i].SymbolsPerPass() / s.scheds[i].Subpasses()
		}
	}
	return n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
