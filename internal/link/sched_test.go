package link

import (
	"bytes"
	"errors"
	"math/rand"
	"sort"
	"testing"
)

// jainIndex is Jain's fairness index over per-flow throughputs:
// (Σx)² / (n·Σx²) — 1.0 when every flow got the same, 1/n when one flow
// got everything.
func jainIndex(x []float64) float64 {
	var s, s2 float64
	for _, v := range x {
		s += v
		s2 += v * v
	}
	if s2 == 0 {
		return 0
	}
	n := float64(len(x))
	return s * s / (n * s2)
}

// percentile returns the p-quantile (0..1) of xs by nearest-rank.
func percentile(xs []int, p float64) int {
	s := append([]int(nil), xs...)
	sort.Ints(s)
	k := int(p*float64(len(s))+0.5) - 1
	if k < 0 {
		k = 0
	}
	if k >= len(s) {
		k = len(s) - 1
	}
	return s[k]
}

// fairnessRun is one mixed-traffic drain: per-flow completion rounds,
// throughputs (bits per aged round), and which flows were elephants.
type fairnessRun struct {
	rounds     []int
	throughput []float64
	elephant   []bool
}

func (r fairnessRun) miceRounds() []int {
	var out []int
	for i, e := range r.elephant {
		if !e {
			out = append(out, r.rounds[i])
		}
	}
	return out
}

// runFairnessMix drains a 4-elephant/28-mice style mix (every eighth
// flow is an elephant) through one engine and reports per-flow
// completion latency and throughput. All flows are admitted before the
// first round, so completion round == sojourn time.
func runFairnessMix(t *testing.T, sched *SchedulerConfig, flows, every int, seed int64) fairnessRun {
	t.Helper()
	eng := NewEngine(EngineConfig{
		Params:          linkParams(),
		MaxBlockBits:    192,
		Shards:          2,
		FrameSymbols:    2048,
		Seed:            seed,
		MaxRounds:       1 << 14,
		Scheduler:       sched,
		CheckInvariants: true,
	})
	defer eng.Close()
	rng := rand.New(rand.NewSource(seed))
	run := fairnessRun{
		rounds:     make([]int, flows),
		throughput: make([]float64, flows),
		elephant:   make([]bool, flows),
	}
	payloads := make([][]byte, flows)
	for i := 0; i < flows; i++ {
		size := 48 + rng.Intn(48) // mouse
		if every > 0 && i%every == 0 {
			size = 768 + rng.Intn(512) // elephant
			run.elephant[i] = true
		}
		payloads[i] = make([]byte, size)
		rng.Read(payloads[i])
		id := eng.AddFlow(payloads[i], FlowConfig{
			Channel: newAWGNChannel(10, 0, seed+int64(i)*977),
			Rate:    CapacityRate{SNREstimateDB: 10},
		})
		if int(id) != i {
			t.Fatalf("flow id %d for admission %d", id, i)
		}
	}
	for round := 1; eng.Active() > 0; round++ {
		if round > 1<<15 {
			t.Fatal("fairness mix did not drain")
		}
		for _, r := range eng.Step() {
			if r.Err != nil {
				t.Fatalf("flow %d: %v", r.ID, r.Err)
			}
			if !bytes.Equal(r.Datagram, payloads[r.ID]) {
				t.Fatalf("flow %d: datagram corrupted", r.ID)
			}
			run.rounds[r.ID] = round
			run.throughput[r.ID] = float64(8*len(payloads[r.ID])) / float64(round)
		}
	}
	return run
}

// TestDWFQFairnessIndex is the headline fairness property: with equal
// weights across 32 mixed-size flows (4 elephants among 28 mice), DWFQ
// holds Jain's index ≥ 0.95 and strictly beats round-robin — whose
// admission order lets each elephant's capacity-sized burst monopolize
// whole frames — on both the index and the mice's p99 sojourn.
func TestDWFQFairnessIndex(t *testing.T) {
	// Quantum 64 = the 2048-symbol frame budget split over 32 flows: each
	// flow's credit rate is exactly its processor-sharing fair share, so
	// completion time scales with demand and per-sojourn throughput
	// equalizes across sizes.
	const seed = 20260807
	rr := runFairnessMix(t, nil, 32, 8, seed)
	dw := runFairnessMix(t, &SchedulerConfig{Quantum: 64}, 32, 8, seed)

	jRR, jDW := jainIndex(rr.throughput), jainIndex(dw.throughput)
	t.Logf("jain: rr=%.4f dwfq=%.4f", jRR, jDW)
	if jDW < 0.95 {
		t.Errorf("DWFQ Jain index = %.4f, want ≥ 0.95", jDW)
	}
	if jDW <= jRR {
		t.Errorf("DWFQ Jain %.4f not better than round-robin %.4f", jDW, jRR)
	}
	p99RR := percentile(rr.miceRounds(), 0.99)
	p99DW := percentile(dw.miceRounds(), 0.99)
	t.Logf("mice p99 rounds: rr=%d dwfq=%d", p99RR, p99DW)
	if p99DW >= p99RR {
		t.Errorf("DWFQ mice p99 = %d rounds, want < round-robin %d", p99DW, p99RR)
	}
}

// TestDWFQWeightShares: under contention, a weight-4 flow finishes ahead
// of an identical weight-1 flow because it earns four times the symbol
// credit per round.
func TestDWFQWeightShares(t *testing.T) {
	eng := NewEngine(EngineConfig{
		Params:          linkParams(),
		MaxBlockBits:    192,
		FrameSymbols:    512,
		Seed:            7,
		MaxRounds:       1 << 14,
		Scheduler:       &SchedulerConfig{Quantum: 64},
		CheckInvariants: true,
	})
	defer eng.Close()
	rng := rand.New(rand.NewSource(7))
	payload := make([]byte, 512)
	rng.Read(payload)
	heavy := eng.AddFlow(payload, FlowConfig{
		Channel: newAWGNChannel(10, 0, 11),
		Rate:    CapacityRate{SNREstimateDB: 10},
		Weight:  4,
	})
	light := eng.AddFlow(append([]byte(nil), payload...), FlowConfig{
		Channel: newAWGNChannel(10, 0, 13),
		Rate:    CapacityRate{SNREstimateDB: 10},
		Weight:  1,
	})
	done := map[FlowID]int{}
	for round := 1; eng.Active() > 0; round++ {
		if round > 1<<15 {
			t.Fatal("weighted pair did not drain")
		}
		for _, r := range eng.Step() {
			if r.Err != nil {
				t.Fatalf("flow %d: %v", r.ID, r.Err)
			}
			done[r.ID] = round
		}
	}
	t.Logf("completion rounds: weight4=%d weight1=%d", done[heavy], done[light])
	if done[heavy] >= done[light] {
		t.Errorf("weight-4 flow finished at round %d, not before weight-1 at %d",
			done[heavy], done[light])
	}
	st := eng.SchedStats()
	if st.QuantaGranted <= 0 || st.SymbolsAdmitted <= 0 {
		t.Errorf("scheduler stats not accounted: %+v", st)
	}
}

// TestDWFQPriorityClasses: a higher-priority flow is served strictly
// first each round, so under a tight frame budget it completes no later
// than an identical lower-priority flow.
func TestDWFQPriorityClasses(t *testing.T) {
	eng := NewEngine(EngineConfig{
		Params:          linkParams(),
		MaxBlockBits:    192,
		FrameSymbols:    384,
		Seed:            21,
		MaxRounds:       1 << 14,
		Scheduler:       &SchedulerConfig{},
		CheckInvariants: true,
	})
	defer eng.Close()
	rng := rand.New(rand.NewSource(21))
	payload := make([]byte, 384)
	rng.Read(payload)
	lo := eng.AddFlow(payload, FlowConfig{
		Channel: newAWGNChannel(10, 0, 31),
		Rate:    CapacityRate{SNREstimateDB: 10},
	})
	hi := eng.AddFlow(append([]byte(nil), payload...), FlowConfig{
		Channel:  newAWGNChannel(10, 0, 37),
		Rate:     CapacityRate{SNREstimateDB: 10},
		Priority: 1,
	})
	done := map[FlowID]int{}
	for round := 1; eng.Active() > 0; round++ {
		if round > 1<<15 {
			t.Fatal("priority pair did not drain")
		}
		for _, r := range eng.Step() {
			if r.Err != nil {
				t.Fatalf("flow %d: %v", r.ID, r.Err)
			}
			done[r.ID] = round
		}
	}
	if done[hi] > done[lo] {
		t.Errorf("priority-1 flow finished at round %d, after priority-0 at %d",
			done[hi], done[lo])
	}
}

// TestDWFQDeadline: a flow whose deadline cannot be met on a hopeless
// channel resolves with ErrDeadline at its deadline round and is counted
// in SchedulerStats.DeadlineMisses; a flow with slack completes.
func TestDWFQDeadline(t *testing.T) {
	eng := NewEngine(EngineConfig{
		Params:          linkParams(),
		MaxBlockBits:    192,
		Seed:            5,
		Scheduler:       &SchedulerConfig{},
		CheckInvariants: true,
	})
	defer eng.Close()
	data := []byte("deadline-bound datagram")
	doomed := eng.AddFlow(data, FlowConfig{
		Channel:  newAWGNChannel(-10, 0, 41), // hopeless SNR
		Deadline: 4,
	})
	easy := eng.AddFlow(data, FlowConfig{
		Channel:  newAWGNChannel(15, 0, 43),
		Rate:     CapacityRate{SNREstimateDB: 15},
		Deadline: 256,
	})
	var gotDoomed, gotEasy bool
	for round := 1; eng.Active() > 0 && round <= 512; round++ {
		for _, r := range eng.Step() {
			switch r.ID {
			case doomed:
				gotDoomed = true
				if !errors.Is(r.Err, ErrDeadline) {
					t.Errorf("doomed flow resolved with %v, want ErrDeadline", r.Err)
				}
			case easy:
				gotEasy = true
				if r.Err != nil {
					t.Errorf("easy flow resolved with %v, want success", r.Err)
				}
			}
		}
	}
	if !gotDoomed || !gotEasy {
		t.Fatalf("flows unresolved: doomed=%v easy=%v", gotDoomed, gotEasy)
	}
	if n := eng.SchedStats().DeadlineMisses; n != 1 {
		t.Errorf("DeadlineMisses = %d, want 1", n)
	}
}

// TestDWFQHalfDuplexCharge: under half-duplex accounting the scheduler
// debits ack airtime from the causing flow's credit, and the engine
// still delivers intact.
func TestDWFQHalfDuplexCharge(t *testing.T) {
	eng := NewEngine(EngineConfig{
		Params:          linkParams(),
		MaxBlockBits:    192,
		Seed:            9,
		Scheduler:       &SchedulerConfig{},
		HalfDuplex:      &HalfDuplexConfig{},
		Feedback:        &FeedbackConfig{DelayRounds: 2},
		CheckInvariants: true,
	})
	defer eng.Close()
	rng := rand.New(rand.NewSource(9))
	payload := make([]byte, 200)
	rng.Read(payload)
	eng.AddFlow(payload, FlowConfig{
		Channel: newAWGNChannel(12, 0, 51),
		Rate:    CapacityRate{SNREstimateDB: 12},
	})
	results := eng.Drain(0)
	if len(results) != 1 || results[0].Err != nil {
		t.Fatalf("drain: %+v", results)
	}
	if !bytes.Equal(results[0].Datagram, payload) {
		t.Fatal("datagram corrupted")
	}
	if results[0].Stats.AckSymbols <= 0 {
		t.Error("no ack airtime recorded under half-duplex")
	}
	if n := eng.SchedStats().AckSymbolsCharged; n <= 0 {
		t.Errorf("AckSymbolsCharged = %d, want > 0", n)
	}
}
