package link

import (
	"bytes"
	"math/rand"
	"testing"

	"spinal/internal/channel"
	"spinal/internal/core"
	"spinal/internal/framing"
)

// awgnChannel adapts channel.AWGN to the link.Channel interface with
// optional whole-frame erasure.
type awgnChannel struct {
	ch      *channel.AWGN
	erasure float64
	rng     *rand.Rand
}

func newAWGNChannel(snrDB, erasure float64, seed int64) *awgnChannel {
	return &awgnChannel{
		ch:      channel.NewAWGN(snrDB, seed),
		erasure: erasure,
		rng:     rand.New(rand.NewSource(seed + 1)),
	}
}

func (a *awgnChannel) Apply(sym []complex128) []complex128 {
	if a.rng.Float64() < a.erasure {
		return nil
	}
	return a.ch.Transmit(sym)
}

func linkParams() core.Params {
	return core.Params{K: 4, B: 32, D: 1, C: 6, Tail: 2, Ways: 8}
}

func TestTransferSmallDatagram(t *testing.T) {
	data := []byte("the quick brown fox jumps over the lazy dog")
	got, st, err := Transfer(data, linkParams(), 0, newAWGNChannel(15, 0, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("datagram corrupted")
	}
	if st.Blocks != 1 {
		t.Fatalf("blocks = %d, want 1", st.Blocks)
	}
	if st.Rate <= 0 {
		t.Fatal("no rate recorded")
	}
}

func TestTransferMultiBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	data := make([]byte, 600) // 5 blocks at 1024-bit framing
	rng.Read(data)
	got, st, err := Transfer(data, linkParams(), 0, newAWGNChannel(20, 0, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("datagram corrupted")
	}
	if st.Blocks != 5 {
		t.Fatalf("blocks = %d, want 5", st.Blocks)
	}
}

func TestTransferSurvivesFrameErasure(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data := make([]byte, 200)
	rng.Read(data)
	// 30% of frames vanish entirely; sequence-number design must cope.
	got, st, err := Transfer(data, linkParams(), 0, newAWGNChannel(15, 0.3, 5), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("datagram corrupted under frame erasure")
	}
	if st.Frames <= 1 {
		t.Fatal("suspiciously few frames")
	}
}

func TestTransferLowSNRUsesMoreSymbols(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := make([]byte, 120)
	rng.Read(data)
	_, stHigh, err := Transfer(data, linkParams(), 0, newAWGNChannel(25, 0, 7), 0)
	if err != nil {
		t.Fatal(err)
	}
	_, stLow, err := Transfer(data, linkParams(), 0, newAWGNChannel(5, 0, 7), 0)
	if err != nil {
		t.Fatal(err)
	}
	if stLow.SymbolsSent <= stHigh.SymbolsSent {
		t.Fatalf("low SNR used %d symbols, high SNR %d — rateless adaptation missing",
			stLow.SymbolsSent, stHigh.SymbolsSent)
	}
}

func TestSenderStopsAckedBlocks(t *testing.T) {
	data := make([]byte, 300)
	snd := NewSender(data, linkParams(), 0)
	f := snd.NextFrame()
	if len(f.Batches) != 3 {
		t.Fatalf("first frame has %d batches, want 3", len(f.Batches))
	}
	snd.HandleAck(framing.Ack{Decoded: []bool{true, false, false}})
	f = snd.NextFrame()
	if len(f.Batches) != 2 {
		t.Fatalf("post-ACK frame has %d batches, want 2", len(f.Batches))
	}
	for _, b := range f.Batches {
		if b.Block == 0 {
			t.Fatal("acked block still transmitted")
		}
	}
}

func TestReceiverIncremental(t *testing.T) {
	data := []byte("incremental decode across frames!")
	p := linkParams()
	snd := NewSender(data, p, 0)
	rcv := NewReceiver(p)
	ch := channel.NewAWGN(8, 9)
	var done bool
	for i := 0; i < 200 && !done; i++ {
		f := snd.NextFrame()
		if f == nil {
			done = true
			break
		}
		rx := ch.Transmit(f.Symbols())
		f.Batches = rebatch(f.Batches, rx)
		ack, err := rcv.HandleFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		snd.HandleAck(ack)
		done = snd.Done()
	}
	if !done {
		t.Fatal("transfer did not complete")
	}
	got, err := rcv.Datagram()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("datagram corrupted")
	}
}

func TestDatagramIncompleteError(t *testing.T) {
	r := NewReceiver(linkParams())
	if _, err := r.Datagram(); err == nil {
		t.Fatal("expected error for incomplete datagram")
	}
	if r.Complete() {
		t.Fatal("fresh receiver claims completeness")
	}
}

func TestTransferEmptyDatagram(t *testing.T) {
	got, _, err := Transfer(nil, linkParams(), 0, newAWGNChannel(20, 0, 11), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("empty datagram round trip produced data")
	}
}

func TestTransferGivesUpAtBudget(t *testing.T) {
	// At -20 dB with a tiny frame budget, Transfer must return an error
	// rather than spin forever.
	data := make([]byte, 50)
	_, _, err := Transfer(data, linkParams(), 0, newAWGNChannel(-20, 0, 13), 5)
	if err == nil {
		t.Fatal("expected incomplete transfer at -20 dB with 5 frames")
	}
}
