// Adversarial-link fault injection: a seeded, deterministic injector
// that wraps both the forward frame path and the reverse (ACK) path of
// an engine flow. The polite impairments modeled so far — whole-frame
// loss, symbol noise, delayed/lossy acks — are what a well-behaved
// simulation produces; real half-duplex radio links also reorder,
// duplicate, truncate and bit-flip traffic in both directions, and go
// dark for whole bursts. The injector produces exactly those faults, at
// the wire-byte level, so the strict frame/ack parsers and the typed
// error paths behind them are exercised on the live path rather than
// only under fuzzing. Every fault is independently parameterized,
// counted in FaultStats, and reproducible from the seed.
package link

import (
	"math/rand"
)

// FaultConfig parameterizes deterministic fault injection on a flow's
// forward (frame) and reverse (ack) paths. Every probability is
// evaluated independently per transmission, so faults compose: a frame
// can be corrupted, duplicated and reordered at once. The zero value
// injects nothing.
type FaultConfig struct {
	// FrameReorder is the probability a flow's frame share is displaced
	// into a later round instead of delivering immediately; the
	// displacement is uniform in [1, ReorderDepth] rounds.
	FrameReorder float64
	// FrameDup is the probability the share is additionally replayed,
	// byte-identical, 1..ReorderDepth rounds later.
	FrameDup float64
	// FrameTruncate is the probability the share's wire bytes are cut at
	// a random offset before delivery. The strict frame parser rejects
	// the stump, so a truncated share behaves like a loss — but through
	// the parser's typed-error path, not a silent skip.
	FrameTruncate float64
	// FrameCorrupt is the probability CorruptBits random bits of the
	// share's wire bytes are flipped before delivery. Most flips make
	// the frame unparseable (dropped, counted); flips that survive the
	// parser produce frame-shaped garbage the receiver's typed-error
	// checks (ErrBadSymbolID, ErrBadSymbol, ErrMalformedBatch) must
	// absorb.
	FrameCorrupt float64
	// Blackout is the per-round probability a blackout burst begins:
	// for BlackoutRounds rounds nothing is delivered in the forward
	// direction — new shares are swallowed and in-flight reordered
	// shares stay in the air.
	Blackout float64
	// ReorderDepth bounds reorder/duplicate displacement in rounds
	// (0 ⇒ 4).
	ReorderDepth int
	// CorruptBits is the number of bit flips per corrupted wire image
	// (0 ⇒ 3).
	CorruptBits int
	// BlackoutRounds is the blackout burst length (0 ⇒ 8).
	BlackoutRounds int

	// AckReorder, AckDup, AckTruncate and AckCorrupt are the reverse
	// path's counterparts, applied to each ack's wire bytes inside the
	// FeedbackChannel (they require an EngineConfig.Feedback to exist).
	// A truncated or corrupted ack that no longer parses is counted
	// lost on delivery; one that still parses must be absorbed
	// idempotently by the sender's ARQ.
	AckReorder  float64
	AckDup      float64
	AckTruncate float64
	AckCorrupt  float64

	// Seed perturbs the per-flow injector seeding (mixed with the
	// engine seed and flow ID).
	Seed int64
}

func (c FaultConfig) reorderDepth() int {
	if c.ReorderDepth > 0 {
		return c.ReorderDepth
	}
	return 4
}

func (c FaultConfig) corruptBits() int {
	if c.CorruptBits > 0 {
		return c.CorruptBits
	}
	return 3
}

func (c FaultConfig) blackoutRounds() int {
	if c.BlackoutRounds > 0 {
		return c.BlackoutRounds
	}
	return 8
}

// ackFaults reports whether any reverse-path fault is configured.
func (c FaultConfig) ackFaults() bool {
	return c.AckReorder > 0 || c.AckDup > 0 || c.AckTruncate > 0 || c.AckCorrupt > 0
}

// Scale returns a copy with every fault probability multiplied by f and
// clamped to [0, 1]; depths and burst lengths are unchanged. Scale(0)
// disables every fault — the degradation sweeps ride this.
func (c FaultConfig) Scale(f float64) FaultConfig {
	s := func(p float64) float64 {
		p *= f
		if p < 0 {
			return 0
		}
		if p > 1 {
			return 1
		}
		return p
	}
	out := c
	out.FrameReorder = s(c.FrameReorder)
	out.FrameDup = s(c.FrameDup)
	out.FrameTruncate = s(c.FrameTruncate)
	out.FrameCorrupt = s(c.FrameCorrupt)
	out.Blackout = s(c.Blackout)
	out.AckReorder = s(c.AckReorder)
	out.AckDup = s(c.AckDup)
	out.AckTruncate = s(c.AckTruncate)
	out.AckCorrupt = s(c.AckCorrupt)
	return out
}

// FaultStats counts the faults injected into one flow, by direction and
// kind. Counters record injection events: a duplicated-then-reordered
// share increments both counters, and a corrupted share is counted
// whether or not the mangled bytes still parse.
type FaultStats struct {
	FramesReordered  int
	FramesDuplicated int
	FramesTruncated  int
	FramesCorrupted  int
	// FramesBlackedOut counts shares swallowed by blackout bursts;
	// Blackouts counts the bursts themselves.
	FramesBlackedOut int
	Blackouts        int

	AcksReordered  int
	AcksDuplicated int
	AcksTruncated  int
	AcksCorrupted  int
}

// maxFaultQueue bounds the reorder hold-back queue per flow: a fault
// schedule cannot grow memory without bound, and a share that would
// overflow the queue is delivered immediately instead of held.
const maxFaultQueue = 64

// heldFrame is one wire image held back for future delivery.
type heldFrame struct {
	due  int
	wire []byte
}

// faultInjector applies one flow's FaultConfig. It is single-threaded,
// driven from the engine's Step (forward path) and the flow's
// FeedbackChannel (reverse path); all randomness comes from its own
// seeded rng, so a run is reproducible from (config, seed) alone.
type faultInjector struct {
	cfg   FaultConfig
	rng   *rand.Rand
	stats FaultStats

	queue        []heldFrame
	blackoutLeft int
}

func newFaultInjector(cfg FaultConfig, seed int64) *faultInjector {
	return &faultInjector{
		cfg: cfg,
		rng: rand.New(rand.NewSource(seed ^ 0x6661756c74)), // "fault"
	}
}

// truncateWire cuts b at a random offset in [0, len(b)); the result is
// never the intact input. Returns b unchanged when it is empty.
func truncateWire(rng *rand.Rand, b []byte) []byte {
	if len(b) == 0 {
		return b
	}
	return b[:rng.Intn(len(b))]
}

// flipBits flips k random bits of b in place and returns it.
func flipBits(rng *rand.Rand, b []byte, k int) []byte {
	if len(b) == 0 {
		return b
	}
	for i := 0; i < k; i++ {
		bit := rng.Intn(len(b) * 8)
		b[bit/8] ^= 1 << (bit % 8)
	}
	return b
}

// deliver runs one round of the forward path: it applies the configured
// faults to the flow's share of this round's frame (nil when the flow
// did not transmit or its share was erased) and returns the frames the
// receiver actually sees this round — the surviving share plus any
// held-back shares now due, parsed back from their wire bytes. Mangled
// images that no longer parse are dropped here; that is the point: a
// truncated or bit-flipped frame must die in the strict parser, not
// reach the decoder.
func (in *faultInjector) deliver(f *Frame, round int) []*Frame {
	if in.blackoutLeft == 0 && in.cfg.Blackout > 0 && in.rng.Float64() < in.cfg.Blackout {
		in.blackoutLeft = in.cfg.blackoutRounds()
		in.stats.Blackouts++
	}
	if in.blackoutLeft > 0 {
		// The medium is dead: the new share is swallowed and held-back
		// shares stay in the air until it recovers.
		in.blackoutLeft--
		if f != nil {
			in.stats.FramesBlackedOut++
		}
		for i := range in.queue {
			if in.queue[i].due <= round {
				in.queue[i].due = round + 1
			}
		}
		return nil
	}

	var wires [][]byte
	if f != nil {
		wire := EncodeFrame(f)
		if in.cfg.FrameTruncate > 0 && in.rng.Float64() < in.cfg.FrameTruncate {
			wire = truncateWire(in.rng, wire)
			in.stats.FramesTruncated++
		}
		if in.cfg.FrameCorrupt > 0 && in.rng.Float64() < in.cfg.FrameCorrupt {
			wire = flipBits(in.rng, wire, in.cfg.corruptBits())
			in.stats.FramesCorrupted++
		}
		if in.cfg.FrameDup > 0 && in.rng.Float64() < in.cfg.FrameDup {
			in.hold(append([]byte(nil), wire...), round, &wires)
			in.stats.FramesDuplicated++
		}
		if in.cfg.FrameReorder > 0 && in.rng.Float64() < in.cfg.FrameReorder {
			in.hold(wire, round, &wires)
			in.stats.FramesReordered++
		} else {
			wires = append(wires, wire)
		}
	}
	// Release held shares now due, in hold order among those due.
	live := in.queue[:0]
	for _, h := range in.queue {
		if h.due > round {
			live = append(live, h)
			continue
		}
		wires = append(wires, h.wire)
	}
	in.queue = live

	var out []*Frame
	for _, w := range wires {
		df, err := DecodeFrame(w)
		if err != nil {
			continue // mangled beyond parsing: the fault was already counted
		}
		out = append(out, df)
	}
	return out
}

// hold queues a wire image for delivery 1..ReorderDepth rounds from now,
// or delivers it immediately when the hold-back queue is full (memory
// stays bounded no matter the fault schedule).
func (in *faultInjector) hold(wire []byte, round int, now *[][]byte) {
	due := round + 1 + in.rng.Intn(in.cfg.reorderDepth())
	if len(in.queue) >= maxFaultQueue {
		*now = append(*now, wire)
		return
	}
	in.queue = append(in.queue, heldFrame{due: due, wire: wire})
}

// mangleAck applies the reverse-path faults to one ack's wire bytes,
// returning the (possibly mangled) bytes, an extra delivery delay in
// rounds, and an optional duplicate to enqueue with its own extra
// delay. Called by the flow's FeedbackChannel on Send.
func (in *faultInjector) mangleAck(wire []byte) (out []byte, extraDelay int, dup []byte, dupDelay int) {
	if in.cfg.AckTruncate > 0 && in.rng.Float64() < in.cfg.AckTruncate {
		wire = truncateWire(in.rng, wire)
		in.stats.AcksTruncated++
	}
	if in.cfg.AckCorrupt > 0 && in.rng.Float64() < in.cfg.AckCorrupt {
		wire = flipBits(in.rng, wire, in.cfg.corruptBits())
		in.stats.AcksCorrupted++
	}
	if in.cfg.AckDup > 0 && in.rng.Float64() < in.cfg.AckDup {
		dup = append([]byte(nil), wire...)
		dupDelay = 1 + in.rng.Intn(in.cfg.reorderDepth())
		in.stats.AcksDuplicated++
	}
	if in.cfg.AckReorder > 0 && in.rng.Float64() < in.cfg.AckReorder {
		extraDelay = 1 + in.rng.Intn(in.cfg.reorderDepth())
		in.stats.AcksReordered++
	}
	return wire, extraDelay, dup, dupDelay
}
