package link

import (
	"bytes"
	"math/rand"
	"testing"

	"spinal/internal/core"
	"spinal/internal/framing"
)

// TestReceiverIgnoresBogusBlockIndex: a corrupted frame naming a block
// beyond the datagram layout must not panic or corrupt state.
func TestReceiverIgnoresBogusBlockIndex(t *testing.T) {
	p := linkParams()
	data := []byte("robustness")
	snd := NewSender(data, p, 0)
	rcv := NewReceiver(p)
	f := snd.NextFrame()
	f.Batches = append(f.Batches, Batch{
		Block:   99,
		IDs:     []core.SymbolID{{Chunk: 0, RNGIndex: 0}},
		Symbols: []complex128{1},
	})
	ack := rcv.HandleFrame(f)
	if len(ack.Decoded) != 1 {
		t.Fatalf("ack covers %d blocks, want 1", len(ack.Decoded))
	}
}

// TestSenderIgnoresOversizedAck: an ACK with more bits than blocks must
// not panic.
func TestSenderIgnoresOversizedAck(t *testing.T) {
	snd := NewSender([]byte("x"), linkParams(), 0)
	snd.HandleAck(framing.Ack{Decoded: []bool{true, true, true, true}})
	if !snd.Done() {
		t.Fatal("single block should be acked")
	}
	if snd.NextFrame() != nil {
		t.Fatal("done sender emitted a frame")
	}
}

// TestReceiverDuplicateFrames: replaying the same frame (retransmission
// or duplicate delivery) must be harmless.
func TestReceiverDuplicateFrames(t *testing.T) {
	p := linkParams()
	data := []byte("duplicate delivery is fine")
	snd := NewSender(data, p, 0)
	rcv := NewReceiver(p)
	f := snd.NextFrame()
	// Noiseless symbols: deliver the same frame three times, then
	// continue normally.
	for i := 0; i < 3; i++ {
		dup := *f
		dup.Batches = rebatch(f.Batches, f.Symbols())
		rcv.HandleFrame(&dup)
	}
	for i := 0; i < 50 && !rcv.Complete(); i++ {
		f = snd.NextFrame()
		ack := rcv.HandleFrame(f)
		snd.HandleAck(ack)
	}
	got, err := rcv.Datagram()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("datagram corrupted by duplicates")
	}
}

// TestFrameSymbolsRoundTrip: Symbols/rebatch are inverses.
func TestFrameSymbolsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	data := make([]byte, 300)
	rng.Read(data)
	snd := NewSender(data, linkParams(), 0)
	f := snd.NextFrame()
	flat := f.Symbols()
	if len(flat) != f.SymbolCount() {
		t.Fatal("SymbolCount mismatch")
	}
	back := rebatch(f.Batches, flat)
	for i, b := range back {
		if b.Block != f.Batches[i].Block || len(b.Symbols) != len(f.Batches[i].Symbols) {
			t.Fatal("rebatch structure mismatch")
		}
		for j := range b.Symbols {
			if b.Symbols[j] != f.Batches[i].Symbols[j] {
				t.Fatal("rebatch symbol mismatch")
			}
		}
	}
}

// TestDuplicateSymbolIDsHarmless: a decoder receiving the same SymbolID
// twice (replayed frame content) still decodes — the duplicate is just
// another observation of the same value.
func TestDuplicateSymbolIDsHarmless(t *testing.T) {
	p := linkParams()
	data := []byte("dup ids")
	blocks := framing.Segment(data, 0)
	bits := blocks[0].Bits()
	enc := core.NewEncoder(bits, blocks[0].NumBits(), p)
	dec := core.NewDecoder(blocks[0].NumBits(), p)
	sched := enc.NewSchedule()
	ids := sched.NextSubpass()
	sym := enc.Symbols(ids)
	dec.Add(ids, sym)
	dec.Add(ids, sym) // replay
	for sub := 1; sub < 2*p.Ways; sub++ {
		ids := sched.NextSubpass()
		dec.Add(ids, enc.Symbols(ids))
	}
	decoded, _ := dec.Decode()
	payload, ok := framing.Verify(decoded)
	if !ok || !bytes.Equal(payload, data) {
		t.Fatal("decode failed with duplicated symbols")
	}
}
