package link

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"spinal/internal/core"
	"spinal/internal/framing"
)

// TestReceiverIgnoresBogusBlockIndex: a corrupted frame naming a block
// beyond the datagram layout must not panic or corrupt state.
func TestReceiverIgnoresBogusBlockIndex(t *testing.T) {
	p := linkParams()
	data := []byte("robustness")
	snd := NewSender(data, p, 0)
	rcv := NewReceiver(p)
	f := snd.NextFrame()
	f.Batches = append(f.Batches, Batch{
		Block:   99,
		IDs:     []core.SymbolID{{Chunk: 0, RNGIndex: 0}},
		Symbols: []complex128{1},
	})
	ack, err := rcv.HandleFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(ack.Decoded) != 1 {
		t.Fatalf("ack covers %d blocks, want 1", len(ack.Decoded))
	}
}

// TestSenderIgnoresOversizedAck: an ACK with more bits than blocks must
// not panic.
func TestSenderIgnoresOversizedAck(t *testing.T) {
	snd := NewSender([]byte("x"), linkParams(), 0)
	snd.HandleAck(framing.Ack{Decoded: []bool{true, true, true, true}})
	if !snd.Done() {
		t.Fatal("single block should be acked")
	}
	if snd.NextFrame() != nil {
		t.Fatal("done sender emitted a frame")
	}
}

// TestReceiverDuplicateFrames: replaying the same frame (retransmission
// or duplicate delivery) must be harmless.
func TestReceiverDuplicateFrames(t *testing.T) {
	p := linkParams()
	data := []byte("duplicate delivery is fine")
	snd := NewSender(data, p, 0)
	rcv := NewReceiver(p)
	f := snd.NextFrame()
	// Noiseless symbols: deliver the same frame three times, then
	// continue normally.
	for i := 0; i < 3; i++ {
		dup := *f
		dup.Batches = rebatch(f.Batches, f.Symbols())
		if _, err := rcv.HandleFrame(&dup); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50 && !rcv.Complete(); i++ {
		f = snd.NextFrame()
		ack, err := rcv.HandleFrame(f)
		if err != nil && !errors.Is(err, ErrStaleFrame) {
			t.Fatal(err)
		}
		snd.HandleAck(ack)
	}
	got, err := rcv.Datagram()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("datagram corrupted by duplicates")
	}
}

// TestFrameSymbolsRoundTrip: Symbols/rebatch are inverses.
func TestFrameSymbolsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	data := make([]byte, 300)
	rng.Read(data)
	snd := NewSender(data, linkParams(), 0)
	f := snd.NextFrame()
	flat := f.Symbols()
	if len(flat) != f.SymbolCount() {
		t.Fatal("SymbolCount mismatch")
	}
	back := rebatch(f.Batches, flat)
	for i, b := range back {
		if b.Block != f.Batches[i].Block || len(b.Symbols) != len(f.Batches[i].Symbols) {
			t.Fatal("rebatch structure mismatch")
		}
		for j := range b.Symbols {
			if b.Symbols[j] != f.Batches[i].Symbols[j] {
				t.Fatal("rebatch symbol mismatch")
			}
		}
	}
}

// TestDuplicateSymbolIDsHarmless: a decoder receiving the same SymbolID
// twice (replayed frame content) still decodes — the duplicate is just
// another observation of the same value.
func TestDuplicateSymbolIDsHarmless(t *testing.T) {
	p := linkParams()
	data := []byte("dup ids")
	blocks := framing.Segment(data, 0)
	bits := blocks[0].Bits()
	enc := core.NewEncoder(bits, blocks[0].NumBits(), p)
	dec := core.NewDecoder(blocks[0].NumBits(), p)
	sched := enc.NewSchedule()
	ids := sched.NextSubpass()
	sym := enc.Symbols(ids)
	dec.Add(ids, sym)
	dec.Add(ids, sym) // replay
	for sub := 1; sub < 2*p.Ways; sub++ {
		ids := sched.NextSubpass()
		dec.Add(ids, enc.Symbols(ids))
	}
	decoded, _ := dec.Decode()
	payload, ok := framing.Verify(decoded)
	if !ok || !bytes.Equal(payload, data) {
		t.Fatal("decode failed with duplicated symbols")
	}
}

// TestHandleFrameNil: a nil frame is a typed error, not a panic.
func TestHandleFrameNil(t *testing.T) {
	rcv := NewReceiver(linkParams())
	if _, err := rcv.HandleFrame(nil); !errors.Is(err, ErrNilFrame) {
		t.Fatalf("err = %v, want ErrNilFrame", err)
	}
}

// TestHandleFrameBadLayout: zero, negative, and absurd block sizes are
// rejected with ErrBadLayout instead of sizing decoders.
func TestHandleFrameBadLayout(t *testing.T) {
	for _, layout := range [][]int{nil, {}, {0}, {-8}, {1 << 30}, {1024, 0}} {
		rcv := NewReceiver(linkParams())
		_, err := rcv.HandleFrame(&Frame{BlockBits: layout})
		if !errors.Is(err, ErrBadLayout) {
			t.Fatalf("layout %v: err = %v, want ErrBadLayout", layout, err)
		}
	}
}

// TestHandleFrameStale: once every block a frame mentions has decoded,
// replaying it yields ErrStaleFrame plus a still-valid ACK — the sender
// resyncs from it instead of livelocking.
func TestHandleFrameStale(t *testing.T) {
	p := linkParams()
	data := []byte("stale frames must not livelock")
	snd := NewSender(data, p, 0)
	rcv := NewReceiver(p)
	var clean Frame
	var ack framing.Ack
	var err error
	for i := 0; i < 50 && !ack.AllDecoded(); i++ {
		f := snd.NextFrame()
		clean = *f
		clean.Batches = rebatch(f.Batches, f.Symbols()) // noiseless
		ack, err = rcv.HandleFrame(&clean)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !ack.AllDecoded() {
		t.Fatal("noiseless transfer did not decode")
	}
	ack, err = rcv.HandleFrame(&clean)
	if !errors.Is(err, ErrStaleFrame) {
		t.Fatalf("replay err = %v, want ErrStaleFrame", err)
	}
	if !ack.AllDecoded() {
		t.Fatal("stale frame's ACK lost decode state")
	}
	snd.HandleAck(ack)
	if !snd.Done() {
		t.Fatal("sender did not resync from stale frame's ACK")
	}
}

// TestHandleFrameMalformedBatch: an ID/symbol length mismatch is skipped
// with ErrMalformedBatch; intact batches in the same frame still count.
func TestHandleFrameMalformedBatch(t *testing.T) {
	p := linkParams()
	snd := NewSender([]byte("malformed"), p, 0)
	rcv := NewReceiver(p)
	f := snd.NextFrame()
	f.Batches[0].Symbols = f.Batches[0].Symbols[:1] // truncate
	_, err := rcv.HandleFrame(f)
	if !errors.Is(err, ErrMalformedBatch) {
		t.Fatalf("err = %v, want ErrMalformedBatch", err)
	}
}

// TestZeroLengthDatagram: a nil datagram still round-trips (one CRC-only
// block) through sender and receiver directly.
func TestZeroLengthDatagram(t *testing.T) {
	p := linkParams()
	snd := NewSender(nil, p, 0)
	if snd.Blocks() != 1 {
		t.Fatalf("blocks = %d, want 1", snd.Blocks())
	}
	rcv := NewReceiver(p)
	for i := 0; i < 50 && !rcv.Complete(); i++ {
		f := snd.NextFrame()
		if f == nil {
			break
		}
		f.Batches = rebatch(f.Batches, f.Symbols())
		ack, err := rcv.HandleFrame(f)
		if err != nil {
			t.Fatal(err)
		}
		snd.HandleAck(ack)
	}
	got, err := rcv.Datagram()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("zero-length datagram decoded to %d bytes", len(got))
	}
}
