package link

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"spinal/internal/core"
	"spinal/internal/framing"
)

// Wire format for frames: a compact binary codec so transports (and the
// fuzz targets) have a canonical byte representation instead of gob.
//
//	u32  seq (little endian)
//	uvarint  len(BlockBits), then one zigzag varint per entry
//	uvarint  len(Batches), then per batch:
//	    zigzag varint  Block
//	    uvarint        len(IDs),     then per ID: zigzag varint Chunk,
//	                                 uvarint RNGIndex
//	    uvarint        len(Symbols), then per symbol: two little-endian
//	                                 float64 bit patterns (re, im)
//
// ID and symbol counts are encoded independently on purpose: a mismatch
// is representable, so DecodeFrame can hand the receiver exactly the
// malformed batches its typed-error paths (ErrMalformedBatch) exist for.
// Element counts are bounded against the remaining input length before
// allocation, so a hostile length prefix cannot balloon memory.

// ErrBadWire reports bytes that do not parse as a frame.
var ErrBadWire = errors.New("link: malformed wire frame")

// ErrBadAckWire reports bytes that do not parse as an ack.
var ErrBadAckWire = errors.New("link: malformed wire ack")

// wireMaxList bounds per-frame list lengths accepted by DecodeFrame.
const wireMaxList = 1 << 16

// ackMaxBlocks bounds the block count accepted by DecodeAck. Acks ride
// the live engine path (FeedbackChannel wire-encodes every one), so the
// cap must exceed any feasible flow's block count or acks silently stop
// decoding and the flow can only die of ErrFlowBudget; 2^24 blocks is
// ~2 GiB of datagram at the default 1024-bit framing. Memory stays
// bounded by the input regardless: claiming n blocks requires ⌈n/8⌉
// bytes on the wire, so the decoded []bool is at most 8× the input size.
const ackMaxBlocks = 1 << 24

// EncodeFrame serializes a frame to its wire form.
func EncodeFrame(f *Frame) []byte {
	if f == nil {
		return nil
	}
	buf := make([]byte, 4, 64+16*f.SymbolCount())
	binary.LittleEndian.PutUint32(buf, f.Seq)
	buf = binary.AppendUvarint(buf, uint64(len(f.BlockBits)))
	for _, nb := range f.BlockBits {
		buf = appendZigzag(buf, nb)
	}
	buf = binary.AppendUvarint(buf, uint64(len(f.Batches)))
	for _, b := range f.Batches {
		buf = appendZigzag(buf, b.Block)
		buf = binary.AppendUvarint(buf, uint64(len(b.IDs)))
		for _, id := range b.IDs {
			buf = appendZigzag(buf, id.Chunk)
			buf = binary.AppendUvarint(buf, uint64(id.RNGIndex))
		}
		buf = binary.AppendUvarint(buf, uint64(len(b.Symbols)))
		for _, s := range b.Symbols {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(real(s)))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(imag(s)))
		}
	}
	return buf
}

// DecodeFrame parses a wire-format frame. It validates only structure
// (lengths, bounds against the input size); semantic checks — layout
// sanity, ID ranges, count mismatches — stay with Receiver.HandleFrame so
// its typed errors are exercised end to end.
func DecodeFrame(data []byte) (*Frame, error) {
	d := wireReader{buf: data}
	f := &Frame{Seq: d.u32()}
	nLayout := d.count(1)
	for i := 0; i < nLayout && d.err == nil; i++ {
		f.BlockBits = append(f.BlockBits, d.zigzag())
	}
	nBatches := d.count(2)
	for i := 0; i < nBatches && d.err == nil; i++ {
		var b Batch
		b.Block = d.zigzag()
		nIDs := d.count(2)
		for j := 0; j < nIDs && d.err == nil; j++ {
			b.IDs = append(b.IDs, core.SymbolID{
				Chunk:    d.zigzag(),
				RNGIndex: uint32(d.uvarint()),
			})
		}
		nSyms := d.count(16)
		for j := 0; j < nSyms && d.err == nil; j++ {
			re := d.f64()
			im := d.f64()
			b.Symbols = append(b.Symbols, complex(re, im))
		}
		f.Batches = append(f.Batches, b)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != d.off {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadWire, len(d.buf)-d.off)
	}
	return f, nil
}

// Wire format for acks, the feedback path's frame: §6's one bit per code
// block behind a protected sequence number.
//
//	u32  seq (little endian)
//	uvarint  len(Decoded), then ceil(len/8) bitmap bytes, LSB-first
//	         (block i lives in byte i/8, bit i%8)
//
// The parser is strict: the block count is bounded against the remaining
// input, padding bits in the final bitmap byte must be zero, and trailing
// bytes are rejected — so EncodeAck∘DecodeAck is the identity on every
// accepted input, a property FuzzAckDecode leans on.

// EncodeAck serializes an ack to its wire form.
func EncodeAck(a framing.Ack) []byte {
	buf := make([]byte, 4, 12+len(a.Decoded)/8)
	binary.LittleEndian.PutUint32(buf, a.Seq)
	buf = binary.AppendUvarint(buf, uint64(len(a.Decoded)))
	var cur byte
	for i, d := range a.Decoded {
		if d {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			buf = append(buf, cur)
			cur = 0
		}
	}
	if len(a.Decoded)%8 != 0 {
		buf = append(buf, cur)
	}
	return buf
}

// DecodeAck parses a wire-format ack. Truncations, implausible block
// counts, nonzero padding bits and trailing bytes all yield ErrBadAckWire;
// the input is never trusted for allocation sizing.
func DecodeAck(data []byte) (framing.Ack, error) {
	d := wireReader{buf: data, sentinel: ErrBadAckWire}
	seq := d.u32()
	before := d.off
	n := d.uvarint()
	if d.err == nil && d.off-before != uvarintLen(n) {
		// binary.Uvarint accepts padded encodings like 0x80 0x00; a strict
		// parser must not, or encode∘decode stops being the identity
		// (found by FuzzAckDecode, reproducer in testdata/fuzz).
		d.fail("non-canonical block count")
	}
	if d.err == nil && n > ackMaxBlocks {
		d.fail("implausible block count")
	}
	nBytes := int(n+7) / 8
	if d.err == nil && nBytes > len(d.buf)-d.off {
		d.fail("truncated ack bitmap")
	}
	if d.err != nil {
		return framing.Ack{}, d.err
	}
	a := framing.Ack{Seq: seq}
	if n > 0 {
		a.Decoded = make([]bool, n)
		for i := range a.Decoded {
			a.Decoded[i] = d.buf[d.off+i/8]&(1<<(i%8)) != 0
		}
		if pad := int(n) % 8; pad != 0 && d.buf[d.off+nBytes-1]>>pad != 0 {
			return framing.Ack{}, fmt.Errorf("%w: nonzero padding bits", ErrBadAckWire)
		}
		d.off += nBytes
	}
	if len(d.buf) != d.off {
		return framing.Ack{}, fmt.Errorf("%w: %d trailing bytes", ErrBadAckWire, len(d.buf)-d.off)
	}
	return a, nil
}

// uvarintLen reports the canonical (minimal) encoded size of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func appendZigzag(buf []byte, v int) []byte {
	x := int64(v)
	return binary.AppendUvarint(buf, uint64((x<<1)^(x>>63)))
}

// wireReader is a bounds-checked cursor over the wire bytes; the first
// error sticks and every later read returns zero. sentinel selects the
// typed error failures wrap (nil ⇒ ErrBadWire), so the ack parser
// reports ack errors rather than frame errors.
type wireReader struct {
	buf      []byte
	off      int
	err      error
	sentinel error
}

func (d *wireReader) fail(what string) {
	if d.err == nil {
		s := d.sentinel
		if s == nil {
			s = ErrBadWire
		}
		d.err = fmt.Errorf("%w: %s at offset %d", s, what, d.off)
	}
}

func (d *wireReader) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.buf) {
		d.fail("truncated header")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *wireReader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.off += n
	return v
}

func (d *wireReader) zigzag() int {
	v := d.uvarint()
	return int(int64(v>>1) ^ -int64(v&1))
}

// count reads a list length and rejects lengths the remaining input
// cannot possibly satisfy at minBytes encoded bytes per element.
func (d *wireReader) count(minBytes int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > wireMaxList || int(v)*minBytes > len(d.buf)-d.off {
		d.fail("implausible list length")
		return 0
	}
	return int(v)
}

func (d *wireReader) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("truncated symbol")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}
