package link

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"spinal/internal/core"
	"spinal/internal/framing"
)

// Wire format for frames: a compact binary codec so transports (and the
// fuzz targets) have a canonical byte representation instead of gob.
//
//	u32  seq (little endian)
//	uvarint  len(BlockBits), then one zigzag varint per entry
//	uvarint  len(Batches), then per batch:
//	    zigzag varint  Block
//	    uvarint        len(IDs),     then per ID: zigzag varint Chunk,
//	                                 uvarint RNGIndex
//	    uvarint        len(Symbols), then per symbol: two little-endian
//	                                 float64 bit patterns (re, im)
//
// ID and symbol counts are encoded independently on purpose: a mismatch
// is representable, so DecodeFrame can hand the receiver exactly the
// malformed batches its typed-error paths (ErrMalformedBatch) exist for.
// Element counts are bounded against the remaining input length before
// allocation, so a hostile length prefix cannot balloon memory.

// ErrBadWire reports bytes that do not parse as a frame.
var ErrBadWire = errors.New("link: malformed wire frame")

// ErrBadAckWire reports bytes that do not parse as an ack.
var ErrBadAckWire = errors.New("link: malformed wire ack")

// wireMaxList bounds per-frame list lengths accepted by DecodeFrame.
const wireMaxList = 1 << 16

// ackMaxBlocks bounds the block count accepted by DecodeAck. Acks ride
// the live engine path (FeedbackChannel wire-encodes every one), so the
// cap must exceed any feasible flow's block count or acks silently stop
// decoding and the flow can only die of ErrFlowBudget; 2^24 blocks is
// ~2 GiB of datagram at the default 1024-bit framing. Memory stays
// bounded by the input regardless: claiming n blocks requires ⌈n/8⌉
// bytes on the wire, so the decoded []bool is at most 8× the input size.
const ackMaxBlocks = 1 << 24

// EncodeFrame serializes a frame to its wire form.
func EncodeFrame(f *Frame) []byte {
	if f == nil {
		return nil
	}
	buf := make([]byte, 4, 64+16*f.SymbolCount())
	binary.LittleEndian.PutUint32(buf, f.Seq)
	buf = binary.AppendUvarint(buf, uint64(len(f.BlockBits)))
	for _, nb := range f.BlockBits {
		buf = appendZigzag(buf, nb)
	}
	buf = binary.AppendUvarint(buf, uint64(len(f.Batches)))
	for _, b := range f.Batches {
		buf = appendZigzag(buf, b.Block)
		buf = binary.AppendUvarint(buf, uint64(len(b.IDs)))
		for _, id := range b.IDs {
			buf = appendZigzag(buf, id.Chunk)
			buf = binary.AppendUvarint(buf, uint64(id.RNGIndex))
		}
		buf = binary.AppendUvarint(buf, uint64(len(b.Symbols)))
		for _, s := range b.Symbols {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(real(s)))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(imag(s)))
		}
	}
	return buf
}

// DecodeFrame parses a wire-format frame. It validates only structure
// (lengths, bounds against the input size); semantic checks — layout
// sanity, ID ranges, count mismatches — stay with Receiver.HandleFrame so
// its typed errors are exercised end to end.
func DecodeFrame(data []byte) (*Frame, error) {
	d := wireReader{buf: data}
	f := &Frame{Seq: d.u32()}
	nLayout := d.count(1)
	for i := 0; i < nLayout && d.err == nil; i++ {
		f.BlockBits = append(f.BlockBits, d.zigzag())
	}
	nBatches := d.count(2)
	for i := 0; i < nBatches && d.err == nil; i++ {
		var b Batch
		b.Block = d.zigzag()
		nIDs := d.count(2)
		for j := 0; j < nIDs && d.err == nil; j++ {
			b.IDs = append(b.IDs, core.SymbolID{
				Chunk:    d.zigzag(),
				RNGIndex: uint32(d.uvarint()),
			})
		}
		nSyms := d.count(16)
		for j := 0; j < nSyms && d.err == nil; j++ {
			re := d.f64()
			im := d.f64()
			b.Symbols = append(b.Symbols, complex(re, im))
		}
		f.Batches = append(f.Batches, b)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != d.off {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadWire, len(d.buf)-d.off)
	}
	return f, nil
}

// Wire format for acks, the feedback path's frame: §6's one bit per code
// block behind a protected sequence number, in one of two variants:
//
//	u32  seq (little endian)
//	uvarint  header = len(Decoded)<<1 | variant
//	variant 0 (bitmap):    ceil(len/8) bitmap bytes, LSB-first
//	                       (block i lives in byte i/8, bit i%8)
//	variant 1 (selective): uvarint run count k, then k runs of decoded
//	                       blocks as (gap, runLen-1) uvarint pairs —
//	                       gap is the undecoded distance from the end of
//	                       the previous run (the start index for the
//	                       first run) and must be ≥ 1 between runs, so
//	                       runs are maximal by construction
//
// The selective variant is the per-block selective-ack format: a few
// decoded (or a few missing) blocks out of many encode in a handful of
// bytes instead of a full bitmap — which matters once ack airtime is
// charged against goodput (EngineConfig.HalfDuplex). EncodeAck picks
// whichever variant is strictly smaller (ties go to the bitmap), and
// DecodeAck rejects the variant the encoder would not have chosen, so
// the codec keeps a canonical form.
//
// The parser is strict: block and run counts are bounded against the
// remaining input, padding bits in the final bitmap byte must be zero,
// every varint must be minimal, runs must be maximal and in range, and
// trailing bytes are rejected — so EncodeAck∘DecodeAck is the identity
// on every accepted input, a property FuzzAckDecode leans on.

// ackSelectiveMaxBlocks bounds the block count accepted in the selective
// variant. Unlike the bitmap — whose ⌈n/8⌉ payload bytes tie the decoded
// []bool's size to the input's — a selective ack is legitimately tiny for
// any block count, so without a cap a hostile few-byte input could claim
// ackMaxBlocks blocks and allocate 16 MiB. 2^16 blocks (~8 MiB of
// datagram at the default 1024-bit framing) keeps the amplification in
// line with wireMaxList; larger flows fall back to the bitmap variant.
const ackSelectiveMaxBlocks = 1 << 16

// EncodeAck serializes an ack to its wire form, choosing the smaller of
// the bitmap and selective variants.
func EncodeAck(a framing.Ack) []byte {
	n := len(a.Decoded)
	bitmapLen := (n + 7) / 8
	buf := make([]byte, 4, 12+bitmapLen)
	binary.LittleEndian.PutUint32(buf, a.Seq)
	if n <= ackSelectiveMaxBlocks && selectiveAckLen(a.Decoded) < bitmapLen {
		buf = binary.AppendUvarint(buf, uint64(n)<<1|1)
		return appendSelectiveAck(buf, a.Decoded)
	}
	buf = binary.AppendUvarint(buf, uint64(n)<<1)
	var cur byte
	for i, d := range a.Decoded {
		if d {
			cur |= 1 << (i % 8)
		}
		if i%8 == 7 {
			buf = append(buf, cur)
			cur = 0
		}
	}
	if n%8 != 0 {
		buf = append(buf, cur)
	}
	return buf
}

// ackWireLen reports the size EncodeAck would produce without building
// the bytes — half-duplex airtime accounting prices every ack with it,
// so the hot path allocates nothing.
func ackWireLen(a framing.Ack) int {
	n := len(a.Decoded)
	bitmapLen := (n + 7) / 8
	header := uint64(n) << 1
	payload := bitmapLen
	if n <= ackSelectiveMaxBlocks {
		if sel := selectiveAckLen(a.Decoded); sel < bitmapLen {
			header |= 1
			payload = sel
		}
	}
	return 4 + uvarintLen(header) + payload
}

// ackRuns visits the maximal runs of decoded blocks as (gap, runLen)
// pairs, gap being the undecoded distance from the previous run's end.
func ackRuns(decoded []bool, visit func(gap, runLen int)) (runs int) {
	prevEnd := 0
	for i := 0; i < len(decoded); {
		if !decoded[i] {
			i++
			continue
		}
		j := i
		for j < len(decoded) && decoded[j] {
			j++
		}
		visit(i-prevEnd, j-i)
		prevEnd = j
		runs++
		i = j
	}
	return runs
}

// selectiveAckLen reports the selective variant's payload size in bytes
// without building it.
func selectiveAckLen(decoded []bool) int {
	size := 0
	runs := ackRuns(decoded, func(gap, runLen int) {
		size += uvarintLen(uint64(gap)) + uvarintLen(uint64(runLen-1))
	})
	return uvarintLen(uint64(runs)) + size
}

// appendSelectiveAck appends the selective variant's payload.
func appendSelectiveAck(buf []byte, decoded []bool) []byte {
	var body []byte
	runs := ackRuns(decoded, func(gap, runLen int) {
		body = binary.AppendUvarint(body, uint64(gap))
		body = binary.AppendUvarint(body, uint64(runLen-1))
	})
	buf = binary.AppendUvarint(buf, uint64(runs))
	return append(buf, body...)
}

// DecodeAck parses a wire-format ack in either variant. Truncations,
// implausible block or run counts, nonzero padding bits, padded varints,
// non-maximal or out-of-range runs, the non-canonical variant choice and
// trailing bytes all yield ErrBadAckWire; the input is never trusted for
// allocation sizing beyond the documented selective cap.
func DecodeAck(data []byte) (framing.Ack, error) {
	d := wireReader{buf: data, sentinel: ErrBadAckWire}
	seq := d.u32()
	header := d.cuvarint()
	n, selective := header>>1, header&1 == 1
	if d.err == nil && n > ackMaxBlocks {
		d.fail("implausible block count")
	}
	if d.err != nil {
		return framing.Ack{}, d.err
	}
	a := framing.Ack{Seq: seq}
	bitmapLen := int(n+7) / 8
	switch {
	case selective:
		if n > ackSelectiveMaxBlocks {
			d.fail("implausible selective block count")
			return framing.Ack{}, d.err
		}
		k := d.cuvarint()
		// Each run costs at least two payload bytes.
		if d.err == nil && k > uint64(len(d.buf)-d.off)/2 {
			d.fail("implausible run count")
		}
		if d.err != nil {
			return framing.Ack{}, d.err
		}
		payloadStart := d.off - uvarintLen(k)
		a.Decoded = make([]bool, n)
		pos := 0
		for j := uint64(0); j < k; j++ {
			gap := d.cuvarint()
			runM := d.cuvarint() // runLen-1
			if d.err != nil {
				return framing.Ack{}, d.err
			}
			if j > 0 && gap == 0 {
				// Adjacent runs would have been one maximal run.
				return framing.Ack{}, fmt.Errorf("%w: non-maximal run at offset %d", ErrBadAckWire, d.off)
			}
			if gap > n || runM >= n || uint64(pos)+gap+runM+1 > n {
				return framing.Ack{}, fmt.Errorf("%w: run past block count at offset %d", ErrBadAckWire, d.off)
			}
			start := pos + int(gap)
			end := start + int(runM) + 1
			for i := start; i < end; i++ {
				a.Decoded[i] = true
			}
			pos = end
		}
		if d.off-payloadStart >= bitmapLen {
			// The encoder uses the selective variant only when it is
			// strictly smaller; accepting the other choice would break
			// the codec's canonical form.
			return framing.Ack{}, fmt.Errorf("%w: non-canonical selective variant", ErrBadAckWire)
		}
	default:
		if bitmapLen > len(d.buf)-d.off {
			d.fail("truncated ack bitmap")
			return framing.Ack{}, d.err
		}
		if n > 0 {
			a.Decoded = make([]bool, n)
			for i := range a.Decoded {
				a.Decoded[i] = d.buf[d.off+i/8]&(1<<(i%8)) != 0
			}
			if pad := int(n) % 8; pad != 0 && d.buf[d.off+bitmapLen-1]>>pad != 0 {
				return framing.Ack{}, fmt.Errorf("%w: nonzero padding bits", ErrBadAckWire)
			}
			d.off += bitmapLen
		}
		if int(n) <= ackSelectiveMaxBlocks && selectiveAckLen(a.Decoded) < bitmapLen {
			return framing.Ack{}, fmt.Errorf("%w: non-canonical bitmap variant", ErrBadAckWire)
		}
	}
	if len(d.buf) != d.off {
		return framing.Ack{}, fmt.Errorf("%w: %d trailing bytes", ErrBadAckWire, len(d.buf)-d.off)
	}
	return a, nil
}

// uvarintLen reports the canonical (minimal) encoded size of v.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func appendZigzag(buf []byte, v int) []byte {
	x := int64(v)
	return binary.AppendUvarint(buf, uint64((x<<1)^(x>>63)))
}

// wireReader is a bounds-checked cursor over the wire bytes; the first
// error sticks and every later read returns zero. sentinel selects the
// typed error failures wrap (nil ⇒ ErrBadWire), so the ack parser
// reports ack errors rather than frame errors.
type wireReader struct {
	buf      []byte
	off      int
	err      error
	sentinel error
}

func (d *wireReader) fail(what string) {
	if d.err == nil {
		s := d.sentinel
		if s == nil {
			s = ErrBadWire
		}
		d.err = fmt.Errorf("%w: %s at offset %d", s, what, d.off)
	}
}

func (d *wireReader) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.buf) {
		d.fail("truncated header")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *wireReader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.off += n
	return v
}

// cuvarint reads a canonically (minimally) encoded uvarint; padded
// encodings like 0x80 0x00 are rejected, which strict codecs need to
// keep encode∘decode an identity (found by FuzzAckDecode, reproducer in
// testdata/fuzz).
func (d *wireReader) cuvarint() uint64 {
	before := d.off
	v := d.uvarint()
	if d.err == nil && d.off-before != uvarintLen(v) {
		d.fail("non-canonical varint")
	}
	return v
}

func (d *wireReader) zigzag() int {
	v := d.uvarint()
	return int(int64(v>>1) ^ -int64(v&1))
}

// count reads a list length and rejects lengths the remaining input
// cannot possibly satisfy at minBytes encoded bytes per element.
func (d *wireReader) count(minBytes int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > wireMaxList || int(v)*minBytes > len(d.buf)-d.off {
		d.fail("implausible list length")
		return 0
	}
	return int(v)
}

func (d *wireReader) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("truncated symbol")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}
