package link

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"spinal/internal/core"
)

// Wire format for frames: a compact binary codec so transports (and the
// fuzz targets) have a canonical byte representation instead of gob.
//
//	u32  seq (little endian)
//	uvarint  len(BlockBits), then one zigzag varint per entry
//	uvarint  len(Batches), then per batch:
//	    zigzag varint  Block
//	    uvarint        len(IDs),     then per ID: zigzag varint Chunk,
//	                                 uvarint RNGIndex
//	    uvarint        len(Symbols), then per symbol: two little-endian
//	                                 float64 bit patterns (re, im)
//
// ID and symbol counts are encoded independently on purpose: a mismatch
// is representable, so DecodeFrame can hand the receiver exactly the
// malformed batches its typed-error paths (ErrMalformedBatch) exist for.
// Element counts are bounded against the remaining input length before
// allocation, so a hostile length prefix cannot balloon memory.

// ErrBadWire reports bytes that do not parse as a frame.
var ErrBadWire = errors.New("link: malformed wire frame")

// wireMaxList bounds per-frame list lengths accepted by DecodeFrame.
const wireMaxList = 1 << 16

// EncodeFrame serializes a frame to its wire form.
func EncodeFrame(f *Frame) []byte {
	if f == nil {
		return nil
	}
	buf := make([]byte, 4, 64+16*f.SymbolCount())
	binary.LittleEndian.PutUint32(buf, f.Seq)
	buf = binary.AppendUvarint(buf, uint64(len(f.BlockBits)))
	for _, nb := range f.BlockBits {
		buf = appendZigzag(buf, nb)
	}
	buf = binary.AppendUvarint(buf, uint64(len(f.Batches)))
	for _, b := range f.Batches {
		buf = appendZigzag(buf, b.Block)
		buf = binary.AppendUvarint(buf, uint64(len(b.IDs)))
		for _, id := range b.IDs {
			buf = appendZigzag(buf, id.Chunk)
			buf = binary.AppendUvarint(buf, uint64(id.RNGIndex))
		}
		buf = binary.AppendUvarint(buf, uint64(len(b.Symbols)))
		for _, s := range b.Symbols {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(real(s)))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(imag(s)))
		}
	}
	return buf
}

// DecodeFrame parses a wire-format frame. It validates only structure
// (lengths, bounds against the input size); semantic checks — layout
// sanity, ID ranges, count mismatches — stay with Receiver.HandleFrame so
// its typed errors are exercised end to end.
func DecodeFrame(data []byte) (*Frame, error) {
	d := wireReader{buf: data}
	f := &Frame{Seq: d.u32()}
	nLayout := d.count(1)
	for i := 0; i < nLayout && d.err == nil; i++ {
		f.BlockBits = append(f.BlockBits, d.zigzag())
	}
	nBatches := d.count(2)
	for i := 0; i < nBatches && d.err == nil; i++ {
		var b Batch
		b.Block = d.zigzag()
		nIDs := d.count(2)
		for j := 0; j < nIDs && d.err == nil; j++ {
			b.IDs = append(b.IDs, core.SymbolID{
				Chunk:    d.zigzag(),
				RNGIndex: uint32(d.uvarint()),
			})
		}
		nSyms := d.count(16)
		for j := 0; j < nSyms && d.err == nil; j++ {
			re := d.f64()
			im := d.f64()
			b.Symbols = append(b.Symbols, complex(re, im))
		}
		f.Batches = append(f.Batches, b)
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != d.off {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadWire, len(d.buf)-d.off)
	}
	return f, nil
}

func appendZigzag(buf []byte, v int) []byte {
	x := int64(v)
	return binary.AppendUvarint(buf, uint64((x<<1)^(x>>63)))
}

// wireReader is a bounds-checked cursor over the wire bytes; the first
// error sticks and every later read returns zero.
type wireReader struct {
	buf []byte
	off int
	err error
}

func (d *wireReader) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrBadWire, what, d.off)
	}
}

func (d *wireReader) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if d.off+4 > len(d.buf) {
		d.fail("truncated header")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *wireReader) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.off += n
	return v
}

func (d *wireReader) zigzag() int {
	v := d.uvarint()
	return int(int64(v>>1) ^ -int64(v&1))
}

// count reads a list length and rejects lengths the remaining input
// cannot possibly satisfy at minBytes encoded bytes per element.
func (d *wireReader) count(minBytes int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > wireMaxList || int(v)*minBytes > len(d.buf)-d.off {
		d.fail("implausible list length")
		return 0
	}
	return int(v)
}

func (d *wireReader) f64() float64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("truncated symbol")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}
