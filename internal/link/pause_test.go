package link

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestCapacityPolicyFirstBurst(t *testing.T) {
	p := CapacityPolicy{SNREstimateDB: 10}
	// 1024-bit block, 9 symbols/frame, nothing sent: the first burst
	// should cover ≈ 1024/(0.8·3.46) ≈ 370 symbols ≈ 42 frames.
	got := p.BurstFrames(1024, 9, 0)
	if got < 30 || got > 55 {
		t.Fatalf("first burst %d frames, want ≈42", got)
	}
	// Past the target, bursts shrink to the growth increment.
	inc := p.BurstFrames(1024, 9, 400)
	if inc >= got || inc < 1 {
		t.Fatalf("increment burst %d not smaller than first %d", inc, got)
	}
}

func TestCapacityPolicyLowSNRClamp(t *testing.T) {
	p := CapacityPolicy{SNREstimateDB: -30}
	if got := p.BurstFrames(100, 10, 0); got < 1 {
		t.Fatalf("burst %d at very low SNR", got)
	}
}

func TestTransferWithPolicyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	data := make([]byte, 300)
	rng.Read(data)
	got, st, pauses, err := TransferWithPolicy(data, linkParams(), 0,
		newAWGNChannel(12, 0, 21), CapacityPolicy{SNREstimateDB: 12}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("datagram corrupted")
	}
	if pauses < 1 {
		t.Fatal("no pauses recorded")
	}
	if st.Rate <= 0 {
		t.Fatal("no rate")
	}
}

func TestPolicyPausesFarLessThanEveryFrame(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	data := make([]byte, 250)
	rng.Read(data)

	_, stEvery, pausesEvery, err := TransferWithPolicy(data, linkParams(), 0,
		newAWGNChannel(10, 0, 23), EveryFrame{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, stPolicy, pausesPolicy, err := TransferWithPolicy(data, linkParams(), 0,
		newAWGNChannel(10, 0, 23), CapacityPolicy{SNREstimateDB: 10}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pausesPolicy >= pausesEvery {
		t.Fatalf("capacity policy paused %d times vs %d for every-frame",
			pausesPolicy, pausesEvery)
	}
	// The price of fewer pauses is bounded symbol overshoot.
	if float64(stPolicy.SymbolsSent) > 1.6*float64(stEvery.SymbolsSent) {
		t.Fatalf("policy overshoot too large: %d vs %d symbols",
			stPolicy.SymbolsSent, stEvery.SymbolsSent)
	}
}

func TestPolicyWithStaleEstimate(t *testing.T) {
	// A 10 dB-optimistic estimate must still complete (more pauses, same
	// data).
	rng := rand.New(rand.NewSource(24))
	data := make([]byte, 200)
	rng.Read(data)
	got, _, _, err := TransferWithPolicy(data, linkParams(), 0,
		newAWGNChannel(5, 0, 25), CapacityPolicy{SNREstimateDB: 15}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("datagram corrupted under stale estimate")
	}
}

func TestTransferWithPolicyNilPolicy(t *testing.T) {
	data := []byte("nil policy defaults to every-frame")
	got, _, _, err := TransferWithPolicy(data, linkParams(), 0,
		newAWGNChannel(15, 0, 26), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("datagram corrupted")
	}
}
