package link

import (
	"math"

	"spinal/internal/capacity"
)

// RateObserver is the optional feedback half of a RatePolicy: the engine
// reports every decoded block back to the policy — how many bits it
// carried and how many channel symbols it cost end to end. Policies that
// implement it can track a time-varying channel; policies that don't are
// left alone.
type RateObserver interface {
	// ObserveDecode records that a blockBits-bit block verified after the
	// flow spent symbolsSpent channel symbols on it.
	ObserveDecode(blockBits, symbolsSpent int)
}

// TrackingRate is a closed-loop RatePolicy for time-varying channels. It
// keeps a running effective-SNR estimate and paces each block like
// CapacityRate — an opening burst of blockBits/(margin·C(est)) symbols,
// then geometric trickle — but unlike CapacityRate the estimate moves:
// every decoded block implies an achieved rate (blockBits/symbolsSpent),
// whose capacity-inverse is an SNR observation. Blocks that decode at
// their burst size confirm the channel is at least as good as estimated,
// so the policy probes upward by ProbeDB; blocks that drag through
// trickle rounds pull the estimate down by exponential averaging. On a
// bursty channel this walks the pass schedule fast through good periods
// and backs off through bad ones instead of trusting a stale estimate or
// trickling one subpass per round.
//
// The per-round request is clamped so one block never asks for more than
// MaxRoundSymbols, keeping a single flow inside the engine's shared-frame
// backpressure contract even when the estimate is badly wrong.
//
// A TrackingRate is stateful and must not be shared between flows; it is
// not safe for concurrent use (the engine calls it only from its own
// thread).
type TrackingRate struct {
	// Margin derates capacity for the code's gap; 0 means 0.8.
	Margin float64
	// Alpha is the exponential-averaging weight of downward SNR
	// observations; 0 means 0.5.
	Alpha float64
	// ProbeDB is the upward probe applied when a block decodes at its
	// burst size; 0 means 1 dB.
	ProbeDB float64
	// MinDB/MaxDB clamp the estimate (defaults -10 and 40).
	MinDB, MaxDB float64
	// MaxRoundSymbols caps the symbols one block may request per round;
	// 0 means 4096 (the engine's default frame budget).
	MaxRoundSymbols int

	estDB float64
}

// NewTrackingRate creates a tracking policy starting from initialSNRdB.
func NewTrackingRate(initialSNRdB float64) *TrackingRate {
	t := &TrackingRate{MinDB: -10, MaxDB: 40}
	t.estDB = clampF(initialSNRdB, t.MinDB, t.MaxDB)
	return t
}

// EstimateDB reports the current effective-SNR estimate.
func (t *TrackingRate) EstimateDB() float64 { return t.estDB }

func (t *TrackingRate) margin() float64 {
	if t.Margin == 0 {
		return 0.8
	}
	return t.Margin
}

func (t *TrackingRate) maxRoundSymbols() int {
	if t.MaxRoundSymbols <= 0 {
		return 4096
	}
	return t.MaxRoundSymbols
}

func (t *TrackingRate) bounds() (lo, hi float64) {
	lo, hi = t.MinDB, t.MaxDB
	if lo == 0 && hi == 0 {
		lo, hi = -10, 40
	}
	return lo, hi
}

// SubpassBudget implements RatePolicy: burst to the estimated decoding
// point, then trickle, never exceeding MaxRoundSymbols per block per
// round.
func (t *TrackingRate) SubpassBudget(blockBits, subpassSymbols, symbolsSent int) int {
	c := capacity.AWGNdB(t.estDB) * t.margin()
	if c < 0.05 {
		c = 0.05
	}
	target := float64(blockBits) / c
	var want float64
	if float64(symbolsSent) < target {
		want = target - float64(symbolsSent)
	} else {
		want = target * 0.25
	}
	sub := maxInt(subpassSymbols, 1)
	n := int(math.Ceil(want / float64(sub)))
	if n < 1 {
		n = 1
	}
	if lim := t.maxRoundSymbols() / sub; n > lim {
		n = maxInt(lim, 1)
	}
	return n
}

// ObserveDecode implements RateObserver: fold the decoded block's implied
// SNR into the estimate.
func (t *TrackingRate) ObserveDecode(blockBits, symbolsSpent int) {
	if blockBits <= 0 || symbolsSpent <= 0 {
		return
	}
	rate := float64(blockBits) / float64(symbolsSpent)
	obs := capacity.ToDB(capacity.SNRForRate(rate / t.margin()))
	lo, hi := t.bounds()
	probe := t.ProbeDB
	if probe == 0 {
		probe = 1
	}
	alpha := t.Alpha
	if alpha == 0 {
		alpha = 0.5
	}
	// A block decoding at (or near) its burst size can only tell us the
	// channel is "at least this good" — the burst may have overshot the
	// true decoding point — so probe upward. A block that needed extra
	// rounds reveals the channel directly; average it in.
	if obs >= t.estDB-0.75 {
		t.estDB += probe
	} else {
		t.estDB += alpha * (obs - t.estDB)
	}
	t.estDB = clampF(t.estDB, lo, hi)
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
