package link

import (
	"bytes"
	"math/rand"
	"testing"
)

// engineRun drives a one-flow engine to completion and returns the result.
func engineRun(t *testing.T, cfg EngineConfig, fc FlowConfig, data []byte) FlowResult {
	t.Helper()
	cfg.Params = linkParams()
	if cfg.FrameSymbols == 0 {
		cfg.FrameSymbols = 1 << 30
	}
	e := NewEngine(cfg)
	defer e.Close()
	e.AddFlow(data, fc)
	res := e.Drain(0)
	if len(res) != 1 {
		t.Fatalf("want 1 result, got %d", len(res))
	}
	return res[0]
}

// TestHalfDuplexChargesAckAirtime: with HalfDuplex set, every mode of
// feedback charges reverse airtime into Stats.AckSymbols and the rate
// divides by forward plus ack symbols; without it, acks stay free.
func TestHalfDuplexChargesAckAirtime(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	data := make([]byte, 300)
	rng.Read(data)

	free := engineRun(t, EngineConfig{}, FlowConfig{Channel: newAWGNChannel(12, 0, 5)}, data)
	if free.Err != nil || free.Stats.AckSymbols != 0 {
		t.Fatalf("free-ack run: err=%v ackSymbols=%d", free.Err, free.Stats.AckSymbols)
	}

	hd := engineRun(t, EngineConfig{HalfDuplex: &HalfDuplexConfig{}},
		FlowConfig{Channel: newAWGNChannel(12, 0, 5)}, data)
	if hd.Err != nil {
		t.Fatal(hd.Err)
	}
	if hd.Stats.AckSymbols <= 0 {
		t.Fatal("half-duplex run charged no ack airtime")
	}
	if !bytes.Equal(hd.Datagram, data) {
		t.Fatal("datagram corrupted")
	}
	// Identical seeds mean identical forward behaviour: accounting is
	// observational, so only the rate's denominator may differ.
	if hd.Stats.SymbolsSent != free.Stats.SymbolsSent {
		t.Fatalf("half-duplex accounting changed the forward path: %d vs %d symbols",
			hd.Stats.SymbolsSent, free.Stats.SymbolsSent)
	}
	wantRate := float64(len(data)*8) / float64(hd.Stats.SymbolsSent+hd.Stats.AckSymbols)
	if hd.Stats.Rate != wantRate {
		t.Fatalf("rate %.4f does not include ack airtime (want %.4f)", hd.Stats.Rate, wantRate)
	}
	if hd.Stats.Rate >= free.Stats.Rate {
		t.Fatal("charged rate not below the free-ack rate")
	}
}

// TestHalfDuplexChargesLostAcks: airtime is spent when the ack is
// transmitted, not when it is delivered — a fully lossy reverse channel
// still accumulates AckSymbols.
func TestHalfDuplexChargesLostAcks(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	data := make([]byte, 60)
	rng.Read(data)
	r := engineRun(t,
		EngineConfig{
			HalfDuplex: &HalfDuplexConfig{},
			Feedback:   &FeedbackConfig{Loss: 1}, // every ack dies in transit
			MaxRounds:  24,
		},
		FlowConfig{Channel: newAWGNChannel(15, 0, 7)}, data)
	if r.Err == nil {
		t.Fatal("flow delivered despite a dead reverse channel")
	}
	if r.Stats.AcksSent == 0 || r.Stats.AcksLost != r.Stats.AcksSent {
		t.Fatalf("expected all acks lost: sent=%d lost=%d", r.Stats.AcksSent, r.Stats.AcksLost)
	}
	if r.Stats.AckSymbols <= 0 {
		t.Fatal("lost acks were not charged")
	}
}

// TestHalfDuplexAirtimeDenser: a denser reverse modulation charges fewer
// symbols for the same acks.
func TestHalfDuplexAirtimeDenser(t *testing.T) {
	h2 := &HalfDuplexConfig{AckBitsPerSymbol: 2}
	h8 := &HalfDuplexConfig{AckBitsPerSymbol: 8}
	if a, b := h2.airtime(10), h8.airtime(10); a != 40 || b != 10 {
		t.Fatalf("airtime(10 bytes) = %d @2b/sym, %d @8b/sym; want 40, 10", a, b)
	}
}

// TestEnginePauseMatchesTransferWithPolicy: the engine path under a
// pause-paced flow is the implementation of TransferWithPolicy, so both
// report identical statistics for identical inputs.
func TestEnginePauseMatchesTransferWithPolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	data := make([]byte, 300)
	rng.Read(data)
	pol := CapacityPolicy{SNREstimateDB: 10}

	got, st, pauses, err := TransferWithPolicy(data, linkParams(), 0,
		newAWGNChannel(10, 0, 9), pol, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("datagram corrupted")
	}
	r := engineRun(t, EngineConfig{MaxRounds: 10000},
		FlowConfig{Channel: newAWGNChannel(10, 0, 9), Pause: pol}, data)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Stats.SymbolsSent != st.SymbolsSent || r.Stats.Frames != st.Frames || r.Stats.Pauses != pauses {
		t.Fatalf("engine pause path diverged: engine %d sym/%d frames/%d pauses, transfer %d/%d/%d",
			r.Stats.SymbolsSent, r.Stats.Frames, r.Stats.Pauses,
			st.SymbolsSent, st.Frames, pauses)
	}
}

// TestEnginePauseDefersAcks: under EveryFrame the sender pauses each
// round (pauses == frames); a capacity policy pauses far less on the
// same channel realization.
func TestEnginePauseDefersAcks(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	data := make([]byte, 250)
	rng.Read(data)
	every := engineRun(t, EngineConfig{MaxRounds: 10000},
		FlowConfig{Channel: newAWGNChannel(10, 0, 11), Pause: EveryFrame{}}, data)
	if every.Err != nil {
		t.Fatal(every.Err)
	}
	if every.Stats.Pauses != every.Stats.Frames {
		t.Fatalf("EveryFrame: %d pauses for %d frames", every.Stats.Pauses, every.Stats.Frames)
	}
	capa := engineRun(t, EngineConfig{MaxRounds: 10000},
		FlowConfig{Channel: newAWGNChannel(10, 0, 11), Pause: CapacityPolicy{SNREstimateDB: 10}}, data)
	if capa.Err != nil {
		t.Fatal(capa.Err)
	}
	if capa.Stats.Pauses >= every.Stats.Pauses {
		t.Fatalf("capacity policy paused %d times vs %d for every-frame",
			capa.Stats.Pauses, every.Stats.Pauses)
	}
}

// TestPauseFeedbackMutuallyExclusive: combining a pause policy with an
// explicit reverse channel must fail loudly at admission.
func TestPauseFeedbackMutuallyExclusive(t *testing.T) {
	e := NewEngine(EngineConfig{Params: linkParams(), Feedback: &FeedbackConfig{}})
	defer e.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("AddFlow accepted Pause + Feedback")
		}
	}()
	e.AddFlow([]byte("x"), FlowConfig{Pause: EveryFrame{}})
}

// recordingObserver collects feedback events.
type recordingObserver struct {
	events []FeedbackEvent
}

func (o *recordingObserver) ObserveFeedback(ev FeedbackEvent) { o.events = append(o.events, ev) }

// TestFeedbackObserverEvents: under a FeedbackConfig the observer sees
// every ack emission and every delivery, in order, with coherent counts.
func TestFeedbackObserverEvents(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	data := make([]byte, 200)
	rng.Read(data)
	ob := &recordingObserver{}
	r := engineRun(t,
		EngineConfig{Feedback: &FeedbackConfig{DelayRounds: 2}, Observer: ob, MaxRounds: 512},
		FlowConfig{Channel: newAWGNChannel(12, 0, 13)}, data)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	sent, delivered := 0, 0
	for _, ev := range ob.events {
		if ev.Blocks != r.Stats.Blocks {
			t.Fatalf("event block count %d, flow has %d", ev.Blocks, r.Stats.Blocks)
		}
		if ev.Decoded < 0 || ev.Decoded > ev.Blocks {
			t.Fatalf("incoherent decoded count %d/%d", ev.Decoded, ev.Blocks)
		}
		switch ev.Kind {
		case AckSent:
			sent++
		case AckDelivered:
			delivered++
		default:
			t.Fatalf("unknown event kind %v", ev.Kind)
		}
	}
	if sent != r.Stats.AcksSent {
		t.Fatalf("observer saw %d sends, stats count %d", sent, r.Stats.AcksSent)
	}
	if delivered == 0 || delivered > sent {
		t.Fatalf("incoherent delivery count %d (sent %d)", delivered, sent)
	}

	// A pause-paced flow fires both kinds at each turnaround.
	ob2 := &recordingObserver{}
	e := NewEngine(EngineConfig{Params: linkParams(), FrameSymbols: 1 << 30, MaxRounds: 10000, Observer: ob2})
	defer e.Close()
	e.AddFlow(data, FlowConfig{Channel: newAWGNChannel(12, 0, 13), Pause: CapacityPolicy{SNREstimateDB: 12}})
	r2 := e.Drain(0)[0]
	if r2.Err != nil {
		t.Fatal(r2.Err)
	}
	var s2, d2 int
	for _, ev := range ob2.events {
		if ev.Kind == AckSent {
			s2++
		} else {
			d2++
		}
	}
	if s2 == 0 || s2 != d2 {
		t.Fatalf("pause turnarounds fired %d sends, %d deliveries", s2, d2)
	}
	if s2 != r2.Stats.Pauses {
		t.Fatalf("%d ack events for %d pauses", s2, r2.Stats.Pauses)
	}
}
