package code

import "spinal/internal/core"

// spinalCode adapts the native spinal codec behind the Code interface.
// The link engine recognizes it (SpinalParams) and runs the pooled
// native path instead, so wrapping spinal costs nothing on the hot path;
// this adapter serves the standalone Sender/Receiver and any caller
// driving the interface directly.
type spinalCode struct {
	p core.Params
}

// Spinal adapts the spinal code with parameters p behind the Code
// interface.
func Spinal(p core.Params) Code { return &spinalCode{p: p} }

// SpinalParams reports the spinal parameters when c is the Spinal
// adapter — the engine's cue to keep the native pooled-codec fast path.
func SpinalParams(c Code) (core.Params, bool) {
	if s, ok := c.(*spinalCode); ok {
		return s.p, true
	}
	return core.Params{}, false
}

func (s *spinalCode) Name() string { return "spinal" }

func (s *spinalCode) Chunks(nBits int) int { return s.p.NumSpine(nBits) }

func (s *spinalCode) NewSchedule(nBits int) Schedule {
	return core.NewScheduleFor(nBits, s.p)
}

func (s *spinalCode) NewEncoder(bits []byte, nBits int) Encoder {
	return core.NewEncoder(bits, nBits, s.p)
}

func (s *spinalCode) NewDecoder(nBits int) Decoder {
	return WrapSpinalDecoder(core.NewDecoder(nBits, s.p))
}

// spinalDecoder narrows core.Decoder's (bytes, cost) Decode to the
// interface's (bytes, converged) shape. The bubble decoder always emits
// its best path — it has no self-signal beyond the CRC the link checks —
// so converged is always true.
type spinalDecoder struct {
	*core.Decoder
}

// WrapSpinalDecoder adapts a native spinal decoder (typically a pooled
// worker's cached one) to the Decoder interface.
func WrapSpinalDecoder(d *core.Decoder) Decoder { return spinalDecoder{d} }

func (d spinalDecoder) Decode() ([]byte, bool) {
	bits, _ := d.Decoder.Decode()
	return bits, true
}
