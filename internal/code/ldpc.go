package code

import (
	"fmt"
	"sync"

	"spinal/internal/ldpc"
)

// ldpcSeed fixes the QC construction both ends share.
const ldpcSeed = 0x1d9c

// ldpcRungSpec is one (rate, modulation) operating point of the shim's
// ladder.
type ldpcRungSpec struct {
	rate   string
	points int
}

// ldpcLadder is the adaptive shim's rung ladder in descending spectral
// efficiency — the §8 envelope's (rate × modulation) grid, walked top
// down so a transmission degrades toward robustness exactly like a
// rateless code's symbol stream.
var ldpcLadder = []ldpcRungSpec{
	{ldpc.Rate56, 256}, // 6.67 b/sym
	{ldpc.Rate34, 256}, // 6.00
	{ldpc.Rate23, 256}, // 5.33
	{ldpc.Rate56, 64},  // 5.00
	{ldpc.Rate34, 64},  // 4.50
	{ldpc.Rate23, 64},  // 4.00
	{ldpc.Rate12, 64},  // 3.00
	{ldpc.Rate23, 16},  // 2.67
	{ldpc.Rate12, 16},  // 2.00
	{ldpc.Rate12, 4},   // 1.00
}

// ldpcInfoCols maps a rate to its QC base-matrix information columns
// (kb = nb − mb with nb = 24), which set Z for a wanted block size.
var ldpcInfoCols = map[string]int{
	ldpc.Rate12: 12,
	ldpc.Rate23: 16,
	ldpc.Rate34: 18,
	ldpc.Rate56: 20,
}

// ldpcCode emulates ratelessness over the fixed-rate 802.11n-style QC
// LDPC family: the stream walks a ladder of (rate, modulation) rungs in
// descending efficiency, the decoder attempts the most robust fully
// covered rung, and cycles chase-combine LLRs codeword-position-wise.
// As the paper's §8 envelope argument goes, a genie that always picks
// the right rung upper-bounds any fixed-rate scheme; the shim realizes
// the ladder honestly (exploration symbols are paid for) and uses the
// RateAdapter feedback hook to start later blocks near the rung the
// channel actually supports.
type ldpcCode struct {
	name  string
	specs []ldpcRungSpec

	mu      sync.Mutex
	codes   map[string]*ldpc.Code // keyed by rate/Z
	ladders map[int][]ldpcRung    // keyed by nBits

	// effEWMA tracks achieved bits/symbol via ObserveDecode; read on the
	// engine thread only (NewSchedule), written there too.
	effEWMA float64
}

// ldpcRung is one constructed rung of a block size's ladder.
type ldpcRung struct {
	code    *ldpc.Code
	m       mapper
	eff     float64
	off     int // first stream position of the rung within a cycle
	symbols int // stream positions the rung occupies
}

// LDPC builds the adaptive rate-switching LDPC shim ("" selects the full
// rate × modulation ladder).
func LDPC(rate string) Code {
	if rate == "" {
		return &ldpcCode{name: "ldpc", specs: ldpcLadder,
			codes: map[string]*ldpc.Code{}, ladders: map[int][]ldpcRung{}}
	}
	c, err := LDPCPinned(rate)
	if err != nil {
		panic(err)
	}
	return c
}

// LDPCPinned builds the shim pinned to one code rate, walking only that
// rate's modulation ladder (256 → 4 QAM).
func LDPCPinned(rate string) (Code, error) {
	if _, ok := ldpcInfoCols[rate]; !ok {
		return nil, fmt.Errorf("unknown LDPC rate %q (want 1/2, 2/3, 3/4 or 5/6)", rate)
	}
	var specs []ldpcRungSpec
	for _, pts := range []int{256, 64, 16, 4} {
		specs = append(specs, ldpcRungSpec{rate, pts})
	}
	return &ldpcCode{name: "ldpc:" + rate, specs: specs,
		codes: map[string]*ldpc.Code{}, ladders: map[int][]ldpcRung{}}, nil
}

func (l *ldpcCode) Name() string { return l.name }

func (l *ldpcCode) Chunks(int) int { return 1 }

// codeFor returns the cached QC code for (rate, Z); construction is
// deterministic and the result read-only.
func (l *ldpcCode) codeFor(rate string, z int) *ldpc.Code {
	key := fmt.Sprintf("%s/%d", rate, z)
	c, ok := l.codes[key]
	if !ok {
		c = ldpc.NewQC(rate, z, ldpcSeed)
		l.codes[key] = c
	}
	return c
}

// ladderFor builds (and caches) the rung ladder for nBits-bit blocks:
// per rung, the smallest Z whose information length covers the block.
func (l *ldpcCode) ladderFor(nBits int) []ldpcRung {
	l.mu.Lock()
	defer l.mu.Unlock()
	if lad, ok := l.ladders[nBits]; ok {
		return lad
	}
	var lad []ldpcRung
	off := 0
	for _, spec := range l.specs {
		kb := ldpcInfoCols[spec.rate]
		z := (nBits + kb - 1) / kb
		code := l.codeFor(spec.rate, z)
		m := newMapper(spec.points)
		syms := (code.N() + m.bitsPerSymbol() - 1) / m.bitsPerSymbol()
		lad = append(lad, ldpcRung{
			code:    code,
			m:       m,
			eff:     code.RateValue() * float64(m.bitsPerSymbol()),
			off:     off,
			symbols: syms,
		})
		off += syms
	}
	l.ladders[nBits] = lad
	return lad
}

// cycleSymbols reports one full ladder walk's stream length.
func cycleSymbols(lad []ldpcRung) int {
	last := lad[len(lad)-1]
	return last.off + last.symbols
}

// startRung picks where a fresh block's schedule enters the ladder: the
// most efficient rung the learned throughput could plausibly support
// (one rung of headroom, so a slightly improved channel is retried), or
// the top with no history.
func (l *ldpcCode) startRung(lad []ldpcRung) int {
	if l.effEWMA <= 0 {
		return 0
	}
	for i, r := range lad {
		if r.eff <= 2*l.effEWMA {
			if i > 0 {
				i--
			}
			return i
		}
	}
	return len(lad) - 1
}

// ObserveDecode implements RateAdapter: fold a decoded block's achieved
// efficiency into the rung-selection estimate.
func (l *ldpcCode) ObserveDecode(blockBits, symbolsSent int) {
	if symbolsSent <= 0 {
		return
	}
	eff := float64(blockBits) / float64(symbolsSent)
	if l.effEWMA <= 0 {
		l.effEWMA = eff
		return
	}
	l.effEWMA += 0.25 * (eff - l.effEWMA)
}

func (l *ldpcCode) NewSchedule(nBits int) Schedule {
	lad := l.ladderFor(nBits)
	cycle := cycleSymbols(lad)
	start := lad[l.startRung(lad)].off
	// One pass is one ladder cycle; one subpass per rung keeps policy
	// granularity near rung boundaries.
	return newStreamSchedule(cycle, len(lad), uint32(start))
}

// rungAt locates a stream position's rung and in-rung offset.
func rungAt(lad []ldpcRung, cyclePos int) (rung, off int) {
	for i := range lad {
		if cyclePos < lad[i].off+lad[i].symbols {
			return i, cyclePos - lad[i].off
		}
	}
	return len(lad) - 1, cyclePos - lad[len(lad)-1].off
}

// ldpcEncoder serves symbols from the per-rung codeword streams.
type ldpcEncoder struct {
	lad   []ldpcRung
	cycle int
	cws   [][]byte // per-rung codeword bits (bit per byte)
}

func (l *ldpcCode) NewEncoder(bits []byte, nBits int) Encoder {
	lad := l.ladderFor(nBits)
	e := &ldpcEncoder{lad: lad, cycle: cycleSymbols(lad), cws: make([][]byte, len(lad))}
	info := unpackBits(bits, nBits)
	for i, r := range lad {
		padded := make([]byte, r.code.K())
		copy(padded, info)
		e.cws[i] = r.code.Encode(padded)
	}
	return e
}

func (e *ldpcEncoder) Symbols(ids []SymbolID) []complex128 {
	out := make([]complex128, 0, len(ids))
	// Batch runs that stay inside one rung (the schedule's common case)
	// into one modulate call.
	for i := 0; i < len(ids); {
		r, off := rungAt(e.lad, streamPos(ids[i])%e.cycle)
		j := i + 1
		for j < len(ids) {
			r2, off2 := rungAt(e.lad, streamPos(ids[j])%e.cycle)
			if r2 != r || off2 != off+(j-i) {
				break
			}
			j++
		}
		pos := make([]int, j-i)
		for k := range pos {
			pos[k] = off + k
		}
		rung := e.lad[r]
		out = append(out, rung.m.modulate(e.cws[r], rung.symbols, pos)...)
		i = j
	}
	return out
}

// ldpcDecoder accumulates observations, chase-combines repeats, and
// runs belief propagation on the most robust fully covered rung.
type ldpcDecoder struct {
	lad   []ldpcRung
	cycle int
	nBits int
	obsStore
}

func (l *ldpcCode) NewDecoder(nBits int) Decoder {
	lad := l.ladderFor(nBits)
	return &ldpcDecoder{lad: lad, cycle: cycleSymbols(lad), nBits: nBits}
}

func (d *ldpcDecoder) Decode() ([]byte, bool) {
	// Sort observations by rung.
	type rungObs struct {
		pos []int
		ys  []complex128
	}
	obs := make([]rungObs, len(d.lad))
	for i, p := range d.pos {
		r, off := rungAt(d.lad, p%d.cycle)
		obs[r].pos = append(obs[r].pos, off)
		obs[r].ys = append(obs[r].ys, d.ys[i])
	}
	noiseVar := estimateNoiseVar(d.ys)
	// The most robust (last in ladder order) fully covered rung is the
	// stream's current operating point: the freshest symbols landed
	// there, and every earlier rung already had its chance. One BP run
	// per attempt bounds decode cost.
	for r := len(d.lad) - 1; r >= 0; r-- {
		rung := d.lad[r]
		if len(obs[r].ys) < rung.symbols {
			continue
		}
		covered := make([]int, rung.symbols)
		bps := rung.m.bitsPerSymbol()
		llr := make([]float64, rung.symbols*bps)
		rung.m.demapInto(llr, covered, rung.symbols, obs[r].pos, obs[r].ys, noiseVar)
		full := true
		for _, c := range covered {
			if c == 0 {
				full = false
				break
			}
		}
		if !full {
			continue
		}
		bits, conv := rung.code.Decode(llr[:rung.code.N()], 40)
		if !conv {
			return nil, false
		}
		return packBits(bits, d.nBits), true
	}
	return nil, false
}
