package code

import (
	"sync"

	"spinal/internal/strider"
)

// striderSeed fixes the phase schedule and interleavers both ends share.
const striderSeed = 0x57e1de5

// striderMaxPasses bounds a block's pass budget well above any plausible
// operating point (the paper uses up to 27); the schedule goes quiet
// after it rather than repeating symbol IDs.
const striderMaxPasses = 512

// striderSubpassOrder is Strider+'s §8 puncturing order: subpass s
// carries the pass positions congruent to striderSubpassOrder[s] mod 8,
// spreading a partial pass evenly across the block.
var striderSubpassOrder = [8]int{7, 3, 5, 1, 6, 2, 4, 0}

// striderCode adapts the Strider baseline (layered superposition over a
// rate-1/5 turbo base, SIC decoding) behind the Code interface, in its
// Strider+ variant (8 subpasses per pass). Stream position i is symbol
// i%ns of pass i/ns. Layer count scales with block size so the layered
// rate cap L·LayerBits/(2·ns) does not strangle small blocks.
type striderCode struct {
	mu    sync.Mutex
	codes map[int]*strider.Code // keyed by nBits
}

// Strider builds the Strider+ layered-superposition baseline.
func Strider() Code {
	return &striderCode{codes: make(map[int]*strider.Code)}
}

func (s *striderCode) Name() string { return "strider" }

func (s *striderCode) Chunks(int) int { return 1 }

// striderConfigFor scales the paper's 33-layer design down to a block:
// enough layers that the two-pass rate cap clears the block's needs,
// layer blocks no shorter than the turbo code tolerates.
func striderConfigFor(nBits int) strider.Config {
	layers := nBits / 32
	if layers < 3 {
		layers = 3
	}
	if layers > 33 {
		layers = 33
	}
	layerBits := (nBits + layers - 1) / layers
	if layerBits < 8 {
		layerBits = 8
	}
	return strider.Config{
		Layers:    layers,
		LayerBits: layerBits,
		MaxPasses: striderMaxPasses,
		Subpasses: 8,
		Seed:      striderSeed,
	}
}

// codeFor returns the cached Strider code for nBits-bit blocks; the
// construction is deterministic and the result read-only.
func (s *striderCode) codeFor(nBits int) *strider.Code {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.codes[nBits]
	if !ok {
		c = strider.New(striderConfigFor(nBits))
		s.codes[nBits] = c
	}
	return c
}

// striderSchedule walks passes in Strider+ subpass order. It goes quiet
// (empty subpasses) once the pass budget is spent, so IDs never repeat.
type striderSchedule struct {
	ns   int
	pass int
	sub  int
}

func (s *striderCode) NewSchedule(nBits int) Schedule {
	return &striderSchedule{ns: s.codeFor(nBits).SymbolsPerPass()}
}

func (s *striderSchedule) SymbolsPerPass() int { return s.ns }
func (s *striderSchedule) Subpasses() int      { return 8 }

func (s *striderSchedule) NextSubpass() []SymbolID {
	if s.pass >= striderMaxPasses {
		return nil
	}
	res := striderSubpassOrder[s.sub]
	var ids []SymbolID
	for i := res; i < s.ns; i += 8 {
		ids = append(ids, SymbolID{Chunk: 0, RNGIndex: uint32(s.pass*s.ns + i)})
	}
	s.sub++
	if s.sub == 8 {
		s.sub, s.pass = 0, s.pass+1
	}
	return ids
}

// striderEncoder serves superposed symbols from the layered Tx, caching
// each pass's full symbol vector on first touch.
type striderEncoder struct {
	c      *strider.Code
	tx     *strider.Tx
	ns     int
	passes map[int][]complex128
}

func (s *striderCode) NewEncoder(bits []byte, nBits int) Encoder {
	c := s.codeFor(nBits)
	msg := make([]byte, c.MessageBits())
	copy(msg, unpackBits(bits, nBits))
	return &striderEncoder{c: c, tx: c.Encode(msg), ns: c.SymbolsPerPass(),
		passes: make(map[int][]complex128)}
}

func (e *striderEncoder) Symbols(ids []SymbolID) []complex128 {
	out := make([]complex128, len(ids))
	for i, id := range ids {
		pos := streamPos(id)
		p := pos / e.ns
		pass, ok := e.passes[p]
		if !ok {
			pass = e.tx.Pass(p)
			e.passes[p] = pass
		}
		out[i] = pass[pos%e.ns]
	}
	return out
}

// striderDecoder feeds observations straight into a persistent SIC
// decoder (successfully decoded layers stay cancelled across attempts)
// and tracks received power for blind noise estimation.
type striderDecoder struct {
	c     *strider.Code
	ns    int
	nBits int
	dec   *strider.Decoder
	power float64
	count int
}

func (s *striderCode) NewDecoder(nBits int) Decoder {
	c := s.codeFor(nBits)
	return &striderDecoder{c: c, ns: c.SymbolsPerPass(), nBits: nBits,
		dec: strider.NewDecoder(c)}
}

func (d *striderDecoder) Reset() {
	d.dec = strider.NewDecoder(d.c)
	d.power, d.count = 0, 0
}

func (d *striderDecoder) Add(ids []SymbolID, syms []complex128) {
	// Group the batch into per-pass runs for AddSubpass.
	for i := 0; i < len(ids); {
		p := streamPos(ids[i]) / d.ns
		j := i + 1
		for j < len(ids) && streamPos(ids[j])/d.ns == p {
			j++
		}
		pos := make([]int, j-i)
		for k := i; k < j; k++ {
			pos[k-i] = streamPos(ids[k]) % d.ns
		}
		if p < striderMaxPasses {
			d.dec.AddSubpass(p, pos, syms[i:j], nil)
		}
		i = j
	}
	for _, y := range syms {
		d.power += real(y)*real(y) + imag(y)*imag(y)
		d.count++
	}
}

func (d *striderDecoder) Decode() ([]byte, bool) {
	// The design SINR sits below the turbo threshold, so one pass can
	// never suffice (§8.2); skip the SIC cost until two passes' worth of
	// symbols have arrived.
	if d.dec.SymbolsReceived() < 2*d.ns {
		return nil, false
	}
	noiseVar := d.power/float64(d.count) - 1
	if noiseVar < 1e-3 {
		noiseVar = 1e-3
	}
	msg, ok := d.dec.TryDecode(noiseVar)
	if !ok {
		return nil, false
	}
	return packBits(msg, d.nBits), true
}
