// Package code defines the code-agnostic contract between the link layer
// and a channel code, and adapts every code in the repository — spinal
// itself plus the §8 baselines (Raptor, Strider, rate-switched LDPC,
// plain turbo) — behind it.
//
// The interface captures exactly what the §6 link machinery consumes:
//
//   - a Schedule enumerating symbol IDs in transmission order (rateless
//     codes extend it forever; fixed-rate codes cycle their codeword,
//     which chase-combines at the receiver);
//   - an Encoder regenerating the symbols for any ID set (the engine's
//     pooled workers call it batch by batch — encoders carry no
//     transmission state);
//   - a Decoder accumulating (ID, symbol) observations and attempting an
//     incremental decode after each batch, returning the message bytes
//     plus the code's own convergence signal (the link layer still
//     arbitrates by CRC, so an overconfident code cannot corrupt a
//     datagram and an underconfident one merely retries).
//
// Symbol IDs are spinal's (chunk, RNG index) pairs. Stream-structured
// codes use chunk 0 and the RNG index as a position in their coded
// symbol stream, so the wire format, the receiver's replay-dedup and the
// engine's sharding work unchanged for every code.
package code

import (
	"fmt"
	"strings"

	"spinal/internal/core"
)

// SymbolID identifies one transmitted symbol. It is spinal's
// (chunk, RNG index) pair; stream codes set Chunk to 0 and use RNGIndex
// as the position in their coded symbol stream.
type SymbolID = core.SymbolID

// Schedule enumerates one code block's transmission order: repeated
// NextSubpass calls yield fresh symbol IDs forever (fixed-rate codes
// cycle; the receiver chase-combines repeats). SymbolsPerPass and
// Subpasses describe the granularity so rate policies can convert
// symbol budgets into subpass counts.
type Schedule interface {
	// NextSubpass returns the next batch of fresh symbol IDs. It may be
	// empty (short blocks under wide puncturing), but successive calls
	// must never repeat an ID.
	NextSubpass() []SymbolID
	// SymbolsPerPass reports the symbols one full pass carries.
	SymbolsPerPass() int
	// Subpasses reports the number of subpasses per pass.
	Subpasses() int
}

// Encoder regenerates the channel symbols for one code block. Encoders
// are stateless with respect to transmission progress — the Schedule
// owns position — so the engine can rebuild one on any pooled worker.
type Encoder interface {
	// Symbols returns the symbols for ids, in order. Constellations are
	// unit average power throughout the repository.
	Symbols(ids []SymbolID) []complex128
}

// Decoder accumulates symbol observations for one code block and
// attempts decodes. The link receiver replays a block's deduplicated
// observations into a freshly Reset decoder at each attempt, so
// implementations may keep all state behind Add and do the work in
// Decode.
type Decoder interface {
	// Reset clears accumulated observations for reuse on another block
	// of the same bit length.
	Reset()
	// Add records observations; ids[i] pairs with syms[i].
	Add(ids []SymbolID, syms []complex128)
	// Decode attempts to decode the observations accumulated since
	// Reset. It returns the message packed MSB-first into nBits/8 bytes
	// and the code's own confidence signal: false means the code knows
	// it has not converged (too few symbols, parity checks failing) and
	// the message may be nil. The caller arbitrates by CRC either way.
	Decode() ([]byte, bool)
}

// Code is a channel code the link layer can run: a family of
// per-block-size schedules, encoders and decoders. Implementations must
// be safe for concurrent NewEncoder/NewDecoder construction and
// concurrent use of distinct encoder/decoder instances (the engine calls
// them from sharded workers); Schedule construction happens on the
// engine thread.
type Code interface {
	// Name identifies the code ("spinal", "raptor", ...).
	Name() string
	// Chunks reports the number of distinct SymbolID.Chunk values a
	// block of nBits may use (spinal's spine length; 1 for stream
	// codes). The receiver rejects out-of-range chunks as corrupt.
	Chunks(nBits int) int
	// NewSchedule starts a fresh transmission order for an nBits-bit
	// block.
	NewSchedule(nBits int) Schedule
	// NewEncoder builds an encoder for a block whose message is bits
	// (nBits packed MSB-first).
	NewEncoder(bits []byte, nBits int) Encoder
	// NewDecoder builds a decoder for an nBits-bit block.
	NewDecoder(nBits int) Decoder
}

// RateAdapter is the optional feedback hook of a Code: the engine
// reports every decoded block's size and total symbol spend, exactly as
// it does to a rate policy's RateObserver. Codes that emulate
// ratelessness by switching fixed rates (the LDPC shim) use it to start
// later blocks near the rung the channel supports.
type RateAdapter interface {
	// ObserveDecode reports one decoded block: its size in bits and the
	// symbols spent on it. Called from the engine thread only.
	ObserveDecode(blockBits, symbolsSent int)
}

// Parse builds a code from its spec: "spinal" (the code of p),
// "raptor", "strider", "turbo", "ldpc" (adaptive rate/modulation
// ladder) or "ldpc:RATE" with RATE one of 1/2, 2/3, 3/4, 5/6 (that
// rate's modulation ladder only).
func Parse(spec string, p core.Params) (Code, error) {
	name, arg, hasArg := strings.Cut(spec, ":")
	switch name {
	case "", "spinal":
		if hasArg {
			return nil, fmt.Errorf("code: spec %q: spinal takes no argument", spec)
		}
		return Spinal(p), nil
	case "raptor":
		if hasArg {
			return nil, fmt.Errorf("code: spec %q: raptor takes no argument", spec)
		}
		return Raptor(), nil
	case "strider":
		if hasArg {
			return nil, fmt.Errorf("code: spec %q: strider takes no argument", spec)
		}
		return Strider(), nil
	case "turbo":
		if hasArg {
			return nil, fmt.Errorf("code: spec %q: turbo takes no argument", spec)
		}
		return Turbo(), nil
	case "ldpc":
		if !hasArg {
			return LDPC(""), nil
		}
		c, err := LDPCPinned(arg)
		if err != nil {
			return nil, fmt.Errorf("code: spec %q: %v", spec, err)
		}
		return c, nil
	}
	return nil, fmt.Errorf("code: unknown code %q (want spinal, raptor, strider, ldpc[:RATE] or turbo)", spec)
}
