package code

import (
	"sync"

	"spinal/internal/raptor"
)

// raptorQAMPoints is the dense constellation the §8 Raptor baseline
// rides (the paper evaluates Raptor over QAM-256 with exact soft
// demapping, crediting the demapper for its strong showing).
const raptorQAMPoints = 256

// raptorSeed fixes the LT/precode construction both ends share.
const raptorSeed = 0x5ea7_ab1e

// raptorCode adapts the Raptor baseline (LT output symbols over an LDPC
// precode, joint soft BP) behind the Code interface: the LT output bit
// stream is truly rateless, so stream symbol i simply carries output
// bits [i·bps, (i+1)·bps) — no cycling needed.
type raptorCode struct {
	m mapper

	mu    sync.Mutex
	codes map[int]*raptor.Code // keyed by nBits
}

// Raptor builds the Raptor/QAM-256 rateless baseline.
func Raptor() Code {
	return &raptorCode{m: newMapper(raptorQAMPoints), codes: make(map[int]*raptor.Code)}
}

func (r *raptorCode) Name() string { return "raptor" }

func (r *raptorCode) Chunks(int) int { return 1 }

// kEff pads short blocks up to the Raptor construction's minimum.
func kEff(nBits int) int {
	if nBits < 32 {
		return 32
	}
	return nBits
}

// codeFor returns the cached Raptor code for nBits-bit blocks.
// Construction is deterministic, so sender and receiver agree; the
// constructed code is read-only and shared across pooled workers.
func (r *raptorCode) codeFor(nBits int) *raptor.Code {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.codes[nBits]
	if !ok {
		c = raptor.New(kEff(nBits), raptorSeed)
		r.codes[nBits] = c
	}
	return c
}

func (r *raptorCode) NewSchedule(nBits int) Schedule {
	// One pass ≈ one information block's worth of symbols, quartered
	// into subpasses so rate policies can trickle.
	perPass := (kEff(nBits) + r.m.bitsPerSymbol() - 1) / r.m.bitsPerSymbol()
	return newStreamSchedule(perPass, 4, 0)
}

// raptorEncoder regenerates LT output symbols for arbitrary ID sets.
type raptorEncoder struct {
	c   *raptor.Code
	m   mapper
	msg []byte // bit-per-byte, kEff long (zero padded)
}

func (r *raptorCode) NewEncoder(bits []byte, nBits int) Encoder {
	msg := make([]byte, kEff(nBits))
	copy(msg, unpackBits(bits, nBits))
	return &raptorEncoder{c: r.codeFor(nBits), m: r.m, msg: msg}
}

func (e *raptorEncoder) Symbols(ids []SymbolID) []complex128 {
	bps := e.m.bitsPerSymbol()
	out := make([]complex128, 0, len(ids))
	// OutputBits recomputes the precode per call; batch maximal
	// consecutive runs (the schedule emits them) into one call each.
	for i := 0; i < len(ids); {
		j := i + 1
		for j < len(ids) && streamPos(ids[j]) == streamPos(ids[j-1])+1 {
			j++
		}
		bits := e.c.OutputBits(e.msg, streamPos(ids[i])*bps, (j-i)*bps)
		out = append(out, e.m.qam.Modulate(bits)...)
		i = j
	}
	return out
}

// raptorDecoder accumulates observations and reruns joint BP over the
// full observation set at each attempt.
type raptorDecoder struct {
	c     *raptor.Code
	m     mapper
	nBits int
	obsStore
}

func (r *raptorCode) NewDecoder(nBits int) Decoder {
	return &raptorDecoder{c: r.codeFor(nBits), m: r.m, nBits: nBits}
}

func (d *raptorDecoder) Decode() ([]byte, bool) {
	bps := d.m.bitsPerSymbol()
	// Below the information-theoretic minimum no attempt can succeed;
	// skip the BP cost.
	if len(d.ys)*bps < d.c.K() {
		return nil, false
	}
	noiseVar := estimateNoiseVar(d.ys)
	llr := d.m.qam.DemapSoft(d.ys, noiseVar, nil)
	dec := raptor.NewDecoder(d.c)
	for i, p := range d.pos {
		dec.Add(p*bps, llr[i*bps:(i+1)*bps])
	}
	bits, ok := dec.Decode(40)
	if bits == nil {
		return nil, false
	}
	return packBits(bits, d.nBits), ok
}
