package code

import (
	"spinal/internal/modem"
)

// This file is the shared symbol-mapping plumbing behind every
// stream-structured adapter (Raptor, LDPC, turbo): one Gray-QAM mapper,
// one blind noise estimator, one bit pack/unpack convention and one
// sequential ID schedule — the per-code modem code the baselines used to
// duplicate lives here exactly once.

// streamPos recovers a stream symbol position from its wire ID.
func streamPos(id SymbolID) int { return int(id.RNGIndex) }

// streamSchedule hands out sequential stream symbol IDs in fixed-size
// subpasses. perPass/ways only describe granularity to rate policies;
// position is the single counter, so IDs never repeat.
type streamSchedule struct {
	next    uint32
	perPass int
	ways    int
}

func newStreamSchedule(perPass, ways int, start uint32) *streamSchedule {
	if perPass < 1 {
		perPass = 1
	}
	if ways < 1 {
		ways = 1
	}
	return &streamSchedule{next: start, perPass: perPass, ways: ways}
}

func (s *streamSchedule) SymbolsPerPass() int { return s.perPass }
func (s *streamSchedule) Subpasses() int      { return s.ways }

func (s *streamSchedule) NextSubpass() []SymbolID {
	n := s.perPass / s.ways
	if n < 1 {
		n = 1
	}
	ids := make([]SymbolID, n)
	for i := range ids {
		ids[i] = SymbolID{Chunk: 0, RNGIndex: s.next}
		s.next++
	}
	return ids
}

// mapper wraps the repository's one Gray-QAM implementation as a coded
// bit-stream modem: symbol i of a stream carries coded bits
// [i·bps, (i+1)·bps), zero-padded past the stream's end.
type mapper struct {
	qam *modem.QAM
}

func newMapper(points int) mapper { return mapper{qam: modem.NewQAM(points)} }

func (m mapper) bitsPerSymbol() int { return m.qam.BitsPerSymbol() }

// modulate maps the coded bits (one bit per byte) at stream positions
// pos within a cycle of cycleLen positions, wrapping positions modulo
// the cycle (fixed-rate codes retransmit their codeword).
func (m mapper) modulate(stream []byte, cycleLen int, pos []int) []complex128 {
	bps := m.bitsPerSymbol()
	bits := make([]byte, len(pos)*bps)
	for i, p := range pos {
		if cycleLen > 0 {
			p %= cycleLen
		}
		for b := 0; b < bps; b++ {
			if j := p*bps + b; j < len(stream) {
				bits[i*bps+b] = stream[j]
			}
		}
	}
	return m.qam.Modulate(bits)
}

// demapInto demaps observations (stream positions pos, received symbols
// ys) into the cycle's accumulated per-bit LLR array llr (length
// cycleLen·bps), summing across repeats — chase combining. It returns a
// per-position coverage count.
func (m mapper) demapInto(llr []float64, covered []int, cycleLen int, pos []int, ys []complex128, noiseVar float64) {
	bps := m.bitsPerSymbol()
	raw := m.qam.DemapSoft(ys, noiseVar, nil)
	for i, p := range pos {
		if cycleLen > 0 {
			p %= cycleLen
		}
		for b := 0; b < bps; b++ {
			llr[p*bps+b] += raw[i*bps+b]
		}
		covered[p]++
	}
}

// estimateNoiseVar blindly estimates the channel's complex noise
// variance from received symbols: every constellation in the repository
// has unit average power, so E|y|² = 1 + σ². The floor keeps LLRs finite
// on clean channels and short observation windows.
func estimateNoiseVar(ys []complex128) float64 {
	if len(ys) == 0 {
		return 1
	}
	p := 0.0
	for _, y := range ys {
		p += real(y)*real(y) + imag(y)*imag(y)
	}
	s2 := p/float64(len(ys)) - 1
	if s2 < 1e-3 {
		s2 = 1e-3
	}
	return s2
}

// unpackBits expands nBits packed MSB-first bytes into one bit per byte.
func unpackBits(packed []byte, nBits int) []byte {
	out := make([]byte, nBits)
	for i := 0; i < nBits; i++ {
		out[i] = packed[i/8] >> (7 - uint(i%8)) & 1
	}
	return out
}

// packBits packs bit-per-byte values MSB-first into nBits/8 bytes
// (nBits is a multiple of 8 for every framed block).
func packBits(bits []byte, nBits int) []byte {
	out := make([]byte, (nBits+7)/8)
	for i := 0; i < nBits && i < len(bits); i++ {
		if bits[i]&1 != 0 {
			out[i/8] |= 1 << (7 - uint(i%8))
		}
	}
	return out
}

// obsStore is the Add/Reset half shared by every stream decoder: the
// deduplicated (position, symbol) observations since the last Reset.
type obsStore struct {
	pos []int
	ys  []complex128
}

func (o *obsStore) Reset() {
	o.pos = o.pos[:0]
	o.ys = o.ys[:0]
}

func (o *obsStore) Add(ids []SymbolID, syms []complex128) {
	for i, id := range ids {
		o.pos = append(o.pos, streamPos(id))
		o.ys = append(o.ys, syms[i])
	}
}
