package code

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"spinal/internal/core"
)

// awgn perturbs symbols with complex Gaussian noise of total variance
// sigma2 (unit-power constellations: SNR = 1/sigma2).
func awgn(rng *rand.Rand, syms []complex128, sigma2 float64) []complex128 {
	s := math.Sqrt(sigma2 / 2)
	out := make([]complex128, len(syms))
	for i, y := range syms {
		out[i] = y + complex(rng.NormFloat64()*s, rng.NormFloat64()*s)
	}
	return out
}

// roundTrip drives one block through schedule → encode → AWGN → decode
// until the decoder reproduces the message, checking the schedule never
// repeats an ID along the way. Returns the symbols spent, or -1.
func roundTrip(t *testing.T, c Code, nBits int, snrDB float64, maxSymbols int, seed int64) int {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	msg := make([]byte, nBits/8)
	rng.Read(msg)

	sched := c.NewSchedule(nBits)
	enc := c.NewEncoder(msg, nBits)
	dec := c.NewDecoder(nBits)
	sigma2 := math.Pow(10, -snrDB/10)

	seen := make(map[SymbolID]bool)
	sent, empty := 0, 0
	for sent < maxSymbols {
		ids := sched.NextSubpass()
		if len(ids) == 0 {
			if empty++; empty > 64 {
				break // schedule exhausted (bounded-pass codes)
			}
			continue
		}
		empty = 0
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("%s: schedule repeated ID %+v", c.Name(), id)
			}
			seen[id] = true
			if int(id.Chunk) >= c.Chunks(nBits) {
				t.Fatalf("%s: chunk %d out of range", c.Name(), id.Chunk)
			}
		}
		syms := enc.Symbols(ids)
		if len(syms) != len(ids) {
			t.Fatalf("%s: %d ids but %d symbols", c.Name(), len(ids), len(syms))
		}
		dec.Add(ids, awgn(rng, syms, sigma2))
		sent += len(ids)
		if got, ok := dec.Decode(); ok && bytes.Equal(got, msg) {
			return sent
		}
	}
	return -1
}

// codeUnderTest pairs a code with an SNR it must comfortably decode at.
type codeUnderTest struct {
	c     Code
	snrDB float64
}

func codesUnderTest() []codeUnderTest {
	ldpcHalf, _ := LDPCPinned("1/2")
	return []codeUnderTest{
		{Spinal(core.DefaultParams()), 15},
		{Raptor(), 15},
		{Strider(), 10},
		{Turbo(), 6},
		{LDPC(""), 12},
		{ldpcHalf, 12},
	}
}

func TestRoundTripAllCodes(t *testing.T) {
	for _, cut := range codesUnderTest() {
		cut := cut
		t.Run(cut.c.Name(), func(t *testing.T) {
			for _, nBits := range []int{64, 192} {
				spent := roundTrip(t, cut.c, nBits, cut.snrDB, 80*nBits, int64(nBits))
				if spent < 0 {
					t.Fatalf("%s: no decode of %d bits at %.0f dB", cut.c.Name(), nBits, cut.snrDB)
				}
				t.Logf("%s: %d bits at %.0f dB decoded after %d symbols (%.2f b/sym)",
					cut.c.Name(), nBits, cut.snrDB, spent, float64(nBits)/float64(spent))
			}
		})
	}
}

// TestEncoderRegeneration checks the stateless-encoder contract: any ID
// subset, in any order, yields the same symbols as a bulk query — the
// property the engine's pooled per-batch encoders rely on.
func TestEncoderRegeneration(t *testing.T) {
	const nBits = 64
	for _, cut := range codesUnderTest() {
		cut := cut
		t.Run(cut.c.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			msg := make([]byte, nBits/8)
			rng.Read(msg)
			sched := cut.c.NewSchedule(nBits)
			var ids []SymbolID
			for len(ids) < 40 {
				ids = append(ids, sched.NextSubpass()...)
			}
			bulk := cut.c.NewEncoder(msg, nBits).Symbols(ids)
			// A second encoder queried back to front must agree.
			enc2 := cut.c.NewEncoder(msg, nBits)
			for i := len(ids) - 1; i >= 0; i-- {
				got := enc2.Symbols(ids[i : i+1])
				if len(got) != 1 || got[0] != bulk[i] {
					t.Fatalf("%s: symbol %d regenerated as %v, want %v", cut.c.Name(), i, got, bulk[i])
				}
			}
		})
	}
}

// TestDecoderReset checks Reset discards observations: a decoder reused
// across blocks must decode the second block's message, not the first's.
func TestDecoderReset(t *testing.T) {
	const nBits = 64
	for _, cut := range codesUnderTest() {
		cut := cut
		t.Run(cut.c.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			msgA := make([]byte, nBits/8)
			msgB := make([]byte, nBits/8)
			rng.Read(msgA)
			rng.Read(msgB)
			dec := cut.c.NewDecoder(nBits)
			// Fill with block A cleanly, then Reset and decode block B.
			feed := func(msg []byte) {
				sched := cut.c.NewSchedule(nBits)
				enc := cut.c.NewEncoder(msg, nBits)
				sent := 0
				for sent < 20*nBits {
					ids := sched.NextSubpass()
					if len(ids) == 0 {
						break
					}
					dec.Add(ids, awgn(rng, enc.Symbols(ids), math.Pow(10, -cut.snrDB/10)))
					sent += len(ids)
					if got, ok := dec.Decode(); ok && bytes.Equal(got, msg) {
						return
					}
				}
				t.Fatalf("%s: feed did not decode", cut.c.Name())
			}
			feed(msgA)
			dec.Reset()
			feed(msgB)
		})
	}
}

func TestParse(t *testing.T) {
	p := core.DefaultParams()
	for spec, want := range map[string]string{
		"spinal": "spinal", "": "spinal", "raptor": "raptor",
		"strider": "strider", "turbo": "turbo", "ldpc": "ldpc",
		"ldpc:3/4": "ldpc:3/4",
	} {
		c, err := Parse(spec, p)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if c.Name() != want {
			t.Fatalf("Parse(%q).Name() = %q, want %q", spec, c.Name(), want)
		}
	}
	for _, bad := range []string{"ldpc:7/8", "spinal:x", "hamming", "raptor:1"} {
		if _, err := Parse(bad, p); err == nil {
			t.Fatalf("Parse(%q) succeeded, want error", bad)
		}
	}
	if _, ok := SpinalParams(Spinal(p)); !ok {
		t.Fatal("SpinalParams failed to unwrap the spinal adapter")
	}
	if _, ok := SpinalParams(Raptor()); ok {
		t.Fatal("SpinalParams unwrapped a non-spinal code")
	}
}
