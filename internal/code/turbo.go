package code

import (
	"sync"

	"spinal/internal/turbo"
)

// turboSeed fixes the interleaver both ends share.
const turboSeed = 0x70b0

// turboSections orders the rate-1/5 turbo coded stream for incremental
// redundancy: systematic bits first, then one parity stream per
// constituent encoder, then the second pair. A stream prefix is a
// sensibly punctured turbo code (rate 1 → 1/2 → 1/3 → 1/4 → 1/5) instead
// of a prefix of the per-bit interleaved layout, which would cover only
// the first info positions. Entry s maps section s to its offset inside
// turbo.Encode's per-bit [sys, p1a, p1b, p2a, p2b] groups.
var turboSections = [5]int{0, 1, 3, 2, 4}

// turboCode adapts a plain (non-layered) rate-1/5 turbo code behind the
// Code interface over QPSK: a fixed-rate ARQ-style baseline — the stream
// cycles the codeword and the receiver chase-combines repeats.
type turboCode struct {
	m mapper

	mu    sync.Mutex
	codes map[int]*turbo.Code // keyed by nBits
}

// Turbo builds the plain turbo/QPSK fixed-rate baseline.
func Turbo() Code {
	return &turboCode{m: newMapper(4), codes: make(map[int]*turbo.Code)}
}

func (t *turboCode) Name() string { return "turbo" }

func (t *turboCode) Chunks(int) int { return 1 }

func (t *turboCode) codeFor(nBits int) *turbo.Code {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.codes[nBits]
	if !ok {
		c = turbo.NewCode(nBits, true, turboSeed)
		t.codes[nBits] = c
	}
	return c
}

// streamFromCoded rearranges turbo.Encode's per-bit groups into the
// incremental-redundancy section order.
func streamFromCoded(coded []byte, n int) []byte {
	stream := make([]byte, 5*n)
	for s, off := range turboSections {
		for i := 0; i < n; i++ {
			stream[s*n+i] = coded[i*5+off]
		}
	}
	return stream
}

// codedLLRFromStream is the inverse mapping for the decoder: stream-order
// accumulated LLRs back into turbo.Decode's per-bit group layout.
func codedLLRFromStream(llr []float64, n int) []float64 {
	grouped := make([]float64, 5*n)
	for s, off := range turboSections {
		for i := 0; i < n; i++ {
			grouped[i*5+off] = llr[s*n+i]
		}
	}
	return grouped
}

func (t *turboCode) NewSchedule(nBits int) Schedule {
	// One pass is the full rate-1/5 codeword; one subpass per section.
	return newStreamSchedule(5*nBits/2, 5, 0)
}

// turboEncoder serves QPSK symbols from the IR-ordered coded stream.
type turboEncoder struct {
	m      mapper
	stream []byte
	cycle  int
}

func (t *turboCode) NewEncoder(bits []byte, nBits int) Encoder {
	coded := t.codeFor(nBits).Encode(unpackBits(bits, nBits))
	return &turboEncoder{m: t.m, stream: streamFromCoded(coded, nBits), cycle: 5 * nBits / 2}
}

func (e *turboEncoder) Symbols(ids []SymbolID) []complex128 {
	pos := make([]int, len(ids))
	for i, id := range ids {
		pos[i] = streamPos(id)
	}
	return e.m.modulate(e.stream, e.cycle, pos)
}

// turboDecoder chase-combines stream LLRs across cycles and runs
// iterative log-MAP once enough of the stream is covered.
type turboDecoder struct {
	c     *turbo.Code
	m     mapper
	nBits int
	cycle int
	obsStore
}

func (t *turboCode) NewDecoder(nBits int) Decoder {
	return &turboDecoder{c: t.codeFor(nBits), m: t.m, nBits: nBits, cycle: 5 * nBits / 2}
}

func (d *turboDecoder) Decode() ([]byte, bool) {
	// Below one coded bit per information bit no attempt can succeed.
	if len(d.ys)*d.m.bitsPerSymbol() < d.nBits {
		return nil, false
	}
	noiseVar := estimateNoiseVar(d.ys)
	covered := make([]int, d.cycle)
	llr := make([]float64, d.cycle*d.m.bitsPerSymbol())
	d.m.demapInto(llr, covered, d.cycle, d.pos, d.ys, noiseVar)
	info := d.c.Decode(codedLLRFromStream(llr[:5*d.nBits], d.nBits), 8)
	// The log-MAP decoder has no convergence flag; the link's CRC
	// arbitrates.
	return packBits(info, d.nBits), true
}
