package ofdm

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFFTKnownValues(t *testing.T) {
	// FFT of an impulse is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	FFT(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT bin %d = %v, want 1", i, v)
		}
	}
	// FFT of a constant is an impulse at DC.
	for i := range x {
		x[i] = 1
	}
	FFT(x)
	if cmplx.Abs(x[0]-8) > 1e-12 {
		t.Fatalf("DC bin = %v, want 8", x[0])
	}
	for i := 1; i < 8; i++ {
		if cmplx.Abs(x[i]) > 1e-12 {
			t.Fatalf("bin %d = %v, want 0", i, x[i])
		}
	}
}

func TestFFTSingleTone(t *testing.T) {
	// A complex exponential at bin 3 transforms to an impulse at bin 3.
	n := 16
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, 2*math.Pi*3*float64(i)/float64(n)))
	}
	FFT(x)
	for i := range x {
		want := 0.0
		if i == 3 {
			want = float64(n)
		}
		if cmplx.Abs(x[i]-complex(want, 0)) > 1e-9 {
			t.Fatalf("bin %d = %v, want %g", i, x[i], want)
		}
	}
}

func TestFFTIFFTRoundTrip(t *testing.T) {
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (3 + rng.Intn(5))
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		FFT(x)
		IFFT(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 64
	x := make([]complex128, n)
	var timeE float64
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		timeE += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
	}
	FFT(x)
	var freqE float64
	for _, v := range x {
		freqE += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(freqE/float64(n)-timeE) > 1e-9*timeE {
		t.Fatalf("Parseval violated: time %g vs freq/N %g", timeE, freqE/float64(n))
	}
}

func TestFFTPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for non-power-of-two length")
		}
	}()
	FFT(make([]complex128, 12))
}

func TestScramblerPeriod(t *testing.T) {
	// A 7-bit maximal LFSR has period 127.
	s := NewScrambler(0x7F)
	var first [127]byte
	for i := range first {
		first[i] = s.NextBit()
	}
	for i := 0; i < 127; i++ {
		if s.NextBit() != first[i] {
			t.Fatalf("sequence not periodic with period 127 at %d", i)
		}
	}
	ones := 0
	for _, b := range first {
		ones += int(b)
	}
	if ones != 64 {
		t.Fatalf("maximal LFSR should emit 64 ones per period, got %d", ones)
	}
}

func TestScrambleInvolution(t *testing.T) {
	bits := make([]byte, 200)
	rng := rand.New(rand.NewSource(3))
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	a := NewScrambler(0x5D).Scramble(bits)
	b := NewScrambler(0x5D).Scramble(a)
	for i := range bits {
		if b[i] != bits[i] {
			t.Fatal("descrambling failed")
		}
	}
}

func TestAssembleLayout(t *testing.T) {
	mod := NewModulator(1)
	data := make([]complex128, DataSubcarriers)
	for i := range data {
		data[i] = complex(1, 0)
	}
	td := mod.Assemble(data)
	if len(td) != 64 {
		t.Fatalf("time-domain length %d, want 64", len(td))
	}
	// Transform back and verify nulls and pilots.
	freq := append([]complex128(nil), td...)
	FFT(freq)
	if cmplx.Abs(freq[0]) > 1e-9 {
		t.Fatal("DC subcarrier not null")
	}
	for k := 27; k <= 37; k++ {
		if cmplx.Abs(freq[k]) > 1e-9 {
			t.Fatalf("guard subcarrier %d not null", k)
		}
	}
	for _, k := range []int{7, 21} {
		if cmplx.Abs(freq[k]-1) > 1e-9 {
			t.Fatalf("pilot at +%d missing", k)
		}
		if cmplx.Abs(freq[64-k]-1) > 1e-9 {
			t.Fatalf("pilot at -%d missing", k)
		}
	}
}

func TestPAPRBounds(t *testing.T) {
	// Constant-envelope signal has PAPR 1 (0 dB).
	x := make([]complex128, 64)
	for i := range x {
		x[i] = cmplx.Exp(complex(0, float64(i)))
	}
	if p := PAPR(x); math.Abs(p-1) > 1e-12 {
		t.Fatalf("constant envelope PAPR %g, want 1", p)
	}
	// An impulse has PAPR N.
	y := make([]complex128, 64)
	y[0] = 1
	if p := PAPR(y); math.Abs(p-64) > 1e-9 {
		t.Fatalf("impulse PAPR %g, want 64", p)
	}
}

func TestTable81Shape(t *testing.T) {
	// The Table 8.1 claim: means within ~0.3 dB of each other across
	// constellations; dense constellations do not raise OFDM PAPR.
	const trials = 3000
	qam4 := MeasurePAPR(QAMSource(4), trials, 4, 1)
	qam64 := MeasurePAPR(QAMSource(64), trials, 4, 2)
	dense := MeasurePAPR(QAMSource(1<<20), trials, 4, 3)
	gauss := MeasurePAPR(TruncGaussianSource(2), trials, 4, 4)

	means := []float64{qam4.MeanDB, qam64.MeanDB, dense.MeanDB, gauss.MeanDB}
	lo, hi := means[0], means[0]
	for _, m := range means {
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	if hi-lo > 0.35 {
		t.Fatalf("constellation PAPR means spread %.2f dB: %v", hi-lo, means)
	}
	// Sanity: OFDM PAPR means land in the 6–9 dB region.
	if qam4.MeanDB < 6 || qam4.MeanDB > 9 {
		t.Fatalf("QAM-4 mean PAPR %.2f dB outside plausible range", qam4.MeanDB)
	}
	// Tails exceed means.
	if qam4.P9999DB <= qam4.MeanDB {
		t.Fatal("99.99th percentile not above mean")
	}
}

func TestConstellationSourcesUnitPower(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for name, src := range map[string]ConstellationSource{
		"QAM-4":    QAMSource(4),
		"QAM-64":   QAMSource(64),
		"QAM-2^20": QAMSource(1 << 20),
		"gauss":    TruncGaussianSource(2),
	} {
		var p float64
		const n = 100000
		for i := 0; i < n; i++ {
			v := src(rng)
			p += real(v)*real(v) + imag(v)*imag(v)
		}
		p /= n
		if math.Abs(p-1) > 0.03 {
			t.Errorf("%s: average power %.3f, want 1", name, p)
		}
	}
}

func BenchmarkFFT64(b *testing.B) {
	x := make([]complex128, 64)
	for i := range x {
		x[i] = complex(float64(i), -float64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FFT(x)
	}
}

func BenchmarkPAPRSymbol(b *testing.B) {
	src := QAMSource(64)
	rng := rand.New(rand.NewSource(70))
	mod := NewModulator(4)
	data := make([]complex128, DataSubcarriers)
	for i := range data {
		data[i] = src(rng)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PAPR(mod.Assemble(data))
	}
}
