// Package ofdm implements the 802.11a/g OFDM machinery needed for the
// peak-to-average power ratio study of §8.4 (Table 8.1): a radix-2
// FFT/IFFT, the 64-subcarrier symbol layout (48 data subcarriers, 4 BPSK
// pilots, 12 nulls), the 802.11 scrambler, and PAPR measurement with
// oversampling.
//
// The §8.4 result this reproduces: once symbols ride on OFDM, the PAPR of
// dense constellations (QAM-2^20, truncated Gaussian) is indistinguishable
// from QAM-4's, so spinal codes' dense constellations cost nothing in
// radio linearity.
package ofdm

import (
	"math"
	"math/cmplx"
	"math/rand"
	"sort"
)

// FFT computes the in-place radix-2 decimation-in-time FFT of x, whose
// length must be a power of two.
func FFT(x []complex128) {
	fftInternal(x, false)
}

// IFFT computes the in-place inverse FFT of x (normalized by 1/N).
func IFFT(x []complex128) {
	fftInternal(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

func fftInternal(x []complex128, inverse bool) {
	n := len(x)
	if n&(n-1) != 0 || n == 0 {
		panic("ofdm: FFT length must be a power of two")
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := x[i+j]
				v := x[i+j+length/2] * w
				x[i+j] = u + v
				x[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
}

// Scrambler is the 802.11 frame-synchronous scrambler: a 7-bit LFSR with
// polynomial x^7 + x^4 + 1.
type Scrambler struct {
	state uint8
}

// NewScrambler creates a scrambler with the given nonzero 7-bit initial
// state.
func NewScrambler(state uint8) *Scrambler {
	if state&0x7F == 0 {
		panic("ofdm: scrambler state must be nonzero")
	}
	return &Scrambler{state: state & 0x7F}
}

// NextBit returns the next scrambler sequence bit.
func (s *Scrambler) NextBit() byte {
	b := ((s.state >> 6) ^ (s.state >> 3)) & 1
	s.state = (s.state<<1 | b) & 0x7F
	return b
}

// Scramble XORs data bits (one per byte) with the scrambler sequence.
func (s *Scrambler) Scramble(bits []byte) []byte {
	out := make([]byte, len(bits))
	for i, b := range bits {
		out[i] = (b & 1) ^ s.NextBit()
	}
	return out
}

// Subcarrier layout per 802.11a/g: indices −26..−1, 1..26 are used; ±7 and
// ±21 carry BPSK pilots; DC and |k|>26 are null.
const (
	NumSubcarriers  = 64
	DataSubcarriers = 48
)

var pilotIdx = [4]int{-21, -7, 7, 21}

// isPilot reports whether logical subcarrier k carries a pilot.
func isPilot(k int) bool {
	return k == -21 || k == -7 || k == 7 || k == 21
}

// Modulator assembles 802.11a/g OFDM symbols and measures their PAPR.
type Modulator struct {
	// Oversample is the IFFT oversampling factor used to approximate the
	// continuous-time peak (4 is standard for PAPR studies).
	Oversample int
	pilotSign  float64
}

// NewModulator creates a modulator with the given oversampling factor.
func NewModulator(oversample int) *Modulator {
	if oversample < 1 {
		panic("ofdm: oversampling factor must be ≥ 1")
	}
	return &Modulator{Oversample: oversample, pilotSign: 1}
}

// Assemble maps 48 data constellation points onto one oversampled OFDM
// time-domain symbol. Pilots are BPSK at the standard positions.
func (m *Modulator) Assemble(data []complex128) []complex128 {
	if len(data) != DataSubcarriers {
		panic("ofdm: need exactly 48 data symbols")
	}
	n := NumSubcarriers * m.Oversample
	freq := make([]complex128, n)
	di := 0
	for k := -26; k <= 26; k++ {
		if k == 0 {
			continue
		}
		var v complex128
		if isPilot(k) {
			v = complex(m.pilotSign, 0)
		} else {
			v = data[di]
			di++
		}
		// Map logical subcarrier k to FFT bin (negative frequencies wrap).
		bin := k
		if bin < 0 {
			bin += n
		}
		freq[bin] = v
	}
	IFFT(freq)
	return freq
}

// PAPR returns the linear peak-to-average power ratio of a time-domain
// symbol.
func PAPR(t []complex128) float64 {
	var peak, sum float64
	for _, s := range t {
		p := real(s)*real(s) + imag(s)*imag(s)
		sum += p
		if p > peak {
			peak = p
		}
	}
	if sum == 0 {
		return 0
	}
	return peak / (sum / float64(len(t)))
}

// PAPRdB converts a linear PAPR to decibels.
func PAPRdB(linear float64) float64 { return 10 * math.Log10(linear) }

// ConstellationSource yields one random data subcarrier value per call;
// Table 8.1 compares several of these at equal average power.
type ConstellationSource func(rng *rand.Rand) complex128

// QAMSource returns a source drawing uniformly from a Gray-agnostic
// square QAM with the given number of points and unit average power.
func QAMSource(points int) ConstellationSource {
	bitsPerDim := 0
	for p := points; p > 1; p >>= 2 {
		bitsPerDim++
	}
	m := 1 << uint(bitsPerDim)
	scale := math.Sqrt(0.5 * 3 / float64(m*m-1))
	return func(rng *rand.Rand) complex128 {
		i := float64(2*rng.Intn(m)-m+1) * scale
		q := float64(2*rng.Intn(m)-m+1) * scale
		return complex(i, q)
	}
}

// TruncGaussianSource returns a source with per-dimension truncated
// Gaussian values (β-truncation, unit average symbol power), matching the
// spinal c→∞ constellation.
func TruncGaussianSource(beta float64) ConstellationSource {
	// Rejection sample N(0, 1/2) per dimension truncated at ±β/√2·√...:
	// target per-dim variance 1/2 before renormalization; compute the
	// truncated variance to renormalize exactly.
	sd := 1.0
	// variance of standard normal truncated at ±β.
	phi := math.Exp(-beta*beta/2) / math.Sqrt(2*math.Pi)
	z := math.Erf(beta / math.Sqrt2)
	trVar := 1 - 2*beta*phi/z
	scale := math.Sqrt(0.5 / trVar)
	return func(rng *rand.Rand) complex128 {
		draw := func() float64 {
			for {
				v := rng.NormFloat64() * sd
				if math.Abs(v) <= beta {
					return v * scale
				}
			}
		}
		return complex(draw(), draw())
	}
}

// PAPRStats summarizes a PAPR measurement campaign.
type PAPRStats struct {
	MeanDB  float64
	P9999DB float64 // 99.99th percentile ("99.99% below" in Table 8.1)
	Trials  int
}

// MeasurePAPR runs trials OFDM symbols of random data from src and
// reports mean and 99.99th-percentile PAPR in dB.
func MeasurePAPR(src ConstellationSource, trials int, oversample int, seed int64) PAPRStats {
	rng := rand.New(rand.NewSource(seed))
	mod := NewModulator(oversample)
	data := make([]complex128, DataSubcarriers)
	vals := make([]float64, trials)
	var sum float64
	for t := 0; t < trials; t++ {
		for i := range data {
			data[i] = src(rng)
		}
		db := PAPRdB(PAPR(mod.Assemble(data)))
		vals[t] = db
		sum += db
	}
	// 99.99th percentile by nearest rank.
	sort.Float64s(vals)
	rank := int(math.Ceil(0.9999*float64(trials))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= trials {
		rank = trials - 1
	}
	return PAPRStats{MeanDB: sum / float64(trials), P9999DB: vals[rank], Trials: trials}
}
