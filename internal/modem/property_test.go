package modem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropertyQAMRoundTrip: modulate→hard demap is the identity for any
// bit pattern on any square QAM.
func TestPropertyQAMRoundTrip(t *testing.T) {
	qams := []*QAM{NewQAM(4), NewQAM(16), NewQAM(64), NewQAM(256)}
	err := quick.Check(func(seed int64, which uint8) bool {
		q := qams[which%4]
		rng := rand.New(rand.NewSource(seed))
		bits := make([]byte, q.BitsPerSymbol()*8)
		for i := range bits {
			bits[i] = byte(rng.Intn(2))
		}
		llrs := q.DemapSoft(q.Modulate(bits), 1e-5, nil)
		for i, l := range llrs {
			got := byte(0)
			if l < 0 {
				got = 1
			}
			if got != bits[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 60})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPropertyLLRSignConsistency: the demapper's LLR for a bit flips sign
// when the transmitted bit flips, all else equal (single-symbol check).
func TestPropertyLLRSignConsistency(t *testing.T) {
	q := NewQAM(16)
	err := quick.Check(func(v uint8, bit uint8) bool {
		b := int(bit) % q.BitsPerSymbol()
		bits := make([]byte, q.BitsPerSymbol())
		for i := range bits {
			bits[i] = byte(v >> uint(i) & 1)
		}
		flipped := append([]byte(nil), bits...)
		flipped[b] ^= 1
		l0 := q.DemapSoft(q.Modulate(bits), 0.05, nil)[b]
		l1 := q.DemapSoft(q.Modulate(flipped), 0.05, nil)[b]
		return (l0 > 0) != (l1 > 0)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMapperTableBounds: every mapper output is finite and within the
// stated peak bounds.
func TestMapperTableBounds(t *testing.T) {
	for _, m := range []Mapper{
		NewUniform(1), NewUniform(6), NewUniform(16),
		NewTruncGaussian(6, 2), NewTruncGaussian(10, 3),
	} {
		n := 1 << uint(m.Bits())
		for b := 0; b < n; b++ {
			v := m.Map(uint32(b))
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: non-finite output at %d", m.Name(), b)
			}
			if math.Abs(v) > 4 {
				t.Fatalf("%s: implausible amplitude %g", m.Name(), v)
			}
		}
		if m.Name() == "" {
			t.Fatal("empty mapper name")
		}
	}
}

// TestMapperInputMasking: inputs beyond c bits wrap (mask) rather than
// panic — the encoder hands raw RNG words to the table.
func TestMapperInputMasking(t *testing.T) {
	m := NewUniform(6)
	if m.Map(64) != m.Map(0) || m.Map(0xFFFFFFFF) != m.Map(63) {
		t.Fatal("uniform mapper does not mask high bits")
	}
	g := NewTruncGaussian(6, 2)
	if g.Map(64) != g.Map(0) {
		t.Fatal("gaussian mapper does not mask high bits")
	}
}

func TestModemPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("NewUniform(0)", func() { NewUniform(0) })
	mustPanic("NewUniform(17)", func() { NewUniform(17) })
	mustPanic("NewTruncGaussian beta", func() { NewTruncGaussian(6, 0) })
	mustPanic("QAM modulate odd bits", func() { NewQAM(4).Modulate(make([]byte, 3)) })
	mustPanic("QPSK odd bits", func() { QPSK{}.Modulate(make([]byte, 3)) })
	mustPanic("PAM bits", func() { PAM(0) })
}
