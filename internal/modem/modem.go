// Package modem implements the constellation machinery shared by all
// codes in the repository.
//
// For spinal codes it provides the two §3.3 constellation mapping
// functions — uniform and truncated Gaussian — which map a c-bit RNG
// output to one real dimension (I or Q are generated independently). For
// the baseline codes it provides Gray-coded square QAM modulation and the
// soft demapper (per-bit log-likelihood ratios) that the LDPC and Raptor
// decoders consume, plus QPSK for Strider's layers.
//
// The average transmit power of every constellation here is normalized to
// 1 per complex symbol (0.5 per real dimension) so that linear SNR equals
// signal power over total complex noise power everywhere.
package modem

import (
	"fmt"
	"math"
)

// Mapper converts a c-bit integer to one real constellation dimension.
// Implementations precompute a lookup table; Map must be safe for
// concurrent use.
type Mapper interface {
	// Map returns the real-dimension amplitude for the c-bit value b.
	Map(b uint32) float64
	// Bits reports c, the number of input bits consumed per dimension.
	Bits() int
	// Name identifies the mapper in experiment output.
	Name() string
}

// Uniform is the §3.3 uniform mapping: b → (u − 1/2)·√(6P) with
// u = (b + 1/2)/2^c and per-dimension power P = 1/2, giving unit power per
// complex symbol.
type Uniform struct {
	c     int
	table []float64
}

// NewUniform builds the uniform mapper for c-bit inputs (1 ≤ c ≤ 16).
func NewUniform(c int) *Uniform {
	checkC(c)
	m := &Uniform{c: c, table: make([]float64, 1<<uint(c))}
	// §3.3: b → (u − 1/2)·√(6P) with P the total symbol power (1 here);
	// the per-dimension variance is then 6P/12 = P/2 = perDimPower.
	scale := math.Sqrt(6 * 2 * perDimPower)
	n := float64(int(1) << uint(c))
	for b := range m.table {
		u := (float64(b) + 0.5) / n
		m.table[b] = (u - 0.5) * scale
	}
	return m
}

// Map implements Mapper.
func (m *Uniform) Map(b uint32) float64 { return m.table[b&uint32(len(m.table)-1)] }

// Bits implements Mapper.
func (m *Uniform) Bits() int { return m.c }

// Name implements Mapper.
func (m *Uniform) Name() string { return fmt.Sprintf("uniform(c=%d)", m.c) }

// perDimPower is the average power per real dimension (total complex
// symbol power 1).
const perDimPower = 0.5

// TruncGaussian is the §3.3 truncated Gaussian mapping:
// b → Φ⁻¹(γ + (1−2γ)u)·√P with γ = Φ(−β). β controls the truncation
// width; the paper uses β = 2.
type TruncGaussian struct {
	c     int
	beta  float64
	table []float64
}

// NewTruncGaussian builds the truncated Gaussian mapper for c-bit inputs.
func NewTruncGaussian(c int, beta float64) *TruncGaussian {
	checkC(c)
	if beta <= 0 {
		panic("modem: beta must be positive")
	}
	m := &TruncGaussian{c: c, beta: beta, table: make([]float64, 1<<uint(c))}
	gamma := stdNormalCDF(-beta)
	n := float64(int(1) << uint(c))
	// Scale so the realized table has exactly perDimPower average power
	// (the paper notes "very small corrections to P are omitted"; we apply
	// them so all constellations compare at equal transmit power).
	var sumSq float64
	for b := range m.table {
		u := (float64(b) + 0.5) / n
		x := stdNormalInvCDF(gamma + (1-2*gamma)*u)
		m.table[b] = x
		sumSq += x * x
	}
	rms := math.Sqrt(sumSq / n)
	for b := range m.table {
		m.table[b] *= math.Sqrt(perDimPower) / rms
	}
	return m
}

// Map implements Mapper.
func (m *TruncGaussian) Map(b uint32) float64 { return m.table[b&uint32(len(m.table)-1)] }

// Bits implements Mapper.
func (m *TruncGaussian) Bits() int { return m.c }

// Name implements Mapper.
func (m *TruncGaussian) Name() string {
	return fmt.Sprintf("truncGaussian(c=%d,β=%g)", m.c, m.beta)
}

func checkC(c int) {
	if c < 1 || c > 16 {
		panic(fmt.Sprintf("modem: c = %d out of range [1,16]", c))
	}
}

// stdNormalCDF is Φ, the standard normal CDF.
func stdNormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// stdNormalInvCDF is Φ⁻¹.
func stdNormalInvCDF(p float64) float64 {
	return -math.Sqrt2 * math.Erfinv(1-2*p)
}

// PAM returns the Gray-coded 2^bits-level per-dimension amplitude table of
// a square QAM constellation with unit per-symbol (complex) power. Index
// the table with the bit group to modulate; gray[i] gives the level for
// bit pattern i.
func PAM(bits int) []float64 {
	if bits < 1 || bits > 10 {
		panic("modem: PAM bits out of range")
	}
	m := 1 << uint(bits)
	// Levels ±1, ±3, ..., ±(m−1), scaled to per-dimension power 1/2.
	// Average power of uniform PAM levels is (m²−1)/3.
	scale := math.Sqrt(perDimPower * 3 / float64(m*m-1))
	table := make([]float64, m)
	for i := 0; i < m; i++ {
		g := grayToBinary(uint32(i), bits)
		level := float64(2*int(g)-m+1) * scale
		table[i] = level
	}
	return table
}

// grayToBinary converts a Gray-coded index to its binary position so that
// adjacent PAM levels differ in exactly one input bit.
func grayToBinary(g uint32, bits int) uint32 {
	b := g
	for shift := 1; shift < bits; shift <<= 1 {
		b ^= b >> uint(shift)
	}
	return b & ((1 << uint(bits)) - 1)
}

// QAM is a Gray-coded square 2^(2·bitsPerDim)-point constellation with
// unit average power, with soft demapping.
type QAM struct {
	bitsPerDim int
	pam        []float64
}

// NewQAM builds a square QAM with the given points (must be an even power
// of two, e.g. 4, 16, 64, 256).
func NewQAM(points int) *QAM {
	bits := 0
	for p := points; p > 1; p >>= 1 {
		if p&1 != 0 {
			panic("modem: QAM points must be a power of two")
		}
		bits++
	}
	if bits%2 != 0 || bits == 0 {
		panic("modem: QAM points must be an even power of two (square)")
	}
	return &QAM{bitsPerDim: bits / 2, pam: PAM(bits / 2)}
}

// BitsPerSymbol reports the number of bits carried by one complex symbol.
func (q *QAM) BitsPerSymbol() int { return 2 * q.bitsPerDim }

// Points reports the constellation size.
func (q *QAM) Points() int { return 1 << uint(2*q.bitsPerDim) }

// Name identifies the constellation.
func (q *QAM) Name() string { return fmt.Sprintf("QAM-%d", q.Points()) }

// Modulate maps bits (len must be a multiple of BitsPerSymbol) to complex
// symbols. The first bitsPerDim bits select I, the next select Q; within a
// dimension, bit 0 is the most significant.
func (q *QAM) Modulate(bitsIn []byte) []complex128 {
	bps := q.BitsPerSymbol()
	if len(bitsIn)%bps != 0 {
		panic("modem: bit count not a multiple of bits per symbol")
	}
	out := make([]complex128, len(bitsIn)/bps)
	for s := range out {
		var iIdx, qIdx uint32
		for b := 0; b < q.bitsPerDim; b++ {
			iIdx = iIdx<<1 | uint32(bitsIn[s*bps+b]&1)
		}
		for b := 0; b < q.bitsPerDim; b++ {
			qIdx = qIdx<<1 | uint32(bitsIn[s*bps+q.bitsPerDim+b]&1)
		}
		out[s] = complex(q.pam[iIdx], q.pam[qIdx])
	}
	return out
}

// DemapSoft computes per-bit LLRs log(P(bit=0)/P(bit=1)) for each received
// symbol, given total complex noise variance noiseVar (σ² split evenly
// between dimensions) and an optional per-symbol fading coefficient
// (nil ⇒ h = 1). The demapper is exact (log-sum-exp over the PAM levels
// per dimension), which is the "careful demapping scheme that preserves
// soft information" credited in §8.2 for Raptor's strong showing.
func (q *QAM) DemapSoft(received []complex128, noiseVar float64, fading []complex128) []float64 {
	bps := q.BitsPerSymbol()
	llrs := make([]float64, len(received)*bps)
	sigma2 := noiseVar / 2 // per dimension
	for s, y := range received {
		h := complex(1, 0)
		if fading != nil {
			h = fading[s]
		}
		// Equalize: z = y·conj(h)/|h|²; effective per-dim noise var scales
		// by 1/|h|².
		habs2 := real(h)*real(h) + imag(h)*imag(h)
		if habs2 < 1e-12 {
			// Deep fade: no information.
			continue
		}
		z := y * complex(real(h)/habs2, -imag(h)/habs2)
		effSigma2 := sigma2 / habs2
		q.demapDim(real(z), effSigma2, llrs[s*bps:s*bps+q.bitsPerDim])
		q.demapDim(imag(z), effSigma2, llrs[s*bps+q.bitsPerDim:s*bps+bps])
	}
	return llrs
}

// demapDim writes bitsPerDim LLRs for one received dimension value.
func (q *QAM) demapDim(y float64, sigma2 float64, out []float64) {
	n := len(q.pam)
	// Metric per level: −(y−a)²/(2σ²). Use log-sum-exp over levels whose
	// bit is 0 vs 1.
	var metrics [1 << 10]float64
	for idx := 0; idx < n; idx++ {
		d := y - q.pam[idx]
		metrics[idx] = -d * d / (2 * sigma2)
	}
	for b := 0; b < q.bitsPerDim; b++ {
		bitMask := uint32(1) << uint(q.bitsPerDim-1-b)
		num := math.Inf(-1) // logsumexp over bit=0
		den := math.Inf(-1) // logsumexp over bit=1
		for idx := 0; idx < n; idx++ {
			if uint32(idx)&bitMask == 0 {
				num = logAdd(num, metrics[idx])
			} else {
				den = logAdd(den, metrics[idx])
			}
		}
		out[b] = num - den
	}
}

// logAdd returns log(exp(a)+exp(b)) stably.
func logAdd(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// QPSK modulates bit pairs onto the four-point constellation with unit
// power; used by Strider's layers.
type QPSK struct{}

// Modulate maps pairs of bits to complex symbols (±1/√2 per dimension).
func (QPSK) Modulate(bitsIn []byte) []complex128 {
	if len(bitsIn)%2 != 0 {
		panic("modem: QPSK needs an even number of bits")
	}
	const a = 0.7071067811865476 // 1/√2
	out := make([]complex128, len(bitsIn)/2)
	for s := range out {
		i, qd := a, a
		if bitsIn[2*s]&1 == 1 {
			i = -a
		}
		if bitsIn[2*s+1]&1 == 1 {
			qd = -a
		}
		out[s] = complex(i, qd)
	}
	return out
}

// BitsPerSymbol reports 2 for QPSK.
func (QPSK) BitsPerSymbol() int { return 2 }
