package modem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUniformPower(t *testing.T) {
	for _, c := range []int{1, 2, 4, 6, 8} {
		m := NewUniform(c)
		var sumSq float64
		n := 1 << uint(c)
		for b := 0; b < n; b++ {
			sumSq += m.Map(uint32(b)) * m.Map(uint32(b))
		}
		avg := sumSq / float64(n)
		// Per-dimension power is slightly under 1/2 for finite c (the paper
		// notes the difference vanishes as c→∞); at c=1 it is exactly
		// (1/4)·6P/... check it is within 25% and below.
		if avg > perDimPower+1e-12 {
			t.Errorf("c=%d: uniform power %g exceeds %g", c, avg, perDimPower)
		}
		if avg < perDimPower*0.7 {
			t.Errorf("c=%d: uniform power %g unexpectedly low", c, avg)
		}
	}
}

func TestUniformSymmetric(t *testing.T) {
	m := NewUniform(6)
	n := 1 << 6
	for b := 0; b < n; b++ {
		if got, want := m.Map(uint32(b)), -m.Map(uint32(n-1-b)); math.Abs(got-want) > 1e-12 {
			t.Fatalf("uniform not symmetric: b=%d %g vs %g", b, got, want)
		}
	}
}

func TestUniformMonotone(t *testing.T) {
	m := NewUniform(6)
	for b := 1; b < 64; b++ {
		if m.Map(uint32(b)) <= m.Map(uint32(b-1)) {
			t.Fatal("uniform map not strictly increasing")
		}
	}
}

func TestTruncGaussianPowerAndRange(t *testing.T) {
	m := NewTruncGaussian(6, 2)
	var sumSq, maxAbs float64
	for b := 0; b < 64; b++ {
		v := m.Map(uint32(b))
		sumSq += v * v
		if math.Abs(v) > maxAbs {
			maxAbs = math.Abs(v)
		}
	}
	avg := sumSq / 64
	if math.Abs(avg-perDimPower) > 1e-9 {
		t.Errorf("gaussian power %g, want %g", avg, perDimPower)
	}
	// β=2 truncates at ±2σ before renormalization; after renormalization
	// the peak should still be bounded by roughly β·√P'·(1+slack).
	if maxAbs > 2.5*math.Sqrt(perDimPower) {
		t.Errorf("gaussian peak %g too large", maxAbs)
	}
}

func TestTruncGaussianDenserAtCenter(t *testing.T) {
	m := NewTruncGaussian(8, 2)
	// Gaps between adjacent levels should be smaller near the center than
	// at the edges.
	centerGap := m.Map(129) - m.Map(128)
	edgeGap := m.Map(255) - m.Map(254)
	if centerGap >= edgeGap {
		t.Errorf("gaussian spacing center %g ≥ edge %g", centerGap, edgeGap)
	}
}

func TestNormalCDFInverse(t *testing.T) {
	err := quick.Check(func(x float64) bool {
		x = math.Mod(x, 3)
		p := stdNormalCDF(x)
		return math.Abs(stdNormalInvCDF(p)-x) < 1e-9
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stdNormalCDF(0)-0.5) > 1e-15 {
		t.Error("Φ(0) ≠ 0.5")
	}
}

func TestPAMGrayAdjacent(t *testing.T) {
	for _, bits := range []int{1, 2, 3, 4} {
		table := PAM(bits)
		// Sort levels and verify adjacent levels' indices differ in one bit.
		n := len(table)
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if table[order[j]] < table[order[i]] {
					order[i], order[j] = order[j], order[i]
				}
			}
		}
		for i := 1; i < n; i++ {
			x := uint(order[i] ^ order[i-1])
			ones := 0
			for ; x != 0; x &= x - 1 {
				ones++
			}
			if ones != 1 {
				t.Errorf("bits=%d: adjacent PAM levels differ in %d bits", bits, ones)
			}
		}
	}
}

func TestPAMPower(t *testing.T) {
	for _, bits := range []int{1, 2, 3, 4, 5} {
		table := PAM(bits)
		var sumSq float64
		for _, v := range table {
			sumSq += v * v
		}
		if got := sumSq / float64(len(table)); math.Abs(got-perDimPower) > 1e-12 {
			t.Errorf("bits=%d: PAM power %g, want %g", bits, got, perDimPower)
		}
	}
}

func TestQAMUnitPower(t *testing.T) {
	for _, pts := range []int{4, 16, 64, 256} {
		q := NewQAM(pts)
		rng := rand.New(rand.NewSource(1))
		bits := make([]byte, q.BitsPerSymbol()*1000)
		for i := range bits {
			bits[i] = byte(rng.Intn(2))
		}
		syms := q.Modulate(bits)
		var p float64
		for _, s := range syms {
			p += real(s)*real(s) + imag(s)*imag(s)
		}
		p /= float64(len(syms))
		if math.Abs(p-1) > 0.05 {
			t.Errorf("QAM-%d: average power %g, want 1", pts, p)
		}
	}
}

func TestQAMModulateDistinct(t *testing.T) {
	q := NewQAM(16)
	seen := make(map[complex128]bool)
	for v := 0; v < 16; v++ {
		bits := []byte{byte(v >> 3 & 1), byte(v >> 2 & 1), byte(v >> 1 & 1), byte(v & 1)}
		seen[q.Modulate(bits)[0]] = true
	}
	if len(seen) != 16 {
		t.Fatalf("QAM-16 maps 16 patterns to %d points", len(seen))
	}
}

func TestQAMDemapHardDecision(t *testing.T) {
	// At very high SNR, the sign of each LLR must recover the bits.
	for _, pts := range []int{4, 16, 64, 256} {
		q := NewQAM(pts)
		rng := rand.New(rand.NewSource(7))
		bits := make([]byte, q.BitsPerSymbol()*200)
		for i := range bits {
			bits[i] = byte(rng.Intn(2))
		}
		syms := q.Modulate(bits)
		llrs := q.DemapSoft(syms, 1e-6, nil)
		for i, llr := range llrs {
			got := byte(0)
			if llr < 0 {
				got = 1
			}
			if got != bits[i] {
				t.Fatalf("QAM-%d: bit %d wrong under noiseless demap", pts, i)
			}
		}
	}
}

func TestQAMDemapSoftens(t *testing.T) {
	// Higher noise must shrink LLR magnitudes on average.
	q := NewQAM(64)
	rng := rand.New(rand.NewSource(3))
	bits := make([]byte, q.BitsPerSymbol()*500)
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	syms := q.Modulate(bits)
	mag := func(noiseVar float64) float64 {
		llrs := q.DemapSoft(syms, noiseVar, nil)
		var s float64
		for _, l := range llrs {
			s += math.Abs(l)
		}
		return s / float64(len(llrs))
	}
	if mag(0.5) >= mag(0.01) {
		t.Fatal("LLR magnitude did not shrink with noise")
	}
}

func TestQAMDemapFading(t *testing.T) {
	// With a known fading coefficient the demapper must equalize: a rotated
	// and scaled constellation still demaps correctly at high SNR.
	q := NewQAM(16)
	rng := rand.New(rand.NewSource(9))
	bits := make([]byte, q.BitsPerSymbol()*100)
	for i := range bits {
		bits[i] = byte(rng.Intn(2))
	}
	syms := q.Modulate(bits)
	h := complex(0.6, -0.8) // |h| = 1, rotation
	faded := make([]complex128, len(syms))
	fading := make([]complex128, len(syms))
	for i := range syms {
		faded[i] = syms[i] * h
		fading[i] = h
	}
	llrs := q.DemapSoft(faded, 1e-6, fading)
	for i, llr := range llrs {
		got := byte(0)
		if llr < 0 {
			got = 1
		}
		if got != bits[i] {
			t.Fatalf("bit %d wrong under fading demap", i)
		}
	}
}

func TestQAMDeepFadeNoInfo(t *testing.T) {
	q := NewQAM(4)
	llrs := q.DemapSoft([]complex128{1 + 1i}, 0.1, []complex128{0})
	for _, l := range llrs {
		if l != 0 {
			t.Fatal("deep fade should give zero LLRs")
		}
	}
}

func TestQPSK(t *testing.T) {
	var q QPSK
	syms := q.Modulate([]byte{0, 0, 0, 1, 1, 0, 1, 1})
	if len(syms) != 4 {
		t.Fatalf("got %d symbols", len(syms))
	}
	seen := make(map[complex128]bool)
	for _, s := range syms {
		seen[s] = true
		if p := real(s)*real(s) + imag(s)*imag(s); math.Abs(p-1) > 1e-12 {
			t.Errorf("QPSK symbol power %g", p)
		}
	}
	if len(seen) != 4 {
		t.Fatalf("QPSK produced %d distinct points, want 4", len(seen))
	}
}

func TestNewQAMPanics(t *testing.T) {
	for _, pts := range []int{3, 8, 32, 0} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewQAM(%d) did not panic", pts)
				}
			}()
			NewQAM(pts)
		}()
	}
}

func TestLogAdd(t *testing.T) {
	got := logAdd(math.Log(2), math.Log(3))
	if math.Abs(got-math.Log(5)) > 1e-12 {
		t.Fatalf("logAdd = %g, want log 5", got)
	}
	if logAdd(math.Inf(-1), 1) != 1 || logAdd(1, math.Inf(-1)) != 1 {
		t.Fatal("logAdd -Inf identity broken")
	}
}
