// Package hashfn provides the hash functions used by spinal codes to build
// the spine and to generate pseudo-random symbol bits.
//
// The paper (§3.2, §7.1) requires a hash drawn from a pairwise-independent
// family, mapping a ν-bit state plus k message bits to a new ν-bit state,
// and an RNG that maps a ν-bit seed and an index to a c-bit output. The
// production choice is Jenkins' one-at-a-time hash; lookup3 and the Salsa20
// core are provided so the §7.1 comparison (no discernible performance
// difference between the three) can be reproduced.
//
// All functions here are deterministic: the encoder and decoder must agree
// on the hash, the seed, and the initial state.
package hashfn

// Hash maps a 32-bit spine state and up to 32 message bits (the low k bits
// of m) to a new 32-bit state. Implementations must be deterministic.
type Hash interface {
	// Sum computes the next spine value from the previous state and k
	// message bits. k is the number of significant low bits in m and must
	// be in [1, 32].
	Sum(state uint32, m uint32, k int) uint32
	// Name reports a short identifier used in experiment output.
	Name() string
}

// OneAtATime is Jenkins' one-at-a-time hash, the implementation choice of
// the paper (§7.1: 6 XORs, 15 shifts, 10 additions per application). The
// zero value uses seed 0; a non-zero seed plays the role of the paper's
// pseudo-random s0 scrambler, selecting a member of the hash family.
type OneAtATime struct {
	// Seed perturbs the hash; encoder and decoder must share it.
	Seed uint32
}

// Name implements Hash.
func (OneAtATime) Name() string { return "one-at-a-time" }

// Sum implements Hash. It feeds the four state bytes and ⌈k/8⌉ message
// bytes through the one-at-a-time mixing function.
func (o OneAtATime) Sum(state uint32, m uint32, k int) uint32 {
	h := o.Seed
	h = oaatByte(h, byte(state))
	h = oaatByte(h, byte(state>>8))
	h = oaatByte(h, byte(state>>16))
	h = oaatByte(h, byte(state>>24))
	for ; k > 0; k -= 8 {
		h = oaatByte(h, byte(m))
		m >>= 8
	}
	h += h << 3
	h ^= h >> 11
	h += h << 15
	return h
}

func oaatByte(h uint32, b byte) uint32 {
	h += uint32(b)
	h += h << 10
	h ^= h >> 6
	return h
}

// AsOneAtATime reports whether h is the OneAtATime hash (by value or by
// pointer), returning the concrete value. Decoders use it at
// construction to select their specialized batched evaluation paths.
func AsOneAtATime(h Hash) (OneAtATime, bool) {
	switch c := h.(type) {
	case OneAtATime:
		return c, true
	case *OneAtATime:
		return *c, true
	}
	return OneAtATime{}, false
}

// Lookup3 is Jenkins' lookup3 hash (hashword variant over 32-bit words).
type Lookup3 struct {
	Seed uint32
}

// Name implements Hash.
func (Lookup3) Name() string { return "lookup3" }

// Sum implements Hash. The state and message bits form a two-word input to
// hashword.
func (l Lookup3) Sum(state uint32, m uint32, k int) uint32 {
	// Standard lookup3 initialization for a 2-word input.
	a := uint32(0xdeadbeef) + 2<<2 + l.Seed
	b := a
	c := a
	a += state
	b += m & maskBits(k)
	return lookup3Final(a, b, c)
}

func maskBits(k int) uint32 {
	if k >= 32 {
		return ^uint32(0)
	}
	return (1 << uint(k)) - 1
}

func rot32(x uint32, n uint) uint32 { return x<<n | x>>(32-n) }

func lookup3Final(a, b, c uint32) uint32 {
	c ^= b
	c -= rot32(b, 14)
	a ^= c
	a -= rot32(c, 11)
	b ^= a
	b -= rot32(a, 25)
	c ^= b
	c -= rot32(b, 16)
	a ^= c
	a -= rot32(c, 4)
	b ^= a
	b -= rot32(a, 14)
	c ^= b
	c -= rot32(b, 24)
	return c
}

// Salsa20 uses the Salsa20/20 core as a hash, the cryptographic-strength
// reference the paper started with (§7.1). It is far more expensive than
// OneAtATime but has demonstrated mixing properties.
type Salsa20 struct {
	Seed uint32
}

// Name implements Hash.
func (Salsa20) Name() string { return "salsa20" }

// Sum implements Hash. The 16-word Salsa20 input block holds the standard
// "expand 32-byte k" constants, the state, the message bits and the seed;
// the output is the first word of the core function.
func (s Salsa20) Sum(state uint32, m uint32, k int) uint32 {
	var in [16]uint32
	in[0] = 0x61707865
	in[5] = 0x3320646e
	in[10] = 0x79622d32
	in[15] = 0x6b206574
	in[1] = state
	in[2] = m & maskBits(k)
	in[3] = s.Seed
	in[4] = uint32(k)
	out := salsa20Core(&in)
	return out[0]
}

func salsa20Core(in *[16]uint32) [16]uint32 {
	x := *in
	for i := 0; i < 20; i += 2 {
		// Column round.
		x[4] ^= rot32(x[0]+x[12], 7)
		x[8] ^= rot32(x[4]+x[0], 9)
		x[12] ^= rot32(x[8]+x[4], 13)
		x[0] ^= rot32(x[12]+x[8], 18)
		x[9] ^= rot32(x[5]+x[1], 7)
		x[13] ^= rot32(x[9]+x[5], 9)
		x[1] ^= rot32(x[13]+x[9], 13)
		x[5] ^= rot32(x[1]+x[13], 18)
		x[14] ^= rot32(x[10]+x[6], 7)
		x[2] ^= rot32(x[14]+x[10], 9)
		x[6] ^= rot32(x[2]+x[14], 13)
		x[10] ^= rot32(x[6]+x[2], 18)
		x[3] ^= rot32(x[15]+x[11], 7)
		x[7] ^= rot32(x[3]+x[15], 9)
		x[11] ^= rot32(x[7]+x[3], 13)
		x[15] ^= rot32(x[11]+x[7], 18)
		// Row round.
		x[1] ^= rot32(x[0]+x[3], 7)
		x[2] ^= rot32(x[1]+x[0], 9)
		x[3] ^= rot32(x[2]+x[1], 13)
		x[0] ^= rot32(x[3]+x[2], 18)
		x[6] ^= rot32(x[5]+x[4], 7)
		x[7] ^= rot32(x[6]+x[5], 9)
		x[4] ^= rot32(x[7]+x[6], 13)
		x[5] ^= rot32(x[4]+x[7], 18)
		x[11] ^= rot32(x[10]+x[9], 7)
		x[8] ^= rot32(x[11]+x[10], 9)
		x[9] ^= rot32(x[8]+x[11], 13)
		x[10] ^= rot32(x[9]+x[8], 18)
		x[12] ^= rot32(x[15]+x[14], 7)
		x[13] ^= rot32(x[12]+x[15], 9)
		x[14] ^= rot32(x[13]+x[12], 13)
		x[15] ^= rot32(x[14]+x[13], 18)
	}
	for i := range x {
		x[i] += in[i]
	}
	return x
}

// RNG generates the c-bit numbers fed to the constellation mapping
// function. Following §7.1, output t for seed s is h(s, t): symbols need
// not be generated in sequence, so punctured or lost symbols are never
// computed. One 32-bit output supplies up to 32 bits, enough for both the
// I and Q fields at c ≤ 16.
type RNG struct {
	H Hash
}

// Word returns the t-th 32-bit pseudo-random word for seed.
func (r RNG) Word(seed uint32, t uint32) uint32 {
	return r.H.Sum(seed, t, 32)
}

// Words fills out[i] with the ts[i]-th pseudo-random word for seed,
// equivalent to calling Word for each index but amortizing the per-seed
// setup (and, for known hash types, the interface dispatch) across the
// batch. out must be at least as long as ts.
func (r RNG) Words(seed uint32, ts []uint32, out []uint32) {
	switch h := r.H.(type) {
	case OneAtATime:
		h.words(seed, ts, out)
	case *OneAtATime:
		h.words(seed, ts, out)
	case Lookup3:
		h.words(seed, ts, out)
	case *Lookup3:
		h.words(seed, ts, out)
	case Salsa20:
		h.words(seed, ts, out)
	case *Salsa20:
		h.words(seed, ts, out)
	default:
		for i, t := range ts {
			out[i] = r.H.Sum(seed, t, 32)
		}
	}
}

// SumFunc is the devirtualized form of Hash.Sum: a direct function value
// bound at construction time so hot loops avoid interface dispatch.
type SumFunc func(state uint32, m uint32, k int) uint32

// WordsFunc fills out[i] with the RNG word h(seed, ts[i]) for each i,
// amortizing the per-seed portion of the hash across the batch.
type WordsFunc func(seed uint32, ts []uint32, out []uint32)

// ChildrenFunc fills out[m] with h(state, m, kb) for m in [0, len(out)),
// amortizing the per-state portion of the hash across all 2^kb child
// spine values expanded from one decoder tree node.
type ChildrenFunc func(state uint32, kb int, out []uint32)

// Compile returns a direct function computing h.Sum. Known concrete types
// are bound without interface dispatch; unknown implementations fall back
// to the interface call.
func Compile(h Hash) SumFunc {
	switch c := h.(type) {
	case OneAtATime:
		return c.Sum
	case *OneAtATime:
		return (*c).Sum
	case Lookup3:
		return c.Sum
	case *Lookup3:
		return (*c).Sum
	case Salsa20:
		return c.Sum
	case *Salsa20:
		return (*c).Sum
	default:
		return h.Sum
	}
}

// CompileWords returns a batched RNG-word generator for h, specialized
// for the known hash types so that per-seed mixing happens once per batch
// rather than once per word.
func CompileWords(h Hash) WordsFunc {
	switch c := h.(type) {
	case OneAtATime:
		return c.words
	case *OneAtATime:
		return (*c).words
	case Lookup3:
		return c.words
	case *Lookup3:
		return (*c).words
	case Salsa20:
		return c.words
	case *Salsa20:
		return (*c).words
	default:
		return func(seed uint32, ts []uint32, out []uint32) {
			for i, t := range ts {
				out[i] = h.Sum(seed, t, 32)
			}
		}
	}
}

// CompileChildren returns a batched child-state generator for h,
// specialized for the known hash types so that per-parent-state mixing
// happens once per expansion rather than once per child.
func CompileChildren(h Hash) ChildrenFunc {
	switch c := h.(type) {
	case OneAtATime:
		return c.children
	case *OneAtATime:
		return (*c).children
	case Lookup3:
		return c.children
	case *Lookup3:
		return (*c).children
	case Salsa20:
		return c.children
	case *Salsa20:
		return (*c).children
	default:
		return func(state uint32, kb int, out []uint32) {
			for m := range out {
				out[m] = h.Sum(state, uint32(m), kb)
			}
		}
	}
}

// Prefix returns the one-at-a-time state after absorbing the four seed
// bytes — the per-seed half of an RNG Word: WordFinish(o.Prefix(s), t)
// == RNG{o}.Word(s, t). The batched forms (words, FinishWords,
// ChildrenPrefixes) are built from this pair.
func (o OneAtATime) Prefix(seed uint32) uint32 {
	h := o.Seed
	h = oaatByte(h, byte(seed))
	h = oaatByte(h, byte(seed>>8))
	h = oaatByte(h, byte(seed>>16))
	h = oaatByte(h, byte(seed>>24))
	return h
}

// WordFinish completes a Prefix into the RNG word for index t:
// WordFinish(o.Prefix(seed), t) == RNG{o}.Word(seed, t).
func WordFinish(prefix, t uint32) uint32 {
	h := oaatByte(prefix, byte(t))
	h = oaatByte(h, byte(t>>8))
	h = oaatByte(h, byte(t>>16))
	h = oaatByte(h, byte(t>>24))
	h += h << 3
	h ^= h >> 11
	h += h << 15
	return h
}

// FinishWords fills out[j] = WordFinish(prefixes[j], t): one stored
// symbol's RNG word for every candidate state in a batch.
func FinishWords(prefixes []uint32, t uint32, out []uint32) {
	b0, b1, b2, b3 := byte(t), byte(t>>8), byte(t>>16), byte(t>>24)
	for j, p := range prefixes {
		h := oaatByte(p, b0)
		h = oaatByte(h, b1)
		h = oaatByte(h, b2)
		h = oaatByte(h, b3)
		h += h << 3
		h ^= h >> 11
		h += h << 15
		out[j] = h
	}
}

// words is the batched form of Sum(seed, t, 32): the four seed bytes are
// mixed once, then each index needs only its own four bytes plus the
// final avalanche.
func (o OneAtATime) words(seed uint32, ts []uint32, out []uint32) {
	h0 := o.Prefix(seed)
	for i, t := range ts {
		out[i] = WordFinish(h0, t)
	}
}

// ChildrenPrefixes fills cs[m] = Sum(state, m, kb) — the 2^kb child
// spine values of state — and pre[m] = Prefix(cs[m]) in one pass: the
// decoder needs a child's RNG prefix immediately after deriving the
// child, and fusing the two keeps the intermediate state in registers.
// Requires kb ≤ 8 (the k range Params permits) and len(cs) = len(pre).
func (o OneAtATime) ChildrenPrefixes(state uint32, kb int, cs, pre []uint32) {
	h0 := o.Seed
	h0 = oaatByte(h0, byte(state))
	h0 = oaatByte(h0, byte(state>>8))
	h0 = oaatByte(h0, byte(state>>16))
	h0 = oaatByte(h0, byte(state>>24))
	s := o.Seed
	for m := range cs {
		h := oaatByte(h0, byte(m))
		h += h << 3
		h ^= h >> 11
		h += h << 15
		cs[m] = h
		p := oaatByte(s, byte(h))
		p = oaatByte(p, byte(h>>8))
		p = oaatByte(p, byte(h>>16))
		p = oaatByte(p, byte(h>>24))
		pre[m] = p
	}
}

// children is the batched form of Sum(state, m, kb) for m < 2^kb ≤ 256:
// the four state bytes are mixed once, then each child needs only one
// message byte plus the final avalanche.
func (o OneAtATime) children(state uint32, kb int, out []uint32) {
	h0 := o.Seed
	h0 = oaatByte(h0, byte(state))
	h0 = oaatByte(h0, byte(state>>8))
	h0 = oaatByte(h0, byte(state>>16))
	h0 = oaatByte(h0, byte(state>>24))
	for m := range out {
		h := oaatByte(h0, byte(m))
		h += h << 3
		h ^= h >> 11
		h += h << 15
		out[m] = h
	}
}

func (l Lookup3) words(seed uint32, ts []uint32, out []uint32) {
	init := uint32(0xdeadbeef) + 2<<2 + l.Seed
	a := init + seed
	for i, t := range ts {
		out[i] = lookup3Final(a, init+t, init)
	}
}

func (l Lookup3) children(state uint32, kb int, out []uint32) {
	init := uint32(0xdeadbeef) + 2<<2 + l.Seed
	a := init + state
	mask := maskBits(kb)
	for m := range out {
		out[m] = lookup3Final(a, init+uint32(m)&mask, init)
	}
}

func (s Salsa20) words(seed uint32, ts []uint32, out []uint32) {
	var in [16]uint32
	in[0] = 0x61707865
	in[5] = 0x3320646e
	in[10] = 0x79622d32
	in[15] = 0x6b206574
	in[1] = seed
	in[3] = s.Seed
	in[4] = 32
	for i, t := range ts {
		in[2] = t
		o := salsa20Core(&in)
		out[i] = o[0]
	}
}

func (s Salsa20) children(state uint32, kb int, out []uint32) {
	var in [16]uint32
	in[0] = 0x61707865
	in[5] = 0x3320646e
	in[10] = 0x79622d32
	in[15] = 0x6b206574
	in[1] = state
	in[3] = s.Seed
	in[4] = uint32(kb)
	mask := maskBits(kb)
	for m := range out {
		in[2] = uint32(m) & mask
		o := salsa20Core(&in)
		out[m] = o[0]
	}
}
