package hashfn

import (
	"math/rand"
	"testing"
)

func devirtHashes() []Hash {
	return []Hash{
		OneAtATime{}, OneAtATime{Seed: 0xabad1dea},
		Lookup3{}, Lookup3{Seed: 77},
		Salsa20{}, Salsa20{Seed: 12345},
	}
}

// TestCompileMatchesSum: the devirtualized SumFunc is the interface call.
func TestCompileMatchesSum(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, h := range devirtHashes() {
		sum := Compile(h)
		for i := 0; i < 200; i++ {
			state, m := rng.Uint32(), rng.Uint32()
			k := 1 + rng.Intn(32)
			if got, want := sum(state, m, k), h.Sum(state, m, k); got != want {
				t.Fatalf("%s: Compile(%#x,%#x,%d) = %#x, Sum = %#x", h.Name(), state, m, k, got, want)
			}
		}
	}
}

// TestWordsMatchesWord: batched RNG words equal per-index Word calls,
// through both RNG.Words and the compiled WordsFunc.
func TestWordsMatchesWord(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, h := range devirtHashes() {
		r := RNG{H: h}
		words := CompileWords(h)
		for trial := 0; trial < 20; trial++ {
			seed := rng.Uint32()
			ts := make([]uint32, 1+rng.Intn(40))
			for i := range ts {
				ts[i] = rng.Uint32()
			}
			got1 := make([]uint32, len(ts))
			got2 := make([]uint32, len(ts))
			r.Words(seed, ts, got1)
			words(seed, ts, got2)
			for i, tv := range ts {
				want := r.Word(seed, tv)
				if got1[i] != want || got2[i] != want {
					t.Fatalf("%s: Words[%d] = %#x/%#x, Word = %#x", h.Name(), i, got1[i], got2[i], want)
				}
			}
		}
	}
}

// TestChildrenMatchesSum: the batched child-state generator equals Sum
// over the message values 0..2^kb-1.
func TestChildrenMatchesSum(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, h := range devirtHashes() {
		children := CompileChildren(h)
		for kb := 1; kb <= 8; kb++ {
			state := rng.Uint32()
			out := make([]uint32, 1<<uint(kb))
			children(state, kb, out)
			for m := range out {
				if want := h.Sum(state, uint32(m), kb); out[m] != want {
					t.Fatalf("%s kb=%d: children[%d] = %#x, Sum = %#x", h.Name(), kb, m, out[m], want)
				}
			}
		}
	}
}

// TestPrefixComposition: Prefix/WordFinish, FinishWords, Prefixes and
// ChildrenPrefixes all compose to the interface-path results.
func TestPrefixComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, o := range []OneAtATime{{}, {Seed: 0x5eed}} {
		r := RNG{H: o}
		for trial := 0; trial < 50; trial++ {
			seed, tv := rng.Uint32(), rng.Uint32()
			if got, want := WordFinish(o.Prefix(seed), tv), r.Word(seed, tv); got != want {
				t.Fatalf("WordFinish(Prefix) = %#x, Word = %#x", got, want)
			}
		}

		seeds := make([]uint32, 33)
		for i := range seeds {
			seeds[i] = rng.Uint32()
		}
		pre := make([]uint32, len(seeds))
		for i, s := range seeds {
			pre[i] = o.Prefix(s)
		}
		tv := rng.Uint32()
		out := make([]uint32, len(seeds))
		FinishWords(pre, tv, out)
		for i, s := range seeds {
			if out[i] != r.Word(s, tv) {
				t.Fatalf("FinishWords[%d] mismatch", i)
			}
		}

		for kb := 1; kb <= 8; kb++ {
			state := rng.Uint32()
			cs := make([]uint32, 1<<uint(kb))
			cp := make([]uint32, 1<<uint(kb))
			o.ChildrenPrefixes(state, kb, cs, cp)
			for m := range cs {
				if want := o.Sum(state, uint32(m), kb); cs[m] != want {
					t.Fatalf("ChildrenPrefixes state[%d] = %#x, Sum = %#x", m, cs[m], want)
				}
				if cp[m] != o.Prefix(cs[m]) {
					t.Fatalf("ChildrenPrefixes prefix[%d] mismatch", m)
				}
			}
		}
	}
}

// customHash exercises the fallback paths of the Compile* helpers.
type customHash struct{}

func (customHash) Name() string { return "custom" }
func (customHash) Sum(state, m uint32, k int) uint32 {
	return state*2654435761 + m&maskBits(k) + uint32(k)
}

// TestCompileFallbacks: unknown Hash implementations route through the
// interface and still agree with direct Sum calls.
func TestCompileFallbacks(t *testing.T) {
	h := customHash{}
	sum := Compile(h)
	words := CompileWords(h)
	children := CompileChildren(h)
	r := RNG{H: h}
	if sum(1, 2, 3) != h.Sum(1, 2, 3) {
		t.Fatal("fallback Compile mismatch")
	}
	ts := []uint32{0, 5, 9}
	out := make([]uint32, 3)
	words(7, ts, out)
	for i, tv := range ts {
		if out[i] != r.Word(7, tv) {
			t.Fatal("fallback CompileWords mismatch")
		}
	}
	r.Words(7, ts, out)
	for i, tv := range ts {
		if out[i] != r.Word(7, tv) {
			t.Fatal("fallback RNG.Words mismatch")
		}
	}
	kids := make([]uint32, 4)
	children(3, 2, kids)
	for m := range kids {
		if kids[m] != h.Sum(3, uint32(m), 2) {
			t.Fatal("fallback CompileChildren mismatch")
		}
	}
}
