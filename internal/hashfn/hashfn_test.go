package hashfn

import (
	"math"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

func allHashes() []Hash {
	return []Hash{OneAtATime{}, Lookup3{}, Salsa20{}, OneAtATime{Seed: 0x9e3779b9}}
}

func TestDeterminism(t *testing.T) {
	for _, h := range allHashes() {
		for i := 0; i < 100; i++ {
			s := rand.Uint32()
			m := rand.Uint32() & 0xf
			if h.Sum(s, m, 4) != h.Sum(s, m, 4) {
				t.Fatalf("%s: not deterministic", h.Name())
			}
		}
	}
}

func TestDistinctInputsDistinctOutputs(t *testing.T) {
	// For each hash, hashing all 16 values of a 4-bit message from the same
	// state should essentially never collide (16 outputs in a 2^32 space).
	for _, h := range allHashes() {
		for trial := 0; trial < 50; trial++ {
			s := rand.Uint32()
			seen := make(map[uint32]uint32)
			for m := uint32(0); m < 16; m++ {
				out := h.Sum(s, m, 4)
				if prev, ok := seen[out]; ok {
					t.Fatalf("%s: collision state=%#x m=%d vs m=%d", h.Name(), s, m, prev)
				}
				seen[out] = m
			}
		}
	}
}

func TestSeedChangesOutput(t *testing.T) {
	a := OneAtATime{Seed: 1}
	b := OneAtATime{Seed: 2}
	diff := 0
	for i := 0; i < 256; i++ {
		if a.Sum(uint32(i), 0, 4) != b.Sum(uint32(i), 0, 4) {
			diff++
		}
	}
	if diff < 250 {
		t.Fatalf("seeds produce nearly identical hashes: %d/256 differ", diff)
	}
}

// TestAvalanche verifies the mixing property that makes spinal codes work:
// flipping one input bit flips close to half of the output bits on average.
func TestAvalanche(t *testing.T) {
	for _, h := range allHashes() {
		const trials = 2000
		var totalFlips float64
		for i := 0; i < trials; i++ {
			s := rand.Uint32()
			m := rand.Uint32() & 0xf
			base := h.Sum(s, m, 4)
			bit := uint32(1) << uint(rand.Intn(4))
			flipped := h.Sum(s, m^bit, 4)
			totalFlips += float64(bits.OnesCount32(base ^ flipped))
		}
		avg := totalFlips / trials
		if math.Abs(avg-16) > 1.0 {
			t.Errorf("%s: avalanche average %.2f bits, want ≈16", h.Name(), avg)
		}
	}
}

// TestStateAvalanche checks avalanche with respect to the state input,
// which is what magnifies a single message-bit difference down the spine.
func TestStateAvalanche(t *testing.T) {
	for _, h := range allHashes() {
		const trials = 2000
		var totalFlips float64
		for i := 0; i < trials; i++ {
			s := rand.Uint32()
			base := h.Sum(s, 7, 4)
			bit := uint32(1) << uint(rand.Intn(32))
			flipped := h.Sum(s^bit, 7, 4)
			totalFlips += float64(bits.OnesCount32(base ^ flipped))
		}
		avg := totalFlips / trials
		if math.Abs(avg-16) > 1.0 {
			t.Errorf("%s: state avalanche average %.2f bits, want ≈16", h.Name(), avg)
		}
	}
}

// TestOutputBitBalance verifies each output bit is roughly unbiased.
func TestOutputBitBalance(t *testing.T) {
	for _, h := range allHashes() {
		const trials = 4000
		counts := make([]int, 32)
		for i := 0; i < trials; i++ {
			out := h.Sum(rand.Uint32(), rand.Uint32()&0xf, 4)
			for b := 0; b < 32; b++ {
				if out&(1<<uint(b)) != 0 {
					counts[b]++
				}
			}
		}
		for b, c := range counts {
			frac := float64(c) / trials
			if frac < 0.44 || frac > 0.56 {
				t.Errorf("%s: output bit %d biased: %.3f", h.Name(), b, frac)
			}
		}
	}
}

// TestKBitsMasked verifies only the low k bits of m influence the hash for
// lookup3 and salsa20 (one-at-a-time consumes whole bytes, so it masks at
// byte granularity by construction of the encoder, which pre-masks).
func TestKBitsMasked(t *testing.T) {
	// Bits above k must not change the output.
	l := Lookup3{}
	s20 := Salsa20{}
	err := quick.Check(func(s, m, hi uint32) bool {
		m &= 0x7
		hi &^= 0x7
		return l.Sum(s, m, 3) == l.Sum(s, m|hi, 3) &&
			s20.Sum(s, m, 3) == s20.Sum(s, m|hi, 3)
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRNGWordDistinct verifies distinct indices give distinct streams and
// that symbols can be generated out of order (the §7.1 property).
func TestRNGWordDistinct(t *testing.T) {
	r := RNG{H: OneAtATime{}}
	seed := uint32(0xdecafbad)
	seen := make(map[uint32]bool)
	for tdx := uint32(0); tdx < 64; tdx++ {
		seen[r.Word(seed, tdx)] = true
	}
	if len(seen) != 64 {
		t.Fatalf("RNG stream has collisions: %d distinct of 64", len(seen))
	}
	// Out-of-order generation equals in-order generation.
	if r.Word(seed, 63) != r.Word(seed, 63) {
		t.Fatal("RNG not a pure function of (seed, index)")
	}
}

// TestRNGUniformity checks the c-bit fields used for constellation mapping
// are close to uniform.
func TestRNGUniformity(t *testing.T) {
	r := RNG{H: OneAtATime{}}
	const c = 6
	counts := make([]int, 1<<c)
	const trials = 1 << 16
	for i := 0; i < trials; i++ {
		w := r.Word(rand.Uint32(), uint32(i))
		counts[w&((1<<c)-1)]++
	}
	want := float64(trials) / float64(len(counts))
	for v, n := range counts {
		if math.Abs(float64(n)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d count %d, want ≈%.0f", v, n, want)
		}
	}
}

func TestSalsa20CoreNontrivial(t *testing.T) {
	// With the sigma constants loaded (as Sum always does), the core output
	// must differ from its input in every word — basic sanity that the
	// permutation is wired correctly.
	var in [16]uint32
	in[0] = 0x61707865
	in[5] = 0x3320646e
	in[10] = 0x79622d32
	in[15] = 0x6b206574
	out := salsa20Core(&in)
	same := 0
	for i, w := range out {
		if w == in[i] {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("salsa20 core leaves %d words unchanged", same)
	}
}

func BenchmarkOneAtATime(b *testing.B) {
	h := OneAtATime{}
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink = h.Sum(sink, uint32(i)&0xf, 4)
	}
	_ = sink
}

func BenchmarkLookup3(b *testing.B) {
	h := Lookup3{}
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink = h.Sum(sink, uint32(i)&0xf, 4)
	}
	_ = sink
}

func BenchmarkSalsa20(b *testing.B) {
	h := Salsa20{}
	var sink uint32
	for i := 0; i < b.N; i++ {
		sink = h.Sum(sink, uint32(i)&0xf, 4)
	}
	_ = sink
}
