package capacity

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAWGNKnownPoints(t *testing.T) {
	// C(SNR=1) = 1 bit/symbol; C(SNR=3) = 2; C(SNR=15) = 4.
	cases := []struct{ snr, want float64 }{
		{1, 1}, {3, 2}, {7, 3}, {15, 4}, {0, 0},
	}
	for _, c := range cases {
		if got := AWGN(c.snr); !almost(got, c.want, 1e-12) {
			t.Errorf("AWGN(%g) = %g, want %g", c.snr, got, c.want)
		}
	}
}

func TestPaperGapExample(t *testing.T) {
	// §8.1: a code at 3 bits/symbol and 12 dB has gap 8.45 − 12 = −3.55 dB
	// (the paper rounds the capacity SNR of 3 bits/symbol to 8.45 dB).
	gap := GapDB(3, 12)
	if !almost(gap, -3.55, 0.01) {
		t.Fatalf("gap = %g, want ≈ −3.55", gap)
	}
}

func TestSNRForRateInverts(t *testing.T) {
	err := quick.Check(func(r float64) bool {
		r = math.Mod(math.Abs(r), 10) + 0.01
		return almost(AWGN(SNRForRate(r)), r, 1e-9)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGapZeroAtCapacity(t *testing.T) {
	for snrDB := -5.0; snrDB <= 35; snrDB += 5 {
		rate := AWGNdB(snrDB)
		if gap := GapDB(rate, snrDB); !almost(gap, 0, 1e-9) {
			t.Errorf("gap at capacity (%g dB) = %g, want 0", snrDB, gap)
		}
	}
}

func TestGapNegativeBelowCapacity(t *testing.T) {
	for snrDB := 0.0; snrDB <= 30; snrDB += 5 {
		rate := 0.7 * AWGNdB(snrDB)
		if gap := GapDB(rate, snrDB); gap >= 0 {
			t.Errorf("sub-capacity gap at %g dB = %g, want < 0", snrDB, gap)
		}
	}
}

func TestGapZeroRate(t *testing.T) {
	if !math.IsInf(GapDB(0, 10), -1) {
		t.Fatal("zero rate should have -Inf gap")
	}
}

func TestFractionOfCapacity(t *testing.T) {
	if got := FractionOfCapacity(AWGNdB(10), 10); !almost(got, 1, 1e-12) {
		t.Errorf("fraction at capacity = %g", got)
	}
	if got := FractionOfCapacity(1, 0); got <= 0 || got >= 1.1 {
		t.Errorf("odd fraction %g", got)
	}
}

func TestBSC(t *testing.T) {
	if !almost(BSC(0), 1, 0) {
		t.Error("BSC(0) should be 1")
	}
	if !almost(BSC(0.5), 0, 1e-12) {
		t.Error("BSC(0.5) should be 0")
	}
	if !almost(BSC(0.11), BSC(0.89), 1e-12) {
		t.Error("BSC should be symmetric about 1/2")
	}
	if !almost(BinaryEntropy(0.5), 1, 1e-12) {
		t.Error("H(1/2) = 1")
	}
}

func TestDBRoundTrip(t *testing.T) {
	err := quick.Check(func(db float64) bool {
		db = math.Mod(db, 50)
		return almost(ToDB(FromDB(db)), db, 1e-9)
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRayleighBelowAWGN(t *testing.T) {
	// Jensen: E[log2(1+g·snr)] ≤ log2(1+snr) with equality only degenerate.
	for _, snrDB := range []float64{0, 10, 20, 30} {
		r := RayleighdB(snrDB)
		a := AWGNdB(snrDB)
		if r >= a {
			t.Errorf("Rayleigh capacity %g ≥ AWGN %g at %g dB", r, a, snrDB)
		}
		if r <= 0 {
			t.Errorf("Rayleigh capacity non-positive at %g dB", snrDB)
		}
	}
}

func TestRayleighHighSNRShape(t *testing.T) {
	// At high SNR the Rayleigh penalty approaches the Euler–Mascheroni
	// constant in nats: C_awgn − C_ray → γ/ln2 ≈ 0.8327 bits.
	diff := AWGNdB(35) - RayleighdB(35)
	if !almost(diff, 0.8327, 0.02) {
		t.Errorf("high-SNR Rayleigh penalty = %g, want ≈0.8327", diff)
	}
}
