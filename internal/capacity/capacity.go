// Package capacity computes Shannon limits and the "gap to capacity"
// metric defined in §8.1 of the paper.
//
// Rates throughout the repository are measured in bits per (complex)
// channel use, matching the paper's bits-per-symbol convention. The gap to
// capacity of a code achieving rate R at snrDB is snrStar − snrDB, where
// C(snrStar) = R; it is negative for real codes and 0 for a
// capacity-achieving one.
package capacity

import "math"

// AWGN returns the Shannon capacity of the complex AWGN channel in bits
// per symbol at the given linear SNR: log2(1 + SNR).
func AWGN(snr float64) float64 {
	return math.Log2(1 + snr)
}

// AWGNdB returns the complex AWGN capacity at the given SNR in dB.
func AWGNdB(snrDB float64) float64 {
	return AWGN(FromDB(snrDB))
}

// SNRForRate inverts AWGN: it returns the linear SNR at which the complex
// AWGN capacity equals rate bits/symbol.
func SNRForRate(rate float64) float64 {
	return math.Exp2(rate) - 1
}

// GapDB returns the gap to capacity, in dB, of a code achieving rate
// bits/symbol at snrDB (§8.1). Example from the paper: 3 bits/symbol at
// 12 dB gives 8.45 − 12 = −3.55 dB. A non-positive rate yields -Inf.
func GapDB(rate, snrDB float64) float64 {
	if rate <= 0 {
		return math.Inf(-1)
	}
	return ToDB(SNRForRate(rate)) - snrDB
}

// FractionOfCapacity returns rate / C(snrDB), the metric of Figures 8-3
// and 8-6.
func FractionOfCapacity(rate, snrDB float64) float64 {
	c := AWGNdB(snrDB)
	if c <= 0 {
		return 0
	}
	return rate / c
}

// BSC returns the capacity of the binary symmetric channel with crossover
// probability p, in bits per channel use: 1 − H(p).
func BSC(p float64) float64 {
	return 1 - BinaryEntropy(p)
}

// BinaryEntropy returns H(p) = −p·log2 p − (1−p)·log2(1−p), with the
// continuous extension H(0)=H(1)=0.
func BinaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// Rayleigh returns the ergodic capacity of a Rayleigh fading channel with
// average linear SNR, E[log2(1+|h|²·SNR)] with |h|² exponential(1),
// evaluated by Gauss–Laguerre-style numeric integration. This is the top
// curve of Figures 8-4 and 8-5.
func Rayleigh(snr float64) float64 {
	// E[log2(1+g·snr)] with g ~ Exp(1): integrate over g with composite
	// Simpson on a transformed axis. Substituting g = -ln(1-u), u∈(0,1)
	// makes the weight uniform.
	const steps = 2000
	sum := 0.0
	h := 1.0 / steps
	for i := 0; i < steps; i++ {
		u := (float64(i) + 0.5) * h
		g := -math.Log(1 - u)
		sum += math.Log2(1 + g*snr)
	}
	return sum * h
}

// RayleighdB is Rayleigh at an SNR given in dB.
func RayleighdB(snrDB float64) float64 {
	return Rayleigh(FromDB(snrDB))
}

// FromDB converts decibels to a linear power ratio.
func FromDB(db float64) float64 {
	return math.Pow(10, db/10)
}

// ToDB converts a linear power ratio to decibels.
func ToDB(lin float64) float64 {
	return 10 * math.Log10(lin)
}
