package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"spinal"
)

// quickParams keeps the daemon tests' codec work cheap; they exercise
// the serving machinery, not the code's error performance.
func quickParams() spinal.Params {
	p := spinal.DefaultParams()
	p.B = 8
	return p
}

func startDaemon(t *testing.T, cfg Config) (*Daemon, *bytes.Buffer) {
	t.Helper()
	var report bytes.Buffer
	if cfg.Params == (spinal.Params{}) {
		cfg.Params = quickParams()
	}
	cfg.Report = &report
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		d.Shutdown(ctx)
	})
	return d, &report
}

func TestWireRoundTrip(t *testing.T) {
	payload := []byte("sixty-four bytes of datagram payload for the wire round trip!!")
	dg := appendSubmit(nil, 7, 42, 4, payload)
	sub, err := parseSubmit(dg)
	if err != nil {
		t.Fatal(err)
	}
	if sub.conn != 7 || sub.seq != 42 || sub.weight != 4 || !bytes.Equal(sub.payload, payload) {
		t.Fatalf("submit round trip mangled: %+v", sub)
	}

	recs := []record{
		{conn: 1, seq: 2, shard: 3, status: StatusDelivered, bytes: 64, symbols: 500, ackSymbols: 20, checksum: 0xdeadbeef},
		{conn: 9, seq: 9, status: StatusOutage, symbols: 4096},
	}
	got, err := parseBatch(appendBatch(nil, recs))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != recs[0] || got[1] != recs[1] {
		t.Fatalf("batch round trip mangled: %+v", got)
	}

	for name, bad := range map[string][]byte{
		"empty":           {},
		"wrong kind":      {0xff, 0, 0, 0, 0, 0, 0, 0, 0},
		"short submit":    {kindSubmit, 1, 2},
		"truncated batch": appendBatch(nil, recs)[:10],
		"padded batch":    append(appendBatch(nil, recs), 0),
		"count mismatch":  {kindBatch, 5, 0},
	} {
		if _, err := parseSubmit(bad); err == nil {
			if _, err := parseBatch(bad); err == nil {
				t.Errorf("%s: both parsers accepted hostile bytes", name)
			}
		}
	}
}

// TestDaemonServes256Flows is the acceptance run: 256 concurrent flows
// through one UDP socket at 10 dB must all deliver, none outage, and the
// daemon must drain cleanly afterwards.
func TestDaemonServes256Flows(t *testing.T) {
	if testing.Short() {
		t.Skip("256-flow soak")
	}
	d, report := startDaemon(t, Config{Shards: 4, SNRdB: 10, Seed: 42})
	res, err := RunLoad(LoadConfig{
		Addr: d.Addr().String(), Flows: 256, Size: 64, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 256 || res.Outaged != 0 || res.Failed != 0 {
		t.Fatalf("acceptance load: %v", res)
	}
	if res.Corrupted != 0 {
		t.Fatalf("%d delivered flows failed checksum", res.Corrupted)
	}
	if res.AggregateGoodput <= 0 {
		t.Fatalf("no goodput measured: %v", res)
	}
	m := d.Metrics()
	if m.Flows.Delivered != 256 || m.Flows.Outaged != 0 {
		t.Fatalf("daemon accounting disagrees: %+v", m.Flows)
	}
	if m.Pool.EncodersBuilt == 0 || m.Pool.DecodersBuilt == 0 {
		t.Fatalf("pool counters silent: %+v", m.Pool)
	}
	// 256 results over at most a handful of client addresses must have
	// batched: strictly fewer egress datagrams than records.
	if m.Socket.DatagramsOut >= m.Socket.RecordsOut {
		t.Fatalf("egress never batched: %+v", m.Socket)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(report.String(), "drained cleanly") {
		t.Fatalf("drain report missing: %q", report.String())
	}
}

// TestDaemonDrainFlushesInFlight pins the SIGTERM path: submissions in
// flight when Shutdown lands are served to completion, their records
// reach the client, and the report says so.
func TestDaemonDrainFlushesInFlight(t *testing.T) {
	d, report := startDaemon(t, Config{Shards: 2, SNRdB: 10, Seed: 3})
	client, err := net.DialUDP("udp", nil, d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const n = 8
	payload := bytes.Repeat([]byte{0xa5}, 48)
	for i := 0; i < n; i++ {
		client.Write(appendSubmit(nil, uint32(i+1), 0, 0, payload))
	}
	// Wait until every submission is admitted, then drain under it.
	deadline := time.Now().Add(10 * time.Second)
	for d.Metrics().Flows.Admitted < n {
		if time.Now().After(deadline) {
			t.Fatalf("daemon admitted %d/%d flows", d.Metrics().Flows.Admitted, n)
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := d.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if got := report.String(); !strings.Contains(got, "drained cleanly") {
		t.Fatalf("report: %q", got)
	}
	if m := d.Metrics(); m.Flows.Delivered != n || m.State != "stopped" {
		t.Fatalf("post-drain metrics: %+v", m.Flows)
	}

	// Every record must have been flushed to the wire before the socket
	// closed.
	seen := map[uint32]bool{}
	buf := make([]byte, 64<<10)
	for len(seen) < n {
		client.SetReadDeadline(time.Now().Add(2 * time.Second))
		nr, err := client.Read(buf)
		if err != nil {
			t.Fatalf("drained %d/%d records before the socket went quiet", len(seen), n)
		}
		recs, err := parseBatch(buf[:nr])
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			if r.status != StatusDelivered {
				t.Fatalf("flow %d resolved %d during drain", r.conn, r.status)
			}
			seen[r.conn] = true
		}
	}
}

// TestDaemonIdempotentSubmits pins the dedup contract retried clients
// rely on: duplicate in-flight submissions collapse onto one flow, and a
// retry after resolution replays the cached record instead of re-serving
// the flow.
func TestDaemonIdempotentSubmits(t *testing.T) {
	d, _ := startDaemon(t, Config{Shards: 1, SNRdB: 10, Seed: 5})
	client, err := net.DialUDP("udp", nil, d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	sub := appendSubmit(nil, 5, 9, 0, []byte("idempotence probe payload"))
	for i := 0; i < 3; i++ {
		client.Write(sub)
	}
	first := readOneRecord(t, client)
	if first.conn != 5 || first.seq != 9 || first.status != StatusDelivered {
		t.Fatalf("unexpected record %+v", first)
	}
	if m := d.Metrics(); m.Flows.Admitted != 1 {
		t.Fatalf("3 submissions admitted %d flows", m.Flows.Admitted)
	}

	// A late retry is answered from the done cache with the same record.
	client.Write(sub)
	replay := readOneRecord(t, client)
	if replay != first {
		t.Fatalf("replayed record differs: %+v vs %+v", replay, first)
	}
	if m := d.Metrics(); m.Flows.Admitted != 1 || m.Shards[0].Replays == 0 {
		t.Fatalf("late retry re-served the flow: %+v", m.Shards[0])
	}
}

// readOneRecord reads batches until one record arrives.
func readOneRecord(t *testing.T, client *net.UDPConn) record {
	t.Helper()
	buf := make([]byte, 64<<10)
	client.SetReadDeadline(time.Now().Add(10 * time.Second))
	for {
		n, err := client.Read(buf)
		if err != nil {
			t.Fatalf("no record: %v", err)
		}
		recs, err := parseBatch(buf[:n])
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) > 0 {
			return recs[0]
		}
	}
}

// TestDaemonGoodputMonotone pins the multiplexing property the
// goodput-vs-flows experiment asserts: under common random numbers, one
// daemon's aggregate goodput is monotone nondecreasing in the flow count
// up to the shard count (each added flow lands on an idle shard and
// spends exactly the same airtime).
func TestDaemonGoodputMonotone(t *testing.T) {
	d, _ := startDaemon(t, Config{Shards: 4, SNRdB: 10, Seed: 11, CommonChannel: true})
	var prev float64
	for i, flows := range []int{1, 2, 4} {
		res, err := RunLoad(LoadConfig{
			Addr: d.Addr().String(), Flows: flows, Size: 64,
			Seq: uint32(i), Seed: 23, CommonPayload: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Delivered != flows {
			t.Fatalf("%d flows: %v", flows, res)
		}
		if res.AggregateGoodput < prev {
			t.Fatalf("goodput fell from %.4f to %.4f at %d flows",
				prev, res.AggregateGoodput, flows)
		}
		prev = res.AggregateGoodput
	}
}

// TestDaemonSchedulerConfig pins the scheduler/queue config plumbing: an
// unknown scheduler name is rejected at New, a dwfq daemon serves
// weighted submissions and exports nonzero scheduler counters plus the
// configured ingress queue capacity, and a tiny done-cache (far below
// the flow count) still serves every flow — eviction costs replay
// efficiency, never correctness.
func TestDaemonSchedulerConfig(t *testing.T) {
	if _, err := New(Config{Scheduler: "wfq2"}); err == nil {
		t.Fatal("unknown scheduler accepted")
	}
	d, _ := startDaemon(t, Config{Shards: 1, SNRdB: 10, Seed: 13,
		Scheduler: "dwfq", QueueDepth: 64, DoneCache: 4})
	res, err := RunLoad(LoadConfig{
		Addr: d.Addr().String(), Flows: 8, Size: 48, Seed: 3, Weight: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 8 || res.Corrupted != 0 {
		t.Fatalf("weighted load: %v", res)
	}
	sm := d.Metrics().Shards[0]
	if sm.QueueCap != 64 {
		t.Fatalf("queue cap %d, want the configured 64", sm.QueueCap)
	}
	if sm.SchedQuanta == 0 || sm.SchedAdmitted == 0 {
		t.Fatalf("dwfq scheduler counters silent: %+v", sm)
	}
}

// TestDaemonTelemetry smoke-tests the /metrics endpoint's JSON schema.
func TestDaemonTelemetry(t *testing.T) {
	d, _ := startDaemon(t, Config{Shards: 2, Telemetry: "127.0.0.1:0", SNRdB: 10})
	res, err := RunLoad(LoadConfig{Addr: d.Addr().String(), Flows: 4, Size: 32, Seed: 1})
	if err != nil || res.Delivered != 4 {
		t.Fatalf("warmup load: %v %v", res, err)
	}

	resp, err := http.Get("http://" + d.TelemetryAddr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.State != "running" || len(m.Shards) != 2 || m.Pool.Shards != 2 {
		t.Fatalf("telemetry shape: %+v", m)
	}
	if m.Flows.Delivered != 4 || m.Socket.DatagramsIn == 0 {
		t.Fatalf("telemetry counters: %+v", m)
	}

	health, err := http.Get("http://" + d.TelemetryAddr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer health.Body.Close()
	var state bytes.Buffer
	state.ReadFrom(health.Body)
	if strings.TrimSpace(state.String()) != "running" {
		t.Fatalf("healthz: %q", state.String())
	}
}

// TestDaemonRejectsWhileDraining pins the drain-time contract: a
// submission arriving mid-drain is answered with StatusRejected instead
// of being silently dropped or admitted.
func TestDaemonRejectsWhileDraining(t *testing.T) {
	d, _ := startDaemon(t, Config{Shards: 1, SNRdB: 10})
	client, err := net.DialUDP("udp", nil, d.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Flip the state by hand (Shutdown would close the socket before the
	// probe lands); the recv loop must now answer with a rejection.
	d.state.Store(stateDraining)
	client.Write(appendSubmit(nil, 77, 0, 0, []byte("late")))
	rec := readOneRecord(t, client)
	if rec.conn != 77 || rec.status != StatusRejected {
		t.Fatalf("mid-drain submission got %+v, want StatusRejected", rec)
	}
	d.state.Store(stateRunning) // let Cleanup shut down normally
}
