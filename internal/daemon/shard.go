package daemon

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"sync/atomic"

	"spinal/channel"
	"spinal/link"
)

// ingressMsg is one admitted submission on its way to a shard.
type ingressMsg struct {
	conn    uint32
	seq     uint32
	weight  uint8
	payload []byte
	from    *net.UDPAddr
}

// pendingFlow tracks one in-flight flow's identity so its engine result
// can be turned back into a wire record.
type pendingFlow struct {
	key  uint64
	conn uint32
	seq  uint32
	from *net.UDPAddr
}

// shard is one per-core worker: an independent link.Session fed by its
// own ingress queue. Exactly one goroutine (loop) touches the session's
// flow state; everything the metrics endpoint reads is atomic.
type shard struct {
	d    *Daemon
	id   int
	in   chan ingressMsg
	sess *link.Session

	// Owned by loop.
	inflight map[link.FlowID]*pendingFlow
	pending  map[uint64]struct{} // flowKey → in flight (dedup)
	done     map[uint64]record   // flowKey → resolved record (replay)
	doneFIFO []uint64
	doneHead int

	admitted   atomic.Int64
	delivered  atomic.Int64
	outaged    atomic.Int64
	dupes      atomic.Int64
	replays    atomic.Int64
	bytes      atomic.Int64
	symbols    atomic.Int64
	ackSymbols atomic.Int64
	retrans    atomic.Int64
	batchesRej atomic.Int64
	frameFault atomic.Int64
	ackFault   atomic.Int64
}

func newShard(d *Daemon, id int) (*shard, error) {
	opts := []link.Option{
		link.WithSharedPool(d.pool),
		link.WithSeed(d.cfg.Seed + int64(id)),
		// Half-duplex accounting: each record's ackSymbols carries the
		// flow's reverse airtime, so clients compute honest goodput.
		link.WithHalfDuplex(0),
	}
	if d.cfg.MaxBlockBits > 0 {
		opts = append(opts, link.WithMaxBlockBits(d.cfg.MaxBlockBits))
	}
	if d.cfg.MaxRounds > 0 {
		opts = append(opts, link.WithMaxRounds(d.cfg.MaxRounds))
	}
	if d.cfg.FrameSymbols > 0 {
		opts = append(opts, link.WithFrameSymbols(d.cfg.FrameSymbols))
	}
	if d.cfg.Faults != nil {
		opts = append(opts, link.WithFaults(*d.cfg.Faults))
	}
	if d.cfg.Scheduler == "dwfq" {
		opts = append(opts, link.WithScheduler(link.SchedulerConfig{}))
	}
	sess, err := link.NewSession(d.cfg.Params, opts...)
	if err != nil {
		return nil, fmt.Errorf("daemon: shard %d: %w", id, err)
	}
	return &shard{
		d:        d,
		id:       id,
		in:       make(chan ingressMsg, d.cfg.QueueDepth),
		sess:     sess,
		inflight: make(map[link.FlowID]*pendingFlow),
		pending:  make(map[uint64]struct{}),
		done:     make(map[uint64]record),
	}, nil
}

// loop is the shard's single serving goroutine: soak the ingress queue,
// step the session while flows are live, block when idle, exit once the
// daemon drains and the shard is empty.
func (sh *shard) loop() {
	defer sh.d.shardWG.Done()
	defer sh.sess.Close()
	ctx := context.Background()
	for {
		sh.soak()
		if sh.sess.Active() > 0 {
			res, err := sh.sess.Step(ctx)
			if err != nil {
				return
			}
			sh.finish(res)
			continue
		}
		select {
		case msg := <-sh.in:
			sh.admit(msg)
		case <-sh.d.drainCh:
			// Draining and idle. One last soak catches submissions that
			// slipped in before the state flipped; if that admitted work,
			// keep stepping, otherwise the shard is done.
			sh.soak()
			if sh.sess.Active() == 0 {
				return
			}
		}
	}
}

// soak admits everything queued without blocking.
func (sh *shard) soak() {
	for {
		select {
		case msg := <-sh.in:
			sh.admit(msg)
		default:
			return
		}
	}
}

// admit turns a submission into a link flow — or, for a retry of a flow
// already seen, into a dedup hit: in-flight duplicates are dropped (the
// original will answer), resolved duplicates get their cached record
// replayed. This is what makes the client's bounded-retry loop safe.
func (sh *shard) admit(msg ingressMsg) {
	key := flowKey(msg.conn, msg.seq)
	if rec, ok := sh.done[key]; ok {
		sh.replays.Add(1)
		sh.d.out.send(msg.from, rec)
		return
	}
	if _, ok := sh.pending[key]; ok {
		sh.dupes.Add(1)
		return
	}
	if len(msg.payload) == 0 {
		sh.d.out.send(msg.from, record{
			conn: msg.conn, seq: msg.seq, shard: uint16(sh.id),
			status: StatusRejected,
		})
		return
	}
	snr := sh.d.cfg.SNRdB
	sendOpts := []link.Option{
		// The flow's medium is seeded from its identity alone, never from
		// arrival order — determinism the goodput experiment relies on.
		link.WithChannel(channel.NewAWGN(snr, sh.d.cfg.flowSeed(msg.conn, msg.seq))),
		link.WithRatePolicy(link.CapacityRate{SNREstimateDB: snr}),
	}
	if w := int(msg.weight); w > 1 {
		// Weight 0 and 1 are both the default share; under a round-robin
		// daemon the engine ignores the option entirely.
		sendOpts = append(sendOpts, link.WithWeight(w))
	}
	id, err := sh.sess.Send(msg.payload, sendOpts...)
	if err != nil {
		sh.d.out.send(msg.from, record{
			conn: msg.conn, seq: msg.seq, shard: uint16(sh.id),
			status: StatusError,
		})
		return
	}
	sh.pending[key] = struct{}{}
	sh.inflight[id] = &pendingFlow{key: key, conn: msg.conn, seq: msg.seq, from: msg.from}
	sh.admitted.Add(1)
}

// finish converts resolved flows into wire records, updates the shard's
// accounting, caches the record for retry replay, and hands it to the
// egress batcher.
func (sh *shard) finish(results []link.Result) {
	for i := range results {
		r := &results[i]
		pf := sh.inflight[r.ID]
		if pf == nil {
			continue
		}
		delete(sh.inflight, r.ID)
		delete(sh.pending, pf.key)

		rec := record{
			conn:       pf.conn,
			seq:        pf.seq,
			shard:      uint16(sh.id),
			symbols:    uint32(r.Stats.SymbolsSent),
			ackSymbols: uint32(r.Stats.AckSymbols),
		}
		switch {
		case r.Err == nil:
			rec.status = StatusDelivered
			rec.bytes = uint32(len(r.Datagram))
			rec.checksum = crc32.ChecksumIEEE(r.Datagram)
			sh.delivered.Add(1)
			sh.bytes.Add(int64(len(r.Datagram)))
		case errors.Is(r.Err, link.ErrFlowBudget):
			rec.status = StatusOutage
			sh.outaged.Add(1)
		default:
			rec.status = StatusError
			sh.outaged.Add(1)
		}
		sh.symbols.Add(int64(r.Stats.SymbolsSent))
		sh.ackSymbols.Add(int64(r.Stats.AckSymbols))
		sh.retrans.Add(int64(r.Stats.Retransmissions))
		sh.batchesRej.Add(int64(r.Stats.BatchesRejected))
		f := r.Stats.Faults
		sh.frameFault.Add(int64(f.FramesReordered + f.FramesDuplicated +
			f.FramesTruncated + f.FramesCorrupted + f.FramesBlackedOut))
		sh.ackFault.Add(int64(f.AcksReordered + f.AcksDuplicated +
			f.AcksTruncated + f.AcksCorrupted))

		sh.remember(pf.key, rec)
		sh.d.out.send(pf.from, rec)
	}
}

// remember caches a resolved record for replay, evicting FIFO at the
// configured cap (Config.DoneCache).
func (sh *shard) remember(key uint64, rec record) {
	limit := sh.d.cfg.DoneCache
	if len(sh.done) >= limit {
		old := sh.doneFIFO[sh.doneHead]
		sh.doneHead++
		delete(sh.done, old)
		// Compact the FIFO once the dead prefix dominates.
		if sh.doneHead >= limit {
			sh.doneFIFO = append(sh.doneFIFO[:0], sh.doneFIFO[sh.doneHead:]...)
			sh.doneHead = 0
		}
	}
	sh.done[key] = rec
	sh.doneFIFO = append(sh.doneFIFO, key)
}

// metrics snapshots the shard for the telemetry endpoint.
func (sh *shard) metrics() ShardMetrics {
	m := ShardMetrics{
		Shard:           sh.id,
		Active:          int(sh.admitted.Load() - sh.delivered.Load() - sh.outaged.Load()),
		Admitted:        sh.admitted.Load(),
		Delivered:       sh.delivered.Load(),
		Outaged:         sh.outaged.Load(),
		DupSubmits:      sh.dupes.Load(),
		Replays:         sh.replays.Load(),
		Bytes:           sh.bytes.Load(),
		Symbols:         sh.symbols.Load(),
		AckSymbols:      sh.ackSymbols.Load(),
		Retransmissions: sh.retrans.Load(),
		BatchesRejected: sh.batchesRej.Load(),
		FrameFaults:     sh.frameFault.Load(),
		AckFaults:       sh.ackFault.Load(),
		QueueLen:        len(sh.in),
		QueueCap:        cap(sh.in),
	}
	if sh.d.cfg.Scheduler == "dwfq" {
		// Session methods are mutex-guarded, so reading the scheduler's
		// counters here is safe against the shard's serving loop.
		ss := sh.sess.SchedulerStats()
		m.SchedQuanta = ss.QuantaGranted
		m.SchedAdmitted = ss.SymbolsAdmitted
		m.SchedAckCharged = ss.AckSymbolsCharged
		m.SchedDeadlines = ss.DeadlineMisses
		m.SchedDeficit = ss.DeficitOutstanding
	}
	return m
}
