// Daemon wire protocol: the datagram grammar between spinald and its
// clients (spinalcat -loadgen, or anything speaking it). One UDP
// datagram carries either one submission (client → daemon) or a batch of
// result records (daemon → client) — the egress side aggregates records
// per destination so a busy daemon amortizes socket writes, the
// recvmmsg/sendmmsg idea expressed with portable building blocks.
//
// All integers are little-endian. The parser is strict and bounded:
// structurally hostile bytes yield ErrBadDatagram, never a panic or an
// unbounded allocation — the same stance as the link wire codec.
package daemon

import (
	"encoding/binary"
	"errors"
)

// Datagram kinds.
const (
	kindSubmit = 0x53 // 'S': client submits one datagram for link service
	kindBatch  = 0x52 // 'R': daemon returns a batch of result records
)

// Result statuses.
const (
	// StatusDelivered: every code block decoded and the CRC-verified
	// datagram was reassembled; Checksum covers the delivered bytes.
	StatusDelivered = 0
	// StatusOutage: the flow exhausted its round budget before decoding.
	StatusOutage = 1
	// StatusRejected: the daemon is draining (or the submission was
	// unserviceable) and did not admit the flow.
	StatusRejected = 2
	// StatusError: the flow resolved with an internal error.
	StatusError = 3
)

// ErrBadDatagram reports bytes that do not parse as a daemon datagram.
var ErrBadDatagram = errors.New("daemon: malformed datagram")

// maxPayload bounds one submission's payload so a submit datagram stays
// within a single UDP datagram with headroom for the header.
const maxPayload = 60000

const (
	submitHeader = 10 // kind + conn + seq + weight
	batchHeader  = 3  // kind + count
	recordLen    = 27 // one result record
)

// submission is one parsed client request: serve payload as one link
// flow on connection conn, submission tag seq. (conn, seq) identifies
// the flow end to end — retried submissions of the same pair are
// idempotent at the daemon. weight is the flow's scheduling weight under
// a fair-queuing daemon (0 and 1 both mean the default share; ignored by
// a round-robin daemon).
type submission struct {
	conn    uint32
	seq     uint32
	weight  uint8
	payload []byte
}

// appendSubmit encodes a submission.
func appendSubmit(dst []byte, conn, seq uint32, weight uint8, payload []byte) []byte {
	dst = append(dst, kindSubmit)
	dst = binary.LittleEndian.AppendUint32(dst, conn)
	dst = binary.LittleEndian.AppendUint32(dst, seq)
	dst = append(dst, weight)
	return append(dst, payload...)
}

// parseSubmit decodes a submission; the payload aliases data.
func parseSubmit(data []byte) (submission, error) {
	if len(data) < submitHeader || data[0] != kindSubmit ||
		len(data)-submitHeader > maxPayload {
		return submission{}, ErrBadDatagram
	}
	return submission{
		conn:    binary.LittleEndian.Uint32(data[1:]),
		seq:     binary.LittleEndian.Uint32(data[5:]),
		weight:  data[9],
		payload: data[submitHeader:],
	}, nil
}

// record is one flow's outcome: identity, the shard that served it, its
// status, and the accounting a client needs to verify delivery and
// compute goodput without trusting wall clocks — symbols are the flow's
// forward airtime, ackSymbols its half-duplex reverse share, checksum
// the CRC-32 (IEEE) of the delivered datagram.
type record struct {
	conn       uint32
	seq        uint32
	shard      uint16
	status     uint8
	bytes      uint32
	symbols    uint32
	ackSymbols uint32
	checksum   uint32
}

// appendRecord encodes one record.
func appendRecord(dst []byte, r record) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, r.conn)
	dst = binary.LittleEndian.AppendUint32(dst, r.seq)
	dst = binary.LittleEndian.AppendUint16(dst, r.shard)
	dst = append(dst, r.status)
	dst = binary.LittleEndian.AppendUint32(dst, r.bytes)
	dst = binary.LittleEndian.AppendUint32(dst, r.symbols)
	dst = binary.LittleEndian.AppendUint32(dst, r.ackSymbols)
	return binary.LittleEndian.AppendUint32(dst, r.checksum)
}

// appendBatch encodes a batch of records into one datagram.
func appendBatch(dst []byte, recs []record) []byte {
	dst = append(dst, kindBatch)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(recs)))
	for _, r := range recs {
		dst = appendRecord(dst, r)
	}
	return dst
}

// parseBatch decodes a result batch. The count must match the datagram
// length exactly; a truncated or padded batch is rejected whole.
func parseBatch(data []byte) ([]record, error) {
	if len(data) < batchHeader || data[0] != kindBatch {
		return nil, ErrBadDatagram
	}
	n := int(binary.LittleEndian.Uint16(data[1:]))
	if len(data) != batchHeader+n*recordLen {
		return nil, ErrBadDatagram
	}
	recs := make([]record, n)
	for i := range recs {
		b := data[batchHeader+i*recordLen:]
		recs[i] = record{
			conn:       binary.LittleEndian.Uint32(b),
			seq:        binary.LittleEndian.Uint32(b[4:]),
			shard:      binary.LittleEndian.Uint16(b[8:]),
			status:     b[10],
			bytes:      binary.LittleEndian.Uint32(b[11:]),
			symbols:    binary.LittleEndian.Uint32(b[15:]),
			ackSymbols: binary.LittleEndian.Uint32(b[19:]),
			checksum:   binary.LittleEndian.Uint32(b[23:]),
		}
	}
	return recs, nil
}

// flowKey packs a (conn, seq) pair into the dedup key shards index by.
func flowKey(conn, seq uint32) uint64 { return uint64(conn)<<32 | uint64(seq) }
