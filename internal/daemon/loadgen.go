package daemon

import (
	"fmt"
	"hash/crc32"
	"math/rand"
	"net"
	"time"
)

// LoadConfig drives M concurrent flows against a running daemon from one
// client socket — spinalcat's -loadgen mode and the goodput-vs-flows
// experiment both run through it.
type LoadConfig struct {
	// Addr is the daemon's UDP address.
	Addr string
	// Flows is the number of concurrent flows to submit.
	Flows int
	// Size is each flow's payload in bytes (0 ⇒ 64).
	Size int
	// ConnBase numbers the flows' connection IDs [ConnBase, ConnBase+Flows)
	// (0 ⇒ 1). Consecutive IDs spread round-robin across the daemon's
	// shards.
	ConnBase uint32
	// Seq tags this run's submissions. Reusing a daemon across runs (a
	// sweep) needs a distinct Seq per run, or the shards' idempotence
	// caches will replay the previous run's results.
	Seq uint32
	// Timeout is the wait per read round before unresolved flows are
	// resubmitted (0 ⇒ 250ms) — the bounded-retry pattern: a read
	// deadline plus a retry budget, never an unbounded block.
	Timeout time.Duration
	// Retries bounds resubmissions per flow before it is declared failed
	// (0 ⇒ 20).
	Retries int
	// Seed draws the payload bytes.
	Seed int64
	// Weight is each submission's scheduling weight on the wire (0 and 1
	// both mean the default share; only a dwfq daemon honors it).
	Weight uint8
	// CommonPayload sends the same Seed-drawn payload on every flow.
	// Against a CommonChannel daemon this makes every flow's transfer
	// byte-identical, so per-flow airtime is exactly constant — the
	// paired-run setup under which the goodput-vs-flows sweep's
	// monotonicity is exact rather than statistical.
	CommonPayload bool
}

func (c *LoadConfig) withDefaults() {
	if c.Size <= 0 {
		c.Size = 64
	}
	if c.ConnBase == 0 {
		c.ConnBase = 1
	}
	if c.Timeout <= 0 {
		c.Timeout = 250 * time.Millisecond
	}
	if c.Retries <= 0 {
		c.Retries = 20
	}
}

// LoadResult summarizes one loadgen run.
type LoadResult struct {
	Flows     int
	Delivered int
	Outaged   int
	Rejected  int
	// Failed counts flows that exhausted their retry budget without any
	// answer — daemon unreachable or records lost repeatedly.
	Failed int
	// Retries counts resubmissions across all flows.
	Retries        int
	BytesDelivered int64
	// Corrupted counts delivered records whose checksum or length did not
	// match the submitted payload (always 0 unless something is broken
	// end to end).
	Corrupted int
	// TotalSymbols sums every flow's forward+ack airtime; MaxShardSymbols
	// is the busiest shard's share — the parallel-airtime denominator.
	TotalSymbols    int64
	MaxShardSymbols int64
	// AggregateGoodput is delivered payload bits per symbol of parallel
	// airtime: 8·BytesDelivered / MaxShardSymbols. With per-flow symbol
	// spend deterministic in the flow's identity, spreading a fixed
	// workload over more shards shrinks the denominator — this is the
	// metric the goodput-vs-flows curve plots.
	AggregateGoodput float64
	Elapsed          time.Duration
}

func (r LoadResult) String() string {
	return fmt.Sprintf(
		"flows=%d delivered=%d outaged=%d rejected=%d failed=%d retries=%d goodput=%.3f b/sym in %v",
		r.Flows, r.Delivered, r.Outaged, r.Rejected, r.Failed, r.Retries,
		r.AggregateGoodput, r.Elapsed.Round(time.Millisecond))
}

// lgFlow is one flow's client-side state.
type lgFlow struct {
	conn     uint32
	payload  []byte
	checksum uint32
	resolved bool
	retries  int
	failed   bool
}

// RunLoad submits cfg.Flows concurrent flows and collects every result.
// It returns an error only for setup failures; per-flow outcomes —
// including flows that never got an answer — are in the LoadResult.
func RunLoad(cfg LoadConfig) (LoadResult, error) {
	cfg.withDefaults()
	raddr, err := net.ResolveUDPAddr("udp", cfg.Addr)
	if err != nil {
		return LoadResult{}, fmt.Errorf("loadgen: resolve %s: %w", cfg.Addr, err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return LoadResult{}, fmt.Errorf("loadgen: dial: %w", err)
	}
	defer conn.Close()

	rng := rand.New(rand.NewSource(cfg.Seed))
	flows := make(map[uint32]*lgFlow, cfg.Flows)
	order := make([]uint32, 0, cfg.Flows)
	var common []byte
	if cfg.CommonPayload {
		common = make([]byte, cfg.Size)
		rng.Read(common)
	}
	for i := 0; i < cfg.Flows; i++ {
		id := cfg.ConnBase + uint32(i)
		payload := common
		if payload == nil {
			payload = make([]byte, cfg.Size)
			rng.Read(payload)
		}
		flows[id] = &lgFlow{conn: id, payload: payload, checksum: crc32.ChecksumIEEE(payload)}
		order = append(order, id)
	}

	res := LoadResult{Flows: cfg.Flows}
	start := time.Now()
	submit := func(f *lgFlow) {
		buf := appendSubmit(make([]byte, 0, submitHeader+len(f.payload)), f.conn, cfg.Seq, cfg.Weight, f.payload)
		conn.Write(buf)
	}
	for _, id := range order {
		submit(flows[id])
	}

	perShard := make(map[uint16]int64)
	outstanding := cfg.Flows
	buf := make([]byte, 64<<10)
	for outstanding > 0 {
		conn.SetReadDeadline(time.Now().Add(cfg.Timeout))
		n, err := conn.Read(buf)
		if err != nil {
			// Read deadline expired: resubmit every unresolved flow that
			// still has retry budget; flows past the budget fail — the
			// bounded exit that keeps a lost-datagram run from hanging.
			for _, id := range order {
				f := flows[id]
				if f.resolved || f.failed {
					continue
				}
				if f.retries >= cfg.Retries {
					f.failed = true
					res.Failed++
					outstanding--
					continue
				}
				f.retries++
				res.Retries++
				submit(f)
			}
			continue
		}
		recs, err := parseBatch(buf[:n])
		if err != nil {
			continue
		}
		for _, rec := range recs {
			f := flows[rec.conn]
			if f == nil || rec.seq != cfg.Seq || f.resolved || f.failed {
				continue
			}
			f.resolved = true
			outstanding--
			air := int64(rec.symbols) + int64(rec.ackSymbols)
			res.TotalSymbols += air
			perShard[rec.shard] += air
			switch rec.status {
			case StatusDelivered:
				res.Delivered++
				res.BytesDelivered += int64(rec.bytes)
				if rec.bytes != uint32(len(f.payload)) || rec.checksum != f.checksum {
					res.Corrupted++
				}
			case StatusOutage:
				res.Outaged++
			default:
				res.Rejected++
			}
		}
	}
	res.Elapsed = time.Since(start)
	for _, air := range perShard {
		if air > res.MaxShardSymbols {
			res.MaxShardSymbols = air
		}
	}
	if res.MaxShardSymbols > 0 {
		res.AggregateGoodput = float64(8*res.BytesDelivered) / float64(res.MaxShardSymbols)
	}
	return res, nil
}
