// Package daemon is spinald's engine room: a UDP-facing service that
// carries client datagrams across per-core sharded spinal link engines —
// the library turned into a deployable system, modeled on the NDN-DPDK
// service-daemon shape (one socket, per-core workers, batched I/O,
// graceful drain, a telemetry endpoint).
//
// One receive loop owns the socket: it parses submissions, dedups
// retries, and demuxes them by connection ID into per-shard ingress
// queues. Each shard (N ≈ GOMAXPROCS) owns an independent link.Session
// whose codec work runs on one CodecPool shared across every shard, so a
// flow costs warmed-up codecs no matter which shard serves it. Resolved
// flows leave through a batching egress writer that aggregates result
// records per client address into single datagrams. SIGTERM (via
// Shutdown) drains: new submissions are rejected with a typed status,
// in-flight blocks flush, the egress empties, and a final report is
// written.
//
// Everything is deterministic given the config seed: each flow's
// simulated channel is seeded from its (connection, submission) identity
// alone, so per-flow symbol spend does not depend on arrival order or
// shard interleaving — the property the goodput-vs-flows experiment's
// monotonicity assertion stands on.
package daemon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"spinal"
	"spinal/link"
)

// Daemon states.
const (
	stateRunning int32 = iota
	stateDraining
	stateStopped
)

// recvTick is the receive loop's read-deadline granularity: the loop
// wakes at least this often to notice a state change instead of blocking
// in ReadFromUDP forever — the termination path the filetransfer example
// originally lacked.
const recvTick = 200 * time.Millisecond

// Config configures a daemon.
type Config struct {
	// Listen is the UDP address to serve on (default "127.0.0.1:0").
	Listen string
	// Telemetry is the HTTP address of the /metrics endpoint ("" = off).
	Telemetry string
	// Shards is the number of per-core link sessions (0 ⇒ GOMAXPROCS).
	// Connection IDs map to shards by ID mod Shards.
	Shards int
	// Params is the spinal code every shard runs (zero ⇒ DefaultParams).
	Params spinal.Params
	// SNRdB is the simulated AWGN channel each served flow crosses
	// (0 ⇒ 10 dB, the acceptance operating point).
	SNRdB float64
	// Seed drives every flow's channel noise, mixed with the flow's
	// (connection, submission) identity.
	Seed int64
	// CommonChannel switches every flow onto one shared noise
	// realization (seeded from Seed alone, identity ignored) — common
	// random numbers, the classic variance-reduction device. The
	// goodput-vs-flows experiment runs in this mode so the curve
	// isolates multiplexing gain from per-flow channel luck.
	CommonChannel bool
	// MaxBlockBits, MaxRounds and FrameSymbols pass through to each
	// shard's session (0 ⇒ engine defaults).
	MaxBlockBits int
	MaxRounds    int
	FrameSymbols int
	// QueueDepth is each shard's ingress queue capacity (0 ⇒ 1024).
	// A full queue drops the submission — the client's bounded retry
	// resubmits it — rather than blocking the socket loop.
	QueueDepth int
	// DoneCache bounds each shard's memory of resolved flows, the
	// idempotence window for retried submissions (0 ⇒ 8192). Beyond the
	// cap the oldest record is evicted FIFO and a very late retry is
	// served as a fresh flow — wasteful but still correct, since a flow's
	// channel seed and therefore its outcome are identity-derived.
	DoneCache int
	// Scheduler selects each shard's flow-admission scheduler: "" or
	// "rr" is the engine-default round-robin, "dwfq" is deficit-weighted
	// fair queuing honoring each submission's wire weight. New rejects
	// anything else.
	Scheduler string
	// BatchRecords caps result records per egress datagram (0 ⇒ 32).
	BatchRecords int
	// Faults, when non-nil, runs every served flow through the link
	// layer's deterministic fault injector (chaos service).
	Faults *link.FaultConfig
	// Report receives the drain summary (nil ⇒ discarded).
	Report io.Writer
}

func (c *Config) withDefaults() {
	if c.Listen == "" {
		c.Listen = "127.0.0.1:0"
	}
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.Params == (spinal.Params{}) {
		c.Params = spinal.DefaultParams()
	}
	if c.SNRdB == 0 {
		c.SNRdB = 10
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.DoneCache <= 0 {
		c.DoneCache = 8192
	}
	if c.BatchRecords <= 0 {
		c.BatchRecords = 32
	}
	if c.Report == nil {
		c.Report = io.Discard
	}
}

// flowSeed derives a flow's channel seed from its identity alone, so a
// flow's noise sequence — and with it its symbol spend — is independent
// of arrival order, shard interleaving and retries. Under CommonChannel
// the identity is ignored and every flow draws the same realization.
func (c *Config) flowSeed(conn, seq uint32) int64 {
	if c.CommonChannel {
		return c.Seed
	}
	h := uint64(c.Seed) ^ uint64(conn)*0x9e3779b97f4a7c15 ^ uint64(seq)*0xff51afd7ed558ccd
	return int64(h)
}

// Daemon is a running spinald instance.
type Daemon struct {
	cfg    Config
	conn   *net.UDPConn
	pool   *link.CodecPool
	shards []*shard
	out    *egress

	state   atomic.Int32
	drainCh chan struct{} // closed at drain start; shards watch it

	shardWG sync.WaitGroup
	recvWG  sync.WaitGroup

	httpSrv *http.Server
	httpLn  net.Listener

	started time.Time

	// Socket-loop counters.
	datagramsIn    atomic.Int64
	parseErrors    atomic.Int64
	rejected       atomic.Int64
	ingressDropped atomic.Int64

	shutdownOnce sync.Once
	shutdownErr  error
}

// New binds the daemon's sockets and builds its shards; Start launches
// the loops.
func New(cfg Config) (*Daemon, error) {
	cfg.withDefaults()
	switch cfg.Scheduler {
	case "", "rr", "dwfq":
	default:
		return nil, fmt.Errorf("daemon: unknown scheduler %q (want rr or dwfq)", cfg.Scheduler)
	}
	addr, err := net.ResolveUDPAddr("udp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("daemon: resolve %s: %w", cfg.Listen, err)
	}
	conn, err := net.ListenUDP("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("daemon: listen: %w", err)
	}
	d := &Daemon{
		cfg:     cfg,
		conn:    conn,
		pool:    link.NewCodecPool(cfg.Params, cfg.Shards),
		drainCh: make(chan struct{}),
		started: time.Now(),
	}
	d.out = newEgress(conn, cfg.BatchRecords)
	d.shards = make([]*shard, cfg.Shards)
	for i := range d.shards {
		sh, err := newShard(d, i)
		if err != nil {
			conn.Close()
			d.pool.Close()
			return nil, err
		}
		d.shards[i] = sh
	}
	if cfg.Telemetry != "" {
		ln, err := net.Listen("tcp", cfg.Telemetry)
		if err != nil {
			conn.Close()
			d.pool.Close()
			return nil, fmt.Errorf("daemon: telemetry listen: %w", err)
		}
		d.httpLn = ln
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(d.Metrics())
		})
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
			fmt.Fprintln(w, stateName(d.state.Load()))
		})
		d.httpSrv = &http.Server{Handler: mux}
	}
	return d, nil
}

// Start launches the receive loop, the shard loops, the egress writer
// and (if configured) the telemetry server.
func (d *Daemon) Start() {
	d.out.start()
	for _, sh := range d.shards {
		d.shardWG.Add(1)
		go sh.loop()
	}
	d.recvWG.Add(1)
	go d.recvLoop()
	if d.httpSrv != nil {
		go d.httpSrv.Serve(d.httpLn)
	}
}

// Addr reports the bound UDP address.
func (d *Daemon) Addr() *net.UDPAddr { return d.conn.LocalAddr().(*net.UDPAddr) }

// TelemetryAddr reports the bound telemetry address ("" when off).
func (d *Daemon) TelemetryAddr() string {
	if d.httpLn == nil {
		return ""
	}
	return d.httpLn.Addr().String()
}

// recvLoop owns the socket's read side: parse, dedup happens per shard,
// demux by connection ID. The read deadline keeps the loop responsive
// to state changes — a socket loop must always have a termination path.
func (d *Daemon) recvLoop() {
	defer d.recvWG.Done()
	buf := make([]byte, 64<<10)
	for {
		d.conn.SetReadDeadline(time.Now().Add(recvTick))
		n, from, err := d.conn.ReadFromUDP(buf)
		if err != nil {
			if d.state.Load() == stateStopped {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			// The socket died underneath us outside a shutdown; nothing
			// to serve anymore.
			return
		}
		d.datagramsIn.Add(1)
		sub, err := parseSubmit(buf[:n])
		if err != nil {
			d.parseErrors.Add(1)
			continue
		}
		if d.state.Load() != stateRunning {
			// Draining: stop accepting, but answer — the client learns
			// immediately instead of burning its retry budget.
			d.rejected.Add(1)
			d.out.send(from, record{
				conn: sub.conn, seq: sub.seq, status: StatusRejected,
			})
			continue
		}
		sh := d.shards[int(sub.conn)%len(d.shards)]
		msg := ingressMsg{
			conn:   sub.conn,
			seq:    sub.seq,
			weight: sub.weight,
			// The read buffer is reused; the shard owns a copy.
			payload: append([]byte(nil), sub.payload...),
			from:    from,
		}
		select {
		case sh.in <- msg:
		default:
			// Backpressure: shed at the socket rather than stall every
			// other shard; the client's bounded retry recovers.
			d.ingressDropped.Add(1)
		}
	}
}

// Shutdown drains the daemon: reject new submissions, flush in-flight
// flows, empty the egress, stop the loops, report. It is idempotent;
// ctx bounds how long the drain may take (expired, the daemon stops
// anyway and Shutdown reports the flows it abandoned).
func (d *Daemon) Shutdown(ctx context.Context) error {
	d.shutdownOnce.Do(func() { d.shutdownErr = d.shutdown(ctx) })
	return d.shutdownErr
}

func (d *Daemon) shutdown(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	d.state.CompareAndSwap(stateRunning, stateDraining)
	close(d.drainCh)

	shardsDone := make(chan struct{})
	go func() {
		d.shardWG.Wait()
		close(shardsDone)
	}()
	var drainErr error
	select {
	case <-shardsDone:
	case <-ctx.Done():
		abandoned := 0
		for _, sh := range d.shards {
			abandoned += sh.sess.Active()
		}
		drainErr = fmt.Errorf("daemon: drain timed out with %d flows in flight: %w",
			abandoned, ctx.Err())
	}

	// Stop the socket loop, then flush and stop the egress writer (the
	// shards and the socket loop are its only producers).
	d.state.Store(stateStopped)
	d.conn.SetReadDeadline(time.Now())
	d.recvWG.Wait()
	d.out.stop()
	d.conn.Close()
	if d.httpSrv != nil {
		d.httpSrv.Close()
	}
	if drainErr == nil {
		// Shards closed their sessions; now the shared pool.
		d.pool.Close()
	}
	d.report(drainErr)
	return drainErr
}

// report writes the drain summary.
func (d *Daemon) report(drainErr error) {
	m := d.Metrics()
	fmt.Fprintf(d.cfg.Report,
		"spinald: served %d flows (%d delivered, %d outages, %d rejected) over %d shards\n",
		m.Flows.Admitted, m.Flows.Delivered, m.Flows.Outaged, m.Socket.Rejected,
		len(d.shards))
	fmt.Fprintf(d.cfg.Report,
		"spinald: %d symbols (+%d ack), egress %d records in %d datagrams (%.1f records/write)\n",
		m.Flows.Symbols, m.Flows.AckSymbols,
		m.Socket.RecordsOut, m.Socket.DatagramsOut, m.Socket.BatchingFactor)
	if drainErr != nil {
		fmt.Fprintf(d.cfg.Report, "spinald: drain FAILED: %v\n", drainErr)
	} else {
		fmt.Fprintf(d.cfg.Report, "spinald: drained cleanly\n")
	}
}

func stateName(s int32) string {
	switch s {
	case stateRunning:
		return "running"
	case stateDraining:
		return "draining"
	default:
		return "stopped"
	}
}

// Metrics is the telemetry snapshot the /metrics endpoint serves as
// JSON: per-shard engine accounting, the shared codec pool's
// construction counters, and socket/egress counters.
type Metrics struct {
	State         string         `json:"state"`
	UptimeSeconds float64        `json:"uptime_seconds"`
	Flows         FlowMetrics    `json:"flows"`
	Shards        []ShardMetrics `json:"shards"`
	Pool          PoolMetrics    `json:"pool"`
	Socket        SocketMetrics  `json:"socket"`
}

// FlowMetrics aggregates flow accounting across shards.
type FlowMetrics struct {
	Admitted   int64 `json:"admitted"`
	Active     int   `json:"active"`
	Delivered  int64 `json:"delivered"`
	Outaged    int64 `json:"outaged"`
	Bytes      int64 `json:"bytes_delivered"`
	Symbols    int64 `json:"symbols_sent"`
	AckSymbols int64 `json:"ack_symbols"`
}

// ShardMetrics is one shard's engine accounting. QueueLen/QueueCap
// snapshot the ingress queue (the backpressure signal behind
// ingress_dropped); the Sched* counters mirror the shard session's
// scheduler accounting and stay zero under the default round-robin.
type ShardMetrics struct {
	Shard           int   `json:"shard"`
	Active          int   `json:"active"`
	Admitted        int64 `json:"admitted"`
	Delivered       int64 `json:"delivered"`
	Outaged         int64 `json:"outaged"`
	DupSubmits      int64 `json:"dup_submits"`
	Replays         int64 `json:"result_replays"`
	Bytes           int64 `json:"bytes_delivered"`
	Symbols         int64 `json:"symbols_sent"`
	AckSymbols      int64 `json:"ack_symbols"`
	Retransmissions int64 `json:"retransmissions"`
	BatchesRejected int64 `json:"batches_rejected"`
	FrameFaults     int64 `json:"frame_faults"`
	AckFaults       int64 `json:"ack_faults"`
	QueueLen        int   `json:"queue_len"`
	QueueCap        int   `json:"queue_cap"`
	SchedQuanta     int64 `json:"sched_quanta_granted,omitempty"`
	SchedAdmitted   int64 `json:"sched_symbols_admitted,omitempty"`
	SchedAckCharged int64 `json:"sched_ack_symbols_charged,omitempty"`
	SchedDeadlines  int64 `json:"sched_deadline_misses,omitempty"`
	SchedDeficit    int64 `json:"sched_deficit_outstanding,omitempty"`
}

// PoolMetrics is the shared codec pool's reuse telemetry.
type PoolMetrics struct {
	Shards        int   `json:"shards"`
	EncodersBuilt int64 `json:"encoders_built"`
	DecodersBuilt int64 `json:"decoders_built"`
}

// SocketMetrics counts the socket loop and the batching egress.
type SocketMetrics struct {
	DatagramsIn    int64   `json:"datagrams_in"`
	ParseErrors    int64   `json:"parse_errors"`
	Rejected       int64   `json:"rejected"`
	IngressDropped int64   `json:"ingress_dropped"`
	DatagramsOut   int64   `json:"datagrams_out"`
	RecordsOut     int64   `json:"records_out"`
	BatchingFactor float64 `json:"batching_factor"`
}

// Metrics snapshots the daemon's counters; safe to call concurrently
// with the serving loops.
func (d *Daemon) Metrics() Metrics {
	m := Metrics{
		State:         stateName(d.state.Load()),
		UptimeSeconds: time.Since(d.started).Seconds(),
		Socket: SocketMetrics{
			DatagramsIn:    d.datagramsIn.Load(),
			ParseErrors:    d.parseErrors.Load(),
			Rejected:       d.rejected.Load(),
			IngressDropped: d.ingressDropped.Load(),
			DatagramsOut:   d.out.datagrams.Load(),
			RecordsOut:     d.out.records.Load(),
		},
	}
	if m.Socket.DatagramsOut > 0 {
		m.Socket.BatchingFactor =
			float64(m.Socket.RecordsOut) / float64(m.Socket.DatagramsOut)
	}
	ps := d.pool.Stats()
	m.Pool = PoolMetrics{
		Shards:        d.pool.Shards(),
		EncodersBuilt: ps.EncodersBuilt,
		DecodersBuilt: ps.DecodersBuilt,
	}
	for _, sh := range d.shards {
		sm := sh.metrics()
		m.Shards = append(m.Shards, sm)
		m.Flows.Admitted += sm.Admitted
		m.Flows.Active += sm.Active
		m.Flows.Delivered += sm.Delivered
		m.Flows.Outaged += sm.Outaged
		m.Flows.Bytes += sm.Bytes
		m.Flows.Symbols += sm.Symbols
		m.Flows.AckSymbols += sm.AckSymbols
	}
	return m
}
