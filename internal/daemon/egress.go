package daemon

import (
	"net"
	"sync"
	"sync/atomic"
)

// egress is the daemon's write side: a single goroutine that pulls
// result records from every shard, groups them by destination address,
// and flushes each group as one batch datagram — sendmmsg's aggregation
// expressed with portable building blocks. Batches form greedily: the
// loop drains whatever is queued before flushing, so a busy daemon
// amortizes socket writes while an idle one answers immediately.
type egress struct {
	conn *net.UDPConn
	in   chan egressMsg
	quit chan struct{}
	max  int // records per datagram
	wg   sync.WaitGroup

	// groups is loop-owned between flushes.
	groups map[string]*egressGroup

	datagrams atomic.Int64
	records   atomic.Int64
	dropped   atomic.Int64
}

type egressMsg struct {
	to  *net.UDPAddr
	rec record
}

type egressGroup struct {
	to   *net.UDPAddr
	recs []record
}

func newEgress(conn *net.UDPConn, batchRecords int) *egress {
	return &egress{
		conn:   conn,
		in:     make(chan egressMsg, 4096),
		quit:   make(chan struct{}),
		max:    batchRecords,
		groups: make(map[string]*egressGroup),
	}
}

func (e *egress) start() {
	e.wg.Add(1)
	go e.loop()
}

// send hands a record to the writer. It blocks when the egress queue is
// full (backpressure onto the shard) but never blocks past shutdown: a
// stopped egress drops the record, which only happens on the abandoned
// tail of a timed-out drain.
func (e *egress) send(to *net.UDPAddr, rec record) {
	select {
	case e.in <- egressMsg{to, rec}:
	case <-e.quit:
		e.dropped.Add(1)
	}
}

// stop flushes everything queued and stops the writer.
func (e *egress) stop() {
	close(e.quit)
	e.wg.Wait()
}

func (e *egress) loop() {
	defer e.wg.Done()
	for {
		select {
		case msg := <-e.in:
			e.collect(msg)
			e.soakAndFlush()
		case <-e.quit:
			// Final drain: everything already queued still goes out.
			for {
				select {
				case msg := <-e.in:
					e.collect(msg)
				default:
					e.flush()
					return
				}
			}
		}
	}
}

// soakAndFlush greedily drains the queue into per-destination groups,
// flushing full batches as they form, then flushes the remainder once
// the queue runs dry.
func (e *egress) soakAndFlush() {
	for {
		select {
		case msg := <-e.in:
			e.collect(msg)
		default:
			e.flush()
			return
		}
	}
}

func (e *egress) collect(msg egressMsg) {
	key := msg.to.String()
	g := e.groups[key]
	if g == nil {
		g = &egressGroup{to: msg.to}
		e.groups[key] = g
	}
	g.recs = append(g.recs, msg.rec)
	if len(g.recs) >= e.max {
		e.write(g.to, g.recs)
		g.recs = g.recs[:0]
	}
}

func (e *egress) flush() {
	for key, g := range e.groups {
		if len(g.recs) > 0 {
			e.write(g.to, g.recs)
		}
		delete(e.groups, key)
	}
}

func (e *egress) write(to *net.UDPAddr, recs []record) {
	buf := appendBatch(make([]byte, 0, batchHeader+len(recs)*recordLen), recs)
	if _, err := e.conn.WriteToUDP(buf, to); err != nil {
		e.dropped.Add(int64(len(recs)))
		return
	}
	e.datagrams.Add(1)
	e.records.Add(int64(len(recs)))
}
