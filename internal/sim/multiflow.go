package sim

import (
	"bytes"
	"context"
	"math/rand"

	"spinal/channel"
	"spinal/internal/core"
	"spinal/link"
)

// MultiFlowConfig drives the §6 link engine at workload scale: many
// datagrams of mixed sizes over channels of mixed SNRs, multiplexed into
// shared frames with a bounded number of flows in flight — arrivals
// replace departures (flow churn) until the configured total has run.
type MultiFlowConfig struct {
	Params core.Params
	// Flows is the total number of datagrams to deliver.
	Flows int
	// Concurrency caps the flows in flight at once (0 ⇒ min(Flows, 32)).
	Concurrency int
	// MinBytes/MaxBytes bound the uniformly drawn datagram sizes
	// (defaults 64/1500).
	MinBytes, MaxBytes int
	// SNRsDB is the set of per-flow channel SNRs, assigned round-robin
	// (nil ⇒ {8, 12, 18, 25}).
	SNRsDB []float64
	// Erasure is the probability a flow's share of a frame is lost.
	Erasure float64
	// FrameLoss is the probability an entire shared frame is erased.
	FrameLoss float64
	// MaxBlockBits, FrameSymbols and Shards pass through to the engine.
	MaxBlockBits int
	FrameSymbols int
	Shards       int
	Seed         int64
}

// MultiFlowResult aggregates an engine workload.
type MultiFlowResult struct {
	Flows    int
	Failures int   // budget exhaustion or corrupted delivery
	Bytes    int64 // payload bytes delivered
	Symbols  int64 // channel symbols spent (failed flows included)
	// Rate is aggregate payload bits per channel symbol.
	Rate float64
	// Rounds is the number of engine scheduling rounds consumed.
	Rounds int
	// PeakActive is the largest number of flows simultaneously in flight.
	PeakActive int
}

// MeasureMultiFlow runs the configured workload through a link.Engine and
// aggregates delivery statistics. Trials are deterministic given Seed.
func MeasureMultiFlow(cfg MultiFlowConfig) MultiFlowResult {
	conc := cfg.Concurrency
	if conc <= 0 {
		conc = 32
	}
	if conc > cfg.Flows {
		conc = cfg.Flows
	}
	minB, maxB := cfg.MinBytes, cfg.MaxBytes
	if minB <= 0 {
		minB = 64
	}
	if maxB < minB {
		maxB = 1500
	}
	snrs := cfg.SNRsDB
	if len(snrs) == 0 {
		snrs = []float64{8, 12, 18, 25}
	}

	s, err := link.NewSession(cfg.Params,
		link.WithMaxBlockBits(cfg.MaxBlockBits),
		link.WithCodecPool(cfg.Shards),
		link.WithFrameSymbols(cfg.FrameSymbols),
		link.WithFrameLoss(cfg.FrameLoss),
		link.WithSeed(cfg.Seed),
	)
	if err != nil {
		// No option combination above is invalid; fail loudly if the API
		// ever makes one so.
		panic(err)
	}
	defer s.Close()
	ctx := context.Background()

	rng := rand.New(rand.NewSource(cfg.Seed))
	want := make(map[link.FlowID][]byte, conc)
	admitted := 0
	admit := func() {
		n := minB
		if maxB > minB {
			n += rng.Intn(maxB - minB + 1)
		}
		data := make([]byte, n)
		rng.Read(data)
		snr := snrs[admitted%len(snrs)]
		// Any channel.Model drops in here; this workload keeps the
		// fixed-SNR AWGN mix (the scenario driver covers time-varying
		// media).
		id, err := s.Send(data,
			link.WithRawChannel(NewFlowChannel(channel.NewAWGN(snr, cfg.Seed+int64(admitted)*7919),
				cfg.Erasure, cfg.Seed^int64(admitted))),
			link.WithRatePolicy(link.CapacityRate{SNREstimateDB: snr}))
		if err != nil {
			panic(err) // flow-scoped options only; cannot fail
		}
		want[id] = data
		admitted++
	}

	var res MultiFlowResult
	for admitted < cfg.Flows && s.Active() < conc {
		admit()
	}
	for s.Active() > 0 {
		if a := s.Active(); a > res.PeakActive {
			res.PeakActive = a
		}
		finished, serr := s.Step(ctx)
		if serr != nil {
			panic(serr) // background context; cannot fail
		}
		res.Rounds++
		for _, r := range finished {
			res.Flows++
			res.Symbols += int64(r.Stats.SymbolsSent)
			if r.Err != nil || !bytes.Equal(r.Datagram, want[r.ID]) {
				res.Failures++
			} else {
				res.Bytes += int64(len(r.Datagram))
			}
			delete(want, r.ID)
			if admitted < cfg.Flows {
				admit()
			}
		}
	}
	if res.Symbols > 0 {
		res.Rate = float64(res.Bytes*8) / float64(res.Symbols)
	}
	return res
}
