package sim

import (
	"testing"

	"spinal/internal/core"
)

func multiFlowParams() core.Params {
	return core.Params{K: 4, B: 16, D: 1, C: 6, Tail: 2, Ways: 8}
}

// TestMeasureMultiFlow: a mixed-size, mixed-SNR workload with churn and
// loss delivers every datagram and reports a sane aggregate rate.
func TestMeasureMultiFlow(t *testing.T) {
	res := MeasureMultiFlow(MultiFlowConfig{
		Params:       multiFlowParams(),
		Flows:        12,
		Concurrency:  5,
		MinBytes:     20,
		MaxBytes:     120,
		SNRsDB:       []float64{10, 15, 22},
		Erasure:      0.1,
		FrameLoss:    0.05,
		MaxBlockBits: 192,
		Shards:       4,
		Seed:         42,
	})
	if res.Flows != 12 {
		t.Fatalf("resolved %d flows, want 12", res.Flows)
	}
	if res.Failures != 0 {
		t.Fatalf("%d failures", res.Failures)
	}
	if res.Rate <= 0 || res.Rate > 12 {
		t.Fatalf("implausible aggregate rate %.3f b/sym", res.Rate)
	}
	if res.PeakActive > 5 {
		t.Fatalf("peak active %d exceeds concurrency 5", res.PeakActive)
	}
	if res.Bytes == 0 || res.Rounds == 0 {
		t.Fatalf("empty result: %+v", res)
	}
}

// TestMeasureMultiFlowDeterministic: identical seeds give identical
// aggregates despite internal parallelism.
func TestMeasureMultiFlowDeterministic(t *testing.T) {
	cfg := MultiFlowConfig{
		Params:       multiFlowParams(),
		Flows:        6,
		Concurrency:  3,
		MinBytes:     20,
		MaxBytes:     60,
		MaxBlockBits: 192,
		Shards:       3,
		Seed:         7,
	}
	a := MeasureMultiFlow(cfg)
	b := MeasureMultiFlow(cfg)
	if a != b {
		t.Fatalf("nondeterministic results:\n%+v\n%+v", a, b)
	}
}
