package sim

import (
	"math"
	"testing"

	"spinal/internal/capacity"
	"spinal/internal/core"
)

func quickParams() core.Params {
	return core.Params{K: 4, B: 32, D: 1, C: 6, Tail: 2, Ways: 8}
}

func TestMeasureSpinalHighSNR(t *testing.T) {
	cfg := SpinalConfig{
		Params: quickParams(), NBits: 128, SNRdB: 25, Trials: 6, Seed: 1,
	}
	r := MeasureSpinal(cfg)
	if r.Failures > 0 {
		t.Fatalf("failures at 25 dB: %d", r.Failures)
	}
	if r.Rate < 3 {
		t.Fatalf("rate %.2f too low at 25 dB", r.Rate)
	}
	if r.Rate > capacity.AWGNdB(25) {
		t.Fatalf("rate %.2f exceeds capacity %.2f", r.Rate, capacity.AWGNdB(25))
	}
	if r.GapDB() >= 0 {
		t.Fatalf("gap %.2f should be negative", r.GapDB())
	}
	if len(r.SymbolCounts) != r.Messages-r.Failures {
		t.Fatal("symbol counts inconsistent with successes")
	}
}

func TestRateBelowCapacityAcrossSNR(t *testing.T) {
	for _, snr := range []float64{0, 10, 20} {
		cfg := SpinalConfig{
			Params: quickParams(), NBits: 96, SNRdB: snr, Trials: 4, Seed: 2,
		}
		r := MeasureSpinal(cfg)
		if r.Rate <= 0 {
			t.Errorf("snr=%g: zero rate", snr)
		}
		if r.Rate > capacity.AWGNdB(snr) {
			t.Errorf("snr=%g: rate %.3f above capacity %.3f", snr, r.Rate, capacity.AWGNdB(snr))
		}
	}
}

func TestRateIncreasesWithSNR(t *testing.T) {
	rate := func(snr float64) float64 {
		return MeasureSpinal(SpinalConfig{
			Params: quickParams(), NBits: 96, SNRdB: snr, Trials: 5, Seed: 3,
		}).Rate
	}
	lo, hi := rate(5), rate(25)
	if hi <= lo {
		t.Fatalf("rate did not increase with SNR: %.3f at 5 dB vs %.3f at 25 dB", lo, hi)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := SpinalConfig{Params: quickParams(), NBits: 64, SNRdB: 12, Trials: 4, Seed: 9}
	a := MeasureSpinal(cfg)
	b := MeasureSpinal(cfg)
	if a.Rate != b.Rate || a.Failures != b.Failures {
		t.Fatal("same seed produced different results")
	}
	cfg.Seed = 10
	c := MeasureSpinal(cfg)
	if a.Rate == c.Rate && len(a.SymbolCounts) == len(c.SymbolCounts) {
		sameAll := true
		for i := range a.SymbolCounts {
			if a.SymbolCounts[i] != c.SymbolCounts[i] {
				sameAll = false
			}
		}
		if sameAll {
			t.Fatal("different seeds produced identical outcomes")
		}
	}
}

func TestFixedRateNeverBeatsRateless(t *testing.T) {
	// The hedging effect of Fig 8-2: the rateless code's rate is at least
	// the best fixed-rate throughput (within noise; use a margin).
	p := quickParams()
	snr := 10.0
	rateless := MeasureSpinal(SpinalConfig{Params: p, NBits: 128, SNRdB: snr, Trials: 8, Seed: 4})
	bestFixed := 0.0
	for _, sub := range []int{8, 16, 24, 32, 48} {
		r := MeasureSpinalFixedRate(SpinalConfig{Params: p, NBits: 128, SNRdB: snr, Trials: 8, Seed: 4}, sub)
		if r.Rate > bestFixed {
			bestFixed = r.Rate
		}
	}
	if bestFixed > rateless.Rate*1.15 {
		t.Fatalf("fixed-rate %.3f substantially beats rateless %.3f", bestFixed, rateless.Rate)
	}
}

func TestFadingMeasurement(t *testing.T) {
	p := quickParams()
	cfg := SpinalConfig{
		Params: p, NBits: 96, SNRdB: 20, Trials: 5, Seed: 5,
		Fading: &Fading{Tau: 10, ProvideH: true},
	}
	r := MeasureSpinal(cfg)
	if r.Rate <= 0 {
		t.Fatal("no rate on fading channel with known h")
	}
	if r.Rate > capacity.AWGNdB(20) {
		t.Fatalf("fading rate %.3f above AWGN capacity", r.Rate)
	}
}

func TestBSCMeasurement(t *testing.T) {
	p := core.Params{K: 4, B: 32, D: 1, C: 1, Tail: 2, Ways: 8}
	rate, failures := MeasureSpinalBSC(p, 96, 0.05, 4, 6)
	if failures > 1 {
		t.Fatalf("%d/4 failures on BSC(0.05)", failures)
	}
	if rate <= 0 || rate > capacity.BSC(0.05) {
		t.Fatalf("BSC rate %.3f outside (0, %.3f]", rate, capacity.BSC(0.05))
	}
}

func TestAggregateEmpty(t *testing.T) {
	r := Aggregate(10, nil)
	if r.Rate != 0 || r.Messages != 0 {
		t.Fatal("empty aggregate should be zero")
	}
	if !math.IsInf(r.GapDB(), -1) {
		t.Fatal("zero-rate gap should be -Inf")
	}
}

func TestAttemptEveryThrottling(t *testing.T) {
	// Throttled attempts must still decode, just possibly with more
	// symbols.
	p := quickParams()
	base := SpinalConfig{Params: p, NBits: 96, SNRdB: 15, Trials: 4, Seed: 7}
	throttled := base
	throttled.AttemptEvery = 8
	a := MeasureSpinal(base)
	b := MeasureSpinal(throttled)
	if b.Failures > a.Failures {
		t.Fatalf("throttling increased failures: %d vs %d", b.Failures, a.Failures)
	}
	if b.Rate > a.Rate*1.05 {
		t.Fatalf("coarser attempts should not raise rate: %.3f vs %.3f", b.Rate, a.Rate)
	}
}

func TestPhaseOnlyFading(t *testing.T) {
	// Phase-tracked amplitude-blind decoding (Fig 8-5 model) must achieve
	// a positive rate well below the full-info rate.
	p := quickParams()
	full := MeasureSpinal(SpinalConfig{
		Params: p, NBits: 96, SNRdB: 20, Trials: 4, Seed: 31,
		Fading: &Fading{Tau: 10, ProvideH: true},
	})
	phase := MeasureSpinal(SpinalConfig{
		Params: p, NBits: 96, SNRdB: 20, Trials: 4, Seed: 31,
		Fading: &Fading{Tau: 10, PhaseOnly: true}, MaxPasses: 10,
	})
	if phase.Rate <= 0 {
		t.Fatal("phase-only decoding achieved no rate at 20 dB")
	}
	if phase.Rate > full.Rate {
		t.Fatalf("phase-only (%.2f) beat full fading info (%.2f)", phase.Rate, full.Rate)
	}
}

func TestPerSymbolAttemptsBeatSubpassAtHighSNR(t *testing.T) {
	p := quickParams()
	base := SpinalConfig{Params: p, NBits: 256, SNRdB: 25, Trials: 4, Seed: 33}
	perSym := base
	perSym.AttemptEvery = -1
	perSub := base
	perSub.AttemptEvery = 1
	a := MeasureSpinal(perSym)
	b := MeasureSpinal(perSub)
	if a.Rate < b.Rate {
		t.Fatalf("per-symbol attempts (%.2f) below per-subpass (%.2f) at 25 dB", a.Rate, b.Rate)
	}
}
