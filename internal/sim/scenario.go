// Scenario driver: named time-varying channel workloads through the
// multi-flow link engine, with goodput and outage accounting. This is
// where the paper's rateless claim meets the conditions it was made for —
// channels whose SNR moves while a message is in flight.
package sim

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"spinal/channel"
	"spinal/code"
	"spinal/internal/core"
	"spinal/link"
)

// FlowChannel adapts a stateful channel.Model — plus optional whole-share
// erasure — to the link tier's channel interface. It is an alias of the
// public link.ModelChannel: the scenario driver consumes the public API
// it helps pin, and no second adapter exists to drift.
type FlowChannel = link.ModelChannel

// NewFlowChannel wraps model; erasure is the probability a flow's whole
// share of a frame is lost, drawn from seed.
func NewFlowChannel(model channel.Model, erasure float64, seed int64) *FlowChannel {
	return link.NewModelChannel(model, erasure, seed)
}

// ScenarioConfig drives MeasureScenario.
type ScenarioConfig struct {
	Params core.Params
	// Code selects the channel code every flow runs, by spec: "spinal"
	// (or empty — the code of Params), "raptor", "strider", "turbo",
	// "ldpc" or "ldpc:RATE". Every scenario runs unchanged over any code
	// — this is the bake-off's steering wheel.
	Code string
	// Scenario names the channel workload: "burst" (Gilbert–Elliott
	// good/bad Markov states), "walk" (bounded SNR random walk),
	// "trace:<file>" (replayed SNR-vs-time series), "churn" (mixed
	// channel models with flow arrivals replacing departures),
	// "feedback-delay" (mixed-SNR AWGN with acks delayed 8 engine
	// rounds), "feedback-loss" (acks delayed 2 rounds and 30% lost —
	// the sender's retransmission timers carry the transfer), "chaos"
	// (the churn mix under adversarial forward-path faults: reorder,
	// duplication, truncation, corruption, blackout bursts), or
	// "chaos-feedback" (chaos plus a delayed lossy reverse channel whose
	// acks suffer the same fault kinds).
	Scenario string
	// Policy names the per-flow rate policy: "fixed" or "fixed:<n>",
	// "capacity" or "capacity:<estDB>", "tracking" or "tracking:<estDB>".
	// Empty means "tracking". Estimates default to the scenario's nominal
	// (long-run) SNR — deliberately stale on time-varying channels.
	Policy string
	// Flows is the total number of datagrams (0 ⇒ 16).
	Flows int
	// Concurrency caps flows in flight (0 ⇒ min(Flows, 8)).
	Concurrency int
	// MinBytes/MaxBytes bound datagram sizes (defaults 64/160).
	MinBytes, MaxBytes int
	// Erasure is the probability a flow's share of a frame is lost.
	Erasure float64
	// MaxRounds is the per-flow give-up budget in scheduling rounds
	// (0 ⇒ 64) — the outage deadline.
	MaxRounds int
	// MaxBlockBits, FrameSymbols and Shards pass through to the engine.
	MaxBlockBits int
	FrameSymbols int
	Shards       int
	Seed         int64
	// Feedback overrides the scenario's ARQ feedback impairment: nil
	// means the scenario default — instant perfect acks for the channel
	// scenarios, the named impairment for the feedback-* scenarios. The
	// experiments' delay sweeps and the chase-vs-discard comparison set
	// it explicitly.
	Feedback *link.FeedbackConfig
	// Faults overrides the scenario's adversarial fault injection: nil
	// means the scenario default — none for the polite scenarios, the
	// full fault mix for the chaos scenarios. The degradation sweeps set
	// it explicitly (typically via FaultConfig.Scale).
	Faults *link.FaultConfig
	// HalfDuplex charges reverse-channel (ack) airtime against goodput
	// (link.WithHalfDuplex at the default reverse modulation density):
	// the charged symbols are reported in ScenarioResult.AckSymbols and
	// included in Goodput's denominator.
	HalfDuplex bool
	// Scheduler selects the engine's admission scheduler: "" or "rr" is
	// the default round-robin, "dwfq" is deficit-weighted fair queuing
	// (link.WithScheduler). The mice-elephants scenario compares the two.
	Scheduler string
	// SchedulerQuantum is the DWFQ per-weight-unit symbol credit per
	// round (0 ⇒ the engine default). The fairness scenarios set it to
	// the processor-sharing fair share, FrameSymbols/Flows.
	SchedulerQuantum int
}

// ScenarioResult aggregates a scenario run. It is flat and map-free so
// encoding/json renders it byte-for-byte reproducibly (the golden tests
// depend on that).
type ScenarioResult struct {
	Scenario string `json:"scenario"`
	Policy   string `json:"policy"`
	// Code names the channel code the run used; omitted from the JSON
	// when empty (spinal) so the pre-bake-off golden outcomes stay
	// byte-identical.
	Code      string `json:"code,omitempty"`
	Flows     int    `json:"flows"`
	Delivered int    `json:"delivered"`
	// Outages counts flows that exhausted their round budget (or were
	// delivered corrupt — never observed, but counted against goodput).
	Outages int   `json:"outages"`
	Bytes   int64 `json:"bytes"`   // payload bytes delivered
	Symbols int64 `json:"symbols"` // channel symbols spent, failed flows included
	Rounds  int   `json:"rounds"`  // engine scheduling rounds consumed
	// Goodput is delivered payload bits per channel symbol spent — the
	// airtime-honest rate (outage symbols count, outage bits do not).
	Goodput float64 `json:"goodput_bits_per_symbol"`
	// OutageRate is Outages / Flows.
	OutageRate float64 `json:"outage_rate"`
	// MeanStateDB is the round-averaged mean of the active flows' channel
	// states — the SNR trajectory the scenario actually exercised,
	// observed through channel.Model's StateDB.
	MeanStateDB float64 `json:"mean_state_db"`
	// Retransmissions counts timeout-triggered retransmissions across all
	// flows; AcksSent/AcksLost count reverse-channel traffic. All three
	// are zero under instant perfect feedback.
	Retransmissions int64 `json:"retransmissions"`
	AcksSent        int64 `json:"acks_sent"`
	AcksLost        int64 `json:"acks_lost"`
	// AckSymbols counts the reverse-channel airtime charged under
	// half-duplex accounting (ScenarioConfig.HalfDuplex); it is part of
	// Goodput's denominator, and omitted from the JSON when zero so the
	// pre-half-duplex golden outcomes stay byte-identical.
	AckSymbols int64 `json:"ack_symbols,omitempty"`
	// FramesFaulted and AcksFaulted total the injector's forward- and
	// reverse-path fault events across all flows (reorders, duplicates,
	// truncations, corruptions, blackout swallows); BatchesRejected counts
	// batches the receivers dropped with a typed error, and
	// SymbolsDeduped the replayed symbol observations their dedup
	// absorbed. All are omitted from the JSON when zero so the fault-free
	// golden outcomes stay byte-identical.
	FramesFaulted   int64 `json:"frames_faulted,omitempty"`
	AcksFaulted     int64 `json:"acks_faulted,omitempty"`
	BatchesRejected int64 `json:"batches_rejected,omitempty"`
	SymbolsDeduped  int64 `json:"symbols_deduped,omitempty"`
	// Scheduler names the admission scheduler when it is not the default
	// round-robin; JainIndex and the MiceP*Rounds percentiles are the
	// mice-elephants scenario's fairness metrics — Jain's index over
	// per-flow throughput (delivered bits per sojourn round) and the mice
	// flows' completion-latency percentiles. All omitted from the JSON
	// when unset so the pre-scheduler golden outcomes stay byte-identical.
	Scheduler     string  `json:"scheduler,omitempty"`
	JainIndex     float64 `json:"jain_index,omitempty"`
	MiceP50Rounds int     `json:"mice_p50_rounds,omitempty"`
	MiceP95Rounds int     `json:"mice_p95_rounds,omitempty"`
	MiceP99Rounds int     `json:"mice_p99_rounds,omitempty"`
	// SegmentRetries, LossEvents, SRTTRounds and CwndMax are the
	// fetch-cubic scenario's transport metrics: segment attempts beyond
	// the first, deduplicated congestion events, the final smoothed RTT
	// estimate in rounds, and the peak congestion window in segments.
	SegmentRetries int     `json:"segment_retries,omitempty"`
	LossEvents     int     `json:"loss_events,omitempty"`
	SRTTRounds     float64 `json:"srtt_rounds,omitempty"`
	CwndMax        float64 `json:"cwnd_max,omitempty"`
}

func (r ScenarioResult) String() string {
	s := fmt.Sprintf("%s/%s: %d/%d delivered, %.3f b/sym goodput, %.0f%% outage, %d rounds, %d symbols, mean state %.1f dB",
		r.Scenario, r.Policy, r.Delivered, r.Flows, r.Goodput, 100*r.OutageRate, r.Rounds, r.Symbols, r.MeanStateDB)
	if r.AcksSent > 0 {
		s += fmt.Sprintf(", %d retx, %d/%d acks lost", r.Retransmissions, r.AcksLost, r.AcksSent)
	}
	if r.AckSymbols > 0 {
		s += fmt.Sprintf(", %d ack symbols charged", r.AckSymbols)
	}
	if r.FramesFaulted > 0 || r.AcksFaulted > 0 {
		s += fmt.Sprintf(", %d frame / %d ack faults, %d batches rejected, %d symbols deduped",
			r.FramesFaulted, r.AcksFaulted, r.BatchesRejected, r.SymbolsDeduped)
	}
	if r.JainIndex > 0 {
		sched := r.Scheduler
		if sched == "" {
			sched = "rr"
		}
		s += fmt.Sprintf(", %s jain %.3f, mice p50/p95/p99 %d/%d/%d rounds",
			sched, r.JainIndex, r.MiceP50Rounds, r.MiceP95Rounds, r.MiceP99Rounds)
	}
	if r.SRTTRounds > 0 {
		s += fmt.Sprintf(", %d segment retries, %d losses, srtt %.1f rounds, peak window %.1f",
			r.SegmentRetries, r.LossEvents, r.SRTTRounds, r.CwndMax)
	}
	return s
}

// Scenarios lists the named scenarios (trace scenarios additionally take
// a file argument).
func Scenarios() []string {
	return []string{"burst", "walk", "trace:<file>", "churn",
		"feedback-delay", "feedback-loss", "chaos", "chaos-feedback",
		"mice-elephants", "fetch-cubic"}
}

// ChaosFaults is the adversarial fault mix of the chaos scenarios:
// every forward-path fault kind on at once, at rates high enough that a
// run of a few dozen rounds sees them all, low enough that transfers
// still complete. ackFaults adds the reverse-path counterparts
// (chaos-feedback). Exported so the degradation experiment and
// cmd/spinalcat sweep the same mix the golden matrix pins.
func ChaosFaults(ackFaults bool) link.FaultConfig {
	fc := link.FaultConfig{
		FrameReorder:   0.15,
		FrameDup:       0.10,
		FrameTruncate:  0.05,
		FrameCorrupt:   0.05,
		Blackout:       0.02,
		ReorderDepth:   4,
		BlackoutRounds: 4,
	}
	if ackFaults {
		fc.AckReorder = 0.15
		fc.AckDup = 0.10
		fc.AckTruncate = 0.05
		fc.AckCorrupt = 0.05
	}
	return fc
}

// scenarioChannels builds the per-flow channel factory for the named
// scenario plus the scenario's default feedback impairment (nil for the
// channel scenarios — instant perfect acks) and default fault injection
// (nil for all but the chaos scenarios); the returned function yields
// flow i's model and the nominal SNR estimate a sender would start from.
// Trace files are read once here, not once per flow.
func scenarioChannels(name string, seed int64) (func(i int) (channel.Model, float64), *link.FeedbackConfig, *link.FaultConfig, error) {
	flowSeed := func(i int) int64 { return seed + int64(i)*7919 }
	burst := func(i int) (channel.Model, float64) {
		// ≈250-symbol bad bursts, 20% stationary bad fraction: deep enough
		// to straddle whole blocks, rare enough that the good state sets
		// the long-run estimate.
		return channel.NewGilbertElliott(18, 2, 0.001, 0.004, flowSeed(i)), 18
	}
	walk := func(i int) (channel.Model, float64) {
		return channel.NewWalk(15, 3, 25, 1, 192, flowSeed(i)), 15
	}
	// The feedback scenarios hold the forward channel steady — per-flow
	// AWGN at mixed SNRs, low enough that blocks routinely need more than
	// one pass — so every goodput difference is attributable to the
	// reverse path: ack delay, ack loss, and the ARQ machinery they
	// exercise (timers, backoff, chase combining).
	feedbackMix := func(i int) (channel.Model, float64) {
		snr := []float64{7, 10, 14}[i%3]
		return channel.NewAWGN(snr, flowSeed(i)), snr
	}
	// The chaos scenarios ride the churn mix: time-varying media plus
	// arrivals replacing departures is the population the fault injector
	// should be stressing, not a single quiet AWGN flow.
	churn := func(i int) (channel.Model, float64) {
		switch i % 3 {
		case 0:
			return burst(i)
		case 1:
			return walk(i)
		default:
			snr := []float64{8, 12, 18, 25}[(i/3)%4]
			return channel.NewAWGN(snr, flowSeed(i)), snr
		}
	}
	switch {
	case name == "burst":
		return burst, nil, nil, nil
	case name == "walk":
		return walk, nil, nil, nil
	case strings.HasPrefix(name, "trace:"):
		segs, err := channel.LoadTrace(strings.TrimPrefix(name, "trace:"))
		if err != nil {
			return nil, nil, nil, err
		}
		return func(i int) (channel.Model, float64) {
			tr := channel.NewTrace(segs, flowSeed(i))
			return tr, tr.MeanDB()
		}, nil, nil, nil
	case name == "churn":
		// Mixed media across the flow population.
		return churn, nil, nil, nil
	case name == "feedback-delay":
		return feedbackMix, &link.FeedbackConfig{DelayRounds: 8}, nil, nil
	case name == "feedback-loss":
		return feedbackMix, &link.FeedbackConfig{DelayRounds: 2, Loss: 0.3}, nil, nil
	case name == "chaos":
		fc := ChaosFaults(false)
		return churn, nil, &fc, nil
	case name == "chaos-feedback":
		fc := ChaosFaults(true)
		return churn, &link.FeedbackConfig{DelayRounds: 2, Loss: 0.1}, &fc, nil
	case name == "mice-elephants":
		// Fairness scenario: a homogeneous steady 12 dB medium, so every
		// completion-latency difference between the bimodal flow sizes is
		// attributable to scheduling, not channel luck.
		return func(i int) (channel.Model, float64) {
			return channel.NewAWGN(12, flowSeed(i)), 12
		}, nil, nil, nil
	}
	return nil, nil, nil, fmt.Errorf("sim: unknown scenario %q (want burst, walk, trace:<file>, churn, feedback-delay, feedback-loss, chaos, chaos-feedback, mice-elephants or fetch-cubic)", name)
}

// NewPolicy builds a fresh RatePolicy from its spec (see
// ScenarioConfig.Policy); hintDB seeds estimate-based policies when the
// spec does not carry its own. Tracking policies are stateful, so every
// flow gets its own value.
func NewPolicy(spec string, hintDB float64) (link.RatePolicy, error) {
	if spec == "" {
		spec = "tracking"
	}
	name, arg, hasArg := strings.Cut(spec, ":")
	argF := func() (float64, error) {
		if !hasArg {
			return hintDB, nil
		}
		return strconv.ParseFloat(arg, 64)
	}
	switch name {
	case "fixed":
		n := 1
		if hasArg {
			v, err := strconv.Atoi(arg)
			if err != nil || v < 1 {
				return nil, fmt.Errorf("sim: bad fixed-rate subpass count %q", arg)
			}
			n = v
		}
		return link.FixedRate(n), nil
	case "capacity":
		est, err := argF()
		if err != nil {
			return nil, fmt.Errorf("sim: bad capacity estimate %q", arg)
		}
		return link.CapacityRate{SNREstimateDB: est}, nil
	case "tracking":
		est, err := argF()
		if err != nil {
			return nil, fmt.Errorf("sim: bad tracking estimate %q", arg)
		}
		return link.NewTrackingRate(est), nil
	}
	return nil, fmt.Errorf("sim: unknown rate policy %q (want fixed[:n], capacity[:db] or tracking[:db])", spec)
}

// MeasureScenario runs the named time-varying channel workload through a
// link.Engine and aggregates goodput and outage statistics. Runs are
// deterministic given Seed.
func MeasureScenario(cfg ScenarioConfig) (ScenarioResult, error) {
	if cfg.Scenario == "fetch-cubic" {
		// The fetch scenario is driven by the transport tier's fetcher, not
		// the flow-population loop below.
		return measureFetchScenario(cfg)
	}
	flows := cfg.Flows
	if flows <= 0 {
		flows = 16
	}
	conc := cfg.Concurrency
	if conc <= 0 {
		conc = 8
	}
	if conc > flows {
		conc = flows
	}
	minB, maxB := cfg.MinBytes, cfg.MaxBytes
	if minB <= 0 {
		minB = 64
	}
	if maxB <= 0 {
		maxB = 160
	}
	if cfg.MinBytes <= 0 && maxB < minB {
		minB = maxB // an explicit small MaxBytes wins over the default floor
	}
	if maxB < minB {
		// Explicitly contradictory bounds pin the size at the minimum
		// rather than silently reverting to the default span.
		maxB = minB
	}
	maxRounds := cfg.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 64
	}
	policy := cfg.Policy
	if policy == "" {
		policy = "tracking"
	}

	res := ScenarioResult{Scenario: cfg.Scenario, Policy: policy, Code: cfg.Code,
		Scheduler: cfg.Scheduler, Flows: flows}

	newModel, feedback, faults, err := scenarioChannels(cfg.Scenario, cfg.Seed)
	if err != nil {
		return res, err
	}
	if cfg.Feedback != nil {
		feedback = cfg.Feedback
	}
	if cfg.Faults != nil {
		faults = cfg.Faults
	}

	opts := []link.Option{
		link.WithMaxBlockBits(cfg.MaxBlockBits),
		link.WithCodecPool(cfg.Shards),
		link.WithFrameSymbols(cfg.FrameSymbols),
		link.WithSeed(cfg.Seed),
		link.WithMaxRounds(maxRounds),
		// Every scenario run doubles as an invariant soak: conservation
		// violations panic here instead of skewing a golden number.
		link.WithInvariantChecks(),
	}
	if feedback != nil {
		opts = append(opts, link.WithFeedback(*feedback))
	}
	if faults != nil {
		opts = append(opts, link.WithFaults(*faults))
	}
	if cfg.HalfDuplex {
		opts = append(opts, link.WithHalfDuplex(0))
	}
	switch cfg.Scheduler {
	case "", "rr":
	case "dwfq":
		opts = append(opts, link.WithScheduler(link.SchedulerConfig{Quantum: cfg.SchedulerQuantum}))
	default:
		return res, fmt.Errorf("sim: unknown scheduler %q (want rr or dwfq)", cfg.Scheduler)
	}
	if cfg.Code != "" {
		c, err := code.Parse(cfg.Code, cfg.Params)
		if err != nil {
			return res, err
		}
		opts = append(opts, link.WithCode(c))
	}
	s, err := link.NewSession(cfg.Params, opts...)
	if err != nil {
		return res, err
	}
	defer s.Close()
	ctx := context.Background()

	rng := rand.New(rand.NewSource(cfg.Seed))
	want := make(map[link.FlowID][]byte, conc)
	// Fairness bookkeeping for the mice-elephants scenario: admission
	// round and size class per flow, so sojourn times and per-flow
	// throughput can be attributed after resolution.
	miceElephants := cfg.Scenario == "mice-elephants"
	type flowMeta struct {
		admitRound int
		elephant   bool
	}
	meta := make(map[link.FlowID]flowMeta, conc)
	var flowThroughput []float64
	var miceSojourns []int
	// Active channels live in an ID-ordered slice, not a map: the
	// per-round StateDB sum must visit flows in a fixed order or float
	// rounding would leak map iteration order into the golden results.
	type activeFlow struct {
		id link.FlowID
		fc *FlowChannel
	}
	var active []activeFlow
	admitted := 0
	admit := func() error {
		model, hintDB := newModel(admitted)
		rate, err := NewPolicy(policy, hintDB)
		if err != nil {
			return err
		}
		var n int
		elephant := false
		if miceElephants {
			// Deterministic bimodal mix, sized by index: every 8th flow is a
			// 1 KiB elephant, the rest are sub-128 B mice — the same
			// population under every scheduler, so the fairness percentiles
			// compare scheduling and nothing else.
			if admitted%8 == 0 {
				n, elephant = 1024, true
			} else {
				n = 64 + 16*(admitted%4)
			}
		} else {
			n = minB
			if maxB > minB {
				n += rng.Intn(maxB - minB + 1)
			}
		}
		data := make([]byte, n)
		rng.Read(data)
		fc := NewFlowChannel(model, cfg.Erasure, cfg.Seed^int64(admitted))
		id, err := s.Send(data, link.WithRawChannel(fc), link.WithRatePolicy(rate))
		if err != nil {
			return err
		}
		want[id] = data
		meta[id] = flowMeta{admitRound: res.Rounds, elephant: elephant}
		active = append(active, activeFlow{id, fc})
		admitted++
		return nil
	}

	for admitted < flows && s.Active() < conc {
		if err := admit(); err != nil {
			return res, err
		}
	}
	var stateSum float64
	var stateN int
	for s.Active() > 0 {
		finished, err := s.Step(ctx)
		if err != nil {
			return res, err
		}
		res.Rounds++
		// Observe the SNR trajectory the active population is riding.
		for _, af := range active {
			stateSum += af.fc.StateDB()
			stateN++
		}
		for _, r := range finished {
			res.Symbols += int64(r.Stats.SymbolsSent)
			res.Retransmissions += int64(r.Stats.Retransmissions)
			res.AcksSent += int64(r.Stats.AcksSent)
			res.AcksLost += int64(r.Stats.AcksLost)
			res.AckSymbols += int64(r.Stats.AckSymbols)
			fs := r.Stats.Faults
			res.FramesFaulted += int64(fs.FramesReordered + fs.FramesDuplicated +
				fs.FramesTruncated + fs.FramesCorrupted + fs.FramesBlackedOut)
			res.AcksFaulted += int64(fs.AcksReordered + fs.AcksDuplicated +
				fs.AcksTruncated + fs.AcksCorrupted)
			res.BatchesRejected += int64(r.Stats.BatchesRejected)
			res.SymbolsDeduped += int64(r.Stats.SymbolsDeduped)
			// Each resolved flow counts exactly once, as an outage or a
			// delivery: a budget-exhausted flow (ErrFlowBudget) carries a
			// nil datagram, so folding the error and corruption checks
			// into one increment keeps it from being double-counted in
			// the outage fraction (TestScenarioChurnOutageAccounting pins
			// Delivered + Outages == Flows).
			switch {
			case r.Err != nil, !bytes.Equal(r.Datagram, want[r.ID]):
				res.Outages++
			default:
				res.Delivered++
				res.Bytes += int64(len(r.Datagram))
				if miceElephants {
					m := meta[r.ID]
					sojourn := res.Rounds - m.admitRound
					if sojourn < 1 {
						sojourn = 1
					}
					flowThroughput = append(flowThroughput,
						float64(8*len(r.Datagram))/float64(sojourn))
					if !m.elephant {
						miceSojourns = append(miceSojourns, sojourn)
					}
				}
			}
			delete(want, r.ID)
			delete(meta, r.ID)
			for i := range active {
				if active[i].id == r.ID {
					active = append(active[:i], active[i+1:]...)
					break
				}
			}
			if admitted < flows {
				if err := admit(); err != nil {
					return res, err
				}
			}
		}
	}
	if air := res.Symbols + res.AckSymbols; air > 0 {
		// Airtime-honest goodput: under half-duplex accounting the acks'
		// symbols count against it too.
		res.Goodput = float64(res.Bytes*8) / float64(air)
	}
	res.OutageRate = float64(res.Outages) / float64(flows)
	if stateN > 0 {
		res.MeanStateDB = stateSum / float64(stateN)
	}
	if miceElephants {
		res.JainIndex = jainIndex(flowThroughput)
		res.MiceP50Rounds = percentileInt(miceSojourns, 50)
		res.MiceP95Rounds = percentileInt(miceSojourns, 95)
		res.MiceP99Rounds = percentileInt(miceSojourns, 99)
	}
	return res, nil
}

// jainIndex is Jain's fairness index (Σx)²/(n·Σx²) over per-flow
// throughput: 1.0 is perfect fairness, 1/n is one flow taking everything.
func jainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// percentileInt is the nearest-rank percentile of xs (sorted copy; 0 for
// an empty slice).
func percentileInt(xs []int, p int) int {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]int(nil), xs...)
	sort.Ints(sorted)
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
