package sim

import (
	"testing"

	"spinal/internal/core"
)

// TestQuantKernelGoldenSoak runs the full golden scenario matrix twice —
// once forced onto the float64 reference path, once onto the fixed-point
// kernel — and requires every outcome to be identical field for field.
// Combined with TestScenarioGolden (which pins the KernelAuto matrix to
// the checked-in goldens, themselves generated before the quantized
// kernel existed), this proves the kernel promotion changed no simulated
// outcome anywhere in the scenario space: same deliveries, same symbol
// counts, same retransmission and fault tallies, same goodput, byte for
// byte. MeasureScenario keeps link-engine invariant checks on, so the
// soak also asserts the conservation laws under both kernels.
func TestQuantKernelGoldenSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("full golden matrix ×2; skipped in -short")
	}
	for _, cfg := range goldenConfigs() {
		cfgF := cfg
		cfgF.Params.Kernel = core.KernelFloat
		cfgQ := cfg
		cfgQ.Params.Kernel = core.KernelQuantized

		rf, err := MeasureScenario(cfgF)
		if err != nil {
			t.Fatalf("%s/%s/%s float: %v", cfg.Scenario, cfg.Policy, cfg.Code, err)
		}
		rq, err := MeasureScenario(cfgQ)
		if err != nil {
			t.Fatalf("%s/%s/%s quantized: %v", cfg.Scenario, cfg.Policy, cfg.Code, err)
		}
		if rf != rq {
			t.Errorf("%s/%s/%s: kernels diverge\nfloat:     %+v\nquantized: %+v",
				cfg.Scenario, cfg.Policy, cfg.Code, rf, rq)
		}
	}
}
