package sim

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update regenerates the golden scenario outcomes:
//
//	go test ./internal/sim -run TestScenarioGolden -update
var update = flag.Bool("update", false, "rewrite golden scenario outcome files")

const goldenPath = "testdata/scenarios.golden.json"

// goldenConfigs pins the deterministic scenario matrix: two checked-in
// SNR traces, the bursty Markov channel, and the two ARQ feedback
// impairments (delayed acks, lossy acks — retransmission and ack-loss
// counts are part of the pinned outcome), across the three rate-policy
// families. Every outcome — messages delivered, symbols spent, rounds,
// goodput — must reproduce byte for byte.
func goldenConfigs() []ScenarioConfig {
	var cfgs []ScenarioConfig
	for _, sc := range []string{
		"trace:../channel/testdata/stepdown.trace",
		"trace:../channel/testdata/fade.trace",
		"burst",
		"feedback-delay",
		"feedback-loss",
	} {
		for _, pol := range []string{"fixed", "capacity", "tracking"} {
			cfg := ScenarioConfig{
				Params:       multiFlowParams(),
				Scenario:     sc,
				Policy:       pol,
				Flows:        5,
				Concurrency:  3,
				MinBytes:     40,
				MaxBytes:     90,
				MaxRounds:    48,
				MaxBlockBits: 192,
				Shards:       2,
				Seed:         20260730,
			}
			if strings.HasPrefix(sc, "feedback-") {
				// ARQ epochs are an RTT long; give the deadline headroom
				// so the goldens pin steady behaviour, not outage noise.
				cfg.MaxRounds = 96
			}
			cfgs = append(cfgs, cfg)
		}
	}
	// Half-duplex accounting rides the same feedback scenario once: the
	// pinned outcome adds ack_symbols and a goodput whose denominator
	// includes them — the forward trajectory is identical to the
	// feedback-delay/tracking row above (accounting is observational).
	hd := cfgs[len(cfgs)-4] // feedback-delay / tracking
	if hd.Scenario != "feedback-delay" || hd.Policy != "tracking" {
		panic("golden matrix order changed; re-anchor the half-duplex config")
	}
	hd.HalfDuplex = true
	cfgs = append(cfgs, hd)
	// The chaos scenarios pin the adversarial fault mix — including the
	// injector's fault counters and the receivers' rejection/dedup
	// tallies, so a drift in fault scheduling or hardening behaviour is
	// as loud as a goodput drift. One policy each keeps the runtime sane;
	// the soak test covers the parameter space.
	for _, sc := range []string{"chaos", "chaos-feedback"} {
		cfgs = append(cfgs, ScenarioConfig{
			Params:       multiFlowParams(),
			Scenario:     sc,
			Policy:       "tracking",
			Flows:        5,
			Concurrency:  3,
			MinBytes:     40,
			MaxBytes:     90,
			MaxRounds:    96,
			MaxBlockBits: 192,
			Shards:       2,
			Seed:         20260730,
		})
	}
	// The bake-off rows: the same bursty channel, once per channel code
	// behind the Code interface (spinal routed through the interface too —
	// its row must reproduce the native burst numbers), plus one
	// feedback-impaired row per rate-adapting baseline so the ARQ
	// machinery is pinned over a generic code as well. Appended after
	// every pre-existing config so the legacy golden entries stay
	// byte-identical.
	for _, code := range []string{"spinal", "raptor", "strider", "turbo", "ldpc"} {
		cfgs = append(cfgs, ScenarioConfig{
			Params:       multiFlowParams(),
			Code:         code,
			Scenario:     "burst",
			Policy:       "capacity",
			Flows:        5,
			Concurrency:  3,
			MinBytes:     40,
			MaxBytes:     90,
			MaxRounds:    96,
			MaxBlockBits: 192,
			Shards:       2,
			Seed:         20260730,
		})
	}
	for _, code := range []string{"raptor", "ldpc:1/2"} {
		cfgs = append(cfgs, ScenarioConfig{
			Params:       multiFlowParams(),
			Code:         code,
			Scenario:     "feedback-delay",
			Policy:       "tracking",
			Flows:        5,
			Concurrency:  3,
			MinBytes:     40,
			MaxBytes:     90,
			MaxRounds:    96,
			MaxBlockBits: 192,
			Shards:       2,
			Seed:         20260730,
		})
	}
	// The scheduler rows: the same 32-flow bimodal mice-elephants mix
	// under round-robin and under DWFQ at the processor-sharing quantum
	// (FrameSymbols/Flows), pinning Jain's index and the mice latency
	// percentiles for both — the fairness gap itself is a golden outcome.
	// Appended after every pre-existing config so the legacy golden
	// entries stay byte-identical.
	for _, sched := range []string{"rr", "dwfq"} {
		cfgs = append(cfgs, ScenarioConfig{
			Params:           multiFlowParams(),
			Scenario:         "mice-elephants",
			Policy:           "capacity:12",
			Flows:            32,
			Concurrency:      32,
			MaxRounds:        1 << 12,
			MaxBlockBits:     192,
			FrameSymbols:     2048,
			Shards:           2,
			Seed:             20260807,
			Scheduler:        sched,
			SchedulerQuantum: 64, // 2048 frame symbols / 32 flows
		})
	}
	// The transport row: one CUBIC-windowed fetch through 4-round-delayed
	// 20%-lossy feedback, pinning segment retries, loss events, the final
	// SRTT estimate and the peak window alongside the airtime totals.
	cfgs = append(cfgs, ScenarioConfig{
		Params:       multiFlowParams(),
		Scenario:     "fetch-cubic",
		MaxBytes:     16 << 10,
		MaxBlockBits: 192,
		FrameSymbols: 1024,
		Shards:       2,
		Seed:         20260807,
	})
	return cfgs
}

// TestScenarioCodeSpinalEquivalence pins the zero-cost-unwrap contract:
// a run routed through the Code interface with the spinal spec must
// reproduce the native run's outcome exactly (only the Code label may
// differ).
func TestScenarioCodeSpinalEquivalence(t *testing.T) {
	cfg := ScenarioConfig{
		Params:       multiFlowParams(),
		Scenario:     "burst",
		Policy:       "capacity",
		Flows:        3,
		Concurrency:  2,
		MinBytes:     40,
		MaxBytes:     90,
		MaxRounds:    48,
		MaxBlockBits: 192,
		Shards:       2,
		Seed:         20260730,
	}
	native, err := MeasureScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Code = "spinal"
	routed, err := MeasureScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	routed.Code = ""
	if native != routed {
		t.Fatalf("spinal routed through the Code interface drifted from native:\nnative: %+v\nrouted: %+v", native, routed)
	}
}

func TestScenarioGolden(t *testing.T) {
	var results []ScenarioResult
	for _, cfg := range goldenConfigs() {
		res, err := MeasureScenario(cfg)
		if err != nil {
			t.Fatalf("%s/%s: %v", cfg.Scenario, cfg.Policy, err)
		}
		results = append(results, res)
	}
	got, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	if *update {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d scenarios)", goldenPath, len(results))
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("scenario outcomes drifted from %s (run with -update if the change is intended)\n--- got ---\n%s\n--- want ---\n%s",
			goldenPath, got, want)
	}
}
