// The fetch-cubic scenario: one congestion-controlled transport fetch
// instead of a flow population. The scenario driver consumes the public
// spinal/transport API for the same reason it consumes public spinal/link
// — the surface it measures is the surface it pins.
package sim

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"

	"spinal/channel"
	"spinal/code"
	"spinal/link"
	"spinal/transport"
)

// measureFetchScenario runs "fetch-cubic": a payload pipelined by
// transport.Fetch over a steady 10 dB AWGN link whose acks arrive 4
// rounds late and 20% lost — the conditions the CUBIC window, RTT
// estimator and RTO backoff exist for. ScenarioConfig.MaxBytes is the
// payload size (0 ⇒ 16 KiB); segments are a fixed 1 KiB. The policy is
// session-scoped (shared by every segment flow), so the default is the
// stateless "capacity" rather than the stateful "tracking".
func measureFetchScenario(cfg ScenarioConfig) (ScenarioResult, error) {
	const snrDB = 10
	policy := cfg.Policy
	if policy == "" {
		policy = "capacity"
	}
	res := ScenarioResult{Scenario: cfg.Scenario, Policy: policy, Code: cfg.Code}
	size := cfg.MaxBytes
	if size <= 0 {
		size = 16 << 10
	}
	feedback := &link.FeedbackConfig{DelayRounds: 4, Loss: 0.2}
	if cfg.Feedback != nil {
		feedback = cfg.Feedback
	}
	rate, err := NewPolicy(policy, snrDB)
	if err != nil {
		return res, err
	}
	opts := []link.Option{
		link.WithChannel(channel.NewAWGN(snrDB, cfg.Seed)),
		link.WithRatePolicy(rate),
		link.WithMaxBlockBits(cfg.MaxBlockBits),
		link.WithCodecPool(cfg.Shards),
		link.WithFrameSymbols(cfg.FrameSymbols),
		link.WithSeed(cfg.Seed),
		link.WithFeedback(*feedback),
		link.WithInvariantChecks(),
	}
	if cfg.HalfDuplex {
		opts = append(opts, link.WithHalfDuplex(0))
	}
	if cfg.Code != "" {
		c, err := code.Parse(cfg.Code, cfg.Params)
		if err != nil {
			return res, err
		}
		opts = append(opts, link.WithCode(c))
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	payload := make([]byte, size)
	rng.Read(payload)
	tr, err := transport.Fetch(context.Background(), payload, transport.Config{
		Params:       cfg.Params,
		Options:      opts,
		SegmentBytes: 1024,
		InitRTO:      24,
		MinRTO:       8,
		MaxRTO:       96,
		MaxRetries:   64,
	})
	if err != nil {
		return res, err
	}
	if !bytes.Equal(tr.Payload, payload) {
		return res, fmt.Errorf("sim: fetch-cubic payload corrupted in flight")
	}
	res.Flows = tr.Segments
	res.Delivered = tr.Segments
	res.Bytes = int64(len(tr.Payload))
	res.Symbols = int64(tr.SymbolsSent)
	res.AckSymbols = int64(tr.AckSymbols)
	res.Rounds = tr.Steps
	res.Goodput = tr.Goodput
	res.MeanStateDB = snrDB // the AWGN state is the scenario's one constant
	res.SegmentRetries = tr.Retries
	res.LossEvents = tr.Losses
	res.SRTTRounds = tr.SRTT
	res.CwndMax = tr.CwndMax
	return res, nil
}
