// Package sim is the rateless execution engine of §8.1: it streams symbols
// from an encoder through a channel model to a decoder, schedules decode
// attempts, and collects rate and gap-to-capacity statistics. All codes in
// the repository run through this engine under identical conditions, with
// no information shared between transmitter and receiver beyond the code
// parameters.
//
// Trials are deterministic (seeded) and run in parallel across messages.
package sim

import (
	"bytes"
	"math/cmplx"
	"math/rand"
	"runtime"
	"sync"

	"spinal/internal/capacity"
	"spinal/internal/channel"
	"spinal/internal/core"
)

// Outcome records one message's fate: how many channel symbols were spent
// before the decoder produced the correct message, or failure after the
// give-up budget.
type Outcome struct {
	Symbols int  // symbols transmitted (including a failed message's)
	Bits    int  // message bits delivered (0 on failure)
	OK      bool // whether the message decoded before give-up
}

// Result aggregates outcomes at one operating point.
type Result struct {
	SNRdB    float64
	Rate     float64 // Σbits / Σsymbols, the §8.1 rate metric
	Messages int
	Failures int
	// SymbolCounts holds per-message symbol counts for successful decodes
	// (Figure 8-11's CDF).
	SymbolCounts []int
}

// Aggregate folds outcomes into a Result.
func Aggregate(snrDB float64, outs []Outcome) Result {
	r := Result{SNRdB: snrDB, Messages: len(outs)}
	var bits, syms int
	for _, o := range outs {
		bits += o.Bits
		syms += o.Symbols
		if o.OK {
			r.SymbolCounts = append(r.SymbolCounts, o.Symbols)
		} else {
			r.Failures++
		}
	}
	if syms > 0 {
		r.Rate = float64(bits) / float64(syms)
	}
	return r
}

// GapDB reports the result's gap to AWGN capacity in dB (§8.1).
func (r Result) GapDB() float64 { return capacity.GapDB(r.Rate, r.SNRdB) }

// FractionOfCapacity reports rate / C(snr).
func (r Result) FractionOfCapacity() float64 {
	return capacity.FractionOfCapacity(r.Rate, r.SNRdB)
}

// Fading configures Rayleigh block fading for spinal measurements.
type Fading struct {
	// Tau is the coherence time in symbols (§8.3).
	Tau int
	// ProvideH gives the decoder exact fading coefficients (Fig 8-4);
	// false runs the AWGN decoder on the faded signal (Fig 8-5).
	ProvideH bool
	// PhaseOnly (with ProvideH false) models a receiver whose carrier
	// recovery tracks the fading phase (as any pilot-bearing PHY does)
	// but has no amplitude information: the decoder sees h/|h|. This is
	// the practical reading of Fig 8-5's "AWGN decoder", since no
	// coherent scheme survives a uniformly random per-symbol phase.
	PhaseOnly bool
}

// SpinalConfig describes one spinal-code operating point.
type SpinalConfig struct {
	Params core.Params
	NBits  int     // message size in bits
	SNRdB  float64 // channel SNR
	Trials int     // number of messages
	Seed   int64   // base seed; trial t uses Seed+t
	// MaxPasses is the give-up budget in full passes; 0 derives a budget
	// from channel capacity (≈3× the minimum possible passes, plus slack).
	MaxPasses int
	// AttemptEvery controls decode-attempt granularity:
	//   0  — auto: per-symbol attempts at high SNR, per-subpass in the
	//        mid range, every other subpass at low SNR (the paper's
	//        "decode attempts roughly every symbol" behaviour where it
	//        matters, §8.4, without its cost where it doesn't);
	//   -1 — attempt after every received symbol;
	//   n>0 — attempt every n subpasses.
	AttemptEvery int
	// Fading, if non-nil, replaces AWGN with Rayleigh block fading.
	Fading *Fading
}

// maxPasses derives the give-up budget.
func (c SpinalConfig) maxPasses() int {
	if c.MaxPasses > 0 {
		return c.MaxPasses
	}
	cap := capacity.AWGNdB(c.SNRdB)
	if c.Fading != nil {
		cap = capacity.RayleighdB(c.SNRdB)
	}
	if cap < 0.05 {
		cap = 0.05
	}
	need := float64(c.Params.K) / cap
	budget := int(3*need) + 4
	return budget
}

// spinalCodec is one worker's reusable transmit/receive state: an
// encoder/decoder pair reset between trials instead of reallocated, plus
// message and symbol scratch. A worker decodes hundreds of messages, so
// reuse keeps the decoder's warmed-up search buffers across all of them.
type spinalCodec struct {
	enc *core.Encoder
	dec *core.Decoder
	msg []byte
	x   []complex128
}

// message fills the codec's message buffer with trial's seeded payload.
func (c *spinalCodec) message(rng *rand.Rand, nBits int) []byte {
	n := (nBits + 7) / 8
	if cap(c.msg) < n {
		c.msg = make([]byte, n)
	}
	c.msg = c.msg[:n]
	rng.Read(c.msg)
	if nBits%8 != 0 {
		c.msg[n-1] &= (1 << uint(nBits%8)) - 1
	}
	return c.msg
}

// bind points the codec at a message, creating or resetting the
// encoder/decoder pair.
func (c *spinalCodec) bind(msg []byte, nBits int, p core.Params) {
	if c.enc == nil {
		c.enc = core.NewEncoder(msg, nBits, p)
		c.dec = core.NewDecoder(nBits, p)
		return
	}
	c.enc.Reset(msg, nBits)
	c.dec.Reset()
}

// MeasureSpinal runs Trials rateless spinal sessions and aggregates them.
func MeasureSpinal(cfg SpinalConfig) Result {
	outs := ParallelWith(cfg.Trials,
		func() *spinalCodec { return new(spinalCodec) },
		func(c *spinalCodec, trial int) Outcome {
			return spinalTrial(cfg, c, trial)
		})
	return Aggregate(cfg.SNRdB, outs)
}

func spinalTrial(cfg SpinalConfig, c *spinalCodec, trial int) Outcome {
	seed := cfg.Seed + int64(trial)
	rng := rand.New(rand.NewSource(seed))
	msg := c.message(rng, cfg.NBits)

	c.bind(msg, cfg.NBits, cfg.Params)
	enc, dec := c.enc, c.dec
	sched := enc.NewSchedule()

	var awgn *channel.AWGN
	var ray *channel.Rayleigh
	if cfg.Fading != nil {
		ray = channel.NewRayleigh(cfg.SNRdB, cfg.Fading.Tau, seed^0x5f3759df)
	} else {
		awgn = channel.NewAWGN(cfg.SNRdB, seed^0x5f3759df)
	}

	attemptEvery := cfg.AttemptEvery
	if attemptEvery == 0 {
		// Auto granularity by channel capacity: per-symbol attempts pay
		// off exactly where a handful of symbols is a large fraction of
		// the transmission (§8.4: gains from aggressive decoding are
		// less prominent at low SNR).
		c := capacity.AWGNdB(cfg.SNRdB)
		if cfg.Fading != nil {
			c = capacity.RayleighdB(cfg.SNRdB)
		}
		switch {
		case c >= 4:
			attemptEvery = -1
		case c >= 0.8:
			attemptEvery = 1
		default:
			attemptEvery = 2
		}
	}
	ways := sched.Subpasses()
	maxSub := cfg.maxPasses() * ways

	symbols := 0
	for sub := 1; sub <= maxSub; sub++ {
		ids := sched.NextSubpass()
		c.x = enc.AppendSymbols(c.x[:0], ids)
		x := c.x
		var y, h []complex128
		if ray != nil {
			y, h = ray.Transmit(x)
			switch {
			case cfg.Fading.ProvideH:
				// exact h
			case cfg.Fading.PhaseOnly:
				for i, hv := range h {
					m := cmplx.Abs(hv)
					if m < 1e-12 {
						h[i] = 1
					} else {
						h[i] = hv / complex(m, 0)
					}
				}
			default:
				h = nil
			}
		} else {
			y = awgn.Transmit(x)
		}
		if attemptEvery == -1 {
			// Per-symbol attempts within the subpass.
			for i := range ids {
				var hs []complex128
				if h != nil {
					hs = h[i : i+1]
				}
				dec.AddFaded(ids[i:i+1], y[i:i+1], hs)
				symbols++
				if got, _ := dec.Decode(); bytes.Equal(got, msg) {
					return Outcome{Symbols: symbols, Bits: cfg.NBits, OK: true}
				}
			}
			continue
		}
		dec.AddFaded(ids, y, h)
		symbols += len(ids)
		if sub%attemptEvery == 0 || sub == maxSub {
			if got, _ := dec.Decode(); bytes.Equal(got, msg) {
				return Outcome{Symbols: symbols, Bits: cfg.NBits, OK: true}
			}
		}
	}
	return Outcome{Symbols: symbols}
}

// MeasureSpinalFixedRate evaluates a rated version of the spinal code
// (Fig 8-2): exactly the symbol budget for the given number of subpasses
// is transmitted and a single decode attempt is made. Throughput is
// rate × P(success), because a rated code's failures still occupy the
// channel.
func MeasureSpinalFixedRate(cfg SpinalConfig, subpasses int) Result {
	outs := ParallelWith(cfg.Trials,
		func() *spinalCodec { return new(spinalCodec) },
		func(c *spinalCodec, trial int) Outcome {
			seed := cfg.Seed + int64(trial)
			rng := rand.New(rand.NewSource(seed))
			msg := c.message(rng, cfg.NBits)
			c.bind(msg, cfg.NBits, cfg.Params)
			enc, dec := c.enc, c.dec
			sched := enc.NewSchedule()
			ch := channel.NewAWGN(cfg.SNRdB, seed^0x5f3759df)
			symbols := 0
			for sub := 0; sub < subpasses; sub++ {
				ids := sched.NextSubpass()
				c.x = enc.AppendSymbols(c.x[:0], ids)
				dec.Add(ids, ch.Transmit(c.x))
				symbols += len(ids)
			}
			if got, _ := dec.Decode(); bytes.Equal(got, msg) {
				return Outcome{Symbols: symbols, Bits: cfg.NBits, OK: true}
			}
			return Outcome{Symbols: symbols}
		})
	return Aggregate(cfg.SNRdB, outs)
}

// bscCodec is the BSC analogue of spinalCodec.
type bscCodec struct {
	enc  *core.Encoder
	dec  *core.BSCDecoder
	msg  []byte
	bits []byte
}

// MeasureSpinalBSC runs rateless spinal sessions over a BSC with crossover
// probability p and reports the achieved rate in bits per channel bit
// (compare against capacity.BSC).
func MeasureSpinalBSC(params core.Params, nBits int, p float64, trials int, seed int64) (rate float64, failures int) {
	cbsc := capacity.BSC(p)
	if cbsc < 0.05 {
		cbsc = 0.05
	}
	maxPasses := int(3*float64(params.K)/cbsc) + 4
	outs := ParallelWith(trials,
		func() *bscCodec { return new(bscCodec) },
		func(c *bscCodec, trial int) Outcome {
			s := seed + int64(trial)
			rng := rand.New(rand.NewSource(s))
			n := (nBits + 7) / 8
			if cap(c.msg) < n {
				c.msg = make([]byte, n)
			}
			msg := c.msg[:n]
			rng.Read(msg)
			if nBits%8 != 0 {
				msg[n-1] &= (1 << uint(nBits%8)) - 1
			}
			if c.enc == nil {
				c.enc = core.NewEncoder(msg, nBits, params)
				c.dec = core.NewBSCDecoder(nBits, params)
			} else {
				c.enc.Reset(msg, nBits)
				c.dec.Reset()
			}
			enc, dec := c.enc, c.dec
			sched := enc.NewSchedule()
			ch := channel.NewBSC(p, s^0x5f3759df)
			symbols := 0
			maxSub := maxPasses * sched.Subpasses()
			for sub := 1; sub <= maxSub; sub++ {
				ids := sched.NextSubpass()
				c.bits = enc.AppendBits(c.bits[:0], ids)
				dec.Add(ids, ch.Transmit(c.bits))
				symbols += len(ids)
				if got, _ := dec.Decode(); bytes.Equal(got, msg) {
					return Outcome{Symbols: symbols, Bits: nBits, OK: true}
				}
			}
			return Outcome{Symbols: symbols}
		})
	r := Aggregate(0, outs)
	return r.Rate, r.Failures
}

// Parallel runs fn(0..n-1) across available CPUs and collects results in
// index order. Trials must be independent; determinism is preserved
// because each index derives its own seed.
func Parallel[T any](n int, fn func(i int) T) []T {
	return ParallelWith(n, func() struct{} { return struct{}{} },
		func(_ struct{}, i int) T { return fn(i) })
}

// ParallelWith is Parallel with per-worker context: setup runs once in
// each worker goroutine and its result is handed to every fn call that
// worker executes. Trial loops use it to reuse expensive state — an
// encoder/decoder pair, scratch buffers — across the trials a worker
// processes, while trials stay independent and deterministic.
func ParallelWith[S, T any](n int, setup func() S, fn func(ctx S, i int) T) []T {
	outs := make([]T, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			ctx := setup()
			for t := range next {
				outs[t] = fn(ctx, t)
			}
		}()
	}
	for t := 0; t < n; t++ {
		next <- t
	}
	close(next)
	wg.Wait()
	return outs
}
