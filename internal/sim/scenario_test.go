package sim

import (
	"math"
	"strings"
	"testing"

	"spinal/internal/channel"
	"spinal/internal/link"
)

// burstScenario is the Gilbert–Elliott operating point of the EXPERIMENTS
// goodput table: multi-block datagrams under a 16-round delivery deadline,
// so a policy that cannot traverse bad bursts in time shows up as outage.
func burstScenario(policy string, seed int64) ScenarioConfig {
	return ScenarioConfig{
		Params:       multiFlowParams(),
		Scenario:     "burst",
		Policy:       policy,
		Flows:        16,
		Concurrency:  6,
		MinBytes:     96,
		MaxBytes:     192,
		MaxRounds:    16,
		MaxBlockBits: 192,
		Shards:       2,
		Seed:         seed,
	}
}

// TestScenarioTrackingBeatsFixedOnBurst is the headline acceptance check:
// on the bursty Gilbert–Elliott scenario, closed-loop TrackingRate
// achieves strictly higher aggregate goodput than FixedRate pacing —
// the fixed policy trickles one subpass per round, cannot cross bad
// bursts before the delivery deadline, and burns symbols on flows that
// then time out.
func TestScenarioTrackingBeatsFixedOnBurst(t *testing.T) {
	fixed, err := MeasureScenario(burstScenario("fixed", 42))
	if err != nil {
		t.Fatal(err)
	}
	tracking, err := MeasureScenario(burstScenario("tracking", 42))
	if err != nil {
		t.Fatal(err)
	}
	if tracking.Goodput <= fixed.Goodput {
		t.Fatalf("tracking goodput %.3f not strictly above fixed %.3f\nfixed: %v\ntracking: %v",
			tracking.Goodput, fixed.Goodput, fixed, tracking)
	}
	if fixed.Outages == 0 {
		t.Fatalf("scenario lost its teeth: fixed-rate pacing had no outages (%v)", fixed)
	}
	if tracking.Outages != 0 {
		t.Fatalf("tracking pacing suffered outages: %v", tracking)
	}
}

// TestScenarioDeterministic: identical seeds reproduce identical results,
// field for field, despite the engine's internal parallelism.
func TestScenarioDeterministic(t *testing.T) {
	a, err := MeasureScenario(burstScenario("tracking", 7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := MeasureScenario(burstScenario("tracking", 7))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("nondeterministic scenario:\n%+v\n%+v", a, b)
	}
}

// TestScenarioAllNamesDeliver: every named scenario (including a
// trace-driven one from testdata) runs and delivers under relaxed
// deadlines.
func TestScenarioAllNamesDeliver(t *testing.T) {
	for _, sc := range []string{
		"burst", "walk", "churn",
		"trace:../channel/testdata/stepdown.trace",
		"trace:../channel/testdata/fade.trace",
		"feedback-delay", "feedback-loss",
	} {
		res, err := MeasureScenario(ScenarioConfig{
			Params:       multiFlowParams(),
			Scenario:     sc,
			Policy:       "tracking",
			Flows:        6,
			Concurrency:  3,
			MinBytes:     40,
			MaxBytes:     80,
			MaxRounds:    96,
			MaxBlockBits: 192,
			Shards:       2,
			Seed:         11,
		})
		if err != nil {
			t.Fatalf("%s: %v", sc, err)
		}
		if res.Delivered != 6 || res.Outages != 0 {
			t.Fatalf("%s: %v", sc, res)
		}
		if res.Goodput <= 0 || res.Rounds == 0 || res.Symbols == 0 {
			t.Fatalf("%s: empty accounting: %v", sc, res)
		}
		if res.MeanStateDB == 0 {
			t.Fatalf("%s: StateDB trajectory not observed: %v", sc, res)
		}
	}
}

// feedbackScenario is the operating point of the feedback golden entries
// and the EXPERIMENTS feedback table: mixed-SNR AWGN flows (7/10/14 dB,
// multiple passes per block the norm) where only the reverse path varies.
func feedbackScenario(scenario, policy string, seed int64) ScenarioConfig {
	return ScenarioConfig{
		Params:       multiFlowParams(),
		Scenario:     scenario,
		Policy:       policy,
		Flows:        8,
		Concurrency:  4,
		MinBytes:     40,
		MaxBytes:     90,
		MaxRounds:    96,
		MaxBlockBits: 192,
		Shards:       2,
		Seed:         seed,
	}
}

// TestFeedbackGoodputOrdering pins the impairment ordering on identical
// forward channels: instant feedback ≥ 8-round-delayed feedback ≥ lossy
// feedback in goodput, with delay additionally costing wall-clock rounds
// even when it costs no symbols (acks are free to wait for; lost acks
// are not — the retransmission timers burn real symbols).
func TestFeedbackGoodputOrdering(t *testing.T) {
	const seed = 20260730
	ideal := feedbackScenario("feedback-delay", "tracking", seed)
	ideal.Feedback = &link.FeedbackConfig{DelayRounds: 0}
	base, err := MeasureScenario(ideal)
	if err != nil {
		t.Fatal(err)
	}
	delayed, err := MeasureScenario(feedbackScenario("feedback-delay", "tracking", seed))
	if err != nil {
		t.Fatal(err)
	}
	lossy, err := MeasureScenario(feedbackScenario("feedback-loss", "tracking", seed))
	if err != nil {
		t.Fatal(err)
	}
	if base.Goodput < delayed.Goodput || delayed.Goodput < lossy.Goodput {
		t.Fatalf("goodput ordering violated: ideal %.3f, delay %.3f, loss %.3f",
			base.Goodput, delayed.Goodput, lossy.Goodput)
	}
	if base.Goodput <= lossy.Goodput {
		t.Fatalf("ack loss cost nothing: ideal %.3f vs lossy %.3f", base.Goodput, lossy.Goodput)
	}
	if base.Rounds >= delayed.Rounds {
		t.Fatalf("an 8-round ack delay cost no rounds: ideal %d vs delayed %d", base.Rounds, delayed.Rounds)
	}
	if lossy.Retransmissions == 0 || lossy.AcksLost == 0 {
		t.Fatalf("lossy scenario shows no ARQ activity: %v", lossy)
	}
}

// TestFeedbackChaseBeatsDiscard is the HARQ acceptance check at system
// level: at an 8-round feedback delay, chase combining (the default)
// achieves strictly higher goodput than discard-and-retry on the same
// workload — retries alone are too small to decode standalone, so the
// discarding receiver strands symbols and times flows out.
func TestFeedbackChaseBeatsDiscard(t *testing.T) {
	const seed = 20260730
	chase, err := MeasureScenario(feedbackScenario("feedback-delay", "tracking", seed))
	if err != nil {
		t.Fatal(err)
	}
	cfg := feedbackScenario("feedback-delay", "tracking", seed)
	cfg.Feedback = &link.FeedbackConfig{DelayRounds: 8, Discard: true}
	discard, err := MeasureScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if chase.Goodput <= discard.Goodput {
		t.Fatalf("chase combining goodput %.3f not strictly above discard-and-retry %.3f\nchase: %v\ndiscard: %v",
			chase.Goodput, discard.Goodput, chase, discard)
	}
	if chase.Outages > discard.Outages {
		t.Fatalf("chase combining suffered more outages (%d) than discarding (%d)", chase.Outages, discard.Outages)
	}
}

// TestScenarioChurnOutageAccounting pins the outage bookkeeping under
// churn with real budget exhaustion: every resolved flow — including the
// ones abandoned via ErrFlowBudget, whose nil datagram also fails the
// corruption comparison — counts exactly once, so Delivered + Outages
// must equal Flows and the outage fraction must be exactly their ratio.
// (The audit behind this test: the error and corruption checks share one
// increment; splitting them would double-count abandoned flows.)
func TestScenarioChurnOutageAccounting(t *testing.T) {
	cfg := ScenarioConfig{
		Params:       multiFlowParams(),
		Scenario:     "churn",
		Policy:       "fixed", // trickle pacing under a tight deadline forces outages
		Flows:        12,
		Concurrency:  4,
		MinBytes:     80,
		MaxBytes:     160,
		MaxRounds:    10,
		MaxBlockBits: 192,
		Shards:       2,
		Seed:         99,
	}
	res, err := MeasureScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outages == 0 {
		t.Fatalf("deadline never bit — the regression test has no teeth: %v", res)
	}
	if res.Delivered+res.Outages != res.Flows {
		t.Fatalf("flows double- or under-counted: %d delivered + %d outages != %d flows",
			res.Delivered, res.Outages, res.Flows)
	}
	if want := float64(res.Outages) / float64(res.Flows); res.OutageRate != want {
		t.Fatalf("outage fraction %.6f, want exactly %.6f", res.OutageRate, want)
	}
}

func TestScenarioErrors(t *testing.T) {
	base := burstScenario("tracking", 1)
	base.Scenario = "no-such-scenario"
	if _, err := MeasureScenario(base); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	base = burstScenario("warp-speed", 1)
	if _, err := MeasureScenario(base); err == nil {
		t.Fatal("unknown policy accepted")
	}
	base = burstScenario("tracking", 1)
	base.Scenario = "trace:../channel/testdata/missing.trace"
	if _, err := MeasureScenario(base); err == nil {
		t.Fatal("missing trace file accepted")
	}
}

func TestNewPolicy(t *testing.T) {
	cases := []struct {
		spec string
		want string
	}{
		{"", "*link.TrackingRate"},
		{"tracking", "*link.TrackingRate"},
		{"tracking:7.5", "*link.TrackingRate"},
		{"fixed", "link.FixedRate"},
		{"fixed:4", "link.FixedRate"},
		{"capacity", "link.CapacityRate"},
		{"capacity:12", "link.CapacityRate"},
	}
	for _, c := range cases {
		p, err := NewPolicy(c.spec, 10)
		if err != nil {
			t.Fatalf("%q: %v", c.spec, err)
		}
		if got := typeName(p); got != c.want {
			t.Fatalf("%q built %s, want %s", c.spec, got, c.want)
		}
	}
	if p, _ := NewPolicy("fixed:4", 0); p.(link.FixedRate) != 4 {
		t.Fatal("fixed:4 lost its subpass count")
	}
	if p, _ := NewPolicy("capacity", 17); p.(link.CapacityRate).SNREstimateDB != 17 {
		t.Fatal("capacity did not take the scenario hint")
	}
	if p, _ := NewPolicy("tracking:3", 17); math.Abs(p.(*link.TrackingRate).EstimateDB()-3) > 1e-9 {
		t.Fatal("tracking:3 ignored its explicit estimate")
	}
	for _, bad := range []string{"fixed:0", "fixed:x", "capacity:x", "tracking:x", "bogus"} {
		if _, err := NewPolicy(bad, 10); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func typeName(v any) string {
	switch v.(type) {
	case *link.TrackingRate:
		return "*link.TrackingRate"
	case link.FixedRate:
		return "link.FixedRate"
	case link.CapacityRate:
		return "link.CapacityRate"
	}
	return "?"
}

// TestFlowChannelErasure: the shared adapter erases whole shares at the
// configured probability and exposes the wrapped model's state.
func TestFlowChannelErasure(t *testing.T) {
	fc := NewFlowChannel(channel.NewAWGN(20, 3), 0.3, 5)
	if math.Abs(fc.StateDB()-20) > 1e-9 {
		t.Fatalf("StateDB = %g", fc.StateDB())
	}
	lost := 0
	const n = 20000
	sym := make([]complex128, 2)
	for i := 0; i < n; i++ {
		if fc.Apply(sym) == nil {
			lost++
		}
	}
	if got := float64(lost) / n; math.Abs(got-0.3) > 0.02 {
		t.Fatalf("erasure rate %.3f, want 0.3", got)
	}
}

// TestScenarioStringMentionsEverything keeps the human-readable summary
// wired to the fields the CLI prints.
func TestScenarioStringMentionsEverything(t *testing.T) {
	s := ScenarioResult{Scenario: "burst", Policy: "tracking", Flows: 4, Delivered: 3,
		Outages: 1, Goodput: 2.5, OutageRate: 0.25, Rounds: 9, Symbols: 1234, MeanStateDB: 15.5}.String()
	for _, want := range []string{"burst", "tracking", "3/4", "2.500", "25%", "1234", "15.5"} {
		if !strings.Contains(s, want) {
			t.Fatalf("summary %q missing %q", s, want)
		}
	}
}
