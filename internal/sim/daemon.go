package sim

import (
	"context"
	"fmt"

	"spinal"
	"spinal/internal/daemon"
)

// DaemonLoadConfig drives MeasureDaemonLoad: one daemon, a sweep of
// concurrent flow counts through it, goodput measured per point.
type DaemonLoadConfig struct {
	// Shards is the daemon's per-core session count (0 ⇒ GOMAXPROCS).
	Shards int
	// Params is the spinal code (zero ⇒ DefaultParams).
	Params spinal.Params
	// SNRdB is the per-flow simulated channel (0 ⇒ 10 dB).
	SNRdB float64
	// Size is each flow's payload in bytes (0 ⇒ 64).
	Size int
	// FlowCounts lists the sweep's concurrent-flow points.
	FlowCounts []int
	// Seed fixes the run. The sweep is a paired design: every flow at
	// every point sends the same payload over the same noise realization
	// (common random numbers), so the curve isolates multiplexing gain
	// from channel and payload luck, and goodput is exactly monotone
	// nondecreasing in the flow count — per-flow airtime is constant
	// while delivered bits grow.
	Seed int64
}

// DaemonLoadPoint is one sweep point's aggregate outcome.
type DaemonLoadPoint struct {
	Flows     int
	Delivered int
	Outaged   int
	Failed    int
	Retries   int
	// TotalSymbols is the sweep point's summed forward+ack airtime;
	// MaxShardSymbols the busiest shard's share.
	TotalSymbols    int64
	MaxShardSymbols int64
	// Goodput is delivered payload bits per symbol of parallel airtime
	// (8·bytes / MaxShardSymbols).
	Goodput float64
}

// MeasureDaemonLoad boots one daemon and sweeps concurrent flow counts
// through it over a single client socket, reporting aggregate goodput at
// each point. Each point uses a distinct submission tag, so the daemon's
// idempotence caches never replay one point's results into the next.
func MeasureDaemonLoad(cfg DaemonLoadConfig) ([]DaemonLoadPoint, error) {
	dcfg := daemon.Config{
		Shards:        cfg.Shards,
		Params:        cfg.Params,
		SNRdB:         cfg.SNRdB,
		Seed:          cfg.Seed,
		CommonChannel: true,
	}
	d, err := daemon.New(dcfg)
	if err != nil {
		return nil, err
	}
	d.Start()
	defer d.Shutdown(context.Background())

	points := make([]DaemonLoadPoint, 0, len(cfg.FlowCounts))
	for i, flows := range cfg.FlowCounts {
		res, err := daemon.RunLoad(daemon.LoadConfig{
			Addr:          d.Addr().String(),
			Flows:         flows,
			Size:          cfg.Size,
			Seq:           uint32(i),
			Seed:          cfg.Seed,
			CommonPayload: true,
		})
		if err != nil {
			return nil, fmt.Errorf("sim: daemon load at %d flows: %w", flows, err)
		}
		points = append(points, DaemonLoadPoint{
			Flows:           flows,
			Delivered:       res.Delivered,
			Outaged:         res.Outaged,
			Failed:          res.Failed,
			Retries:         res.Retries,
			TotalSymbols:    res.TotalSymbols,
			MaxShardSymbols: res.MaxShardSymbols,
			Goodput:         res.AggregateGoodput,
		})
	}
	return points, nil
}
