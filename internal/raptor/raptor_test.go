package raptor

import (
	"bytes"
	"math/rand"
	"testing"

	"spinal/internal/channel"
	"spinal/internal/modem"
)

func randMsg(rng *rand.Rand, k int) []byte {
	m := make([]byte, k)
	for i := range m {
		m[i] = byte(rng.Intn(2))
	}
	return m
}

func TestDegreeDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	counts := map[int]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[degree(rng)]++
	}
	// Spot-check the two largest masses from RFC 5053: d=2 ≈ 0.459,
	// d=3 ≈ 0.211.
	f2 := float64(counts[2]) / n
	f3 := float64(counts[3]) / n
	if f2 < 0.44 || f2 > 0.48 {
		t.Errorf("P(d=2) = %.3f, want ≈0.459", f2)
	}
	if f3 < 0.19 || f3 > 0.23 {
		t.Errorf("P(d=3) = %.3f, want ≈0.211", f3)
	}
	for d := range counts {
		switch d {
		case 1, 2, 3, 4, 10, 11, 40:
		default:
			t.Fatalf("unexpected degree %d", d)
		}
	}
}

func TestPrecodeSatisfiesChecks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := New(512, 3)
	for trial := 0; trial < 10; trial++ {
		inter := c.encodePrecode(randMsg(rng, 512))
		var prev byte
		for i := 0; i < c.m; i++ {
			var x byte
			for _, v := range c.precode[i] {
				x ^= inter[v]
			}
			if x^prev^inter[c.k+i] != 0 {
				t.Fatalf("precode check %d unsatisfied", i)
			}
			prev = inter[c.k+i]
		}
	}
}

func TestPrecodeRate(t *testing.T) {
	c := New(950, 4)
	got := float64(c.K()) / float64(c.Intermediate())
	if got < 0.94 || got > 0.96 {
		t.Fatalf("precode rate %.3f, want ≈0.95", got)
	}
}

func TestLTNeighborsDeterministic(t *testing.T) {
	c := New(256, 5)
	for tdx := 0; tdx < 50; tdx++ {
		a := c.ltNeighbors(tdx)
		b := c.ltNeighbors(tdx)
		if len(a) != len(b) {
			t.Fatal("nondeterministic degree")
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("nondeterministic neighbors")
			}
		}
		seen := map[int32]bool{}
		for _, v := range a {
			if seen[v] {
				t.Fatal("duplicate neighbor")
			}
			seen[v] = true
			if v < 0 || int(v) >= c.Intermediate() {
				t.Fatal("neighbor out of range")
			}
		}
	}
}

func TestOutputBitsPrefixProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := New(128, 7)
	msg := randMsg(rng, 128)
	a := c.OutputBits(msg, 0, 100)
	b := c.OutputBits(msg, 0, 300)
	if !bytes.Equal(a, b[:100]) {
		t.Fatal("rateless prefix property violated")
	}
	// Out-of-order generation.
	c50 := c.OutputBits(msg, 50, 10)
	if !bytes.Equal(c50, b[50:60]) {
		t.Fatal("offset generation mismatch")
	}
}

func TestDecodeNearNoiseless(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	c := New(256, 9)
	msg := randMsg(rng, 256)
	// 1.6× overhead of essentially noiseless bits (short-block LT codes
	// need substantially more than the asymptotic ~1.02× overhead; the
	// BP cliff for k=256 sits near 1.4×).
	n := int(float64(c.Intermediate()) * 1.6)
	bits := c.OutputBits(msg, 0, n)
	dec := NewDecoder(c)
	llrs := make([]float64, n)
	for i, b := range bits {
		if b == 0 {
			llrs[i] = 12
		} else {
			llrs[i] = -12
		}
	}
	dec.Add(0, llrs)
	got, ok := dec.Decode(40)
	if !ok {
		t.Fatal("BP did not converge on near-noiseless input")
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("decoded message wrong")
	}
}

func TestDecodeOverQAMAWGN(t *testing.T) {
	// End-to-end over QAM-256 at 22 dB: accumulate symbols until decoded;
	// effective rate should be positive and below capacity (≈7.3 b/s).
	rng := rand.New(rand.NewSource(10))
	c := New(512, 11)
	msg := randMsg(rng, 512)
	qam := modem.NewQAM(256)
	ch := channel.NewAWGN(22, 12)
	dec := NewDecoder(c)
	bitsPerBatch := qam.BitsPerSymbol() * 16
	decoded := false
	var symbolsUsed int
	for batch := 0; batch < 60 && !decoded; batch++ {
		t0 := batch * bitsPerBatch
		outBits := c.OutputBits(msg, t0, bitsPerBatch)
		syms := qam.Modulate(outBits)
		y := ch.Transmit(syms)
		llrs := qam.DemapSoft(y, ch.NoiseVar(), nil)
		dec.Add(t0, llrs)
		symbolsUsed += len(syms)
		if got, ok := dec.Decode(40); ok && bytes.Equal(got, msg) {
			decoded = true
		}
	}
	if !decoded {
		t.Fatal("Raptor/QAM-256 did not decode at 22 dB")
	}
	rate := 512.0 / float64(symbolsUsed)
	if rate <= 0.5 {
		t.Fatalf("rate %.2f implausibly low at 22 dB", rate)
	}
	if rate > 7.31 {
		t.Fatalf("rate %.2f above capacity", rate)
	}
}

func TestDecodeFailsWithTooFewSymbols(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	c := New(256, 14)
	msg := randMsg(rng, 256)
	// Fewer output bits than message bits can never decode.
	bits := c.OutputBits(msg, 0, 128)
	llrs := make([]float64, len(bits))
	for i, b := range bits {
		if b == 0 {
			llrs[i] = 10
		} else {
			llrs[i] = -10
		}
	}
	dec := NewDecoder(c)
	dec.Add(0, llrs)
	got, ok := dec.Decode(40)
	if ok && bytes.Equal(got, msg) {
		t.Fatal("decoded below the information-theoretic minimum")
	}
}

func TestSoftVsHardLLRs(t *testing.T) {
	// With noisy LLRs of the right sign but mixed confidence, BP should
	// still decode given moderate overhead — i.e. the decoder genuinely
	// uses soft values.
	rng := rand.New(rand.NewSource(15))
	c := New(256, 16)
	msg := randMsg(rng, 256)
	n := int(float64(c.Intermediate()) * 1.8)
	bits := c.OutputBits(msg, 0, n)
	llrs := make([]float64, n)
	for i, b := range bits {
		mag := 0.5 + 5*rng.Float64()
		if rng.Float64() < 0.05 {
			mag = -mag // 5% wrong-sign observations
		}
		if b == 1 {
			mag = -mag
		}
		llrs[i] = mag
	}
	dec := NewDecoder(c)
	dec.Add(0, llrs)
	got, ok := dec.Decode(40)
	if !ok || !bytes.Equal(got, msg) {
		t.Fatal("soft decode with 5% bad signs failed at 1.8× overhead")
	}
}
