package raptor

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropertyPrecodeLinear: the precode is linear — intermediate blocks
// of m1, m2 and m1⊕m2 satisfy i1⊕i2 = i3.
func TestPropertyPrecodeLinear(t *testing.T) {
	c := New(128, 70)
	err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m1 := randMsg(rng, 128)
		m2 := randMsg(rng, 128)
		m3 := make([]byte, 128)
		for i := range m3 {
			m3[i] = m1[i] ^ m2[i]
		}
		i1 := c.encodePrecode(m1)
		i2 := c.encodePrecode(m2)
		i3 := c.encodePrecode(m3)
		for i := range i3 {
			if i1[i]^i2[i] != i3[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPropertyOutputLinearity: LT output bits are linear in the message.
func TestPropertyOutputLinearity(t *testing.T) {
	c := New(96, 71)
	rng := rand.New(rand.NewSource(5))
	m1 := randMsg(rng, 96)
	m2 := randMsg(rng, 96)
	m3 := make([]byte, 96)
	for i := range m3 {
		m3[i] = m1[i] ^ m2[i]
	}
	o1 := c.OutputBits(m1, 0, 200)
	o2 := c.OutputBits(m2, 0, 200)
	o3 := c.OutputBits(m3, 0, 200)
	for i := range o3 {
		if o1[i]^o2[i] != o3[i] {
			t.Fatalf("output bit %d not linear", i)
		}
	}
}

// TestDecoderIncrementalAdd: adding LLRs in several batches equals adding
// them at once.
func TestDecoderIncrementalAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	c := New(256, 72)
	msg := randMsg(rng, 256)
	// Short-block LT codes need generous overhead (see
	// TestDecodeNearNoiseless); 2× is comfortably past the k=256 cliff.
	n := c.Intermediate() * 2
	bits := c.OutputBits(msg, 0, n)
	llrs := make([]float64, n)
	for i, b := range bits {
		if b == 0 {
			llrs[i] = 9
		} else {
			llrs[i] = -9
		}
	}

	one := NewDecoder(c)
	one.Add(0, llrs)
	batched := NewDecoder(c)
	for off := 0; off < n; off += 37 {
		end := off + 37
		if end > n {
			end = n
		}
		batched.Add(off, llrs[off:end])
	}
	if one.Received() != batched.Received() {
		t.Fatal("received counts differ")
	}
	g1, ok1 := one.Decode(40)
	g2, ok2 := batched.Decode(40)
	if ok1 != ok2 || !bytes.Equal(g1, g2) {
		t.Fatal("batched add changed the decode result")
	}
	if !ok1 || !bytes.Equal(g1, msg) {
		t.Fatal("decode failed")
	}
}

func TestNewPanicsOnShortMessage(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for tiny k")
		}
	}()
	New(8, 0)
}

func BenchmarkBPDecode(b *testing.B) {
	rng := rand.New(rand.NewSource(80))
	c := New(512, 81)
	msg := randMsg(rng, 512)
	n := int(float64(c.Intermediate()) * 1.6)
	bits := c.OutputBits(msg, 0, n)
	llrs := make([]float64, n)
	for i, bit := range bits {
		if bit == 0 {
			llrs[i] = 4
		} else {
			llrs[i] = -4
		}
	}
	dec := NewDecoder(c)
	dec.Add(0, llrs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec.Decode(40)
	}
}
