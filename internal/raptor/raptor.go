// Package raptor implements the Raptor baseline of §8: an LT inner code
// with the RFC 5053 degree distribution over a high-rate LDPC-style outer
// precode (rate 0.95, message bits of degree 4, accumulator parity
// structure), decoded by soft belief propagation over the joint factor
// graph — the Palanki–Yedidia construction for noisy channels. Output
// bits are modulated onto dense QAM (the paper reports QAM-256 and
// QAM-64) and the receiver attaches soft demapped LLRs to the LT output
// nodes, the "careful demapping scheme" §8.2 credits for Raptor's strong
// showing.
package raptor

import (
	"math"
	"math/rand"
)

// rfc5053CDF is the cumulative degree distribution of RFC 5053 §5.4.4.2,
// over a denominator of 2^20.
var rfc5053CDF = []struct {
	f uint32
	d int
}{
	{10241, 1},
	{491582, 2},
	{712794, 3},
	{831695, 4},
	{948446, 10},
	{1032189, 11},
	{1048576, 40},
}

// degree draws an LT output degree from the RFC 5053 distribution.
func degree(rng *rand.Rand) int {
	v := uint32(rng.Int63n(1 << 20))
	for _, e := range rfc5053CDF {
		if v < e.f {
			return e.d
		}
	}
	return 40
}

// Code is a Raptor code over k message bits.
type Code struct {
	k  int // message bits
	kp int // intermediate bits (message + precode parity)
	m  int // precode parity bits

	seed int64

	// Precode: parity check i constrains msgIdx[i] ⊕ p_{i-1} ⊕ p_i = 0
	// (accumulator structure; p_{-1} term absent for i = 0).
	precode [][]int32
}

// PrecodeRate is the outer code rate (§8: 0.95).
const PrecodeRate = 0.95

// MsgDegree is the precode degree of each message bit (§8: regular left
// degree 4).
const MsgDegree = 4

// New builds a Raptor code for k message bits with a deterministic
// structure derived from seed.
func New(k int, seed int64) *Code {
	if k < 32 {
		panic("raptor: message too short")
	}
	m := int(math.Ceil(float64(k) * (1/PrecodeRate - 1)))
	c := &Code{k: k, kp: k + m, m: m, seed: seed}

	// Assign each message bit to MsgDegree distinct checks, keeping check
	// loads balanced-ish via random choice (binomial right degree).
	rng := rand.New(rand.NewSource(seed ^ 0x0dd))
	c.precode = make([][]int32, m)
	for v := 0; v < k; v++ {
		seen := map[int]bool{}
		for len(seen) < MsgDegree && len(seen) < m {
			ci := rng.Intn(m)
			if !seen[ci] {
				seen[ci] = true
				c.precode[ci] = append(c.precode[ci], int32(v))
			}
		}
	}
	return c
}

// K reports the message length in bits.
func (c *Code) K() int { return c.k }

// Intermediate reports the intermediate block length in bits.
func (c *Code) Intermediate() int { return c.kp }

// encodePrecode computes the intermediate block: message bits followed by
// accumulator parity bits satisfying every precode check.
func (c *Code) encodePrecode(msg []byte) []byte {
	inter := make([]byte, c.kp)
	copy(inter, msg)
	var prev byte
	for i := 0; i < c.m; i++ {
		var x byte
		for _, v := range c.precode[i] {
			x ^= inter[v] & 1
		}
		// check: x ⊕ prev ⊕ p_i = 0  ⇒  p_i = x ⊕ prev.
		p := x ^ prev
		inter[c.k+i] = p
		prev = p
	}
	return inter
}

// ltNeighbors returns the intermediate indices XORed into LT output
// symbol t. Deterministic in (code seed, t), so encoder and decoder agree
// without communication.
func (c *Code) ltNeighbors(t int) []int32 {
	rng := rand.New(rand.NewSource(c.seed ^ int64(t)*0x5851F42D4C957F2D))
	d := degree(rng)
	if d > c.kp {
		d = c.kp
	}
	out := make([]int32, 0, d)
	seen := map[int32]bool{}
	for len(out) < d {
		v := int32(rng.Intn(c.kp))
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// OutputBits generates LT output bits t0..t0+n-1 for a message.
func (c *Code) OutputBits(msg []byte, t0, n int) []byte {
	inter := c.encodePrecode(msg)
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		var x byte
		for _, v := range c.ltNeighbors(t0 + i) {
			x ^= inter[v] & 1
		}
		out[i] = x
	}
	return out
}

// Decoder accumulates soft LLRs for LT output bits and runs joint BP.
type Decoder struct {
	c *Code

	// LT observations: per output symbol index, the neighbor list and
	// channel LLR.
	ltVars [][]int32
	ltLLR  []float64
}

// NewDecoder creates a decoder for the code.
func NewDecoder(c *Code) *Decoder {
	return &Decoder{c: c}
}

// Add attaches channel LLRs for output bits t0..t0+len(llrs)-1.
func (d *Decoder) Add(t0 int, llrs []float64) {
	for i, l := range llrs {
		d.ltVars = append(d.ltVars, d.c.ltNeighbors(t0+i))
		d.ltLLR = append(d.ltLLR, l)
	}
}

// Received reports the number of output bits observed.
func (d *Decoder) Received() int { return len(d.ltLLR) }

// Decode runs belief propagation for iters iterations over the joint
// LT + precode graph and returns the hard-decision message bits and
// whether every parity constraint of the precode and the hard decisions
// of the LT checks are consistent (used as a convergence signal; final
// correctness is the caller's CRC/comparison).
func (d *Decoder) Decode(iters int) ([]byte, bool) {
	c := d.c
	type check struct {
		vars []int32
		obs  float64 // channel LLR of the LT output bit; 0 for precode
		lt   bool
	}
	var checks []check
	for i, vars := range d.ltVars {
		checks = append(checks, check{vars: vars, obs: d.ltLLR[i], lt: true})
	}
	// Precode checks: msg neighbors plus parity accumulator terms.
	for i := 0; i < c.m; i++ {
		vars := append([]int32(nil), c.precode[i]...)
		if i > 0 {
			vars = append(vars, int32(c.k+i-1))
		}
		vars = append(vars, int32(c.k+i))
		checks = append(checks, check{vars: vars})
	}

	// BP messages per edge.
	c2v := make([][]float64, len(checks))
	v2c := make([][]float64, len(checks))
	for ci := range checks {
		c2v[ci] = make([]float64, len(checks[ci].vars))
		v2c[ci] = make([]float64, len(checks[ci].vars))
	}
	posterior := make([]float64, c.kp)

	clampT := func(t float64) float64 {
		if t > 0.999999999999 {
			return 0.999999999999
		}
		if t < -0.999999999999 {
			return -0.999999999999
		}
		return t
	}

	for iter := 0; iter < iters; iter++ {
		// Check update.
		for ci := range checks {
			ch := &checks[ci]
			prod := 1.0
			zeros := 0
			zeroIdx := -1
			if ch.lt {
				t := math.Tanh(ch.obs / 2)
				if t == 0 {
					zeros++
					zeroIdx = -2 // the observation edge itself
				} else {
					prod *= t
				}
			}
			for ei := range ch.vars {
				t := math.Tanh(v2c[ci][ei] / 2)
				if t == 0 {
					zeros++
					zeroIdx = ei
					continue
				}
				prod *= t
			}
			for ei := range ch.vars {
				var ex float64
				switch {
				case zeros == 0:
					ex = prod / math.Tanh(v2c[ci][ei]/2)
				case zeros == 1 && ei == zeroIdx:
					ex = prod
				default:
					ex = 0
				}
				c2v[ci][ei] = 2 * math.Atanh(clampT(ex))
			}
		}
		// Variable update.
		for v := range posterior {
			posterior[v] = 0
		}
		for ci := range checks {
			for ei, v := range checks[ci].vars {
				posterior[v] += c2v[ci][ei]
			}
		}
		for ci := range checks {
			for ei, v := range checks[ci].vars {
				v2c[ci][ei] = posterior[v] - c2v[ci][ei]
			}
		}
	}

	hard := make([]byte, c.kp)
	for v := range hard {
		if posterior[v] < 0 {
			hard[v] = 1
		}
	}
	// Consistency: precode checks must be satisfied and LT hard decisions
	// should match observed signs for confidently observed bits.
	ok := true
	for i := 0; i < c.m; i++ {
		var x byte
		for _, v := range c.precode[i] {
			x ^= hard[v]
		}
		if i > 0 {
			x ^= hard[c.k+i-1]
		}
		x ^= hard[c.k+i]
		if x != 0 {
			ok = false
			break
		}
	}
	return hard[:c.k], ok
}
