package hw

import (
	"math"
	"strings"
	"testing"
)

func TestCalibrationFPGA(t *testing.T) {
	// The paper reports ≈10 Mbit/s on the FPGA prototype.
	got := FPGA().ThroughputMbps()
	if got < 8 || got > 13 {
		t.Fatalf("FPGA point %.1f Mb/s, paper reports ≈10", got)
	}
}

func TestCalibrationASIC(t *testing.T) {
	// The paper estimates ≈50 Mbit/s at TSMC 65 nm.
	got := ASIC().ThroughputMbps()
	if got < 40 || got > 65 {
		t.Fatalf("ASIC point %.1f Mb/s, paper estimates ≈50", got)
	}
}

func TestCalibrationArea(t *testing.T) {
	// The paper reports 0.60 mm² at 65 nm.
	got := FPGA().Area()
	if math.Abs(got-0.60) > 0.05 {
		t.Fatalf("area %.2f mm², paper reports 0.60", got)
	}
}

func TestThroughputScalesWithClock(t *testing.T) {
	a := FPGA()
	b := a
	b.ClockMHz *= 2
	if r := b.ThroughputMbps() / a.ThroughputMbps(); math.Abs(r-2) > 1e-9 {
		t.Fatalf("throughput not linear in clock: ratio %.3f", r)
	}
}

func TestMoreWorkersNeverSlower(t *testing.T) {
	prev := 0.0
	for w := 1; w <= 64; w *= 2 {
		c := FPGA()
		c.Workers = w
		got := c.ThroughputMbps()
		if got < prev {
			t.Fatalf("throughput fell from %.1f to %.1f at %d workers", prev, got, w)
		}
		prev = got
	}
}

func TestSelectionBottleneck(t *testing.T) {
	// With an enormous worker array, the selection unit caps the step
	// time: throughput must saturate, matching the §8.4 observation that
	// pruning becomes the bottleneck.
	small := FPGA()
	small.Workers = 64
	big := small
	big.Workers = 4096
	if big.ThroughputMbps() > small.ThroughputMbps()*1.5 {
		t.Fatalf("no selection saturation: %d workers %.1f vs %.1f",
			big.Workers, big.ThroughputMbps(), small.ThroughputMbps())
	}
}

func TestMorePassesSlower(t *testing.T) {
	// More stored passes mean more RNG evaluations per node.
	a := FPGA()
	b := a
	b.Passes = 8
	if b.ThroughputMbps() >= a.ThroughputMbps() {
		t.Fatal("more passes should reduce decode throughput")
	}
}

func TestLargerBeamCostsArea(t *testing.T) {
	a := FPGA()
	b := a
	b.Workers *= 4
	b.HashUnitsPerWorker *= 2
	if b.Area() <= a.Area() {
		t.Fatal("bigger decoder should cost more area")
	}
}

func TestDepthTradeoffStory(t *testing.T) {
	// Fig 8-7's hardware motivation: at a constant node budget B·2^kd, a
	// deeper decoder has cheaper *selection* (fewer, coarser candidates).
	// Model the d=2 variant as selecting among B·2^k subtree groups
	// instead of B·2^kd nodes: its selection cycles must be lower.
	d1 := Config{ClockMHz: 50, Workers: 8, HashUnitsPerWorker: 2,
		B: 512, K: 3, Passes: 2, NBits: 256, SelectWidth: 8}
	d2 := d1
	d2.B = 64 // same node count 512·8 = 64·8·8 at depth 2
	if d2.SelectionCycles() >= d1.SelectionCycles() {
		t.Fatalf("selection cost should shrink with depth: %g vs %g",
			d2.SelectionCycles(), d1.SelectionCycles())
	}
}

func TestInvalidConfigPanics(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.ClockMHz = 0 },
		func(c *Config) { c.K = 9 },
		func(c *Config) { c.SelectWidth = 0 },
	}
	for i, mutate := range bad {
		c := FPGA()
		mutate(&c)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			c.CyclesPerStep()
		}()
	}
}

func TestString(t *testing.T) {
	s := FPGA().String()
	if !strings.Contains(s, "Mb/s") || !strings.Contains(s, "mm²") {
		t.Fatalf("String() = %q", s)
	}
}
