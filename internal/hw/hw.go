// Package hw is the Appendix B hardware bubble decoder, in two layers.
//
// kernel.go is the datapath, realized in software: the saturating
// fixed-point quantizer, per-symbol distance tables, batched int32
// branch-cost accumulation, in-place compaction of dominated
// candidates, and the partial-select unit that keeps the best B of a
// step's candidates. internal/core drives these primitives as its
// default decode kernel; the equivalence suite there pins the quantized
// results to the float reference path within a documented tolerance.
//
// hw.go is the performance/area model of the same microarchitecture: a
// dispatcher feeding M worker units (each with several hash engines), a
// pipelined bitonic selection unit, and a backtrack memory. The model
// counts cycles per decoding step and converts them to decoded
// throughput at a given clock, reproducing the prototype's reported
// numbers: ≈10 Mbit/s on the XUPV5 FPGA and ≈50 Mbit/s synthesized for
// TSMC 65 nm. It is an estimator, not an RTL simulator, with constants
// calibrated to the two published operating points.
package hw

import (
	"fmt"
	"math"
)

// Config describes one hardware decoder design point.
type Config struct {
	// ClockMHz is the decoder clock.
	ClockMHz float64
	// Workers is the number of parallel node-exploration units (M).
	Workers int
	// HashUnitsPerWorker is the number of hash engines per worker; each
	// computes one one-at-a-time hash per cycle (h or RNG, §B).
	HashUnitsPerWorker int
	// B, K are the code parameters (beam width, bits per spine value).
	B, K int
	// Passes is the number of passes L whose symbols the branch cost
	// accumulates (the decoder's work grows with L; rate k/L fixes the
	// decoded throughput together with the symbol rate).
	Passes int
	// NBits is the code block size (the prototype used 192-bit blocks
	// over the air and supports 1024-bit blocks).
	NBits int
	// SelectWidth is the number of scored candidates the selection unit
	// absorbs per cycle (the bitonic merge width, M in the Appendix).
	SelectWidth int
}

// FPGA returns the XUPV5 prototype's approximate design point (d=1
// decoder, B=4, k=4, n=192 at a 50 MHz decoder clock), which the model
// places at the paper's reported ≈10 Mbit/s.
func FPGA() Config {
	return Config{
		ClockMHz: 50, Workers: 8, HashUnitsPerWorker: 2,
		B: 4, K: 4, Passes: 2, NBits: 192, SelectWidth: 8,
	}
}

// ASIC returns the TSMC 65 nm synthesis point the paper estimates at
// ≈50 Mbit/s (same microarchitecture at ≈5× the FPGA clock).
func ASIC() Config {
	c := FPGA()
	c.ClockMHz = 250
	return c
}

func (c Config) check() {
	if c.Workers < 1 || c.HashUnitsPerWorker < 1 || c.B < 1 || c.K < 1 ||
		c.Passes < 1 || c.NBits < 1 || c.SelectWidth < 1 || c.ClockMHz <= 0 {
		panic("hw: invalid configuration")
	}
	if c.K > 8 {
		panic("hw: k out of range")
	}
}

// NodesPerStep reports the candidates explored per decoding step: B·2^k.
func (c Config) NodesPerStep() int { return c.B << uint(c.K) }

// HashesPerNode reports the hash evaluations needed to score one node:
// one for the spine state plus one RNG evaluation per stored symbol
// (L passes, §4.5; the two c-bit constellation inputs share one RNG
// word, §7.1).
func (c Config) HashesPerNode() int { return 1 + c.Passes }

// ExpansionCycles reports the cycles the worker array needs to score all
// nodes of one step.
func (c Config) ExpansionCycles() float64 {
	perNode := math.Ceil(float64(c.HashesPerNode()) / float64(c.HashUnitsPerWorker))
	nodesPerWave := float64(c.Workers)
	waves := math.Ceil(float64(c.NodesPerStep()) / nodesPerWave)
	return waves * perNode
}

// SelectionCycles reports the cycles the pipelined bitonic selection unit
// needs to absorb the step's candidates. Each cycle it merges SelectWidth
// fresh candidates with the running best-B register (Appendix B: "sorts
// the M candidates delivered in a given cycle … merges those with the B
// from this cycle"); the pipeline drains log2(B)+1 stages at the end.
func (c Config) SelectionCycles() float64 {
	absorb := math.Ceil(float64(c.NodesPerStep()) / float64(c.SelectWidth))
	drain := math.Ceil(math.Log2(float64(c.B))) + 1
	return absorb + drain
}

// CyclesPerStep reports the per-step cycle count. Expansion and selection
// are pipelined (scored candidates stream into the selection unit), so a
// step costs max(expansion, selection) plus a small handoff.
func (c Config) CyclesPerStep() float64 {
	c.check()
	const handoff = 2
	return math.Max(c.ExpansionCycles(), c.SelectionCycles()) + handoff
}

// DecodeCycles reports the cycles to decode one code block: n/k steps
// plus the final sort and backtrack walk.
func (c Config) DecodeCycles() float64 {
	steps := math.Ceil(float64(c.NBits) / float64(c.K))
	backtrack := steps // one pointer chase per step
	finalSort := float64(c.B)
	return steps*c.CyclesPerStep() + backtrack + finalSort
}

// ThroughputMbps reports decoded information throughput at the configured
// clock, assuming the decoder is the bottleneck (the §B prototype
// overlaps decoding with symbol reception).
func (c Config) ThroughputMbps() float64 {
	cycles := c.DecodeCycles()
	blocksPerSec := c.ClockMHz * 1e6 / cycles
	return blocksPerSec * float64(c.NBits) / 1e6
}

// Area models the silicon area in mm² at 65 nm from component counts,
// calibrated so the FPGA design point synthesizes to the paper's
// 0.60 mm² (vs 0.12 mm² for Viterbi). Hash engines dominate.
func (c Config) Area() float64 {
	const (
		hashUnit  = 0.019 // mm² per one-at-a-time engine incl. datapath
		workerOH  = 0.018 // per-worker control, subtract/square/accumulate
		selectPer = 0.010 // per selection-lane compare/exchange column
		fixed     = 0.08  // dispatcher, backtrack memory, SRAM interface
	)
	return fixed +
		float64(c.Workers*c.HashUnitsPerWorker)*hashUnit +
		float64(c.Workers)*workerOH +
		float64(c.SelectWidth)*selectPer
}

// String summarizes the design point.
func (c Config) String() string {
	return fmt.Sprintf("hw{%.0fMHz M=%d×%d B=%d k=%d L=%d n=%d → %.1f Mb/s, %.2f mm²}",
		c.ClockMHz, c.Workers, c.HashUnitsPerWorker, c.B, c.K, c.Passes,
		c.NBits, c.ThroughputMbps(), c.Area())
}
