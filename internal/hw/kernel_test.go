package hw

import (
	"math"
	"math/rand"
	"slices"
	"testing"
)

func TestNewQuantizerSizing(t *testing.T) {
	cases := []struct {
		maxDim2 float64
		nsyms   int
		ok      bool
		cap     int32
	}{
		{10, 130, true, DimCapMax},
		{10, 0, true, DimCapMax},
		{0, 0, true, DimCapMax},
		{10, accumBudget / (2 * DimCapMax) * 4, true, DimCapMax / 4},
		{10, accumBudget / (2 * DimCapMin) * 2, false, 0}, // cap would fall below DimCapMin
		{math.Inf(1), 10, false, 0},
		{math.NaN(), 10, false, 0},
		{10, -1, false, 0},
	}
	for _, c := range cases {
		q, ok := NewQuantizer(c.maxDim2, c.nsyms)
		if ok != c.ok {
			t.Fatalf("NewQuantizer(%v, %d): ok = %v, want %v", c.maxDim2, c.nsyms, ok, c.ok)
		}
		if ok && q.Cap() != c.cap {
			t.Fatalf("NewQuantizer(%v, %d): cap = %d, want %d", c.maxDim2, c.nsyms, q.Cap(), c.cap)
		}
	}
	// The overflow invariant the hot loop relies on: a full accumulation
	// cannot exceed the budget.
	q, ok := NewQuantizer(5, 1<<16)
	if !ok {
		t.Fatal("quantizer for 2^16 symbols should exist")
	}
	if int64(1<<16)*2*int64(q.Cap()) > accumBudget {
		t.Fatalf("cap %d breaks the accumulation budget", q.Cap())
	}
}

func TestQuantizeRoundTripAndSaturation(t *testing.T) {
	const maxDim2 = 20.0
	q, ok := NewQuantizer(maxDim2, 130)
	if !ok {
		t.Fatal("NewQuantizer failed")
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		v := rng.Float64() * maxDim2
		c := q.Quantize(v)
		if c < 0 || c > q.Cap() {
			t.Fatalf("Quantize(%v) = %d outside [0, %d]", v, c, q.Cap())
		}
		if err := math.Abs(q.Dequantize(c) - v); err > q.Step()/2+1e-12 {
			t.Fatalf("round-trip error %v for %v exceeds half a step (%v)", err, v, q.Step()/2)
		}
	}
	for _, v := range []float64{math.NaN(), math.Inf(1), math.MaxFloat64, 2 * maxDim2, maxDim2 * 1e10} {
		if c := q.Quantize(v); c != q.Cap() {
			t.Fatalf("Quantize(%v) = %d, want saturation at %d", v, c, q.Cap())
		}
	}
	if c := q.Quantize(math.Inf(-1)); c != 0 {
		t.Fatalf("Quantize(-Inf) = %d, want 0", c)
	}
	if c := q.Quantize(0); c != 0 {
		t.Fatalf("Quantize(0) = %d, want 0", c)
	}
}

// Cost ordering of well-separated values survives quantization: if two
// in-range costs differ by more than one step, their quantized order
// matches, and any saturated value ranks at least as high as any
// in-range one.
func TestQuantizeOrderPreserved(t *testing.T) {
	const maxDim2 = 12.5
	q, ok := NewQuantizer(maxDim2, 64)
	if !ok {
		t.Fatal("NewQuantizer failed")
	}
	rng := rand.New(rand.NewSource(2))
	vals := make([]float64, 500)
	for i := range vals {
		if i%10 == 0 {
			vals[i] = maxDim2 * (1 + rng.Float64()*1e6) // saturating
		} else {
			vals[i] = rng.Float64() * maxDim2
		}
	}
	for i, a := range vals {
		for _, b := range vals[i+1:] {
			qa, qb := q.Quantize(a), q.Quantize(b)
			switch {
			case a < b && b-a > q.Step() && b < maxDim2:
				if qa >= qb {
					t.Fatalf("order lost: %v < %v but %d >= %d", a, b, qa, qb)
				}
			case b < a && a-b > q.Step() && a < maxDim2:
				if qb >= qa {
					t.Fatalf("order lost: %v < %v but %d >= %d", b, a, qb, qa)
				}
			}
		}
	}
}

func TestBuildDistTables(t *testing.T) {
	q, ok := NewQuantizer(25, 10)
	if !ok {
		t.Fatal("NewQuantizer failed")
	}
	x := []float64{-1.5, -0.5, 0.5, 1.5}
	dI := make([]int32, len(x))
	dQ := make([]int32, len(x))
	q.BuildDistTables(0.7, -2.0, x, dI, dQ)
	for v, xv := range x {
		wi := q.Quantize((0.7 - xv) * (0.7 - xv))
		wq := q.Quantize((-2.0 - xv) * (-2.0 - xv))
		if dI[v] != wi || dQ[v] != wq {
			t.Fatalf("entry %d: got (%d,%d), want (%d,%d)", v, dI[v], dQ[v], wi, wq)
		}
	}
	// Non-finite received values poison every entry to the cap.
	for _, y := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1e300} {
		q.BuildDistTables(y, y, x, dI, dQ)
		for v := range x {
			if dI[v] != q.Cap() || dQ[v] != q.Cap() {
				t.Fatalf("y=%v entry %d: got (%d,%d), want saturation", y, v, dI[v], dQ[v])
			}
		}
	}
}

func TestAccumulateCompact(t *testing.T) {
	const cbits = 3
	const L = 1 << cbits
	cmask := uint32(L - 1)
	rng := rand.New(rand.NewSource(3))
	dI := make([]int32, L)
	dQ := make([]int32, L)
	for i := range dI {
		dI[i] = rng.Int31n(1000)
		dQ[i] = rng.Int31n(1000)
	}
	type cand struct {
		cost     int32
		pre, org uint32
	}
	for _, tau := range []int32{math.MaxInt32, 1 << 19, 1000, 0} {
		n := 257
		cost := make([]int32, n)
		pre := make([]uint32, n)
		org := make([]uint32, n)
		words := make([]uint32, n)
		var want []cand
		for j := range cost {
			cost[j] = rng.Int31n(1 << 19)
			pre[j] = rng.Uint32()
			org[j] = uint32(j)
			words[j] = rng.Uint32()
			c := cost[j] + dI[words[j]&cmask] + dQ[words[j]>>cbits&cmask]
			if c < tau {
				want = append(want, cand{c, pre[j], org[j]})
			}
		}
		kept := AccumulateCompact(tau, cost, pre, org, words, dI, dQ, cmask, cbits)
		if kept != len(want) {
			t.Fatalf("tau=%d: kept %d, want %d", tau, kept, len(want))
		}
		for i, w := range want {
			got := cand{cost[i], pre[i], org[i]}
			if got != w {
				t.Fatalf("tau=%d survivor %d = %+v, want %+v (encounter order, aligned arrays)",
					tau, i, got, w)
			}
		}
	}
}

func TestCompactBelow(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(300)
		cost := make([]int32, n)
		pre := make([]uint32, n)
		org := make([]uint32, n)
		type cand struct {
			cost     int32
			pre, org uint32
		}
		var want []cand
		tau := int32(500)
		for i := range cost {
			cost[i] = rng.Int31n(1000)
			pre[i] = rng.Uint32()
			org[i] = rng.Uint32()
			if cost[i] < tau {
				want = append(want, cand{cost[i], pre[i], org[i]})
			}
		}
		kept := CompactBelow(tau, cost, pre, org)
		if kept != len(want) {
			t.Fatalf("kept %d, want %d", kept, len(want))
		}
		for i, w := range want {
			got := cand{cost[i], pre[i], org[i]}
			if got != w {
				t.Fatalf("survivor %d = %+v, want %+v (encounter order, aligned arrays)", i, got, w)
			}
		}
	}
}

func TestSelectKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(500)
		k := 1 + rng.Intn(n)
		keys := make([]uint64, n)
		for i := range keys {
			// Heavily tied costs in the high word, unique origins below —
			// the decoder's packing.
			keys[i] = uint64(rng.Int31n(64))<<32 | uint64(i)
		}
		sorted := slices.Clone(keys)
		slices.Sort(sorted)
		pivot := SelectKeys(keys, k)
		if pivot != sorted[k-1] {
			t.Fatalf("pivot = %#x, want %#x (n=%d k=%d)", pivot, sorted[k-1], n, k)
		}
		prefix := slices.Clone(keys[:k])
		slices.Sort(prefix)
		if !slices.Equal(prefix, sorted[:k]) {
			t.Fatalf("prefix is not the k smallest keys (n=%d k=%d)", n, k)
		}
	}
}

// The selected set is a pure function of the key multiset — block
// boundaries and encounter order cannot change it, which is what makes
// the quantized decode deterministic.
func TestSelectKeysOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	base := make([]uint64, 300)
	for i := range base {
		base[i] = uint64(rng.Int31n(32))<<32 | uint64(i)
	}
	const k = 64
	ref := slices.Clone(base)
	SelectKeys(ref, k)
	want := slices.Clone(ref[:k])
	slices.Sort(want)
	for trial := 0; trial < 20; trial++ {
		shuf := slices.Clone(base)
		rng.Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
		SelectKeys(shuf, k)
		got := slices.Clone(shuf[:k])
		slices.Sort(got)
		if !slices.Equal(got, want) {
			t.Fatalf("selected set depends on encounter order (trial %d)", trial)
		}
	}
}
