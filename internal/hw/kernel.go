package hw

import "math"

// This file is the software realization of the Appendix B datapath: the
// quantized branch-cost arithmetic the hardware decoder runs in narrow
// integer units, promoted from the cycle model in hw.go to the actual
// decode hot path. The core decoder drives these primitives over
// contiguous candidate arrays — build per-symbol distance tables once
// per spine step, accumulate table lookups into int32 path costs for a
// whole block of candidates at a time, drop dominated candidates in
// place, and keep the best B by an in-place partial select — so the
// inner loops are branch-light passes over dense slices, like the
// hardware's worker array streaming scored candidates into the
// selection unit.
//
// Arithmetic contract (asserted by the equivalence suite in
// internal/core): per-dimension squared distances are quantized to at
// most DimCap units with round-to-nearest, non-finite or out-of-range
// values saturate to the cap instead of overflowing, and the cap is
// sized so a full path accumulation stays below 2^30 — int32 adds in
// the hot loop can never wrap.

const (
	// DimCapMax is the ceiling on the per-dimension quantization range:
	// 2^20 units per squared-distance dimension. Finer than this buys no
	// decoding accuracy (the float path's own noise floor dominates) and
	// costs accumulation headroom.
	DimCapMax = 1 << 20
	// DimCapMin is the coarsest per-dimension range the kernel accepts;
	// below ~8 bits per dimension quantization noise starts to reorder
	// genuinely distinct candidates, so NewQuantizer refuses and the
	// caller falls back to float.
	DimCapMin = 1 << 8
	// accumBudget bounds the total quantized path cost: nsyms symbols ×
	// 2 dimensions × DimCap ≤ 2^30 < MaxInt32, with a factor-2 margin so
	// comparisons and selection arithmetic have headroom.
	accumBudget = 1 << 30
)

// Quantizer maps non-negative float64 squared distances to saturating
// fixed-point int32 units: q = round(v·scale), clamped to [0, cap].
// NaN, +Inf and any value at or beyond the representable range saturate
// to cap — the hardware behaviour (a full accumulator, not a wrapped
// one) and the property the fuzz target pins.
type Quantizer struct {
	scale float64 // quantized units per float cost unit
	cap   int32   // per-dimension saturation value
}

// NewQuantizer sizes a quantizer for a decode in which maxDim2
// upper-bounds every finite per-dimension squared distance and nsyms
// symbols contribute two dimensions each to a path cost. The cap is the
// largest power-of-two range that keeps a full accumulation under
// accumBudget (so in-loop adds cannot overflow), clamped to
// [DimCapMin, DimCapMax]. ok is false when no acceptable range exists —
// maxDim2 is not finite, or nsyms is so large the cap would fall below
// DimCapMin — and the caller must use the float path.
func NewQuantizer(maxDim2 float64, nsyms int) (Quantizer, bool) {
	if math.IsNaN(maxDim2) || math.IsInf(maxDim2, 0) || nsyms < 0 {
		return Quantizer{}, false
	}
	cap := int32(DimCapMax)
	if nsyms > 0 {
		if lim := accumBudget / (2 * nsyms); lim < DimCapMax {
			if lim < DimCapMin {
				return Quantizer{}, false
			}
			cap = int32(lim)
		}
	}
	scale := 1.0
	if maxDim2 > 0 {
		scale = float64(cap) / maxDim2
	}
	return Quantizer{scale: scale, cap: cap}, true
}

// Quantize converts one squared distance to fixed point, saturating at
// the cap. The !(< cap) comparison routes NaN to the cap as well.
func (q Quantizer) Quantize(v float64) int32 {
	s := v*q.scale + 0.5
	if !(s < float64(q.cap)) {
		return q.cap
	}
	if s < 0 {
		return 0
	}
	return int32(s)
}

// Dequantize converts a quantized cost back to float units.
func (q Quantizer) Dequantize(c int32) float64 { return float64(c) / q.scale }

// Step is the float-unit width of one quantized unit; rounding error per
// quantized dimension is at most Step()/2 (saturated values excepted).
func (q Quantizer) Step() float64 { return 1 / q.scale }

// Cap is the per-dimension saturation value.
func (q Quantizer) Cap() int32 { return q.cap }

// Tolerance bounds the absolute quantization error of an n-symbol path
// cost whose per-dimension distances all stayed below the saturation
// range: two dimensions per symbol, each rounded by at most Step()/2.
func (q Quantizer) Tolerance(n int) float64 { return float64(n) * q.Step() }

// BuildDistTables fills the per-symbol lookup tables for one stored
// (yI, yQ) symbol over the constellation x: dI[v] = Quantize((yI−x[v])²)
// and dQ[v] likewise. A non-finite received value poisons every entry to
// the cap through the saturating Quantize — the symbol still participates
// but cannot dominate a finite one, which is the saturation behaviour
// the fuzz target asserts.
func (q Quantizer) BuildDistTables(yI, yQ float64, x []float64, dI, dQ []int32) {
	for v, xv := range x {
		di := yI - xv
		dq := yQ - xv
		dI[v] = q.Quantize(di * di)
		dQ[v] = q.Quantize(dq * dq)
	}
}

// AccumulateCompact scores one stored symbol for a block of candidates
// and compacts the survivors in one pass: words[j] is candidate j's RNG
// word for the symbol (hashfn.FinishWords over the block's prefixes),
// whose low and next cshift bits index the two distance tables; the
// table sum accumulates into cost[j], and candidates reaching tau are
// dropped on the spot — branch costs are non-negative, so a partial
// path at tau can only get worse, and a dropped candidate pays no
// further hashing or lookups this step. Survivors keep encounter order
// in the parallel (cost, pre, org) prefix; the survivor count is
// returned. In-place safe: the write index never passes the read index.
// Overflow-free by the NewQuantizer cap invariant.
func AccumulateCompact(tau int32, cost []int32, pre, org, words []uint32, dI, dQ []int32, cmask uint32, cshift uint) int {
	dI = dI[: cmask+1 : cmask+1]
	dQ = dQ[: cmask+1 : cmask+1]
	cost = cost[:len(words)]
	pre = pre[:len(words)]
	org = org[:len(words)]
	n := 0
	for j, w := range words {
		c := cost[j] + dI[w&cmask] + dQ[w>>cshift&cmask]
		// Branchless compaction: always store at the write index, advance
		// it by the sign bit of c−tau (costs are non-negative int32s, so
		// the subtraction cannot wrap). Survival is data-dependent and
		// near-random mid-step; a conditional branch here eats its
		// savings in mispredictions.
		cost[n] = c
		pre[n] = pre[j]
		org[n] = org[j]
		n += int(uint32(c-tau) >> 31)
	}
	return n
}

// CompactBelow drops every candidate whose cost has reached tau, moving
// the survivors to the front of the parallel arrays in encounter order,
// and returns the survivor count. Used for punctured spine steps, where
// candidates inherit their parent cost without scoring.
func CompactBelow(tau int32, cost []int32, pre, org []uint32) int {
	n := 0
	for j, c := range cost {
		if c < tau {
			cost[n] = c
			pre[n] = pre[j]
			org[n] = org[j]
			n++
		}
	}
	return n
}

// SelectKeys rearranges keys so its k smallest values occupy keys[:k]
// (in arbitrary order) and returns the k-th smallest — the step's new
// exact beam threshold. Keys pack a candidate as cost<<32 | origin with
// a unique origin, so comparisons never tie and the selected set is
// deterministic regardless of block boundaries or encounter order; the
// cost-tied candidates that survive are those with the smallest origins
// (§4.3 permits any tie-breaking). Requires 1 ≤ k ≤ len(keys). This is
// the software form of the Appendix B selection unit: an in-place
// partial select instead of the float path's histogram-threshold pass.
func SelectKeys(keys []uint64, k int) uint64 {
	lo, hi := 0, len(keys)-1
	for hi-lo > 12 {
		// Median-of-three pivot (also sentinels: keys[lo] ≤ pivot ≤
		// keys[hi] bounds the inner scans) to avoid quadratic behaviour
		// on sorted input; Hoare partition swaps only mismatched pairs,
		// about a quarter of the elements per pass. Duplicate keys are
		// impossible from the decoder and merely slow, never wrong, here.
		mid := lo + (hi-lo)/2
		if keys[mid] < keys[lo] {
			keys[mid], keys[lo] = keys[lo], keys[mid]
		}
		if keys[hi] < keys[lo] {
			keys[hi], keys[lo] = keys[lo], keys[hi]
		}
		if keys[hi] < keys[mid] {
			keys[hi], keys[mid] = keys[mid], keys[hi]
		}
		pivot := keys[mid]
		i, j := lo, hi
		for i <= j {
			for keys[i] < pivot {
				i++
			}
			for keys[j] > pivot {
				j--
			}
			if i <= j {
				keys[i], keys[j] = keys[j], keys[i]
				i++
				j--
			}
		}
		// keys[lo..j] ≤ pivot ≤ keys[i..hi], and anything between sits
		// exactly at the pivot value.
		switch {
		case k-1 <= j:
			hi = j
		case k-1 >= i:
			lo = i
		default:
			return pivot
		}
	}
	// Small ranges: insertion sort settles the exact order.
	for a := lo + 1; a <= hi; a++ {
		v := keys[a]
		b := a - 1
		for b >= lo && keys[b] > v {
			keys[b+1] = keys[b]
			b--
		}
		keys[b+1] = v
	}
	return keys[k-1]
}
