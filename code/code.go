// Package code is the public face of the library's code-agnostic channel
// code contract: the one interface the link layer needs from a code —
// rateless (or rate-emulating) symbol schedules, batch encoding,
// incremental decode attempts with a confidence signal, and an optional
// feedback hook for rate adaptation — plus constructors for every code
// the repository ships behind it (spinal itself and the §8 baselines;
// see spinal/baseline).
//
// The interface is a stable API tier like spinal and spinal/link; the
// individual baseline adapters are experiment-tier (see docs/API.md).
// Run a session over any code with link.WithCode.
package code

import (
	"spinal"
	icode "spinal/internal/code"
)

// SymbolID identifies one transmitted symbol: spinal's (chunk, RNG
// index) pair, reused by stream codes as a stream position with chunk 0.
type SymbolID = icode.SymbolID

// Schedule enumerates one code block's transmission order.
type Schedule = icode.Schedule

// Encoder regenerates the channel symbols for one code block.
type Encoder = icode.Encoder

// Decoder accumulates symbol observations and attempts decodes.
type Decoder = icode.Decoder

// Code is a channel code the link layer can run.
type Code = icode.Code

// RateAdapter is the optional feedback hook of a Code: the engine
// reports every decoded block's size and total symbol spend.
type RateAdapter = icode.RateAdapter

// Spinal adapts the spinal code with parameters p behind the Code
// interface. The link engine recognizes it and runs its native pooled
// codec path, so sessions over Spinal(p) behave bit-identically to
// sessions over p directly.
func Spinal(p spinal.Params) Code { return icode.Spinal(p) }

// Parse builds a code from its spec string: "spinal" (the code of p),
// "raptor", "strider", "turbo", "ldpc" (adaptive rate/modulation ladder)
// or "ldpc:RATE" with RATE one of 1/2, 2/3, 3/4, 5/6.
func Parse(spec string, p spinal.Params) (Code, error) { return icode.Parse(spec, p) }
