// Package spinal is a Go implementation of spinal codes (Perry,
// Balakrishnan, Shah — SIGCOMM 2012): a rateless code for wireless
// channels built from the sequential application of a hash function to
// the message bits, decoded by the polynomial-time bubble decoder.
//
// The package re-exports the core API from internal/core. A minimal
// transmission loop looks like:
//
//	p := spinal.DefaultParams()
//	enc := spinal.NewEncoder(msg, len(msg)*8, p)
//	dec := spinal.NewDecoder(len(msg)*8, p)
//	sched := enc.NewSchedule()
//	for !decoded {
//		ids := sched.NextSubpass()
//		dec.Add(ids, channel(enc.Symbols(ids)))
//		got, _ := dec.Decode()
//		decoded = crcOK(got) // e.g. framing.Verify
//	}
//
// The composable system around the codec is public too:
//
//   - spinal/channel — channel models (AWGN, Gilbert–Elliott, random
//     walk, trace replay, fading) behind one Model interface;
//   - spinal/link — the §6 link layer: Session (multi-flow engine with
//     functional options, rate policies, ARQ feedback, half-duplex
//     accounting), Conn (io.Reader/io.Writer over any channel), and the
//     Sender/Receiver state machines with their wire codec;
//   - spinal/sim, spinal/phy, spinal/baseline — the measurement harness,
//     OFDM PHY and baseline codes (experiment-tier surfaces).
//
// docs/API.md states the stability guarantees; the runnable entry points
// are cmd/spinalsim, cmd/spinalcat and the examples/ directory.
package spinal

import (
	"spinal/internal/core"
	"spinal/internal/hashfn"
	"spinal/internal/modem"
)

// Params configures a spinal code (see core.Params).
type Params = core.Params

// SymbolID identifies one transmitted symbol (spine index + RNG index).
type SymbolID = core.SymbolID

// Schedule enumerates the transmission order of symbols: §5 puncturing
// subpasses with §4.4 tail symbols.
type Schedule = core.Schedule

// Encoder produces the rateless symbol stream for one message.
type Encoder = core.Encoder

// Decoder is the bubble decoder for AWGN (optionally fading-aware).
type Decoder = core.Decoder

// BSCDecoder is the bubble decoder with Hamming branch metrics.
type BSCDecoder = core.BSCDecoder

// Hash is the spine hash function interface; OneAtATime is the default.
type Hash = hashfn.Hash

// Kernel selects the AWGN decoder's arithmetic path; see the constants
// for the accuracy contract.
type Kernel = core.Kernel

// Kernel modes. KernelAuto (the zero value) uses the Appendix B
// fixed-point kernel whenever the parameters and stored symbols permit
// and falls back to float64 otherwise; KernelFloat forces the float64
// reference arithmetic; KernelQuantized asks for the fixed-point kernel
// explicitly (still falling back when it is infeasible, e.g. under
// per-symbol fading). Decoder.KernelUsed reports the path the last
// Decode took, and Decoder.QuantTolerance its cost-accuracy bound.
const (
	KernelAuto      = core.KernelAuto
	KernelFloat     = core.KernelFloat
	KernelQuantized = core.KernelQuantized
)

// Mapper is the constellation mapping function interface.
type Mapper = modem.Mapper

// DefaultParams returns the paper's recommended operating point:
// k=4, B=256, d=1, c=6, two tail symbols, 8-way puncturing.
func DefaultParams() Params { return core.DefaultParams() }

// NewEncoder builds an encoder for the first nBits bits of msg.
func NewEncoder(msg []byte, nBits int, p Params) *Encoder {
	return core.NewEncoder(msg, nBits, p)
}

// NewDecoder creates an AWGN bubble decoder for nBits-bit messages.
func NewDecoder(nBits int, p Params) *Decoder {
	return core.NewDecoder(nBits, p)
}

// NewBSCDecoder creates a BSC bubble decoder for nBits-bit messages.
func NewBSCDecoder(nBits int, p Params) *BSCDecoder {
	return core.NewBSCDecoder(nBits, p)
}

// NewSchedule creates the symbol schedule for nspine spine values with
// the given puncturing fan-out and tail symbol count.
func NewSchedule(nspine, ways, tail int) *Schedule {
	return core.NewSchedule(nspine, ways, tail)
}
