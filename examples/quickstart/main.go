// Quickstart: encode a message with a spinal code, transmit it rateless
// over a simulated AWGN channel, and decode it — the minimal end-to-end
// loop of the paper's §3-§5.
//
// Run with:
//
//	go run ./examples/quickstart [-snr 12] [-msg "hello spinal codes"]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"

	"spinal"
	"spinal/channel"
)

func main() {
	snrDB := flag.Float64("snr", 12, "channel SNR in dB")
	text := flag.String("msg", "hello, spinal codes!", "message to transmit")
	flag.Parse()

	msg := []byte(*text)
	nBits := len(msg) * 8
	p := spinal.DefaultParams()

	enc := spinal.NewEncoder(msg, nBits, p)
	dec := spinal.NewDecoder(nBits, p)
	sched := enc.NewSchedule()
	ch := channel.NewAWGN(*snrDB, 42)

	symbols := 0
	var decoded []byte
	for pass := 0; pass < 64; pass++ {
		for sub := 0; sub < sched.Subpasses(); sub++ {
			ids := sched.NextSubpass()
			// The channel corrupts the symbols; the decoder stores them
			// and re-searches the message tree.
			dec.Add(ids, ch.Transmit(enc.Symbols(ids)))
			symbols += len(ids)
			if got, _ := dec.Decode(); bytes.Equal(got, msg) {
				decoded = got
				goto done
			}
		}
	}
done:
	if decoded == nil {
		fmt.Fprintln(os.Stderr, "failed to decode within 64 passes — SNR too low?")
		os.Exit(1)
	}
	rate := float64(nBits) / float64(symbols)
	fmt.Printf("message:   %q (%d bits)\n", decoded, nBits)
	fmt.Printf("channel:   AWGN at %.1f dB (capacity %.2f bits/symbol)\n",
		*snrDB, channel.CapacityAWGNdB(*snrDB))
	fmt.Printf("decoded after %d symbols → rate %.2f bits/symbol (%.0f%% of capacity)\n",
		symbols, rate, 100*channel.FractionOfCapacity(rate, *snrDB))
}
