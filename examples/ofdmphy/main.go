// Ofdmphy: the Appendix B stack end to end — spinal symbols carried on an
// 802.11a/g-like OFDM PHY over a frequency-selective multipath channel.
//
// The transmitter builds OFDM frames (preamble + cyclic-prefixed data
// symbols); the receiver estimates the per-subcarrier channel from the
// preamble and hands the spinal decoder raw subcarrier observations with
// their fading coefficients — the decoder's §8.3 fading-aware metric does
// the rest. No equalization-induced noise coloring, no bit demapping.
//
// Run with:
//
//	go run ./examples/ofdmphy [-snr 15] [-taps 4]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"spinal"
	"spinal/channel"
	"spinal/phy"
)

func main() {
	snrDB := flag.Float64("snr", 15, "channel SNR in dB")
	nTaps := flag.Int("taps", 4, "multipath taps (1 = flat channel)")
	flag.Parse()

	// A random but fixed multipath profile with exponentially decaying
	// power.
	rng := rand.New(rand.NewSource(2))
	taps := make([]complex128, *nTaps)
	amp := 1.0
	for i := range taps {
		taps[i] = complex(rng.NormFloat64()*amp, rng.NormFloat64()*amp)
		amp *= 0.6
	}
	ch := channel.NewMultipath(taps, *snrDB, 3)

	p := spinal.DefaultParams()
	nBits := 192 // the hardware prototype's code block size
	msg := make([]byte, nBits/8)
	rng.Read(msg)

	enc := spinal.NewEncoder(msg, nBits, p)
	dec := spinal.NewDecoder(nBits, p)
	sched := enc.NewSchedule()

	frames, symbols := 0, 0
	for pass := 0; pass < 48; pass++ {
		// One PHY frame per pass: collect the pass's subpasses.
		var ids []spinal.SymbolID
		for sub := 0; sub < sched.Subpasses(); sub++ {
			ids = append(ids, sched.NextSubpass()...)
		}
		x := enc.Symbols(ids)
		rx := ch.Transmit(phy.Modulate(x))
		y, h := phy.Demodulate(rx, len(x))
		dec.AddFaded(ids, y, h)
		frames++
		symbols += len(x)
		if got, _ := dec.Decode(); bytes.Equal(got, msg) {
			rate := float64(nBits) / float64(symbols)
			fmt.Printf("decoded %d bits after %d OFDM frames (%d data symbols)\n",
				nBits, frames, symbols)
			fmt.Printf("rate %.2f bits/symbol over a %d-tap channel at %.0f dB\n",
				rate, *nTaps, *snrDB)
			fmt.Printf("subcarrier gain spread: %.1f dB (frequency selectivity)\n",
				phy.SubcarrierSNRSpread(h))
			return
		}
	}
	fmt.Fprintln(os.Stderr, "failed to decode within 48 frames — SNR too low?")
	os.Exit(1)
}
