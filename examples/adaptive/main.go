// Adaptive: the motivating scenario of the paper's introduction — a
// wireless channel whose SNR wanders over time (mobility, interference).
//
// Two senders stream 256-bit messages over the same realized channel:
//
//   - the spinal sender is rateless and needs no channel knowledge: each
//     message simply takes as many symbols as the current conditions
//     require;
//   - the "reactive" sender emulates conventional bit-rate selection: it
//     picks a fixed spinal rate from a rate table using the measured SNR
//     of the *previous* message (a stale estimate, as real rate adaptation
//     suffers), retransmitting on failure.
//
// The rateless sender achieves higher goodput with no selection logic at
// all — the "hedging" effect of §8.2 plus immunity to stale estimates.
//
// Run with:
//
//	go run ./examples/adaptive [-steps 40]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"

	"spinal"
	"spinal/channel"
)

const nBits = 256

func main() {
	steps := flag.Int("steps", 40, "number of messages (channel steps)")
	flag.Parse()

	// SNR random walk between 2 and 28 dB.
	rng := rand.New(rand.NewSource(5))
	snr := 15.0
	var snrs []float64
	for i := 0; i < *steps; i++ {
		snr += rng.NormFloat64() * 3
		if snr < 2 {
			snr = 2
		}
		if snr > 28 {
			snr = 28
		}
		snrs = append(snrs, snr)
	}

	p := spinal.DefaultParams()
	p.B = 64 // a mobile-class decoder (§7: each receiver picks its own B)

	ratelessBits, ratelessSyms := runRateless(p, snrs)
	reactiveBits, reactiveSyms := runReactive(p, snrs)

	fmt.Printf("channel: SNR random walk over %d messages (2-28 dB)\n\n", *steps)
	fmt.Printf("%-22s %10s %10s %12s\n", "sender", "bits", "symbols", "bits/symbol")
	fmt.Printf("%-22s %10d %10d %12.2f\n", "spinal rateless", ratelessBits, ratelessSyms,
		float64(ratelessBits)/float64(ratelessSyms))
	fmt.Printf("%-22s %10d %10d %12.2f\n", "reactive rate select", reactiveBits, reactiveSyms,
		float64(reactiveBits)/float64(reactiveSyms))
}

// runRateless streams one message per channel step, rateless.
func runRateless(p spinal.Params, snrs []float64) (bits, syms int) {
	rng := rand.New(rand.NewSource(11))
	for step, snr := range snrs {
		msg := make([]byte, nBits/8)
		rng.Read(msg)
		enc := spinal.NewEncoder(msg, nBits, p)
		dec := spinal.NewDecoder(nBits, p)
		sched := enc.NewSchedule()
		ch := channel.NewAWGN(snr, int64(1000+step))
		for sub := 0; sub < 64*sched.Subpasses(); sub++ {
			ids := sched.NextSubpass()
			dec.Add(ids, ch.Transmit(enc.Symbols(ids)))
			syms += len(ids)
			if got, _ := dec.Decode(); bytes.Equal(got, msg) {
				bits += nBits
				break
			}
		}
	}
	return bits, syms
}

// runReactive picks a fixed symbol budget per message from the previous
// message's SNR, transmits exactly that much, and retransmits (with a
// halved rate) on failure — a SampleRate-style reactive policy.
func runReactive(p spinal.Params, snrs []float64) (bits, syms int) {
	rng := rand.New(rand.NewSource(11))
	est := snrs[0] // initial estimate is correct; afterwards it lags
	for step, snr := range snrs {
		msg := make([]byte, nBits/8)
		rng.Read(msg)
		// Rate table: pick the symbol budget a capacity-85% code would
		// need at the estimated SNR, at subpass granularity.
		target := 0.85 * channel.CapacityAWGNdB(est)
		for attempt := 0; attempt < 6; attempt++ {
			budget := int(float64(nBits)/target) + 1
			enc := spinal.NewEncoder(msg, nBits, p)
			dec := spinal.NewDecoder(nBits, p)
			sched := enc.NewSchedule()
			sent := 0
			for sent < budget {
				ids := sched.NextSubpass()
				dec.Add(ids, ch(snr, step, attempt).Transmit(enc.Symbols(ids)))
				sent += len(ids)
			}
			syms += sent
			if got, _ := dec.Decode(); bytes.Equal(got, msg) {
				bits += nBits
				break
			}
			target /= 2 // fall back to a lower rate and retransmit
		}
		est = snr // learn this step's SNR only after using the stale one
	}
	return bits, syms
}

// ch returns a deterministic channel per (snr, step, attempt) so both
// senders face statistically identical conditions.
func ch(snr float64, step, attempt int) *channel.AWGN {
	return channel.NewAWGN(snr, int64(2000+step*10+attempt))
}
