// Smallpackets: the Internet-telephony scenario motivating Figure 8-3.
//
// A VoIP-like flow sends 160-byte packets (1280 bits + CRC). This example
// compares the channel time each packet occupies under the spinal code
// against the Raptor baseline at the same SNR — small blocks are exactly
// where rateless spinal codes shine, because LT-style codes pay a large
// short-block overhead.
//
// Run with:
//
//	go run ./examples/smallpackets [-snr 15] [-packets 10]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math/rand"

	"spinal"
	"spinal/baseline"
	"spinal/channel"
)

func main() {
	snrDB := flag.Float64("snr", 15, "channel SNR in dB")
	packets := flag.Int("packets", 10, "number of VoIP packets")
	flag.Parse()

	const packetBytes = 160
	nBits := packetBytes * 8

	spinalSyms := runSpinal(nBits, *snrDB, *packets)
	raptorSyms := runRaptor(nBits, *snrDB, *packets)

	ideal := float64(nBits) / channel.CapacityAWGNdB(*snrDB)
	fmt.Printf("%d packets of %d bytes at %.0f dB (Shannon minimum %.0f symbols/packet)\n\n",
		*packets, packetBytes, *snrDB, ideal)
	fmt.Printf("%-18s %14s %16s\n", "code", "symbols/packet", "fraction of cap.")
	fmt.Printf("%-18s %14.0f %16.2f\n", "spinal",
		float64(spinalSyms)/float64(*packets),
		ideal*float64(*packets)/float64(spinalSyms))
	fmt.Printf("%-18s %14.0f %16.2f\n", "raptor/QAM-256",
		float64(raptorSyms)/float64(*packets),
		ideal*float64(*packets)/float64(raptorSyms))
}

func runSpinal(nBits int, snrDB float64, packets int) (symbols int) {
	p := spinal.DefaultParams()
	rng := rand.New(rand.NewSource(3))
	for pkt := 0; pkt < packets; pkt++ {
		msg := make([]byte, nBits/8)
		rng.Read(msg)
		enc := spinal.NewEncoder(msg, nBits, p)
		dec := spinal.NewDecoder(nBits, p)
		sched := enc.NewSchedule()
		ch := channel.NewAWGN(snrDB, int64(100+pkt))
		for sub := 0; sub < 64*sched.Subpasses(); sub++ {
			ids := sched.NextSubpass()
			dec.Add(ids, ch.Transmit(enc.Symbols(ids)))
			symbols += len(ids)
			if got, _ := dec.Decode(); bytes.Equal(got, msg) {
				break
			}
		}
	}
	return symbols
}

// runRaptor drives the Raptor baseline through the same spinal/code
// interface the link engine uses — schedule, batch encode, accumulate,
// attempt — so the comparison differs from runSpinal only in the code.
func runRaptor(nBits int, snrDB float64, packets int) (symbols int) {
	c := baseline.Raptor()
	rng := rand.New(rand.NewSource(3))
	for pkt := 0; pkt < packets; pkt++ {
		msg := make([]byte, nBits/8)
		rng.Read(msg)
		enc := c.NewEncoder(msg, nBits)
		dec := c.NewDecoder(nBits)
		sched := c.NewSchedule(nBits)
		ch := channel.NewAWGN(snrDB, int64(400+pkt))
		for sub := 0; sub < 64*sched.Subpasses(); sub++ {
			ids := sched.NextSubpass()
			if len(ids) == 0 {
				continue
			}
			dec.Add(ids, ch.Transmit(enc.Symbols(ids)))
			symbols += len(ids)
			if got, ok := dec.Decode(); ok && bytes.Equal(got, msg) {
				break
			}
		}
	}
	return symbols
}
